// Serving quickstart (S41): stand up an AlignmentService over a software
// engine and hammer it from concurrent client threads with mixed priority
// classes and deadlines. Self-contained — synthesizes a reference and reads,
// no input files.
//
//   ./align_server_demo [clients] [requests_per_client] [--metrics=PATH]
//
// Prints the per-class outcome tally, the serve.* latency percentiles
// (p50/p95/p99 via HistogramSample::percentile), and the dynamic batcher's
// coalescing statistics. A second phase (S42) demonstrates multi-reference
// serving: three persisted index artifacts behind an IndexCache capped at
// two resident, requests routed by reference_id, LRU eviction observable in
// the service.index_cache.* series. --metrics=PATH writes the full registry
// snapshot as JSON lines afterwards.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/align/engine.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/fm_index.h"
#include "src/index/index_io.h"
#include "src/obs/metrics.h"
#include "src/obs/reporter.h"
#include "src/serve/index_cache.h"
#include "src/serve/service.h"
#include "src/util/rng.h"

namespace {

using namespace std::chrono_literals;
using pim::genome::Base;

std::vector<std::vector<Base>> make_reads(
    const pim::genome::PackedSequence& reference, std::size_t count) {
  pim::util::Xoshiro256 rng(7);
  std::vector<std::vector<Base>> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = 80;
    const std::size_t start = rng.bounded(reference.size() - len);
    std::vector<Base> read = reference.slice(start, start + len);
    if (i % 3 == 1) {  // a third carry one substitution (inexact stage)
      const std::size_t pos = rng.bounded(read.size());
      read[pos] = pim::genome::complement(read[pos]);
    }
    if (i % 2 == 1) read = pim::genome::reverse_complement(read);
    reads.push_back(std::move(read));
  }
  return reads;
}

// Phase 2 (S42): persisted artifacts + IndexCache + reference_id routing.
// Three references, two resident slots — serving the third evicts the
// least-recently-used lane, which the next round trip then reloads (misses
// and evictions both land in service.index_cache.*).
int run_multi_reference_phase(pim::obs::MetricsRegistry& registry,
                              std::size_t clients, std::size_t per_client) {
  using namespace pim;
  std::printf("\n--- multi-reference serving (IndexCache, max_resident=2) "
              "---\n");
  const std::vector<std::string> ids = {"chrA", "chrB", "chrC"};
  std::vector<genome::PackedSequence> references;
  serve::IndexCacheOptions cache_options;
  cache_options.max_resident = 2;
  cache_options.metrics = &registry;
  serve::IndexCache cache(cache_options);
  for (std::size_t r = 0; r < ids.size(); ++r) {
    genome::SyntheticGenomeSpec spec;
    spec.length = 60000;
    spec.seed = 40 + static_cast<std::uint64_t>(r);
    references.push_back(genome::generate_reference(spec));
    const auto fm =
        index::FmIndex::build(references[r], {.bucket_width = 128});
    const std::string path = "/tmp/pim_serve_" + ids[r] + ".index";
    index::save_index_file(path, fm, references[r],
                           {{ids[r], 0, references[r].size()}});
    cache.add_reference(ids[r], path);
  }

  serve::MultiReferenceOptions options;
  options.aligner.inexact.max_diffs = 2;
  options.service.batching.max_linger = 500us;
  options.service.metrics = &registry;
  serve::AlignmentService service(cache, options);

  std::vector<std::vector<std::vector<Base>>> pools;
  pools.reserve(ids.size());
  for (const auto& reference : references) {
    pools.push_back(make_reads(reference, 512));
  }

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> ok{0}, failed{0};
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      pim::util::Xoshiro256 rng(300 + c);
      for (std::size_t i = 0; i < per_client; ++i) {
        // Stride across references so lanes interleave and the LRU order
        // keeps changing; each client checks placements land in range.
        const std::size_t r = (c + i) % ids.size();
        serve::AlignRequest request;
        request.reference_id = ids[r];
        const std::size_t size = 1 + rng.bounded(4);
        const std::size_t begin = rng.bounded(pools[r].size() - size);
        request.reads.assign(
            pools[r].begin() + static_cast<std::ptrdiff_t>(begin),
            pools[r].begin() + static_cast<std::ptrdiff_t>(begin + size));
        auto response = service.submit(std::move(request)).get();
        if (response.ok()) {
          ok.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // One misrouted request to show the fail-fast path.
  serve::AlignRequest bogus;
  bogus.reference_id = "chrZ";
  bogus.reads.push_back(pools[0][0]);
  const auto rejected = service.align(std::move(bogus));
  std::printf("routing chrZ: %s (\"%s\")\n",
              rejected.status == serve::RequestStatus::kRejected ? "rejected"
                                                                 : "UNEXPECTED",
              rejected.reason.c_str());

  service.shutdown();
  const auto stats = cache.stats();
  std::printf("outcomes: ok=%llu failed=%llu across %zu references\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(failed.load()), ids.size());
  std::printf("index cache: hits=%llu misses=%llu evictions=%llu "
              "resident=%zu (%llu bytes)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions),
              stats.resident,
              static_cast<unsigned long long>(stats.resident_bytes));
  const bool cache_ok = stats.misses >= ids.size() && stats.evictions > 0;
  if (!cache_ok) std::printf("UNEXPECTED: cache never cycled residents\n");
  return ok.load() > 0 && failed.load() == 0 &&
                 rejected.status == serve::RequestStatus::kRejected && cache_ok
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else {
      positional.push_back(arg);
    }
  }
  const std::size_t clients =
      !positional.empty() ? static_cast<std::size_t>(std::stoul(positional[0]))
                          : 4;
  const std::size_t per_client =
      positional.size() > 1
          ? static_cast<std::size_t>(std::stoul(positional[1]))
          : 64;

  // Reference + index + engine: the same stack every other front-end uses.
  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 200000;
  spec.seed = 3;
  const auto reference = pim::genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
  pim::align::AlignerOptions aligner_options;
  aligner_options.inexact.max_diffs = 2;
  pim::align::SoftwareEngine engine(fm, aligner_options);

  // The service: bounded queue (load shedding), 1ms linger, serve.* metrics.
  pim::obs::MetricsRegistry registry;
  pim::serve::ServiceOptions options;
  options.admission.max_queued_requests = 256;
  options.admission.max_queued_reads = 8192;
  options.batching.max_batch_reads = 256;
  options.batching.max_linger = 1000us;
  options.metrics = &registry;
  pim::serve::AlignmentService service(engine, options);

  const auto pool = make_reads(reference, 4096);
  std::printf("align_server_demo: %zu clients x %zu requests over %s\n",
              clients, per_client, std::string(engine.name()).c_str());

  // Concurrent clients: every third request is interactive, half carry a
  // (generous) deadline. Each client checks its own responses.
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> ok{0}, failed{0}, aligned_reads{0};
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      pim::util::Xoshiro256 rng(100 + c);
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t size = 1 + rng.bounded(8);
        const std::size_t begin = rng.bounded(pool.size() - size);
        pim::serve::AlignRequest request;
        request.reads.assign(
            pool.begin() + static_cast<std::ptrdiff_t>(begin),
            pool.begin() + static_cast<std::ptrdiff_t>(begin + size));
        if (i % 3 == 0) {
          request.priority = pim::serve::RequestPriority::kInteractive;
        }
        if (i % 2 == 0) request.deadline = pim::serve::deadline_in(2s);
        auto response = service.submit(std::move(request)).get();
        if (response.ok()) {
          ok.fetch_add(1);
          for (const auto& result : response.results) {
            if (result.stage != pim::align::AlignmentStage::kUnaligned) {
              aligned_reads.fetch_add(1);
            }
          }
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  service.shutdown();

  const auto counters = service.counters();
  std::printf("\noutcomes: ok=%llu failed=%llu (submitted=%llu admitted=%llu "
              "rejected=%llu expired=%llu)\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(failed.load()),
              static_cast<unsigned long long>(counters.submitted),
              static_cast<unsigned long long>(counters.admitted),
              static_cast<unsigned long long>(counters.rejected),
              static_cast<unsigned long long>(counters.expired));
  std::printf("batching: %llu batches, %.1f reads/batch avg "
              "(max_batch_reads=%zu)\n",
              static_cast<unsigned long long>(counters.batches),
              counters.batches ? static_cast<double>(counters.batched_reads) /
                                     static_cast<double>(counters.batches)
                               : 0.0,
              options.batching.max_batch_reads);
  std::printf("aligned reads: %llu / %llu\n",
              static_cast<unsigned long long>(aligned_reads.load()),
              static_cast<unsigned long long>(counters.batched_reads));

  // Scrapeable latency shape: any quantile is computable from the merged
  // bucket counts, not just the precomputed four.
  const auto snapshot = registry.scrape();
  for (const char* name : {"serve.queue_wait_ms", "serve.latency_ms"}) {
    const auto* h = snapshot.histogram(name);
    if (h == nullptr || h->count == 0) continue;
    std::printf("%s: n=%llu mean=%.3fms p50=%.3f p95=%.3f p99=%.3f "
                "p99.9=%.3f max=%.3f\n",
                name, static_cast<unsigned long long>(h->count), h->mean(),
                h->percentile(0.50), h->percentile(0.95), h->percentile(0.99),
                h->percentile(0.999), h->max);
  }
  if (const auto* fill = snapshot.histogram("serve.batch_fill")) {
    std::printf("serve.batch_fill: p50=%.2f p95=%.2f (1.0 = full batch)\n",
                fill->percentile(0.5), fill->percentile(0.95));
  }
  const int single_rc = ok.load() > 0 && failed.load() == 0 ? 0 : 1;

  const int multi_rc =
      run_multi_reference_phase(registry, clients, per_client);

  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    pim::obs::write_json_lines(registry.scrape(), metrics_out);
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  return single_rc == 0 && multi_rc == 0 ? 0 : 1;
}
