// PIM platform walkthrough — the hardware side of the paper.
//
// Builds the computational sub-array tiles for a reference (the
// partitioning of Fig. 6a), runs one LFM step by step through the
// in-memory primitives, aligns a read batch on the platform, and shows the
// result is bit-identical to the software FM-index while every sub-array
// operation is charged to the timing/energy model.
#include <cstdio>

#include "src/align/engine.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/pim_engine.h"
#include "src/readsim/read_simulator.h"
#include "src/util/table.h"

int main() {
  using namespace pim;
  using util::TextTable;

  genome::SyntheticGenomeSpec spec;
  spec.length = 150000;
  spec.seed = 3;
  const auto reference = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});

  const hw::TimingEnergyModel timing;
  hw::PimAlignerPlatform platform(fm, timing);

  const hw::ZoneLayout layout;
  std::printf("platform: %zu computational sub-arrays (512x256 each)\n",
              platform.num_tiles());
  std::printf("zones per sub-array: BWT rows [0,%u), CRef [%u,%u), "
              "MT [%u,%u), reserved [%u,512)\n",
              layout.cref_zone_begin(), layout.cref_zone_begin(),
              layout.mt_zone_begin(), layout.mt_zone_begin(),
              layout.reserved_zone_begin(), layout.reserved_zone_begin());
  const auto load = platform.aggregate_load_stats();
  std::printf("one-time load: %llu row writes, %.2f uJ\n\n",
              static_cast<unsigned long long>(load.writes),
              load.energy_pj * 1e-6);

  // --- One LFM, step by step ------------------------------------------------
  const std::uint64_t id = 33000;  // lands in tile 1, off-checkpoint
  const auto nt = genome::Base::G;
  platform.reset_stats();
  const std::uint64_t hw_value = platform.lfm(nt, id);
  const std::uint64_t sw_value = fm.lfm(nt, id);
  const auto stats = platform.aggregate_stats();
  std::printf("LFM(MT, G, %llu):\n", static_cast<unsigned long long>(id));
  std::printf("  hardware result %llu, software result %llu  [%s]\n",
              static_cast<unsigned long long>(hw_value),
              static_cast<unsigned long long>(sw_value),
              hw_value == sw_value ? "bit-identical" : "MISMATCH");
  std::printf("  ops: %llu triple senses (1 XNOR_Match + 32 adder cycles), "
              "%llu writes, %llu reads, %llu DPU ops\n",
              static_cast<unsigned long long>(stats.ops.triple_senses),
              static_cast<unsigned long long>(stats.ops.writes),
              static_cast<unsigned long long>(stats.ops.reads),
              static_cast<unsigned long long>(stats.ops.dpu_word_ops));
  std::printf("  cost: %.1f ns serial, %.1f pJ\n\n", stats.ops.busy_ns,
              stats.ops.energy_pj);

  // --- A read batch on the hardware ------------------------------------------
  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 200;
  rspec.population_variation_rate = 0.001;
  rspec.sequencing_error_rate = 0.002;
  rspec.seed = 5;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  align::ReadBatchBuilder builder;
  builder.reserve(set.reads.size(), set.reads.size() * rspec.read_length);
  for (const auto& r : set.reads) builder.add(r.bases);
  const auto batch = builder.build();

  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const hw::PimEngine engine(platform, options);
  align::BatchResult hw_results;
  const auto report = engine.run(batch, hw_results);

  TextTable out({"metric", "value"});
  out.add_row({"reads", std::to_string(report.stats.reads_total)});
  out.add_row({"exact / inexact / unaligned",
               std::to_string(report.stats.reads_exact) + " / " +
                   std::to_string(report.stats.reads_inexact) + " / " +
                   std::to_string(report.stats.reads_unaligned)});
  out.add_row({"LFM calls", std::to_string(report.hardware.lfm_calls)});
  out.add_row({"sub-array energy (uJ)",
               TextTable::num(report.energy_pj * 1e-6)});
  out.add_row({"serial busy time (ms)",
               TextTable::num(report.busy_ns * 1e-6)});
  std::printf("%s", out.render().c_str());

  // Cross-check the whole batch against the software engine: same reads,
  // same interface, different backend — the results must be bit-identical.
  const align::SoftwareEngine software(fm, options);
  align::BatchResult sw_results;
  software.align_batch(batch, sw_results);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (sw_results.stage(i) != hw_results.stage(i) ||
        sw_results.hits(i).size() != hw_results.hits(i).size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t h = 0; h < sw_results.hits(i).size(); ++h) {
      const auto& a = sw_results.hits(i)[h];
      const auto& b = hw_results.hits(i)[h];
      if (a.position != b.position || a.diffs != b.diffs ||
          a.strand != b.strand) {
        ++mismatches;
        break;
      }
    }
  }
  std::printf("\nsoftware/hardware engine cross-check on %zu reads: "
              "%zu mismatches\n",
              batch.size(), mismatches);
  return 0;
}
