// PIM platform walkthrough — the hardware side of the paper.
//
// Builds the computational sub-array tiles for a reference (the
// partitioning of Fig. 6a), runs one LFM step by step through the
// in-memory primitives, aligns a read batch on the platform, and shows the
// result is bit-identical to the software FM-index while every sub-array
// operation is charged to the timing/energy model.
#include <cstdio>

#include "src/align/aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/controller.h"
#include "src/pim/platform.h"
#include "src/readsim/read_simulator.h"
#include "src/util/table.h"

int main() {
  using namespace pim;
  using util::TextTable;

  genome::SyntheticGenomeSpec spec;
  spec.length = 150000;
  spec.seed = 3;
  const auto reference = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});

  const hw::TimingEnergyModel timing;
  hw::PimAlignerPlatform platform(fm, timing);

  const hw::ZoneLayout layout;
  std::printf("platform: %zu computational sub-arrays (512x256 each)\n",
              platform.num_tiles());
  std::printf("zones per sub-array: BWT rows [0,%u), CRef [%u,%u), "
              "MT [%u,%u), reserved [%u,512)\n",
              layout.cref_zone_begin(), layout.cref_zone_begin(),
              layout.mt_zone_begin(), layout.mt_zone_begin(),
              layout.reserved_zone_begin(), layout.reserved_zone_begin());
  const auto load = platform.aggregate_load_stats();
  std::printf("one-time load: %llu row writes, %.2f uJ\n\n",
              static_cast<unsigned long long>(load.writes),
              load.energy_pj * 1e-6);

  // --- One LFM, step by step ------------------------------------------------
  const std::uint64_t id = 33000;  // lands in tile 1, off-checkpoint
  const auto nt = genome::Base::G;
  platform.reset_stats();
  const std::uint64_t hw_value = platform.lfm(nt, id);
  const std::uint64_t sw_value = fm.lfm(nt, id);
  const auto stats = platform.aggregate_stats();
  std::printf("LFM(MT, G, %llu):\n", static_cast<unsigned long long>(id));
  std::printf("  hardware result %llu, software result %llu  [%s]\n",
              static_cast<unsigned long long>(hw_value),
              static_cast<unsigned long long>(sw_value),
              hw_value == sw_value ? "bit-identical" : "MISMATCH");
  std::printf("  ops: %llu triple senses (1 XNOR_Match + 32 adder cycles), "
              "%llu writes, %llu reads, %llu DPU ops\n",
              static_cast<unsigned long long>(stats.ops.triple_senses),
              static_cast<unsigned long long>(stats.ops.writes),
              static_cast<unsigned long long>(stats.ops.reads),
              static_cast<unsigned long long>(stats.ops.dpu_word_ops));
  std::printf("  cost: %.1f ns serial, %.1f pJ\n\n", stats.ops.busy_ns,
              stats.ops.energy_pj);

  // --- A read batch on the hardware ------------------------------------------
  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 200;
  rspec.population_variation_rate = 0.001;
  rspec.sequencing_error_rate = 0.002;
  rspec.seed = 5;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  std::vector<std::vector<genome::Base>> reads;
  for (const auto& r : set.reads) reads.push_back(r.bases);

  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  hw::PimBatchDriver driver(platform, options);
  const auto report = driver.run(reads);

  TextTable out({"metric", "value"});
  out.add_row({"reads", std::to_string(report.stats.reads_total)});
  out.add_row({"exact / inexact / unaligned",
               std::to_string(report.stats.reads_exact) + " / " +
                   std::to_string(report.stats.reads_inexact) + " / " +
                   std::to_string(report.stats.reads_unaligned)});
  out.add_row({"LFM calls", std::to_string(report.hardware.lfm_calls)});
  out.add_row({"sub-array energy (uJ)",
               TextTable::num(report.energy_pj * 1e-6)});
  out.add_row({"serial busy time (ms)",
               TextTable::num(report.busy_ns * 1e-6)});
  std::printf("%s", out.render().c_str());

  // Cross-check a few reads against the pure-software aligner.
  const align::Aligner software(fm, options);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto sw = software.align(reads[i]);
    const auto hw_result = driver.align(reads[i]);
    if (sw.hits.size() != hw_result.hits.size()) ++mismatches;
  }
  std::printf("\nsoftware/hardware cross-check on 20 reads: %zu mismatches\n",
              mismatches);
  return 0;
}
