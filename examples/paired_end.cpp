// Paired-end walkthrough: simulate an FR library, align pairs with the
// insert-size model, show a repeat-rescue case, and emit paired SAM.
#include <cstdio>
#include <sstream>

#include "src/align/paired.h"
#include "src/align/sam_writer.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/paired_simulator.h"
#include "src/util/table.h"

int main() {
  using namespace pim;
  using util::TextTable;

  genome::SyntheticGenomeSpec gspec;
  gspec.length = 300000;
  gspec.seed = 47;
  gspec.repeat_fraction = 0.5;  // repeat-rich: pairing has work to do
  const auto reference = genome::generate_reference(gspec);
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});

  readsim::PairedReadSimSpec rspec;
  rspec.base.read_length = 100;
  rspec.base.num_reads = 300;
  rspec.base.population_variation_rate = 0.001;
  rspec.base.sequencing_error_rate = 0.002;
  rspec.base.emit_qualities = true;
  rspec.base.seed = 48;
  rspec.insert_mean = 350;
  rspec.insert_sd = 35;
  const auto set = readsim::PairedReadSimulator(rspec).generate(reference);
  std::printf("simulated %zu FR pairs (insert %u +- %u, repeat-rich "
              "reference)\n\n",
              set.pairs.size(), rspec.insert_mean, rspec.insert_sd);

  align::PairedOptions options;
  options.single.inexact.max_diffs = 2;
  options.insert_mean = rspec.insert_mean;
  options.insert_sd = rspec.insert_sd;
  const align::PairedAligner aligner(fm, options);

  // Batch both mate sets into packed arenas and align through the engine
  // scheduler; EngineStats keeps the per-stage mix that the per-pair path
  // has no way to report.
  align::ReadBatchBuilder b1, b2;
  for (const auto& pair : set.pairs) {
    b1.add(pair.read1.bases);
    b2.add(pair.read2.bases);
  }
  const auto mates1 = b1.build();
  const auto mates2 = b2.build();
  align::EngineStats stats;
  const auto results = aligner.align_pairs(mates1, mates2, 4, &stats);

  std::size_t proper = 0, discordant = 0, one_mate = 0, neither = 0;
  std::size_t origin_ok = 0, rescued = 0;
  std::ostringstream sam;
  align::SamWriter writer(sam, "demo", reference);
  writer.write_header();
  for (std::size_t i = 0; i < set.pairs.size(); ++i) {
    const auto& pair = set.pairs[i];
    const auto& result = results[i];
    switch (result.cls) {
      case align::PairClass::kProperPair: ++proper; break;
      case align::PairClass::kDiscordant: ++discordant; break;
      case align::PairClass::kOneMate: ++one_mate; break;
      case align::PairClass::kNeither: ++neither; break;
    }
    if (result.cls == align::PairClass::kProperPair) {
      if (result.pair->first.position == pair.read1.origin ||
          result.pair->second.position == pair.read2.origin) {
        ++origin_ok;
      }
      // A "rescue": some mate was multi-hit alone, yet the pair is unique.
      if (result.mate1.hits.size() > 1 || result.mate2.hits.size() > 1) {
        ++rescued;
      }
    }
    writer.write_pair("pair" + std::to_string(i), pair.read1.bases,
                      pair.read2.bases, result, pair.read1.qualities,
                      pair.read2.qualities);
  }

  TextTable out({"class", "pairs", "share"});
  const double n = static_cast<double>(set.pairs.size());
  const auto row = [&](const char* label, std::size_t v) {
    out.add_row({label, std::to_string(v),
                 TextTable::num(100.0 * static_cast<double>(v) / n) + " %"});
  };
  row("proper pairs", proper);
  row("discordant", discordant);
  row("one mate only", one_mate);
  row("neither", neither);
  std::printf("%s", out.render().c_str());
  std::printf("\nengine stats over both mates: %llu reads (%llu exact / "
              "%llu inexact / %llu unaligned), %.1f ms\n",
              static_cast<unsigned long long>(stats.reads_total),
              static_cast<unsigned long long>(stats.reads_exact),
              static_cast<unsigned long long>(stats.reads_inexact),
              static_cast<unsigned long long>(stats.reads_unaligned),
              stats.wall_ms);
  std::printf("\n%zu/%zu proper pairs anchored at their true origin;\n"
              "%zu pairs had a repeat-ambiguous mate that the insert-size "
              "constraint disambiguated.\n",
              origin_ok, proper, rescued);

  std::printf("\nfirst paired SAM records:\n");
  std::istringstream lines(sam.str());
  std::string line;
  for (int i = 0; i < 7 && std::getline(lines, line); ++i) {
    std::printf("  %.120s\n", line.c_str());
  }
  return 0;
}
