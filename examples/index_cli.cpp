// Index-once, align-many CLI — the production workflow around the
// serialized FM-index (format v2, S42).
//
//   ./index_cli build <ref.fasta> <index.pim>         # pre-computation
//   ./index_cli info  <index.pim>                     # headers only
//   ./index_cli verify <index.pim>                    # full checksum pass
//   ./index_cli align <index.pim> <reads.fastq> <out.sam>
//   ./index_cli                                        # self-contained demo
//
// `build` runs the paper's Fig. 2 pre-computation (SA-IS, BWT, Marker
// Table, SA) over the concatenation of *all* FASTA records and persists a
// v2 artifact including the per-chromosome table; `info` inspects the
// section layout without loading payloads; `verify` proves integrity by
// running both loaders (stream + mmap) over every checksummed section;
// `align` mmaps the artifact (zero-copy, no rebuild) and runs the
// multithreaded two-stage pipeline.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/align/parallel_aligner.h"
#include "src/align/sam_writer.h"
#include "src/genome/fasta.h"
#include "src/genome/fastq.h"
#include "src/genome/multi_reference.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/index_io.h"
#include "src/index/mapped_index.h"
#include "src/readsim/read_simulator.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int cmd_build(const std::string& fasta_path, const std::string& index_path) {
  using namespace pim;
  const auto records = genome::read_fasta_file(fasta_path);
  if (records.empty()) {
    std::fprintf(stderr, "no FASTA records in %s\n", fasta_path.c_str());
    return 1;
  }
  const auto multi = genome::MultiReference::from_fasta_records(records);
  std::printf("building index over %zu chromosome(s), %llu bp total...\n",
              multi.chromosomes().size(),
              static_cast<unsigned long long>(multi.total_length()));
  const auto t0 = std::chrono::steady_clock::now();
  const auto fm =
      index::FmIndex::build(multi.concatenated(), {.bucket_width = 128});
  std::printf("  built in %.2f s\n", seconds_since(t0));
  index::save_index_file(index_path, fm, multi.concatenated(),
                         multi.chromosomes());
  std::ifstream probe(index_path, std::ios::binary | std::ios::ate);
  std::printf("  saved %s (%lld bytes, format v%u)\n", index_path.c_str(),
              static_cast<long long>(probe.tellg()), index::kIndexVersion);
  return 0;
}

int cmd_info(const std::string& index_path) {
  using namespace pim;
  const auto info = index::inspect_index_file(index_path);
  std::printf("index: %s\n", index_path.c_str());
  std::printf("  format: v%u, %llu bytes\n", info.version,
              static_cast<unsigned long long>(info.file_bytes));
  std::printf("  reference: %llu bp, %zu chromosome(s)\n",
              static_cast<unsigned long long>(info.reference_bases),
              info.num_chromosomes);
  std::printf("  bucket width d: %u, SA sample rate: %u\n", info.bucket_width,
              info.sa_sample_rate);
  for (const auto& section : info.sections) {
    std::printf("  section %-12s offset %8llu  %10llu B  fnv1a %016llx\n",
                section.name.c_str(),
                static_cast<unsigned long long>(section.offset),
                static_cast<unsigned long long>(section.payload_bytes),
                static_cast<unsigned long long>(section.checksum));
  }
  return 0;
}

int cmd_verify(const std::string& index_path) {
  using namespace pim;
  // Both loaders exercise every stored checksum: the stream loader while
  // reading sections into owned buffers, the mapped loader over the mmap
  // region. Agreement of the two proves the artifact and the zero-copy
  // assembly path.
  try {
    const auto t0 = std::chrono::steady_clock::now();
    const auto loaded = index::load_index_file(index_path);
    const double stream_s = seconds_since(t0);
    const auto t1 = std::chrono::steady_clock::now();
    const auto mapped = index::MappedIndex::open(index_path);
    const double map_s = seconds_since(t1);
    if (mapped.index().num_rows() != loaded.index.num_rows() ||
        !(mapped.reference() == loaded.reference) ||
        mapped.chromosomes().size() != loaded.chromosomes.size()) {
      std::fprintf(stderr, "FAIL: stream and mapped loads disagree\n");
      return 1;
    }
    std::printf("OK: %s (%llu bp, %zu chromosome(s); stream %.3f s, "
                "%s %.3f s)\n",
                index_path.c_str(),
                static_cast<unsigned long long>(
                    loaded.index.reference_size()),
                loaded.chromosomes.size(), stream_s,
                mapped.mapped() ? "mmap" : "stream-fallback", map_s);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: %s\n", e.what());
    return 1;
  }
}

int cmd_align(const std::string& index_path, const std::string& fastq_path,
              const std::string& sam_path) {
  using namespace pim;
  auto t0 = std::chrono::steady_clock::now();
  const auto mapped = index::MappedIndex::open(index_path);
  std::printf("index %s in %.3f s (no SA-IS rebuild)\n",
              mapped.mapped() ? "mapped" : "stream-loaded",
              seconds_since(t0));

  const auto reads = genome::read_fastq_file(fastq_path);
  std::vector<std::vector<genome::Base>> bases;
  bases.reserve(reads.size());
  for (const auto& r : reads) bases.push_back(r.sequence.unpack());

  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const align::Aligner aligner(mapped.index(), options);
  align::AlignerStats stats;
  t0 = std::chrono::steady_clock::now();
  const auto results = align::align_batch_parallel(aligner, bases, 0, &stats);
  const double align_s = seconds_since(t0);

  std::ofstream out(sam_path);
  const std::string ref_name = mapped.chromosomes().empty()
                                   ? "ref"
                                   : mapped.chromosomes()[0].name;
  align::SamWriter writer(out, ref_name, mapped.reference());
  writer.write_header();
  for (std::size_t i = 0; i < reads.size(); ++i) {
    writer.write_alignment(reads[i].name.substr(0, reads[i].name.find(' ')),
                           bases[i], results[i], reads[i].qualities);
  }
  std::printf("aligned %llu reads in %.2f s (%.0f reads/s): "
              "%llu exact, %llu inexact, %llu unaligned -> %s\n",
              static_cast<unsigned long long>(stats.reads_total), align_s,
              static_cast<double>(stats.reads_total) / align_s,
              static_cast<unsigned long long>(stats.reads_exact),
              static_cast<unsigned long long>(stats.reads_inexact),
              static_cast<unsigned long long>(stats.reads_unaligned),
              sam_path.c_str());
  return 0;
}

int demo() {
  using namespace pim;
  std::printf(
      "no arguments: running the build -> info -> verify -> align demo\n\n");
  genome::SyntheticGenomeSpec gspec;
  gspec.length = 80000;
  gspec.seed = 31;
  const auto reference = genome::generate_reference(gspec);
  genome::write_fasta_file("/tmp/pim_cli_ref.fasta",
                           {{"demo", reference, 0}});
  readsim::ReadSimSpec rspec;
  rspec.read_length = 80;
  rspec.num_reads = 300;
  rspec.emit_qualities = true;
  rspec.seed = 32;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  genome::write_fastq_file("/tmp/pim_cli_reads.fastq", readsim::to_fastq(set));

  int rc = cmd_build("/tmp/pim_cli_ref.fasta", "/tmp/pim_cli.index");
  if (rc != 0) return rc;
  rc = cmd_info("/tmp/pim_cli.index");
  if (rc != 0) return rc;
  rc = cmd_verify("/tmp/pim_cli.index");
  if (rc != 0) return rc;
  return cmd_align("/tmp/pim_cli.index", "/tmp/pim_cli_reads.fastq",
                   "/tmp/pim_cli.sam");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return demo();
  const std::string cmd = argv[1];
  if (cmd == "build" && argc == 4) return cmd_build(argv[2], argv[3]);
  if (cmd == "info" && argc == 3) return cmd_info(argv[2]);
  if (cmd == "verify" && argc == 3) return cmd_verify(argv[2]);
  if (cmd == "align" && argc == 5) {
    return cmd_align(argv[2], argv[3], argv[4]);
  }
  std::fprintf(stderr,
               "usage:\n  %s build <ref.fasta> <index>\n  %s info <index>\n"
               "  %s verify <index>\n"
               "  %s align <index> <reads.fastq> <out.sam>\n",
               argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
