// Index-once, align-many CLI — the production workflow around the
// serialized FM-index.
//
//   ./index_cli build <ref.fasta> <index.pim>         # pre-computation
//   ./index_cli align <index.pim> <reads.fastq> <out.sam>
//   ./index_cli info  <index.pim>
//   ./index_cli                                        # self-contained demo
//
// `build` runs the paper's Fig. 2 pre-computation (SA-IS, BWT, Marker
// Table, SA) and persists it; `align` loads it back (skipping SA-IS) and
// runs the multithreaded two-stage pipeline.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "src/align/parallel_aligner.h"
#include "src/align/sam_writer.h"
#include "src/genome/fasta.h"
#include "src/genome/fastq.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/index_io.h"
#include "src/readsim/read_simulator.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int cmd_build(const std::string& fasta_path, const std::string& index_path) {
  using namespace pim;
  const auto records = genome::read_fasta_file(fasta_path);
  if (records.empty()) {
    std::fprintf(stderr, "no FASTA records in %s\n", fasta_path.c_str());
    return 1;
  }
  const auto& reference = records[0].sequence;
  std::printf("building index for %s (%zu bp)...\n", records[0].name.c_str(),
              reference.size());
  const auto t0 = std::chrono::steady_clock::now();
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  std::printf("  built in %.2f s\n", seconds_since(t0));
  index::save_index_file(index_path, fm, reference);
  std::ifstream probe(index_path, std::ios::binary | std::ios::ate);
  std::printf("  saved %s (%lld bytes)\n", index_path.c_str(),
              static_cast<long long>(probe.tellg()));
  return 0;
}

int cmd_info(const std::string& index_path) {
  using namespace pim;
  const auto loaded = index::load_index_file(index_path);
  const auto fp = loaded.index.memory_footprint();
  std::printf("index: %s\n", index_path.c_str());
  std::printf("  reference: %llu bp\n",
              static_cast<unsigned long long>(loaded.index.reference_size()));
  std::printf("  bucket width d: %u, SA sample rate: %u\n",
              loaded.index.config().bucket_width,
              loaded.index.config().sa_sample_rate);
  std::printf("  resident: BWT %zu B, MT %zu B, SA %zu B (total %zu B)\n",
              fp.bwt_bytes, fp.marker_bytes, fp.sa_bytes, fp.total());
  return 0;
}

int cmd_align(const std::string& index_path, const std::string& fastq_path,
              const std::string& sam_path) {
  using namespace pim;
  auto t0 = std::chrono::steady_clock::now();
  const auto loaded = index::load_index_file(index_path);
  std::printf("index loaded in %.2f s (no SA-IS rebuild)\n",
              seconds_since(t0));

  const auto reads = genome::read_fastq_file(fastq_path);
  std::vector<std::vector<genome::Base>> bases;
  bases.reserve(reads.size());
  for (const auto& r : reads) bases.push_back(r.sequence.unpack());

  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const align::Aligner aligner(loaded.index, options);
  align::AlignerStats stats;
  t0 = std::chrono::steady_clock::now();
  const auto results = align::align_batch_parallel(aligner, bases, 0, &stats);
  const double align_s = seconds_since(t0);

  std::ofstream out(sam_path);
  align::SamWriter writer(out, "ref", loaded.reference);
  writer.write_header();
  for (std::size_t i = 0; i < reads.size(); ++i) {
    writer.write_alignment(reads[i].name.substr(0, reads[i].name.find(' ')),
                           bases[i], results[i], reads[i].qualities);
  }
  std::printf("aligned %llu reads in %.2f s (%.0f reads/s): "
              "%llu exact, %llu inexact, %llu unaligned -> %s\n",
              static_cast<unsigned long long>(stats.reads_total), align_s,
              static_cast<double>(stats.reads_total) / align_s,
              static_cast<unsigned long long>(stats.reads_exact),
              static_cast<unsigned long long>(stats.reads_inexact),
              static_cast<unsigned long long>(stats.reads_unaligned),
              sam_path.c_str());
  return 0;
}

int demo() {
  using namespace pim;
  std::printf("no arguments: running the build -> info -> align demo\n\n");
  genome::SyntheticGenomeSpec gspec;
  gspec.length = 80000;
  gspec.seed = 31;
  const auto reference = genome::generate_reference(gspec);
  genome::write_fasta_file("/tmp/pim_cli_ref.fasta",
                           {{"demo", reference, 0}});
  readsim::ReadSimSpec rspec;
  rspec.read_length = 80;
  rspec.num_reads = 300;
  rspec.emit_qualities = true;
  rspec.seed = 32;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  genome::write_fastq_file("/tmp/pim_cli_reads.fastq", readsim::to_fastq(set));

  int rc = cmd_build("/tmp/pim_cli_ref.fasta", "/tmp/pim_cli.index");
  if (rc != 0) return rc;
  rc = cmd_info("/tmp/pim_cli.index");
  if (rc != 0) return rc;
  return cmd_align("/tmp/pim_cli.index", "/tmp/pim_cli_reads.fastq",
                   "/tmp/pim_cli.sam");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return demo();
  const std::string cmd = argv[1];
  if (cmd == "build" && argc == 4) return cmd_build(argv[2], argv[3]);
  if (cmd == "info" && argc == 3) return cmd_info(argv[2]);
  if (cmd == "align" && argc == 5) {
    return cmd_align(argv[2], argv[3], argv[4]);
  }
  std::fprintf(stderr,
               "usage:\n  %s build <ref.fasta> <index>\n  %s info <index>\n"
               "  %s align <index> <reads.fastq> <out.sam>\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
