// End-to-end aligner tool: FASTA reference + FASTQ reads -> SAM alignments,
// on the streaming pipeline (S39): a producer thread packs FASTQ records
// into double-buffered ReadBatch generations while the engine aligns the
// previous one, and every completed chunk is written to the SAM file as
// soon as it (and all earlier chunks) finish. Peak memory is two batch
// generations, not the dataset. With shards >= 2 each generation fans out
// across N engine shards (simulated chips) behind ShardedEngine with
// measured-load rebalancing — the SAM path is unchanged because the sharded
// engine streams through the same chunk seam.
//
//   ./fastq_to_sam ref.fasta reads.fastq out.sam [threads] [max_diffs]
//                  [shards]
//
// With no arguments, runs a self-contained demo: generates a synthetic
// reference and ART-like FASTQ reads (with quality ramp), writes them to
// temporary files, aligns with the multithreaded two-stage pipeline, and
// prints the first SAM records plus summary statistics.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/align/sam_writer.h"
#include "src/align/sharded_engine.h"
#include "src/align/streaming_pipeline.h"
#include "src/genome/fasta.h"
#include "src/genome/fastq.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"

namespace {

int run(const std::string& ref_path, const std::string& fastq_path,
        const std::string& sam_path, std::size_t threads,
        std::uint32_t max_diffs, std::size_t shards) {
  using namespace pim;

  const auto refs = genome::read_fasta_file(ref_path);
  if (refs.empty()) {
    std::fprintf(stderr, "no FASTA records in %s\n", ref_path.c_str());
    return 1;
  }
  const auto& reference = refs[0].sequence;
  std::printf("reference: %s (%zu bp)\n", refs[0].name.c_str(),
              reference.size());

  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  std::printf("index built (%zu B resident)\n",
              fm.memory_footprint().total());

  align::AlignerOptions options;
  options.inexact.max_diffs = max_diffs;

  std::ifstream fastq_in(fastq_path);
  if (!fastq_in) {
    std::fprintf(stderr, "cannot read %s\n", fastq_path.c_str());
    return 1;
  }
  std::ofstream sam_out(sam_path);
  if (!sam_out) {
    std::fprintf(stderr, "cannot write %s\n", sam_path.c_str());
    return 1;
  }
  // Use the first whitespace-delimited token of the header as the name.
  std::string ref_name = refs[0].name.substr(0, refs[0].name.find(' '));
  if (ref_name.empty()) ref_name = "ref";
  align::SamWriter writer(sam_out, ref_name, reference);
  writer.write_header();

  // Stream: FASTQ records never all live at once. The producer packs the
  // next generation while the engine aligns this one; chunks hit the SAM
  // file in read order as they complete.
  genome::FastqStreamReader reader(fastq_in);
  align::StreamingOptions sopts;
  sopts.parallel.num_threads = threads;

  align::StreamingStats stats;
  if (shards >= 2) {
    // Multi-chip execution behind the same engine seam: one software engine
    // shard per simulated chip, each generation fanned across chip threads
    // with boundaries rebalanced from the measured wall-time skew.
    std::vector<std::unique_ptr<align::AlignmentEngine>> chips;
    for (std::size_t s = 0; s < shards; ++s) {
      chips.push_back(std::make_unique<align::SoftwareEngine>(fm, options));
    }
    const align::ShardedEngine engine(std::move(chips),
                                      align::ShardedOptions{.rebalance = true});
    stats = align::StreamingPipeline(engine, sopts).run(reader, writer);
    std::printf("sharded across %zu chips (last generation):\n", shards);
    for (const auto& s : engine.shard_stats()) {
      std::printf("  chip %zu: %llu reads, %llu hits, %.1f ms\n", s.shard,
                  static_cast<unsigned long long>(s.reads),
                  static_cast<unsigned long long>(s.hits), s.wall_ms);
    }
  } else {
    const align::SoftwareEngine engine(fm, options);
    stats = align::StreamingPipeline(engine, sopts).run(reader, writer);
  }
  const auto& es = stats.engine;

  std::printf("\naligned %llu/%llu reads (%llu exact, %llu inexact, "
              "%llu unaligned) in %.1f ms; %llu generations, %llu chunks, "
              "peak %.2f MB batch arenas; %zu SAM records -> %s\n",
              static_cast<unsigned long long>(es.reads_exact +
                                              es.reads_inexact),
              static_cast<unsigned long long>(es.reads_total),
              static_cast<unsigned long long>(es.reads_exact),
              static_cast<unsigned long long>(es.reads_inexact),
              static_cast<unsigned long long>(es.reads_unaligned),
              stats.wall_ms,
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.chunks),
              static_cast<double>(stats.peak_batch_bytes) / (1024.0 * 1024.0),
              writer.records_written(), sam_path.c_str());
  return 0;
}

int run_demo() {
  using namespace pim;
  std::printf("no arguments: running the self-contained demo\n\n");

  // Generate reference + reads and write them as real files, so the demo
  // exercises the same I/O path as the CLI mode.
  genome::SyntheticGenomeSpec gspec;
  gspec.length = 120000;
  gspec.seed = 77;
  const auto reference = genome::generate_reference(gspec);
  genome::write_fasta_file("/tmp/pim_aligner_demo_ref.fasta",
                           {{"demo_ref synthetic", reference, 0}});

  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 400;
  rspec.population_variation_rate = 0.001;
  rspec.sequencing_error_rate = 0.002;
  rspec.error_ramp = 1.0;       // Illumina-like 3' degradation
  rspec.emit_qualities = true;  // real FASTQ qualities
  rspec.seed = 99;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  genome::write_fastq_file("/tmp/pim_aligner_demo_reads.fastq",
                           readsim::to_fastq(set));

  const int rc = run("/tmp/pim_aligner_demo_ref.fasta",
                     "/tmp/pim_aligner_demo_reads.fastq",
                     "/tmp/pim_aligner_demo.sam", 4, 2, /*shards=*/2);
  if (rc != 0) return rc;

  std::printf("\nfirst SAM lines:\n");
  std::ifstream sam("/tmp/pim_aligner_demo.sam");
  std::string line;
  for (int i = 0; i < 8 && std::getline(sam, line); ++i) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return run_demo();
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s ref.fasta reads.fastq out.sam [threads] "
                 "[max_diffs] [shards]\n",
                 argv[0]);
    return 2;
  }
  const std::size_t threads =
      argc > 4 ? static_cast<std::size_t>(std::stoul(argv[4])) : 0;
  const std::uint32_t max_diffs =
      argc > 5 ? static_cast<std::uint32_t>(std::stoul(argv[5])) : 2;
  const std::size_t shards =
      argc > 6 ? static_cast<std::size_t>(std::stoul(argv[6])) : 1;
  return run(argv[1], argv[2], argv[3], threads, max_diffs, shards);
}
