// End-to-end aligner tool: FASTA reference + FASTQ reads -> SAM alignments,
// on the unified engine layer: FASTQ -> ReadBatch (one packed arena) ->
// chunked parallel scheduler over SoftwareEngine -> batch SAM output.
// With shards >= 2 the batch instead fans out across N engine shards
// (simulated chips) behind ShardedEngine — the SAM path is unchanged
// because the sharded engine sits behind the same interface.
//
//   ./fastq_to_sam ref.fasta reads.fastq out.sam [threads] [max_diffs]
//                  [shards]
//
// With no arguments, runs a self-contained demo: generates a synthetic
// reference and ART-like FASTQ reads (with quality ramp), writes them to
// temporary files, aligns with the multithreaded two-stage pipeline, and
// prints the first SAM records plus summary statistics.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/align/parallel_aligner.h"
#include "src/align/sam_writer.h"
#include "src/align/sharded_engine.h"
#include "src/genome/fasta.h"
#include "src/genome/fastq.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"

namespace {

int run(const std::string& ref_path, const std::string& fastq_path,
        const std::string& sam_path, std::size_t threads,
        std::uint32_t max_diffs, std::size_t shards) {
  using namespace pim;

  const auto refs = genome::read_fasta_file(ref_path);
  if (refs.empty()) {
    std::fprintf(stderr, "no FASTA records in %s\n", ref_path.c_str());
    return 1;
  }
  const auto& reference = refs[0].sequence;
  std::printf("reference: %s (%zu bp)\n", refs[0].name.c_str(),
              reference.size());

  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  std::printf("index built (%zu B resident)\n",
              fm.memory_footprint().total());

  // Pack all reads (with names and qualities) into one arena-backed batch:
  // no per-read heap allocation, no copies at layer boundaries.
  const auto batch = align::ReadBatch::from_fastq(
      genome::read_fastq_file(fastq_path));
  std::printf("reads: %zu from %s (%.2f MB packed)\n", batch.size(),
              fastq_path.c_str(),
              static_cast<double>(batch.memory_bytes()) / (1024.0 * 1024.0));

  align::AlignerOptions options;
  options.inexact.max_diffs = max_diffs;

  align::BatchResult results;
  if (shards >= 2) {
    // Multi-chip execution behind the same engine seam: one software engine
    // shard per simulated chip, each run on its own thread.
    std::vector<std::unique_ptr<align::AlignmentEngine>> chips;
    for (std::size_t s = 0; s < shards; ++s) {
      chips.push_back(std::make_unique<align::SoftwareEngine>(fm, options));
    }
    const align::ShardedEngine engine(std::move(chips));
    engine.align_batch(batch, results);
    std::printf("sharded across %zu chips:\n", shards);
    for (const auto& s : engine.shard_stats()) {
      std::printf("  chip %zu: %llu reads, %llu hits, %.1f ms\n", s.shard,
                  static_cast<unsigned long long>(s.reads),
                  static_cast<unsigned long long>(s.hits), s.wall_ms);
    }
  } else {
    const align::SoftwareEngine engine(fm, options);
    align::align_batch_parallel(
        engine, batch, results,
        align::ParallelOptions{.num_threads = threads});
  }
  const auto& stats = results.stats();

  std::ofstream sam_out(sam_path);
  if (!sam_out) {
    std::fprintf(stderr, "cannot write %s\n", sam_path.c_str());
    return 1;
  }
  // Use the first whitespace-delimited token of the header as the name.
  std::string ref_name = refs[0].name.substr(0, refs[0].name.find(' '));
  if (ref_name.empty()) ref_name = "ref";
  align::SamWriter writer(sam_out, ref_name, reference);
  writer.write_header();
  writer.write_batch(batch, results);

  std::printf("\naligned %llu/%llu reads (%llu exact, %llu inexact, "
              "%llu unaligned) in %.1f ms; %zu SAM records -> %s\n",
              static_cast<unsigned long long>(stats.reads_exact +
                                              stats.reads_inexact),
              static_cast<unsigned long long>(stats.reads_total),
              static_cast<unsigned long long>(stats.reads_exact),
              static_cast<unsigned long long>(stats.reads_inexact),
              static_cast<unsigned long long>(stats.reads_unaligned),
              stats.wall_ms, writer.records_written(), sam_path.c_str());
  return 0;
}

int run_demo() {
  using namespace pim;
  std::printf("no arguments: running the self-contained demo\n\n");

  // Generate reference + reads and write them as real files, so the demo
  // exercises the same I/O path as the CLI mode.
  genome::SyntheticGenomeSpec gspec;
  gspec.length = 120000;
  gspec.seed = 77;
  const auto reference = genome::generate_reference(gspec);
  genome::write_fasta_file("/tmp/pim_aligner_demo_ref.fasta",
                           {{"demo_ref synthetic", reference, 0}});

  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 400;
  rspec.population_variation_rate = 0.001;
  rspec.sequencing_error_rate = 0.002;
  rspec.error_ramp = 1.0;       // Illumina-like 3' degradation
  rspec.emit_qualities = true;  // real FASTQ qualities
  rspec.seed = 99;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  genome::write_fastq_file("/tmp/pim_aligner_demo_reads.fastq",
                           readsim::to_fastq(set));

  const int rc = run("/tmp/pim_aligner_demo_ref.fasta",
                     "/tmp/pim_aligner_demo_reads.fastq",
                     "/tmp/pim_aligner_demo.sam", 4, 2, /*shards=*/2);
  if (rc != 0) return rc;

  std::printf("\nfirst SAM lines:\n");
  std::ifstream sam("/tmp/pim_aligner_demo.sam");
  std::string line;
  for (int i = 0; i < 8 && std::getline(sam, line); ++i) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return run_demo();
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s ref.fasta reads.fastq out.sam [threads] "
                 "[max_diffs] [shards]\n",
                 argv[0]);
    return 2;
  }
  const std::size_t threads =
      argc > 4 ? static_cast<std::size_t>(std::stoul(argv[4])) : 0;
  const std::uint32_t max_diffs =
      argc > 5 ? static_cast<std::uint32_t>(std::stoul(argv[5])) : 2;
  const std::size_t shards =
      argc > 6 ? static_cast<std::size_t>(std::stoul(argv[6])) : 1;
  return run(argv[1], argv[2], argv[3], threads, max_diffs, shards);
}
