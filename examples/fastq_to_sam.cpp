// End-to-end aligner tool: FASTA reference + FASTQ reads -> SAM alignments,
// on the streaming pipeline (S39): a producer thread packs FASTQ records
// into double-buffered ReadBatch generations while the engine aligns the
// previous one, and every completed chunk is written to the SAM file as
// soon as it (and all earlier chunks) finish. Peak memory is two batch
// generations, not the dataset. With shards >= 2 each generation fans out
// across N engine shards (simulated chips) behind ShardedEngine with
// measured-load rebalancing — the SAM path is unchanged because the sharded
// engine streams through the same chunk seam.
//
//   ./fastq_to_sam ref.fasta reads.fastq out.sam [threads] [max_diffs]
//                  [shards] [--metrics=PATH] [--pim-chips=N]
//                  [--save-index=PATH]
//   ./fastq_to_sam --index=PATH reads.fastq out.sam [...]
//
// --metrics=PATH  installs the S40 observability registry end to end and
//                 writes the stage-resolved snapshot (stream.*, sched.*,
//                 shard.*, plus chip.*/fleet.* with --pim-chips) and the
//                 fill/align trace as JSON lines to PATH after the run.
// --pim-chips=N   aligns on a simulated N-chip SOT-MRAM fleet (PimChipFleet)
//                 instead of software shards. Cycle/energy-accurate and
//                 correspondingly slow — use small read counts.
// --save-index=PATH  after building the index from ref.fasta, persist it as
//                 a v2 artifact (S42) so later runs can skip the SA-IS/BWT
//                 pre-computation entirely.
// --index=PATH    load (mmap when possible) a persisted index instead of
//                 building from FASTA; ref.fasta is then omitted. Mutually
//                 exclusive with --save-index (exit 2).
//
// With no arguments, runs a self-contained demo: generates a synthetic
// reference and ART-like FASTQ reads (with quality ramp), writes them to
// temporary files, aligns with the multithreaded two-stage pipeline, and
// prints the first SAM records plus summary statistics.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/align/sam_writer.h"
#include "src/align/sharded_engine.h"
#include "src/align/streaming_pipeline.h"
#include "src/genome/fasta.h"
#include "src/genome/fastq.h"
#include "src/genome/multi_reference.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/index_io.h"
#include "src/index/mapped_index.h"
#include "src/obs/metrics.h"
#include "src/obs/reporter.h"
#include "src/obs/trace.h"
#include "src/pim/pim_fleet.h"
#include "src/pim/timing_energy.h"
#include "src/readsim/read_simulator.h"

namespace {

int run(const std::string& ref_path, const std::string& fastq_path,
        const std::string& sam_path, std::size_t threads,
        std::uint32_t max_diffs, std::size_t shards,
        const std::string& metrics_path, std::size_t pim_chips,
        const std::string& index_path, const std::string& save_index_path) {
  using namespace pim;

  // The index either comes from a persisted artifact (--index: skip the
  // FASTA -> SA-IS -> BWT pre-computation) or is built from ref.fasta
  // (optionally persisted via --save-index for the next run).
  index::MappedIndex mapped;
  index::FmIndex built;
  genome::PackedSequence built_reference;
  const index::FmIndex* fm = nullptr;
  const genome::PackedSequence* reference = nullptr;
  std::string ref_name = "ref";

  if (!index_path.empty()) {
    mapped = index::MappedIndex::open(index_path);
    fm = &mapped.index();
    reference = &mapped.reference();
    if (!mapped.chromosomes().empty()) ref_name = mapped.chromosomes()[0].name;
    std::printf("index: %s (%s, %zu bp reference, %zu B resident)\n",
                index_path.c_str(),
                mapped.mapped() ? "mapped" : "stream-loaded",
                reference->size(), fm->memory_footprint().total());
  } else {
    const auto refs = genome::read_fasta_file(ref_path);
    if (refs.empty()) {
      std::fprintf(stderr, "no FASTA records in %s\n", ref_path.c_str());
      return 1;
    }
    built_reference = refs[0].sequence;
    reference = &built_reference;
    ref_name = refs[0].name.substr(0, refs[0].name.find(' '));
    if (ref_name.empty()) ref_name = "ref";
    std::printf("reference: %s (%zu bp)\n", refs[0].name.c_str(),
                reference->size());
    built = index::FmIndex::build(*reference, {.bucket_width = 128});
    fm = &built;
    std::printf("index built (%zu B resident)\n",
                fm->memory_footprint().total());
    if (!save_index_path.empty()) {
      const std::vector<genome::Chromosome> chromosomes{
          {ref_name, 0, reference->size()}};
      index::save_index_file(save_index_path, built, *reference, chromosomes);
      std::printf("index saved -> %s\n", save_index_path.c_str());
    }
  }

  align::AlignerOptions options;
  options.inexact.max_diffs = max_diffs;

  std::ifstream fastq_in(fastq_path);
  if (!fastq_in) {
    std::fprintf(stderr, "cannot read %s\n", fastq_path.c_str());
    return 1;
  }
  std::ofstream sam_out(sam_path);
  if (!sam_out) {
    std::fprintf(stderr, "cannot write %s\n", sam_path.c_str());
    return 1;
  }
  align::SamWriter writer(sam_out, ref_name, *reference);
  writer.write_header();

  // Stream: FASTQ records never all live at once. The producer packs the
  // next generation while the engine aligns this one; chunks hit the SAM
  // file in read order as they complete.
  genome::FastqStreamReader reader(fastq_in);
  align::StreamingOptions sopts;
  sopts.parallel.num_threads = threads;

  // One registry/trace pair spans every stage: the streaming pipeline, the
  // chunked scheduler, the sharded fan-out, and (with --pim-chips) the
  // per-chip hardware tallies all publish into it.
  obs::MetricsRegistry registry;
  obs::TraceLog trace_log(4096);
  const bool observed = !metrics_path.empty();
  if (observed) {
    sopts.metrics = &registry;
    sopts.trace = &trace_log;
  }
  align::ShardedOptions shard_opts{.rebalance = true};
  if (observed) shard_opts.metrics = &registry;

  align::StreamingStats stats;
  if (pim_chips >= 1) {
    // Simulated SOT-MRAM fleet: each chip owns its platform (op/energy
    // tallies), and the sharded seam streams per-chip completions into the
    // SAM writer exactly like the software path.
    const hw::TimingEnergyModel timing;
    hw::PimChipFleet fleet(*fm, timing, pim_chips, options, {},
                           hw::AddPlacement::kMethodI, shard_opts);
    stats = align::StreamingPipeline(fleet.engine(), sopts).run(reader,
                                                                writer);
    if (observed) fleet.publish_metrics(registry);
    std::printf("PIM fleet of %zu chips:\n", pim_chips);
    for (std::size_t c = 0; c < fleet.num_chips(); ++c) {
      const auto cs = fleet.chip_stats(c);
      std::printf("  chip %zu: %llu LFM calls, %.0f cycles, %.1f nJ\n", c,
                  static_cast<unsigned long long>(cs.lfm_calls),
                  cs.ops.busy_ns * timing.clock_ghz(),
                  cs.ops.energy_pj * 1e-3);
    }
  } else if (shards >= 2) {
    // Multi-chip execution behind the same engine seam: one software engine
    // shard per simulated chip, each generation fanned across chip threads
    // with boundaries rebalanced from the measured wall-time skew.
    std::vector<std::unique_ptr<align::AlignmentEngine>> chips;
    for (std::size_t s = 0; s < shards; ++s) {
      chips.push_back(std::make_unique<align::SoftwareEngine>(*fm, options));
    }
    const align::ShardedEngine engine(std::move(chips), shard_opts);
    stats = align::StreamingPipeline(engine, sopts).run(reader, writer);
    std::printf("sharded across %zu chips (last generation):\n", shards);
    for (const auto& s : engine.shard_stats()) {
      std::printf("  chip %zu: %llu reads, %llu hits, %.1f ms\n", s.shard,
                  static_cast<unsigned long long>(s.reads),
                  static_cast<unsigned long long>(s.hits), s.wall_ms);
    }
  } else {
    const align::SoftwareEngine engine(*fm, options);
    stats = align::StreamingPipeline(engine, sopts).run(reader, writer);
  }

  if (observed) {
    std::ofstream metrics_out(metrics_path);
    if (!metrics_out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    obs::write_json_lines(registry.scrape(), metrics_out);
    obs::write_json_lines(trace_log.snapshot(), metrics_out);
    std::printf("metrics -> %s\n", metrics_path.c_str());
  }
  const auto& es = stats.engine;

  std::printf("\naligned %llu/%llu reads (%llu exact, %llu inexact, "
              "%llu unaligned) in %.1f ms; %llu generations, %llu chunks, "
              "peak %.2f MB batch arenas; %zu SAM records -> %s\n",
              static_cast<unsigned long long>(es.reads_exact +
                                              es.reads_inexact),
              static_cast<unsigned long long>(es.reads_total),
              static_cast<unsigned long long>(es.reads_exact),
              static_cast<unsigned long long>(es.reads_inexact),
              static_cast<unsigned long long>(es.reads_unaligned),
              stats.wall_ms,
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.chunks),
              static_cast<double>(stats.peak_batch_bytes) / (1024.0 * 1024.0),
              writer.records_written(), sam_path.c_str());
  return 0;
}

int run_demo(const std::string& metrics_path, std::size_t pim_chips) {
  using namespace pim;
  std::printf("no input files: running the self-contained demo\n\n");

  // Generate reference + reads and write them as real files, so the demo
  // exercises the same I/O path as the CLI mode.
  genome::SyntheticGenomeSpec gspec;
  gspec.length = 120000;
  gspec.seed = 77;
  const auto reference = genome::generate_reference(gspec);
  genome::write_fasta_file("/tmp/pim_aligner_demo_ref.fasta",
                           {{"demo_ref synthetic", reference, 0}});

  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 400;
  rspec.population_variation_rate = 0.001;
  rspec.sequencing_error_rate = 0.002;
  rspec.error_ramp = 1.0;       // Illumina-like 3' degradation
  rspec.emit_qualities = true;  // real FASTQ qualities
  rspec.seed = 99;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  genome::write_fastq_file("/tmp/pim_aligner_demo_reads.fastq",
                           readsim::to_fastq(set));

  const int rc = run("/tmp/pim_aligner_demo_ref.fasta",
                     "/tmp/pim_aligner_demo_reads.fastq",
                     "/tmp/pim_aligner_demo.sam", 4, 2, /*shards=*/2,
                     metrics_path.empty()
                         ? "/tmp/pim_aligner_demo_metrics.jsonl"
                         : metrics_path,
                     pim_chips, /*index_path=*/"", /*save_index_path=*/"");
  if (rc != 0) return rc;

  std::printf("\nfirst SAM lines:\n");
  std::ifstream sam("/tmp/pim_aligner_demo.sam");
  std::string line;
  for (int i = 0; i < 8 && std::getline(sam, line); ++i) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}

}  // namespace

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s ref.fasta reads.fastq out.sam [threads] "
               "[max_diffs] [shards] [--metrics=PATH] [--pim-chips=N] "
               "[--save-index=PATH]\n"
               "       %s --index=PATH reads.fastq out.sam [threads] "
               "[max_diffs] [shards] [--metrics=PATH] [--pim-chips=N]\n",
               prog, prog);
}

int main(int argc, char** argv) {
  // Flags may appear anywhere; everything else is positional. An
  // unrecognized --flag is an error, not a silently ignored positional —
  // a typo like --metrcs=x must not run the demo with metrics off.
  std::string metrics_path;
  std::string index_path;
  std::string save_index_path;
  std::size_t pim_chips = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--pim-chips=", 0) == 0) {
      pim_chips = static_cast<std::size_t>(std::stoul(arg.substr(12)));
    } else if (arg.rfind("--index=", 0) == 0) {
      index_path = arg.substr(8);
    } else if (arg.rfind("--save-index=", 0) == 0) {
      save_index_path = arg.substr(13);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      print_usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (!index_path.empty() && !save_index_path.empty()) {
    // Contradictory: --index promises no build, --save-index requires one.
    std::fprintf(stderr, "%s: --index and --save-index are mutually "
                         "exclusive\n", argv[0]);
    print_usage(argv[0]);
    return 2;
  }
  if (positional.empty()) return run_demo(metrics_path, pim_chips);
  if (!index_path.empty()) {
    // ref.fasta is replaced by the artifact: positionals shift left.
    if (positional.size() < 2) {
      print_usage(argv[0]);
      return 2;
    }
    positional.insert(positional.begin(), "");
  }
  if (positional.size() < 3) {
    print_usage(argv[0]);
    return 2;
  }
  const std::size_t threads =
      positional.size() > 3
          ? static_cast<std::size_t>(std::stoul(positional[3]))
          : 0;
  const std::uint32_t max_diffs =
      positional.size() > 4
          ? static_cast<std::uint32_t>(std::stoul(positional[4]))
          : 2;
  const std::size_t shards =
      positional.size() > 5
          ? static_cast<std::size_t>(std::stoul(positional[5]))
          : 1;
  return run(positional[0], positional[1], positional[2], threads, max_diffs,
             shards, metrics_path, pim_chips, index_path, save_index_path);
}
