// Variant-calling mini-pipeline — the application the paper's introduction
// motivates ("genetic variants detection ... more accurate disease
// diagnostics"), end to end on this library:
//
//   reference -> donor genome with planted SNVs -> ART-like reads
//   -> two-stage alignment -> pileup -> SNV calls -> precision/recall
#include <cstdio>
#include <fstream>

#include "src/align/aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/varcall/snv_caller.h"
#include "src/varcall/vcf_writer.h"

int main() {
  using namespace pim;
  using util::TextTable;

  // 1. Reference and donor.
  genome::SyntheticGenomeSpec gspec;
  gspec.length = 200000;
  gspec.seed = 61;
  const auto reference = genome::generate_reference(gspec);
  auto donor = reference;
  util::Xoshiro256 rng(62);
  std::vector<std::pair<std::uint64_t, genome::Base>> truth;
  for (int v = 0; v < 120; ++v) {
    const std::uint64_t pos = 500 + rng.bounded(reference.size() - 1000);
    const auto ref_base = reference.at(pos);
    const auto alt = static_cast<genome::Base>(
        (static_cast<int>(ref_base) + 1 + static_cast<int>(rng.bounded(3))) %
        4);
    if (alt == ref_base) continue;
    donor.set(pos, alt);
    truth.emplace_back(pos, alt);
  }
  std::printf("reference: %zu bp; donor carries %zu planted SNVs\n",
              reference.size(), truth.size());

  // 2. Sequencing: ~25x coverage at the paper's error rate.
  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 50000;
  rspec.population_variation_rate = 0.0;
  rspec.sequencing_error_rate = 0.002;
  rspec.seed = 63;
  const auto set = readsim::ReadSimulator(rspec).generate(donor);
  std::printf("reads: %zu x %u bp (~%.0fx coverage), 0.2%% error\n",
              set.reads.size(), rspec.read_length,
              static_cast<double>(set.reads.size()) * rspec.read_length /
                  static_cast<double>(reference.size()));

  // 3. Align to the reference (the donor's SNVs surface as mismatches).
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  options.max_hits = 4;
  const align::Aligner aligner(fm, options);

  varcall::Pileup pileup(reference.size());
  align::AlignerStats stats;
  for (const auto& read : set.reads) {
    const auto result = aligner.align(read.bases);
    ++stats.reads_total;
    if (!result.aligned()) {
      ++stats.reads_unaligned;
      continue;
    }
    const auto best = *result.best();
    varcall::AlignedRead aligned;
    aligned.position = best.position;
    aligned.bases = best.strand == align::Strand::kForward
                        ? read.bases
                        : genome::reverse_complement(read.bases);
    pileup.add(aligned);
  }
  std::printf("aligned %llu/%llu reads; pileup mean depth %.1fx\n",
              static_cast<unsigned long long>(stats.reads_total -
                                              stats.reads_unaligned),
              static_cast<unsigned long long>(stats.reads_total),
              pileup.mean_depth());

  // 4. Call and score.
  const auto calls = varcall::call_snvs(pileup, reference);
  const auto accuracy = varcall::score_calls(calls, truth);
  TextTable out({"metric", "value"});
  out.add_row({"calls made", std::to_string(calls.size())});
  out.add_row({"true positives", std::to_string(accuracy.true_positives)});
  out.add_row({"false positives", std::to_string(accuracy.false_positives)});
  out.add_row({"false negatives", std::to_string(accuracy.false_negatives)});
  out.add_row({"precision", TextTable::num(accuracy.precision() * 100.0) + " %"});
  out.add_row({"recall", TextTable::num(accuracy.recall() * 100.0) + " %"});
  std::printf("\n%s", out.render().c_str());

  // 5. Emit VCF.
  std::ofstream vcf("/tmp/pim_aligner_demo.vcf");
  varcall::write_vcf_header(vcf, "demo_ref", reference.size());
  varcall::write_vcf_records(vcf, "demo_ref", calls);
  std::printf("\nwrote %zu VCF records -> /tmp/pim_aligner_demo.vcf\n",
              calls.size());

  std::printf("\nfirst calls:\n");
  std::size_t shown = 0;
  for (const auto& call : calls) {
    std::printf("  pos %llu  %c -> %c  depth %u  alt %u (%.0f%%)\n",
                static_cast<unsigned long long>(call.position),
                genome::to_char(call.ref_base), genome::to_char(call.alt_base),
                call.depth, call.alt_count, call.alt_fraction * 100.0);
    if (++shown == 5) break;
  }
  return 0;
}
