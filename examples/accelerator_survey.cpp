// Accelerator survey — the evaluation of Section VI as a program.
//
// Prints the full ten-platform comparison (Figures 8-10 in tabular form),
// the headline ratios, and a Pd sweep, so a user can reproduce the paper's
// conclusions or re-run them after changing the NVSim-style configuration.
#include <cstdio>

#include "src/accel/comparison.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  // A user can override any timing/energy/area scalar here, NVSim-style:
  //   util::Config over = util::Config::parse("-TripleSenseLatencyNs: 5\n");
  //   hw::TimingEnergyModel timing(over);
  const pim::hw::TimingEnergyModel timing;
  const pim::accel::PimChipModel chip(timing);
  const auto table = pim::accel::build_comparison(chip);

  std::printf("=== Short-read accelerator survey (paper Sec. VI) ===\n\n");
  TextTable out({"accelerator", "family", "W", "q/s", "q/s/W", "q/s/W/mm^2",
                 "off-chip GB", "MBR %", "RUR %"});
  for (const auto& row : table.rows) {
    out.add_row({row.name,
                 row.family == pim::accel::AlgorithmFamily::kSmithWaterman
                     ? "SW"
                     : "FM",
                 TextTable::num(row.power_w),
                 TextTable::num(row.throughput_qps),
                 TextTable::num(row.throughput_per_watt()),
                 TextTable::num(row.throughput_per_watt_per_mm2()),
                 TextTable::num(row.offchip_gb), TextTable::num(row.mbr_pct),
                 TextTable::num(row.rur_pct)});
  }
  std::printf("%s", out.render().c_str());

  const auto r = pim::accel::compute_headline_ratios(table);
  std::printf("\nheadline results:\n");
  std::printf("  throughput/Watt vs best DP accelerator (RaceLogic): %.1fx"
              "  (paper: ~3.1x)\n", r.tpw_vs_racelogic);
  std::printf("  throughput/Watt/mm^2 vs FM-index ASIC: %.1fx (paper: ~9x),"
              " vs AligneR: %.1fx (paper: 1.9x)\n",
              r.tpwa_vs_asic, r.tpwa_vs_aligner);
  std::printf("  pipelining (Pd=2): +%.0f%% throughput (paper: ~40%%)\n",
              (r.pipeline_gain - 1.0) * 100.0);

  std::printf("\nparallelism-degree sweep:\n");
  TextTable pd_table({"Pd", "q/s", "W", "q/s/W"});
  for (std::uint32_t pd = 1; pd <= 4; ++pd) {
    const auto rep = chip.evaluate(pd);
    pd_table.add_row({std::to_string(pd), TextTable::num(rep.throughput_qps),
                      TextTable::num(rep.power_w),
                      TextTable::num(rep.throughput_qps / rep.power_w)});
  }
  std::printf("%s", pd_table.render().c_str());
  return 0;
}
