// Inexact alignment walkthrough — Algorithm 2 in action.
//
// Shows how the mismatch budget z, the edit mode (substitutions-only vs
// full edit), and the lower-bound pruning affect what is found and how much
// backtracking the search does — "handles mismatches to reduce excessive
// backtracking" is the abstract's claim this example makes concrete.
#include <cstdio>

#include "src/align/inexact_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/table.h"

int main() {
  using namespace pim;
  using util::TextTable;

  genome::SyntheticGenomeSpec spec;
  spec.length = 100000;
  spec.seed = 7;
  const auto reference = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});

  // A read from position 40'000 with two planted substitutions and, for the
  // full-edit demo, one deleted base.
  auto read = reference.slice(40000, 40060);
  read[10] = static_cast<genome::Base>((static_cast<int>(read[10]) + 1) % 4);
  read[45] = static_cast<genome::Base>((static_cast<int>(read[45]) + 2) % 4);

  std::printf("read: 60 bp from position 40000 with 2 substitutions\n\n");
  TextTable table({"z", "mode", "pruning", "hits", "best diffs",
                   "states explored"});
  for (std::uint32_t z = 0; z <= 3; ++z) {
    for (const bool prune : {true, false}) {
      align::InexactOptions opt;
      opt.max_diffs = z;
      opt.use_lower_bound_pruning = prune;
      const auto result = align::inexact_search(fm, read, opt);
      table.add_row({std::to_string(z), "subst-only", prune ? "on" : "off",
                     std::to_string(result.hits.size()),
                     result.found() ? std::to_string(result.best_diffs()) : "-",
                     std::to_string(result.states_explored)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nnote how pruning cuts the explored states by orders of "
              "magnitude at the same results —\nthe D-array lower bound is "
              "what keeps backtracking from exploding.\n");

  // Full-edit mode: delete a base so substitutions alone cannot rescue it.
  auto indel_read = reference.slice(70000, 70050);
  indel_read.erase(indel_read.begin() + 25);
  std::printf("\nread: 49 bp from position 70000 with 1 deleted base\n\n");
  TextTable table2({"mode", "z", "hits", "best diffs", "positions"});
  for (const auto mode :
       {align::EditMode::kSubstitutionsOnly, align::EditMode::kFullEdit}) {
    align::InexactOptions opt;
    opt.max_diffs = 1;
    opt.mode = mode;
    const auto result = align::inexact_search(fm, indel_read, opt);
    std::string positions;
    for (const auto& [pos, diffs] : align::inexact_locate(fm, indel_read, opt)) {
      positions += std::to_string(pos) + "(" + std::to_string(diffs) + ") ";
      if (positions.size() > 40) break;
    }
    table2.add_row(
        {mode == align::EditMode::kFullEdit ? "full edit" : "subst-only", "1",
         std::to_string(result.hits.size()),
         result.found() ? std::to_string(result.best_diffs()) : "-",
         positions.empty() ? "-" : positions});
  }
  std::printf("%s", table2.render().c_str());
  std::printf("\nsubstitutions alone cannot absorb an indel: only the "
              "full-edit mode (insertion/deletion moves\nof Algorithm 2) "
              "recovers the origin at 70000.\n");
  return 0;
}
