// Quickstart — build an FM-index over a reference, align a handful of reads
// through the two-stage pipeline (exact, then inexact with backtracking),
// and print the hits.
//
//   ./quickstart                 # built-in demo reference
//   ./quickstart ref.fasta       # index the first record of a FASTA file
#include <cstdio>
#include <string>

#include "src/align/aligner.h"
#include "src/genome/fasta.h"
#include "src/genome/synthetic_genome.h"

int main(int argc, char** argv) {
  using namespace pim;

  // 1. Obtain a reference: from FASTA if given, else a synthetic genome.
  genome::PackedSequence reference;
  if (argc > 1) {
    const auto records = genome::read_fasta_file(argv[1]);
    if (records.empty()) {
      std::fprintf(stderr, "no FASTA records in %s\n", argv[1]);
      return 1;
    }
    reference = records[0].sequence;
    std::printf("reference: %s (%zu bp from %s)\n", records[0].name.c_str(),
                reference.size(), argv[1]);
  } else {
    genome::SyntheticGenomeSpec spec;
    spec.length = 200000;
    spec.seed = 42;
    reference = genome::generate_reference(spec);
    std::printf("reference: %zu bp synthetic genome (seed 42)\n",
                reference.size());
  }

  // 2. Build the index: BWT + Marker Table + SA, exactly the structures the
  //    paper keeps resident in memory (Fig. 2).
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  const auto fp = fm.memory_footprint();
  std::printf("index built: BWT %zu B, MT %zu B, SA %zu B\n", fp.bwt_bytes,
              fp.marker_bytes, fp.sa_bytes);

  // 3. Align: a perfect read, a mutated read, and a reverse-complement read.
  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const align::Aligner aligner(fm, options);

  struct Demo {
    const char* label;
    std::vector<genome::Base> read;
  };
  auto perfect = reference.slice(1000, 1100);
  auto mutated = reference.slice(5000, 5100);
  mutated[37] = genome::complement(mutated[37] == genome::Base::A
                                       ? genome::Base::C
                                       : genome::Base::A);
  auto reverse = genome::reverse_complement(reference.slice(9000, 9100));
  const Demo demos[] = {{"perfect read @1000", perfect},
                        {"1-mismatch read @5000", mutated},
                        {"reverse-strand read @9000", reverse}};

  for (const auto& demo : demos) {
    const auto result = aligner.align(demo.read);
    const char* stage =
        result.stage == align::AlignmentStage::kExact      ? "exact"
        : result.stage == align::AlignmentStage::kInexact  ? "inexact"
                                                           : "unaligned";
    std::printf("\n%s -> stage: %s, %zu hit(s)\n", demo.label, stage,
                result.hits.size());
    std::size_t shown = 0;
    for (const auto& hit : result.hits) {
      std::printf("   pos %llu, %u diff(s), %s strand\n",
                  static_cast<unsigned long long>(hit.position), hit.diffs,
                  hit.strand == align::Strand::kForward ? "fwd" : "rev");
      if (++shown == 5) break;
    }
  }
  return 0;
}
