// Quickstart — build an FM-index over a reference, pack a handful of reads
// into a ReadBatch, align them through the batch engine (two-stage pipeline:
// exact, then inexact with backtracking), and print the hits.
//
//   ./quickstart                 # built-in demo reference
//   ./quickstart ref.fasta       # index the first record of a FASTA file
#include <cstdio>
#include <string>

#include "src/align/engine.h"
#include "src/genome/fasta.h"
#include "src/genome/synthetic_genome.h"

int main(int argc, char** argv) {
  using namespace pim;

  // 1. Obtain a reference: from FASTA if given, else a synthetic genome.
  genome::PackedSequence reference;
  if (argc > 1) {
    const auto records = genome::read_fasta_file(argv[1]);
    if (records.empty()) {
      std::fprintf(stderr, "no FASTA records in %s\n", argv[1]);
      return 1;
    }
    reference = records[0].sequence;
    std::printf("reference: %s (%zu bp from %s)\n", records[0].name.c_str(),
                reference.size(), argv[1]);
  } else {
    genome::SyntheticGenomeSpec spec;
    spec.length = 200000;
    spec.seed = 42;
    reference = genome::generate_reference(spec);
    std::printf("reference: %zu bp synthetic genome (seed 42)\n",
                reference.size());
  }

  // 2. Build the index: BWT + Marker Table + SA, exactly the structures the
  //    paper keeps resident in memory (Fig. 2).
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  const auto fp = fm.memory_footprint();
  std::printf("index built: BWT %zu B, MT %zu B, SA %zu B\n", fp.bwt_bytes,
              fp.marker_bytes, fp.sa_bytes);

  // 3. Pack the demo reads — a perfect read, a mutated read, and a
  //    reverse-complement read — into one arena-backed batch.
  auto mutated = reference.slice(5000, 5100);
  mutated[37] = genome::complement(mutated[37] == genome::Base::A
                                       ? genome::Base::C
                                       : genome::Base::A);
  align::ReadBatchBuilder builder;
  builder.add_slice(reference, 1000, 1100, "perfect read @1000");
  builder.add(mutated, "1-mismatch read @5000");
  builder.add(genome::reverse_complement(reference.slice(9000, 9100)),
              "reverse-strand read @9000");
  const auto batch = builder.build();

  // 4. Align the batch through the engine interface. Swapping this line for
  //    hw::PimEngine runs the same batch on the simulated SOT-MRAM
  //    sub-arrays with bit-identical results (see examples/pim_simulation).
  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const align::SoftwareEngine engine(fm, options);
  align::BatchResult results;
  engine.align_batch(batch, results);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const char* stage =
        results.stage(i) == align::AlignmentStage::kExact      ? "exact"
        : results.stage(i) == align::AlignmentStage::kInexact  ? "inexact"
                                                               : "unaligned";
    std::printf("\n%.*s -> stage: %s, %zu hit(s)\n",
                static_cast<int>(batch.name(i).size()), batch.name(i).data(),
                stage, results.hits(i).size());
    std::size_t shown = 0;
    for (const auto& hit : results.hits(i)) {
      std::printf("   pos %llu, %u diff(s), %s strand\n",
                  static_cast<unsigned long long>(hit.position), hit.diffs,
                  hit.strand == align::Strand::kForward ? "fwd" : "rev");
      if (++shown == 5) break;
    }
  }
  std::printf("\nengine '%.*s': %llu reads in %.2f ms (%llu exact searches, "
              "%llu inexact)\n",
              static_cast<int>(engine.name().size()), engine.name().data(),
              static_cast<unsigned long long>(results.stats().reads_total),
              results.stats().wall_ms,
              static_cast<unsigned long long>(results.stats().exact_searches),
              static_cast<unsigned long long>(
                  results.stats().inexact_searches));
  return 0;
}
