// SAM -> VCF variant caller — composes with fastq_to_sam / index_cli as
// separate pipeline stages, UNIX-style:
//
//   ./sam_to_vcf <ref.fasta> <in.sam> <out.vcf> [contig]
//   ./sam_to_vcf                     # self-contained demo
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/align/aligner.h"
#include "src/align/sam_writer.h"
#include "src/genome/fasta.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"
#include "src/util/rng.h"
#include "src/varcall/sam_reader.h"
#include "src/varcall/snv_caller.h"
#include "src/varcall/vcf_writer.h"

namespace {

int run(const std::string& ref_path, const std::string& sam_path,
        const std::string& vcf_path, std::string contig) {
  using namespace pim;
  const auto records = genome::read_fasta_file(ref_path);
  if (records.empty()) {
    std::fprintf(stderr, "no FASTA records in %s\n", ref_path.c_str());
    return 1;
  }
  const auto& reference = records[0].sequence;
  if (contig.empty()) {
    contig = records[0].name.substr(0, records[0].name.find(' '));
  }

  std::ifstream sam(sam_path);
  if (!sam) {
    std::fprintf(stderr, "cannot open %s\n", sam_path.c_str());
    return 1;
  }
  varcall::Pileup pileup(reference.size());
  const auto stats = varcall::pileup_from_sam(sam, contig, pileup);
  std::printf("SAM: %llu records (%llu used, %llu unmapped, %llu secondary, "
              "%llu other contig); mean depth %.1fx\n",
              static_cast<unsigned long long>(stats.records),
              static_cast<unsigned long long>(stats.used),
              static_cast<unsigned long long>(stats.unmapped),
              static_cast<unsigned long long>(stats.secondary),
              static_cast<unsigned long long>(stats.other_reference),
              pileup.mean_depth());

  const auto calls = varcall::call_snvs(pileup, reference);
  std::ofstream vcf(vcf_path);
  varcall::write_vcf_header(vcf, contig, reference.size());
  varcall::write_vcf_records(vcf, contig, calls);
  std::printf("%zu SNV calls -> %s\n", calls.size(), vcf_path.c_str());
  return 0;
}

int demo() {
  using namespace pim;
  std::printf("no arguments: demo (simulate -> align -> SAM -> VCF)\n\n");
  genome::SyntheticGenomeSpec gspec;
  gspec.length = 60000;
  gspec.seed = 91;
  const auto reference = genome::generate_reference(gspec);
  auto donor = reference;
  util::Xoshiro256 rng(92);
  std::size_t planted = 0;
  for (int v = 0; v < 30; ++v) {
    const std::uint64_t pos = 300 + rng.bounded(reference.size() - 600);
    const auto alt = static_cast<genome::Base>(
        (static_cast<int>(reference.at(pos)) + 1) % 4);
    donor.set(pos, alt);
    ++planted;
  }
  genome::write_fasta_file("/tmp/pim_s2v_ref.fasta",
                           {{"demo", reference, 0}});

  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 12000;
  rspec.population_variation_rate = 0.0;
  rspec.sequencing_error_rate = 0.002;
  rspec.seed = 93;
  const auto set = readsim::ReadSimulator(rspec).generate(donor);

  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const align::Aligner aligner(fm, options);
  std::ofstream sam("/tmp/pim_s2v.sam");
  align::SamWriter writer(sam, "demo", reference);
  writer.write_header();
  for (std::size_t i = 0; i < set.reads.size(); ++i) {
    writer.write_alignment("r" + std::to_string(i), set.reads[i].bases,
                           aligner.align(set.reads[i].bases));
  }
  sam.close();
  std::printf("planted %zu SNVs; aligned %zu reads -> /tmp/pim_s2v.sam\n",
              planted, set.reads.size());
  return run("/tmp/pim_s2v_ref.fasta", "/tmp/pim_s2v.sam",
             "/tmp/pim_s2v.vcf", "demo");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return demo();
  if (argc < 4) {
    std::fprintf(stderr, "usage: %s <ref.fasta> <in.sam> <out.vcf> [contig]\n",
                 argv[0]);
    return 2;
  }
  return run(argv[1], argv[2], argv[3], argc > 4 ? argv[4] : "");
}
