#include "src/varcall/vcf_writer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pim::varcall {
namespace {

using genome::Base;

TEST(VcfWriter, HeaderContents) {
  std::ostringstream out;
  write_vcf_header(out, "chr1", 12345, "test-source");
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("##fileformat=VCFv4.2", 0), 0U);  // first line
  EXPECT_NE(text.find("##contig=<ID=chr1,length=12345>"), std::string::npos);
  EXPECT_NE(text.find("##source=test-source"), std::string::npos);
  EXPECT_NE(text.find("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO"),
            std::string::npos);
}

TEST(VcfWriter, RecordFields) {
  std::ostringstream out;
  std::vector<SnvCall> calls;
  calls.push_back({41, Base::A, Base::G, 30, 29, 29.0 / 30.0});
  write_vcf_records(out, "chr1", calls);
  const std::string line = out.str();
  EXPECT_NE(line.find("chr1\t42\t.\tA\tG\t"), std::string::npos);  // 1-based
  EXPECT_NE(line.find("PASS\tDP=30;AD=29;AF=0.967"), std::string::npos);
}

TEST(VcfWriter, RoundTripThroughParser) {
  std::stringstream stream;
  write_vcf_header(stream, "demo", 1000);
  std::vector<SnvCall> calls;
  calls.push_back({9, Base::C, Base::T, 20, 20, 1.0});
  calls.push_back({99, Base::G, Base::A, 15, 14, 14.0 / 15.0});
  write_vcf_records(stream, "demo", calls);
  const auto triples = parse_vcf_triples(stream);
  ASSERT_EQ(triples.size(), 2U);
  EXPECT_EQ(triples[0], (VcfTriple{10, 'C', 'T'}));
  EXPECT_EQ(triples[1], (VcfTriple{100, 'G', 'A'}));
}

TEST(VcfWriter, ParserRejectsMalformed) {
  std::istringstream in("chr1\t10\t.\tAC\tG\t50\tPASS\tDP=1\n");  // REF len 2
  EXPECT_THROW(parse_vcf_triples(in), std::runtime_error);
  std::istringstream truncated("chr1\t10\t.\n");
  EXPECT_THROW(parse_vcf_triples(truncated), std::runtime_error);
}

TEST(VcfWriter, QualClamped) {
  std::ostringstream out;
  std::vector<SnvCall> calls;
  calls.push_back({0, Base::A, Base::C, 500, 500, 1.0});
  write_vcf_records(out, "c", calls);
  // 500 * 10 would be 5000; clamped to 99.
  EXPECT_NE(out.str().find("\t99\tPASS"), std::string::npos);
}

}  // namespace
}  // namespace pim::varcall
