#include "src/genome/fastq.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace pim::genome {
namespace {

TEST(Phred, CharRoundTrip) {
  for (int q = 0; q <= 93; ++q) {
    EXPECT_EQ(char_to_phred(phred_to_char(q)), q);
  }
  EXPECT_EQ(phred_to_char(-5), '!');   // clamps to 0
  EXPECT_EQ(phred_to_char(200), '~');  // clamps to 93
  EXPECT_THROW(char_to_phred(' '), std::invalid_argument);
}

TEST(Phred, ErrorProbability) {
  EXPECT_DOUBLE_EQ(phred_to_error_probability(0), 1.0);
  EXPECT_NEAR(phred_to_error_probability(10), 0.1, 1e-12);
  EXPECT_NEAR(phred_to_error_probability(30), 1e-3, 1e-12);
  EXPECT_EQ(error_probability_to_phred(1e-3), 30);
  EXPECT_EQ(error_probability_to_phred(0.0), 93);
  EXPECT_EQ(error_probability_to_phred(1.0), 0);
  // Round trip within rounding.
  for (int q = 0; q <= 60; ++q) {
    EXPECT_EQ(error_probability_to_phred(phred_to_error_probability(q)), q);
  }
}

TEST(Fastq, ParsesRecords) {
  std::istringstream in(
      "@read1 some description\n"
      "ACGT\n"
      "+\n"
      "IIII\n"
      "@read2\n"
      "TT\n"
      "+read2\n"
      "!~\n");
  const auto records = read_fastq(in);
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[0].name, "read1 some description");
  EXPECT_EQ(records[0].sequence.to_string(), "ACGT");
  EXPECT_EQ(records[0].qualities, "IIII");
  EXPECT_EQ(records[1].sequence.to_string(), "TT");
  EXPECT_EQ(char_to_phred(records[1].qualities[0]), 0);
  EXPECT_EQ(char_to_phred(records[1].qualities[1]), 93);
}

TEST(Fastq, NCallsBecomeLowQualityA) {
  std::istringstream in("@r\nACNT\n+\nIIII\n");
  const auto records = read_fastq(in);
  EXPECT_EQ(records[0].sequence.to_string(), "ACAT");
  EXPECT_EQ(char_to_phred(records[0].qualities[2]), 0);
  EXPECT_EQ(char_to_phred(records[0].qualities[0]), 40);
}

TEST(Fastq, StructuralErrorsThrow) {
  {
    std::istringstream in("ACGT\n+\nIIII\n");  // no '@'
    EXPECT_THROW(read_fastq(in), std::runtime_error);
  }
  {
    std::istringstream in("@r\nACGT\nIIII\n");  // missing '+'
    EXPECT_THROW(read_fastq(in), std::runtime_error);
  }
  {
    std::istringstream in("@r\nACGT\n+\nII\n");  // quality length mismatch
    EXPECT_THROW(read_fastq(in), std::runtime_error);
  }
  {
    std::istringstream in("@r\nACGT\n+\n");  // truncated
    EXPECT_THROW(read_fastq(in), std::runtime_error);
  }
}

TEST(Fastq, CrlfTolerated) {
  std::istringstream in("@r\r\nAC\r\n+\r\nII\r\n");
  const auto records = read_fastq(in);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].sequence.to_string(), "AC");
}

TEST(Fastq, WriteReadRoundTrip) {
  std::vector<FastqRecord> records;
  records.push_back({"a", PackedSequence("ACGTACGT"), "IIIIIIII"});
  records.push_back({"b", PackedSequence("T"), "5"});
  std::ostringstream out;
  write_fastq(out, records);
  std::istringstream in(out.str());
  const auto again = read_fastq(in);
  ASSERT_EQ(again.size(), 2U);
  EXPECT_EQ(again[0].name, "a");
  EXPECT_EQ(again[0].sequence.to_string(), "ACGTACGT");
  EXPECT_EQ(again[0].qualities, "IIIIIIII");
  EXPECT_EQ(again[1].qualities, "5");
}

TEST(FastqStream, ReadsOneAtATime) {
  std::istringstream in(
      "@a\nAC\n+\nII\n"
      "\n"  // blank line between records tolerated
      "@b\nGT\n+\n!!\n");
  FastqStreamReader reader(in);
  FastqRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.name, "a");
  EXPECT_EQ(rec.sequence.to_string(), "AC");
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.name, "b");
  EXPECT_EQ(rec.sequence.to_string(), "GT");
  EXPECT_FALSE(reader.next(rec));
  EXPECT_EQ(reader.records_read(), 2U);
}

TEST(FastqStream, RecordReusedBufferFullyOverwritten) {
  std::istringstream in("@long\nACGTACGT\n+\nIIIIIIII\n@short\nT\n+\n5\n");
  FastqStreamReader reader(in);
  FastqRecord rec;
  ASSERT_TRUE(reader.next(rec));
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.sequence.size(), 1U);  // no leftover from the long record
  EXPECT_EQ(rec.qualities, "5");
}

TEST(FastqStream, MalformedMidStreamThrows) {
  std::istringstream in("@ok\nAC\n+\nII\nnot_a_header\nAC\n+\nII\n");
  FastqStreamReader reader(in);
  FastqRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST(FastqStream, ErrorsNameTheRecordIndex) {
  std::istringstream in("@a\nAC\n+\nII\n@b\nAC\n+\nII\nbroken\nAC\n+\nII\n");
  FastqStreamReader reader(in);
  FastqRecord rec;
  ASSERT_TRUE(reader.next(rec));
  ASSERT_TRUE(reader.next(rec));
  try {
    reader.next(rec);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("(record 3)"), std::string::npos)
        << e.what();
  }
}

TEST(FastqStream, TruncatedFinalRecordThrows) {
  {
    std::istringstream in("@a\nAC\n+\nII\n@b\nAC\n");  // ends after sequence
    FastqStreamReader reader(in);
    FastqRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_THROW(reader.next(rec), std::runtime_error);
  }
  {
    std::istringstream in("@a\nAC\n+\n");  // ends after '+'
    FastqStreamReader reader(in);
    FastqRecord rec;
    try {
      reader.next(rec);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("(record 1)"), std::string::npos)
          << e.what();
    }
  }
  {
    std::istringstream in("@a\n");  // header only
    FastqStreamReader reader(in);
    FastqRecord rec;
    EXPECT_THROW(reader.next(rec), std::runtime_error);
  }
}

TEST(Fastq, WriteRejectsLengthMismatch) {
  std::vector<FastqRecord> records;
  records.push_back({"bad", PackedSequence("ACGT"), "II"});
  std::ostringstream out;
  EXPECT_THROW(write_fastq(out, records), std::invalid_argument);
}

}  // namespace
}  // namespace pim::genome
