#include "src/genome/packed_sequence.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/rng.h"

namespace pim::genome {
namespace {

TEST(PackedSequence, EmptyByDefault) {
  PackedSequence s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0U);
}

TEST(PackedSequence, FromStringRoundTrip) {
  const std::string text = "ACGTTGCAACGT";
  const PackedSequence s(text);
  EXPECT_EQ(s.size(), text.size());
  EXPECT_EQ(s.to_string(), text);
}

TEST(PackedSequence, PushBackAcrossWordBoundary) {
  PackedSequence s;
  std::string expect;
  // 70 bases crosses the 32-bases-per-word boundary twice.
  for (int i = 0; i < 70; ++i) {
    const Base b = static_cast<Base>(i % 4);
    s.push_back(b);
    expect.push_back(to_char(b));
  }
  EXPECT_EQ(s.to_string(), expect);
}

TEST(PackedSequence, AtMatchesUnpacked) {
  util::Xoshiro256 rng(3);
  std::vector<Base> bases;
  for (int i = 0; i < 200; ++i) bases.push_back(static_cast<Base>(rng.bounded(4)));
  const PackedSequence s(bases);
  const auto unpacked = s.unpack();
  ASSERT_EQ(unpacked.size(), bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    EXPECT_EQ(s.at(i), bases[i]);
    EXPECT_EQ(unpacked[i], bases[i]);
  }
}

TEST(PackedSequence, SetOverwrites) {
  PackedSequence s("AAAA");
  s.set(2, Base::G);
  EXPECT_EQ(s.to_string(), "AAGA");
  s.set(0, Base::T);
  EXPECT_EQ(s.to_string(), "TAGA");
}

TEST(PackedSequence, SetOutOfRangeThrows) {
  PackedSequence s("ACG");
  EXPECT_THROW(s.set(3, Base::A), std::out_of_range);
}

TEST(PackedSequence, Slice) {
  const PackedSequence s("ACGTACGT");
  EXPECT_EQ(decode(s.slice(2, 6)), "GTAC");
  EXPECT_EQ(decode(s.slice(0, 0)), "");
  EXPECT_EQ(decode(s.slice(8, 8)), "");
  EXPECT_THROW(s.slice(5, 3), std::out_of_range);
  EXPECT_THROW(s.slice(0, 9), std::out_of_range);
}

TEST(PackedSequence, Equality) {
  PackedSequence a("ACGT"), b("ACGT"), c("ACGA");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(PackedSequence, MemoryIsTwoBitsPerBase) {
  PackedSequence s;
  for (int i = 0; i < 3200; ++i) s.push_back(Base::A);
  // 3200 bases = 100 words = 800 bytes.
  EXPECT_EQ(s.memory_bytes(), 800U);
}

}  // namespace
}  // namespace pim::genome
