// Equivalence suite for the unified batch alignment engine (S37):
//   * SoftwareEngine, PimEngine, and the legacy per-read Aligner path must
//     produce bit-identical AlignmentResults on randomized reads (exact,
//     inexact, reverse-complement, unaligned);
//   * chunked parallel scheduling must be positionally deterministic across
//     thread counts and chunk sizes;
//   * ReadBatch must round-trip reads, names, and qualities losslessly;
//   * EngineStats must carry the per-stage counters the legacy front-ends
//     used to drop.
#include "src/align/engine.h"

#include <gtest/gtest.h>

#include "src/align/parallel_aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/pim_engine.h"
#include "src/readsim/read_simulator.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

// Randomized read mix covering every outcome class: exact copies, mutated
// reads (stage two), reverse-complement strands of both, and random garbage
// (unaligned).
std::vector<std::vector<genome::Base>> make_read_mix(
    const genome::PackedSequence& reference, std::size_t count,
    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<genome::Base>> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = 60 + rng.bounded(41);  // 60-100 bp
    std::vector<genome::Base> read;
    if (i % 5 == 4) {
      // Random garbage: overwhelmingly unaligned.
      for (std::size_t k = 0; k < len; ++k) {
        read.push_back(static_cast<genome::Base>(rng.bounded(4)));
      }
    } else {
      const std::size_t start = rng.bounded(reference.size() - len);
      read = reference.slice(start, start + len);
      if (i % 5 == 1 || i % 5 == 3) {
        // 1-2 substitutions: exercises the inexact stage.
        const std::size_t subs = 1 + rng.bounded(2);
        for (std::size_t s = 0; s < subs; ++s) {
          const std::size_t pos = rng.bounded(read.size());
          read[pos] = genome::complement(read[pos]);
        }
      }
      if (i % 5 >= 2) read = genome::reverse_complement(read);
    }
    reads.push_back(std::move(read));
  }
  return reads;
}

struct Fixture {
  genome::PackedSequence reference;
  index::FmIndex fm;
  std::vector<std::vector<genome::Base>> reads;
  ReadBatch batch;
  AlignerOptions options;

  explicit Fixture(std::size_t num_reads = 120, std::uint64_t seed = 21) {
    genome::SyntheticGenomeSpec spec;
    spec.length = 60000;
    spec.seed = 15;
    reference = genome::generate_reference(spec);
    fm = index::FmIndex::build(reference, {.bucket_width = 128});
    reads = make_read_mix(reference, num_reads, seed);
    batch = ReadBatch::from_reads(reads);
    options.inexact.max_diffs = 2;
  }
};

void expect_identical(const AlignmentResult& want, AlignmentStage got_stage,
                      std::span<const AlignmentHit> got_hits,
                      std::size_t read_index, const char* label) {
  EXPECT_EQ(got_stage, want.stage) << label << " read " << read_index;
  ASSERT_EQ(got_hits.size(), want.hits.size())
      << label << " read " << read_index;
  for (std::size_t h = 0; h < want.hits.size(); ++h) {
    EXPECT_EQ(got_hits[h].position, want.hits[h].position)
        << label << " read " << read_index << " hit " << h;
    EXPECT_EQ(got_hits[h].diffs, want.hits[h].diffs)
        << label << " read " << read_index << " hit " << h;
    EXPECT_EQ(got_hits[h].strand, want.hits[h].strand)
        << label << " read " << read_index << " hit " << h;
  }
}

TEST(ReadBatch, RoundTripsReads) {
  Fixture f;
  ASSERT_EQ(f.batch.size(), f.reads.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    total += f.reads[i].size();
    EXPECT_EQ(f.batch.read_length(i), f.reads[i].size());
    EXPECT_EQ(f.batch.read(i).unpack(), f.reads[i]) << i;
    // Random access through the view matches too.
    const ReadView view = f.batch.read(i);
    for (std::size_t k = 0; k < f.reads[i].size(); k += 7) {
      EXPECT_EQ(view[k], f.reads[i][k]);
    }
  }
  EXPECT_EQ(f.batch.total_bases(), total);
  EXPECT_FALSE(f.batch.has_names());
  EXPECT_FALSE(f.batch.has_qualities());
}

TEST(ReadBatch, CarriesNamesAndQualities) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 20000;
  spec.seed = 4;
  const auto reference = genome::generate_reference(spec);
  readsim::ReadSimSpec rspec;
  rspec.read_length = 50;
  rspec.num_reads = 40;
  rspec.emit_qualities = true;
  rspec.seed = 6;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  const auto records = readsim::to_fastq(set, "r");

  const auto batch = ReadBatch::from_fastq(records);
  ASSERT_EQ(batch.size(), records.size());
  EXPECT_TRUE(batch.has_names());
  EXPECT_TRUE(batch.has_qualities());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(batch.name(i), records[i].name) << i;
    EXPECT_EQ(batch.qualities(i), records[i].qualities) << i;
    EXPECT_EQ(batch.read(i).unpack(), records[i].sequence.unpack()) << i;
  }
}

TEST(ReadBatch, UnnamedReadsBeforeNamedOnesBackfillEmpty) {
  ReadBatchBuilder builder;
  builder.add(std::vector<genome::Base>{genome::Base::A, genome::Base::C});
  builder.add(std::vector<genome::Base>{genome::Base::G}, "named");
  const auto batch = builder.build();
  ASSERT_TRUE(batch.has_names());
  EXPECT_EQ(batch.name(0), "");
  EXPECT_EQ(batch.name(1), "named");
}

TEST(Engine, SoftwareEngineBitIdenticalToLegacyAligner) {
  Fixture f;
  const Aligner aligner(f.fm, f.options);
  const SoftwareEngine engine(f.fm, f.options);

  AlignerStats legacy_stats;
  const auto legacy = aligner.align_batch(f.reads, &legacy_stats);

  BatchResult result;
  engine.align_batch(f.batch, result);

  ASSERT_EQ(result.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    expect_identical(legacy[i], result.stage(i), result.hits(i), i,
                     "software");
  }
  // Outcome classes all occur in the mix (the suite is vacuous otherwise).
  EXPECT_GT(result.stats().reads_exact, 0u);
  EXPECT_GT(result.stats().reads_inexact, 0u);
  EXPECT_GT(result.stats().reads_unaligned, 0u);
  // And the stats agree with the legacy accounting.
  EXPECT_EQ(result.stats().reads_total, legacy_stats.reads_total);
  EXPECT_EQ(result.stats().reads_exact, legacy_stats.reads_exact);
  EXPECT_EQ(result.stats().reads_inexact, legacy_stats.reads_inexact);
  EXPECT_EQ(result.stats().reads_unaligned, legacy_stats.reads_unaligned);
}

TEST(Engine, PimEngineBitIdenticalToSoftwareEngine) {
  Fixture f(60);  // PIM simulation pays per-op accounting; keep it modest.
  const SoftwareEngine software(f.fm, f.options);
  hw::TimingEnergyModel timing;
  hw::PimAlignerPlatform platform(f.fm, timing);
  const hw::PimEngine pim_engine(platform, f.options);

  BatchResult sw, hw_result;
  software.align_batch(f.batch, sw);
  const auto report = pim_engine.run(f.batch, hw_result);

  ASSERT_EQ(hw_result.size(), sw.size());
  for (std::size_t i = 0; i < sw.size(); ++i) {
    expect_identical(sw.result(i), hw_result.stage(i), hw_result.hits(i), i,
                     "pim");
  }
  EXPECT_EQ(report.stats.reads_total, sw.stats().reads_total);
  EXPECT_EQ(report.stats.reads_exact, sw.stats().reads_exact);
  EXPECT_GT(report.hardware.lfm_calls, 0u);
  EXPECT_GT(report.energy_pj, 0.0);
}

TEST(Engine, ChunkedParallelDeterministicAcrossThreadAndChunkCounts) {
  Fixture f;
  const SoftwareEngine engine(f.fm, f.options);

  BatchResult serial;
  engine.align_batch(f.batch, serial);

  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    for (const std::size_t chunk : {0u, 1u, 7u, 64u, 1000u}) {
      BatchResult parallel;
      align_batch_parallel(engine, f.batch, parallel,
                           ParallelOptions{.num_threads = threads,
                                           .chunk_size = chunk});
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        expect_identical(serial.result(i), parallel.stage(i),
                         parallel.hits(i), i, "parallel");
      }
      EXPECT_EQ(parallel.stats().reads_total, serial.stats().reads_total);
      EXPECT_EQ(parallel.stats().reads_exact, serial.stats().reads_exact);
      EXPECT_EQ(parallel.stats().reads_inexact, serial.stats().reads_inexact);
      EXPECT_EQ(parallel.stats().reads_unaligned,
                serial.stats().reads_unaligned);
      EXPECT_EQ(parallel.stats().hits_total, serial.stats().hits_total);
    }
  }
}

TEST(Engine, SchedulerRunsNonThreadSafeEnginesSerially) {
  Fixture f(30);
  hw::TimingEnergyModel timing;
  hw::PimAlignerPlatform platform(f.fm, timing);
  const hw::PimEngine engine(platform, f.options);
  EXPECT_FALSE(engine.thread_safe());

  BatchResult serial, scheduled;
  engine.align_batch(f.batch, serial);
  align_batch_parallel(engine, f.batch, scheduled,
                       ParallelOptions{.num_threads = 8});
  ASSERT_EQ(scheduled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial.result(i), scheduled.stage(i), scheduled.hits(i),
                     i, "pim-scheduled");
  }
}

TEST(Engine, LegacyParallelAdapterMatchesAlignerAndReportsStats) {
  Fixture f;
  const Aligner aligner(f.fm, f.options);
  AlignerStats serial_stats, parallel_stats;
  const auto serial = aligner.align_batch(f.reads, &serial_stats);
  const auto parallel =
      align_batch_parallel(aligner, f.reads, 4, &parallel_stats);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i].stage,
                     std::span<const AlignmentHit>(parallel[i].hits), i,
                     "legacy-adapter");
  }
  EXPECT_EQ(parallel_stats.reads_total, serial_stats.reads_total);
  EXPECT_EQ(parallel_stats.reads_exact, serial_stats.reads_exact);
  EXPECT_EQ(parallel_stats.reads_inexact, serial_stats.reads_inexact);
  EXPECT_EQ(parallel_stats.reads_unaligned, serial_stats.reads_unaligned);
}

TEST(Engine, StatsCarryStageSearchCountersAndWallTime) {
  Fixture f;
  const SoftwareEngine engine(f.fm, f.options);
  BatchResult result;
  engine.align_batch(f.batch, result);
  const auto& s = result.stats();
  // Both strands of stage one run for every read.
  EXPECT_EQ(s.exact_searches, 2 * s.reads_total);
  // Stage two runs (both strands) exactly for stage-one misses.
  EXPECT_EQ(s.inexact_searches,
            2 * (s.reads_inexact + s.reads_unaligned));
  EXPECT_EQ(s.batches, 1u);
  EXPECT_GT(s.wall_ms, 0.0);
  EXPECT_GT(s.result_bytes, 0u);

  // merge() is associative accumulation.
  EngineStats merged;
  merged.merge(s);
  merged.merge(s);
  EXPECT_EQ(merged.reads_total, 2 * s.reads_total);
  EXPECT_EQ(merged.exact_searches, 2 * s.exact_searches);

  const AlignerStats legacy = s.to_aligner_stats();
  EXPECT_EQ(legacy.reads_total, s.reads_total);
  EXPECT_EQ(legacy.reads_exact, s.reads_exact);
}

TEST(Engine, BatchResultBestMatchesLegacyBest) {
  Fixture f;
  const SoftwareEngine engine(f.fm, f.options);
  const Aligner aligner(f.fm, f.options);
  BatchResult result;
  engine.align_batch(f.batch, result);
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    const auto want = aligner.align(f.reads[i]).best();
    const auto got = result.best(i);
    ASSERT_EQ(got.has_value(), want.has_value()) << i;
    if (want) {
      EXPECT_EQ(got->position, want->position) << i;
      EXPECT_EQ(got->diffs, want->diffs) << i;
      EXPECT_EQ(got->strand, want->strand) << i;
    }
  }
}

TEST(Engine, SeedExtendEngineAlignsLongReads) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 120000;
  spec.seed = 31;
  const auto reference = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});

  util::Xoshiro256 rng(77);
  ReadBatchBuilder builder;
  std::vector<std::uint64_t> origins;
  for (int i = 0; i < 10; ++i) {
    const std::size_t start = rng.bounded(reference.size() - 1000);
    auto read = reference.slice(start, start + 1000);
    for (int s = 0; s < 3; ++s) {  // ~0.3% divergence
      const std::size_t pos = rng.bounded(read.size());
      read[pos] = genome::complement(read[pos]);
    }
    if (i % 2 == 1) read = genome::reverse_complement(read);
    builder.add(read);
    origins.push_back(start);
  }
  const auto batch = builder.build();

  const SeedExtendEngine engine(fm, reference);
  BatchResult result;
  engine.align_batch(batch, result);

  ASSERT_EQ(result.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(result.aligned(i)) << i;
    // The best-voted window must land near the true origin.
    bool near = false;
    for (const auto& hit : result.hits(i)) {
      const std::uint64_t lo =
          hit.position > 64 ? hit.position - 64 : 0;
      if (origins[i] >= lo && origins[i] <= hit.position + 64) near = true;
    }
    EXPECT_TRUE(near) << i;
  }
  EXPECT_EQ(result.stats().reads_inexact, batch.size());
}

TEST(Engine, EmptyBatchIsHarmless) {
  Fixture f(1);
  const SoftwareEngine engine(f.fm, f.options);
  const ReadBatch empty;
  BatchResult result;
  engine.align_batch(empty, result);
  EXPECT_EQ(result.size(), 0u);
  align_batch_parallel(engine, empty, result, ParallelOptions{});
  EXPECT_EQ(result.size(), 0u);
  EXPECT_EQ(result.stats().reads_total, 0u);
}

}  // namespace
}  // namespace pim::align
