// Equivalence suite for the unified batch alignment engine (S37):
//   * SoftwareEngine, PimEngine, and the legacy per-read Aligner path must
//     produce bit-identical AlignmentResults on randomized reads (exact,
//     inexact, reverse-complement, unaligned);
//   * chunked parallel scheduling must be positionally deterministic across
//     thread counts and chunk sizes;
//   * ReadBatch must round-trip reads, names, and qualities losslessly;
//   * EngineStats must carry the per-stage counters the legacy front-ends
//     used to drop.
#include "src/align/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/accel/measured_load.h"
#include "src/align/parallel_aligner.h"
#include "src/align/sharded_engine.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/pim_engine.h"
#include "src/pim/pim_fleet.h"
#include "src/readsim/read_simulator.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

// Randomized read mix covering every outcome class: exact copies, mutated
// reads (stage two), reverse-complement strands of both, and random garbage
// (unaligned).
std::vector<std::vector<genome::Base>> make_read_mix(
    const genome::PackedSequence& reference, std::size_t count,
    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<genome::Base>> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = 60 + rng.bounded(41);  // 60-100 bp
    std::vector<genome::Base> read;
    if (i % 5 == 4) {
      // Random garbage: overwhelmingly unaligned.
      for (std::size_t k = 0; k < len; ++k) {
        read.push_back(static_cast<genome::Base>(rng.bounded(4)));
      }
    } else {
      const std::size_t start = rng.bounded(reference.size() - len);
      read = reference.slice(start, start + len);
      if (i % 5 == 1 || i % 5 == 3) {
        // 1-2 substitutions: exercises the inexact stage.
        const std::size_t subs = 1 + rng.bounded(2);
        for (std::size_t s = 0; s < subs; ++s) {
          const std::size_t pos = rng.bounded(read.size());
          read[pos] = genome::complement(read[pos]);
        }
      }
      if (i % 5 >= 2) read = genome::reverse_complement(read);
    }
    reads.push_back(std::move(read));
  }
  return reads;
}

struct Fixture {
  genome::PackedSequence reference;
  index::FmIndex fm;
  std::vector<std::vector<genome::Base>> reads;
  ReadBatch batch;
  AlignerOptions options;

  explicit Fixture(std::size_t num_reads = 120, std::uint64_t seed = 21) {
    genome::SyntheticGenomeSpec spec;
    spec.length = 60000;
    spec.seed = 15;
    reference = genome::generate_reference(spec);
    fm = index::FmIndex::build(reference, {.bucket_width = 128});
    reads = make_read_mix(reference, num_reads, seed);
    batch = ReadBatch::from_reads(reads);
    options.inexact.max_diffs = 2;
  }
};

void expect_identical(const AlignmentResult& want, AlignmentStage got_stage,
                      std::span<const AlignmentHit> got_hits,
                      std::size_t read_index, const char* label) {
  EXPECT_EQ(got_stage, want.stage) << label << " read " << read_index;
  ASSERT_EQ(got_hits.size(), want.hits.size())
      << label << " read " << read_index;
  for (std::size_t h = 0; h < want.hits.size(); ++h) {
    EXPECT_EQ(got_hits[h].position, want.hits[h].position)
        << label << " read " << read_index << " hit " << h;
    EXPECT_EQ(got_hits[h].diffs, want.hits[h].diffs)
        << label << " read " << read_index << " hit " << h;
    EXPECT_EQ(got_hits[h].strand, want.hits[h].strand)
        << label << " read " << read_index << " hit " << h;
  }
}

TEST(ReadBatch, RoundTripsReads) {
  Fixture f;
  ASSERT_EQ(f.batch.size(), f.reads.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    total += f.reads[i].size();
    EXPECT_EQ(f.batch.read_length(i), f.reads[i].size());
    EXPECT_EQ(f.batch.read(i).unpack(), f.reads[i]) << i;
    // Random access through the view matches too.
    const ReadView view = f.batch.read(i);
    for (std::size_t k = 0; k < f.reads[i].size(); k += 7) {
      EXPECT_EQ(view[k], f.reads[i][k]);
    }
  }
  EXPECT_EQ(f.batch.total_bases(), total);
  EXPECT_FALSE(f.batch.has_names());
  EXPECT_FALSE(f.batch.has_qualities());
}

TEST(ReadBatch, CarriesNamesAndQualities) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 20000;
  spec.seed = 4;
  const auto reference = genome::generate_reference(spec);
  readsim::ReadSimSpec rspec;
  rspec.read_length = 50;
  rspec.num_reads = 40;
  rspec.emit_qualities = true;
  rspec.seed = 6;
  const auto set = readsim::ReadSimulator(rspec).generate(reference);
  const auto records = readsim::to_fastq(set, "r");

  const auto batch = ReadBatch::from_fastq(records);
  ASSERT_EQ(batch.size(), records.size());
  EXPECT_TRUE(batch.has_names());
  EXPECT_TRUE(batch.has_qualities());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(batch.name(i), records[i].name) << i;
    EXPECT_EQ(batch.qualities(i), records[i].qualities) << i;
    EXPECT_EQ(batch.read(i).unpack(), records[i].sequence.unpack()) << i;
  }
}

TEST(ReadBatch, UnnamedReadsBeforeNamedOnesBackfillEmpty) {
  ReadBatchBuilder builder;
  builder.add(std::vector<genome::Base>{genome::Base::A, genome::Base::C});
  builder.add(std::vector<genome::Base>{genome::Base::G}, "named");
  const auto batch = builder.build();
  ASSERT_TRUE(batch.has_names());
  EXPECT_EQ(batch.name(0), "");
  EXPECT_EQ(batch.name(1), "named");
}

TEST(Engine, SoftwareEngineBitIdenticalToLegacyAligner) {
  Fixture f;
  const Aligner aligner(f.fm, f.options);
  const SoftwareEngine engine(f.fm, f.options);

  AlignerStats legacy_stats;
  const auto legacy = aligner.align_batch(f.reads, &legacy_stats);

  BatchResult result;
  engine.align_batch(f.batch, result);

  ASSERT_EQ(result.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    expect_identical(legacy[i], result.stage(i), result.hits(i), i,
                     "software");
  }
  // Outcome classes all occur in the mix (the suite is vacuous otherwise).
  EXPECT_GT(result.stats().reads_exact, 0u);
  EXPECT_GT(result.stats().reads_inexact, 0u);
  EXPECT_GT(result.stats().reads_unaligned, 0u);
  // And the stats agree with the legacy accounting.
  EXPECT_EQ(result.stats().reads_total, legacy_stats.reads_total);
  EXPECT_EQ(result.stats().reads_exact, legacy_stats.reads_exact);
  EXPECT_EQ(result.stats().reads_inexact, legacy_stats.reads_inexact);
  EXPECT_EQ(result.stats().reads_unaligned, legacy_stats.reads_unaligned);
}

TEST(Engine, PimEngineBitIdenticalToSoftwareEngine) {
  Fixture f(60);  // PIM simulation pays per-op accounting; keep it modest.
  const SoftwareEngine software(f.fm, f.options);
  hw::TimingEnergyModel timing;
  hw::PimAlignerPlatform platform(f.fm, timing);
  const hw::PimEngine pim_engine(platform, f.options);

  BatchResult sw, hw_result;
  software.align_batch(f.batch, sw);
  const auto report = pim_engine.run(f.batch, hw_result);

  ASSERT_EQ(hw_result.size(), sw.size());
  for (std::size_t i = 0; i < sw.size(); ++i) {
    expect_identical(sw.result(i), hw_result.stage(i), hw_result.hits(i), i,
                     "pim");
  }
  EXPECT_EQ(report.stats.reads_total, sw.stats().reads_total);
  EXPECT_EQ(report.stats.reads_exact, sw.stats().reads_exact);
  EXPECT_GT(report.hardware.lfm_calls, 0u);
  EXPECT_GT(report.energy_pj, 0.0);
}

TEST(Engine, ChunkedParallelDeterministicAcrossThreadAndChunkCounts) {
  Fixture f;
  const SoftwareEngine engine(f.fm, f.options);

  BatchResult serial;
  engine.align_batch(f.batch, serial);

  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    for (const std::size_t chunk : {0u, 1u, 7u, 64u, 1000u}) {
      BatchResult parallel;
      align_batch_parallel(engine, f.batch, parallel,
                           ParallelOptions{.num_threads = threads,
                                           .chunk_size = chunk});
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        expect_identical(serial.result(i), parallel.stage(i),
                         parallel.hits(i), i, "parallel");
      }
      EXPECT_EQ(parallel.stats().reads_total, serial.stats().reads_total);
      EXPECT_EQ(parallel.stats().reads_exact, serial.stats().reads_exact);
      EXPECT_EQ(parallel.stats().reads_inexact, serial.stats().reads_inexact);
      EXPECT_EQ(parallel.stats().reads_unaligned,
                serial.stats().reads_unaligned);
      EXPECT_EQ(parallel.stats().hits_total, serial.stats().hits_total);
    }
  }
}

TEST(Engine, SchedulerRunsNonThreadSafeEnginesSerially) {
  Fixture f(30);
  hw::TimingEnergyModel timing;
  hw::PimAlignerPlatform platform(f.fm, timing);
  const hw::PimEngine engine(platform, f.options);
  EXPECT_FALSE(engine.thread_safe());

  BatchResult serial, scheduled;
  engine.align_batch(f.batch, serial);
  align_batch_parallel(engine, f.batch, scheduled,
                       ParallelOptions{.num_threads = 8});
  ASSERT_EQ(scheduled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial.result(i), scheduled.stage(i), scheduled.hits(i),
                     i, "pim-scheduled");
  }
}

TEST(Engine, LegacyParallelAdapterMatchesAlignerAndReportsStats) {
  Fixture f;
  const Aligner aligner(f.fm, f.options);
  AlignerStats serial_stats, parallel_stats;
  const auto serial = aligner.align_batch(f.reads, &serial_stats);
  const auto parallel =
      align_batch_parallel(aligner, f.reads, 4, &parallel_stats);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i].stage,
                     std::span<const AlignmentHit>(parallel[i].hits), i,
                     "legacy-adapter");
  }
  EXPECT_EQ(parallel_stats.reads_total, serial_stats.reads_total);
  EXPECT_EQ(parallel_stats.reads_exact, serial_stats.reads_exact);
  EXPECT_EQ(parallel_stats.reads_inexact, serial_stats.reads_inexact);
  EXPECT_EQ(parallel_stats.reads_unaligned, serial_stats.reads_unaligned);
}

TEST(Engine, StatsCarryStageSearchCountersAndWallTime) {
  Fixture f;
  const SoftwareEngine engine(f.fm, f.options);
  BatchResult result;
  engine.align_batch(f.batch, result);
  const auto& s = result.stats();
  // Both strands of stage one run for every read.
  EXPECT_EQ(s.exact_searches, 2 * s.reads_total);
  // Stage two runs (both strands) exactly for stage-one misses.
  EXPECT_EQ(s.inexact_searches,
            2 * (s.reads_inexact + s.reads_unaligned));
  EXPECT_EQ(s.batches, 1u);
  EXPECT_GT(s.wall_ms, 0.0);
  EXPECT_GT(s.result_bytes, 0u);

  // merge() is associative accumulation.
  EngineStats merged;
  merged.merge(s);
  merged.merge(s);
  EXPECT_EQ(merged.reads_total, 2 * s.reads_total);
  EXPECT_EQ(merged.exact_searches, 2 * s.exact_searches);

  const AlignerStats legacy = s.to_aligner_stats();
  EXPECT_EQ(legacy.reads_total, s.reads_total);
  EXPECT_EQ(legacy.reads_exact, s.reads_exact);
}

TEST(Engine, BatchResultBestMatchesLegacyBest) {
  Fixture f;
  const SoftwareEngine engine(f.fm, f.options);
  const Aligner aligner(f.fm, f.options);
  BatchResult result;
  engine.align_batch(f.batch, result);
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    const auto want = aligner.align(f.reads[i]).best();
    const auto got = result.best(i);
    ASSERT_EQ(got.has_value(), want.has_value()) << i;
    if (want) {
      EXPECT_EQ(got->position, want->position) << i;
      EXPECT_EQ(got->diffs, want->diffs) << i;
      EXPECT_EQ(got->strand, want->strand) << i;
    }
  }
}

TEST(Engine, SeedExtendEngineAlignsLongReads) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 120000;
  spec.seed = 31;
  const auto reference = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});

  util::Xoshiro256 rng(77);
  ReadBatchBuilder builder;
  std::vector<std::uint64_t> origins;
  for (int i = 0; i < 10; ++i) {
    const std::size_t start = rng.bounded(reference.size() - 1000);
    auto read = reference.slice(start, start + 1000);
    for (int s = 0; s < 3; ++s) {  // ~0.3% divergence
      const std::size_t pos = rng.bounded(read.size());
      read[pos] = genome::complement(read[pos]);
    }
    if (i % 2 == 1) read = genome::reverse_complement(read);
    builder.add(read);
    origins.push_back(start);
  }
  const auto batch = builder.build();

  const SeedExtendEngine engine(fm, reference);
  BatchResult result;
  engine.align_batch(batch, result);

  ASSERT_EQ(result.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(result.aligned(i)) << i;
    // The best-voted window must land near the true origin.
    bool near = false;
    for (const auto& hit : result.hits(i)) {
      const std::uint64_t lo =
          hit.position > 64 ? hit.position - 64 : 0;
      if (origins[i] >= lo && origins[i] <= hit.position + 64) near = true;
    }
    EXPECT_TRUE(near) << i;
  }
  EXPECT_EQ(result.stats().reads_inexact, batch.size());
}

std::unique_ptr<ShardedEngine> make_software_sharded(const Fixture& f,
                                                     std::size_t shards) {
  std::vector<std::unique_ptr<AlignmentEngine>> engines;
  for (std::size_t s = 0; s < shards; ++s) {
    engines.push_back(std::make_unique<SoftwareEngine>(f.fm, f.options));
  }
  return std::make_unique<ShardedEngine>(std::move(engines));
}

TEST(Sharded, BitIdenticalToUnshardedAcrossShardCounts) {
  Fixture f;
  const SoftwareEngine unsharded(f.fm, f.options);
  BatchResult want;
  unsharded.align_batch(f.batch, want);

  for (const std::size_t shards : {1u, 2u, 4u}) {
    const auto engine = make_software_sharded(f, shards);
    BatchResult got;
    engine->align_batch(f.batch, got);

    ASSERT_EQ(got.size(), want.size()) << shards << " shards";
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_identical(want.result(i), got.stage(i), got.hits(i), i,
                       "sharded");
    }
    // Merged stats equal the unsharded counts (associative merge).
    EXPECT_EQ(got.stats().reads_total, want.stats().reads_total);
    EXPECT_EQ(got.stats().hits_total, want.stats().hits_total);
    EXPECT_EQ(got.stats().reads_exact, want.stats().reads_exact);
    EXPECT_EQ(got.stats().reads_inexact, want.stats().reads_inexact);
    EXPECT_EQ(got.stats().reads_unaligned, want.stats().reads_unaligned);
    EXPECT_EQ(got.stats().exact_searches, want.stats().exact_searches);
    EXPECT_EQ(got.stats().inexact_searches, want.stats().inexact_searches);

    // Per-chip breakdown: every read and hit is attributed to exactly one
    // shard, sizes are balanced to within one read.
    const auto& per_shard = engine->shard_stats();
    ASSERT_EQ(per_shard.size(), shards);
    std::uint64_t reads = 0, hits = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(per_shard[s].shard, s);
      EXPECT_GE(per_shard[s].wall_ms, 0.0);
      reads += per_shard[s].reads;
      hits += per_shard[s].hits;
      const auto [lo, hi] =
          ShardedEngine::shard_range(f.batch.size(), shards, s);
      EXPECT_EQ(per_shard[s].reads, hi - lo);
    }
    EXPECT_EQ(reads, want.stats().reads_total);
    EXPECT_EQ(hits, want.stats().hits_total);
  }
}

TEST(Sharded, SerialOptionMatchesParallel) {
  Fixture f(60);
  const SoftwareEngine unsharded(f.fm, f.options);
  BatchResult want;
  unsharded.align_batch(f.batch, want);

  std::vector<std::unique_ptr<AlignmentEngine>> engines;
  for (int s = 0; s < 3; ++s) {
    engines.push_back(std::make_unique<SoftwareEngine>(f.fm, f.options));
  }
  const ShardedEngine engine(std::move(engines),
                             ShardedOptions{.parallel = false});
  BatchResult got;
  engine.align_batch(f.batch, got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_identical(want.result(i), got.stage(i), got.hits(i), i,
                     "sharded-serial");
  }
}

TEST(Sharded, PimChipFleetBitIdenticalToSoftware) {
  Fixture f(48);  // PIM simulation pays per-op accounting; keep it modest.
  const SoftwareEngine software(f.fm, f.options);
  BatchResult want;
  software.align_batch(f.batch, want);

  hw::TimingEnergyModel timing;
  hw::PimChipFleet fleet(f.fm, timing, 2, f.options);
  BatchResult got;
  fleet.engine().align_batch(f.batch, got);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_identical(want.result(i), got.stage(i), got.hits(i), i,
                     "pim-fleet");
  }
  EXPECT_EQ(got.stats().reads_total, want.stats().reads_total);
  EXPECT_EQ(got.stats().hits_total, want.stats().hits_total);

  // Each chip did hardware work for exactly its share, and the measured
  // loads expose the per-chip LFM tallies for the accel models.
  const auto loads = accel::measured_loads(fleet);
  ASSERT_EQ(loads.size(), 2u);
  std::uint64_t reads = 0;
  for (const auto& load : loads) {
    EXPECT_GT(load.reads, 0u);
    EXPECT_GT(load.lfm_calls, 0u);
    reads += load.reads;
  }
  EXPECT_EQ(reads, want.stats().reads_total);
}

TEST(Sharded, MeasuredLoadFeedsChipAndContentionModels) {
  accel::MeasuredChipLoad load;
  load.reads = 500;
  load.lfm_calls = 150000;  // 300 LFM per read
  EXPECT_DOUBLE_EQ(load.lfm_per_read(), 300.0);

  const auto sim = accel::chip_sim_from_measured(load);
  EXPECT_EQ(sim.reads_to_complete, 500u);
  EXPECT_EQ(sim.lfm_per_read, 300u);

  const auto model = accel::chip_model_from_measured(load, 100);
  EXPECT_DOUBLE_EQ(model.lfm_stage_mix, 1.5);

  // Unmeasured (software shard): consumers keep their assumed demand.
  accel::MeasuredChipLoad soft;
  soft.reads = 500;
  const accel::ChipSimConfig base;
  EXPECT_EQ(accel::chip_sim_from_measured(soft).lfm_per_read,
            base.lfm_per_read);
  EXPECT_DOUBLE_EQ(accel::chip_model_from_measured(soft, 100).lfm_stage_mix,
                   accel::ChipModelConfig{}.lfm_stage_mix);
}

TEST(Sharded, MoreShardsThanReadsAndEmptyBatchAreHarmless) {
  Fixture f(3);
  const SoftwareEngine unsharded(f.fm, f.options);
  BatchResult want;
  unsharded.align_batch(f.batch, want);

  const auto engine = make_software_sharded(f, 8);
  BatchResult got;
  engine->align_batch(f.batch, got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_identical(want.result(i), got.stage(i), got.hits(i), i,
                     "overshard");
  }
  // Idle shards report zero load, not garbage.
  std::uint64_t reads = 0;
  for (const auto& s : engine->shard_stats()) reads += s.reads;
  EXPECT_EQ(reads, 3u);

  const ReadBatch empty;
  engine->align_batch(empty, got);
  EXPECT_EQ(got.size(), 0u);
  EXPECT_EQ(got.stats().reads_total, 0u);
}

TEST(Sharded, ShardRangePartitionIsBalancedAndComplete) {
  for (const std::size_t reads : {0u, 1u, 7u, 64u, 1001u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
      std::size_t expected_begin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [lo, hi] = ShardedEngine::shard_range(reads, shards, s);
        EXPECT_EQ(lo, expected_begin);  // contiguous, in order
        EXPECT_LE(hi - lo, reads / shards + 1);
        EXPECT_GE(hi - lo, reads / shards);
        expected_begin = hi;
      }
      EXPECT_EQ(expected_begin, reads);  // complete cover
    }
  }
}

TEST(Sharded, RejectsEmptyAndNullShards) {
  EXPECT_THROW(
      ShardedEngine(std::vector<std::unique_ptr<AlignmentEngine>>{}),
      std::invalid_argument);
  EXPECT_THROW(
      ShardedEngine(std::vector<const AlignmentEngine*>{nullptr}),
      std::invalid_argument);
  Fixture f(1);
  hw::TimingEnergyModel timing;
  EXPECT_THROW(hw::PimChipFleet(f.fm, timing, 0), std::invalid_argument);
}

TEST(Engine, LegacyAdapterRoutesFullEngineStats) {
  Fixture f(40);
  const Aligner aligner(f.fm, f.options);
  AlignerStats legacy;
  EngineStats full;
  const auto results = align_batch_parallel(aligner, f.reads, 2, &legacy,
                                            &full);
  ASSERT_EQ(results.size(), f.reads.size());
  EXPECT_EQ(full.reads_total, legacy.reads_total);
  // The counters the legacy bridge cannot carry arrive via EngineStats.
  std::uint64_t hits = 0;
  for (const auto& r : results) hits += r.hits.size();
  EXPECT_EQ(full.hits_total, hits);
  EXPECT_EQ(full.exact_searches, 2 * full.reads_total);
  EXPECT_EQ(full.inexact_searches,
            2 * (full.reads_inexact + full.reads_unaligned));
}

TEST(Engine, EmptyBatchIsHarmless) {
  Fixture f(1);
  const SoftwareEngine engine(f.fm, f.options);
  const ReadBatch empty;
  BatchResult result;
  engine.align_batch(empty, result);
  EXPECT_EQ(result.size(), 0u);
  align_batch_parallel(engine, empty, result, ParallelOptions{});
  EXPECT_EQ(result.size(), 0u);
  EXPECT_EQ(result.stats().reads_total, 0u);
}

TEST(Engine, BestHitOnlyKeepsThePrimaryHit) {
  Fixture f;
  AlignerOptions best_options = f.options;
  best_options.best_hit_only = true;
  const SoftwareEngine full_engine(f.fm, f.options);
  const SoftwareEngine best_engine(f.fm, best_options);

  BatchResult full, best;
  full_engine.align_batch(f.batch, full);
  best_engine.align_batch(f.batch, best);

  ASSERT_EQ(best.size(), full.size());
  std::uint64_t aligned = 0;
  bool truncated_any = false;
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(best.stage(i), full.stage(i)) << "read " << i;
    if (full.hits(i).empty()) {
      EXPECT_TRUE(best.hits(i).empty()) << "read " << i;
      continue;
    }
    ++aligned;
    truncated_any = truncated_any || full.hits(i).size() > 1;
    ASSERT_EQ(best.hits(i).size(), 1u) << "read " << i;
    const auto want = full.result(i).best();
    ASSERT_TRUE(want.has_value());
    EXPECT_EQ(best.hits(i)[0].position, want->position) << "read " << i;
    EXPECT_EQ(best.hits(i)[0].diffs, want->diffs) << "read " << i;
    EXPECT_EQ(best.hits(i)[0].strand, want->strand) << "read " << i;
  }
  EXPECT_TRUE(truncated_any);  // the mix must exercise actual truncation
  EXPECT_EQ(best.stats().hits_total, aligned);
  // Stage accounting is unchanged — truncation happens after classification.
  EXPECT_EQ(best.stats().reads_exact, full.stats().reads_exact);
  EXPECT_EQ(best.stats().reads_inexact, full.stats().reads_inexact);
  EXPECT_EQ(best.stats().reads_unaligned, full.stats().reads_unaligned);
}

TEST(Engine, BestHitOnlyOnPimEngineMatchesSoftware) {
  Fixture f(40);
  AlignerOptions best_options = f.options;
  best_options.best_hit_only = true;
  const SoftwareEngine software(f.fm, best_options);
  hw::TimingEnergyModel timing;
  hw::PimAlignerPlatform platform(f.fm, timing);
  const hw::PimEngine pim_engine(platform, best_options);

  BatchResult sw, hw_result;
  software.align_batch(f.batch, sw);
  pim_engine.align_batch(f.batch, hw_result);
  ASSERT_EQ(hw_result.size(), sw.size());
  for (std::size_t i = 0; i < sw.size(); ++i) {
    expect_identical(sw.result(i), hw_result.stage(i), hw_result.hits(i), i,
                     "pim best-hit");
    EXPECT_LE(hw_result.hits(i).size(), 1u);
  }
}

TEST(Engine, AlignBatchChunkedDeliversInOrderAndMatchesAlignBatch) {
  Fixture f;
  const SoftwareEngine engine(f.fm, f.options);
  BatchResult whole;
  engine.align_batch(f.batch, whole);

  BatchResult stitched;
  std::size_t next_begin = 0;
  const auto stats = engine.align_batch_chunked(
      f.batch, 13, [&](const BatchResultChunk& chunk) {
        EXPECT_EQ(chunk.begin, next_begin);
        EXPECT_EQ(chunk.base_index, chunk.begin);
        EXPECT_EQ(chunk.result->size(), chunk.size());
        stitched.append(*chunk.result);
        next_begin = chunk.end;
      });
  EXPECT_EQ(next_begin, f.batch.size());
  ASSERT_EQ(stitched.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    expect_identical(whole.result(i), stitched.stage(i), stitched.hits(i), i,
                     "chunked");
  }
  EXPECT_EQ(stats.reads_total, whole.stats().reads_total);
  EXPECT_EQ(stats.hits_total, whole.stats().hits_total);
  EXPECT_EQ(stats.batches, 1u);
}

TEST(Sharded, WeightedPartitionFollowsWeights) {
  Fixture f(1);
  const SoftwareEngine engine(f.fm, f.options);
  const std::vector<const AlignmentEngine*> shards{&engine, &engine, &engine,
                                                   &engine};
  ShardedEngine sharded(shards);

  // Uniform default: complete, contiguous, balanced.
  auto bounds = sharded.partition(1000);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 1000u);
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    EXPECT_EQ(bounds[s + 1] - bounds[s], 250u);
  }

  // Skewed weights move the boundaries proportionally.
  sharded.set_shard_weights({0.5, 0.25, 0.125, 0.125});
  bounds = sharded.partition(1000);
  EXPECT_EQ(bounds[1], 500u);
  EXPECT_EQ(bounds[2], 750u);
  EXPECT_EQ(bounds[3], 875u);
  EXPECT_EQ(bounds[4], 1000u);

  // Un-normalized input is accepted and normalized.
  sharded.set_shard_weights({4.0, 2.0, 1.0, 1.0});
  EXPECT_EQ(sharded.partition(1000), bounds);
  const auto& weights = sharded.shard_weights();
  double sum = 0.0;
  for (const double w : weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(weights[0], 0.5, 1e-12);

  // Degenerate cases stay monotone and complete.
  const auto empty_bounds = sharded.partition(0);
  EXPECT_EQ(empty_bounds, (std::vector<std::size_t>{0, 0, 0, 0, 0}));
  const auto one = sharded.partition(1);
  EXPECT_EQ(one.back(), 1u);
  for (std::size_t s = 0; s + 1 < one.size(); ++s) {
    EXPECT_LE(one[s], one[s + 1]);
  }

  // Invalid weights are rejected.
  EXPECT_THROW(sharded.set_shard_weights({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(sharded.set_shard_weights({1.0, 1.0, 1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(sharded.set_shard_weights({1.0, 1.0, 1.0, -1.0}),
               std::invalid_argument);
}

TEST(Sharded, RebalanceKeepsResultsIdenticalAcrossBatches) {
  Fixture f(150);
  const SoftwareEngine reference_engine(f.fm, f.options);
  BatchResult want;
  reference_engine.align_batch(f.batch, want);

  std::vector<std::unique_ptr<AlignmentEngine>> shards;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(std::make_unique<SoftwareEngine>(f.fm, f.options));
  }
  ShardedOptions options;
  options.rebalance = true;
  options.rebalance_smoothing = 1.0;  // jump straight to measured throughput
  const ShardedEngine sharded(std::move(shards), options);

  // Boundaries move between batches; results must not.
  for (int round = 0; round < 3; ++round) {
    BatchResult got;
    sharded.align_batch(f.batch, got);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_identical(want.result(i), got.stage(i), got.hits(i), i,
                       "rebalanced");
    }
    double sum = 0.0;
    for (const double w : sharded.shard_weights()) {
      EXPECT_GT(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Sharded, RebalancedShardWeightsMath) {
  using accel::MeasuredChipLoad;
  // Twice the throughput -> twice the weight.
  std::vector<MeasuredChipLoad> loads(2);
  loads[0].reads = 200;
  loads[0].wall_ms = 10.0;  // 20 reads/ms
  loads[1].reads = 100;
  loads[1].wall_ms = 10.0;  // 10 reads/ms
  auto weights = accel::rebalanced_shard_weights(loads);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_NEAR(weights[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(weights[1], 1.0 / 3.0, 1e-12);

  // An unmeasured chip gets the mean measured throughput.
  loads[1].reads = 0;
  weights = accel::rebalanced_shard_weights(loads);
  EXPECT_NEAR(weights[0], 0.5, 1e-12);
  EXPECT_NEAR(weights[1], 0.5, 1e-12);

  // Nothing measured -> uniform.
  loads[0].reads = 0;
  weights = accel::rebalanced_shard_weights(loads);
  EXPECT_NEAR(weights[0], 0.5, 1e-12);
  EXPECT_NEAR(weights[1], 0.5, 1e-12);
  EXPECT_TRUE(accel::rebalanced_shard_weights({}).empty());
}

TEST(Engine, MergeCoversEveryStatsField) {
  // Size gate (S40 satellite): EngineStats is 12 8-byte fields. Adding a
  // field without teaching merge() — the historical failure mode: counters
  // added after S37 were silently dropped on every merge path — changes the
  // size and fails this assert, forcing merge(), this test, and the
  // accounting paths to move together.
  static_assert(sizeof(EngineStats) == 12 * sizeof(std::uint64_t),
                "EngineStats changed shape: update EngineStats::merge() and "
                "the per-field checks below in the same change");

  EngineStats a;
  a.reads_total = 1;
  a.reads_exact = 2;
  a.reads_inexact = 3;
  a.reads_unaligned = 4;
  a.hits_total = 5;
  a.exact_searches = 6;
  a.inexact_searches = 7;
  a.batches = 8;
  a.wall_ms = 9.5;
  a.result_bytes = 10;
  a.chunks = 11;
  a.stall_ms = 12.5;

  EngineStats b;
  b.reads_total = 100;
  b.reads_exact = 200;
  b.reads_inexact = 300;
  b.reads_unaligned = 400;
  b.hits_total = 500;
  b.exact_searches = 600;
  b.inexact_searches = 700;
  b.batches = 800;
  b.wall_ms = 900.25;
  b.result_bytes = 1000;
  b.chunks = 1100;
  b.stall_ms = 1200.25;

  a.merge(b);
  EXPECT_EQ(a.reads_total, 101u);
  EXPECT_EQ(a.reads_exact, 202u);
  EXPECT_EQ(a.reads_inexact, 303u);
  EXPECT_EQ(a.reads_unaligned, 404u);
  EXPECT_EQ(a.hits_total, 505u);
  EXPECT_EQ(a.exact_searches, 606u);
  EXPECT_EQ(a.inexact_searches, 707u);
  EXPECT_EQ(a.batches, 808u);
  EXPECT_DOUBLE_EQ(a.wall_ms, 909.75);
  EXPECT_EQ(a.result_bytes, 1010u);
  EXPECT_EQ(a.chunks, 1111u);
  EXPECT_DOUBLE_EQ(a.stall_ms, 1212.75);
}

TEST(Engine, ChunkSeamCountsChunksAndStall) {
  Fixture f(80);
  const SoftwareEngine engine(f.fm, f.options);

  // Default virtual chunked path: one chunk per chunk_size slice.
  std::size_t delivered = 0;
  const EngineStats serial = engine.align_batch_chunked(
      f.batch, 16, [&](const BatchResultChunk&) { ++delivered; });
  EXPECT_EQ(serial.chunks, delivered);
  EXPECT_EQ(serial.chunks, (f.batch.size() + 15) / 16);

  // Parallel scheduler: same chunk count through the in-order drain, and
  // the materializing front-end must not drop the seam counters.
  delivered = 0;
  const EngineStats parallel = align_batch_parallel_chunked(
      engine, f.batch, [&](const BatchResultChunk&) { ++delivered; },
      ParallelOptions{.num_threads = 4, .chunk_size = 16});
  EXPECT_EQ(parallel.chunks, delivered);
  EXPECT_GE(parallel.stall_ms, 0.0);

  BatchResult out;
  align_batch_parallel(engine, f.batch, out,
                       ParallelOptions{.num_threads = 4, .chunk_size = 16});
  EXPECT_EQ(out.stats().chunks, (f.batch.size() + 15) / 16);
}

TEST(Sharded, ShardStatsDescribeOnlyTheLastCall) {
  // Satellite (S40): the per-shard breakdown resets at the entry of every
  // align_batch*/align_range call — a reused engine must never report a
  // previous batch's load.
  Fixture f(40);
  const auto engine = make_software_sharded(f, 2);

  BatchResult first;
  engine->align_batch(f.batch, first);
  std::uint64_t reads = 0;
  for (const auto& s : engine->shard_stats()) reads += s.reads;
  ASSERT_EQ(reads, f.batch.size());

  // Smaller follow-up batch on the same engine: counts must not accumulate.
  const std::vector<std::vector<genome::Base>> subset(f.reads.begin(),
                                                      f.reads.begin() + 10);
  const ReadBatch small = ReadBatch::from_reads(subset);
  BatchResult second;
  engine->align_batch(small, second);
  reads = 0;
  for (const auto& s : engine->shard_stats()) reads += s.reads;
  EXPECT_EQ(reads, small.size());

  // Same contract through the streaming chunk seam.
  const EngineStats chunked = engine->align_batch_chunked(
      f.batch, 0, [](const BatchResultChunk&) {});
  reads = 0;
  for (const auto& s : engine->shard_stats()) reads += s.reads;
  EXPECT_EQ(reads, f.batch.size());
  EXPECT_EQ(chunked.reads_total, f.batch.size());
  EXPECT_GT(chunked.chunks, 0u);
}

}  // namespace
}  // namespace pim::align
