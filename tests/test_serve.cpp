// Serving-layer suite (S41): the AlignmentService front door must be a
// scheduling layer, never a semantic one.
//   * Results through the service are bit-identical to a direct
//     engine.align_batch over the same reads (software and sharded
//     backends, arbitrary request sizes);
//   * admission control sheds overload with kRejected + reason while
//     everything admitted still completes;
//   * deadlines are enforced at dequeue (kExpired, zero engine cycles);
//   * interactive requests dispatch before queued batch-class requests;
//   * drain shutdown serves every admitted request, abort shutdown fails
//     the still-queued ones with kShutdown;
//   * concurrent submitters from many threads each get exactly their own
//     results back (run under TSan in CI);
//   * ChunkDemux maps scheduler chunks onto request extents in order.
#include "src/serve/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/align/chunk_demux.h"
#include "src/align/sharded_engine.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/index_io.h"
#include "src/obs/metrics.h"
#include "src/serve/index_cache.h"
#include "src/util/rng.h"

namespace pim::serve {
namespace {

using namespace std::chrono_literals;

// Randomized read mix covering every outcome class (mirrors
// tests/test_engine.cpp): exact copies, mutated reads, reverse-complement
// strands, and random garbage.
std::vector<std::vector<genome::Base>> make_read_mix(
    const genome::PackedSequence& reference, std::size_t count,
    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<genome::Base>> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = 60 + rng.bounded(41);  // 60-100 bp
    std::vector<genome::Base> read;
    if (i % 5 == 4) {
      for (std::size_t k = 0; k < len; ++k) {
        read.push_back(static_cast<genome::Base>(rng.bounded(4)));
      }
    } else {
      const std::size_t start = rng.bounded(reference.size() - len);
      read = reference.slice(start, start + len);
      if (i % 5 == 1 || i % 5 == 3) {
        const std::size_t subs = 1 + rng.bounded(2);
        for (std::size_t s = 0; s < subs; ++s) {
          const std::size_t pos = rng.bounded(read.size());
          read[pos] = genome::complement(read[pos]);
        }
      }
      if (i % 5 >= 2) read = genome::reverse_complement(read);
    }
    reads.push_back(std::move(read));
  }
  return reads;
}

struct Fixture {
  genome::PackedSequence reference;
  index::FmIndex fm;
  std::vector<std::vector<genome::Base>> reads;
  align::AlignerOptions options;

  explicit Fixture(std::size_t num_reads = 160, std::uint64_t seed = 33) {
    genome::SyntheticGenomeSpec spec;
    spec.length = 50000;
    spec.seed = 11;
    reference = genome::generate_reference(spec);
    fm = index::FmIndex::build(reference, {.bucket_width = 128});
    reads = make_read_mix(reference, num_reads, seed);
    options.inexact.max_diffs = 2;
  }

  /// Ground truth: direct align_batch over exactly `some_reads`.
  std::vector<align::AlignmentResult> direct(
      const std::vector<std::vector<genome::Base>>& some_reads) const {
    align::SoftwareEngine engine(fm, options);
    align::ReadBatch batch = align::ReadBatch::from_reads(some_reads);
    align::BatchResult result;
    engine.align_batch(batch, result);
    return result.to_results();
  }
};

void expect_identical(const align::AlignmentResult& want,
                      const align::AlignmentResult& got, std::size_t index,
                      const char* label) {
  EXPECT_EQ(got.stage, want.stage) << label << " read " << index;
  ASSERT_EQ(got.hits.size(), want.hits.size()) << label << " read " << index;
  for (std::size_t h = 0; h < want.hits.size(); ++h) {
    EXPECT_EQ(got.hits[h].position, want.hits[h].position)
        << label << " read " << index << " hit " << h;
    EXPECT_EQ(got.hits[h].diffs, want.hits[h].diffs)
        << label << " read " << index << " hit " << h;
    EXPECT_EQ(got.hits[h].strand, want.hits[h].strand)
        << label << " read " << index << " hit " << h;
  }
}

/// Slice a [begin, end) range out of the fixture read pool.
std::vector<std::vector<genome::Base>> slice_reads(
    const std::vector<std::vector<genome::Base>>& pool, std::size_t begin,
    std::size_t end) {
  return {pool.begin() + static_cast<std::ptrdiff_t>(begin),
          pool.begin() + static_cast<std::ptrdiff_t>(end)};
}

/// Engine wrapper that blocks inside align_range until opened. Lets tests
/// pin a batch on the "hardware" while they arrange queue contents, making
/// shedding / priority / shutdown orderings deterministic. Deliberately not
/// thread-safe so the service drives it through the serial chunked path.
class GateEngine final : public align::AlignmentEngine {
 public:
  explicit GateEngine(const align::AlignmentEngine& inner) : inner_(&inner) {}

  std::string_view name() const override { return "gate"; }
  bool thread_safe() const override { return false; }

  void align_range(const align::ReadBatch& batch, std::size_t begin,
                   std::size_t end, align::BatchResult& out) const override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lk, [&] { return open_; });
    }
    inner_->align_range(batch, begin, end, out);
  }

  /// Block until the batcher has entered align_range at least `n` times.
  void wait_entered(std::size_t n) const {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return entered_ >= n; });
  }

  /// Latch open: every blocked and future align_range proceeds.
  void open() const {
    std::lock_guard<std::mutex> lk(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  const align::AlignmentEngine* inner_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::size_t entered_ = 0;
  mutable bool open_ = false;
};

/// Engine that throws on a chosen batch dispatch (by align_range call
/// index), for error-routing tests.
class FaultyEngine final : public align::AlignmentEngine {
 public:
  FaultyEngine(const align::AlignmentEngine& inner, std::size_t fail_on_call)
      : inner_(&inner), fail_on_call_(fail_on_call) {}

  std::string_view name() const override { return "faulty"; }
  bool thread_safe() const override { return false; }

  void align_range(const align::ReadBatch& batch, std::size_t begin,
                   std::size_t end, align::BatchResult& out) const override {
    if (calls_.fetch_add(1) == fail_on_call_) {
      throw std::runtime_error("injected engine fault");
    }
    inner_->align_range(batch, begin, end, out);
  }

 private:
  const align::AlignmentEngine* inner_;
  std::size_t fail_on_call_;
  mutable std::atomic<std::size_t> calls_{0};
};

// ---------------------------------------------------------------------------
// ChunkDemux

align::BatchResultChunk make_chunk(std::size_t begin, std::size_t end) {
  align::BatchResultChunk chunk;
  chunk.begin = begin;
  chunk.end = end;
  return chunk;
}

TEST(ChunkDemux, SlicesChunksOntoIntervalsInOrder) {
  // Intervals: [0,3) [3,3) [3,8) [8,9). Chunks: [0,2) [2,5) [5,9).
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> slices;
  std::vector<std::size_t> completions;
  align::ChunkDemux demux(
      {0, 3, 3, 8, 9},
      [&](std::size_t interval, const align::BatchResultChunk&,
          std::size_t begin, std::size_t end) {
        slices.emplace_back(interval, begin, end);
      },
      [&](std::size_t interval) { completions.push_back(interval); });
  ASSERT_EQ(demux.num_intervals(), 4u);
  EXPECT_FALSE(demux.done());

  auto c0 = make_chunk(0, 2);
  demux.consume(c0);
  EXPECT_EQ(demux.completed(), 0u);

  auto c1 = make_chunk(2, 5);
  demux.consume(c1);
  // Interval 0 completed at read 3; empty interval 1 completes as the
  // cursor passes it; interval 2 got [3,5).
  EXPECT_EQ(demux.completed(), 2u);

  auto c2 = make_chunk(5, 9);
  demux.consume(c2);
  EXPECT_TRUE(demux.done());

  const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> want =
      {{0, 0, 2}, {0, 2, 3}, {2, 3, 5}, {2, 5, 8}, {3, 8, 9}};
  EXPECT_EQ(slices, want);
  EXPECT_EQ(completions, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ChunkDemux, LeadingEmptyIntervalsCompleteImmediately) {
  std::vector<std::size_t> completions;
  align::ChunkDemux demux(
      {0, 0, 0, 2},
      [](std::size_t, const align::BatchResultChunk&, std::size_t,
         std::size_t) {},
      [&](std::size_t interval) { completions.push_back(interval); });
  EXPECT_EQ(completions, (std::vector<std::size_t>{0, 1}));
  auto chunk = make_chunk(0, 2);
  demux.consume(chunk);
  EXPECT_TRUE(demux.done());
  EXPECT_EQ(completions, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ChunkDemux, RejectsMalformedBoundsAndOutOfOrderChunks) {
  auto noop_slice = [](std::size_t, const align::BatchResultChunk&,
                       std::size_t, std::size_t) {};
  auto noop_complete = [](std::size_t) {};
  EXPECT_THROW(align::ChunkDemux({1, 2}, noop_slice, noop_complete),
               std::invalid_argument);
  EXPECT_THROW(align::ChunkDemux({0, 4, 2}, noop_slice, noop_complete),
               std::invalid_argument);
  EXPECT_THROW(align::ChunkDemux({}, noop_slice, noop_complete),
               std::invalid_argument);

  align::ChunkDemux demux({0, 4}, noop_slice, noop_complete);
  auto gap = make_chunk(1, 2);  // cursor is 0: a gap
  EXPECT_THROW(demux.consume(gap), std::logic_error);
  auto overrun = make_chunk(0, 5);  // past the partition
  EXPECT_THROW(demux.consume(overrun), std::logic_error);
}

// ---------------------------------------------------------------------------
// Equivalence: service results == direct align_batch results.

TEST(AlignmentService, MatchesDirectAlignBatch) {
  Fixture f;
  align::SoftwareEngine engine(f.fm, f.options);
  const auto want = f.direct(f.reads);

  ServiceOptions options;
  options.batching.max_batch_reads = 48;  // force multi-request coalescing
  options.batching.max_linger = 500us;
  options.batching.parallel.num_threads = 2;
  options.batching.parallel.chunk_size = 16;
  AlignmentService service(engine, options);

  // Carve the pool into requests of varying sizes (1..13 reads).
  std::vector<std::pair<std::size_t, ResponseFuture>> pending;
  std::size_t begin = 0, step = 1;
  while (begin < f.reads.size()) {
    const std::size_t end = std::min(begin + step, f.reads.size());
    AlignRequest request;
    request.reads = slice_reads(f.reads, begin, end);
    pending.emplace_back(begin, service.submit(std::move(request)));
    begin = end;
    step = step % 13 + 1;
  }

  for (auto& [offset, future] : pending) {
    AlignResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.reason;
    for (std::size_t i = 0; i < response.results.size(); ++i) {
      expect_identical(want[offset + i], response.results[i], offset + i,
                       "service");
    }
    EXPECT_GT(response.batch_seq, 0u);
    EXPECT_GE(response.latency_ms, response.queue_ms);
  }
  service.shutdown();

  const auto counters = service.counters();
  EXPECT_EQ(counters.submitted, pending.size());
  EXPECT_EQ(counters.admitted, pending.size());
  EXPECT_EQ(counters.completed, pending.size());
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(counters.expired, 0u);
  EXPECT_EQ(counters.batched_reads, f.reads.size());
  EXPECT_GT(counters.batches, 1u);  // coalesced, but more than one batch
  EXPECT_EQ(service.engine_stats().reads_total, f.reads.size());
}

TEST(AlignmentService, ShardedEngineBehindServiceMatchesDirect) {
  Fixture f(120, 77);
  const auto want = f.direct(f.reads);

  // Three software shards behind the sharded (non-thread-safe) engine: the
  // batcher must route it through the serial chunked path.
  std::vector<std::unique_ptr<align::AlignmentEngine>> shards;
  std::vector<const align::AlignmentEngine*> shard_ptrs;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(
        std::make_unique<align::SoftwareEngine>(f.fm, f.options));
    shard_ptrs.push_back(shards.back().get());
  }
  align::ShardedEngine engine(shard_ptrs);

  ServiceOptions options;
  options.batching.max_batch_reads = 64;
  options.batching.max_linger = 300us;
  AlignmentService service(engine, options);

  std::vector<ResponseFuture> futures;
  const std::size_t kRequestReads = 8;
  for (std::size_t begin = 0; begin < f.reads.size();
       begin += kRequestReads) {
    AlignRequest request;
    request.reads = slice_reads(
        f.reads, begin, std::min(begin + kRequestReads, f.reads.size()));
    futures.push_back(service.submit(std::move(request)));
  }
  std::size_t index = 0;
  for (auto& future : futures) {
    AlignResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.reason;
    for (const auto& result : response.results) {
      expect_identical(want[index], result, index, "sharded-service");
      ++index;
    }
  }
  EXPECT_EQ(index, f.reads.size());
}

TEST(AlignmentService, BlockingAlignAndEmptyRequest) {
  Fixture f(10);
  align::SoftwareEngine engine(f.fm, f.options);
  AlignmentService service(engine);

  AlignResponse empty = service.align(AlignRequest{});
  EXPECT_TRUE(empty.ok());
  EXPECT_TRUE(empty.results.empty());

  AlignRequest request;
  request.reads = slice_reads(f.reads, 0, 3);
  AlignResponse response = service.align(std::move(request));
  ASSERT_TRUE(response.ok());
  const auto want = f.direct(slice_reads(f.reads, 0, 3));
  ASSERT_EQ(response.results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    expect_identical(want[i], response.results[i], i, "blocking");
  }
}

// ---------------------------------------------------------------------------
// Admission control / overload shedding.

TEST(AdmissionControl, VetIsPureAndReasoned) {
  AdmissionControl admission({.max_queued_requests = 2,
                              .max_queued_reads = 10,
                              .reject_oversized = true});
  AlignRequest small;
  small.reads.resize(3);
  EXPECT_FALSE(admission.vet(0, 0, small).has_value());
  // Request-count bound.
  auto reason = admission.vet(2, 6, small);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("queue full"), std::string::npos);
  // Read-count bound.
  reason = admission.vet(1, 9, small);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("reads"), std::string::npos);
  // Oversized: could never fit, even against an empty queue.
  AlignRequest huge;
  huge.reads.resize(11);
  reason = admission.vet(0, 0, huge);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("too large"), std::string::npos);
  // Unlimited when bounds are 0.
  AdmissionControl unlimited({.max_queued_requests = 0,
                              .max_queued_reads = 0});
  EXPECT_FALSE(unlimited.vet(1u << 20, 1u << 30, huge).has_value());
}

TEST(AlignmentService, ShedsOverloadWithReasonAndServesAdmitted) {
  Fixture f(30);
  align::SoftwareEngine inner(f.fm, f.options);
  GateEngine engine(inner);

  ServiceOptions options;
  options.admission.max_queued_requests = 2;
  options.admission.max_queued_reads = 100;
  options.batching.max_batch_reads = 4;  // one request per batch
  options.batching.max_linger = 0us;
  AlignmentService service(engine, options);

  auto request_at = [&](std::size_t begin) {
    AlignRequest request;
    request.reads = slice_reads(f.reads, begin, begin + 4);
    return request;
  };

  // First request goes in flight (pinned on the gate), leaving the queue
  // empty; two more fill the queue; the rest must be shed.
  ResponseFuture in_flight = service.submit(request_at(0));
  engine.wait_entered(1);
  ResponseFuture queued1 = service.submit(request_at(4));
  ResponseFuture queued2 = service.submit(request_at(8));
  ResponseFuture shed1 = service.submit(request_at(12));
  ResponseFuture shed2 = service.submit(request_at(16));

  AlignResponse r_shed1 = shed1.get();
  AlignResponse r_shed2 = shed2.get();
  EXPECT_EQ(r_shed1.status, RequestStatus::kRejected);
  EXPECT_EQ(r_shed2.status, RequestStatus::kRejected);
  EXPECT_NE(r_shed1.reason.find("queue full"), std::string::npos)
      << r_shed1.reason;
  EXPECT_TRUE(r_shed1.results.empty());

  engine.open();
  EXPECT_TRUE(in_flight.get().ok());
  EXPECT_TRUE(queued1.get().ok());
  EXPECT_TRUE(queued2.get().ok());
  service.shutdown();

  const auto counters = service.counters();
  EXPECT_EQ(counters.submitted, 5u);
  EXPECT_EQ(counters.admitted, 3u);
  EXPECT_EQ(counters.rejected, 2u);
  EXPECT_EQ(counters.completed, 3u);
}

TEST(AlignmentService, OversizedRequestIsRejectedOutright) {
  Fixture f(20);
  align::SoftwareEngine engine(f.fm, f.options);
  ServiceOptions options;
  options.admission.max_queued_reads = 8;
  AlignmentService service(engine, options);

  AlignRequest request;
  request.reads = slice_reads(f.reads, 0, 12);
  AlignResponse response = service.align(std::move(request));
  EXPECT_EQ(response.status, RequestStatus::kRejected);
  EXPECT_NE(response.reason.find("too large"), std::string::npos)
      << response.reason;
}

// ---------------------------------------------------------------------------
// Deadlines.

TEST(AlignmentService, ExpiredDeadlineFailsFastAtDequeue) {
  Fixture f(20);
  align::SoftwareEngine inner(f.fm, f.options);
  GateEngine engine(inner);

  ServiceOptions options;
  options.batching.max_batch_reads = 4;
  options.batching.max_linger = 0us;
  AlignmentService service(engine, options);

  AlignRequest occupant;
  occupant.reads = slice_reads(f.reads, 0, 4);
  ResponseFuture in_flight = service.submit(std::move(occupant));
  engine.wait_entered(1);

  // Deadline already in the past: whatever batch picks it up must expire
  // it at dequeue without touching the engine.
  AlignRequest late;
  late.reads = slice_reads(f.reads, 4, 8);
  late.deadline = ServiceClock::now() - 1ms;
  ResponseFuture expired = service.submit(std::move(late));

  // Generous deadline: must still be served.
  AlignRequest fine;
  fine.reads = slice_reads(f.reads, 8, 12);
  fine.deadline = ServiceClock::now() + 60s;
  ResponseFuture served = service.submit(std::move(fine));

  engine.open();
  AlignResponse r_expired = expired.get();
  EXPECT_EQ(r_expired.status, RequestStatus::kExpired);
  EXPECT_NE(r_expired.reason.find("deadline"), std::string::npos)
      << r_expired.reason;
  EXPECT_TRUE(r_expired.results.empty());
  EXPECT_TRUE(in_flight.get().ok());
  EXPECT_TRUE(served.get().ok());
  service.shutdown();

  const auto counters = service.counters();
  EXPECT_EQ(counters.expired, 1u);
  EXPECT_EQ(counters.completed, 2u);
  // The expired request's reads never reached the engine.
  EXPECT_EQ(service.engine_stats().reads_total, 8u);
}

// ---------------------------------------------------------------------------
// Priority classes.

TEST(AlignmentService, InteractiveDispatchesBeforeQueuedBatch) {
  Fixture f(20);
  align::SoftwareEngine inner(f.fm, f.options);
  GateEngine engine(inner);

  ServiceOptions options;
  options.batching.max_batch_reads = 2;  // one 2-read request per batch
  options.batching.max_linger = 0us;
  AlignmentService service(engine, options);

  auto request_at = [&](std::size_t begin, RequestPriority priority) {
    AlignRequest request;
    request.reads = slice_reads(f.reads, begin, begin + 2);
    request.priority = priority;
    return request;
  };

  ResponseFuture occupant =
      service.submit(request_at(0, RequestPriority::kBatch));
  engine.wait_entered(1);
  ResponseFuture batch1 =
      service.submit(request_at(2, RequestPriority::kBatch));
  ResponseFuture batch2 =
      service.submit(request_at(4, RequestPriority::kBatch));
  ResponseFuture interactive =
      service.submit(request_at(6, RequestPriority::kInteractive));

  engine.open();
  AlignResponse r_interactive = interactive.get();
  AlignResponse r_batch1 = batch1.get();
  AlignResponse r_batch2 = batch2.get();
  service.shutdown();

  ASSERT_TRUE(r_interactive.ok());
  ASSERT_TRUE(r_batch1.ok());
  ASSERT_TRUE(r_batch2.ok());
  // The interactive request jumped the queued batch-class requests.
  EXPECT_LT(r_interactive.batch_seq, r_batch1.batch_seq);
  EXPECT_LT(r_interactive.batch_seq, r_batch2.batch_seq);
  EXPECT_LT(r_batch1.batch_seq, r_batch2.batch_seq);  // FIFO within class
}

// ---------------------------------------------------------------------------
// Shutdown semantics.

TEST(AlignmentService, DrainShutdownServesEverythingAdmitted) {
  Fixture f(120, 5);
  align::SoftwareEngine engine(f.fm, f.options);
  const auto want = f.direct(f.reads);

  ServiceOptions options;
  options.batching.max_batch_reads = 16;
  options.batching.max_linger = 5000us;
  AlignmentService service(engine, options);

  std::vector<ResponseFuture> futures;
  for (std::size_t begin = 0; begin < f.reads.size(); begin += 6) {
    AlignRequest request;
    request.reads =
        slice_reads(f.reads, begin, std::min(begin + 6, f.reads.size()));
    futures.push_back(service.submit(std::move(request)));
  }
  // Close immediately: drain must still serve every admitted request.
  service.shutdown(AlignmentService::ShutdownMode::kDrain);

  std::size_t index = 0;
  for (auto& future : futures) {
    AlignResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.reason;
    for (const auto& result : response.results) {
      expect_identical(want[index], result, index, "drain");
      ++index;
    }
  }
  EXPECT_EQ(index, f.reads.size());
  EXPECT_EQ(service.counters().completed, futures.size());

  // Submissions after shutdown are turned away, not queued.
  AlignRequest late;
  late.reads = slice_reads(f.reads, 0, 1);
  AlignResponse r_late = service.submit(std::move(late)).get();
  EXPECT_EQ(r_late.status, RequestStatus::kShutdown);
  EXPECT_EQ(service.counters().rejected_shutdown, 1u);
}

TEST(AlignmentService, AbortShutdownFailsQueuedButFinishesInFlight) {
  Fixture f(20);
  align::SoftwareEngine inner(f.fm, f.options);
  GateEngine engine(inner);

  ServiceOptions options;
  options.batching.max_batch_reads = 4;
  options.batching.max_linger = 0us;
  AlignmentService service(engine, options);

  AlignRequest occupant;
  occupant.reads = slice_reads(f.reads, 0, 4);
  ResponseFuture in_flight = service.submit(std::move(occupant));
  engine.wait_entered(1);
  AlignRequest queued;
  queued.reads = slice_reads(f.reads, 4, 8);
  ResponseFuture abandoned = service.submit(std::move(queued));

  // shutdown(kAbort) blocks on the batcher join, which is pinned on the
  // gate — run it from a helper thread and release the gate after.
  std::thread stopper(
      [&] { service.shutdown(AlignmentService::ShutdownMode::kAbort); });
  AlignResponse r_abandoned = abandoned.get();  // failed by the abort
  EXPECT_EQ(r_abandoned.status, RequestStatus::kShutdown);
  EXPECT_NE(r_abandoned.reason.find("shut down"), std::string::npos)
      << r_abandoned.reason;
  engine.open();
  stopper.join();

  EXPECT_TRUE(in_flight.get().ok());  // in-flight batch still completed
  const auto counters = service.counters();
  EXPECT_EQ(counters.aborted, 1u);
  EXPECT_EQ(counters.completed, 1u);
}

// ---------------------------------------------------------------------------
// Error routing.

TEST(AlignmentService, EngineFaultReachesFuturesAndServiceSurvives) {
  Fixture f(20);
  align::SoftwareEngine inner(f.fm, f.options);
  // Large chunk so the whole batch is one align_range call; fail call 0.
  FaultyEngine engine(inner, 0);

  ServiceOptions options;
  options.batching.max_batch_reads = 4;
  options.batching.max_linger = 0us;
  options.batching.parallel.chunk_size = 64;
  AlignmentService service(engine, options);

  AlignRequest doomed;
  doomed.reads = slice_reads(f.reads, 0, 4);
  ResponseFuture first = service.submit(std::move(doomed));
  EXPECT_THROW(first.get(), std::runtime_error);

  // The loop keeps serving: the next batch goes through the inner engine.
  AlignRequest fine;
  fine.reads = slice_reads(f.reads, 4, 8);
  AlignResponse response = service.align(std::move(fine));
  ASSERT_TRUE(response.ok()) << response.reason;
  const auto want = f.direct(slice_reads(f.reads, 4, 8));
  for (std::size_t i = 0; i < response.results.size(); ++i) {
    expect_identical(want[i], response.results[i], i, "post-fault");
  }
  service.shutdown();
}

// ---------------------------------------------------------------------------
// Concurrency (run under TSan in CI).

TEST(AlignmentService, ConcurrentSubmittersEachGetTheirOwnResults) {
  Fixture f(200, 9);
  align::SoftwareEngine engine(f.fm, f.options);
  const auto want = f.direct(f.reads);

  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.batching.max_batch_reads = 32;
  options.batching.max_linger = 200us;
  options.batching.parallel.num_threads = 2;
  options.batching.parallel.chunk_size = 8;
  options.metrics = &registry;
  AlignmentService service(engine, options);

  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 24;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      util::Xoshiro256 rng(1000 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t size = 1 + rng.bounded(5);
        const std::size_t begin = rng.bounded(f.reads.size() - size);
        AlignRequest request;
        request.reads = slice_reads(f.reads, begin, begin + size);
        request.priority = (i % 3 == 0) ? RequestPriority::kInteractive
                                        : RequestPriority::kBatch;
        AlignResponse response = service.submit(std::move(request)).get();
        if (!response.ok() || response.results.size() != size) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t r = 0; r < size; ++r) {
          const auto& got = response.results[r];
          const auto& ref = want[begin + r];
          if (got.stage != ref.stage || got.hits.size() != ref.hits.size()) {
            mismatches.fetch_add(1);
            break;
          }
          bool hit_mismatch = false;
          for (std::size_t h = 0; h < ref.hits.size(); ++h) {
            if (got.hits[h].position != ref.hits[h].position ||
                got.hits[h].diffs != ref.hits[h].diffs ||
                got.hits[h].strand != ref.hits[h].strand) {
              hit_mismatch = true;
              break;
            }
          }
          if (hit_mismatch) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  service.shutdown();

  const auto counters = service.counters();
  EXPECT_EQ(counters.submitted, kThreads * kPerThread);
  EXPECT_EQ(counters.completed, kThreads * kPerThread);
  EXPECT_EQ(counters.rejected, 0u);

  // The serve.* series mirror the shared tallies.
  const auto snapshot = registry.scrape();
  EXPECT_EQ(snapshot.counter_value("serve.submitted"), counters.submitted);
  EXPECT_EQ(snapshot.counter_value("serve.completed"), counters.completed);
  EXPECT_EQ(snapshot.counter_value("serve.batches"), counters.batches);
  EXPECT_EQ(snapshot.counter_value("serve.reads"), counters.batched_reads);
  const obs::HistogramSample* latency =
      snapshot.histogram("serve.latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, counters.completed);
  EXPECT_LE(latency->p50, latency->p99);
  EXPECT_DOUBLE_EQ(latency->percentile(0.5), latency->p50);
}

// ---------------------------------------------------------------------------
// Multi-reference routing (S42): an AlignmentService over an IndexCache
// routes by reference_id, lanes follow cache residency, and results stay
// bit-identical to a single-reference service over the same index.
// ---------------------------------------------------------------------------

struct MultiRefFixture {
  struct Ref {
    std::string id;
    std::string path;
    genome::PackedSequence reference;
    index::FmIndex fm;
    std::vector<std::vector<genome::Base>> reads;
  };
  std::vector<Ref> refs;
  align::AlignerOptions aligner;

  explicit MultiRefFixture(std::size_t count = 3) {
    aligner.inexact.max_diffs = 2;
    for (std::size_t i = 0; i < count; ++i) {
      Ref r;
      r.id = "genome" + std::to_string(i);
      r.path = "/tmp/pim_serve_test_" + r.id + ".index";
      genome::SyntheticGenomeSpec spec;
      spec.length = 20000;
      spec.seed = 500 + i;
      r.reference = genome::generate_reference(spec);
      r.fm = index::FmIndex::build(r.reference, {.bucket_width = 128});
      index::save_index_file(r.path, r.fm, r.reference,
                             {{r.id, 0, r.reference.size()}});
      r.reads = make_read_mix(r.reference, 40, 70 + i);
      refs.push_back(std::move(r));
    }
  }

  IndexCacheOptions cache_options(std::size_t max_resident) const {
    IndexCacheOptions options;
    options.max_resident = max_resident;
    return options;
  }

  MultiReferenceOptions service_options() const {
    MultiReferenceOptions options;
    options.aligner = aligner;
    return options;
  }

  /// Ground truth for reference `r` over `some_reads`.
  std::vector<align::AlignmentResult> direct(
      const Ref& r,
      const std::vector<std::vector<genome::Base>>& some_reads) const {
    align::SoftwareEngine engine(r.fm, aligner);
    align::ReadBatch batch = align::ReadBatch::from_reads(some_reads);
    align::BatchResult result;
    engine.align_batch(batch, result);
    return result.to_results();
  }
};

TEST(MultiReferenceService, RoutesAcrossThreeReferences) {
  MultiRefFixture f(3);
  IndexCache cache(f.cache_options(3));  // all resident: no eviction noise
  for (const auto& r : f.refs) cache.add_reference(r.id, r.path);
  AlignmentService service(cache, f.service_options());
  EXPECT_TRUE(service.multi_reference());

  // Interleave submissions across all three references, then verify each
  // response against the matching reference's ground truth.
  std::vector<std::pair<std::size_t, ResponseFuture>> pending;
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t r = 0; r < f.refs.size(); ++r) {
      AlignRequest request;
      request.reference_id = f.refs[r].id;
      request.reads = slice_reads(f.refs[r].reads, round * 10, round * 10 + 10);
      pending.emplace_back(r, service.submit(std::move(request)));
    }
  }
  for (auto& [r, future] : pending) {
    auto response = future.get();
    ASSERT_TRUE(response.ok()) << response.reason;
    ASSERT_EQ(response.results.size(), 10U);
  }
  EXPECT_EQ(service.active_lanes().size(), 3U);
  service.shutdown();

  const auto counters = service.counters();
  EXPECT_EQ(counters.submitted, 12U);
  EXPECT_EQ(counters.completed, 12U);
  EXPECT_EQ(counters.rejected, 0U);
}

TEST(MultiReferenceService, BitIdenticalToSingleReferenceService) {
  MultiRefFixture f(2);
  IndexCache cache(f.cache_options(2));
  for (const auto& r : f.refs) cache.add_reference(r.id, r.path);
  AlignmentService service(cache, f.service_options());

  for (const auto& r : f.refs) {
    const auto want = f.direct(r, r.reads);
    AlignRequest request;
    request.reference_id = r.id;
    request.reads = r.reads;
    auto response = service.submit(std::move(request)).get();
    ASSERT_TRUE(response.ok()) << response.reason;
    ASSERT_EQ(response.results.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_identical(want[i], response.results[i], i, r.id.c_str());
    }
  }
  service.shutdown();
}

TEST(MultiReferenceService, RejectsUnroutableRequests) {
  MultiRefFixture f(1);
  IndexCache cache(f.cache_options(1));
  cache.add_reference(f.refs[0].id, f.refs[0].path);
  AlignmentService service(cache, f.service_options());

  AlignRequest missing;
  missing.reads = slice_reads(f.refs[0].reads, 0, 4);
  auto no_id = service.align(std::move(missing));
  EXPECT_EQ(no_id.status, RequestStatus::kRejected);
  EXPECT_NE(no_id.reason.find("missing reference_id"), std::string::npos);

  AlignRequest unknown;
  unknown.reference_id = "nope";
  unknown.reads = slice_reads(f.refs[0].reads, 0, 4);
  auto bad_id = service.align(std::move(unknown));
  EXPECT_EQ(bad_id.status, RequestStatus::kRejected);
  EXPECT_NE(bad_id.reason.find("unknown reference_id"), std::string::npos);

  // Rejections are visible in the routing layer's counters.
  EXPECT_EQ(service.counters().rejected, 2U);
  service.shutdown();

  AlignRequest late;
  late.reference_id = f.refs[0].id;
  late.reads = slice_reads(f.refs[0].reads, 0, 4);
  EXPECT_EQ(service.align(std::move(late)).status, RequestStatus::kShutdown);
}

TEST(MultiReferenceService, SingleEngineServiceRejectsRoutedRequests) {
  Fixture f;
  align::SoftwareEngine engine(f.fm, f.options);
  AlignmentService service(engine, {});
  EXPECT_FALSE(service.multi_reference());
  AlignRequest request;
  request.reference_id = "anything";
  request.reads = slice_reads(f.reads, 0, 4);
  auto response = service.align(std::move(request));
  EXPECT_EQ(response.status, RequestStatus::kRejected);
  EXPECT_NE(response.reason.find("fixed engine"), std::string::npos);
  service.shutdown();
}

TEST(MultiReferenceService, LanesFollowCacheEviction) {
  MultiRefFixture f(3);
  IndexCache cache(f.cache_options(2));  // third reference forces eviction
  for (const auto& r : f.refs) cache.add_reference(r.id, r.path);
  AlignmentService service(cache, f.service_options());

  // Serve all three references round-robin; every response must still be
  // correct even though lanes are being retired and rebuilt under us.
  for (std::size_t round = 0; round < 3; ++round) {
    for (const auto& r : f.refs) {
      const auto some = slice_reads(r.reads, round * 8, round * 8 + 8);
      const auto want = f.direct(r, some);
      AlignRequest request;
      request.reference_id = r.id;
      request.reads = some;
      auto response = service.submit(std::move(request)).get();
      ASSERT_TRUE(response.ok()) << r.id << ": " << response.reason;
      ASSERT_EQ(response.results.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        expect_identical(want[i], response.results[i], i, r.id.c_str());
      }
    }
  }
  // The cache cycled: more misses than references, evictions happened, and
  // the service retired evicted lanes (active set bounded by residency).
  const auto stats = cache.stats();
  EXPECT_GT(stats.misses, 3U);
  EXPECT_GT(stats.evictions, 0U);
  EXPECT_LE(service.active_lanes().size(), 3U);
  service.shutdown();
}

TEST(MultiReferenceService, ConcurrentRoutedSubmitters) {
  MultiRefFixture f(3);
  obs::MetricsRegistry registry;
  IndexCache cache([&] {
    auto options = f.cache_options(2);
    options.metrics = &registry;
    return options;
  }());
  for (const auto& r : f.refs) cache.add_reference(r.id, r.path);
  auto options = f.service_options();
  options.service.metrics = &registry;
  AlignmentService service(cache, options);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 12;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      util::Xoshiro256 rng(800 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t r = (t + i) % f.refs.size();
        const std::size_t begin = rng.bounded(f.refs[r].reads.size() - 6);
        const auto some = slice_reads(f.refs[r].reads, begin, begin + 6);
        AlignRequest request;
        request.reference_id = f.refs[r].id;
        request.reads = some;
        auto response = service.submit(std::move(request)).get();
        if (!response.ok() || response.results.size() != some.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        const auto want = f.direct(f.refs[r], some);
        for (std::size_t k = 0; k < want.size(); ++k) {
          if (response.results[k].stage != want[k].stage ||
              response.results[k].hits.size() != want[k].hits.size()) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(mismatches.load(), 0U);
  service.shutdown();

  const auto snapshot = registry.scrape();
  EXPECT_GE(snapshot.counter_value("service.index_cache.misses"), 3U);
  EXPECT_EQ(snapshot.counter_value("serve.submitted"),
            kThreads * kPerThread);
}

}  // namespace
}  // namespace pim::serve
