#include "src/util/bit_vector.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/rng.h"

namespace pim::util {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0U);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0U);
}

TEST(BitVector, ConstructAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130U);
  EXPECT_EQ(v.popcount(), 0U);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, ConstructAllOne) {
  BitVector v(130, true);
  EXPECT_EQ(v.popcount(), 130U);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_TRUE(v.get(i));
}

TEST(BitVector, SetAndGet) {
  BitVector v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4U);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3U);
}

TEST(BitVector, ResizeGrowZero) {
  BitVector v(10, true);
  v.resize(100);
  EXPECT_EQ(v.popcount(), 10U);
  EXPECT_FALSE(v.get(50));
}

TEST(BitVector, ResizeGrowOne) {
  BitVector v(10);
  v.resize(100, true);
  EXPECT_EQ(v.popcount(), 90U);
  EXPECT_FALSE(v.get(5));
  EXPECT_TRUE(v.get(10));
  EXPECT_TRUE(v.get(99));
}

TEST(BitVector, ResizeShrinkClearsTail) {
  BitVector v(100, true);
  v.resize(65);
  EXPECT_EQ(v.popcount(), 65U);
  v.resize(100);
  EXPECT_EQ(v.popcount(), 65U);  // regrown bits are zero
}

TEST(BitVector, SetAllClearAll) {
  BitVector v(77);
  v.set_all();
  EXPECT_EQ(v.popcount(), 77U);
  v.clear_all();
  EXPECT_EQ(v.popcount(), 0U);
}

TEST(BitVector, PopcountRangeBasic) {
  BitVector v(256);
  for (std::size_t i = 0; i < 256; i += 2) v.set(i, true);
  EXPECT_EQ(v.popcount_range(0, 256), 128U);
  EXPECT_EQ(v.popcount_range(0, 1), 1U);
  EXPECT_EQ(v.popcount_range(1, 2), 0U);
  EXPECT_EQ(v.popcount_range(0, 0), 0U);
  EXPECT_EQ(v.popcount_range(10, 10), 0U);
  EXPECT_EQ(v.popcount_range(0, 64), 32U);
  EXPECT_EQ(v.popcount_range(63, 65), 1U);  // straddles a word boundary
}

TEST(BitVector, PopcountRangeMatchesNaive) {
  Xoshiro256 rng(7);
  BitVector v(500);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, rng.bernoulli(0.3));
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t a = rng.bounded(501);
    std::size_t b = rng.bounded(501);
    if (a > b) std::swap(a, b);
    std::size_t naive = 0;
    for (std::size_t i = a; i < b; ++i) naive += v.get(i) ? 1 : 0;
    EXPECT_EQ(v.popcount_range(a, b), naive) << "range [" << a << "," << b << ")";
  }
}

TEST(BitVector, PopcountRangePastEndThrows) {
  BitVector v(10);
  EXPECT_THROW(v.popcount_range(0, 11), std::out_of_range);
}

TEST(BitVector, BitwiseOperators) {
  BitVector a(70), b(70);
  a.set(0, true);
  a.set(69, true);
  b.set(0, true);
  b.set(35, true);
  const BitVector both = a & b;
  EXPECT_EQ(both.popcount(), 1U);
  EXPECT_TRUE(both.get(0));
  const BitVector either = a | b;
  EXPECT_EQ(either.popcount(), 3U);
  const BitVector exclusive = a ^ b;
  EXPECT_EQ(exclusive.popcount(), 2U);
  EXPECT_TRUE(exclusive.get(35));
  EXPECT_TRUE(exclusive.get(69));
}

TEST(BitVector, ComplementRespectsSize) {
  BitVector v(70);
  v.set(3, true);
  const BitVector inv = ~v;
  EXPECT_EQ(inv.popcount(), 69U);
  EXPECT_FALSE(inv.get(3));
  // Tail bits beyond size must stay zero so popcount stays consistent.
  EXPECT_EQ((~inv).popcount(), 1U);
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(10), b(11);
  EXPECT_THROW(a & b, std::invalid_argument);
  EXPECT_THROW(a ^ b, std::invalid_argument);
  EXPECT_THROW(BitVector::majority3(a, a, b), std::invalid_argument);
}

TEST(BitVector, Equality) {
  BitVector a(40), b(40);
  EXPECT_TRUE(a == b);
  a.set(12, true);
  EXPECT_FALSE(a == b);
  b.set(12, true);
  EXPECT_TRUE(a == b);
}

// Property sweep: MAJ3/XOR3/AND3/OR3 against per-bit truth over random data.
TEST(BitVector, ThreeOperandOpsMatchTruthTable) {
  Xoshiro256 rng(13);
  BitVector a(300), b(300), c(300);
  for (std::size_t i = 0; i < 300; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
    c.set(i, rng.bernoulli(0.5));
  }
  const BitVector maj = BitVector::majority3(a, b, c);
  const BitVector xor3 = BitVector::xor3(a, b, c);
  const BitVector and3 = BitVector::and3(a, b, c);
  const BitVector or3 = BitVector::or3(a, b, c);
  for (std::size_t i = 0; i < 300; ++i) {
    const int ones = (a.get(i) ? 1 : 0) + (b.get(i) ? 1 : 0) + (c.get(i) ? 1 : 0);
    EXPECT_EQ(maj.get(i), ones >= 2) << i;
    EXPECT_EQ(xor3.get(i), ones % 2 == 1) << i;
    EXPECT_EQ(and3.get(i), ones == 3) << i;
    EXPECT_EQ(or3.get(i), ones >= 1) << i;
  }
}

// Full-adder identity: for any bit triple, (MAJ, XOR3) == carry/sum.
TEST(BitVector, FullAdderIdentity) {
  for (int mask = 0; mask < 8; ++mask) {
    BitVector a(1), b(1), c(1);
    a.set(0, mask & 1);
    b.set(0, mask & 2);
    c.set(0, mask & 4);
    const int sum_total = (mask & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1);
    EXPECT_EQ(BitVector::majority3(a, b, c).get(0), (sum_total >> 1) & 1);
    EXPECT_EQ(BitVector::xor3(a, b, c).get(0), sum_total & 1);
  }
}

}  // namespace
}  // namespace pim::util
