// S43: host<->PIM staging model, double-buffered overlap, and the
// safe-mid-run-scrape contract.
//   * TransferModel pricing (packed payload, serialization floor, off-chip
//     word energy) and config validation;
//   * StagingTimeline single- vs double-buffer semantics, including the
//     generation-0 fill stall;
//   * PimChipFleet charging: determinism across reruns (model time, never
//     wall clock), overlapped < serial with >= 2 generations, the disabled
//     ablation, and the fleet.transfer.* gauge surface;
//   * chip_stats / transfer_report / publish_metrics concurrent with a LIVE
//     align_batch — the pre-S43 data race, now seqlock-published. This test
//     runs in the TSan CI job.
#include "src/pim/transfer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/genome/synthetic_genome.h"
#include "src/obs/metrics.h"
#include "src/pim/pim_fleet.h"
#include "src/util/rng.h"

namespace pim::hw {
namespace {

TEST(TransferModel, ReadBytesPacksTwoBitBases) {
  const TransferModel model;
  // ceil(bases / 4) packed bytes + the 8-byte per-read descriptor.
  EXPECT_EQ(model.read_bytes(100), 25u + 8u);
  EXPECT_EQ(model.read_bytes(101), 26u + 8u);
  EXPECT_EQ(model.read_bytes(1), 1u + 8u);
  EXPECT_EQ(model.read_bytes(0), 8u);  // descriptor still ships
}

TEST(TransferModel, StagingCostPricing) {
  const TransferModel model;
  const StagingCost cost = model.staging_cost(1 << 20);  // 1 MiB
  EXPECT_EQ(cost.bytes, 1u << 20);
  EXPECT_EQ(cost.words, (1u << 20) / 4);
  // 16 GB/s == 16 bytes/ns.
  EXPECT_NEAR(cost.wire_ns, static_cast<double>(1 << 20) / 16.0, 1e-9);
  EXPECT_DOUBLE_EQ(cost.serialization_ns, 1500.0);
  EXPECT_NEAR(cost.latency_ns, cost.serialization_ns + cost.wire_ns, 1e-9);
  // Wire energy is the interconnect's off-chip word price — same currency
  // as every other cross-hierarchy transfer in the chip model.
  const double expected_pj =
      model.interconnect()
          .transfer_cost(cost.words, HopLevel::kOffChip)
          .energy_pj;
  EXPECT_DOUBLE_EQ(cost.energy_pj, expected_pj);
}

TEST(TransferModel, ZeroBytesIsPricedNoOp) {
  const TransferModel model;
  const StagingCost cost = model.staging_cost(0);
  EXPECT_EQ(cost.bytes, 0u);
  EXPECT_EQ(cost.words, 0u);
  // No DMA issued: not even the serialization floor applies.
  EXPECT_DOUBLE_EQ(cost.serialization_ns, 0.0);
  EXPECT_DOUBLE_EQ(cost.latency_ns, 0.0);
  EXPECT_DOUBLE_EQ(cost.energy_pj, 0.0);
}

TEST(TransferModel, ConfigOverridesApply) {
  util::Config over;
  over.set_double("HostLinkBandwidthGBs", 2.0);
  over.set_double("BatchSerializationNs", 0.0);
  over.set_int("PerReadHeaderBytes", 0);
  const TransferModel model(over);
  EXPECT_DOUBLE_EQ(model.bandwidth_gbs(), 2.0);
  EXPECT_EQ(model.read_bytes(100), 25u);
  const StagingCost cost = model.staging_cost(1000);
  EXPECT_NEAR(cost.latency_ns, 500.0, 1e-9);  // pure wire time at 2 B/ns
}

TEST(TransferModel, BadConfigRejectedNamingKey) {
  for (const double bad :
       {0.0, -1.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    util::Config over;
    over.set_double("HostLinkBandwidthGBs", bad);
    try {
      TransferModel model(over);
      FAIL() << "accepted HostLinkBandwidthGBs = " << bad;
    } catch (const std::invalid_argument& err) {
      EXPECT_NE(std::string(err.what()).find("HostLinkBandwidthGBs"),
                std::string::npos)
          << err.what();
    }
  }
  util::Config negative;
  negative.set_double("BatchSerializationNs", -1.0);
  EXPECT_THROW(TransferModel{negative}, std::invalid_argument);
  util::Config header;
  header.set_int("PerReadHeaderBytes", -8);
  EXPECT_THROW(TransferModel{header}, std::invalid_argument);
}

TEST(StagingTimeline, SingleBufferSerializesEveryGeneration) {
  StagingTimeline timeline(/*double_buffer=*/false);
  for (int g = 0; g < 3; ++g) {
    const auto gen = timeline.advance(10.0, 20.0);
    EXPECT_DOUBLE_EQ(gen.stall_ns, 10.0);  // every transfer is exposed
  }
  EXPECT_DOUBLE_EQ(timeline.serial_sum_ns(), 90.0);
  EXPECT_DOUBLE_EQ(timeline.makespan_ns(), 90.0);  // no overlap at all
}

TEST(StagingTimeline, DoubleBufferHidesTransferUnderCompute) {
  StagingTimeline timeline(/*double_buffer=*/true);
  // Compute-bound: T=10 < C=20. Only generation 0's fill stalls.
  const auto g0 = timeline.advance(10.0, 20.0);
  EXPECT_DOUBLE_EQ(g0.stall_ns, 10.0);  // pipeline fill is a true stall
  const auto g1 = timeline.advance(10.0, 20.0);
  EXPECT_DOUBLE_EQ(g1.stall_ns, 0.0);  // staged while g0 computed
  const auto g2 = timeline.advance(10.0, 20.0);
  EXPECT_DOUBLE_EQ(g2.stall_ns, 0.0);
  EXPECT_DOUBLE_EQ(timeline.makespan_ns(), 70.0);  // 10 fill + 3 x 20
  EXPECT_DOUBLE_EQ(timeline.serial_sum_ns(), 90.0);
  EXPECT_LT(timeline.makespan_ns(), timeline.serial_sum_ns());
}

TEST(StagingTimeline, TransferBoundStallsAtLinkRate) {
  StagingTimeline timeline(/*double_buffer=*/true);
  // Transfer-bound: T=30 > C=10. Steady state is paced by the link: each
  // generation stalls T - C = 20 after the fill.
  const auto g0 = timeline.advance(30.0, 10.0);
  EXPECT_DOUBLE_EQ(g0.stall_ns, 30.0);
  const auto g1 = timeline.advance(30.0, 10.0);
  EXPECT_DOUBLE_EQ(g1.stall_ns, 20.0);
  const auto g2 = timeline.advance(30.0, 10.0);
  EXPECT_DOUBLE_EQ(g2.stall_ns, 20.0);
  EXPECT_DOUBLE_EQ(timeline.makespan_ns(), 100.0);  // 30 + 3 x 10 + 2 x 20
  EXPECT_LT(timeline.makespan_ns(), timeline.serial_sum_ns());  // 120
}

TEST(StagingTimeline, ResetClearsTheClock) {
  StagingTimeline timeline;
  timeline.advance(5.0, 5.0);
  timeline.reset();
  EXPECT_EQ(timeline.generations(), 0u);
  EXPECT_DOUBLE_EQ(timeline.makespan_ns(), 0.0);
  const auto gen = timeline.advance(5.0, 5.0);
  EXPECT_DOUBLE_EQ(gen.transfer_start_ns, 0.0);
}

// ---------------------------------------------------------------------------
// Fleet integration.

std::vector<std::vector<genome::Base>> make_reads(
    const genome::PackedSequence& reference, std::size_t count,
    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<genome::Base>> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = 48 + rng.bounded(33);
    const std::size_t start = rng.bounded(reference.size() - len);
    reads.push_back(reference.slice(start, start + len));
  }
  return reads;
}

struct FleetFixture {
  genome::PackedSequence reference;
  index::FmIndex fm;
  TimingEnergyModel timing;
  align::ReadBatch batch;

  explicit FleetFixture(std::size_t num_reads = 96) {
    genome::SyntheticGenomeSpec spec;
    spec.length = 20000;
    spec.seed = 7;
    reference = genome::generate_reference(spec);
    fm = index::FmIndex::build(reference, {.bucket_width = 128});
    batch = align::ReadBatch::from_reads(make_reads(reference, num_reads, 3));
  }
};

TEST(FleetTransfer, ChargesEveryGeneration) {
  FleetFixture f;
  PimChipFleet fleet(f.fm, f.timing, 2);
  align::BatchResult out;
  fleet.engine().align_batch(f.batch, out);
  fleet.engine().align_batch(f.batch, out);

  const TransferReport report = fleet.transfer_report();
  EXPECT_EQ(report.generations, 2u);
  ASSERT_EQ(report.chips.size(), 2u);
  // Every read's packed payload + descriptor crossed the link, twice.
  std::uint64_t expected_bytes = 0;
  for (std::size_t i = 0; i < f.batch.size(); ++i) {
    expected_bytes += fleet.transfer_model().read_bytes(f.batch.read_length(i));
  }
  EXPECT_EQ(report.staged_bytes, 2 * expected_bytes);
  EXPECT_GT(report.staging_ns, 0.0);
  EXPECT_GT(report.energy_pj, 0.0);
  EXPECT_GT(report.compute_ns, 0.0);
  EXPECT_GT(report.overlapped_ns, 0.0);
  EXPECT_GE(report.overlap_ratio, 0.0);
  EXPECT_LE(report.overlap_ratio, 1.0);
  for (const auto& chip : report.chips) {
    EXPECT_EQ(chip.generations, 2u);
    EXPECT_GT(chip.staged_bytes, 0u);
  }
}

TEST(FleetTransfer, DoubleBufferBeatsSerialWithTwoGenerations) {
  FleetFixture f;
  PimChipFleet fleet(f.fm, f.timing, 2);
  ASSERT_TRUE(fleet.transfer_options().double_buffer);
  align::BatchResult out;
  fleet.engine().align_batch(f.batch, out);
  fleet.engine().align_batch(f.batch, out);
  const TransferReport report = fleet.transfer_report();
  // The acceptance criterion: modeled end-to-end time with double buffering
  // strictly below the non-overlapped transfer + compute sum.
  EXPECT_LT(report.overlapped_ns, report.serial_ns);
}

TEST(FleetTransfer, SingleBufferNeverOverlaps) {
  FleetFixture f;
  TransferOptions opts;
  opts.double_buffer = false;
  PimChipFleet fleet(f.fm, f.timing, 2, {}, {}, AddPlacement::kMethodI, {},
                     opts);
  align::BatchResult out;
  fleet.engine().align_batch(f.batch, out);
  fleet.engine().align_batch(f.batch, out);
  const TransferReport report = fleet.transfer_report();
  // One landing buffer: the pipeline degenerates to the serial sum, and the
  // whole staging time is exposed as stall.
  EXPECT_DOUBLE_EQ(report.overlapped_ns, report.serial_ns);
  for (const auto& chip : report.chips) {
    EXPECT_NEAR(chip.stall_ns, chip.staging_ns, 1e-6);
  }
}

TEST(FleetTransfer, DisabledFleetChargesNothing) {
  FleetFixture f;
  TransferOptions opts;
  opts.enabled = false;
  PimChipFleet fleet(f.fm, f.timing, 2, {}, {}, AddPlacement::kMethodI, {},
                     opts);
  align::BatchResult out;
  fleet.engine().align_batch(f.batch, out);
  const TransferReport report = fleet.transfer_report();
  EXPECT_EQ(report.staged_bytes, 0u);
  EXPECT_DOUBLE_EQ(report.staging_ns, 0.0);
  EXPECT_DOUBLE_EQ(report.overlapped_ns, 0.0);
}

TEST(FleetTransfer, DeterministicAcrossReruns) {
  FleetFixture f;
  auto run = [&f]() {
    PimChipFleet fleet(f.fm, f.timing, 3);
    align::BatchResult out;
    fleet.engine().align_batch(f.batch, out);
    fleet.engine().align_batch(f.batch, out);
    return fleet.transfer_report();
  };
  const TransferReport a = run();
  const TransferReport b = run();
  // Model time, never wall clock: reruns are bit-identical even though the
  // shard threads schedule differently.
  EXPECT_EQ(a.staged_bytes, b.staged_bytes);
  EXPECT_DOUBLE_EQ(a.staging_ns, b.staging_ns);
  EXPECT_DOUBLE_EQ(a.energy_pj, b.energy_pj);
  EXPECT_DOUBLE_EQ(a.compute_ns, b.compute_ns);
  EXPECT_DOUBLE_EQ(a.stall_ns, b.stall_ns);
  EXPECT_DOUBLE_EQ(a.overlapped_ns, b.overlapped_ns);
  EXPECT_DOUBLE_EQ(a.serial_ns, b.serial_ns);
  ASSERT_EQ(a.chips.size(), b.chips.size());
  for (std::size_t c = 0; c < a.chips.size(); ++c) {
    EXPECT_EQ(a.chips[c].staged_bytes, b.chips[c].staged_bytes);
    EXPECT_DOUBLE_EQ(a.chips[c].makespan_ns, b.chips[c].makespan_ns);
  }
}

TEST(FleetTransfer, ResetStatsClearsTransferTallies) {
  FleetFixture f;
  PimChipFleet fleet(f.fm, f.timing, 2);
  align::BatchResult out;
  fleet.engine().align_batch(f.batch, out);
  EXPECT_GT(fleet.transfer_report().staged_bytes, 0u);
  fleet.reset_stats();
  const TransferReport report = fleet.transfer_report();
  EXPECT_EQ(report.generations, 0u);
  EXPECT_EQ(report.staged_bytes, 0u);
  EXPECT_DOUBLE_EQ(report.overlapped_ns, 0.0);
}

TEST(FleetTransfer, PublishesTransferGauges) {
  FleetFixture f;
  PimChipFleet fleet(f.fm, f.timing, 2);
  align::BatchResult out;
  fleet.engine().align_batch(f.batch, out);
  obs::MetricsRegistry registry;
  fleet.publish_metrics(registry);
  const obs::MetricsSnapshot snap = registry.scrape();
  const TransferReport report = fleet.transfer_report();
  EXPECT_DOUBLE_EQ(snap.gauge_value("fleet.transfer.staged_bytes"),
                   static_cast<double>(report.staged_bytes));
  EXPECT_DOUBLE_EQ(snap.gauge_value("fleet.transfer.staging_ns"),
                   report.staging_ns);
  EXPECT_DOUBLE_EQ(snap.gauge_value("fleet.transfer.overlapped_ns"),
                   report.overlapped_ns);
  EXPECT_DOUBLE_EQ(snap.gauge_value("fleet.transfer.serial_ns"),
                   report.serial_ns);
  EXPECT_DOUBLE_EQ(snap.gauge_value("fleet.transfer.overlap_ratio"),
                   report.overlap_ratio);
  EXPECT_DOUBLE_EQ(snap.gauge_value("fleet.transfer.generations"), 1.0);
  EXPECT_GT(snap.gauge_value("fleet.transfer.chip.0.staged_bytes"), 0.0);
  EXPECT_GT(snap.gauge_value("fleet.transfer.chip.1.staged_bytes"), 0.0);
}

TEST(FleetTransfer, ScrapeDuringLiveAlignIsSafe) {
  // The S43 headline race, exercised: one thread drives align_batch while
  // another scrapes chip_stats / transfer_report / publish_metrics. Before
  // S43 this was a data race on the chips' raw tallies (TSan flagged it);
  // now every cross-thread read goes through a seqlock-published snapshot.
  // This test is in the TSan CI job's run list.
  FleetFixture f(160);
  PimChipFleet fleet(f.fm, f.timing, 2);
  obs::MetricsRegistry registry;
  std::atomic<bool> done{false};

  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      fleet.publish_metrics(registry);
      const auto stats = fleet.chip_stats(0);
      const auto report = fleet.transfer_report();
      // Snapshots are internally consistent even mid-run.
      EXPECT_GE(stats.ops.busy_ns, 0.0);
      EXPECT_GE(report.staging_ns, 0.0);
    }
  });

  align::BatchResult out;
  for (int gen = 0; gen < 4; ++gen) {
    fleet.engine().align_batch(f.batch, out);
  }
  done.store(true, std::memory_order_release);
  scraper.join();

  // Quiescent now: the published snapshots have caught up exactly.
  const TransferReport report = fleet.transfer_report();
  EXPECT_EQ(report.generations, 4u);
  fleet.publish_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.scrape().gauge_value("fleet.transfer.generations"),
                   4.0);
}

}  // namespace
}  // namespace pim::hw
