#include "src/accel/pim_aligner_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/accel/comparison.h"

namespace pim::accel {
namespace {

hw::TimingEnergyModel& default_timing() {
  static hw::TimingEnergyModel timing;
  return timing;
}

TEST(ChipModel, MemoryFootprintMatchesPaperScale) {
  // The paper: BWT + MT + SA "will consume ~12GB of memory space".
  const PimChipModel model(default_timing());
  EXPECT_NEAR(model.memory_footprint_gb(), 14.0, 2.5);
}

TEST(ChipModel, TileCountCoversHg19) {
  const PimChipModel model(default_timing());
  // 3.2e9 / 32768 bps per tile ~ 97'657 computational sub-arrays.
  EXPECT_NEAR(static_cast<double>(model.num_tiles()), 97657.0, 2.0);
}

TEST(ChipModel, AreaOverheadClaim) {
  const PimChipModel model(default_timing());
  EXPECT_LT(model.compute_area_overhead_fraction(), 0.10);
}

TEST(ChipModel, Pd2MatchesPaperAnnotations) {
  // Fig. 9c annotates Pd=2 with 28.4 W and 6.7e6 queries/s.
  const PimChipModel model(default_timing());
  const ChipReport r = model.evaluate(2);
  EXPECT_NEAR(r.power_w, 28.4, 2.0);
  EXPECT_NEAR(r.throughput_qps, 6.7e6, 0.4e6);
}

TEST(ChipModel, PipelineGainIsFortyPercent) {
  const PimChipModel model(default_timing());
  const double gain =
      model.evaluate(2).throughput_qps / model.evaluate(1).throughput_qps;
  EXPECT_NEAR(gain, 1.4, 0.1);
}

TEST(ChipModel, PowerAndThroughputRiseWithPd) {
  // Fig. 9c: "by increasing the Pd, both power consumption and throughput
  // will increase".
  const PimChipModel model(default_timing());
  double prev_power = 0.0, prev_tp = 0.0;
  for (std::uint32_t pd = 1; pd <= 4; ++pd) {
    const ChipReport r = model.evaluate(pd);
    EXPECT_GT(r.power_w, prev_power) << pd;
    EXPECT_GE(r.throughput_qps, prev_tp - 1.0) << pd;
    prev_power = r.power_w;
    prev_tp = r.throughput_qps;
  }
}

TEST(ChipModel, MbrUnderEighteenPercent) {
  const PimChipModel model(default_timing());
  for (std::uint32_t pd = 1; pd <= 2; ++pd) {
    EXPECT_LT(model.evaluate(pd).mbr_pct, 18.0);
    EXPECT_GT(model.evaluate(pd).mbr_pct, 0.0);
  }
}

TEST(ChipModel, RurMatchesPaper) {
  const PimChipModel model(default_timing());
  EXPECT_NEAR(model.evaluate(2).rur_pct, 86.0, 2.0);
  EXPECT_LT(model.evaluate(1).rur_pct, model.evaluate(2).rur_pct);
}

TEST(ChipModel, OffchipIsZero) {
  const PimChipModel model(default_timing());
  EXPECT_DOUBLE_EQ(model.evaluate(2).offchip_gb, 0.0);
}

TEST(ChipModel, BadArgsThrow) {
  ChipModelConfig cfg;
  cfg.pipelines = 0;
  EXPECT_THROW(PimChipModel(default_timing(), {}, cfg), std::invalid_argument);
  const PimChipModel model(default_timing());
  EXPECT_THROW(model.evaluate(0), std::invalid_argument);
}

TEST(ChipModel, AsMetricsCopiesFields) {
  const PimChipModel model(default_timing());
  const ChipReport r = model.evaluate(2);
  const AcceleratorMetrics m = r.as_metrics("PIM-Aligner-p");
  EXPECT_EQ(m.name, "PIM-Aligner-p");
  EXPECT_DOUBLE_EQ(m.power_w, r.power_w);
  EXPECT_DOUBLE_EQ(m.throughput_qps, r.throughput_qps);
  EXPECT_DOUBLE_EQ(m.area_mm2, r.engine_area_mm2);
}

// --- Comparison table & headline ratios -------------------------------------

TEST(Comparison, TableHasTenPlatforms) {
  const ComparisonTable table = build_default_comparison();
  EXPECT_EQ(table.rows.size(), 10U);
  EXPECT_NO_THROW(table.row("Darwin"));
  EXPECT_NO_THROW(table.row("PIM-Aligner-p"));
  EXPECT_THROW(table.row("nope"), std::out_of_range);
}

TEST(Comparison, HeadlineRatiosNearPaper) {
  const ComparisonTable table = build_default_comparison();
  const HeadlineRatios r = compute_headline_ratios(table);
  EXPECT_NEAR(r.tpw_vs_racelogic, 3.1, 0.5);   // "~3.1x higher"
  EXPECT_NEAR(r.tpw_vs_asic, 2.0, 0.4);        // "~2x"
  EXPECT_NEAR(r.tpw_vs_fpga, 43.8, 7.0);       // "43.8x"
  EXPECT_NEAR(r.tpw_vs_gpu, 458.0, 70.0);      // "458x"
  EXPECT_NEAR(r.tpwa_vs_asic, 9.0, 1.5);       // "~9x"
  EXPECT_NEAR(r.tpwa_vs_aligner, 1.9, 0.4);    // "1.9x"
  EXPECT_NEAR(r.pipeline_gain, 1.4, 0.1);      // "~40%"
}

TEST(Comparison, QualitativeOrderings) {
  const ComparisonTable table = build_default_comparison();
  // AlignS achieves the highest throughput/Watt; PIM-Aligner-n is second.
  const double pim_n = table.row("PIM-Aligner-n").throughput_per_watt();
  EXPECT_GT(table.row("AlignS").throughput_per_watt(), pim_n);
  for (const auto& row : table.rows) {
    if (row.name == "AlignS" || row.name == "PIM-Aligner-n") continue;
    EXPECT_LT(row.throughput_per_watt(), pim_n) << row.name;
  }
  // RaceLogic is the only platform faster than PIM-Aligner-p (Fig. 8b).
  const double pim_p_tp = table.row("PIM-Aligner-p").throughput_qps;
  for (const auto& row : table.rows) {
    if (row.name == "RaceLogic" || row.name == "PIM-Aligner-p") continue;
    EXPECT_LT(row.throughput_qps, pim_p_tp) << row.name;
  }
  // PIM-Aligner leads every platform in throughput/Watt/mm2 (Fig. 9b).
  const double pim_p_tpwa =
      table.row("PIM-Aligner-p").throughput_per_watt_per_mm2();
  for (const auto& row : table.rows) {
    if (row.name.rfind("PIM-Aligner", 0) == 0) continue;
    EXPECT_LT(row.throughput_per_watt_per_mm2(), pim_p_tpwa) << row.name;
  }
  // PIMs need no off-chip memory; GPU and FPGA rely on it heavily (Fig. 10a).
  EXPECT_EQ(table.row("PIM-Aligner-p").offchip_gb, 0.0);
  EXPECT_EQ(table.row("AlignS").offchip_gb, 0.0);
  EXPECT_GT(table.row("GPU").offchip_gb, 50.0);
  EXPECT_GT(table.row("FPGA").offchip_gb, 50.0);
  EXPECT_DOUBLE_EQ(table.row("ASIC").offchip_gb, 1.0);  // stated in the text
  // PIM platforms spend < 25% of time on memory waits (Fig. 10b).
  for (const auto& name : {"AligneR", "AlignS", "PIM-Aligner-n",
                           "PIM-Aligner-p"}) {
    EXPECT_LT(table.row(name).mbr_pct, 25.0) << name;
  }
  // PIM-Aligner-p has the highest resource utilization (Fig. 10c).
  const double pim_p_rur = table.row("PIM-Aligner-p").rur_pct;
  for (const auto& row : table.rows) {
    if (row.name == "PIM-Aligner-p") continue;
    EXPECT_LT(row.rur_pct, pim_p_rur) << row.name;
  }
}

TEST(Baselines, LookupByName) {
  EXPECT_NEAR(baseline("ASIC").power_w, 0.135, 1e-9);
  EXPECT_EQ(baseline("Darwin").family, AlgorithmFamily::kSmithWaterman);
  EXPECT_EQ(baseline("GPU").family, AlgorithmFamily::kFmIndex);
  EXPECT_THROW(baseline("missing"), std::out_of_range);
}

}  // namespace
}  // namespace pim::accel
