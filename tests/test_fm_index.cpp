#include "src/index/fm_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::index {
namespace {

using genome::Base;
using genome::PackedSequence;

TEST(SaInterval, Basics) {
  SaInterval valid{2, 5};
  EXPECT_TRUE(valid.valid());
  EXPECT_EQ(valid.count(), 3U);
  SaInterval collapsed{5, 5};
  EXPECT_FALSE(collapsed.valid());
  EXPECT_EQ(collapsed.count(), 0U);
  SaInterval inverted{6, 2};
  EXPECT_FALSE(inverted.valid());
  EXPECT_EQ(inverted.count(), 0U);
}

TEST(FmIndex, BuildSmall) {
  const PackedSequence text("TGCTA");
  const FmIndex fm = FmIndex::build(text, {.bucket_width = 2});
  EXPECT_EQ(fm.reference_size(), 5U);
  EXPECT_EQ(fm.num_rows(), 6U);
  EXPECT_EQ(fm.whole_interval(), (SaInterval{0, 6}));
}

TEST(FmIndex, OccMatchesOracle) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 512;
  spec.seed = 17;
  const PackedSequence text = genome::generate_reference(spec);
  const FmIndex fm = FmIndex::build(text, {.bucket_width = 16});
  const OccTable oracle(fm.bwt());
  for (std::size_t i = 0; i <= fm.num_rows(); ++i) {
    for (const auto nt : genome::kAllBases) {
      ASSERT_EQ(fm.occ(nt, i), oracle.occ(nt, i)) << i;
    }
  }
}

TEST(FmIndex, LocateRecoversSuffixArray) {
  const PackedSequence text("TGCTA");
  const FmIndex fm = FmIndex::build(text, {.bucket_width = 2});
  // SA of TGCTA$ = [5,4,2,1,3,0].
  const std::vector<std::uint64_t> expect = {5, 4, 2, 1, 3, 0};
  for (std::size_t row = 0; row < fm.num_rows(); ++row) {
    EXPECT_EQ(fm.locate(row), expect[row]) << row;
  }
}

// Sampled-SA property: locate() is exact for every row at every rate.
class SampledSaProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SampledSaProperty, LocateMatchesFullSa) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 600;
  spec.seed = 23;
  spec.repeat_fraction = 0.5;
  const PackedSequence text = genome::generate_reference(spec);
  const SuffixArray sa = build_suffix_array(text);
  FmIndexConfig config;
  config.bucket_width = 32;
  config.sa_sample_rate = GetParam();
  const FmIndex fm = FmIndex::build(text, config);
  for (std::size_t row = 0; row < fm.num_rows(); ++row) {
    ASSERT_EQ(fm.locate(row), sa[row])
        << "rate=" << GetParam() << " row=" << row;
  }
}

INSTANTIATE_TEST_SUITE_P(SampleRates, SampledSaProperty,
                         ::testing::Values(1U, 2U, 4U, 8U, 32U));

TEST(FmIndex, ExtendShrinksIntervalsMonotonically) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 2000;
  spec.seed = 29;
  const PackedSequence text = genome::generate_reference(spec);
  const FmIndex fm = FmIndex::build(text, {.bucket_width = 64});
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    SaInterval interval = fm.whole_interval();
    std::uint64_t prev_count = interval.count();
    for (int step = 0; step < 30 && interval.valid(); ++step) {
      interval = fm.extend(interval, static_cast<Base>(rng.bounded(4)));
      EXPECT_LE(interval.count(), prev_count);
      prev_count = interval.count();
    }
  }
}

TEST(FmIndex, LocateAllSortedAndUnique) {
  const PackedSequence text("ACGTACGTACGT");
  const FmIndex fm = FmIndex::build(text, {.bucket_width = 4});
  // Pattern ACGT occurs at 0, 4, 8: get its interval by backward search.
  SaInterval interval = fm.whole_interval();
  for (const char c : {'T', 'G', 'C', 'A'}) {
    interval = fm.extend(interval, *genome::base_from_char(c));
  }
  const auto positions = fm.locate_all(interval);
  const std::vector<std::uint64_t> expect = {0, 4, 8};
  EXPECT_EQ(positions, expect);
  EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
}

TEST(FmIndex, LocateAllOfInvalidIntervalIsEmpty) {
  const PackedSequence text("ACGT");
  const FmIndex fm = FmIndex::build(text, {.bucket_width = 2});
  EXPECT_TRUE(fm.locate_all(SaInterval{3, 3}).empty());
}

TEST(FmIndex, MemoryFootprintAccounts) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 4096;
  spec.seed = 2;
  const PackedSequence text = genome::generate_reference(spec);
  const FmIndex full = FmIndex::build(text, {.bucket_width = 128,
                                             .sa_sample_rate = 1});
  const FmIndex sampled = FmIndex::build(text, {.bucket_width = 128,
                                                .sa_sample_rate = 8});
  const auto fp_full = full.memory_footprint();
  const auto fp_sampled = sampled.memory_footprint();
  EXPECT_GT(fp_full.sa_bytes, fp_sampled.sa_bytes);
  EXPECT_EQ(fp_full.bwt_bytes, fp_sampled.bwt_bytes);
  EXPECT_GT(fp_full.total(), 0U);
  // BWT at 2 bits/base: 4097 symbols -> ~1 KiB.
  EXPECT_NEAR(static_cast<double>(fp_full.bwt_bytes), 4097.0 / 4.0, 8.0);
}

}  // namespace
}  // namespace pim::index
