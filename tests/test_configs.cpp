// The shipped NVSim-style configs must stay loadable and sane: every bench
// and the README point users at them, so a malformed or drifting cfg is a
// release bug.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/accel/pim_aligner_model.h"
#include "src/pim/timing_energy.h"
#include "src/util/config.h"

namespace {

std::string config_path(const std::string& name) {
  return std::string(PIMALIGNER_SOURCE_DIR) + "/configs/" + name;
}

TEST(Configs, DefaultCfgMatchesBuiltInDefaults) {
  const auto cfg =
      pim::util::Config::load_file(config_path("sot_mram_default.cfg"));
  const pim::hw::TimingEnergyModel from_file(cfg);
  const pim::hw::TimingEnergyModel built_in;
  for (const auto op :
       {pim::hw::SubArrayOp::kMemRead, pim::hw::SubArrayOp::kMemWrite,
        pim::hw::SubArrayOp::kTripleSense, pim::hw::SubArrayOp::kDpuWord}) {
    EXPECT_DOUBLE_EQ(from_file.op_cost(op).latency_ns,
                     built_in.op_cost(op).latency_ns);
    EXPECT_DOUBLE_EQ(from_file.op_cost(op).energy_pj,
                     built_in.op_cost(op).energy_pj);
  }
  EXPECT_EQ(from_file.rows(), built_in.rows());
  EXPECT_DOUBLE_EQ(from_file.subarray_area_mm2(), built_in.subarray_area_mm2());
}

TEST(Configs, AlignSStyleAddCostsTwoSensesPerBit) {
  const auto cfg = pim::util::Config::load_file(config_path("aligns_like.cfg"));
  const pim::hw::TimingEnergyModel aligns(cfg);
  EXPECT_EQ(aligns.add_senses_per_bit(), 2U);
  const pim::hw::TimingEnergyModel pim_aligner;
  EXPECT_EQ(pim_aligner.add_senses_per_bit(), 1U);
  // Despite AlignS's faster/cheaper individual senses, its 2-cycle adder
  // makes the 32-bit IM_ADD slower than PIM-Aligner's single-cycle scheme —
  // the trade the paper describes ("two SAs and a two-cycle addition
  // scheme ... that is why our design consumes more power").
  EXPECT_GT(aligns.im_add_cost(32).latency_ns,
            pim_aligner.im_add_cost(32).latency_ns);
  EXPECT_LT(aligns.op_cost(pim::hw::SubArrayOp::kTripleSense).energy_pj,
            pim_aligner.op_cost(pim::hw::SubArrayOp::kTripleSense).energy_pj);
}

TEST(Configs, ZeroAddSensesRejected) {
  pim::util::Config bad;
  bad.set_int("AddSensesPerBit", 0);
  EXPECT_THROW(pim::hw::TimingEnergyModel{bad}, std::invalid_argument);
}

TEST(Configs, AllCornersLoadAndEvaluate) {
  for (const char* name :
       {"sot_mram_default.cfg", "aligns_like.cfg",
        "sot_mram_conservative.cfg", "reram_like.cfg"}) {
    const auto cfg = pim::util::Config::load_file(config_path(name));
    const pim::hw::TimingEnergyModel timing(cfg);
    const pim::accel::PimChipModel chip(timing);
    const auto report = chip.evaluate(2);
    EXPECT_GT(report.throughput_qps, 0.0) << name;
    EXPECT_GT(report.power_w, 0.0) << name;
    EXPECT_LT(timing.compute_area_overhead_fraction(), 0.101) << name;
  }
}

TEST(Configs, CornerOrderingHolds) {
  // Calibrated SOT beats the conservative corner beats the ReRAM-like
  // corner in throughput/Watt — the cross-technology claim.
  const auto tpw = [&](const char* name) {
    const auto cfg = pim::util::Config::load_file(config_path(name));
    const pim::hw::TimingEnergyModel timing(cfg);
    const pim::accel::PimChipModel chip(timing);
    const auto report = chip.evaluate(2);
    return report.throughput_qps / report.power_w;
  };
  const double sot = tpw("sot_mram_default.cfg");
  const double conservative = tpw("sot_mram_conservative.cfg");
  const double reram = tpw("reram_like.cfg");
  EXPECT_GT(sot, conservative);
  EXPECT_GT(conservative, reram);
  // The ReRAM write penalty is multiple-fold, not marginal.
  EXPECT_GT(sot / reram, 3.0);
}

}  // namespace
