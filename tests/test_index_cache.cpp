// IndexCache suite (S42): LRU residency of mapped artifacts, and the
// bit-identity guarantee across index provenance — an engine must produce
// the same results whether its FmIndex was built in memory, stream-loaded,
// or assembled zero-copy over an mmap region (including via ShardedEngine).
#include "src/serve/index_cache.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/align/engine.h"
#include "src/align/sharded_engine.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/index_io.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace pim::serve {
namespace {

struct Artifact {
  std::string id;
  std::string path;
  genome::PackedSequence reference;
  index::FmIndex fm;
};

/// Builds `count` distinct references and persists each as a v2 artifact.
std::vector<Artifact> make_artifacts(std::size_t count,
                                     std::size_t length = 20000) {
  std::vector<Artifact> artifacts;
  for (std::size_t i = 0; i < count; ++i) {
    Artifact a;
    a.id = "ref" + std::to_string(i);
    a.path = "/tmp/pim_cache_test_" + a.id + ".index";
    genome::SyntheticGenomeSpec spec;
    spec.length = length;
    spec.seed = 900 + i;
    a.reference = genome::generate_reference(spec);
    a.fm = index::FmIndex::build(a.reference, {.bucket_width = 128});
    index::save_index_file(a.path, a.fm, a.reference,
                           {{a.id, 0, a.reference.size()}});
    artifacts.push_back(std::move(a));
  }
  return artifacts;
}

TEST(IndexCache, RegistrationValidation) {
  IndexCache cache;
  cache.add_reference("a", "/tmp/nonexistent_a.index");
  EXPECT_TRUE(cache.has_reference("a"));
  EXPECT_FALSE(cache.has_reference("b"));
  EXPECT_THROW(cache.add_reference("", "/tmp/x"), std::invalid_argument);
  EXPECT_THROW(cache.add_reference("a", "/tmp/other"), std::invalid_argument);
  EXPECT_THROW(cache.acquire("unregistered"), std::out_of_range);
  // Registered but unloadable: the open error propagates, nothing becomes
  // resident.
  EXPECT_THROW(cache.acquire("a"), std::runtime_error);
  EXPECT_FALSE(cache.resident("a"));
}

TEST(IndexCache, LruEvictionAtCapacity) {
  const auto artifacts = make_artifacts(3, 8000);
  IndexCacheOptions options;
  options.max_resident = 2;
  IndexCache cache(options);
  for (const auto& a : artifacts) cache.add_reference(a.id, a.path);

  auto r0 = cache.acquire("ref0");
  auto r1 = cache.acquire("ref1");
  EXPECT_TRUE(cache.resident("ref0"));
  EXPECT_TRUE(cache.resident("ref1"));
  EXPECT_EQ(cache.resident_ids(), (std::vector<std::string>{"ref1", "ref0"}));

  // Touch ref0 so ref1 becomes least-recently-used, then load ref2.
  (void)cache.acquire("ref0");
  auto r2 = cache.acquire("ref2");
  EXPECT_TRUE(cache.resident("ref0"));
  EXPECT_FALSE(cache.resident("ref1"));
  EXPECT_TRUE(cache.resident("ref2"));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1U);
  EXPECT_EQ(stats.misses, 3U);
  EXPECT_EQ(stats.evictions, 1U);
  EXPECT_EQ(stats.resident, 2U);
  EXPECT_GT(stats.resident_bytes, 0U);

  // The evicted index survives through the caller's pin: eviction drops the
  // cache's reference, never the user's.
  EXPECT_EQ(r1->index().num_rows(), artifacts[1].fm.num_rows());
  EXPECT_TRUE(r1->reference() == artifacts[1].reference);

  // Re-acquiring the evicted id reloads it (another miss + eviction).
  auto r1_again = cache.acquire("ref1");
  EXPECT_EQ(cache.stats().misses, 4U);
  EXPECT_NE(r1_again.get(), r1.get());  // distinct load, same content
  EXPECT_TRUE(r1_again->reference() == r1->reference());
}

TEST(IndexCache, PublishesMetrics) {
  const auto artifacts = make_artifacts(2, 6000);
  obs::MetricsRegistry registry;
  IndexCacheOptions options;
  options.max_resident = 1;
  options.metrics = &registry;
  IndexCache cache(options);
  for (const auto& a : artifacts) cache.add_reference(a.id, a.path);

  (void)cache.acquire("ref0");
  (void)cache.acquire("ref0");
  (void)cache.acquire("ref1");  // evicts ref0

  const auto snapshot = registry.scrape();
  EXPECT_EQ(snapshot.counter_value("service.index_cache.hits"), 1U);
  EXPECT_EQ(snapshot.counter_value("service.index_cache.misses"), 2U);
  EXPECT_EQ(snapshot.counter_value("service.index_cache.evictions"), 1U);
  EXPECT_GT(snapshot.gauge_value("service.index_cache.resident_bytes"), 0.0);
  // index.load.* flows through the cache's opens as well.
  const auto* map_ms = snapshot.histogram("index.load.map_ms");
  const auto* stream_ms = snapshot.histogram("index.load.stream_ms");
  EXPECT_TRUE((map_ms != nullptr && map_ms->count == 2) ||
              (stream_ms != nullptr && stream_ms->count == 2));
}

TEST(IndexCache, MaxResidentClampedToOne) {
  const auto artifacts = make_artifacts(1, 4000);
  IndexCacheOptions options;
  options.max_resident = 0;  // clamped
  IndexCache cache(options);
  cache.add_reference(artifacts[0].id, artifacts[0].path);
  auto pinned = cache.acquire("ref0");
  EXPECT_TRUE(cache.resident("ref0"));
  EXPECT_EQ(cache.stats().resident, 1U);
}

// ---------------------------------------------------------------------------
// Bit-identity across provenance, through real engines.
// ---------------------------------------------------------------------------

std::vector<std::vector<genome::Base>> sample_reads(
    const genome::PackedSequence& reference, std::size_t count) {
  util::Xoshiro256 rng(5);
  std::vector<std::vector<genome::Base>> reads;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = 60;
    const std::size_t start = rng.bounded(reference.size() - len);
    auto read = reference.slice(start, start + len);
    if (i % 2 == 1) {
      const std::size_t pos = rng.bounded(read.size());
      read[pos] = genome::complement(read[pos]);
    }
    if (i % 3 == 2) read = genome::reverse_complement(read);
    reads.push_back(std::move(read));
  }
  return reads;
}

void expect_same_results(const align::BatchResult& want,
                         const align::BatchResult& got, const char* label) {
  const auto a = want.to_results();
  const auto b = got.to_results();
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stage, b[i].stage) << label << " read " << i;
    ASSERT_EQ(a[i].hits.size(), b[i].hits.size()) << label << " read " << i;
    for (std::size_t h = 0; h < a[i].hits.size(); ++h) {
      EXPECT_EQ(a[i].hits[h].position, b[i].hits[h].position)
          << label << " read " << i << " hit " << h;
      EXPECT_EQ(a[i].hits[h].diffs, b[i].hits[h].diffs)
          << label << " read " << i << " hit " << h;
      EXPECT_EQ(a[i].hits[h].strand, b[i].hits[h].strand)
          << label << " read " << i << " hit " << h;
    }
  }
}

TEST(IndexProvenance, EngineResultsIdenticalBuiltStreamMapped) {
  const auto artifacts = make_artifacts(1);
  const auto& a = artifacts[0];
  const auto reads = sample_reads(a.reference, 64);
  const auto batch = align::ReadBatch::from_reads(reads);
  align::AlignerOptions options;
  options.inexact.max_diffs = 2;

  align::BatchResult built_result;
  align::SoftwareEngine(a.fm, options).align_batch(batch, built_result);

  const auto streamed = index::load_index_file(a.path);
  align::BatchResult stream_result;
  align::SoftwareEngine(streamed.index, options)
      .align_batch(batch, stream_result);
  expect_same_results(built_result, stream_result, "stream");

  const auto mapped = index::MappedIndex::open(a.path);
  align::BatchResult mapped_result;
  align::SoftwareEngine(mapped.index(), options)
      .align_batch(batch, mapped_result);
  expect_same_results(built_result, mapped_result, "mapped");
}

TEST(IndexProvenance, ShardedEngineOverMappedIndexIdentical) {
  const auto artifacts = make_artifacts(1);
  const auto& a = artifacts[0];
  const auto reads = sample_reads(a.reference, 48);
  const auto batch = align::ReadBatch::from_reads(reads);
  align::AlignerOptions options;
  options.inexact.max_diffs = 2;

  align::BatchResult built_result;
  align::SoftwareEngine(a.fm, options).align_batch(batch, built_result);

  const auto mapped = index::MappedIndex::open(a.path);
  std::vector<std::unique_ptr<align::AlignmentEngine>> shards;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(
        std::make_unique<align::SoftwareEngine>(mapped.index(), options));
  }
  align::ShardedEngine sharded(std::move(shards));
  align::BatchResult sharded_result;
  sharded.align_batch(batch, sharded_result);
  expect_same_results(built_result, sharded_result, "sharded-mapped");
}

TEST(IndexProvenance, CacheAcquiredIndexIdenticalToBuilt) {
  const auto artifacts = make_artifacts(2);
  IndexCache cache;
  for (const auto& a : artifacts) cache.add_reference(a.id, a.path);
  for (const auto& a : artifacts) {
    const auto pinned = cache.acquire(a.id);
    const auto reads = sample_reads(a.reference, 32);
    const auto batch = align::ReadBatch::from_reads(reads);
    align::AlignerOptions options;
    options.inexact.max_diffs = 2;
    align::BatchResult want, got;
    align::SoftwareEngine(a.fm, options).align_batch(batch, want);
    align::SoftwareEngine(pinned->index(), options).align_batch(batch, got);
    expect_same_results(want, got, a.id.c_str());
  }
}

}  // namespace
}  // namespace pim::serve
