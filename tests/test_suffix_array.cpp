#include "src/index/suffix_array.h"

#include <gtest/gtest.h>

#include <string>

#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::index {
namespace {

using genome::PackedSequence;

TEST(SuffixArray, PaperWorkedExample) {
  // S = TGCTA (Fig. 1): suffixes of TGCTA$ sort as
  // $ | A$ | CTA$ | GCTA$ | TA$ | TGCTA$ -> SA = [5,4,2,1,3,0].
  const PackedSequence text("TGCTA");
  const SuffixArray sa = build_suffix_array(text);
  const SuffixArray expect = {5, 4, 2, 1, 3, 0};
  EXPECT_EQ(sa, expect);
}

TEST(SuffixArray, EmptyText) {
  const PackedSequence text("");
  const SuffixArray sa = build_suffix_array(text);
  ASSERT_EQ(sa.size(), 1U);
  EXPECT_EQ(sa[0], 0U);
}

TEST(SuffixArray, SingleCharacter) {
  const PackedSequence text("G");
  const SuffixArray sa = build_suffix_array(text);
  const SuffixArray expect = {1, 0};
  EXPECT_EQ(sa, expect);
}

TEST(SuffixArray, AllSameCharacter) {
  // Degenerate repeat: AAAA$ -> $ < A$ < AA$ < AAA$ < AAAA$.
  const PackedSequence text("AAAA");
  const SuffixArray sa = build_suffix_array(text);
  const SuffixArray expect = {4, 3, 2, 1, 0};
  EXPECT_EQ(sa, expect);
}

TEST(SuffixArray, MatchesNaiveOnFixedStrings) {
  for (const std::string s :
       {"A", "AC", "CA", "ACGT", "TTTTACGT", "GATTACA", "ATATATAT",
        "CCCCCCCCCC", "ACGTACGTACGTACGT", "TGCTATGCTA"}) {
    const PackedSequence text(s);
    EXPECT_EQ(build_suffix_array(text), build_suffix_array_naive(text))
        << "text=" << s;
  }
}

// Property sweep: SA-IS equals the naive oracle on random strings of many
// lengths and repeat structures.
class SuffixArrayProperty : public ::testing::TestWithParam<int> {};

TEST_P(SuffixArrayProperty, MatchesNaiveOnRandomText) {
  const int seed = GetParam();
  pim::util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const std::size_t length = 1 + rng.bounded(400);
  genome::SyntheticGenomeSpec spec;
  spec.length = length;
  spec.seed = static_cast<std::uint64_t>(seed) * 977 + 1;
  spec.repeat_fraction = (seed % 3 == 0) ? 0.6 : 0.0;
  spec.repeat_unit_length = 17;
  const PackedSequence text = genome::generate_reference(spec);
  const SuffixArray fast = build_suffix_array(text);
  const SuffixArray naive = build_suffix_array_naive(text);
  EXPECT_EQ(fast, naive) << "seed=" << seed << " len=" << length;
  EXPECT_TRUE(is_valid_suffix_array(text, fast));
}

INSTANTIATE_TEST_SUITE_P(RandomTexts, SuffixArrayProperty,
                         ::testing::Range(0, 40));

TEST(SuffixArray, ValidatorRejectsBadArrays) {
  const PackedSequence text("ACGT");
  SuffixArray sa = build_suffix_array(text);
  EXPECT_TRUE(is_valid_suffix_array(text, sa));
  std::swap(sa[0], sa[1]);
  EXPECT_FALSE(is_valid_suffix_array(text, sa));
  sa = build_suffix_array(text);
  sa[0] = sa[1];  // not a permutation
  EXPECT_FALSE(is_valid_suffix_array(text, sa));
  sa = build_suffix_array(text);
  sa.pop_back();  // wrong size
  EXPECT_FALSE(is_valid_suffix_array(text, sa));
}

TEST(SuffixArray, LargeRepeatHeavyText) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 100000;
  spec.repeat_fraction = 0.5;
  spec.seed = 21;
  const PackedSequence text = genome::generate_reference(spec);
  const SuffixArray sa = build_suffix_array(text);
  ASSERT_EQ(sa.size(), text.size() + 1);
  EXPECT_EQ(sa[0], text.size());  // "$" is the smallest suffix
  // Spot-check sortedness at random adjacent pairs.
  pim::util::Xoshiro256 rng(4);
  for (int t = 0; t < 200; ++t) {
    const std::size_t i = rng.bounded(sa.size() - 1);
    std::uint32_t a = sa[i];
    std::uint32_t b = sa[i + 1];
    // Compare suffixes up to 64 characters.
    bool ordered = true;
    for (int k = 0; k < 64; ++k) {
      const bool a_end = a + k >= text.size();
      const bool b_end = b + k >= text.size();
      if (a_end || b_end) {
        ordered = a_end;
        break;
      }
      if (text.at(a + k) != text.at(b + k)) {
        ordered = text.at(a + k) < text.at(b + k);
        break;
      }
    }
    EXPECT_TRUE(ordered) << "adjacent pair at " << i;
  }
}

}  // namespace
}  // namespace pim::index
