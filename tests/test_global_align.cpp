#include "src/align/global_align.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::encode;

TEST(GlocalAlign, PerfectMatchAnywhereInWindow) {
  const auto window = encode("TTTTACGTACGTTTTT");
  const auto read = encode("ACGTACGT");
  const auto r = glocal_align(window, read);
  EXPECT_EQ(r.score, 16);
  EXPECT_EQ(r.ref_begin, 4U);
  EXPECT_EQ(r.ref_end, 12U);
  EXPECT_EQ(r.edits, 0U);
  EXPECT_EQ(glocal_cigar_string(r), "8M");
}

TEST(GlocalAlign, EveryReadBaseConsumed) {
  // Unlike local SW, a bad read prefix cannot be clipped away.
  const auto window = encode("GGGGGGGGGGGG");
  const auto read = encode("TTTTGGGG");
  const auto r = glocal_align(window, read);
  std::uint32_t read_consumed = 0;
  for (const auto& e : r.cigar) {
    if (e.op != CigarOp::kDeletion) read_consumed += e.length;
  }
  EXPECT_EQ(read_consumed, read.size());
  EXPECT_EQ(r.edits, 4U);  // the four Ts mismatch
}

TEST(GlocalAlign, SubstitutionCigar) {
  const auto window = encode("AAACGTACGTAAA");
  const auto read = encode("CGTGCGT");
  const auto r = glocal_align(window, read);
  EXPECT_EQ(r.edits, 1U);
  EXPECT_EQ(glocal_cigar_string(r), "7M");  // X folded into M
}

TEST(GlocalAlign, DeletionCigar) {
  const auto window = encode("TTACGTACGTTT");
  const auto read = encode("ACGTCGT");  // missing an A
  const auto r = glocal_align(window, read);
  EXPECT_EQ(glocal_cigar_string(r), "4M1D3M");
  EXPECT_EQ(r.edits, 1U);
  EXPECT_EQ(r.ref_end - r.ref_begin, 8U);  // consumes 8 reference bases
}

TEST(GlocalAlign, InsertionCigar) {
  const auto window = encode("TTACGTCGTTT");
  const auto read = encode("ACGTACGT");  // extra A
  const auto r = glocal_align(window, read);
  EXPECT_EQ(glocal_cigar_string(r), "4M1I3M");
  EXPECT_EQ(r.edits, 1U);
  EXPECT_EQ(r.ref_end - r.ref_begin, 7U);
}

TEST(GlocalAlign, EmptyInputsThrow) {
  EXPECT_THROW(glocal_align({}, encode("A")), std::invalid_argument);
  EXPECT_THROW(glocal_align(encode("A"), {}), std::invalid_argument);
}

TEST(GlocalAlign, RefSpanMatchesCigar) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 400;
  spec.seed = 3;
  const auto text = genome::generate_reference(spec);
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t len = 20 + rng.bounded(30);
    const std::size_t start = rng.bounded(text.size() - len - 8);
    auto read = text.slice(start, start + len);
    // Random edit.
    if (trial % 3 == 0) {
      read[rng.bounded(read.size())] =
          static_cast<genome::Base>(rng.bounded(4));
    } else if (trial % 3 == 1) {
      read.erase(read.begin() + static_cast<long>(rng.bounded(read.size())));
    }
    const auto window = text.slice(start, start + len + 8);
    const auto r = glocal_align(window, read);
    std::uint64_t ref_consumed = 0, read_consumed = 0;
    for (const auto& e : r.cigar) {
      if (e.op != CigarOp::kInsertion) ref_consumed += e.length;
      if (e.op != CigarOp::kDeletion) read_consumed += e.length;
    }
    EXPECT_EQ(ref_consumed, r.ref_end - r.ref_begin) << trial;
    EXPECT_EQ(read_consumed, read.size()) << trial;
    EXPECT_LE(r.edits, 2U) << trial;  // at most the planted edit + slack
  }
}

TEST(GlocalAlign, ScoreMatchesCigarAccounting) {
  const auto window = encode("ACGTACGTACGT");
  const auto read = encode("ACGTTCGT");
  const SwScoring scoring;
  const auto r = glocal_align(window, read, scoring);
  std::int32_t recomputed = 0;
  for (const auto& e : r.cigar) {
    switch (e.op) {
      case CigarOp::kMatch:
        recomputed += scoring.match * static_cast<std::int32_t>(e.length);
        break;
      case CigarOp::kMismatch:
        recomputed += scoring.mismatch * static_cast<std::int32_t>(e.length);
        break;
      case CigarOp::kInsertion:
      case CigarOp::kDeletion:
        recomputed += scoring.gap_extend * static_cast<std::int32_t>(e.length);
        break;
    }
  }
  EXPECT_EQ(r.score, recomputed);
}

}  // namespace
}  // namespace pim::align
