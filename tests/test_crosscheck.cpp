// Cross-validation between the model stack's layers: the functional
// platform's measured op counts per LFM must equal the analytic pipeline
// model's assumptions (before batching), and the chip model's energy must
// decompose into those ops. Catching drift between the layers is what keeps
// the figure-level numbers trustworthy.
#include <gtest/gtest.h>

#include "src/accel/pim_aligner_model.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/platform.h"
#include "src/util/rng.h"

namespace pim {
namespace {

struct Fixture {
  genome::PackedSequence text;
  index::FmIndex fm;
  hw::TimingEnergyModel timing;
  std::unique_ptr<hw::PimAlignerPlatform> platform;

  Fixture() {
    genome::SyntheticGenomeSpec spec;
    spec.length = 60000;
    spec.seed = 14;
    text = genome::generate_reference(spec);
    fm = index::FmIndex::build(text, {.bucket_width = 128});
    platform = std::make_unique<hw::PimAlignerPlatform>(fm, timing);
  }
};

TEST(CrossCheck, PerLfmOpCountsMatchPipelineAssumptions) {
  Fixture f;
  util::Xoshiro256 rng(7);
  f.platform->reset_stats();
  std::uint64_t off_checkpoint = 0;
  constexpr int kLfms = 2000;
  for (int i = 0; i < kLfms; ++i) {
    const std::uint64_t id = rng.bounded(f.fm.num_rows() + 1);
    if (id % 128 != 0) ++off_checkpoint;
    f.platform->lfm(static_cast<genome::Base>(rng.bounded(4)), id);
  }
  const auto stats = f.platform->aggregate_stats();
  ASSERT_EQ(stats.lfm_calls, static_cast<std::uint64_t>(kLfms));

  // Off-checkpoint LFM: 33 triple senses (1 XNOR + 32 adder), 97 writes
  // (32 transpose + 1 carry clear + 64 adder write-backs), 32 reads, 1 DPU.
  // Checkpoint LFM: 32 reads only.
  const std::uint64_t on_checkpoint = kLfms - off_checkpoint -
                                      stats.boundary_marker_hits;
  EXPECT_EQ(stats.ops.triple_senses, off_checkpoint * 33);
  EXPECT_EQ(stats.ops.writes, off_checkpoint * 97);
  EXPECT_EQ(stats.ops.reads, (off_checkpoint + on_checkpoint) * 32);
  EXPECT_EQ(stats.ops.dpu_word_ops, off_checkpoint);
}

TEST(CrossCheck, FunctionalEnergyEqualsOpDecomposition) {
  Fixture f;
  f.platform->reset_stats();
  // One known off-checkpoint LFM.
  f.platform->lfm(genome::Base::C, 300);
  const auto stats = f.platform->aggregate_stats();
  const auto read = f.timing.op_cost(hw::SubArrayOp::kMemRead);
  const auto write = f.timing.op_cost(hw::SubArrayOp::kMemWrite);
  const auto triple = f.timing.op_cost(hw::SubArrayOp::kTripleSense);
  const auto dpu = f.timing.op_cost(hw::SubArrayOp::kDpuWord);
  const double expected = 33 * triple.energy_pj + 97 * write.energy_pj +
                          32 * read.energy_pj + 1 * dpu.energy_pj;
  EXPECT_NEAR(stats.ops.energy_pj, expected, 1e-6);
}

TEST(CrossCheck, PipelineEnergyIsBatchedFunctionalEnergy) {
  // The pipeline model's per-LFM energy equals the functional (unbatched)
  // vertical-op energy divided by the batch factor, plus the per-LFM
  // XNOR/DPU terms and the duplication write. Reconstruct it from op costs
  // and compare against the model's report.
  hw::TimingEnergyModel timing;
  hw::PipelineConfig cfg;  // defaults: batch 16, 2+1 DPU words
  const hw::PipelineModel model(timing, cfg);
  const auto r1 = model.evaluate(1);

  const auto read = timing.op_cost(hw::SubArrayOp::kMemRead);
  const auto write = timing.op_cost(hw::SubArrayOp::kMemWrite);
  const auto triple = timing.op_cost(hw::SubArrayOp::kTripleSense);
  const auto dpu = timing.op_cost(hw::SubArrayOp::kDpuWord);
  const double batch = 16.0;
  const double expected =
      triple.energy_pj + 3.0 * dpu.energy_pj +
      (32.0 * write.energy_pj) / batch +          // transpose
      timing.im_add_cost(32).energy_pj / batch +  // adder incl. carry clear
      (32.0 * read.energy_pj) / batch;            // readout
  EXPECT_NEAR(r1.energy_per_lfm_pj, expected, 1e-9);
}

TEST(CrossCheck, ChipThroughputDecomposes) {
  hw::TimingEnergyModel timing;
  const accel::PimChipModel chip(timing);
  const auto r = chip.evaluate(2);
  // throughput == pipelines * rate / lfm_per_read, by construction; verify
  // the reported pieces are self-consistent.
  const double reconstructed = chip.config().pipelines *
                               r.pipeline.lfm_rate_per_group_hz /
                               r.lfm_per_read;
  EXPECT_NEAR(r.throughput_qps, reconstructed, 1e-6);
  EXPECT_NEAR(r.lfm_per_read,
              2.0 * chip.config().read_length * chip.config().lfm_stage_mix,
              1e-9);
}

TEST(CrossCheck, BusyTimeEqualsLatencyDecomposition) {
  Fixture f;
  f.platform->reset_stats();
  f.platform->lfm(genome::Base::A, 4321);  // off-checkpoint
  const auto stats = f.platform->aggregate_stats();
  const double expected =
      33 * f.timing.op_cost(hw::SubArrayOp::kTripleSense).latency_ns +
      97 * f.timing.op_cost(hw::SubArrayOp::kMemWrite).latency_ns +
      32 * f.timing.op_cost(hw::SubArrayOp::kMemRead).latency_ns +
      1 * f.timing.op_cost(hw::SubArrayOp::kDpuWord).latency_ns;
  EXPECT_NEAR(stats.ops.busy_ns, expected, 1e-6);
}

}  // namespace
}  // namespace pim
