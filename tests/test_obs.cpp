// Observability layer tests (S40):
//   * registry semantics — idempotent registration, multi-thread counter
//     sums, gauge last-write, histogram count/sum/min/max and bucketed
//     percentiles, capacity ceilings, inert default handles;
//   * trace spans — nesting depth, ring-buffer retention, monotone seq;
//   * the JSON-line schema — exact field names/order per metric type; this
//     is the contract tools/check_metrics_schema.py enforces in CI, so a
//     field rename must fail here first;
//   * concurrency (run under TSan in CI) — a scraper thread hammers
//     scrape() while the streaming pipeline runs with the registry
//     installed end to end; at quiescence the registry totals must equal
//     the post-hoc EngineStats/StreamingStats exactly.
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/align/parallel_aligner.h"
#include "src/align/sharded_engine.h"
#include "src/align/streaming_pipeline.h"
#include "src/genome/synthetic_genome.h"
#include "src/obs/reporter.h"
#include "src/obs/trace.h"
#include "src/readsim/read_simulator.h"

namespace pim::obs {
namespace {

TEST(Metrics, RegistrationIsIdempotentAndCounted) {
  MetricsRegistry registry;
  Counter a = registry.counter("x.count");
  Counter b = registry.counter("x.count");  // same slot
  registry.gauge("x.gauge");
  registry.histogram("x.hist");
  EXPECT_EQ(registry.num_metrics(), 3u);

  a.add(2);
  b.add(3);
  const auto snap = registry.scrape();
  EXPECT_EQ(snap.counter_value("x.count"), 5u);
  EXPECT_EQ(snap.counters.size(), 1u);
}

TEST(Metrics, CountersSumAcrossThreads) {
  MetricsRegistry registry;
  Counter counter = registry.counter("t.count");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.scrape().counter_value("t.count"),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, GaugeLastWriteWinsAndReadsBack) {
  MetricsRegistry registry;
  Gauge gauge = registry.gauge("g");
  gauge.set(1.5);
  gauge.set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
  EXPECT_DOUBLE_EQ(registry.scrape().gauge_value("g"), -2.25);
}

TEST(Metrics, HistogramTracksExactMomentsAndBoundedPercentiles) {
  MetricsRegistry registry;
  Histogram hist = registry.histogram("h");
  const std::vector<double> values = {0.5, 1.0, 2.0, 4.0, 100.0};
  double sum = 0.0;
  for (const double v : values) {
    hist.observe(v);
    sum += v;
  }
  const auto snap = registry.scrape();
  const HistogramSample* sample = snap.histogram("h");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, values.size());
  EXPECT_DOUBLE_EQ(sample->sum, sum);
  EXPECT_DOUBLE_EQ(sample->min, 0.5);
  EXPECT_DOUBLE_EQ(sample->max, 100.0);
  EXPECT_DOUBLE_EQ(sample->mean(), sum / values.size());
  // Log-bucketed percentiles: monotone and clamped to the observed range.
  EXPECT_GE(sample->p50, sample->min);
  EXPECT_LE(sample->p50, sample->p90);
  EXPECT_LE(sample->p90, sample->p95);
  EXPECT_LE(sample->p95, sample->p99);
  EXPECT_LE(sample->p99, sample->max);
}

TEST(Metrics, SnapshotPercentileIsQueryableAtAnyQuantile) {
  MetricsRegistry registry;
  Histogram hist = registry.histogram("h");
  // 100 observations in [1, 100]: log-bucketed quantiles are accurate to
  // ~2x within a bucket, so assert shape, bounds, and consistency with the
  // precomputed fields rather than exact values.
  for (int i = 1; i <= 100; ++i) hist.observe(static_cast<double>(i));
  const MetricsSnapshot snap = registry.scrape();
  const HistogramSample* s = snap.histogram("h");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->buckets.size(), MetricsRegistry::kNumBuckets);
  EXPECT_DOUBLE_EQ(s->percentile(0.50), s->p50);
  EXPECT_DOUBLE_EQ(s->percentile(0.90), s->p90);
  EXPECT_DOUBLE_EQ(s->percentile(0.95), s->p95);
  EXPECT_DOUBLE_EQ(s->percentile(0.99), s->p99);
  // Monotone in q, clamped to [min, max] at the extremes (and beyond).
  double prev = s->min;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double v = s->percentile(q);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, s->max);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s->percentile(-1.0), s->percentile(0.0));
  EXPECT_DOUBLE_EQ(s->percentile(2.0), s->percentile(1.0));
  // p95 lands in the right log bucket: between the true p90 and max here.
  EXPECT_GE(s->p95, 50.0);

  // Empty histogram: percentile is 0 at every quantile.
  registry.histogram("empty");
  const MetricsSnapshot snap2 = registry.scrape();
  const HistogramSample* e = snap2.histogram("empty");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->percentile(0.5), 0.0);
}

TEST(Metrics, InertHandlesAreSafeNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram hist;
  counter.add(7);
  gauge.set(3.0);
  hist.observe(1.0);
  EXPECT_FALSE(counter.installed());
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(Metrics, CapacityCeilingThrows) {
  MetricsRegistry registry;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxGauges; ++i) {
    registry.gauge("g." + std::to_string(i));
  }
  EXPECT_THROW(registry.gauge("g.overflow"), std::length_error);
  // Existing names still resolve after the ceiling is hit.
  registry.gauge("g.0").set(1.0);
  EXPECT_DOUBLE_EQ(registry.scrape().gauge_value("g.0"), 1.0);
}

TEST(Trace, SpansNestAndRetainNewestEvents) {
  TraceLog log(4);
  {
    TraceSpan outer(&log, "outer");
    TraceSpan inner(&log, "inner");
  }
  auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner finishes (and records) first, one level deeper.
  EXPECT_EQ(events[0].label_view(), "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].label_view(), "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LT(events[0].seq, events[1].seq);

  // Ring retention: capacity 4 keeps the newest 4 of 6, oldest first.
  for (int i = 0; i < 4; ++i) {
    TraceSpan span(&log, "s" + std::to_string(i));
  }
  events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].label_view(), "s0");
  EXPECT_EQ(events[3].label_view(), "s3");
  EXPECT_EQ(log.total_recorded(), 6u);
}

// The serialized schema IS the interface downstream tooling scripts parse.
// Renaming a field must break this test (and tools/check_metrics_schema.py)
// in the same PR that updates the consumers.
TEST(Reporter, JsonLineSchemaIsStable) {
  MetricsRegistry registry;
  registry.counter("c").add(42);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(2.0);

  std::ostringstream out;
  write_json_lines(registry.scrape(), out);
  std::istringstream lines(out.str());
  std::string counter_line, gauge_line, hist_line;
  ASSERT_TRUE(std::getline(lines, counter_line));
  ASSERT_TRUE(std::getline(lines, gauge_line));
  ASSERT_TRUE(std::getline(lines, hist_line));

  EXPECT_EQ(counter_line, R"({"metric":"c","type":"counter","value":42})");
  EXPECT_EQ(gauge_line, R"({"metric":"g","type":"gauge","value":1.5})");
  EXPECT_EQ(hist_line,
            R"({"metric":"h","type":"histogram","count":1,"sum":2,"min":2,)"
            R"("max":2,"mean":2,"p50":2,"p90":2,"p95":2,"p99":2})");

  TraceLog log(4);
  log.record("stage", 10.0, 2.5, 1);
  std::ostringstream trace_out;
  write_json_lines(log.snapshot(), trace_out);
  const std::string trace_line = trace_out.str();
  EXPECT_NE(trace_line.find(R"("trace":"stage")"), std::string::npos);
  EXPECT_NE(trace_line.find(R"("seq":0)"), std::string::npos);
  EXPECT_NE(trace_line.find(R"("depth":1)"), std::string::npos);
  EXPECT_NE(trace_line.find(R"("start_ms":10)"), std::string::npos);
  EXPECT_NE(trace_line.find(R"("duration_ms":2.5)"), std::string::npos);
}

// User-supplied strings (shard names, trace labels) must not be able to
// corrupt the JSON-line stream: quotes and backslashes are escaped, control
// characters become \u00XX (the old code dropped them, silently merging
// distinct names), and non-finite numbers — which have no JSON literal —
// are mapped to 0 instead of emitting "inf"/"nan".
TEST(Reporter, JsonLinesEscapeNamesAndValues) {
  EXPECT_EQ(json_escape(R"(shard "A"\1)"), R"(shard \"A\"\\1)");
  EXPECT_EQ(json_escape("a\nb\tc\x01"), "a\\nb\\tc\\u0001");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(std::nan("")), "0");

  MetricsRegistry registry;
  registry.counter("sh\"ard\\1.reads").add(1);
  registry.gauge("g").set(std::numeric_limits<double>::infinity());
  std::ostringstream out;
  write_json_lines(registry.scrape(), out);
  std::istringstream lines(out.str());
  std::string counter_line, gauge_line;
  ASSERT_TRUE(std::getline(lines, counter_line));
  ASSERT_TRUE(std::getline(lines, gauge_line));
  EXPECT_EQ(counter_line,
            R"({"metric":"sh\"ard\\1.reads","type":"counter","value":1})");
  EXPECT_EQ(gauge_line, R"({"metric":"g","type":"gauge","value":0})");

  TraceLog log(2);
  log.record("la\"bel", 1.0, 2.0, 0);
  std::ostringstream trace_out;
  write_json_lines(log.snapshot(), trace_out);
  EXPECT_NE(trace_out.str().find(R"("trace":"la\"bel")"), std::string::npos);
}

TEST(Reporter, TableRendersEveryMetric) {
  MetricsRegistry registry;
  registry.counter("my.counter").add(1);
  registry.gauge("my.gauge").set(2.0);
  registry.histogram("my.hist").observe(3.0);
  const std::string table = render_table(registry.scrape());
  EXPECT_NE(table.find("my.counter"), std::string::npos);
  EXPECT_NE(table.find("my.gauge"), std::string::npos);
  EXPECT_NE(table.find("my.hist"), std::string::npos);
}

TEST(Reporter, PeriodicReporterEmitsAndStops) {
  MetricsRegistry registry;
  Counter counter = registry.counter("p.count");
  std::ostringstream out;
  {
    PeriodicReporter reporter(registry, out, /*interval_ms=*/5);
    counter.add(3);
    reporter.stop();
    EXPECT_GE(reporter.ticks(), 1u);  // at least the final scrape
  }
  EXPECT_NE(out.str().find(R"("metric":"p.count")"), std::string::npos);
  EXPECT_NE(out.str().find(R"("metric":"obs.ticks")"), std::string::npos);
}

// --- Concurrency: live scrape vs post-hoc EngineStats ----------------------

struct StreamFixture {
  genome::PackedSequence reference;
  index::FmIndex fm;
  std::string fastq_text;
  align::AlignerOptions options;

  StreamFixture() {
    genome::SyntheticGenomeSpec gspec;
    gspec.length = 50000;
    gspec.seed = 11;
    reference = genome::generate_reference(gspec);
    fm = index::FmIndex::build(reference, {.bucket_width = 64});

    readsim::ReadSimSpec rspec;
    rspec.read_length = 64;
    rspec.num_reads = 400;
    rspec.sequencing_error_rate = 0.01;
    rspec.seed = 31;
    const auto records =
        readsim::to_fastq(readsim::ReadSimulator(rspec).generate(reference));
    std::ostringstream fq;
    genome::write_fastq(fq, records);
    fastq_text = fq.str();
    options.inexact.max_diffs = 2;
  }
};

TEST(ObsConcurrency, ScrapeDuringStreamingMatchesPostHocStats) {
  StreamFixture f;
  const align::SoftwareEngine engine(f.fm, f.options);

  MetricsRegistry registry;
  TraceLog trace(512);
  align::StreamingOptions sopts;
  sopts.batch_reads = 64;  // several generations
  sopts.parallel.num_threads = 2;
  sopts.parallel.chunk_size = 16;
  sopts.metrics = &registry;
  sopts.trace = &trace;

  // Scraper thread: concurrent scrape() must be safe against every
  // instrumented writer (producer, consumer, scheduler workers) and only
  // ever observe monotone counter values.
  std::atomic<bool> stop{false};
  std::uint64_t last_reads = 0;
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = registry.scrape();
      const std::uint64_t reads = snap.counter_value("stream.reads");
      EXPECT_GE(reads, last_reads);  // counters are monotone mid-run
      last_reads = reads;
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::istringstream in(f.fastq_text);
  genome::FastqStreamReader reader(in);
  std::size_t sink_reads = 0;
  const align::StreamingStats stats =
      align::StreamingPipeline(engine, sopts)
          .run(reader, [&](const align::BatchResultChunk& chunk) {
            sink_reads += chunk.end - chunk.begin;
          });
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);

  // Quiescent totals are exact: the registry and the post-hoc stats are two
  // views of the same execution.
  const auto snap = registry.scrape();
  EXPECT_EQ(snap.counter_value("stream.reads"), stats.reads);
  EXPECT_EQ(snap.counter_value("stream.batches"), stats.batches);
  EXPECT_EQ(snap.counter_value("stream.chunks"), stats.chunks);
  EXPECT_EQ(stats.engine.reads_total, stats.reads);
  EXPECT_EQ(sink_reads, stats.reads);
  EXPECT_EQ(snap.counter_value("sched.chunks"), stats.engine.chunks);

  const HistogramSample* align_ms = snap.histogram("stream.consumer_align_ms");
  ASSERT_NE(align_ms, nullptr);
  EXPECT_EQ(align_ms->count, stats.batches);
  const HistogramSample* fill_ms = snap.histogram("stream.producer_fill_ms");
  ASSERT_NE(fill_ms, nullptr);
  EXPECT_EQ(fill_ms->count, stats.batches);
  const HistogramSample* latency = snap.histogram("stream.chunk_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, stats.chunks);

  // Both stage spans landed for every generation.
  std::uint64_t fills = 0, aligns = 0;
  for (const auto& event : trace.snapshot()) {
    if (event.label_view() == "stream.fill") ++fills;
    if (event.label_view() == "stream.align") ++aligns;
  }
  EXPECT_EQ(fills, stats.batches);
  EXPECT_EQ(aligns, stats.batches);
}

TEST(ObsConcurrency, ShardedSeriesMatchShardStats) {
  StreamFixture f;
  MetricsRegistry registry;
  std::vector<std::unique_ptr<align::AlignmentEngine>> shards;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(
        std::make_unique<align::SoftwareEngine>(f.fm, f.options));
  }
  align::ShardedOptions sharded_opts;
  sharded_opts.rebalance = true;
  sharded_opts.metrics = &registry;
  const align::ShardedEngine engine(std::move(shards), sharded_opts);

  std::istringstream in(f.fastq_text);
  const auto records = genome::read_fastq(in);
  const align::ReadBatch batch = align::ReadBatch::from_fastq(records);
  align::BatchResult out;
  engine.align_batch(batch, out);

  // The published series and the programmatic shard_stats() are the same
  // measurement; the rebalanced weights consumed the registry values.
  const auto snap = registry.scrape();
  for (const auto& s : engine.shard_stats()) {
    const std::string prefix = "shard." + std::to_string(s.shard) + ".";
    EXPECT_EQ(snap.counter_value(prefix + "reads"), s.reads);
    EXPECT_EQ(snap.counter_value(prefix + "hits"), s.hits);
    EXPECT_DOUBLE_EQ(snap.gauge_value(prefix + "wall_ms"), s.wall_ms);
    EXPECT_DOUBLE_EQ(snap.gauge_value(prefix + "weight"),
                     engine.shard_weights()[s.shard]);
  }
}

}  // namespace
}  // namespace pim::obs
