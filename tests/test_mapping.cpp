#include "src/pim/mapping.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::hw {
namespace {

using genome::Base;

TEST(ZoneLayout, DefaultFitsDefaultArray) {
  const TimingEnergyModel model;
  ZoneLayout layout;
  EXPECT_NO_THROW(layout.validate(model));
  EXPECT_EQ(layout.total_rows(), 512U);
  EXPECT_EQ(layout.bps_per_row(256), 128U);
  EXPECT_EQ(layout.bps_per_tile(256), 32768U);
}

TEST(ZoneLayout, ZoneOffsetsAreContiguous) {
  ZoneLayout layout;
  EXPECT_EQ(layout.bwt_zone_begin(), 0U);
  EXPECT_EQ(layout.cref_zone_begin(), 256U);
  EXPECT_EQ(layout.mt_zone_begin(), 260U);
  EXPECT_EQ(layout.reserved_zone_begin(), 388U);
}

TEST(ZoneLayout, ValidationCatchesBadGeometry) {
  const TimingEnergyModel model;
  ZoneLayout bad;
  bad.bwt_rows = 100;  // zones no longer sum to 512
  EXPECT_THROW(bad.validate(model), std::invalid_argument);

  ZoneLayout small_mt;
  small_mt.mt_rows = 64;
  small_mt.reserved_rows = 188;  // sums ok, but MT can't hold 4 banks
  EXPECT_THROW(small_mt.validate(model), std::invalid_argument);

  ZoneLayout small_reserved;
  small_reserved.mt_rows = 188;
  small_reserved.reserved_rows = 64;  // < 2*32+1
  EXPECT_THROW(small_reserved.validate(model), std::invalid_argument);
}

struct Fixture {
  genome::PackedSequence text;
  index::FmIndex fm;
  TimingEnergyModel model;
  ZoneLayout layout;

  explicit Fixture(std::size_t length, std::uint64_t seed = 1) {
    genome::SyntheticGenomeSpec spec;
    spec.length = length;
    spec.seed = seed;
    text = genome::generate_reference(spec);
    fm = index::FmIndex::build(text, {.bucket_width = 128});
  }
};

TEST(PimTile, RejectsMismatchedBucketWidth) {
  Fixture f(2000);
  const auto fm_bad =
      index::FmIndex::build(f.text, {.bucket_width = 64});
  EXPECT_THROW(PimTile(f.model, f.layout, fm_bad, 0), std::invalid_argument);
}

TEST(PimTile, RejectsUnalignedBase) {
  Fixture f(2000);
  EXPECT_THROW(PimTile(f.model, f.layout, f.fm, 100), std::invalid_argument);
  EXPECT_THROW(PimTile(f.model, f.layout, f.fm, 65536), std::invalid_argument);
}

TEST(PimTile, SizeCoversPartialTail) {
  Fixture f(2000);
  PimTile tile(f.model, f.layout, f.fm, 0);
  EXPECT_EQ(tile.base(), 0U);
  EXPECT_EQ(tile.size(), 2001U);  // n + 1 BWT rows
  EXPECT_EQ(tile.capacity(), 32768U);
}

TEST(PimTile, MarkersStoredVerticallyMatchSoftware) {
  Fixture f(5000);
  PimTile tile(f.model, f.layout, f.fm, 0);
  const auto& markers = f.fm.markers();
  const std::uint32_t checkpoints =
      static_cast<std::uint32_t>(f.fm.num_rows() / 128 + 1);
  for (std::uint32_t k = 0; k < checkpoints; ++k) {
    for (const auto nt : genome::kAllBases) {
      EXPECT_EQ(tile.peek_marker(nt, k), markers.marker(nt, k))
          << "k=" << k << " nt=" << genome::to_char(nt);
    }
  }
}

TEST(PimTile, CountMatchMatchesSoftwareResidual) {
  Fixture f(4000, 3);
  PimTile tile(f.model, f.layout, f.fm, 0);
  const index::SampledOccTable sampled(f.fm.bwt(), 128);
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t id = 1 + rng.bounded(f.fm.num_rows() - 1);
    if (id % 128 == 0) continue;
    const auto nt = static_cast<Base>(rng.bounded(4));
    EXPECT_EQ(tile.count_match(nt, id),
              sampled.count_match(f.fm.bwt(), nt, id))
        << "id=" << id;
  }
}

TEST(PimTile, CountMatchSentinelCorrection) {
  // Pick ids straddling the primary row; the dummy 'A' stored there must
  // never be counted.
  Fixture f(3000, 7);
  PimTile tile(f.model, f.layout, f.fm, 0);
  const std::uint64_t primary = f.fm.bwt().primary;
  const index::SampledOccTable sampled(f.fm.bwt(), 128);
  for (std::uint64_t id = primary + 1;
       id <= std::min<std::uint64_t>(primary + 3, f.fm.num_rows()); ++id) {
    if (id % 128 == 0) continue;
    EXPECT_EQ(tile.count_match(Base::A, id),
              sampled.count_match(f.fm.bwt(), Base::A, id))
        << "id=" << id;
  }
}

TEST(PimTile, CountMatchRejectsOutOfRange) {
  Fixture f(2000);
  PimTile tile(f.model, f.layout, f.fm, 0);
  EXPECT_THROW(tile.count_match(Base::A, 0), std::invalid_argument);
  EXPECT_THROW(tile.count_match(Base::A, 128), std::invalid_argument);  // residual 0
  EXPECT_THROW(tile.count_match(Base::A, 40000), std::invalid_argument);
}

// The central hardware-equals-software identity, swept over random ids.
TEST(PimTile, LfmBitIdenticalToSoftware) {
  Fixture f(6000, 11);
  PimTile tile(f.model, f.layout, f.fm, 0);
  util::Xoshiro256 rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t id = rng.bounded(f.fm.num_rows() + 1);
    const auto nt = static_cast<Base>(rng.bounded(4));
    EXPECT_EQ(tile.lfm(nt, id), f.fm.lfm(nt, id))
        << "id=" << id << " nt=" << genome::to_char(nt);
  }
}

TEST(PimTile, LfmOnCheckpointUsesMarkerOnly) {
  Fixture f(4000, 2);
  PimTile tile(f.model, f.layout, f.fm, 0);
  tile.reset_stats();
  const std::uint64_t got = tile.lfm(Base::C, 256);
  EXPECT_EQ(got, f.fm.lfm(Base::C, 256));
  // Checkpoint-aligned LFM is pure MEM: no triple senses, no writes.
  EXPECT_EQ(tile.stats().triple_senses, 0U);
  EXPECT_EQ(tile.stats().writes, 0U);
  EXPECT_EQ(tile.stats().reads, 32U);
}

TEST(PimTile, LfmOffCheckpointUsesFullPath) {
  Fixture f(4000, 2);
  PimTile tile(f.model, f.layout, f.fm, 0);
  tile.reset_stats();
  tile.lfm(Base::C, 300);
  // XNOR (1 triple) + add (32 triples) and the transpose/add writes.
  EXPECT_EQ(tile.stats().triple_senses, 33U);
  EXPECT_GT(tile.stats().writes, 64U);
  EXPECT_EQ(tile.stats().dpu_word_ops, 1U);
}

TEST(PimTile, SecondTileHandlesItsRange) {
  Fixture f(50000, 17);  // spans 2 tiles (32768 capacity)
  PimTile tile0(f.model, f.layout, f.fm, 0);
  PimTile tile1(f.model, f.layout, f.fm, 32768);
  EXPECT_EQ(tile1.base(), 32768U);
  EXPECT_EQ(tile1.size(), f.fm.num_rows() - 32768);
  util::Xoshiro256 rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t id = 32768 + rng.bounded(f.fm.num_rows() - 32768 + 1);
    const auto nt = static_cast<Base>(rng.bounded(4));
    EXPECT_EQ(tile1.lfm(nt, id), f.fm.lfm(nt, id)) << id;
  }
  EXPECT_THROW(tile1.lfm(Base::A, 100), std::invalid_argument);
}

TEST(PimTile, LoadStatsSeparateFromRuntime) {
  Fixture f(2000);
  PimTile tile(f.model, f.layout, f.fm, 0);
  EXPECT_GT(tile.load_stats().writes, 0U);
  EXPECT_EQ(tile.stats().writes, 0U);  // runtime stats start clean
}

}  // namespace
}  // namespace pim::hw
