#include "src/align/inexact_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/align/naive_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

index::FmIndex small_index(const std::string& s, std::uint32_t bucket = 4) {
  return index::FmIndex::build(PackedSequence(s), {.bucket_width = bucket});
}

TEST(InexactSearch, ExactMatchFoundWithZeroBudget) {
  const auto fm = small_index("TGCTA", 2);
  InexactOptions opt;
  opt.max_diffs = 0;
  const auto result = inexact_search(fm, genome::encode("CTA"), opt);
  EXPECT_TRUE(result.found());
  EXPECT_EQ(result.best_diffs(), 0U);
  EXPECT_EQ(result.total_occurrences(), 1U);
}

TEST(InexactSearch, OneSubstitutionFound) {
  const auto fm = small_index("TGCTA", 2);
  InexactOptions opt;
  opt.max_diffs = 1;
  // CTT differs from the CTA substring by one substitution.
  const auto result = inexact_search(fm, genome::encode("CTT"), opt);
  EXPECT_TRUE(result.found());
  EXPECT_EQ(result.best_diffs(), 1U);
  const auto positions = inexact_locate(fm, genome::encode("CTT"), opt);
  ASSERT_FALSE(positions.empty());
  EXPECT_EQ(positions[0].first, 2U);
  EXPECT_EQ(positions[0].second, 1U);
}

TEST(InexactSearch, BudgetZeroRejectsMismatch) {
  const auto fm = small_index("TGCTA", 2);
  InexactOptions opt;
  opt.max_diffs = 0;
  EXPECT_FALSE(inexact_search(fm, genome::encode("CTT"), opt).found());
}

TEST(InexactSearch, EmptyReadReturnsWholeInterval) {
  const auto fm = small_index("ACGT");
  const auto result = inexact_search(fm, {}, {});
  ASSERT_EQ(result.hits.size(), 1U);
  EXPECT_EQ(result.hits[0].interval, fm.whole_interval());
}

TEST(InexactSearch, PruningDoesNotChangeResults) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 1500;
  spec.seed = 51;
  spec.repeat_fraction = 0.4;
  const PackedSequence text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 32});
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t len = 12 + rng.bounded(12);
    const std::size_t start = rng.bounded(text.size() - len);
    auto read = text.slice(start, start + len);
    // Mutate up to 2 positions.
    for (int m = 0; m < 2; ++m) {
      const std::size_t pos = rng.bounded(read.size());
      read[pos] = static_cast<Base>(rng.bounded(4));
    }
    for (const auto mode :
         {EditMode::kSubstitutionsOnly, EditMode::kFullEdit}) {
      InexactOptions with, without;
      with.max_diffs = without.max_diffs = 2;
      with.mode = without.mode = mode;
      with.use_lower_bound_pruning = true;
      without.use_lower_bound_pruning = false;
      const auto a = inexact_locate(fm, read, with);
      const auto b = inexact_locate(fm, read, without);
      EXPECT_EQ(a, b) << "trial=" << trial;
      // Pruning must not *increase* explored states.
      const auto ra = inexact_search(fm, read, with);
      const auto rb = inexact_search(fm, read, without);
      EXPECT_LE(ra.states_explored, rb.states_explored);
    }
  }
}

TEST(InexactSearch, StateBudgetTruncates) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 2000;
  spec.seed = 4;
  const PackedSequence text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 32});
  InexactOptions opt;
  opt.max_diffs = 2;
  opt.max_states = 10;
  std::vector<Base> read;
  for (int i = 0; i < 20; ++i) read.push_back(static_cast<Base>(i % 4));
  const auto result = inexact_search(fm, read, opt);
  EXPECT_TRUE(result.truncated);
  // The budget is checked at state entry, so the overshoot is bounded by
  // the branching factor of one expansion (4 bases x {del,match} + ins).
  EXPECT_LE(result.states_explored, 10U + 9U);
}

TEST(InexactSearch, LowerBoundDIsMonotoneAndBounded) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 800;
  spec.seed = 12;
  const PackedSequence text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 32});
  util::Xoshiro256 rng(13);
  std::vector<Base> read;
  for (int i = 0; i < 30; ++i) read.push_back(static_cast<Base>(rng.bounded(4)));
  const auto d = compute_lower_bound_d(fm, read);
  ASSERT_EQ(d.size(), read.size());
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_GE(d[i], d[i - 1]);
    EXPECT_LE(d[i] - d[i - 1], 1U);
  }
}

TEST(InexactSearch, DIsZeroForPlantedRead) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 800;
  spec.seed = 14;
  const PackedSequence text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 32});
  const auto read = text.slice(100, 130);
  const auto d = compute_lower_bound_d(fm, read);
  for (const auto v : d) EXPECT_EQ(v, 0U);
}

// Property: substitutions-only inexact search equals the Hamming oracle.
class HammingEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HammingEquivalence, MatchesBruteForce) {
  const std::uint32_t z = GetParam();
  genome::SyntheticGenomeSpec spec;
  spec.length = 1200;
  spec.seed = 100 + z;
  spec.repeat_fraction = 0.5;
  spec.repeat_unit_length = 40;
  const PackedSequence text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 32});
  util::Xoshiro256 rng(200 + z);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t len = 10 + rng.bounded(8);
    std::vector<Base> read;
    if (trial % 3 != 2) {
      const std::size_t start = rng.bounded(text.size() - len);
      read = text.slice(start, start + len);
      for (std::uint32_t m = 0; m < z; ++m) {
        read[rng.bounded(read.size())] = static_cast<Base>(rng.bounded(4));
      }
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        read.push_back(static_cast<Base>(rng.bounded(4)));
      }
    }
    InexactOptions opt;
    opt.max_diffs = z;
    opt.mode = EditMode::kSubstitutionsOnly;
    const auto got = inexact_locate(fm, read, opt);
    const auto want = naive_hamming_positions(text, read, z);
    EXPECT_EQ(got, want) << "z=" << z << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, HammingEquivalence,
                         ::testing::Values(0U, 1U, 2U, 3U));

// Property: full-edit inexact search finds the same positions as the edit-
// distance oracle (position set equality; per-position distance equality).
TEST(InexactSearch, FullEditMatchesEditOracle) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 400;
  spec.seed = 61;
  spec.repeat_fraction = 0.3;
  const PackedSequence text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 16});
  util::Xoshiro256 rng(62);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t len = 12 + rng.bounded(6);
    const std::size_t start = rng.bounded(text.size() - len - 4);
    auto read = text.slice(start, start + len);
    // Apply one random edit so both paths exercise non-trivial matches.
    const auto kind = rng.bounded(3);
    if (kind == 0) {
      read[rng.bounded(read.size())] = static_cast<Base>(rng.bounded(4));
    } else if (kind == 1) {
      read.insert(read.begin() + static_cast<long>(rng.bounded(read.size())),
                  static_cast<Base>(rng.bounded(4)));
    } else {
      read.erase(read.begin() + static_cast<long>(rng.bounded(read.size())));
    }
    InexactOptions opt;
    opt.max_diffs = 2;
    opt.mode = EditMode::kFullEdit;
    const auto got = inexact_locate(fm, read, opt);
    const auto want = naive_edit_positions(text, read, 2);
    EXPECT_EQ(got, want) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace pim::align
