#include "src/pim/sot_mram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pim::hw {
namespace {

TEST(SotMram, NominalResistances) {
  SotMramParams p;  // defaults: RA=18 ohm.um^2, A=6e-3 um^2, TMR=1
  const SotMramModel model(p);
  EXPECT_NEAR(model.nominal().r_p_ohm, 3000.0, 1.0);
  EXPECT_NEAR(model.nominal().r_ap_ohm, 6000.0, 2.0);
}

TEST(SotMram, InvalidParamsThrow) {
  SotMramParams p;
  p.mtj_area_um2 = 0.0;
  EXPECT_THROW(SotMramModel{p}, std::invalid_argument);
  SotMramParams q;
  q.ra_product_ohm_um2 = -1.0;
  EXPECT_THROW(SotMramModel{q}, std::invalid_argument);
}

TEST(SotMram, ThickerBarrierRaisesResistance) {
  SotMramParams thin;
  thin.tox_nm = 1.5;
  SotMramParams thick = thin;
  thick.tox_nm = 2.0;
  const SotMramModel a(thin), b(thick);
  EXPECT_GT(b.nominal().r_p_ohm, a.nominal().r_p_ohm * 5.0);
  // TMR ratio unchanged by thickness.
  EXPECT_NEAR(b.nominal().r_ap_ohm / b.nominal().r_p_ohm,
              a.nominal().r_ap_ohm / a.nominal().r_p_ohm, 1e-9);
}

TEST(SotMram, EquivalentResistanceMonotoneInApCount) {
  const SotMramModel model;
  std::vector<CellResistances> cells(3, model.nominal());
  const double r0 = model.equivalent_resistance(cells, 0b000);
  const double r1 = model.equivalent_resistance(cells, 0b001);
  const double r2 = model.equivalent_resistance(cells, 0b011);
  const double r3 = model.equivalent_resistance(cells, 0b111);
  EXPECT_LT(r0, r1);
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
}

TEST(SotMram, EquivalentResistanceSymmetricInMask) {
  // Same AP count, different cells -> same Req for identical cells.
  const SotMramModel model;
  std::vector<CellResistances> cells(3, model.nominal());
  EXPECT_DOUBLE_EQ(model.equivalent_resistance(cells, 0b001),
                   model.equivalent_resistance(cells, 0b100));
}

TEST(SotMram, EmptyCellsThrow) {
  const SotMramModel model;
  EXPECT_THROW(model.equivalent_resistance({}, 0), std::invalid_argument);
}

TEST(SotMram, NominalVsenseOrdering) {
  const SotMramModel model;
  // Fan-in 1: P vs AP clearly separated (the memory-read margin).
  const double v_p = model.nominal_v_sense(1, 0);
  const double v_ap = model.nominal_v_sense(1, 1);
  EXPECT_GT(v_ap, v_p * 1.5);
  // Fan-in 3 levels compress (the Fig. 5b message).
  const double gap1 = v_ap - v_p;
  const double gap3 = model.nominal_v_sense(3, 3) - model.nominal_v_sense(3, 2);
  EXPECT_LT(gap3, gap1 / 3.0);
  EXPECT_THROW(model.nominal_v_sense(0, 0), std::invalid_argument);
  EXPECT_THROW(model.nominal_v_sense(2, 3), std::invalid_argument);
}

TEST(SotMram, SampleCellRespectsSigmas) {
  const SotMramModel model;
  util::Xoshiro256 rng(3);
  util::RunningStats rp, tmr;
  for (int i = 0; i < 20000; ++i) {
    const CellResistances c = model.sample_cell(rng);
    rp.add(c.r_p_ohm);
    tmr.add(c.r_ap_ohm / c.r_p_ohm - 1.0);
  }
  EXPECT_NEAR(rp.mean(), model.nominal().r_p_ohm, 20.0);
  EXPECT_NEAR(rp.stddev() / rp.mean(), 0.02, 0.003);  // sigma_RA = 2%
  EXPECT_NEAR(tmr.mean(), 1.0, 0.01);
  EXPECT_NEAR(tmr.stddev(), 0.05, 0.005);  // sigma_TMR = 5%
}

TEST(MonteCarloSenseMargin, MarginsShrinkWithFanIn) {
  const SotMramModel model;
  const auto m1 = monte_carlo_sense_margin(model, 1, 3000, 1);
  const auto m2 = monte_carlo_sense_margin(model, 2, 3000, 2);
  const auto m3 = monte_carlo_sense_margin(model, 3, 3000, 3);
  EXPECT_GT(m1.worst_margin_mv, m2.worst_margin_mv);
  EXPECT_GT(m2.worst_margin_mv, m3.worst_margin_mv);
  // All margins positive: the design remains resolvable at fan-in 3 —
  // exactly why the paper limits sensing to three cells.
  EXPECT_GT(m3.worst_margin_mv, 0.0);
  // Distribution count: fan_in + 1 AP-count combinations each.
  EXPECT_EQ(m1.distributions.size(), 2U);
  EXPECT_EQ(m2.distributions.size(), 3U);
  EXPECT_EQ(m3.distributions.size(), 4U);
}

TEST(MonteCarloSenseMargin, PaperScaleMargins) {
  // Fig. 5b reports 43.31 / 14.62 / 5.82 / 4.28 mV; our compact model must
  // land in the same regime: tens of mV at fan-in 1, a few mV at fan-in 3.
  const SotMramModel model;
  const auto m1 = monte_carlo_sense_margin(model, 1, 10000, 7);
  const auto m3 = monte_carlo_sense_margin(model, 3, 10000, 9);
  EXPECT_GT(m1.worst_margin_mv, 25.0);
  EXPECT_LT(m1.worst_margin_mv, 70.0);
  EXPECT_GT(m3.worst_margin_mv, 0.5);
  EXPECT_LT(m3.worst_margin_mv, 10.0);
}

TEST(MonteCarloSenseMargin, ThickerToxWidensMaj3Margin) {
  // The paper's reliability fix: tox 1.5 -> 2.0 nm adds ~45 mV of margin.
  SotMramParams thin;
  SotMramParams thick = thin;
  thick.tox_nm = 2.0;
  const auto m_thin = monte_carlo_sense_margin(SotMramModel(thin), 3, 5000, 4);
  const auto m_thick =
      monte_carlo_sense_margin(SotMramModel(thick), 3, 5000, 4);
  const double gain = m_thick.worst_margin_mv - m_thin.worst_margin_mv;
  EXPECT_GT(gain, 10.0);
  EXPECT_LT(gain, 120.0);
}

TEST(MonteCarloSenseMargin, InvalidFanInThrows) {
  const SotMramModel model;
  EXPECT_THROW(monte_carlo_sense_margin(model, 0, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(monte_carlo_sense_margin(model, 32, 10, 1),
               std::invalid_argument);
}

TEST(MonteCarloSenseMargin, DeterministicInSeed) {
  const SotMramModel model;
  const auto a = monte_carlo_sense_margin(model, 2, 1000, 5);
  const auto b = monte_carlo_sense_margin(model, 2, 1000, 5);
  EXPECT_DOUBLE_EQ(a.worst_margin_mv, b.worst_margin_mv);
}

}  // namespace
}  // namespace pim::hw
