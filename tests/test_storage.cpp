#include "src/util/storage.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/genome/packed_sequence.h"
#include "src/util/bit_vector.h"

namespace pim::util {
namespace {

TEST(Storage, DefaultIsEmptyOwned) {
  Storage<std::uint64_t> s;
  EXPECT_TRUE(s.owned());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0U);
  EXPECT_EQ(s.owned_bytes(), 0U);
}

TEST(Storage, OwnedAdoptsVector) {
  std::vector<std::uint32_t> values = {1, 2, 3};
  const auto* before = values.data();
  Storage<std::uint32_t> s(std::move(values));
  EXPECT_TRUE(s.owned());
  EXPECT_EQ(s.size(), 3U);
  EXPECT_EQ(s.data(), before);  // moved, not copied
  EXPECT_EQ(s[1], 2U);
  EXPECT_GE(s.owned_bytes(), 3 * sizeof(std::uint32_t));
}

TEST(Storage, BorrowedViewsWithoutCopying) {
  const std::uint64_t region[4] = {10, 20, 30, 40};
  auto s = Storage<std::uint64_t>::borrowed(region, 4);
  EXPECT_FALSE(s.owned());
  EXPECT_EQ(s.data(), region);
  EXPECT_EQ(s.size(), 4U);
  EXPECT_EQ(s[3], 40U);
  EXPECT_EQ(s.owned_bytes(), 0U);  // bytes belong to the region
  EXPECT_EQ(s.span().size(), 4U);
}

TEST(Storage, EnsureOwnedCopiesOutOfRegion) {
  std::uint32_t region[3] = {7, 8, 9};
  auto s = Storage<std::uint32_t>::borrowed(region, 3);
  s.ensure_owned();
  EXPECT_TRUE(s.owned());
  EXPECT_NE(s.data(), region);
  region[0] = 999;  // mutating the region no longer affects the storage
  EXPECT_EQ(s[0], 7U);
}

TEST(Storage, VecIsCopyOnWrite) {
  const std::uint32_t region[2] = {1, 2};
  auto s = Storage<std::uint32_t>::borrowed(region, 2);
  s.vec().push_back(3);
  EXPECT_TRUE(s.owned());
  EXPECT_EQ(s.size(), 3U);
  EXPECT_EQ(s[0], 1U);
  EXPECT_EQ(s[2], 3U);
}

TEST(Storage, EqualityComparesContentAcrossModes) {
  const std::uint64_t region[2] = {5, 6};
  auto borrowed = Storage<std::uint64_t>::borrowed(region, 2);
  Storage<std::uint64_t> owned(std::vector<std::uint64_t>{5, 6});
  Storage<std::uint64_t> different(std::vector<std::uint64_t>{5, 7});
  EXPECT_TRUE(borrowed == owned);
  EXPECT_FALSE(borrowed == different);
  EXPECT_FALSE(owned == Storage<std::uint64_t>());
}

// --- from_words adopters: the loaders' entry points into BitVector and
// PackedSequence, in both modes, with tail-bit validation. ---

TEST(FromWords, BitVectorOwnedRoundTrip) {
  BitVector bits(130);
  bits.set(0, true);
  bits.set(129, true);
  std::vector<std::uint64_t> words(bits.words().begin(), bits.words().end());
  const auto adopted = BitVector::from_words(std::move(words), 130);
  EXPECT_EQ(adopted.size(), 130U);
  EXPECT_TRUE(adopted.get(0));
  EXPECT_TRUE(adopted.get(129));
  EXPECT_EQ(adopted.popcount(), 2U);
}

TEST(FromWords, BitVectorWordCountMismatchThrows) {
  EXPECT_THROW(
      BitVector::from_words(std::vector<std::uint64_t>{1, 2, 3}, 64),
      std::invalid_argument);
  EXPECT_THROW(BitVector::from_words(std::vector<std::uint64_t>{}, 1),
               std::invalid_argument);
}

TEST(FromWords, BitVectorNonzeroTailBitsThrow) {
  // 65 bits occupy two words; any bit above index 0 of the second word is
  // past the end.
  EXPECT_THROW(
      BitVector::from_words(std::vector<std::uint64_t>{0, 0b10}, 65),
      std::invalid_argument);
  EXPECT_NO_THROW(
      BitVector::from_words(std::vector<std::uint64_t>{0, 0b1}, 65));
}

TEST(FromWords, PackedSequenceBothModes) {
  const genome::PackedSequence seq("ACGTACGTACGTACGTACGTACGTACGTACGTACG");
  std::vector<std::uint64_t> words(seq.words().begin(), seq.words().end());
  const auto owned =
      genome::PackedSequence::from_words(words, seq.size());
  EXPECT_TRUE(owned == seq);
  const auto borrowed = genome::PackedSequence::from_words(
      util::Storage<std::uint64_t>::borrowed(seq.words().data(),
                                             seq.words().size()),
      seq.size());
  EXPECT_TRUE(borrowed == seq);
  EXPECT_EQ(borrowed.words().data(), seq.words().data());
}

TEST(FromWords, PackedSequenceTailBasesValidated) {
  // 33 bases use 66 bits of two words; base slot 33 (bits 66..67) must be 0.
  std::vector<std::uint64_t> words = {0, 0b100};
  EXPECT_THROW(genome::PackedSequence::from_words(words, 33),
               std::invalid_argument);
  EXPECT_THROW(
      genome::PackedSequence::from_words(std::vector<std::uint64_t>{1}, 33),
      std::invalid_argument);
}

}  // namespace
}  // namespace pim::util
