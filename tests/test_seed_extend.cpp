#include "src/align/seed_extend.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/align/inexact_search.h"
#include "src/pim/platform.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

struct Fixture {
  PackedSequence reference;
  index::FmIndex fm;
  explicit Fixture(std::size_t length = 200000, std::uint64_t seed = 9) {
    genome::SyntheticGenomeSpec spec;
    spec.length = length;
    spec.seed = seed;
    reference = genome::generate_reference(spec);
    fm = index::FmIndex::build(reference, {.bucket_width = 128});
  }
};

std::vector<Base> mutate_read(std::vector<Base> read, int substitutions,
                              int deletions, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (int s = 0; s < substitutions; ++s) {
    const std::size_t pos = rng.bounded(read.size());
    read[pos] = static_cast<Base>((static_cast<int>(read[pos]) + 1) % 4);
  }
  for (int d = 0; d < deletions && read.size() > 1; ++d) {
    read.erase(read.begin() + static_cast<long>(rng.bounded(read.size())));
  }
  return read;
}

TEST(SeedExtend, PerfectLongReadFound) {
  Fixture f;
  const auto read = f.reference.slice(50000, 51000);
  const auto result = seed_extend_align(f.fm, f.reference, read);
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.seeds_total, 50U);
  EXPECT_EQ(result.seeds_matched, result.seeds_total);
  // Best hit covers the true origin (window includes the pad).
  EXPECT_NEAR(static_cast<double>(result.hits[0].ref_begin), 50000.0, 40.0);
  // Perfect read: full-length match score.
  EXPECT_EQ(result.hits[0].score, 2000);
}

TEST(SeedExtend, DivergedLongReadFoundWhereBacktrackingFails) {
  Fixture f;
  // 1 kb read with 6 substitutions (~0.6% divergence): far beyond z=2.
  const auto read =
      mutate_read(f.reference.slice(120000, 121000), 6, 0, 77);
  InexactOptions z2;
  z2.max_diffs = 2;
  z2.max_states = 200000;
  EXPECT_FALSE(inexact_search(f.fm, read, z2).found());

  const auto result = seed_extend_align(f.fm, f.reference, read);
  ASSERT_TRUE(result.found());
  EXPECT_NEAR(static_cast<double>(result.hits[0].ref_begin), 120000.0, 40.0);
  // 994 matches * 2 - 6 mismatches * 1 (at worst) within banding slack.
  EXPECT_GT(result.hits[0].score, 1900);
}

TEST(SeedExtend, HandlesIndels) {
  Fixture f;
  const auto read = mutate_read(f.reference.slice(80000, 80800), 2, 3, 13);
  const auto result = seed_extend_align(f.fm, f.reference, read);
  ASSERT_TRUE(result.found());
  EXPECT_NEAR(static_cast<double>(result.hits[0].ref_begin), 80000.0, 64.0);
  EXPECT_GT(result.hits[0].score, 1400);
}

TEST(SeedExtend, RandomReadNotFound) {
  Fixture f(50000, 3);
  util::Xoshiro256 rng(5);
  std::vector<Base> read;
  for (int i = 0; i < 500; ++i) read.push_back(static_cast<Base>(rng.bounded(4)));
  const auto result = seed_extend_align(f.fm, f.reference, read);
  EXPECT_FALSE(result.found());
  EXPECT_EQ(result.candidates_tried, 0U);
}

TEST(SeedExtend, ShortReadReturnsEmpty) {
  Fixture f(20000, 4);
  SeedExtendOptions opt;
  opt.seed_length = 20;
  const auto result =
      seed_extend_align(f.fm, f.reference, f.reference.slice(0, 10), opt);
  EXPECT_FALSE(result.found());
  EXPECT_EQ(result.seeds_total, 0U);
}

TEST(SeedExtend, RepeatSeedsSkipped) {
  // A reference of pure repeats: every seed has a huge interval and is
  // discarded; with max_seed_hits raised the read is found again.
  PackedSequence reference;
  for (int i = 0; i < 3000; ++i) {
    reference.push_back(static_cast<Base>(i % 4));
  }
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  const auto read = reference.slice(1000, 1200);
  SeedExtendOptions strict;
  strict.max_seed_hits = 4;
  const auto none = seed_extend_align(fm, reference, read, strict);
  EXPECT_EQ(none.seeds_matched, 0U);
  SeedExtendOptions loose;
  loose.max_seed_hits = 4000;
  loose.max_candidates = 32;
  const auto found = seed_extend_align(fm, reference, read, loose);
  EXPECT_TRUE(found.found());
}

TEST(SeedExtend, VoteThresholdFiltersNoise) {
  Fixture f(100000, 6);
  const auto read = f.reference.slice(30000, 30400);
  SeedExtendOptions opt;
  opt.min_votes = 3;
  const auto result = seed_extend_align(f.fm, f.reference, read, opt);
  ASSERT_TRUE(result.found());
  for (const auto& hit : result.hits) {
    EXPECT_GE(hit.votes, 3U);
  }
}

TEST(SeedExtend, BadArgsThrow) {
  Fixture f(20000, 7);
  SeedExtendOptions opt;
  opt.seed_length = 0;
  EXPECT_THROW(
      seed_extend_align(f.fm, f.reference, f.reference.slice(0, 100), opt),
      std::invalid_argument);
  const auto other = genome::generate_uniform(500, 1);
  EXPECT_THROW(
      seed_extend_align(f.fm, other, f.reference.slice(0, 100)),
      std::invalid_argument);
}

TEST(SeedExtend, HardwareBackendBitIdentical) {
  // seed_extend_hw drives the same core through the PIM platform; results
  // match the software path and every seed search is charged to the tiles.
  Fixture f(60000, 12);
  ::pim::hw::TimingEnergyModel timing;
  ::pim::hw::PimAlignerPlatform platform(f.fm, timing);
  const auto read = mutate_read(f.reference.slice(20000, 20600), 3, 1, 5);
  const auto sw = seed_extend_align(f.fm, f.reference, read);
  platform.reset_stats();
  const auto hw_result =
      ::pim::hw::seed_extend_hw(platform, f.reference, read);
  ASSERT_EQ(hw_result.hits.size(), sw.hits.size());
  for (std::size_t i = 0; i < sw.hits.size(); ++i) {
    EXPECT_EQ(hw_result.hits[i].ref_begin, sw.hits[i].ref_begin);
    EXPECT_EQ(hw_result.hits[i].score, sw.hits[i].score);
    EXPECT_EQ(hw_result.hits[i].votes, sw.hits[i].votes);
  }
  EXPECT_EQ(hw_result.seeds_total, sw.seeds_total);
  // The seeding really ran on the sub-arrays.
  const auto stats = platform.aggregate_stats();
  EXPECT_GT(stats.lfm_calls, 0U);
  EXPECT_GT(stats.ops.triple_senses, 0U);
  EXPECT_GT(stats.sa_mem_reads, 0U);
}

TEST(SeedExtend, HitsSortedByScore) {
  Fixture f(150000, 8);
  const auto read = f.reference.slice(10000, 10500);
  SeedExtendOptions opt;
  opt.min_votes = 1;
  opt.max_candidates = 16;
  const auto result = seed_extend_align(f.fm, f.reference, read, opt);
  ASSERT_TRUE(result.found());
  for (std::size_t i = 1; i < result.hits.size(); ++i) {
    EXPECT_GE(result.hits[i - 1].score, result.hits[i].score);
  }
}

}  // namespace
}  // namespace pim::align
