#include "src/align/streaming_pipeline.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/align/parallel_aligner.h"
#include "src/align/sam_writer.h"
#include "src/align/sharded_engine.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"

namespace pim::align {
namespace {

// One deterministic end-to-end workload shared by every test: synthetic
// reference, ART-like reads (errors, qualities, both strands) serialized as
// real FASTQ text, plus the reference SAM produced by the materializing
// write_batch path. Streaming runs must reproduce `batch_sam` byte for
// byte, whatever the chunking.
struct Fixture {
  genome::PackedSequence reference;
  index::FmIndex fm;
  std::string fastq_text;
  std::unique_ptr<SoftwareEngine> engine;
  std::string batch_sam;

  Fixture() {
    genome::SyntheticGenomeSpec gspec;
    gspec.length = 60000;
    gspec.seed = 7;
    reference = genome::generate_reference(gspec);
    fm = index::FmIndex::build(reference, {.bucket_width = 64});

    readsim::ReadSimSpec rspec;
    rspec.read_length = 64;
    rspec.num_reads = 300;
    rspec.sequencing_error_rate = 0.01;  // exact, inexact, and unaligned mix
    rspec.emit_qualities = true;
    rspec.seed = 21;
    const auto records =
        readsim::to_fastq(readsim::ReadSimulator(rspec).generate(reference));
    std::ostringstream fq;
    genome::write_fastq(fq, records);
    fastq_text = fq.str();

    AlignerOptions options;
    options.inexact.max_diffs = 2;
    engine = std::make_unique<SoftwareEngine>(fm, options);

    const auto batch = ReadBatch::from_fastq(records);
    BatchResult results;
    engine->align_batch(batch, results);
    std::ostringstream sam;
    SamWriter writer(sam, "ref", reference);
    writer.write_header();
    writer.write_batch(batch, results);
    batch_sam = sam.str();
  }

  std::string stream_sam(const AlignmentEngine& e,
                         StreamingOptions options = {},
                         StreamingStats* stats_out = nullptr) const {
    std::istringstream in(fastq_text);
    genome::FastqStreamReader reader(in);
    std::ostringstream sam;
    SamWriter writer(sam, "ref", reference);
    writer.write_header();
    const auto stats = StreamingPipeline(e, options).run(reader, writer);
    if (stats_out) *stats_out = stats;
    return sam.str();
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(StreamingPipeline, ByteIdenticalToWriteBatch) {
  const auto& f = fixture();
  StreamingStats stats;
  const std::string sam = f.stream_sam(*f.engine, {}, &stats);
  EXPECT_EQ(sam, f.batch_sam);
  EXPECT_EQ(stats.reads, 300U);
  EXPECT_EQ(stats.batches, 1U);  // 300 reads < default batch_reads
  EXPECT_GE(stats.chunks, 1U);
  EXPECT_EQ(stats.engine.reads_total, 300U);
  EXPECT_GT(stats.peak_batch_bytes, 0U);
  EXPECT_GT(stats.wall_ms, 0.0);
}

TEST(StreamingPipeline, ChunkAndBatchSizesDoNotChangeOutput) {
  const auto& f = fixture();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{16},
                                  std::size_t{1000} /* > batch */}) {
    for (const std::size_t batch_reads :
         {std::size_t{1}, std::size_t{37}, std::size_t{300},
          std::size_t{100000}}) {
      StreamingOptions options;
      options.batch_reads = batch_reads;
      options.parallel.chunk_size = chunk;
      StreamingStats stats;
      EXPECT_EQ(f.stream_sam(*f.engine, options, &stats), f.batch_sam)
          << "chunk=" << chunk << " batch_reads=" << batch_reads;
      EXPECT_EQ(stats.reads, 300U);
      EXPECT_EQ(stats.batches, (300 + batch_reads - 1) / batch_reads);
    }
  }
}

TEST(StreamingPipeline, SerialEngineRouteMatches) {
  const auto& f = fixture();
  StreamingOptions options;
  options.parallel.num_threads = 1;  // forces the serial scheduler route
  options.batch_reads = 64;
  EXPECT_EQ(f.stream_sam(*f.engine, options), f.batch_sam);
}

TEST(StreamingPipeline, ShardedEngineStreamsIdentically) {
  const auto& f = fixture();
  AlignerOptions options;
  options.inexact.max_diffs = 2;
  for (const bool rebalance : {false, true}) {
    std::vector<std::unique_ptr<AlignmentEngine>> shards;
    for (int s = 0; s < 3; ++s) {
      shards.push_back(std::make_unique<SoftwareEngine>(f.fm, options));
    }
    ShardedOptions sopts;
    sopts.rebalance = rebalance;
    const ShardedEngine engine(std::move(shards), sopts);
    StreamingOptions stream;
    stream.batch_reads = 100;  // several generations, rebalanced between
    EXPECT_EQ(f.stream_sam(engine, stream), f.batch_sam)
        << "rebalance=" << rebalance;
    if (rebalance) {
      // Weights moved off uniform but stayed a normalized distribution.
      double sum = 0.0;
      for (const double w : engine.shard_weights()) {
        EXPECT_GT(w, 0.0);
        sum += w;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(StreamingPipeline, BestHitOnlyEmitsOnlyPrimaryRecords) {
  const auto& f = fixture();
  StreamingOptions options;
  options.best_hit_only = true;
  StreamingStats stats;
  const std::string sam = f.stream_sam(*f.engine, options, &stats);

  // Exactly the primary/unmapped lines of the full run, same placement and
  // CIGAR (best-hit truncation must keep the same primary hit) — only MAPQ
  // may differ, because the writer no longer sees the hit multiplicity.
  const auto non_secondary = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);) {
      if (line[0] == '@') {
        lines.push_back(line);
        continue;
      }
      std::istringstream fields(line);
      std::string qname, flag;
      fields >> qname >> flag;
      if ((std::stoi(flag) & SamRecord::kFlagSecondary) == 0) {
        lines.push_back(line);
      }
    }
    return lines;
  };
  const auto strip_mapq = [](std::string line) {
    std::vector<std::string> fields;
    std::istringstream in(line);
    for (std::string field; std::getline(in, field, '\t');) {
      fields.push_back(field);
    }
    if (fields.size() > 4) fields[4] = "-";
    std::string out;
    for (const auto& field : fields) {
      if (!out.empty()) out += '\t';
      out += field;
    }
    return out;
  };
  const auto want = non_secondary(f.batch_sam);
  const auto got = non_secondary(sam);
  ASSERT_EQ(got.size(), want.size());
  std::uint64_t mapped = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(strip_mapq(got[i]), strip_mapq(want[i])) << "line " << i;
    if (got[i][0] != '@') {
      std::istringstream fields(got[i]);
      std::string qname, flag;
      fields >> qname >> flag;
      if ((std::stoi(flag) & SamRecord::kFlagUnmapped) == 0) ++mapped;
    }
  }
  // The output IS its non-secondary subset: nothing was emitted beyond it.
  std::size_t got_lines = 0;
  for (const char c : sam) got_lines += (c == '\n');
  EXPECT_EQ(got_lines, got.size());
  // One hit per aligned read survives truncation.
  EXPECT_EQ(stats.engine.hits_total, mapped);
}

TEST(StreamingPipeline, EmptyInputProducesHeaderOnly) {
  const auto& f = fixture();
  std::istringstream in("");
  genome::FastqStreamReader reader(in);
  std::ostringstream sam;
  SamWriter writer(sam, "ref", f.reference);
  writer.write_header();
  const auto stats = StreamingPipeline(*f.engine).run(reader, writer);
  EXPECT_EQ(stats.reads, 0U);
  EXPECT_EQ(stats.batches, 0U);
  EXPECT_EQ(stats.chunks, 0U);
  EXPECT_EQ(writer.records_written(), 0U);
}

TEST(StreamingPipeline, MalformedFastqMidStreamThrowsAfterEmitting) {
  const auto& f = fixture();
  // 8 good records, then a structural error. With 4-read generations the
  // first two generations must land in the SAM before the parse error
  // surfaces from run().
  std::string text;
  for (int i = 0; i < 8; ++i) {
    text += "@ok" + std::to_string(i) + "\nACGTACGTACGT\n+\nIIIIIIIIIIII\n";
  }
  text += "not_a_header\nACGT\n+\nIIII\n";
  std::istringstream in(text);
  genome::FastqStreamReader reader(in);
  std::ostringstream sam;
  SamWriter writer(sam, "ref", f.reference);
  StreamingOptions options;
  options.batch_reads = 4;
  try {
    StreamingPipeline(*f.engine, options).run(reader, writer);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("record 9"), std::string::npos)
        << e.what();
  }
  // Every read of the two complete generations was emitted before the
  // error surfaced (a short read can map to several records).
  std::istringstream emitted(sam.str());
  std::set<std::string> qnames;
  for (std::string line; std::getline(emitted, line);) {
    qnames.insert(line.substr(0, line.find('\t')));
  }
  EXPECT_EQ(qnames.size(), 8U);
  EXPECT_TRUE(qnames.count("ok0"));
  EXPECT_TRUE(qnames.count("ok7"));
}

TEST(StreamingPipeline, SinkExceptionPropagates) {
  const auto& f = fixture();
  std::istringstream in(f.fastq_text);
  genome::FastqStreamReader reader(in);
  EXPECT_THROW(
      StreamingPipeline(*f.engine).run(
          reader,
          [](const BatchResultChunk&) { throw std::logic_error("sink"); }),
      std::logic_error);
}

TEST(StreamingPipeline, ChunksArriveInGlobalReadOrderWithBaseIndex) {
  const auto& f = fixture();
  std::istringstream in(f.fastq_text);
  genome::FastqStreamReader reader(in);
  StreamingOptions options;
  options.batch_reads = 64;
  options.parallel.chunk_size = 7;
  std::size_t next = 0;
  std::uint64_t delivered = 0;
  const auto stats = StreamingPipeline(*f.engine, options)
                         .run(reader, [&](const BatchResultChunk& chunk) {
                           EXPECT_EQ(chunk.base_index, next);
                           EXPECT_EQ(chunk.result->size(), chunk.size());
                           next += chunk.size();
                           ++delivered;
                         });
  EXPECT_EQ(next, 300U);
  EXPECT_EQ(stats.chunks, delivered);
  EXPECT_GE(delivered, 300U / 64U + 1);  // at least one chunk per generation
}

// Nameless reads can't come from FASTQ, so the global "read<i>" backfill is
// exercised at the SamWriter seam directly: emitting one batch as two
// chunks with stream-global base indices must match write_batch's numbering.
TEST(SamWriterChunk, BaseIndexKeepsGlobalReadNumbering) {
  const auto& f = fixture();
  ReadBatchBuilder builder;
  for (std::uint64_t i = 0; i < 10; ++i) {
    builder.add_slice(f.reference, i * 200, i * 200 + 40);
  }
  const auto batch = builder.build();
  BatchResult results;
  f.engine->align_batch(batch, results);

  std::ostringstream whole;
  SamWriter whole_writer(whole, "ref", f.reference);
  whole_writer.write_batch(batch, results);

  std::ostringstream chunked;
  SamWriter chunk_writer(chunked, "ref", f.reference);
  const ChunkSink sink = [&](const BatchResultChunk& chunk) {
    chunk_writer.write_chunk(chunk);
  };
  f.engine->align_batch_chunked(batch, 4, sink);
  EXPECT_EQ(chunked.str(), whole.str());
  EXPECT_NE(whole.str().find("read9\t"), std::string::npos);
}

// Golden pin of the whole streaming trip (deterministic workload): catches
// unintended format or ordering drift. Regenerate by copying
// /tmp/pim_streaming_actual.sam (dumped on mismatch) over
// tests/golden/streaming_end_to_end.sam and reviewing the diff.
TEST(StreamingPipeline, GoldenFile) {
  const auto& f = fixture();
  StreamingOptions options;
  options.batch_reads = 128;
  const std::string sam = f.stream_sam(*f.engine, options);
  std::ifstream golden(std::string(PIMALIGNER_SOURCE_DIR) +
                       "/tests/golden/streaming_end_to_end.sam");
  std::stringstream want;
  if (golden.good()) want << golden.rdbuf();
  if (!golden.good() || sam != want.str()) {
    std::ofstream dump("/tmp/pim_streaming_actual.sam");
    dump << sam;
  }
  ASSERT_TRUE(golden.good())
      << "missing tests/golden/streaming_end_to_end.sam; actual output "
         "dumped to /tmp/pim_streaming_actual.sam";
  EXPECT_EQ(sam, want.str())
      << "actual output dumped to /tmp/pim_streaming_actual.sam";
}

}  // namespace
}  // namespace pim::align
