#include "src/index/index_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/align/backward_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::index {
namespace {

using genome::PackedSequence;

struct Fixture {
  PackedSequence reference;
  FmIndex fm;
  explicit Fixture(std::uint32_t sa_rate = 1) {
    genome::SyntheticGenomeSpec spec;
    spec.length = 5000;
    spec.seed = 12;
    reference = genome::generate_reference(spec);
    fm = FmIndex::build(reference,
                        {.bucket_width = 64, .sa_sample_rate = sa_rate});
  }
};

TEST(IndexIo, RoundTripPreservesEverything) {
  Fixture f;
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference);
  const LoadedIndex loaded = load_index(buffer);

  EXPECT_TRUE(loaded.reference == f.reference);
  EXPECT_EQ(loaded.index.num_rows(), f.fm.num_rows());
  EXPECT_EQ(loaded.index.config().bucket_width, 64U);
  EXPECT_EQ(loaded.index.bwt().primary, f.fm.bwt().primary);
  // Search behaviour identical.
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t start = rng.bounded(f.reference.size() - 30);
    const auto read = f.reference.slice(start, start + 30);
    const auto a = align::exact_search(f.fm, read);
    const auto b = align::exact_search(loaded.index, read);
    EXPECT_EQ(a.interval, b.interval);
  }
  // Locate identical for every row.
  for (std::size_t row = 0; row < f.fm.num_rows(); row += 97) {
    EXPECT_EQ(loaded.index.locate(row), f.fm.locate(row));
  }
}

TEST(IndexIo, RoundTripWithSampledSa) {
  Fixture f(8);
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference);
  const LoadedIndex loaded = load_index(buffer);
  EXPECT_EQ(loaded.index.config().sa_sample_rate, 8U);
  for (std::size_t row = 0; row < f.fm.num_rows(); row += 61) {
    EXPECT_EQ(loaded.index.locate(row), f.fm.locate(row));
  }
}

TEST(IndexIo, BadMagicRejected) {
  std::stringstream buffer;
  buffer.write("NOPE", 4);
  buffer.write("rest of a garbage file that is long enough", 42);
  EXPECT_THROW(load_index(buffer), std::runtime_error);
}

TEST(IndexIo, TruncationRejected) {
  Fixture f;
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(load_index(truncated), std::runtime_error);
}

TEST(IndexIo, CorruptionRejectedByChecksum) {
  Fixture f;
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference);
  std::string bytes = buffer.str();
  bytes[bytes.size() / 2] ^= 0x40;  // flip a bit mid-payload
  std::stringstream corrupt(bytes);
  EXPECT_THROW(load_index(corrupt), std::runtime_error);
}

TEST(IndexIo, SizeMismatchRejectedOnSave) {
  Fixture f;
  const PackedSequence other("ACGT");
  std::stringstream buffer;
  EXPECT_THROW(save_index(buffer, f.fm, other), std::invalid_argument);
}

TEST(IndexIo, FileRoundTrip) {
  Fixture f;
  const std::string path = "/tmp/pim_aligner_test_index.bin";
  save_index_file(path, f.fm, f.reference);
  const LoadedIndex loaded = load_index_file(path);
  EXPECT_TRUE(loaded.reference == f.reference);
  EXPECT_THROW(load_index_file("/tmp/definitely_missing_index_file.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace pim::index
