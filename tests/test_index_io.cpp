#include "src/index/index_io.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/align/backward_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/mapped_index.h"
#include "src/util/rng.h"

namespace pim::index {
namespace {

using genome::PackedSequence;

struct Fixture {
  PackedSequence reference;
  FmIndex fm;
  explicit Fixture(std::uint32_t sa_rate = 1) {
    genome::SyntheticGenomeSpec spec;
    spec.length = 5000;
    spec.seed = 12;
    reference = genome::generate_reference(spec);
    fm = FmIndex::build(reference,
                        {.bucket_width = 64, .sa_sample_rate = sa_rate});
  }
};

TEST(IndexIo, RoundTripPreservesEverything) {
  Fixture f;
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference);
  const LoadedIndex loaded = load_index(buffer);

  EXPECT_TRUE(loaded.reference == f.reference);
  EXPECT_EQ(loaded.index.num_rows(), f.fm.num_rows());
  EXPECT_EQ(loaded.index.config().bucket_width, 64U);
  EXPECT_EQ(loaded.index.bwt().primary, f.fm.bwt().primary);
  // Search behaviour identical.
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t start = rng.bounded(f.reference.size() - 30);
    const auto read = f.reference.slice(start, start + 30);
    const auto a = align::exact_search(f.fm, read);
    const auto b = align::exact_search(loaded.index, read);
    EXPECT_EQ(a.interval, b.interval);
  }
  // Locate identical for every row.
  for (std::size_t row = 0; row < f.fm.num_rows(); row += 97) {
    EXPECT_EQ(loaded.index.locate(row), f.fm.locate(row));
  }
}

TEST(IndexIo, RoundTripWithSampledSa) {
  Fixture f(8);
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference);
  const LoadedIndex loaded = load_index(buffer);
  EXPECT_EQ(loaded.index.config().sa_sample_rate, 8U);
  for (std::size_t row = 0; row < f.fm.num_rows(); row += 61) {
    EXPECT_EQ(loaded.index.locate(row), f.fm.locate(row));
  }
}

TEST(IndexIo, BadMagicRejected) {
  std::stringstream buffer;
  buffer.write("NOPE", 4);
  buffer.write("rest of a garbage file that is long enough", 42);
  EXPECT_THROW(load_index(buffer), std::runtime_error);
}

TEST(IndexIo, TruncationRejected) {
  Fixture f;
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(load_index(truncated), std::runtime_error);
}

TEST(IndexIo, CorruptionRejectedByChecksum) {
  Fixture f;
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference);
  std::string bytes = buffer.str();
  bytes[bytes.size() / 2] ^= 0x40;  // flip a bit mid-payload
  std::stringstream corrupt(bytes);
  EXPECT_THROW(load_index(corrupt), std::runtime_error);
}

TEST(IndexIo, SizeMismatchRejectedOnSave) {
  Fixture f;
  const PackedSequence other("ACGT");
  std::stringstream buffer;
  EXPECT_THROW(save_index(buffer, f.fm, other), std::invalid_argument);
}

TEST(IndexIo, FileRoundTrip) {
  Fixture f;
  const std::string path = "/tmp/pim_aligner_test_index.bin";
  save_index_file(path, f.fm, f.reference);
  const LoadedIndex loaded = load_index_file(path);
  EXPECT_TRUE(loaded.reference == f.reference);
  EXPECT_THROW(load_index_file("/tmp/definitely_missing_index_file.bin"),
               std::runtime_error);
}

TEST(IndexIo, V1ArtifactsStillLoad) {
  Fixture f(4);
  std::stringstream buffer;
  save_index_v1(buffer, f.fm, f.reference);
  const LoadedIndex loaded = load_index(buffer);
  EXPECT_TRUE(loaded.reference == f.reference);
  EXPECT_TRUE(loaded.chromosomes.empty());  // v1 has no chromosome table
  EXPECT_EQ(loaded.index.config().sa_sample_rate, 4U);
  for (std::size_t row = 0; row < f.fm.num_rows(); row += 101) {
    EXPECT_EQ(loaded.index.locate(row), f.fm.locate(row));
  }
}

TEST(IndexIo, ChromosomeTableRoundTrips) {
  Fixture f;
  const std::vector<genome::Chromosome> chromosomes = {
      {"chr1", 0, 3000}, {"chr2", 3000, 2000}};
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference, chromosomes);
  const LoadedIndex loaded = load_index(buffer);
  ASSERT_EQ(loaded.chromosomes.size(), 2U);
  EXPECT_EQ(loaded.chromosomes[0].name, "chr1");
  EXPECT_EQ(loaded.chromosomes[1].offset, 3000U);
  EXPECT_EQ(loaded.chromosomes[1].length, 2000U);
  const auto multi = loaded.multi_reference();
  EXPECT_EQ(multi.chromosomes().size(), 2U);
  EXPECT_TRUE(multi.concatenated() == f.reference);
}

TEST(IndexIo, NonContiguousChromosomesRejectedOnSave) {
  Fixture f;
  std::stringstream buffer;
  EXPECT_THROW(
      save_index(buffer, f.fm, f.reference, {{"chr1", 0, 1000}}),
      std::invalid_argument);
  EXPECT_THROW(save_index(buffer, f.fm, f.reference,
                          {{"chr1", 0, 1000}, {"chr2", 1500, 3500}}),
               std::invalid_argument);
}

TEST(IndexIo, InspectReportsSections) {
  Fixture f;
  const std::string path = "/tmp/pim_aligner_test_inspect.bin";
  save_index_file(path, f.fm, f.reference, {{"only", 0, 5000}});
  const auto info = inspect_index_file(path);
  EXPECT_EQ(info.version, kIndexVersion);
  EXPECT_EQ(info.reference_bases, 5000U);
  EXPECT_EQ(info.num_chromosomes, 1U);
  EXPECT_EQ(info.sections.size(), 7U);
  std::uint64_t payload_total = 0;
  for (const auto& section : info.sections) {
    payload_total += section.payload_bytes;
    EXPECT_EQ(section.offset % 8, 0U) << section.name;
  }
  EXPECT_LE(payload_total, info.file_bytes);
}

// ---------------------------------------------------------------------------
// Hardening matrix (S42): every corruption class must fail loudly — a
// runtime_error naming the failing section — through BOTH loaders.
// ---------------------------------------------------------------------------

std::string v2_bytes(const Fixture& f) {
  std::stringstream buffer;
  save_index(buffer, f.fm, f.reference, {{"chr", 0, 5000}});
  return buffer.str();
}

/// Runs `bytes` through the stream loader and (via a temp file) the mapped
/// loader, expecting both to throw a runtime_error mentioning `needle`.
void expect_both_loaders_reject(const std::string& bytes,
                                const std::string& needle,
                                const std::string& tag) {
  std::stringstream stream(bytes);
  try {
    load_index(stream);
    FAIL() << tag << ": stream loader accepted corrupt bytes";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << tag << ": stream error was: " << e.what();
  }
  const std::string path = "/tmp/pim_aligner_corrupt_" + tag + ".bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    MappedIndex::open(path);
    FAIL() << tag << ": mapped loader accepted corrupt bytes";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << tag << ": mapped error was: " << e.what();
  }
}

TEST(IndexIoHardening, BadMagicBothLoaders) {
  Fixture f;
  std::string bytes = v2_bytes(f);
  bytes[0] = 'X';
  expect_both_loaders_reject(bytes, "bad magic", "magic");
}

TEST(IndexIoHardening, UnsupportedVersionBothLoaders) {
  Fixture f;
  std::string bytes = v2_bytes(f);
  const std::uint32_t version = 99;
  std::memcpy(bytes.data() + 4, &version, sizeof(version));
  // The mapped loader falls through to the stream loader for any version it
  // does not map, so both paths report the same canonical error.
  expect_both_loaders_reject(bytes, "unsupported index version", "version");
}

TEST(IndexIoHardening, TruncatedSectionBothLoaders) {
  Fixture f;
  const std::string bytes = v2_bytes(f);
  // Cut mid-way through the payloads: the file-size check reports it as a
  // truncated file before any section read.
  expect_both_loaders_reject(bytes.substr(0, bytes.size() * 3 / 4),
                             "truncated", "truncated");
}

TEST(IndexIoHardening, FlippedPayloadByteNamesSection) {
  Fixture f;
  std::string bytes = v2_bytes(f);
  const auto info = [&] {
    const std::string path = "/tmp/pim_aligner_hardening_layout.bin";
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    return inspect_index_file(path);
  }();
  // Flip one byte inside each section in turn; the error must name it.
  for (const auto& section : info.sections) {
    std::string corrupt = bytes;
    corrupt[section.offset + section.payload_bytes / 2] ^= 0x01;
    expect_both_loaders_reject(
        corrupt, "section '" + section.name + "': checksum mismatch",
        "flip_" + section.name);
  }
}

TEST(IndexIoHardening, ZeroLengthReferenceBothLoaders) {
  Fixture f;
  std::string bytes = v2_bytes(f);
  // reference_bases lives in the v2 header; re-seal the header checksum so
  // the zero-length check (not the checksum) is what fires.
  detail::FileHeaderV2 header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.reference_bases = 0;
  header.header_checksum = 0;
  header.header_checksum = detail::fnv1a(detail::kFnvOffset, &header,
                                         sizeof(header) - sizeof(std::uint64_t));
  std::memcpy(bytes.data(), &header, sizeof(header));
  expect_both_loaders_reject(bytes, "zero-length reference", "zeroref");
}

TEST(IndexIoHardening, ZeroLengthReferenceV1) {
  // Hand-craft the v1 prefix: magic, version, config, then n = 0. The
  // loader rejects before reaching the trailing checksum.
  std::stringstream buffer;
  const std::uint32_t magic = kIndexMagic;
  const std::uint32_t version = kIndexVersionV1;
  const std::uint32_t bucket_width = 64;
  const std::uint32_t sa_rate = 1;
  const std::uint64_t n = 0;
  buffer.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  buffer.write(reinterpret_cast<const char*>(&version), sizeof(version));
  buffer.write(reinterpret_cast<const char*>(&bucket_width),
               sizeof(bucket_width));
  buffer.write(reinterpret_cast<const char*>(&sa_rate), sizeof(sa_rate));
  buffer.write(reinterpret_cast<const char*>(&n), sizeof(n));
  try {
    load_index(buffer);
    FAIL() << "v1 loader accepted a zero-length reference";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("zero-length reference"),
              std::string::npos)
        << e.what();
  }
}

TEST(IndexIoHardening, HeaderChecksumCoversHeaderFields) {
  Fixture f;
  std::string bytes = v2_bytes(f);
  // Corrupt primary without re-sealing: the header checksum must fire.
  detail::FileHeaderV2 header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.primary ^= 1;
  std::memcpy(bytes.data(), &header, sizeof(header));
  expect_both_loaders_reject(bytes, "header checksum", "header");
}

// ---------------------------------------------------------------------------
// Bit-identity: built vs stream-loaded vs mapped must be indistinguishable.
// ---------------------------------------------------------------------------

TEST(IndexIoIdentity, BuiltStreamAndMappedAgree) {
  Fixture f(4);
  const std::string path = "/tmp/pim_aligner_identity.bin";
  save_index_file(path, f.fm, f.reference, {{"chr", 0, 5000}});
  const LoadedIndex streamed = load_index_file(path);
  const MappedIndex mapped = MappedIndex::open(path);

  EXPECT_TRUE(streamed.reference == f.reference);
  EXPECT_TRUE(mapped.reference() == f.reference);
  ASSERT_EQ(mapped.chromosomes().size(), 1U);
  EXPECT_EQ(mapped.chromosomes()[0].name, "chr");

  util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t len = 20 + rng.bounded(30);
    const std::size_t start = rng.bounded(f.reference.size() - len);
    const auto read = f.reference.slice(start, start + len);
    const auto a = align::exact_search(f.fm, read);
    const auto b = align::exact_search(streamed.index, read);
    const auto c = align::exact_search(mapped.index(), read);
    EXPECT_EQ(a.interval, b.interval);
    EXPECT_EQ(a.interval, c.interval);
  }
  for (std::size_t row = 0; row < f.fm.num_rows(); row += 37) {
    EXPECT_EQ(f.fm.locate(row), streamed.index.locate(row));
    EXPECT_EQ(f.fm.locate(row), mapped.index().locate(row));
  }
}

TEST(IndexIoIdentity, MappedIndexMoveKeepsBorrowsValid) {
  Fixture f;
  const std::string path = "/tmp/pim_aligner_identity_move.bin";
  save_index_file(path, f.fm, f.reference);
  MappedIndex first = MappedIndex::open(path);
  const auto before = first.index().locate(11);
  MappedIndex second = std::move(first);
  EXPECT_EQ(second.index().locate(11), before);
  MappedIndex third;
  third = std::move(second);
  EXPECT_EQ(third.index().locate(11), before);
}

TEST(IndexIoIdentity, MappedOpenOfV1FallsBackToStream) {
  Fixture f;
  const std::string path = "/tmp/pim_aligner_v1_fallback.bin";
  {
    std::ofstream out(path, std::ios::binary);
    save_index_v1(out, f.fm, f.reference);
  }
  const MappedIndex mapped = MappedIndex::open(path);
  EXPECT_FALSE(mapped.mapped());  // v1 tables are rebuilt, not mappable
  EXPECT_TRUE(mapped.reference() == f.reference);
  EXPECT_EQ(mapped.index().num_rows(), f.fm.num_rows());
}

TEST(IndexIoIdentity, LoadMetricsDistinguishRebuildFromMap) {
  Fixture f;
  const std::string v1_path = "/tmp/pim_aligner_metrics_v1.bin";
  const std::string v2_path = "/tmp/pim_aligner_metrics_v2.bin";
  {
    std::ofstream out(v1_path, std::ios::binary);
    save_index_v1(out, f.fm, f.reference);
  }
  save_index_file(v2_path, f.fm, f.reference);

  obs::MetricsRegistry registry;
  (void)MappedIndex::open(v1_path, {}, &registry);
  (void)MappedIndex::open(v2_path, {}, &registry);
  const auto snapshot = registry.scrape();
  const auto* rebuild = snapshot.histogram("index.load.rebuild_ms");
  ASSERT_NE(rebuild, nullptr);
  EXPECT_EQ(rebuild->count, 1U);  // only the v1 fallback rebuilds
  const auto* map_ms = snapshot.histogram("index.load.map_ms");
  if (map_ms != nullptr) {  // absent only on platforms without mmap
    EXPECT_EQ(map_ms->count, 1U);
  }
}

}  // namespace
}  // namespace pim::index
