#include "src/genome/synthetic_genome.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace pim::genome {
namespace {

TEST(SyntheticGenome, UniformLengthAndDeterminism) {
  const auto a = generate_uniform(1000, 42);
  const auto b = generate_uniform(1000, 42);
  const auto c = generate_uniform(1000, 43);
  EXPECT_EQ(a.size(), 1000U);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SyntheticGenome, UniformGcContent) {
  const auto seq = generate_uniform(50000, 7, 0.41);
  std::size_t gc = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const Base b = seq.at(i);
    if (b == Base::G || b == Base::C) ++gc;
  }
  EXPECT_NEAR(static_cast<double>(gc) / 50000.0, 0.41, 0.02);
}

TEST(SyntheticGenome, UniformUsesAllBases) {
  const auto seq = generate_uniform(2000, 9);
  std::array<bool, 4> seen{};
  for (std::size_t i = 0; i < seq.size(); ++i) {
    seen[static_cast<std::size_t>(seq.at(i))] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(SyntheticGenome, UniformRejectsBadGc) {
  EXPECT_THROW(generate_uniform(10, 1, -0.1), std::invalid_argument);
  EXPECT_THROW(generate_uniform(10, 1, 1.1), std::invalid_argument);
}

TEST(SyntheticGenome, ReferenceHasRequestedLength) {
  SyntheticGenomeSpec spec;
  spec.length = 12345;
  spec.seed = 5;
  const auto seq = generate_reference(spec);
  EXPECT_EQ(seq.size(), 12345U);
}

TEST(SyntheticGenome, ReferenceDeterministicInSeed) {
  SyntheticGenomeSpec spec;
  spec.length = 5000;
  spec.seed = 11;
  const auto a = generate_reference(spec);
  const auto b = generate_reference(spec);
  EXPECT_TRUE(a == b);
}

TEST(SyntheticGenome, RepeatsCreateDuplicatedKmers) {
  // With heavy repeat planting, some long k-mers must recur; with zero
  // repeat fraction at the same modest length, recurrence of a 40-mer is
  // vanishingly unlikely.
  SyntheticGenomeSpec with_repeats;
  with_repeats.length = 60000;
  with_repeats.repeat_fraction = 0.6;
  with_repeats.repeat_divergence = 0.0;
  with_repeats.seed = 3;
  const auto seq = generate_reference(with_repeats);

  auto count_recurring_40mer = [](const PackedSequence& s) {
    // Sample a handful of 40-mers and scan for a second occurrence.
    std::size_t recurring = 0;
    for (std::size_t start = 0; start + 40 < s.size() && start < 2000;
         start += 101) {
      const auto probe = s.slice(start, start + 40);
      for (std::size_t p = 0; p + 40 <= s.size(); ++p) {
        if (p == start) continue;
        bool match = true;
        for (std::size_t k = 0; k < 40; ++k) {
          if (s.at(p + k) != probe[k]) {
            match = false;
            break;
          }
        }
        if (match) {
          ++recurring;
          break;
        }
      }
    }
    return recurring;
  };
  EXPECT_GT(count_recurring_40mer(seq), 0U);

  SyntheticGenomeSpec unique;
  unique.length = 60000;
  unique.repeat_fraction = 0.0;
  unique.seed = 3;
  EXPECT_EQ(count_recurring_40mer(generate_reference(unique)), 0U);
}

TEST(SyntheticGenome, RejectsBadRepeatFraction) {
  SyntheticGenomeSpec spec;
  spec.repeat_fraction = 1.0;
  EXPECT_THROW(generate_reference(spec), std::invalid_argument);
}

}  // namespace
}  // namespace pim::genome
