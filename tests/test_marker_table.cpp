#include "src/index/marker_table.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/genome/synthetic_genome.h"

namespace pim::index {
namespace {

using genome::Base;
using genome::PackedSequence;

struct Fixture {
  PackedSequence text;
  Bwt bwt;
  CountTable counts;
  explicit Fixture(PackedSequence t) : text(std::move(t)) {
    bwt = build_bwt(text, build_suffix_array(text));
    counts = CountTable(bwt);
  }
};

TEST(MarkerTable, RejectsZeroBucket) {
  const Fixture f(PackedSequence("ACGT"));
  EXPECT_THROW(MarkerTable(f.bwt, f.counts, 0), std::invalid_argument);
}

TEST(MarkerTable, MarkerIsCountPlusSampledOcc) {
  const Fixture f(PackedSequence("TGCTATGCTAGGCCAATT"));
  const std::uint32_t d = 4;
  const MarkerTable mt(f.bwt, f.counts, d);
  const SampledOccTable sampled(f.bwt, d);
  ASSERT_EQ(mt.num_checkpoints(), sampled.num_checkpoints());
  for (std::size_t k = 0; k < mt.num_checkpoints(); ++k) {
    for (const auto nt : genome::kAllBases) {
      EXPECT_EQ(mt.marker(nt, k),
                f.counts.count(nt) + sampled.checkpoint(nt, k));
    }
  }
}

// The defining identity of the hardware-friendly reconstruction:
// LFM(MT, nt, id) == Count(nt) + Occ(nt, id) for every id and nt.
class LfmIdentity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LfmIdentity, LfmEqualsCountPlusOcc) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 700;
  spec.seed = 31;
  spec.repeat_fraction = 0.3;
  const Fixture f(genome::generate_reference(spec));
  const MarkerTable mt(f.bwt, f.counts, GetParam());
  const OccTable occ(f.bwt);
  for (std::size_t id = 0; id <= f.bwt.size(); ++id) {
    for (const auto nt : genome::kAllBases) {
      ASSERT_EQ(mt.lfm(f.bwt, nt, id), f.counts.count(nt) + occ.occ(nt, id))
          << "d=" << GetParam() << " id=" << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BucketWidths, LfmIdentity,
                         ::testing::Values(1U, 7U, 32U, 128U));

TEST(MarkerTable, LfmOutOfRangeThrows) {
  const Fixture f(PackedSequence("ACGT"));
  const MarkerTable mt(f.bwt, f.counts, 2);
  EXPECT_THROW(mt.lfm(f.bwt, Base::A, f.bwt.size() + 1), std::out_of_range);
}

TEST(MarkerTable, MemoryScalesInverselyWithBucket) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 8192;
  spec.seed = 3;
  const Fixture f(genome::generate_reference(spec));
  const MarkerTable fine(f.bwt, f.counts, 32);
  const MarkerTable coarse(f.bwt, f.counts, 128);
  EXPECT_NEAR(static_cast<double>(fine.memory_bytes()) /
                  static_cast<double>(coarse.memory_bytes()),
              4.0, 0.3);
}

// LFM on the paper's worked example, end to end: backward search of R=CTA
// over S=TGCTA$ finds exactly one match.
TEST(MarkerTable, PaperBackwardSearchByHand) {
  const Fixture f(PackedSequence("TGCTA"));
  const MarkerTable mt(f.bwt, f.counts, 2);
  // Start: [0, 6). Extend with 'A' (rightmost of CTA):
  std::uint64_t low = mt.lfm(f.bwt, Base::A, 0);
  std::uint64_t high = mt.lfm(f.bwt, Base::A, 6);
  EXPECT_LT(low, high);
  // Extend with 'T':
  low = mt.lfm(f.bwt, Base::T, low);
  high = mt.lfm(f.bwt, Base::T, high);
  EXPECT_LT(low, high);
  // Extend with 'C':
  low = mt.lfm(f.bwt, Base::C, low);
  high = mt.lfm(f.bwt, Base::C, high);
  EXPECT_LT(low, high);
  EXPECT_EQ(high - low, 1U);  // CTA occurs exactly once in TGCTA
}

}  // namespace
}  // namespace pim::index
