#include "src/genome/alphabet.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pim::genome {
namespace {

TEST(Alphabet, LexicographicOrder) {
  EXPECT_LT(static_cast<int>(Base::A), static_cast<int>(Base::C));
  EXPECT_LT(static_cast<int>(Base::C), static_cast<int>(Base::G));
  EXPECT_LT(static_cast<int>(Base::G), static_cast<int>(Base::T));
}

TEST(Alphabet, HardwareCodesMatchFig6a) {
  // Paper Fig. 6a: T=00, G=01, A=10, C=11.
  EXPECT_EQ(hardware_code(Base::T), 0b00);
  EXPECT_EQ(hardware_code(Base::G), 0b01);
  EXPECT_EQ(hardware_code(Base::A), 0b10);
  EXPECT_EQ(hardware_code(Base::C), 0b11);
}

TEST(Alphabet, HardwareCodeRoundTrip) {
  for (const auto b : kAllBases) {
    EXPECT_EQ(base_from_hardware_code(hardware_code(b)), b);
  }
}

TEST(Alphabet, CharConversions) {
  EXPECT_EQ(to_char(Base::A), 'A');
  EXPECT_EQ(base_from_char('a'), Base::A);
  EXPECT_EQ(base_from_char('G'), Base::G);
  EXPECT_EQ(base_from_char('t'), Base::T);
  EXPECT_FALSE(base_from_char('N').has_value());
  EXPECT_FALSE(base_from_char('$').has_value());
  EXPECT_FALSE(base_from_char('x').has_value());
}

TEST(Alphabet, ComplementPairs) {
  // A-T and C-G per the complementary base pairing rule.
  EXPECT_EQ(complement(Base::A), Base::T);
  EXPECT_EQ(complement(Base::T), Base::A);
  EXPECT_EQ(complement(Base::C), Base::G);
  EXPECT_EQ(complement(Base::G), Base::C);
  for (const auto b : kAllBases) EXPECT_EQ(complement(complement(b)), b);
}

TEST(Alphabet, EncodeDecodeRoundTrip) {
  const std::string text = "ACGTACGTTTGGCCAA";
  EXPECT_EQ(decode(encode(text)), text);
}

TEST(Alphabet, EncodeLowercase) {
  EXPECT_EQ(decode(encode("acgt")), "ACGT");
}

TEST(Alphabet, EncodeRejectsNonAcgt) {
  EXPECT_THROW(encode("ACGN"), std::invalid_argument);
  EXPECT_THROW(encode("ACG "), std::invalid_argument);
}

TEST(Alphabet, ReverseComplement) {
  // revcomp(CTA) = TAG.
  EXPECT_EQ(decode(reverse_complement(encode("CTA"))), "TAG");
  EXPECT_EQ(decode(reverse_complement(encode("A"))), "T");
  EXPECT_TRUE(reverse_complement({}).empty());
}

TEST(Alphabet, ReverseComplementIsInvolution) {
  const auto seq = encode("GATTACAGGGCCCTTT");
  EXPECT_EQ(reverse_complement(reverse_complement(seq)), seq);
}

}  // namespace
}  // namespace pim::genome
