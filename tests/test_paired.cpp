#include "src/align/paired.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/genome/synthetic_genome.h"
#include "src/readsim/paired_simulator.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

struct Fixture {
  PackedSequence reference;
  index::FmIndex fm;
  explicit Fixture(std::size_t length = 100000, std::uint64_t seed = 11) {
    genome::SyntheticGenomeSpec spec;
    spec.length = length;
    spec.seed = seed;
    reference = genome::generate_reference(spec);
    fm = index::FmIndex::build(reference, {.bucket_width = 128});
  }
};

// --- Paired simulator ---------------------------------------------------------

TEST(PairedSimulator, GeneratesFrPairs) {
  Fixture f;
  readsim::PairedReadSimSpec spec;
  spec.base.read_length = 100;
  spec.base.num_reads = 100;
  spec.base.population_variation_rate = 0.0;
  spec.base.sequencing_error_rate = 0.0;
  spec.base.sample_both_strands = false;
  spec.base.seed = 5;
  const auto set = readsim::PairedReadSimulator(spec).generate(f.reference);
  ASSERT_EQ(set.pairs.size(), 100U);
  for (const auto& pair : set.pairs) {
    EXPECT_GE(pair.insert_size, 200U);
    EXPECT_LE(pair.insert_size, 420U);
    // Error-free forward-fragment pairs reproduce the reference exactly.
    EXPECT_FALSE(pair.read1.reverse_strand);
    EXPECT_TRUE(pair.read2.reverse_strand);
    EXPECT_EQ(pair.read1.bases,
              f.reference.slice(pair.read1.origin, pair.read1.origin + 100));
    EXPECT_EQ(pair.read2.bases,
              genome::reverse_complement(f.reference.slice(
                  pair.read2.origin, pair.read2.origin + 100)));
    // Mates bracket the fragment.
    EXPECT_EQ(pair.read1.origin, pair.fragment_start);
    EXPECT_EQ(pair.read2.origin + 100,
              pair.fragment_start + pair.insert_size);
  }
}

TEST(PairedSimulator, InsertDistributionCentred) {
  Fixture f;
  readsim::PairedReadSimSpec spec;
  spec.base.read_length = 80;
  spec.base.num_reads = 800;
  spec.base.seed = 7;
  spec.insert_mean = 320;
  spec.insert_sd = 25;
  const auto set = readsim::PairedReadSimulator(spec).generate(f.reference);
  double sum = 0.0;
  for (const auto& pair : set.pairs) sum += pair.insert_size;
  EXPECT_NEAR(sum / 800.0, 320.0, 5.0);
}

TEST(PairedSimulator, RejectsInfeasibleSpecs) {
  Fixture f(2000, 2);
  readsim::PairedReadSimSpec tight;
  tight.base.read_length = 200;
  tight.insert_mean = 300;  // < 2 reads
  EXPECT_THROW(readsim::PairedReadSimulator(tight).generate(f.reference),
               std::invalid_argument);
  readsim::PairedReadSimSpec huge;
  huge.base.read_length = 100;
  huge.insert_mean = 3000;
  EXPECT_THROW(readsim::PairedReadSimulator(huge).generate(
                   genome::generate_uniform(1000, 1)),
               std::invalid_argument);
}

TEST(PairedSimulator, QualitiesEmitted) {
  Fixture f;
  readsim::PairedReadSimSpec spec;
  spec.base.read_length = 50;
  spec.base.num_reads = 10;
  spec.base.emit_qualities = true;
  const auto set = readsim::PairedReadSimulator(spec).generate(f.reference);
  for (const auto& pair : set.pairs) {
    EXPECT_EQ(pair.read1.qualities.size(), 50U);
    EXPECT_EQ(pair.read2.qualities.size(), 50U);
  }
}

// --- Paired aligner ------------------------------------------------------------

TEST(PairedAligner, ProperPairsRecovered) {
  Fixture f;
  readsim::PairedReadSimSpec spec;
  spec.base.read_length = 100;
  spec.base.num_reads = 60;
  spec.base.population_variation_rate = 0.001;
  spec.base.sequencing_error_rate = 0.002;
  spec.base.seed = 13;
  const auto set = readsim::PairedReadSimulator(spec).generate(f.reference);

  PairedOptions options;
  options.single.inexact.max_diffs = 2;
  options.insert_mean = 300;
  options.insert_sd = 30;
  const PairedAligner aligner(f.fm, options);

  std::size_t proper = 0, origin_ok = 0;
  for (const auto& pair : set.pairs) {
    const auto result = aligner.align_pair(pair.read1.bases, pair.read2.bases);
    if (result.cls != PairClass::kProperPair) continue;
    ++proper;
    ASSERT_TRUE(result.pair.has_value());
    const auto& pp = *result.pair;
    if (pp.first.position == pair.read1.origin &&
        pp.second.position == pair.read2.origin) {
      ++origin_ok;
    }
    // Insert within the configured window.
    EXPECT_GE(pp.observed_insert, 180U);
    EXPECT_LE(pp.observed_insert, 420U);
  }
  EXPECT_GT(proper, 50U);            // nearly all pairs are proper
  EXPECT_GE(origin_ok, proper - 3);  // and anchored at the truth
}

TEST(PairedAligner, WrongDistancePairIsDiscordant) {
  Fixture f;
  PairedOptions options;
  options.insert_mean = 300;
  options.insert_sd = 10;
  options.max_insert_deviations = 3.0;
  options.single.inexact.max_diffs = 0;
  const PairedAligner aligner(f.fm, options);
  // Mates 5 kb apart: both align, no proper pairing.
  const auto r1 = f.reference.slice(10000, 10100);
  const auto r2 =
      genome::reverse_complement(f.reference.slice(15000, 15100));
  const auto result = aligner.align_pair(r1, r2);
  EXPECT_EQ(result.cls, PairClass::kDiscordant);
  EXPECT_FALSE(result.pair.has_value());
}

TEST(PairedAligner, SameStrandPairIsDiscordant) {
  Fixture f;
  PairedOptions options;
  options.single.inexact.max_diffs = 0;
  options.single.try_reverse_complement = false;
  const PairedAligner aligner(f.fm, options);
  const auto r1 = f.reference.slice(20000, 20100);
  const auto r2 = f.reference.slice(20200, 20300);  // forward, not revcomp
  const auto result = aligner.align_pair(r1, r2);
  EXPECT_EQ(result.cls, PairClass::kDiscordant);
}

TEST(PairedAligner, OneMateClass) {
  Fixture f;
  PairedOptions options;
  options.single.inexact.max_diffs = 0;
  const PairedAligner aligner(f.fm, options);
  const auto r1 = f.reference.slice(30000, 30100);
  // Mate 2: random garbage that cannot align exactly.
  util::Xoshiro256 rng(3);
  std::vector<Base> junk;
  for (int i = 0; i < 100; ++i) junk.push_back(static_cast<Base>(rng.bounded(4)));
  const auto result = aligner.align_pair(r1, junk);
  EXPECT_EQ(result.cls, PairClass::kOneMate);
  EXPECT_TRUE(result.mate1.aligned());
  EXPECT_FALSE(result.mate2.aligned());
}

TEST(PairedAligner, NeitherClass) {
  Fixture f;
  PairedOptions options;
  options.single.inexact.max_diffs = 0;
  const PairedAligner aligner(f.fm, options);
  util::Xoshiro256 rng(4);
  std::vector<Base> junk1, junk2;
  for (int i = 0; i < 100; ++i) {
    junk1.push_back(static_cast<Base>(rng.bounded(4)));
    junk2.push_back(static_cast<Base>(rng.bounded(4)));
  }
  EXPECT_EQ(aligner.align_pair(junk1, junk2).cls, PairClass::kNeither);
}

TEST(PairedAligner, InsertConstraintDisambiguatesRepeats) {
  // Plant the same 100-bp block at two loci; mate 2 is unique. Alone, mate 1
  // is ambiguous (two exact hits); the insert constraint picks the copy
  // that pairs with mate 2.
  genome::SyntheticGenomeSpec spec;
  spec.length = 50000;
  spec.seed = 19;
  spec.repeat_fraction = 0.0;
  auto reference = genome::generate_reference(spec);
  for (std::size_t k = 0; k < 100; ++k) {
    reference.set(40000 + k, reference.at(5000 + k));  // duplicate the block
  }
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
  PairedOptions options;
  options.single.inexact.max_diffs = 0;
  options.insert_mean = 300;
  options.insert_sd = 30;
  const PairedAligner aligner(fm, options);

  const auto mate1 = reference.slice(5000, 5100);  // ambiguous block
  const auto mate2 =
      genome::reverse_complement(reference.slice(5200, 5300));  // unique
  const auto single = aligner.align_pair(mate1, mate2);
  ASSERT_EQ(single.cls, PairClass::kProperPair);
  EXPECT_EQ(single.pair->first.position, 5000U);  // not the 40000 copy
  EXPECT_GT(single.mate1.hits.size(), 1U);        // it *was* ambiguous
}

}  // namespace
}  // namespace pim::align
