#include "src/pim/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace pim::hw {
namespace {

TEST(PipelineModel, StageTimesPositive) {
  const TimingEnergyModel timing;
  const PipelineModel model(timing);
  const StageTimes t = model.stage_times();
  EXPECT_GT(t.xnor_ns, 0.0);
  EXPECT_GT(t.dpu_ns, 0.0);
  EXPECT_GT(t.count_write_ns, 0.0);
  EXPECT_GT(t.im_add_ns, 0.0);
  EXPECT_GT(t.readout_ns, 0.0);
  EXPECT_NEAR(t.serial_ns(), t.array_work_ns() + t.dpu_ns, 1e-12);
  EXPECT_NEAR(t.movement_ns(), t.count_write_ns + t.readout_ns, 1e-12);
}

TEST(PipelineModel, BadConfigThrows) {
  const TimingEnergyModel timing;
  PipelineConfig cfg;
  cfg.add_batch_columns = 0;
  EXPECT_THROW(PipelineModel(timing, cfg), std::invalid_argument);
  const PipelineModel model(timing);
  EXPECT_THROW(model.evaluate(0), std::invalid_argument);
}

TEST(PipelineModel, Pd1IsSerial) {
  const TimingEnergyModel timing;
  const PipelineModel model(timing);
  const PipelineReport r = model.evaluate(1);
  EXPECT_DOUBLE_EQ(r.initiation_interval_ns, r.serial_lfm_ns);
  EXPECT_DOUBLE_EQ(r.speedup, 1.0);
}

TEST(PipelineModel, Pd2GivesPaperFortyPercentGain) {
  // The paper: "our pipeline technique with Pd=2 has improved the
  // performance by ~40% compared to the baseline design".
  const TimingEnergyModel timing;
  const PipelineModel model(timing);
  const PipelineReport r = model.evaluate(2);
  EXPECT_NEAR(r.speedup, 1.4, 0.1);
}

TEST(PipelineModel, SpeedupMonotoneNonDecreasingAndSaturating) {
  const TimingEnergyModel timing;
  const PipelineModel model(timing);
  double prev = 0.0;
  for (std::uint32_t pd = 1; pd <= 8; ++pd) {
    const double s = model.evaluate(pd).speedup;
    EXPECT_GE(s, prev - 1e-12) << "pd=" << pd;
    prev = s;
  }
  // The carry-serial adder caps the gains (Fig. 9c's diminishing returns).
  EXPECT_NEAR(model.evaluate(8).speedup, model.evaluate(4).speedup, 0.5);
}

TEST(PipelineModel, MovementFractionUnderPaperBound) {
  // Fig. 10b: PIM-Aligner spends < ~18% of time on memory access/transfer.
  const TimingEnergyModel timing;
  const PipelineModel model(timing);
  for (std::uint32_t pd = 1; pd <= 4; ++pd) {
    const PipelineReport r = model.evaluate(pd);
    EXPECT_GT(r.movement_fraction, 0.0);
    EXPECT_LT(r.movement_fraction, 0.18) << "pd=" << pd;
  }
}

TEST(PipelineModel, UtilizationMatchesOccupancyLaw) {
  const TimingEnergyModel timing;
  const PipelineModel model(timing);
  EXPECT_NEAR(model.evaluate(1).utilization, 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(model.evaluate(2).utilization, 1.0 - std::exp(-2.0), 1e-12);
  // Pd=2 lands at the paper's "up to ~86%" RUR.
  EXPECT_NEAR(model.evaluate(2).utilization, 0.865, 0.01);
}

TEST(PipelineModel, EnergyPerLfmGrowsWithPd) {
  const TimingEnergyModel timing;
  const PipelineModel model(timing);
  const double e1 = model.evaluate(1).energy_per_lfm_pj;
  const double e2 = model.evaluate(2).energy_per_lfm_pj;
  const double e4 = model.evaluate(4).energy_per_lfm_pj;
  EXPECT_GT(e1, 0.0);
  EXPECT_GT(e2, e1);  // duplication costs energy
  EXPECT_GT(e4, e2);
}

TEST(PipelineModel, LargerBatchLowersPerLfmCost) {
  const TimingEnergyModel timing;
  PipelineConfig small, large;
  small.add_batch_columns = 4;
  large.add_batch_columns = 64;
  const PipelineModel a(timing, small), b(timing, large);
  EXPECT_GT(a.evaluate(1).serial_lfm_ns, b.evaluate(1).serial_lfm_ns);
  EXPECT_GT(a.evaluate(1).energy_per_lfm_pj, b.evaluate(1).energy_per_lfm_pj);
}

TEST(PipelineModel, RatePerGroupConsistentWithIi) {
  const TimingEnergyModel timing;
  const PipelineModel model(timing);
  const PipelineReport r = model.evaluate(2);
  EXPECT_NEAR(r.lfm_rate_per_group_hz * r.initiation_interval_ns / 1e9, 1.0,
              1e-9);
}

}  // namespace
}  // namespace pim::hw
