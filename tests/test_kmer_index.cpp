#include "src/align/kmer_index.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/align/naive_search.h"
#include "src/align/seed_extend.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

TEST(KmerIndex, BuildValidation) {
  const auto reference = genome::generate_uniform(100, 1);
  EXPECT_THROW(KmerIndex::build(reference, 0), std::invalid_argument);
  EXPECT_THROW(KmerIndex::build(reference, 14), std::invalid_argument);
  EXPECT_THROW(KmerIndex::build(genome::PackedSequence("ACG"), 8),
               std::invalid_argument);
  EXPECT_NO_THROW(KmerIndex::build(reference, 8));
}

TEST(KmerIndex, LookupSmallExample) {
  const PackedSequence reference("ACGTACGTAC");
  const auto index = KmerIndex::build(reference, 4);
  const std::vector<std::uint64_t> acgt = {0, 4};
  EXPECT_EQ(index.lookup(genome::encode("ACGT")), acgt);
  EXPECT_EQ(index.count(genome::encode("ACGT")), 2U);
  const std::vector<std::uint64_t> cgta = {1, 5};
  EXPECT_EQ(index.lookup(genome::encode("CGTA")), cgta);
  EXPECT_TRUE(index.lookup(genome::encode("TTTT")).empty());
  EXPECT_THROW(index.lookup(genome::encode("ACG")), std::invalid_argument);
}

// Property: lookups match the brute-force scan for every sampled k-mer.
class KmerProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KmerProperty, MatchesNaiveScan) {
  const std::uint32_t k = GetParam();
  genome::SyntheticGenomeSpec spec;
  spec.length = 3000;
  spec.seed = 100 + k;
  spec.repeat_fraction = 0.5;
  const auto reference = genome::generate_reference(spec);
  const auto index = KmerIndex::build(reference, k);
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Base> seed;
    if (trial % 2 == 0) {
      const std::size_t start = rng.bounded(reference.size() - k);
      seed = reference.slice(start, start + k);
    } else {
      for (std::uint32_t i = 0; i < k; ++i) {
        seed.push_back(static_cast<Base>(rng.bounded(4)));
      }
    }
    EXPECT_EQ(index.lookup(seed), naive_exact_positions(reference, seed))
        << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KmerProperty, ::testing::Values(4U, 8U, 11U, 13U));

TEST(KmerIndex, SearcherAdapterDrivesSeedExtend) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 100000;
  spec.seed = 9;
  const auto reference = genome::generate_reference(spec);
  const auto kmer = KmerIndex::build(reference, 12);
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});

  SeedExtendOptions opt;
  opt.seed_length = 12;  // must equal k for the k-mer substrate
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t start = rng.bounded(reference.size() - 600);
    auto read = reference.slice(start, start + 600);
    read[100] = static_cast<Base>((static_cast<int>(read[100]) + 1) % 4);
    read[450] = static_cast<Base>((static_cast<int>(read[450]) + 2) % 4);
    const auto via_kmer = seed_extend_core(kmer, reference, read, opt);
    const auto via_fm = seed_extend_align(fm, reference, read, opt);
    ASSERT_EQ(via_kmer.hits.size(), via_fm.hits.size()) << trial;
    for (std::size_t h = 0; h < via_fm.hits.size(); ++h) {
      EXPECT_EQ(via_kmer.hits[h].ref_begin, via_fm.hits[h].ref_begin);
      EXPECT_EQ(via_kmer.hits[h].score, via_fm.hits[h].score);
    }
  }
}

TEST(KmerIndex, WrongSeedLengthIsNotFoundInAdapter) {
  const auto reference = genome::generate_uniform(1000, 3);
  const auto index = KmerIndex::build(reference, 12);
  const auto result = index.search(genome::encode("ACGTACGT"));  // len 8
  EXPECT_FALSE(result.found());
}

TEST(KmerIndex, MemoryScalesWithBucketCount) {
  const auto reference = genome::generate_uniform(5000, 5);
  const auto small_k = KmerIndex::build(reference, 8);
  const auto large_k = KmerIndex::build(reference, 12);
  // 4^12 buckets dwarf 4^8: the k-mer table's memory/flexibility trade
  // versus the FM-index.
  EXPECT_GT(large_k.memory_bytes(), small_k.memory_bytes() * 10);
}

}  // namespace
}  // namespace pim::align
