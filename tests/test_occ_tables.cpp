#include "src/index/occ_table.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/genome/synthetic_genome.h"

namespace pim::index {
namespace {

using genome::Base;
using genome::PackedSequence;

struct Fixture {
  PackedSequence text;
  Bwt bwt;
  explicit Fixture(const std::string& s) : text(s) {
    bwt = build_bwt(text, build_suffix_array(text));
  }
};

TEST(CountTable, PaperExample) {
  // S = TGCTA: occurrences A=1, C=1, G=1, T=2.
  // Count(nt) counts '$' plus all smaller bases.
  const Fixture f("TGCTA");
  const CountTable counts(f.bwt);
  EXPECT_EQ(counts.occurrences(Base::A), 1U);
  EXPECT_EQ(counts.occurrences(Base::C), 1U);
  EXPECT_EQ(counts.occurrences(Base::G), 1U);
  EXPECT_EQ(counts.occurrences(Base::T), 2U);
  EXPECT_EQ(counts.count(Base::A), 1U);
  EXPECT_EQ(counts.count(Base::C), 2U);
  EXPECT_EQ(counts.count(Base::G), 3U);
  EXPECT_EQ(counts.count(Base::T), 4U);
}

TEST(OccTable, ManualCheckOnPaperExample) {
  // BWT(TGCTA$) = ATGTC$.
  const Fixture f("TGCTA");
  const OccTable occ(f.bwt);
  EXPECT_EQ(occ.occ(Base::A, 0), 0U);
  EXPECT_EQ(occ.occ(Base::A, 1), 1U);
  EXPECT_EQ(occ.occ(Base::A, 6), 1U);
  EXPECT_EQ(occ.occ(Base::T, 2), 1U);
  EXPECT_EQ(occ.occ(Base::T, 4), 2U);
  EXPECT_EQ(occ.occ(Base::G, 3), 1U);
  EXPECT_EQ(occ.occ(Base::C, 5), 1U);
  EXPECT_EQ(occ.occ(Base::C, 4), 0U);
}

TEST(OccTable, SentinelRowNotCounted) {
  const Fixture f("TGCTA");
  const OccTable occ(f.bwt);
  // Row 5 is the sentinel (stored as dummy A): Occ(A) must not grow there.
  EXPECT_EQ(occ.occ(Base::A, 5), occ.occ(Base::A, 6));
}

TEST(SampledOccTable, RejectsZeroBucket) {
  const Fixture f("ACGT");
  EXPECT_THROW(SampledOccTable(f.bwt, 0), std::invalid_argument);
}

// Property: sampled occ equals the full table for every position, base and
// several bucket widths (including widths that do and do not divide n+1).
class SampledOccProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SampledOccProperty, MatchesFullTable) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 1000;
  spec.seed = 5;
  spec.repeat_fraction = 0.4;
  const PackedSequence text = genome::generate_reference(spec);
  const Bwt bwt = build_bwt(text, build_suffix_array(text));
  const OccTable full(bwt);
  const SampledOccTable sampled(bwt, GetParam());
  for (std::size_t i = 0; i <= bwt.size(); ++i) {
    for (const auto nt : genome::kAllBases) {
      ASSERT_EQ(sampled.occ(bwt, nt, i), full.occ(nt, i))
          << "d=" << GetParam() << " i=" << i
          << " nt=" << genome::to_char(nt);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BucketWidths, SampledOccProperty,
                         ::testing::Values(1U, 2U, 3U, 16U, 64U, 128U, 333U));

TEST(SampledOccTable, CountMatchIsResidualOnly) {
  const Fixture f("TGCTA");
  const SampledOccTable sampled(f.bwt, 4);
  // i=5: bucket start 4, BWT[4]='C': count_match(C,5)=1, others 0.
  EXPECT_EQ(sampled.count_match(f.bwt, Base::C, 5), 1U);
  EXPECT_EQ(sampled.count_match(f.bwt, Base::A, 5), 0U);
  // On a checkpoint the residual is zero by definition.
  EXPECT_EQ(sampled.count_match(f.bwt, Base::C, 4), 0U);
}

TEST(SampledOccTable, MemoryShrinksWithBucketWidth) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 4096;
  spec.seed = 9;
  const PackedSequence text = genome::generate_reference(spec);
  const Bwt bwt = build_bwt(text, build_suffix_array(text));
  const SampledOccTable fine(bwt, 16);
  const SampledOccTable coarse(bwt, 128);
  EXPECT_GT(fine.memory_bytes(), coarse.memory_bytes());
  // Factor-of-d reduction claim from the paper (approximately, +-1 bucket).
  EXPECT_NEAR(static_cast<double>(fine.memory_bytes()) /
                  static_cast<double>(coarse.memory_bytes()),
              8.0, 0.5);
}

TEST(OccTable, OutOfRangeThrows) {
  const Fixture f("ACGT");
  const SampledOccTable sampled(f.bwt, 2);
  EXPECT_THROW(sampled.occ(f.bwt, Base::A, f.bwt.size() + 1),
               std::out_of_range);
}

}  // namespace
}  // namespace pim::index
