// End-to-end integration: synthetic genome -> ART-like reads -> two-stage
// alignment on BOTH the software FM-index path and the PIM hardware path,
// checking outcome equality, ground-truth recovery, and hardware accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/align/aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/controller.h"
#include "src/pim/platform.h"
#include "src/readsim/read_simulator.h"

namespace {

using pim::genome::Base;

struct Pipeline {
  pim::genome::PackedSequence reference;
  pim::index::FmIndex fm;
  pim::hw::TimingEnergyModel timing;
  std::unique_ptr<pim::hw::PimAlignerPlatform> platform;
  std::vector<std::vector<Base>> reads;
  std::vector<pim::readsim::SimulatedRead> truth;

  Pipeline(std::size_t genome_len, std::size_t num_reads,
           std::uint32_t read_len, std::uint64_t seed) {
    pim::genome::SyntheticGenomeSpec gspec;
    gspec.length = genome_len;
    gspec.seed = seed;
    reference = pim::genome::generate_reference(gspec);
    fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
    platform = std::make_unique<pim::hw::PimAlignerPlatform>(fm, timing);

    pim::readsim::ReadSimSpec rspec;
    rspec.read_length = read_len;
    rspec.num_reads = num_reads;
    rspec.population_variation_rate = 0.001;
    rspec.sequencing_error_rate = 0.002;
    rspec.seed = seed + 1;
    const auto set = pim::readsim::ReadSimulator(rspec).generate(reference);
    for (const auto& r : set.reads) {
      reads.push_back(r.bases);
      truth.push_back(r);
    }
  }
};

TEST(Integration, SoftwareAndHardwarePathsAgreePerRead) {
  Pipeline p(40000, 40, 64, 101);
  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const pim::align::Aligner software(p.fm, options);
  pim::hw::PimBatchDriver hardware(*p.platform, options);

  for (std::size_t i = 0; i < p.reads.size(); ++i) {
    const auto sw = software.align(p.reads[i]);
    const auto hw_result = hardware.align(p.reads[i]);
    ASSERT_EQ(hw_result.stage, sw.stage) << "read " << i;
    ASSERT_EQ(hw_result.hits.size(), sw.hits.size()) << "read " << i;
    for (std::size_t h = 0; h < sw.hits.size(); ++h) {
      EXPECT_EQ(hw_result.hits[h].position, sw.hits[h].position);
      EXPECT_EQ(hw_result.hits[h].diffs, sw.hits[h].diffs);
      EXPECT_EQ(hw_result.hits[h].strand, sw.hits[h].strand);
    }
  }
}

TEST(Integration, GroundTruthOriginRecovered) {
  Pipeline p(60000, 60, 80, 202);
  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  options.max_hits = 0;  // unlimited, so the origin cannot be capped away
  const pim::align::Aligner aligner(p.fm, options);
  std::size_t recovered = 0, aligned = 0;
  for (std::size_t i = 0; i < p.reads.size(); ++i) {
    const auto result = aligner.align(p.reads[i]);
    if (!result.aligned()) continue;
    ++aligned;
    for (const auto& hit : result.hits) {
      if (hit.position == p.truth[i].origin) {
        ++recovered;
        break;
      }
    }
  }
  ASSERT_GT(aligned, p.reads.size() * 8 / 10);
  // Nearly every aligned read reports its true origin among its hits.
  EXPECT_GE(recovered, aligned * 9 / 10);
}

TEST(Integration, StageMixMatchesPaperExpectation) {
  Pipeline p(60000, 120, 100, 303);
  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  pim::hw::PimBatchDriver driver(*p.platform, options);
  const auto report = driver.run(p.reads);
  EXPECT_EQ(report.stats.reads_total, p.reads.size());
  // ~70% exact at the paper's error rates (loose bounds for 120 reads).
  EXPECT_GT(report.stats.exact_fraction(), 0.55);
  EXPECT_LT(report.stats.exact_fraction(), 0.92);
  // Hardware accounting is live.
  EXPECT_GT(report.hardware.lfm_calls, 0U);
  EXPECT_GT(report.busy_ns, 0.0);
  EXPECT_GT(report.energy_pj, 0.0);
}

TEST(Integration, EnergyScalesWithWork) {
  Pipeline p(30000, 0, 50, 404);
  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 0;
  pim::hw::PimBatchDriver driver(*p.platform, options);

  std::vector<std::vector<Base>> small_batch, big_batch;
  for (int i = 0; i < 4; ++i) {
    small_batch.push_back(
        p.reference.slice(100 + 97 * static_cast<std::size_t>(i),
                          150 + 97 * static_cast<std::size_t>(i)));
  }
  big_batch = small_batch;
  for (int rep = 0; rep < 3; ++rep) {
    big_batch.insert(big_batch.end(), small_batch.begin(), small_batch.end());
  }
  const auto small_report = driver.run(small_batch);
  const auto big_report = driver.run(big_batch);
  EXPECT_NEAR(big_report.energy_pj / small_report.energy_pj, 4.0, 0.2);
}

TEST(Integration, SampledSaStillAlignsCorrectly) {
  // Memory/latency trade-off: an 8x-sampled SA returns identical hits.
  Pipeline p(20000, 0, 50, 505);
  const auto sampled_fm = pim::index::FmIndex::build(
      p.reference, {.bucket_width = 128, .sa_sample_rate = 8});
  const pim::align::Aligner full(p.fm), sampled(sampled_fm);
  for (int i = 0; i < 20; ++i) {
    const std::size_t start = 300 + static_cast<std::size_t>(i) * 611;
    const auto read = p.reference.slice(start, start + 44);
    const auto a = full.align(read);
    const auto b = sampled.align(read);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].position, b.hits[h].position);
    }
  }
}

}  // namespace
