#include "src/align/bi_index.h"

#include <gtest/gtest.h>

#include "src/align/inexact_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

struct Fixture {
  PackedSequence text;
  BiFmIndex bi;
  explicit Fixture(std::size_t length = 4000, std::uint64_t seed = 3) {
    genome::SyntheticGenomeSpec spec;
    spec.length = length;
    spec.seed = seed;
    spec.repeat_fraction = 0.4;
    text = genome::generate_reference(spec);
    bi = BiFmIndex::build(text, {.bucket_width = 64});
  }
};

TEST(BiFmIndex, ReverseIndexIsOverReversedText) {
  const Fixture f(500);
  EXPECT_EQ(f.bi.forward().reference_size(), f.bi.reverse().reference_size());
  // A pattern occurring forward must occur reversed in the reverse index.
  const auto chunk = f.text.slice(100, 130);
  std::vector<Base> reversed_chunk(chunk.rbegin(), chunk.rend());
  index::SaInterval fwd = f.bi.forward().whole_interval();
  for (auto it = chunk.rbegin(); it != chunk.rend(); ++it) {
    fwd = f.bi.forward().extend(fwd, *it);
  }
  index::SaInterval rev = f.bi.reverse().whole_interval();
  for (auto it = reversed_chunk.rbegin(); it != reversed_chunk.rend(); ++it) {
    rev = f.bi.reverse().extend(rev, *it);
  }
  EXPECT_TRUE(fwd.valid());
  EXPECT_TRUE(rev.valid());
  EXPECT_EQ(fwd.count(), rev.count());  // same occurrence multiset size
}

// The central property: the O(m) reverse-index D equals the O(m^2) restart
// D for planted, mutated and random reads.
class BiDEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BiDEquivalence, DArraysIdentical) {
  const Fixture f(3000, static_cast<std::uint64_t>(GetParam()) + 10);
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Base> read;
    const std::size_t len = 15 + rng.bounded(40);
    if (trial % 3 == 0) {
      for (std::size_t i = 0; i < len; ++i) {
        read.push_back(static_cast<Base>(rng.bounded(4)));
      }
    } else {
      const std::size_t start = rng.bounded(f.text.size() - len);
      read = f.text.slice(start, start + len);
      for (int m = 0; m < trial % 4; ++m) {
        read[rng.bounded(read.size())] = static_cast<Base>(rng.bounded(4));
      }
    }
    EXPECT_EQ(f.bi.compute_lower_bound_d(read),
              compute_lower_bound_d(f.bi.forward(), read))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BiDEquivalence, ::testing::Range(0, 8));

TEST(BiFmIndex, BidirectionalSearchSameResults) {
  const Fixture f;
  util::Xoshiro256 rng(7);
  InexactOptions opt;
  opt.max_diffs = 2;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t start = rng.bounded(f.text.size() - 30);
    auto read = f.text.slice(start, start + 30);
    read[7] = static_cast<Base>(rng.bounded(4));
    read[21] = static_cast<Base>(rng.bounded(4));
    const auto classic = inexact_search(f.bi.forward(), read, opt);
    const auto bidir = inexact_search_bidirectional(f.bi, read, opt);
    ASSERT_EQ(bidir.hits.size(), classic.hits.size());
    for (std::size_t h = 0; h < classic.hits.size(); ++h) {
      EXPECT_EQ(bidir.hits[h].interval, classic.hits[h].interval);
      EXPECT_EQ(bidir.hits[h].diffs, classic.hits[h].diffs);
    }
    // Same pruning quality => same (or fewer, never more) explored states.
    EXPECT_EQ(bidir.states_explored, classic.states_explored);
  }
}

TEST(BiFmIndex, EmptyReadHandled) {
  const Fixture f(300);
  const auto result = inexact_search_bidirectional(f.bi, {}, {});
  ASSERT_EQ(result.hits.size(), 1U);
  EXPECT_EQ(result.hits[0].interval, f.bi.forward().whole_interval());
  EXPECT_TRUE(f.bi.compute_lower_bound_d({}).empty());
}

TEST(BiFmIndex, DForAbsentChunksCounts) {
  // A read made of two chunks absent from the reference gets D rising to 2.
  const Fixture f(2000, 5);
  util::Xoshiro256 rng(17);
  std::vector<Base> read;
  for (int i = 0; i < 60; ++i) read.push_back(static_cast<Base>(rng.bounded(4)));
  const auto d = f.bi.compute_lower_bound_d(read);
  EXPECT_GE(d.back(), 1U);  // 60 random bases almost surely miss
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_GE(d[i], d[i - 1]);
    EXPECT_LE(d[i] - d[i - 1], 1U);
  }
}

}  // namespace
}  // namespace pim::align
