#include "src/pim/sense_amp.h"

#include <gtest/gtest.h>

namespace pim::hw {
namespace {

TEST(SenseAmp, ReferencesOrderedBetweenLevels) {
  const SotMramModel model;
  const ReconfigurableSenseAmp sa(model);
  const auto& refs = sa.references();
  std::vector<CellResistances> three(3, model.nominal());
  // Each reference must sit strictly between the two levels it separates.
  EXPECT_GT(refs.r_or3_ohm, model.equivalent_resistance(three, 0b000));
  EXPECT_LT(refs.r_or3_ohm, model.equivalent_resistance(three, 0b001));
  EXPECT_GT(refs.r_maj_ohm, model.equivalent_resistance(three, 0b001));
  EXPECT_LT(refs.r_maj_ohm, model.equivalent_resistance(three, 0b011));
  EXPECT_GT(refs.r_and3_ohm, model.equivalent_resistance(three, 0b011));
  EXPECT_LT(refs.r_and3_ohm, model.equivalent_resistance(three, 0b111));
  // And they are mutually ordered OR3 < MAJ < AND3.
  EXPECT_LT(refs.r_or3_ohm, refs.r_maj_ohm);
  EXPECT_LT(refs.r_maj_ohm, refs.r_and3_ohm);
}

TEST(SenseAmp, MemoryReadResolvesBothStates) {
  const SotMramModel model;
  const ReconfigurableSenseAmp sa(model);
  EXPECT_FALSE(sa.sense_memory(model.nominal(), /*stored_ap=*/false));
  EXPECT_TRUE(sa.sense_memory(model.nominal(), /*stored_ap=*/true));
}

TEST(SenseAmp, IdealTruthTables) {
  for (int mask = 0; mask < 8; ++mask) {
    const bool a = mask & 1, b = mask & 2, c = mask & 4;
    const int ones = a + b + c;
    const auto out = ReconfigurableSenseAmp::ideal_outputs(a, b, c);
    EXPECT_EQ(out.and3, ones == 3);
    EXPECT_EQ(out.maj3, ones >= 2);
    EXPECT_EQ(out.or3, ones >= 1);
    EXPECT_EQ(out.xor3, ones % 2 == 1);
  }
}

TEST(SenseAmp, XorViaControlTransistorsIdentity) {
  // The circuit computes XOR3 = (OR3 & ~MAJ) | AND3; check the identity
  // holds on the ideal outputs for all 8 input combinations.
  for (int mask = 0; mask < 8; ++mask) {
    const bool a = mask & 1, b = mask & 2, c = mask & 4;
    const auto out = ReconfigurableSenseAmp::ideal_outputs(a, b, c);
    EXPECT_EQ(out.xor3, (out.or3 && !out.maj3) || out.and3);
  }
}

TEST(SenseAmp, NominalTripleSenseMatchesTruthTable) {
  const SotMramModel model;
  const ReconfigurableSenseAmp sa(model);
  std::vector<CellResistances> cells(3, model.nominal());
  for (std::uint32_t mask = 0; mask < 8; ++mask) {
    EXPECT_TRUE(sa.triple_sense_correct(cells, mask)) << "mask=" << mask;
  }
}

TEST(SenseAmp, ReliabilityAtDefaultToxIsPoor) {
  // At tox=1.5 nm the MAJ3 margin is a few mV; with sigma_RA=2% and
  // sigma_TMR=5% a visible fraction of triple senses misfire — the
  // motivation for the paper's thickness increase.
  const SotMramModel model;  // tox = 1.5 nm
  const auto report = monte_carlo_logic_reliability(model, 20000, 3);
  EXPECT_EQ(report.trials, 20000U);
  EXPECT_GT(report.failure_rate(), 0.001);
}

TEST(SenseAmp, ThickerToxRestoresReliability) {
  SotMramParams p;
  p.tox_nm = 2.0;
  const SotMramModel model(p);
  const auto report = monte_carlo_logic_reliability(model, 20000, 3);
  // The paper: "~45 mV increase in the sense margin which considerably
  // enhances the reliability".
  EXPECT_LT(report.failure_rate(), 0.0005);
}

TEST(SenseAmp, ReliabilityDeterministicInSeed) {
  const SotMramModel model;
  const auto a = monte_carlo_logic_reliability(model, 2000, 9);
  const auto b = monte_carlo_logic_reliability(model, 2000, 9);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(SenseAmp, EmptyReliabilityReport) {
  ReliabilityReport r;
  EXPECT_DOUBLE_EQ(r.failure_rate(), 0.0);
}

}  // namespace
}  // namespace pim::hw
