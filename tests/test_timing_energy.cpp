#include "src/pim/timing_energy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pim::hw {
namespace {

TEST(TimingEnergy, DefaultsExposeArrayOrganisation) {
  const TimingEnergyModel m;
  EXPECT_EQ(m.rows(), 512U);
  EXPECT_EQ(m.cols(), 256U);
  EXPECT_GT(m.clock_ghz(), 0.0);
}

TEST(TimingEnergy, OpCostsPositive) {
  const TimingEnergyModel m;
  for (const auto op : {SubArrayOp::kMemRead, SubArrayOp::kMemWrite,
                        SubArrayOp::kTripleSense, SubArrayOp::kDpuWord}) {
    const OpCost c = m.op_cost(op);
    EXPECT_GT(c.latency_ns, 0.0);
    EXPECT_GT(c.energy_pj, 0.0);
  }
}

TEST(TimingEnergy, TripleSenseSlowerThanRead) {
  // Three parallel references shrink margins, so the triple sense needs a
  // longer integration window than a plain read.
  const TimingEnergyModel m;
  EXPECT_GT(m.op_cost(SubArrayOp::kTripleSense).latency_ns,
            m.op_cost(SubArrayOp::kMemRead).latency_ns);
}

TEST(TimingEnergy, ImAddComposition) {
  const TimingEnergyModel m;
  const OpCost bitcost =
      m.op_cost(SubArrayOp::kTripleSense) + m.op_cost(SubArrayOp::kMemWrite) +
      m.op_cost(SubArrayOp::kMemWrite);
  const OpCost add32 = m.im_add_cost(32);
  EXPECT_NEAR(add32.latency_ns,
              bitcost.latency_ns * 32 +
                  m.op_cost(SubArrayOp::kMemWrite).latency_ns,
              1e-9);
  const OpCost add16 = m.im_add_cost(16);
  EXPECT_LT(add16.latency_ns, add32.latency_ns);
  EXPECT_LT(add16.energy_pj, add32.energy_pj);
}

TEST(TimingEnergy, XnorMatchIsTriplePlusDpu) {
  const TimingEnergyModel m;
  const OpCost want =
      m.op_cost(SubArrayOp::kTripleSense) + m.op_cost(SubArrayOp::kDpuWord);
  const OpCost got = m.xnor_match_cost();
  EXPECT_DOUBLE_EQ(got.latency_ns, want.latency_ns);
  EXPECT_DOUBLE_EQ(got.energy_pj, want.energy_pj);
}

TEST(TimingEnergy, ConfigOverrides) {
  util::Config over;
  over.set_double("ReadLatencyNs", 9.0);
  over.set_int("RowsPerSubarray", 128);
  const TimingEnergyModel m(over);
  EXPECT_DOUBLE_EQ(m.op_cost(SubArrayOp::kMemRead).latency_ns, 9.0);
  EXPECT_EQ(m.rows(), 128U);
  // Untouched keys keep their defaults.
  EXPECT_EQ(m.cols(), 256U);
}

TEST(TimingEnergy, BadOrganisationThrows) {
  util::Config over;
  over.set_int("RowsPerSubarray", 0);
  EXPECT_THROW(TimingEnergyModel{over}, std::invalid_argument);
  util::Config clock;
  clock.set_double("ClockGHz", -1.0);
  EXPECT_THROW(TimingEnergyModel{clock}, std::invalid_argument);
}

TEST(TimingEnergy, AreaModelUnderTenPercentOverhead) {
  // The paper's claim: compute support costs <10% of chip area.
  const TimingEnergyModel m;
  EXPECT_LT(m.compute_area_overhead_fraction(), 0.10);
  EXPECT_GT(m.subarray_area_mm2(), m.memory_subarray_area_mm2());
  EXPECT_NEAR(m.subarray_area_mm2() / m.memory_subarray_area_mm2(),
              1.0 + m.compute_area_overhead_fraction(), 1e-12);
}

TEST(TimingEnergy, AreaScalesWithCellCount) {
  util::Config big;
  big.set_int("RowsPerSubarray", 1024);
  const TimingEnergyModel base, doubled(big);
  EXPECT_NEAR(doubled.subarray_area_mm2() / base.subarray_area_mm2(), 2.0,
              1e-9);
}

TEST(TimingEnergy, DefaultConfigRoundTrips) {
  const util::Config cfg = TimingEnergyModel::default_config();
  const TimingEnergyModel m(cfg);
  EXPECT_EQ(m.rows(), 512U);
  // Every default key survives the config round trip.
  const util::Config again = m.config();
  for (const auto& key : cfg.keys()) {
    EXPECT_EQ(again.get_string(key), cfg.get_string(key)) << key;
  }
}

TEST(TimingEnergy, OpCostArithmetic) {
  const OpCost a{1.0, 2.0}, b{3.0, 4.0};
  const OpCost sum = a + b;
  EXPECT_DOUBLE_EQ(sum.latency_ns, 4.0);
  EXPECT_DOUBLE_EQ(sum.energy_pj, 6.0);
  const OpCost scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(scaled.latency_ns, 3.0);
  EXPECT_DOUBLE_EQ(scaled.energy_pj, 6.0);
}

}  // namespace
}  // namespace pim::hw
