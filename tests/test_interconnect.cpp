#include "src/pim/interconnect.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace pim::hw {
namespace {

TEST(Interconnect, DefaultsOrdered) {
  const InterconnectModel bus;
  // Costs grow with hierarchy distance.
  EXPECT_LT(bus.transfer_cost(1, HopLevel::kIntraBank).latency_ns,
            bus.transfer_cost(1, HopLevel::kInterBank).latency_ns);
  EXPECT_LT(bus.transfer_cost(1, HopLevel::kInterBank).latency_ns,
            bus.transfer_cost(1, HopLevel::kOffChip).latency_ns);
  EXPECT_LT(bus.transfer_cost(1, HopLevel::kIntraBank).energy_pj,
            bus.transfer_cost(1, HopLevel::kInterBank).energy_pj);
  EXPECT_LT(bus.transfer_cost(1, HopLevel::kInterBank).energy_pj,
            bus.transfer_cost(1, HopLevel::kOffChip).energy_pj);
}

TEST(Interconnect, LinearInWords) {
  const InterconnectModel bus;
  const auto one = bus.transfer_cost(1, HopLevel::kInterBank);
  const auto ten = bus.transfer_cost(10, HopLevel::kInterBank);
  EXPECT_NEAR(ten.latency_ns, one.latency_ns * 10.0, 1e-9);
  EXPECT_NEAR(ten.energy_pj, one.energy_pj * 10.0, 1e-9);
  const auto zero = bus.transfer_cost(0, HopLevel::kIntraBank);
  EXPECT_DOUBLE_EQ(zero.latency_ns, 0.0);
  EXPECT_DOUBLE_EQ(zero.energy_pj, 0.0);
}

TEST(Interconnect, ConfigOverrides) {
  util::Config over;
  over.set_double("InterBankWordLatencyNs", 99.0);
  const InterconnectModel bus(over);
  EXPECT_DOUBLE_EQ(bus.transfer_cost(1, HopLevel::kInterBank).latency_ns,
                   99.0);
  // Other levels keep defaults.
  EXPECT_DOUBLE_EQ(bus.transfer_cost(1, HopLevel::kIntraBank).latency_ns,
                   2.0);
}

TEST(Interconnect, BadConstantsRejected) {
  util::Config over;
  over.set_double("IntraBankWordLatencyNs", 0.0);
  EXPECT_THROW(InterconnectModel{over}, std::invalid_argument);
  util::Config negative;
  negative.set_double("OffChipWordEnergyPj", -1.0);
  EXPECT_THROW(InterconnectModel{negative}, std::invalid_argument);
}

TEST(Interconnect, ZeroWordsIsPricedNoOpAtEveryLevel) {
  // words == 0 must be the exact {0, 0} no-op even when the per-word
  // constants are overridden — a zero-payload shard costs nothing.
  util::Config over;
  over.set_double("OffChipWordLatencyNs", 123.0);
  const InterconnectModel bus(over);
  for (const auto level :
       {HopLevel::kIntraBank, HopLevel::kInterBank, HopLevel::kOffChip}) {
    const auto cost = bus.transfer_cost(0, level);
    EXPECT_DOUBLE_EQ(cost.latency_ns, 0.0);
    EXPECT_DOUBLE_EQ(cost.energy_pj, 0.0);
  }
}

TEST(Interconnect, ZeroedLatencyOverrideRejectedNamingKey) {
  // An override zeroing a latency would make words_per_ns infinite; the
  // constructor must reject it and say WHICH key is at fault.
  util::Config over;
  over.set_double("OffChipWordLatencyNs", 0.0);
  try {
    InterconnectModel bus(over);
    FAIL() << "zeroed OffChipWordLatencyNs accepted";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("OffChipWordLatencyNs"),
              std::string::npos)
        << err.what();
  }
}

TEST(Interconnect, NonFiniteConstantsRejected) {
  // NaN compares false against every bound, so the pre-S43 `<= 0` check
  // silently accepted it; the validator must test finiteness explicitly.
  util::Config nan_cfg;
  nan_cfg.set_double("InterBankWordLatencyNs",
                     std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(InterconnectModel{nan_cfg}, std::invalid_argument);
  util::Config inf_cfg;
  inf_cfg.set_double("IntraBankWordEnergyPj",
                     std::numeric_limits<double>::infinity());
  EXPECT_THROW(InterconnectModel{inf_cfg}, std::invalid_argument);
}

TEST(Interconnect, WordsPerNsFinitePositiveEverywhere) {
  const InterconnectModel bus;
  for (const auto level :
       {HopLevel::kIntraBank, HopLevel::kInterBank, HopLevel::kOffChip}) {
    const double rate = bus.words_per_ns(level);
    EXPECT_TRUE(std::isfinite(rate));
    EXPECT_GT(rate, 0.0);
  }
}

TEST(Interconnect, OffChipDominatesLocalLfmEnergy) {
  // The PIM pitch in one assert: moving one LFM's operand set off-chip
  // costs more energy than computing the entire LFM locally.
  const InterconnectModel bus;
  const TimingEnergyModel timing;
  // A remote LFM would ship the 128-bp BWT row segment (8 words), the
  // marker (1 word) and get the result back (1 word).
  const auto offchip = bus.transfer_cost(10, HopLevel::kOffChip);
  const double local_lfm_pj =
      timing.xnor_match_cost().energy_pj + timing.im_add_cost(32).energy_pj +
      32.0 * timing.op_cost(SubArrayOp::kMemRead).energy_pj +
      32.0 * timing.op_cost(SubArrayOp::kMemWrite).energy_pj;
  EXPECT_GT(offchip.energy_pj, local_lfm_pj * 0.5);
  EXPECT_GT(offchip.latency_ns, timing.xnor_match_cost().latency_ns * 10);
}

TEST(Interconnect, WordsPerNs) {
  const InterconnectModel bus;
  EXPECT_NEAR(bus.words_per_ns(HopLevel::kIntraBank), 0.5, 1e-12);
}

}  // namespace
}  // namespace pim::hw
