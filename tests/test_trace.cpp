#include "src/pim/trace.h"

#include <gtest/gtest.h>

#include "src/genome/synthetic_genome.h"
#include "src/pim/mapping.h"

namespace pim::hw {
namespace {

TEST(CommandTrace, RecordsAndRenders) {
  CommandTrace trace;
  trace.record(SubArrayOp::kMemRead, {5});
  trace.record(SubArrayOp::kTripleSense, {1, 2, 3});
  trace.record(SubArrayOp::kDpuWord, {});
  ASSERT_EQ(trace.entries().size(), 3U);
  EXPECT_EQ(trace.entries()[0].to_string(), "READ r5");
  EXPECT_EQ(trace.entries()[1].to_string(), "TRIPLE r1,r2,r3");
  EXPECT_EQ(trace.entries()[2].to_string(), "DPU");
  EXPECT_EQ(trace.count(SubArrayOp::kMemRead), 1U);
  EXPECT_FALSE(trace.overflowed());
  trace.clear();
  EXPECT_TRUE(trace.entries().empty());
}

TEST(CommandTrace, OverflowStopsRecordingKeepsPrefix) {
  CommandTrace trace(2);
  trace.record(SubArrayOp::kMemRead, {1});
  trace.record(SubArrayOp::kMemRead, {2});
  trace.record(SubArrayOp::kMemRead, {3});
  EXPECT_TRUE(trace.overflowed());
  ASSERT_EQ(trace.entries().size(), 2U);
  EXPECT_EQ(trace.entries()[1].rows[0], 2U);
}

TEST(CommandTrace, SubArrayOpsAreTraced) {
  TimingEnergyModel model;
  SubArray array(model);
  CommandTrace trace;
  array.attach_trace(&trace);
  array.write_row(3, util::BitVector(array.cols()));
  array.mem_read_row(3);
  array.xnor2(0, 1);
  array.charge_dpu_word();
  ASSERT_EQ(trace.entries().size(), 4U);
  EXPECT_EQ(trace.entries()[0].op, SubArrayOp::kMemWrite);
  EXPECT_EQ(trace.entries()[1].op, SubArrayOp::kMemRead);
  EXPECT_EQ(trace.entries()[2].op, SubArrayOp::kTripleSense);
  EXPECT_EQ(trace.entries()[2].row_count, 2U);  // xnor senses two data rows
  EXPECT_EQ(trace.entries()[3].op, SubArrayOp::kDpuWord);
  array.attach_trace(nullptr);
  array.mem_read_row(3);
  EXPECT_EQ(trace.entries().size(), 4U);  // detached: no more records
}

// Golden trace of one off-checkpoint LFM — the Section V protocol:
//   1 x XNOR_Match (triple sense: BWT row + CRef row)
//   1 x DPU popcount
//   32 x count-transpose write (reserved zone)
//   1 x carry clear + 32 x (adder triple sense + sum write + carry write)
//   32 x result readout
TEST(CommandTrace, GoldenLfmProtocol) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 5000;
  spec.seed = 2;
  const auto text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 128});
  TimingEnergyModel model;
  ZoneLayout layout;
  PimTile tile(model, layout, fm, 0);

  CommandTrace trace;
  tile.array().attach_trace(&trace);
  tile.lfm(genome::Base::G, 300);  // row 2, residual 44, checkpoint col 2

  const auto& e = trace.entries();
  ASSERT_EQ(e.size(), 1 + 1 + 32 + 1 + 32 * 3 + 32U);

  std::size_t i = 0;
  // XNOR_Match on BWT row 2 vs CRef(G).
  EXPECT_EQ(e[i].op, SubArrayOp::kTripleSense);
  EXPECT_EQ(e[i].rows[0], 2U);
  EXPECT_EQ(e[i].rows[1],
            layout.cref_zone_begin() +
                static_cast<std::uint32_t>(genome::Base::G));
  ++i;
  // DPU popcount.
  EXPECT_EQ(e[i++].op, SubArrayOp::kDpuWord);
  // Count transpose: 32 writes into the reserved count rows.
  const std::uint32_t reserved = layout.reserved_zone_begin();
  for (std::uint32_t b = 0; b < 32; ++b, ++i) {
    EXPECT_EQ(e[i].op, SubArrayOp::kMemWrite);
    EXPECT_EQ(e[i].rows[0], reserved + b);
  }
  // Carry clear.
  const std::uint32_t carry = reserved + layout.carry_row_offset();
  EXPECT_EQ(e[i].op, SubArrayOp::kMemWrite);
  EXPECT_EQ(e[i].rows[0], carry);
  ++i;
  // 32 adder cycles: triple (marker_b, count_b, carry), sum write, carry write.
  const std::uint32_t marker_bank =
      layout.mt_zone_begin() +
      static_cast<std::uint32_t>(genome::Base::G) * layout.marker_bits;
  for (std::uint32_t b = 0; b < 32; ++b) {
    EXPECT_EQ(e[i].op, SubArrayOp::kTripleSense);
    EXPECT_EQ(e[i].rows[0], marker_bank + b);
    EXPECT_EQ(e[i].rows[1], reserved + b);
    EXPECT_EQ(e[i].rows[2], carry);
    ++i;
    EXPECT_EQ(e[i].op, SubArrayOp::kMemWrite);
    EXPECT_EQ(e[i].rows[0], reserved + layout.sum_rows_offset() + b);
    ++i;
    EXPECT_EQ(e[i].op, SubArrayOp::kMemWrite);
    EXPECT_EQ(e[i].rows[0], carry);
    ++i;
  }
  // Result readout: 32 reads of the sum rows.
  for (std::uint32_t b = 0; b < 32; ++b, ++i) {
    EXPECT_EQ(e[i].op, SubArrayOp::kMemRead);
    EXPECT_EQ(e[i].rows[0], reserved + layout.sum_rows_offset() + b);
  }
  EXPECT_EQ(i, e.size());
}

// Checkpoint-aligned LFM is pure MEM: exactly 32 marker reads, nothing else.
TEST(CommandTrace, GoldenCheckpointLfm) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 5000;
  spec.seed = 2;
  const auto text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 128});
  TimingEnergyModel model;
  ZoneLayout layout;
  PimTile tile(model, layout, fm, 0);

  CommandTrace trace;
  tile.array().attach_trace(&trace);
  tile.lfm(genome::Base::T, 256);
  EXPECT_EQ(trace.entries().size(), 32U);
  EXPECT_EQ(trace.count(SubArrayOp::kMemRead), 32U);
  EXPECT_EQ(trace.count(SubArrayOp::kTripleSense), 0U);
}

}  // namespace
}  // namespace pim::hw
