#include "src/genome/multi_reference.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/align/multi_aligner.h"
#include "src/genome/synthetic_genome.h"

namespace pim::genome {
namespace {

MultiReference three_chromosomes() {
  std::vector<std::pair<std::string, PackedSequence>> parts;
  parts.emplace_back("chr1", generate_uniform(1000, 1));
  parts.emplace_back("chr2", generate_uniform(500, 2));
  parts.emplace_back("chr3", generate_uniform(1500, 3));
  return MultiReference::from_parts(std::move(parts));
}

TEST(MultiReference, ConcatenationLayout) {
  const auto ref = three_chromosomes();
  EXPECT_EQ(ref.total_length(), 3000U);
  ASSERT_EQ(ref.chromosomes().size(), 3U);
  EXPECT_EQ(ref.chromosomes()[0].offset, 0U);
  EXPECT_EQ(ref.chromosomes()[1].offset, 1000U);
  EXPECT_EQ(ref.chromosomes()[2].offset, 1500U);
  EXPECT_EQ(ref.chromosomes()[2].length, 1500U);
}

TEST(MultiReference, ConcatenationContentMatchesParts) {
  const auto chr2 = generate_uniform(500, 2);
  const auto ref = three_chromosomes();
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(ref.concatenated().at(1000 + i), chr2.at(i));
  }
}

TEST(MultiReference, LocateMapsBoundariesCorrectly) {
  const auto ref = three_chromosomes();
  EXPECT_EQ(ref.locate(0), (ChromosomeLocation{0, 0}));
  EXPECT_EQ(ref.locate(999), (ChromosomeLocation{0, 999}));
  EXPECT_EQ(ref.locate(1000), (ChromosomeLocation{1, 0}));
  EXPECT_EQ(ref.locate(1499), (ChromosomeLocation{1, 499}));
  EXPECT_EQ(ref.locate(1500), (ChromosomeLocation{2, 0}));
  EXPECT_EQ(ref.locate(2999), (ChromosomeLocation{2, 1499}));
  EXPECT_FALSE(ref.locate(3000).has_value());
}

TEST(MultiReference, SpansBoundary) {
  const auto ref = three_chromosomes();
  EXPECT_FALSE(ref.spans_boundary(0, 1000));
  EXPECT_TRUE(ref.spans_boundary(999, 2));
  EXPECT_FALSE(ref.spans_boundary(999, 1));
  EXPECT_TRUE(ref.spans_boundary(1400, 200));
  EXPECT_FALSE(ref.spans_boundary(1500, 1500));
  EXPECT_TRUE(ref.spans_boundary(2999, 2));  // off the end
  EXPECT_FALSE(ref.spans_boundary(100, 0));
}

TEST(MultiReference, NameLookupAndToGlobal) {
  const auto ref = three_chromosomes();
  EXPECT_EQ(ref.chromosome_index("chr2"), 1U);
  EXPECT_FALSE(ref.chromosome_index("chrX").has_value());
  EXPECT_EQ(ref.to_global({1, 10}), 1010U);
  EXPECT_THROW(ref.to_global({5, 0}), std::out_of_range);
  EXPECT_THROW(ref.to_global({1, 500}), std::out_of_range);
}

TEST(MultiReference, FromFastaTruncatesNames) {
  std::vector<FastaRecord> records;
  records.push_back({"chr1 homo sapiens", PackedSequence("ACGT"), 0});
  records.push_back({"chr2", PackedSequence("TTTT"), 0});
  const auto ref = MultiReference::from_fasta_records(records);
  EXPECT_EQ(ref.chromosomes()[0].name, "chr1");
  EXPECT_EQ(ref.chromosomes()[1].name, "chr2");
}

TEST(MultiAligner, HitsResolveToChromosomes) {
  const auto ref = three_chromosomes();
  const auto fm =
      pim::index::FmIndex::build(ref.concatenated(), {.bucket_width = 64});
  const pim::align::MultiAligner aligner(ref, fm);
  // A read planted inside chr2.
  const auto read = ref.concatenated().slice(1100, 1160);
  const auto result = aligner.align(read);
  ASSERT_TRUE(result.aligned());
  bool found = false;
  for (const auto& hit : result.hits) {
    if (hit.chromosome == 1 && hit.offset == 100) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MultiAligner, JunctionArtifactsFiltered) {
  // Build a reference whose junction creates an artificial match: chr1 ends
  // with the prefix of the probe, chr2 starts with its suffix.
  std::vector<std::pair<std::string, PackedSequence>> parts;
  parts.emplace_back("chrA", PackedSequence("ACGTACGTAAAACCCC"));
  parts.emplace_back("chrB", PackedSequence("GGGGTTTTACGTACGT"));
  const auto ref = MultiReference::from_parts(std::move(parts));
  const auto fm =
      pim::index::FmIndex::build(ref.concatenated(), {.bucket_width = 8});
  pim::align::AlignerOptions opt;
  opt.inexact.max_diffs = 0;
  opt.try_reverse_complement = false;
  const pim::align::MultiAligner aligner(ref, fm, opt);
  // "CCCCGGGG" exists only across the junction.
  const auto result = aligner.align(genome::encode("CCCCGGGG"));
  EXPECT_FALSE(result.aligned());
  EXPECT_GT(result.boundary_artifacts_dropped, 0U);
}

TEST(MultiAligner, MismatchedIndexRejected) {
  const auto ref = three_chromosomes();
  const auto other = generate_uniform(100, 9);
  const auto fm = pim::index::FmIndex::build(other, {.bucket_width = 64});
  EXPECT_THROW(pim::align::MultiAligner(ref, fm), std::invalid_argument);
}

TEST(MultiAligner, HitAtChromosomeEndNotDropped) {
  const auto ref = three_chromosomes();
  const auto fm =
      pim::index::FmIndex::build(ref.concatenated(), {.bucket_width = 64});
  pim::align::AlignerOptions opt;
  opt.inexact.max_diffs = 2;  // span = read + 2 would overrun chr3's end
  const pim::align::MultiAligner aligner(ref, fm, opt);
  const auto read = ref.concatenated().slice(2960, 3000);  // last 40 bp
  const auto result = aligner.align(read);
  ASSERT_TRUE(result.aligned());
  bool found = false;
  for (const auto& hit : result.hits) {
    if (hit.chromosome == 2 && hit.offset == 1460) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pim::genome
