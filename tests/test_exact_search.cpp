#include "src/align/backward_search.h"

#include <gtest/gtest.h>

#include <string>

#include "src/align/naive_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

TEST(ExactSearch, PaperExampleCtaInTgcta) {
  const PackedSequence text("TGCTA");
  const auto fm = index::FmIndex::build(text, {.bucket_width = 2});
  const ExactResult result = exact_search(fm, genome::encode("CTA"));
  EXPECT_TRUE(result.found());
  EXPECT_EQ(result.occurrence_count(), 1U);
  EXPECT_EQ(result.steps, 3U);
  const auto positions = exact_locate(fm, genome::encode("CTA"));
  const std::vector<std::uint64_t> expect = {2};
  EXPECT_EQ(positions, expect);
}

TEST(ExactSearch, MissingPatternFails) {
  const PackedSequence text("TGCTA");
  const auto fm = index::FmIndex::build(text, {.bucket_width = 2});
  const ExactResult result = exact_search(fm, genome::encode("AAA"));
  EXPECT_FALSE(result.found());
  EXPECT_TRUE(exact_locate(fm, genome::encode("AAA")).empty());
}

TEST(ExactSearch, EarlyExitOnCollapse) {
  const PackedSequence text("CCCCCCCC");
  const auto fm = index::FmIndex::build(text, {.bucket_width = 4});
  // Rightmost char G kills the interval immediately; remaining steps skipped.
  const ExactResult result = exact_search(fm, genome::encode("CCCCCCG"));
  EXPECT_FALSE(result.found());
  EXPECT_EQ(result.steps, 1U);
}

TEST(ExactSearch, EmptyReadMatchesEverywhere) {
  const PackedSequence text("ACGT");
  const auto fm = index::FmIndex::build(text, {.bucket_width = 2});
  const ExactResult result = exact_search(fm, {});
  EXPECT_TRUE(result.found());
  EXPECT_EQ(result.interval, fm.whole_interval());
  EXPECT_EQ(result.steps, 0U);
}

TEST(ExactSearch, WholeReferenceAsRead) {
  const PackedSequence text("GATTACAGATTACA");
  const auto fm = index::FmIndex::build(text, {.bucket_width = 4});
  const auto positions = exact_locate(fm, text.unpack());
  const std::vector<std::uint64_t> expect = {0};
  EXPECT_EQ(positions, expect);
}

TEST(ExactSearch, OverlappingOccurrences) {
  const PackedSequence text("AAAAA");
  const auto fm = index::FmIndex::build(text, {.bucket_width = 2});
  const auto positions = exact_locate(fm, genome::encode("AA"));
  const std::vector<std::uint64_t> expect = {0, 1, 2, 3};
  EXPECT_EQ(positions, expect);
}

TEST(ExactSearch, TraceMatchesStepCount) {
  const PackedSequence text("TGCTA");
  const auto fm = index::FmIndex::build(text, {.bucket_width = 2});
  const auto trace = exact_search_trace(fm, genome::encode("CTA"));
  ASSERT_EQ(trace.size(), 3U);
  EXPECT_TRUE(trace.back().valid());
  // Intervals shrink monotonically along the trace.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i].count(), trace[i - 1].count());
  }
}

// Property: FM-index exact search equals brute-force scanning for random
// references and reads (planted and random), across bucket widths.
struct ExactParam {
  std::uint32_t bucket;
  std::uint64_t seed;
};

class ExactSearchProperty : public ::testing::TestWithParam<ExactParam> {};

TEST_P(ExactSearchProperty, MatchesNaiveScan) {
  const auto [bucket, seed] = GetParam();
  genome::SyntheticGenomeSpec spec;
  spec.length = 3000;
  spec.seed = seed;
  spec.repeat_fraction = 0.5;
  spec.repeat_unit_length = 60;
  const PackedSequence text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = bucket});
  util::Xoshiro256 rng(seed + 1000);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Base> read;
    if (trial % 2 == 0) {
      // Planted read: guaranteed to occur.
      const std::size_t len = 8 + rng.bounded(40);
      const std::size_t start = rng.bounded(text.size() - len);
      read = text.slice(start, start + len);
    } else {
      // Random read: usually absent.
      const std::size_t len = 8 + rng.bounded(20);
      for (std::size_t i = 0; i < len; ++i) {
        read.push_back(static_cast<Base>(rng.bounded(4)));
      }
    }
    EXPECT_EQ(exact_locate(fm, read), naive_exact_positions(text, read))
        << "bucket=" << bucket << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactSearchProperty,
    ::testing::Values(ExactParam{1, 1}, ExactParam{16, 2}, ExactParam{64, 3},
                      ExactParam{128, 4}, ExactParam{128, 5}));

}  // namespace
}  // namespace pim::align
