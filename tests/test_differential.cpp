// Differential matrix: the full algorithm stack against brute-force oracles
// across the configuration space (bucket width x SA sampling x edit mode x
// difference budget x reference character). Each cell runs a batch of
// planted/mutated/random reads; any mismatch between the FM-index paths and
// the oracles anywhere in the matrix fails the suite.
#include <gtest/gtest.h>

#include <tuple>

#include "src/align/inexact_search.h"
#include "src/align/naive_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

struct MatrixParam {
  std::uint32_t bucket;
  std::uint32_t sa_rate;
  EditMode mode;
  std::uint32_t z;
  double repeat_fraction;
  std::uint64_t seed;
};

class DifferentialMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(DifferentialMatrix, FmMatchesOracle) {
  const MatrixParam p = GetParam();
  genome::SyntheticGenomeSpec spec;
  spec.length = p.mode == EditMode::kFullEdit ? 500 : 1200;
  spec.seed = p.seed;
  spec.repeat_fraction = p.repeat_fraction;
  spec.repeat_unit_length = 31;
  const PackedSequence text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(
      text, {.bucket_width = p.bucket, .sa_sample_rate = p.sa_rate});

  util::Xoshiro256 rng(p.seed * 31 + 7);
  const int trials = p.mode == EditMode::kFullEdit ? 6 : 12;
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t len = 10 + rng.bounded(10);
    std::vector<Base> read;
    switch (trial % 3) {
      case 0: {  // planted, possibly mutated within budget
        const std::size_t start = rng.bounded(text.size() - len);
        read = text.slice(start, start + len);
        for (std::uint32_t m = 0; m < p.z && m < 2; ++m) {
          read[rng.bounded(read.size())] = static_cast<Base>(rng.bounded(4));
        }
        break;
      }
      case 1: {  // planted, over-mutated (often beyond budget)
        const std::size_t start = rng.bounded(text.size() - len);
        read = text.slice(start, start + len);
        for (int m = 0; m < 5; ++m) {
          read[rng.bounded(read.size())] = static_cast<Base>(rng.bounded(4));
        }
        break;
      }
      default: {  // random
        for (std::size_t i = 0; i < len; ++i) {
          read.push_back(static_cast<Base>(rng.bounded(4)));
        }
        break;
      }
    }

    InexactOptions opt;
    opt.max_diffs = p.z;
    opt.mode = p.mode;
    const auto got = inexact_locate(fm, read, opt);
    const auto want = p.mode == EditMode::kSubstitutionsOnly
                          ? naive_hamming_positions(text, read, p.z)
                          : naive_edit_positions(text, read, p.z);
    ASSERT_EQ(got, want) << "bucket=" << p.bucket << " rate=" << p.sa_rate
                         << " z=" << p.z << " trial=" << trial;
  }
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> cells;
  std::uint64_t seed = 1;
  for (const std::uint32_t bucket : {1U, 32U, 128U}) {
    for (const std::uint32_t rate : {1U, 4U}) {
      for (const auto mode :
           {EditMode::kSubstitutionsOnly, EditMode::kFullEdit}) {
        for (const std::uint32_t z : {0U, 1U, 2U}) {
          const double repeats = (seed % 2 == 0) ? 0.5 : 0.0;
          cells.push_back(MatrixParam{bucket, rate, mode, z, repeats, seed});
          ++seed;
        }
      }
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(FullMatrix, DifferentialMatrix,
                         ::testing::ValuesIn(matrix()));

}  // namespace
}  // namespace pim::align
