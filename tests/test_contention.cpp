#include "src/accel/contention.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace pim::accel {
namespace {

TEST(Contention, ClosedFormEdgeCases) {
  EXPECT_DOUBLE_EQ(expected_occupancy(10, 0), 0.0);
  EXPECT_NEAR(expected_occupancy(1, 1), 1.0, 1e-12);
  EXPECT_THROW(expected_occupancy(0, 5), std::invalid_argument);
}

TEST(Contention, ClosedFormMonotoneInLoad) {
  double prev = 0.0;
  for (std::uint64_t r = 0; r <= 40; r += 4) {
    const double occ = expected_occupancy(100, r);
    EXPECT_GE(occ, prev);
    prev = occ;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(Contention, AsymptoticMatchesExactForLargeG) {
  for (const double load : {0.5, 1.0, 2.0, 3.0}) {
    const auto groups = 10000ULL;
    const auto reads = static_cast<std::uint64_t>(load * groups);
    EXPECT_NEAR(expected_occupancy(groups, reads),
                expected_occupancy_asymptotic(load), 1e-3)
        << load;
  }
}

TEST(Contention, RurAnchors) {
  // The chip model's RUR values: 1-e^-1 = 63.2% (Pd=1), 1-e^-2 = 86.5%.
  EXPECT_NEAR(expected_occupancy_asymptotic(1.0), 0.632, 0.001);
  EXPECT_NEAR(expected_occupancy_asymptotic(2.0), 0.865, 0.001);
}

TEST(Contention, MonteCarloMatchesClosedForm) {
  for (const std::uint64_t reads : {16ULL, 32ULL, 64ULL}) {
    const auto sample = simulate_occupancy(32, reads, 4000, 11);
    EXPECT_NEAR(sample.mean_occupancy, expected_occupancy(32, reads), 0.01)
        << reads;
    EXPECT_GT(sample.stddev, 0.0);
  }
}

TEST(Contention, MonteCarloDeterministicInSeed) {
  const auto a = simulate_occupancy(64, 128, 500, 3);
  const auto b = simulate_occupancy(64, 128, 500, 3);
  EXPECT_DOUBLE_EQ(a.mean_occupancy, b.mean_occupancy);
}

TEST(Contention, BadArgsThrow) {
  EXPECT_THROW(simulate_occupancy(0, 4, 10, 1), std::invalid_argument);
  EXPECT_THROW(simulate_occupancy(4, 4, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace pim::accel
