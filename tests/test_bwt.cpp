#include "src/index/bwt.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <string>

#include "src/genome/synthetic_genome.h"

namespace pim::index {
namespace {

using genome::PackedSequence;

Bwt bwt_of(const PackedSequence& text) {
  return build_bwt(text, build_suffix_array(text));
}

TEST(Bwt, PaperWorkedExample) {
  // Fig. 1: BWT(TGCTA$) = ATGTC$ with '$' in the last row.
  const PackedSequence text("TGCTA");
  const Bwt bwt = bwt_of(text);
  ASSERT_EQ(bwt.size(), 6U);
  EXPECT_EQ(bwt.primary, 5U);
  std::string rendered;
  for (std::size_t i = 0; i < bwt.size(); ++i) {
    rendered.push_back(bwt.is_sentinel(i) ? '$' : genome::to_char(bwt.at(i)));
  }
  EXPECT_EQ(rendered, "ATGTC$");
}

TEST(Bwt, SentinelAccessThrows) {
  const Bwt bwt = bwt_of(PackedSequence("TGCTA"));
  EXPECT_THROW(bwt.at(bwt.primary), std::logic_error);
  EXPECT_NO_THROW(bwt.at(0));
}

TEST(Bwt, SizeMismatchThrows) {
  const PackedSequence text("ACGT");
  SuffixArray sa = build_suffix_array(text);
  sa.pop_back();
  EXPECT_THROW(build_bwt(text, sa), std::invalid_argument);
}

TEST(Bwt, InvertRecoversOriginalFixed) {
  for (const std::string s :
       {"A", "AC", "TGCTA", "GATTACA", "AAAAAA", "ACGTACGTACGT",
        "TTTTTTTTGGGGGGGG"}) {
    const PackedSequence text(s);
    const Bwt bwt = bwt_of(text);
    EXPECT_EQ(invert_bwt(bwt).to_string(), s) << s;
  }
}

// Property: BWT is reversible on random references (the defining property).
class BwtRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BwtRoundTrip, InvertRecoversRandomText) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 50 + static_cast<std::size_t>(GetParam()) * 137;
  spec.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  spec.repeat_fraction = GetParam() % 2 ? 0.5 : 0.0;
  spec.repeat_unit_length = 23;
  const PackedSequence text = genome::generate_reference(spec);
  const Bwt bwt = bwt_of(text);
  EXPECT_TRUE(invert_bwt(bwt) == text);
}

INSTANTIATE_TEST_SUITE_P(RandomTexts, BwtRoundTrip, ::testing::Range(0, 20));

TEST(Bwt, CharacterMultisetPreserved) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 5000;
  spec.seed = 77;
  const PackedSequence text = genome::generate_reference(spec);
  const Bwt bwt = bwt_of(text);
  std::array<std::size_t, 4> text_counts{}, bwt_counts{};
  for (std::size_t i = 0; i < text.size(); ++i) {
    ++text_counts[static_cast<std::size_t>(text.at(i))];
  }
  for (std::size_t i = 0; i < bwt.size(); ++i) {
    if (!bwt.is_sentinel(i)) {
      ++bwt_counts[static_cast<std::size_t>(bwt.at(i))];
    }
  }
  EXPECT_EQ(text_counts, bwt_counts);
}

}  // namespace
}  // namespace pim::index
