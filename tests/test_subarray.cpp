#include "src/pim/subarray.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/rng.h"

namespace pim::hw {
namespace {

util::BitVector random_row(std::uint32_t cols, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  util::BitVector row(cols);
  for (std::uint32_t i = 0; i < cols; ++i) row.set(i, rng.bernoulli(0.5));
  return row;
}

struct Fixture {
  TimingEnergyModel model;
  SubArray array{model};
};

TEST(SubArray, WriteReadRoundTrip) {
  Fixture f;
  const auto row = random_row(f.array.cols(), 1);
  f.array.write_row(7, row);
  EXPECT_TRUE(f.array.mem_read_row(7) == row);
  EXPECT_EQ(f.array.stats().writes, 1U);
  EXPECT_EQ(f.array.stats().reads, 1U);
}

TEST(SubArray, RowBoundsChecked) {
  Fixture f;
  util::BitVector row(f.array.cols());
  EXPECT_THROW(f.array.write_row(512, row), std::out_of_range);
  EXPECT_THROW(f.array.mem_read_row(512), std::out_of_range);
  EXPECT_THROW(f.array.write_row(0, util::BitVector(10)),
               std::invalid_argument);
}

TEST(SubArray, TripleSenseMatchesBitwiseTruth) {
  Fixture f;
  const auto a = random_row(f.array.cols(), 2);
  const auto b = random_row(f.array.cols(), 3);
  const auto c = random_row(f.array.cols(), 4);
  f.array.write_row(0, a);
  f.array.write_row(1, b);
  f.array.write_row(2, c);
  const auto out = f.array.triple_sense(0, 1, 2);
  for (std::uint32_t i = 0; i < f.array.cols(); ++i) {
    const int ones = a.get(i) + b.get(i) + c.get(i);
    EXPECT_EQ(out.and3.get(i), ones == 3);
    EXPECT_EQ(out.maj3.get(i), ones >= 2);
    EXPECT_EQ(out.or3.get(i), ones >= 1);
    EXPECT_EQ(out.xor3.get(i), ones % 2 == 1);
  }
  EXPECT_EQ(f.array.stats().triple_senses, 1U);
}

TEST(SubArray, Xnor2MatchesTruth) {
  Fixture f;
  const auto a = random_row(f.array.cols(), 5);
  const auto b = random_row(f.array.cols(), 6);
  f.array.write_row(0, a);
  f.array.write_row(1, b);
  const auto out = f.array.xnor2(0, 1);
  for (std::uint32_t i = 0; i < f.array.cols(); ++i) {
    EXPECT_EQ(out.get(i), a.get(i) == b.get(i));
  }
  // Single cycle: one triple sense (with the implicit all-ones init row).
  EXPECT_EQ(f.array.stats().triple_senses, 1U);
}

TEST(SubArray, VerticalWordRoundTrip) {
  Fixture f;
  f.array.write_word_vertical(100, 10, 32, 0xDEADBEEFULL);
  EXPECT_EQ(f.array.read_word_vertical(100, 10, 32), 0xDEADBEEFULL);
  // Neighbouring column untouched.
  EXPECT_EQ(f.array.read_word_vertical(101, 10, 32), 0ULL);
  EXPECT_EQ(f.array.stats().writes, 32U);
  EXPECT_EQ(f.array.stats().reads, 64U);
}

TEST(SubArray, VerticalWordBoundsChecked) {
  Fixture f;
  EXPECT_THROW(f.array.read_word_vertical(0, 500, 32), std::out_of_range);
  EXPECT_THROW(f.array.read_word_vertical(256, 0, 32), std::out_of_range);
  EXPECT_THROW(f.array.read_word_vertical(0, 0, 65), std::invalid_argument);
  EXPECT_THROW(f.array.write_word_vertical(0, 500, 32, 1), std::out_of_range);
}

TEST(SubArray, ImAddSingleColumn) {
  Fixture f;
  f.array.write_word_vertical(3, 0, 32, 123456789ULL);
  f.array.write_word_vertical(3, 32, 32, 987654321ULL);
  f.array.im_add(0, 32, 64, 96, 32);
  EXPECT_EQ(f.array.read_word_vertical(3, 64, 32),
            (123456789ULL + 987654321ULL) & 0xFFFFFFFFULL);
}

TEST(SubArray, ImAddAllColumnsInParallel) {
  // The defining property: one IM_ADD services every bit-line at once.
  Fixture f;
  util::Xoshiro256 rng(9);
  std::vector<std::uint64_t> a(f.array.cols()), b(f.array.cols());
  for (std::uint32_t col = 0; col < f.array.cols(); ++col) {
    a[col] = rng.bounded(1ULL << 32);
    b[col] = rng.bounded(1ULL << 32);
    f.array.write_word_vertical(col, 0, 32, a[col]);
    f.array.write_word_vertical(col, 32, 32, b[col]);
  }
  const auto triple_before = f.array.stats().triple_senses;
  f.array.im_add(0, 32, 64, 96, 32);
  EXPECT_EQ(f.array.stats().triple_senses - triple_before, 32U);
  for (std::uint32_t col = 0; col < f.array.cols(); ++col) {
    EXPECT_EQ(f.array.read_word_vertical(col, 64, 32),
              (a[col] + b[col]) & 0xFFFFFFFFULL)
        << col;
  }
}

TEST(SubArray, ImAddWrapsModulo32Bits) {
  Fixture f;
  f.array.write_word_vertical(0, 0, 32, 0xFFFFFFFFULL);
  f.array.write_word_vertical(0, 32, 32, 1ULL);
  f.array.im_add(0, 32, 64, 96, 32);
  EXPECT_EQ(f.array.read_word_vertical(0, 64, 32), 0ULL);
}

TEST(SubArray, EnergyAndBusyAccumulate) {
  Fixture f;
  const auto row = random_row(f.array.cols(), 10);
  f.array.write_row(0, row);
  const double e1 = f.array.stats().energy_pj;
  const double t1 = f.array.stats().busy_ns;
  EXPECT_GT(e1, 0.0);
  EXPECT_GT(t1, 0.0);
  f.array.mem_read_row(0);
  EXPECT_GT(f.array.stats().energy_pj, e1);
  EXPECT_GT(f.array.stats().busy_ns, t1);
  f.array.reset_stats();
  EXPECT_EQ(f.array.stats().energy_pj, 0.0);
  EXPECT_EQ(f.array.stats().reads, 0U);
}

TEST(SubArray, ImAddCostMatchesModel) {
  Fixture f;
  f.array.reset_stats();
  f.array.im_add(0, 32, 64, 96, 32);
  const OpCost expected = f.model.im_add_cost(32);
  EXPECT_NEAR(f.array.stats().busy_ns, expected.latency_ns, 1e-9);
  EXPECT_NEAR(f.array.stats().energy_pj, expected.energy_pj, 1e-9);
}

TEST(SubArrayStats, Accumulate) {
  SubArrayStats a, b;
  a.reads = 2;
  a.energy_pj = 1.5;
  b.reads = 3;
  b.energy_pj = 2.5;
  a += b;
  EXPECT_EQ(a.reads, 5U);
  EXPECT_DOUBLE_EQ(a.energy_pj, 4.0);
}

// Property sweep: bit-serial adder correctness over operand widths.
class ImAddWidth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ImAddWidth, MatchesIntegerAddition) {
  const std::uint32_t bits = GetParam();
  TimingEnergyModel model;
  SubArray array(model);
  util::Xoshiro256 rng(1000 + bits);
  const std::uint64_t mask =
      bits == 64 ? ~0ULL : ((1ULL << bits) - 1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t a = rng.bounded(mask) & mask;
    const std::uint64_t b = rng.bounded(mask) & mask;
    const std::uint32_t col = static_cast<std::uint32_t>(rng.bounded(256));
    array.write_word_vertical(col, 0, bits, a);
    array.write_word_vertical(col, 128, bits, b);
    array.im_add(0, 128, 256, 400, bits);
    EXPECT_EQ(array.read_word_vertical(col, 256, bits), (a + b) & mask)
        << "bits=" << bits << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ImAddWidth,
                         ::testing::Values(1U, 8U, 16U, 24U, 32U, 48U));

TEST(SubArray, DpuChargeCounts) {
  Fixture f;
  f.array.charge_dpu_word();
  f.array.charge_dpu_word();
  EXPECT_EQ(f.array.stats().dpu_word_ops, 2U);
}

}  // namespace
}  // namespace pim::hw
