#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/util/config.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace pim::util {
namespace {

// --- RNG --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BoundedStaysInBound) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(7), 7U);
  }
  EXPECT_EQ(rng.bounded(0), 0U);
  EXPECT_EQ(rng.bounded(1), 0U);
}

TEST(Rng, BoundedCoversAllResidues) {
  Xoshiro256 rng(8);
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.bounded(5)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, GaussianMomentsMatch) {
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Xoshiro256 rng(12);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.2, 0.01);
}

// --- RunningStats -----------------------------------------------------------

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Xoshiro256 rng(21);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(0, 1);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, VarianceOfSingletonIsZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

// --- Histogram --------------------------------------------------------------

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4U);
  EXPECT_EQ(h.bin_count(0), 2U);
  EXPECT_EQ(h.bin_count(9), 2U);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, InvalidArgsThrow) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 4), std::invalid_argument);
}

TEST(Histogram, RenderShowsOnlyOccupiedBins) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

// --- quantile ----------------------------------------------------------------

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

// --- Config -----------------------------------------------------------------

TEST(Config, ParsesNvsimStyle) {
  const Config cfg = Config::parse(
      "-ReadLatencyNs: 2.5   # comment\n"
      "RowsPerSubarray: 512\n"
      "\n"
      "// full-line comment\n"
      "Name: pim aligner\n"
      "Enable: true\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("ReadLatencyNs"), 2.5);
  EXPECT_EQ(cfg.get_int("RowsPerSubarray"), 512);
  EXPECT_EQ(cfg.get_string("Name"), "pim aligner");
  EXPECT_TRUE(cfg.get_bool("Enable"));
}

TEST(Config, MissingKeyBehaviour) {
  const Config cfg = Config::parse("A: 1\n");
  EXPECT_THROW(cfg.get_string("B"), std::out_of_range);
  EXPECT_EQ(cfg.get_int_or("B", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double_or("B", 1.5), 1.5);
  EXPECT_TRUE(cfg.get_bool_or("B", true));
  EXPECT_EQ(cfg.get_string_or("B", "x"), "x");
}

TEST(Config, MalformedThrows) {
  EXPECT_THROW(Config::parse("no colon here\n"), std::runtime_error);
  EXPECT_THROW(Config::parse(": empty key\n"), std::runtime_error);
  const Config cfg = Config::parse("A: notanumber\n");
  EXPECT_THROW(cfg.get_double("A"), std::runtime_error);
  EXPECT_THROW(cfg.get_bool("A"), std::runtime_error);
}

TEST(Config, LaterKeysOverride) {
  const Config cfg = Config::parse("A: 1\nA: 2\n");
  EXPECT_EQ(cfg.get_int("A"), 2);
}

TEST(Config, MergedWithOverrides) {
  Config base = Config::parse("A: 1\nB: 2\n");
  Config over = Config::parse("B: 20\nC: 30\n");
  const Config merged = base.merged_with(over);
  EXPECT_EQ(merged.get_int("A"), 1);
  EXPECT_EQ(merged.get_int("B"), 20);
  EXPECT_EQ(merged.get_int("C"), 30);
}

TEST(Config, RoundTripThroughCfgText) {
  Config cfg;
  cfg.set_double("X", 3.25);
  cfg.set_int("Y", -7);
  cfg.set("Z", "hello");
  const Config again = Config::parse(cfg.to_cfg_text());
  EXPECT_DOUBLE_EQ(again.get_double("X"), 3.25);
  EXPECT_EQ(again.get_int("Y"), -7);
  EXPECT_EQ(again.get_string("Z"), "hello");
}

// --- TextTable ---------------------------------------------------------------

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  // Separator row present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.5, 2), "1.50");
  EXPECT_EQ(TextTable::num(0.0, 2), "0.00");
  // Large and small magnitudes switch to scientific notation.
  EXPECT_NE(TextTable::num(2.5e6, 2).find('e'), std::string::npos);
  EXPECT_NE(TextTable::num(1e-3, 2).find('e'), std::string::npos);
}

}  // namespace
}  // namespace pim::util
