#include "src/readsim/read_simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/genome/synthetic_genome.h"

namespace pim::readsim {
namespace {

genome::PackedSequence reference(std::size_t length = 20000,
                                 std::uint64_t seed = 1) {
  genome::SyntheticGenomeSpec spec;
  spec.length = length;
  spec.seed = seed;
  return genome::generate_reference(spec);
}

TEST(ReadSimulator, GeneratesRequestedShape) {
  ReadSimSpec spec;
  spec.read_length = 100;
  spec.num_reads = 250;
  const auto set = ReadSimulator(spec).generate(reference());
  ASSERT_EQ(set.reads.size(), 250U);
  for (const auto& read : set.reads) {
    EXPECT_EQ(read.bases.size(), 100U);
    EXPECT_LE(read.origin + 100, 20000U);
  }
}

TEST(ReadSimulator, DeterministicInSeed) {
  ReadSimSpec spec;
  spec.num_reads = 50;
  spec.seed = 9;
  const auto ref = reference();
  const auto a = ReadSimulator(spec).generate(ref);
  const auto b = ReadSimulator(spec).generate(ref);
  ASSERT_EQ(a.reads.size(), b.reads.size());
  for (std::size_t i = 0; i < a.reads.size(); ++i) {
    EXPECT_EQ(a.reads[i].bases, b.reads[i].bases);
    EXPECT_EQ(a.reads[i].origin, b.reads[i].origin);
  }
}

TEST(ReadSimulator, RejectsTooShortReference) {
  ReadSimSpec spec;
  spec.read_length = 100;
  EXPECT_THROW(ReadSimulator(spec).generate(
                   genome::generate_uniform(50, 1)),
               std::invalid_argument);
}

TEST(ReadSimulator, ErrorFreeReadsMatchReferenceExactly) {
  ReadSimSpec spec;
  spec.read_length = 60;
  spec.num_reads = 100;
  spec.population_variation_rate = 0.0;
  spec.sequencing_error_rate = 0.0;
  spec.sample_both_strands = false;
  const auto ref = reference();
  const auto set = ReadSimulator(spec).generate(ref);
  EXPECT_DOUBLE_EQ(set.exact_fraction(), 1.0);
  for (const auto& read : set.reads) {
    EXPECT_TRUE(read.is_exact());
    const auto truth = ref.slice(read.origin, read.origin + 60);
    EXPECT_EQ(read.bases, truth);
  }
}

TEST(ReadSimulator, ReverseStrandReadsAreReverseComplements) {
  ReadSimSpec spec;
  spec.read_length = 40;
  spec.num_reads = 200;
  spec.population_variation_rate = 0.0;
  spec.sequencing_error_rate = 0.0;
  spec.sample_both_strands = true;
  spec.seed = 3;
  const auto ref = reference();
  const auto set = ReadSimulator(spec).generate(ref);
  std::size_t reverse_count = 0;
  for (const auto& read : set.reads) {
    const auto truth = ref.slice(read.origin, read.origin + 40);
    if (read.reverse_strand) {
      ++reverse_count;
      EXPECT_EQ(read.bases, genome::reverse_complement(truth));
    } else {
      EXPECT_EQ(read.bases, truth);
    }
  }
  // Roughly half the reads come from each strand.
  EXPECT_GT(reverse_count, 60U);
  EXPECT_LT(reverse_count, 140U);
}

TEST(ReadSimulator, PaperRatesGiveRoughlySeventyPercentExact) {
  // 100 bp at 0.1% variation + 0.2% sequencing error: P(exact) ~ 0.997^100
  // ~ 0.74 — the paper's "up to ~70% of short reads align exactly".
  ReadSimSpec spec;
  spec.read_length = 100;
  spec.num_reads = 4000;
  spec.population_variation_rate = 0.001;
  spec.sequencing_error_rate = 0.002;
  spec.seed = 7;
  const auto set = ReadSimulator(spec).generate(reference(50000, 2));
  EXPECT_NEAR(set.exact_fraction(), 0.74, 0.05);
}

TEST(ReadSimulator, SubstitutionCountsAreConsistent) {
  ReadSimSpec spec;
  spec.read_length = 80;
  spec.num_reads = 300;
  spec.population_variation_rate = 0.01;
  spec.sequencing_error_rate = 0.01;
  spec.sample_both_strands = false;
  spec.seed = 5;
  const auto ref = reference();
  const auto set = ReadSimulator(spec).generate(ref);
  for (const auto& read : set.reads) {
    // Hamming distance to the true origin equals at most the recorded
    // substitution count (two hits on one base can cancel).
    const auto truth = ref.slice(read.origin, read.origin + 80);
    std::uint32_t hamming = 0;
    for (std::size_t i = 0; i < 80; ++i) {
      if (truth[i] != read.bases[i]) ++hamming;
    }
    EXPECT_LE(hamming, read.substitutions);
  }
}

TEST(ReadSimulator, IndelErrorsProduceIndels) {
  ReadSimSpec spec;
  spec.read_length = 100;
  spec.num_reads = 500;
  spec.indel_error_rate = 0.02;
  spec.seed = 11;
  const auto set = ReadSimulator(spec).generate(reference());
  std::uint64_t insertions = 0, deletions = 0;
  for (const auto& read : set.reads) {
    insertions += read.insertions;
    deletions += read.deletions;
    EXPECT_EQ(read.bases.size(), 100U);  // length preserved despite indels
  }
  EXPECT_GT(insertions, 0U);
  EXPECT_GT(deletions, 0U);
}

TEST(ReadSet, ExactFractionOfEmptySetIsZero) {
  ReadSet set;
  EXPECT_DOUBLE_EQ(set.exact_fraction(), 0.0);
}

}  // namespace
}  // namespace pim::readsim
