#include "src/varcall/sam_reader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/align/aligner.h"
#include "src/align/sam_writer.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"
#include "src/varcall/snv_caller.h"

namespace pim::varcall {
namespace {

using genome::Base;

TEST(ParseCigar, Basics) {
  const auto entries = parse_cigar("4M1D3M");
  ASSERT_EQ(entries.size(), 3U);
  EXPECT_EQ(entries[0].op, align::CigarOp::kMatch);
  EXPECT_EQ(entries[0].length, 4U);
  EXPECT_EQ(entries[1].op, align::CigarOp::kDeletion);
  EXPECT_EQ(entries[2].length, 3U);
  EXPECT_TRUE(parse_cigar("*").empty());
}

TEST(ParseCigar, ExtendedOps) {
  // X/= are matches; S behaves like I (read-only); H/P vanish; N like D.
  const auto entries = parse_cigar("2S3=1X4N2M1H");
  ASSERT_EQ(entries.size(), 5U);
  EXPECT_EQ(entries[0].op, align::CigarOp::kInsertion);
  EXPECT_EQ(entries[1].op, align::CigarOp::kMatch);
  EXPECT_EQ(entries[2].op, align::CigarOp::kMatch);
  EXPECT_EQ(entries[3].op, align::CigarOp::kDeletion);
  EXPECT_EQ(entries[4].op, align::CigarOp::kMatch);
}

TEST(ParseCigar, MalformedThrows) {
  EXPECT_THROW(parse_cigar("M"), std::runtime_error);      // no run
  EXPECT_THROW(parse_cigar("0M"), std::runtime_error);     // zero run
  EXPECT_THROW(parse_cigar("3Q"), std::runtime_error);     // unknown op
  EXPECT_THROW(parse_cigar("12"), std::runtime_error);     // trailing run
}

TEST(ParseSamRecord, FiltersAndParses) {
  SamReadStats stats;
  AlignedRead read;
  // Mapped primary record on the right contig.
  EXPECT_TRUE(parse_sam_record(
      "q1\t0\tchr1\t101\t60\t4M\t*\t0\t0\tACGT\tIIII\tNM:i:0", "chr1", read,
      stats));
  EXPECT_EQ(read.position, 100U);
  EXPECT_EQ(read.bases, genome::encode("ACGT"));
  ASSERT_EQ(read.cigar.size(), 1U);
  // Unmapped (0x4), secondary (0x100), other contig: skipped.
  EXPECT_FALSE(parse_sam_record("q2\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\t*", "chr1",
                                read, stats));
  EXPECT_FALSE(parse_sam_record(
      "q3\t256\tchr1\t5\t0\t4M\t*\t0\t0\tACGT\t*", "chr1", read, stats));
  EXPECT_FALSE(parse_sam_record(
      "q4\t0\tchr2\t5\t60\t4M\t*\t0\t0\tACGT\t*", "chr1", read, stats));
  EXPECT_EQ(stats.records, 4U);
  EXPECT_EQ(stats.used, 1U);
  EXPECT_EQ(stats.unmapped, 1U);
  EXPECT_EQ(stats.secondary, 1U);
  EXPECT_EQ(stats.other_reference, 1U);
}

TEST(ParseSamRecord, MalformedThrows) {
  SamReadStats stats;
  AlignedRead read;
  EXPECT_THROW(parse_sam_record("too\tfew\tfields", "c", read, stats),
               std::runtime_error);
  EXPECT_THROW(parse_sam_record(
                   "q\tNOTNUM\tc\t1\t60\t1M\t*\t0\t0\tA\t*", "c", read, stats),
               std::runtime_error);
}

// Round trip: align -> SamWriter -> pileup_from_sam -> SNV calls equal the
// direct in-memory pipeline.
TEST(SamReader, RoundTripVariantCalling) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 20000;
  spec.seed = 81;
  const auto reference = genome::generate_reference(spec);
  auto donor = reference;
  const std::uint64_t snv_pos = 7777;
  const Base alt = static_cast<Base>(
      (static_cast<int>(reference.at(snv_pos)) + 1) % 4);
  donor.set(snv_pos, alt);

  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const align::Aligner aligner(fm, options);

  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 4000;
  rspec.population_variation_rate = 0.0;
  rspec.sequencing_error_rate = 0.001;
  rspec.seed = 82;
  const auto set = readsim::ReadSimulator(rspec).generate(donor);

  // Write SAM and, in parallel, fill a direct pileup.
  std::stringstream sam;
  align::SamWriter writer(sam, "demo", reference);
  writer.write_header();
  Pileup direct(reference.size());
  for (std::size_t i = 0; i < set.reads.size(); ++i) {
    const auto result = aligner.align(set.reads[i].bases);
    writer.write_alignment("r" + std::to_string(i), set.reads[i].bases,
                           result);
    if (const auto best = result.best()) {
      AlignedRead aligned;
      aligned.position = best->position;
      aligned.bases = best->strand == align::Strand::kForward
                          ? set.reads[i].bases
                          : genome::reverse_complement(set.reads[i].bases);
      direct.add(aligned);
    }
  }

  Pileup from_sam(reference.size());
  const auto stats = pileup_from_sam(sam, "demo", from_sam);
  EXPECT_GT(stats.used, 3000U);
  EXPECT_EQ(stats.other_reference, 0U);

  // The SAM path only keeps primary records; the direct path used best()
  // which is the same single hit, so the pileups must agree.
  for (std::uint64_t pos = 0; pos < reference.size(); pos += 97) {
    EXPECT_EQ(from_sam.depth(pos), direct.depth(pos)) << pos;
  }
  const auto calls = call_snvs(from_sam, reference);
  ASSERT_EQ(calls.size(), 1U);
  EXPECT_EQ(calls[0].position, snv_pos);
  EXPECT_EQ(calls[0].alt_base, alt);
}

}  // namespace
}  // namespace pim::varcall
