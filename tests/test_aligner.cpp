#include "src/align/aligner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

struct Fixture {
  PackedSequence text;
  index::FmIndex fm;
  explicit Fixture(std::size_t length = 5000, std::uint64_t seed = 1) {
    genome::SyntheticGenomeSpec spec;
    spec.length = length;
    spec.seed = seed;
    text = genome::generate_reference(spec);
    fm = index::FmIndex::build(text, {.bucket_width = 64});
  }
};

TEST(Aligner, ExactStageFindsPlantedRead) {
  const Fixture f;
  const Aligner aligner(f.fm);
  const auto read = f.text.slice(1000, 1060);
  const auto result = aligner.align(read);
  EXPECT_EQ(result.stage, AlignmentStage::kExact);
  ASSERT_TRUE(result.best().has_value());
  EXPECT_EQ(result.best()->diffs, 0U);
  bool found_origin = false;
  for (const auto& hit : result.hits) {
    if (hit.position == 1000 && hit.strand == Strand::kForward) {
      found_origin = true;
    }
  }
  EXPECT_TRUE(found_origin);
}

TEST(Aligner, ReverseComplementReadAlignsToForwardOrigin) {
  const Fixture f;
  const Aligner aligner(f.fm);
  const auto fwd = f.text.slice(2000, 2050);
  const auto read = genome::reverse_complement(fwd);
  const auto result = aligner.align(read);
  EXPECT_EQ(result.stage, AlignmentStage::kExact);
  bool found = false;
  for (const auto& hit : result.hits) {
    if (hit.position == 2000 && hit.strand == Strand::kReverseComplement) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Aligner, RcDisabledMissesReverseReads) {
  const Fixture f;
  AlignerOptions opt;
  opt.try_reverse_complement = false;
  opt.inexact.max_diffs = 0;
  const Aligner aligner(f.fm, opt);
  const auto read = genome::reverse_complement(f.text.slice(2000, 2050));
  EXPECT_FALSE(aligner.align(read).aligned());
}

TEST(Aligner, MutatedReadFallsToInexactStage) {
  const Fixture f;
  AlignerOptions opt;
  opt.inexact.max_diffs = 2;
  const Aligner aligner(f.fm, opt);
  auto read = f.text.slice(3000, 3050);
  read[10] = static_cast<Base>((static_cast<int>(read[10]) + 1) % 4);
  read[40] = static_cast<Base>((static_cast<int>(read[40]) + 2) % 4);
  const auto result = aligner.align(read);
  EXPECT_EQ(result.stage, AlignmentStage::kInexact);
  bool found = false;
  for (const auto& hit : result.hits) {
    if (hit.position == 3000) {
      found = true;
      EXPECT_LE(hit.diffs, 2U);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Aligner, OverMutatedReadStaysUnaligned) {
  const Fixture f;
  AlignerOptions opt;
  opt.inexact.max_diffs = 1;
  const Aligner aligner(f.fm, opt);
  auto read = f.text.slice(100, 140);
  // Mutate 8 spread positions — far beyond the budget.
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t pos = i * 5;
    read[pos] = static_cast<Base>((static_cast<int>(read[pos]) + 1) % 4);
  }
  const auto result = aligner.align(read);
  EXPECT_EQ(result.stage, AlignmentStage::kUnaligned);
  EXPECT_FALSE(result.best().has_value());
}

TEST(Aligner, MaxHitsCapsOutput) {
  const PackedSequence text("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA");
  const auto fm = index::FmIndex::build(text, {.bucket_width = 8});
  AlignerOptions opt;
  opt.max_hits = 5;
  const Aligner aligner(fm, opt);
  const auto result = aligner.align(genome::encode("AAAA"));
  EXPECT_EQ(result.stage, AlignmentStage::kExact);
  EXPECT_LE(result.hits.size(), 5U);
}

TEST(Aligner, HitsSortedByPosition) {
  const Fixture f;
  const Aligner aligner(f.fm);
  const auto result = aligner.align(f.text.slice(10, 30));
  EXPECT_TRUE(std::is_sorted(
      result.hits.begin(), result.hits.end(),
      [](const AlignmentHit& a, const AlignmentHit& b) {
        return a.position < b.position;
      }));
}

TEST(Aligner, BatchStatsReflectStageMix) {
  const Fixture f(30000, 3);
  AlignerOptions opt;
  opt.inexact.max_diffs = 2;
  const Aligner aligner(f.fm, opt);

  readsim::ReadSimSpec spec;
  spec.read_length = 70;
  spec.num_reads = 150;
  spec.population_variation_rate = 0.001;
  spec.sequencing_error_rate = 0.002;
  spec.seed = 21;
  const auto set = readsim::ReadSimulator(spec).generate(f.text);
  std::vector<std::vector<Base>> reads;
  reads.reserve(set.reads.size());
  for (const auto& r : set.reads) reads.push_back(r.bases);

  AlignerStats stats;
  const auto results = aligner.align_batch(reads, &stats);
  EXPECT_EQ(results.size(), reads.size());
  EXPECT_EQ(stats.reads_total, reads.size());
  EXPECT_EQ(stats.reads_exact + stats.reads_inexact + stats.reads_unaligned,
            stats.reads_total);
  // At these rates most reads align exactly, nearly all align overall.
  EXPECT_GT(stats.exact_fraction(), 0.6);
  EXPECT_LT(static_cast<double>(stats.reads_unaligned) /
                static_cast<double>(stats.reads_total),
            0.05);
}

TEST(Aligner, EveryExactStageReadTrulyOccurs) {
  const Fixture f(8000, 5);
  const Aligner aligner(f.fm);
  util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t start = rng.bounded(f.text.size() - 40);
    const auto read = f.text.slice(start, start + 40);
    const auto result = aligner.align(read);
    ASSERT_EQ(result.stage, AlignmentStage::kExact);
    for (const auto& hit : result.hits) {
      if (hit.strand != Strand::kForward) continue;
      EXPECT_EQ(f.text.slice(hit.position, hit.position + 40), read);
    }
  }
}

}  // namespace
}  // namespace pim::align
