#include "src/pim/platform.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/align/backward_search.h"
#include "src/align/inexact_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::hw {
namespace {

using genome::Base;

struct Fixture {
  genome::PackedSequence text;
  index::FmIndex fm;
  TimingEnergyModel model;
  std::unique_ptr<PimAlignerPlatform> platform;

  explicit Fixture(std::size_t length, std::uint64_t seed = 1) {
    genome::SyntheticGenomeSpec spec;
    spec.length = length;
    spec.seed = seed;
    text = genome::generate_reference(spec);
    fm = index::FmIndex::build(text, {.bucket_width = 128});
    platform = std::make_unique<PimAlignerPlatform>(fm, model);
  }
};

TEST(Platform, TileCountCoversBwt) {
  Fixture f(100000);
  // 100001 rows / 32768 per tile -> 4 tiles.
  EXPECT_EQ(f.platform->num_tiles(), 4U);
}

TEST(Platform, LfmMatchesSoftwareEverywhere) {
  Fixture f(70000, 3);
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint64_t id = rng.bounded(f.fm.num_rows() + 1);
    const auto nt = static_cast<Base>(rng.bounded(4));
    ASSERT_EQ(f.platform->lfm(nt, id), f.fm.lfm(nt, id))
        << "id=" << id << " nt=" << genome::to_char(nt);
  }
}

TEST(Platform, LfmAtEveryTileBoundary) {
  Fixture f(70000, 3);
  for (std::uint64_t id : {std::uint64_t{0}, std::uint64_t{32768},
                           std::uint64_t{65536}, f.fm.num_rows()}) {
    for (const auto nt : genome::kAllBases) {
      EXPECT_EQ(f.platform->lfm(nt, id), f.fm.lfm(nt, id)) << id;
    }
  }
}

TEST(Platform, BoundaryRegisterWhenBwtEndsOnTileEdge) {
  // Reference of exactly 32767 bases -> 32768 BWT rows == one full tile;
  // lfm at id == 32768 must come from the DPU boundary registers.
  Fixture f(32767, 9);
  ASSERT_EQ(f.fm.num_rows(), 32768U);
  EXPECT_EQ(f.platform->num_tiles(), 1U);
  for (const auto nt : genome::kAllBases) {
    EXPECT_EQ(f.platform->lfm(nt, 32768), f.fm.lfm(nt, 32768));
  }
  EXPECT_EQ(f.platform->aggregate_stats().boundary_marker_hits, 4U);
}

TEST(Platform, LfmOutOfRangeThrows) {
  Fixture f(1000);
  EXPECT_THROW(f.platform->lfm(Base::A, f.fm.num_rows() + 1),
               std::out_of_range);
}

TEST(Platform, ExtendMatchesSoftware) {
  Fixture f(20000, 7);
  util::Xoshiro256 rng(11);
  index::SaInterval sw = f.fm.whole_interval();
  index::SaInterval hwi = f.platform->whole_interval();
  for (int step = 0; step < 40 && sw.valid(); ++step) {
    const auto nt = static_cast<Base>(rng.bounded(4));
    sw = f.fm.extend(sw, nt);
    hwi = f.platform->extend_hw(hwi, nt);
    ASSERT_EQ(hwi, sw) << "step " << step;
  }
}

// Bit-identical end-to-end: hardware Algorithm 1 equals software.
TEST(Platform, ExactAlignBitIdentical) {
  Fixture f(40000, 13);
  util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Base> read;
    if (trial % 2 == 0) {
      const std::size_t start = rng.bounded(f.text.size() - 64);
      read = f.text.slice(start, start + 64);
    } else {
      for (int i = 0; i < 40; ++i) {
        read.push_back(static_cast<Base>(rng.bounded(4)));
      }
    }
    const auto sw = align::exact_search(f.fm, read);
    const auto hw_result = f.platform->exact_align(read);
    EXPECT_EQ(hw_result.interval, sw.interval);
    EXPECT_EQ(hw_result.steps, sw.steps);
  }
}

// Bit-identical Algorithm 2: intervals AND diff counts agree.
TEST(Platform, InexactAlignBitIdentical) {
  Fixture f(15000, 19);
  util::Xoshiro256 rng(23);
  align::InexactOptions opt;
  opt.max_diffs = 2;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t start = rng.bounded(f.text.size() - 24);
    auto read = f.text.slice(start, start + 24);
    read[5] = static_cast<Base>(rng.bounded(4));
    read[17] = static_cast<Base>(rng.bounded(4));
    const auto sw = align::inexact_search(f.fm, read, opt);
    const auto hw_result = f.platform->inexact_align(read, opt);
    ASSERT_EQ(hw_result.hits.size(), sw.hits.size());
    for (std::size_t i = 0; i < sw.hits.size(); ++i) {
      EXPECT_EQ(hw_result.hits[i].interval, sw.hits[i].interval);
      EXPECT_EQ(hw_result.hits[i].diffs, sw.hits[i].diffs);
    }
  }
}

TEST(Platform, StatsAccumulateAndReset) {
  Fixture f(5000);
  const auto read = f.text.slice(100, 150);
  f.platform->exact_align(read);
  auto stats = f.platform->aggregate_stats();
  EXPECT_GT(stats.lfm_calls, 0U);
  EXPECT_GT(stats.ops.triple_senses, 0U);
  EXPECT_GT(stats.ops.energy_pj, 0.0);
  f.platform->reset_stats();
  stats = f.platform->aggregate_stats();
  EXPECT_EQ(stats.lfm_calls, 0U);
  EXPECT_EQ(stats.ops.triple_senses, 0U);
}

TEST(Platform, LocateChargesSaReads) {
  Fixture f(5000);
  const auto read = f.text.slice(200, 240);
  const auto result = f.platform->exact_align(read);
  ASSERT_TRUE(result.found());
  const auto positions = f.platform->locate_all(result.interval);
  EXPECT_FALSE(positions.empty());
  EXPECT_EQ(f.platform->aggregate_stats().sa_mem_reads,
            result.interval.count());
  // Positions agree with the software index.
  EXPECT_EQ(positions, f.fm.locate_all(result.interval));
}

TEST(Platform, LoadStatsReportSetupCost) {
  Fixture f(5000);
  const auto load = f.platform->aggregate_load_stats();
  EXPECT_GT(load.writes, 0U);
  EXPECT_GT(load.energy_pj, 0.0);
}

// --- Geometry generality: a 1024x512 array organisation ---------------------

TEST(Platform, NonDefaultArrayOrganisation) {
  // 1024x512 sub-arrays: 256 bps per row, so the FM bucket width is 256 and
  // a tile covers 512 rows x 256 bps = 131'072 BWT positions.
  util::Config over;
  over.set_int("RowsPerSubarray", 1024);
  over.set_int("ColsPerSubarray", 512);
  const TimingEnergyModel timing(over);
  ZoneLayout layout;
  layout.bwt_rows = 512;
  layout.cref_rows = 4;
  layout.mt_rows = 128;
  layout.reserved_rows = 380;
  ASSERT_NO_THROW(layout.validate(timing));
  EXPECT_EQ(layout.bps_per_tile(timing.cols()), 131072U);

  genome::SyntheticGenomeSpec spec;
  spec.length = 200000;  // spans 2 tiles
  spec.seed = 44;
  const auto text = genome::generate_reference(spec);
  const auto fm = index::FmIndex::build(text, {.bucket_width = 256});
  PimAlignerPlatform platform(fm, timing, layout);
  EXPECT_EQ(platform.num_tiles(), 2U);

  util::Xoshiro256 rng(45);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t id = rng.bounded(fm.num_rows() + 1);
    const auto nt = static_cast<Base>(rng.bounded(4));
    ASSERT_EQ(platform.lfm(nt, id), fm.lfm(nt, id)) << id;
  }
  // End-to-end too.
  const auto read = text.slice(150000, 150080);
  const auto hw_result = platform.exact_align(read);
  const auto sw = align::exact_search(fm, read);
  EXPECT_EQ(hw_result.interval, sw.interval);
}

// --- Method-II (duplicated add arrays, Fig. 6d) ------------------------------

TEST(PlatformMethodII, LfmBitIdenticalToMethodI) {
  Fixture f(40000, 31);
  PimAlignerPlatform method2(f.fm, f.model, ZoneLayout{},
                             AddPlacement::kMethodII);
  util::Xoshiro256 rng(33);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t id = rng.bounded(f.fm.num_rows() + 1);
    const auto nt = static_cast<Base>(rng.bounded(4));
    ASSERT_EQ(method2.lfm(nt, id), f.fm.lfm(nt, id)) << id;
  }
}

TEST(PlatformMethodII, AlignmentResultsIdentical) {
  Fixture f(30000, 35);
  PimAlignerPlatform method2(f.fm, f.model, ZoneLayout{},
                             AddPlacement::kMethodII);
  util::Xoshiro256 rng(37);
  align::InexactOptions opt;
  opt.max_diffs = 2;
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t start = rng.bounded(f.text.size() - 40);
    auto read = f.text.slice(start, start + 40);
    read[11] = static_cast<Base>(rng.bounded(4));
    const auto a = f.platform->inexact_align(read, opt);
    const auto b = method2.inexact_align(read, opt);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].interval, b.hits[h].interval);
    }
  }
}

TEST(PlatformMethodII, ResourceSplitMatchesFig7) {
  Fixture f(20000, 39);
  PimAlignerPlatform method2(f.fm, f.model, ZoneLayout{},
                             AddPlacement::kMethodII);
  method2.reset_stats();
  util::Xoshiro256 rng(41);
  std::uint64_t off_checkpoint = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t id = 1 + rng.bounded(f.fm.num_rows() - 1);
    if (id % 128 != 0) ++off_checkpoint;
    method2.lfm(static_cast<Base>(rng.bounded(4)), id);
  }
  const auto total = method2.aggregate_stats();
  const auto add_side = method2.aggregate_duplicate_stats();
  // Compare side: exactly one triple sense (the XNOR_Match) per
  // off-checkpoint LFM; all adder triples live on the duplicates.
  EXPECT_EQ(total.ops.triple_senses - add_side.triple_senses,
            off_checkpoint);
  EXPECT_EQ(add_side.triple_senses, off_checkpoint * 32);
  // All steady-state writes (transpose + adder) are on the add side.
  EXPECT_EQ(add_side.writes, off_checkpoint * 97);
  EXPECT_EQ(total.ops.writes, add_side.writes);
}

TEST(PlatformMethodII, MethodIHasNoDuplicates) {
  Fixture f(5000);
  EXPECT_EQ(f.platform->placement(), AddPlacement::kMethodI);
  const auto dup = f.platform->aggregate_duplicate_stats();
  EXPECT_EQ(dup.writes, 0U);
  EXPECT_EQ(dup.triple_senses, 0U);
}

}  // namespace
}  // namespace pim::hw
