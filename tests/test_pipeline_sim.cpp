#include "src/pim/pipeline_sim.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pim::hw {
namespace {

const TimingEnergyModel& timing() {
  static TimingEnergyModel model;
  return model;
}

TEST(PipelineSim, BadConfigThrows) {
  PipelineSimConfig cfg;
  cfg.pd = 0;
  EXPECT_THROW(simulate_pipeline(timing(), cfg), std::invalid_argument);
  cfg.pd = 1;
  cfg.num_reads = 0;
  EXPECT_THROW(simulate_pipeline(timing(), cfg), std::invalid_argument);
}

TEST(PipelineSim, AccountingConsistent) {
  PipelineSimConfig cfg;
  cfg.pd = 2;
  cfg.num_reads = 16;
  cfg.lfm_per_read = 20;
  const auto r = simulate_pipeline(timing(), cfg);
  EXPECT_EQ(r.total_lfm, 320U);
  EXPECT_GT(r.wall_ns, 0.0);
  EXPECT_NEAR(r.measured_ii_ns, r.wall_ns / 320.0, 1e-9);
  EXPECT_NEAR(r.lfm_rate_hz * r.measured_ii_ns / 1e9, 1.0, 1e-9);
  ASSERT_EQ(r.array_busy_fraction.size(), 2U);
  for (const auto busy : r.array_busy_fraction) {
    EXPECT_GE(busy, 0.0);
    EXPECT_LE(busy, 1.0 + 1e-9);
  }
  EXPECT_LE(r.dpu_busy_fraction, 1.0 + 1e-9);
}

TEST(PipelineSim, SteadyStateMatchesAnalyticPd2) {
  // With many reads and LFMs, the measured initiation interval converges to
  // the analytic model's bottleneck-resource value.
  PipelineSimConfig cfg;
  cfg.pd = 2;
  cfg.num_reads = 64;
  cfg.lfm_per_read = 50;
  const auto r = simulate_pipeline(timing(), cfg);
  EXPECT_NEAR(r.measured_ii_ns, r.analytic_ii_ns,
              0.15 * r.analytic_ii_ns);
  // The add array is the bottleneck: it should be near-saturated.
  EXPECT_GT(r.array_busy_fraction[1], 0.85);
  // The XNOR array idles most of the time (it only does triple senses).
  EXPECT_LT(r.array_busy_fraction[0], 0.5);
}

TEST(PipelineSim, Pd1SerialIsSlowerThanPd2) {
  PipelineSimConfig cfg;
  cfg.num_reads = 48;
  cfg.lfm_per_read = 40;
  cfg.pd = 1;
  const auto r1 = simulate_pipeline(timing(), cfg);
  cfg.pd = 2;
  const auto r2 = simulate_pipeline(timing(), cfg);
  EXPECT_GT(r1.measured_ii_ns, r2.measured_ii_ns);
  // Pipelining gain in the simulated (not just analytic) machine lands in
  // the paper's ~40% regime; the event sim also overlaps DPU time under
  // array time, so allow a band.
  const double gain = r1.measured_ii_ns / r2.measured_ii_ns;
  EXPECT_GT(gain, 1.15);
  EXPECT_LT(gain, 1.9);
}

TEST(PipelineSim, MoreSlotsNeverSlower) {
  PipelineSimConfig cfg;
  cfg.pd = 2;
  cfg.num_reads = 32;
  cfg.lfm_per_read = 30;
  cfg.read_slots = 1;
  const auto starved = simulate_pipeline(timing(), cfg);
  cfg.read_slots = 8;
  const auto fed = simulate_pipeline(timing(), cfg);
  EXPECT_GE(starved.wall_ns, fed.wall_ns - 1e-6);
  // With one read in flight there is no overlap at all: ii == serial chain.
  EXPECT_GT(starved.measured_ii_ns, fed.measured_ii_ns);
}

TEST(PipelineSim, Deterministic) {
  PipelineSimConfig cfg;
  cfg.pd = 3;
  cfg.num_reads = 24;
  cfg.lfm_per_read = 15;
  const auto a = simulate_pipeline(timing(), cfg);
  const auto b = simulate_pipeline(timing(), cfg);
  EXPECT_DOUBLE_EQ(a.wall_ns, b.wall_ns);
  EXPECT_EQ(a.array_busy_fraction, b.array_busy_fraction);
}

TEST(PipelineSim, Pd3SplitsAddLoad) {
  PipelineSimConfig cfg;
  cfg.pd = 3;
  cfg.num_reads = 64;
  cfg.lfm_per_read = 40;
  const auto r = simulate_pipeline(timing(), cfg);
  ASSERT_EQ(r.array_busy_fraction.size(), 3U);
  // The two add arrays share the load roughly evenly.
  EXPECT_NEAR(r.array_busy_fraction[1], r.array_busy_fraction[2], 0.1);
  // And Pd=3 beats Pd=2.
  cfg.pd = 2;
  const auto r2 = simulate_pipeline(timing(), cfg);
  EXPECT_LT(r.measured_ii_ns, r2.measured_ii_ns);
}

}  // namespace
}  // namespace pim::hw
