#include "src/genome/fasta.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace pim::genome {
namespace {

TEST(Fasta, ParsesMultipleRecords) {
  std::istringstream in(
      ">chr1 test\n"
      "ACGT\n"
      "ACGT\n"
      ">chr2\n"
      "TTTT\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[0].name, "chr1 test");
  EXPECT_EQ(records[0].sequence.to_string(), "ACGTACGT");
  EXPECT_EQ(records[1].name, "chr2");
  EXPECT_EQ(records[1].sequence.to_string(), "TTTT");
}

TEST(Fasta, HandlesCrlfAndBlankLines) {
  std::istringstream in(">r\r\nAC\r\n\r\nGT\r\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].sequence.to_string(), "ACGT");
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  std::istringstream in("ACGT\n>late\nAC\n");
  EXPECT_THROW(read_fasta(in), std::runtime_error);
}

TEST(Fasta, NonAcgtSkipPolicy) {
  std::istringstream in(">r\nACNNGT\n");
  const auto records = read_fasta(in, NonAcgtPolicy::kSkip);
  EXPECT_EQ(records[0].sequence.to_string(), "ACGT");
  EXPECT_EQ(records[0].dropped, 2U);
}

TEST(Fasta, NonAcgtReplacePolicy) {
  std::istringstream in(">r\nACNNGT\n");
  const auto records = read_fasta(in, NonAcgtPolicy::kReplaceA);
  EXPECT_EQ(records[0].sequence.to_string(), "ACAAGT");
  EXPECT_EQ(records[0].dropped, 2U);
}

TEST(Fasta, NonAcgtThrowPolicy) {
  std::istringstream in(">r\nACNNGT\n");
  EXPECT_THROW(read_fasta(in, NonAcgtPolicy::kThrow), std::runtime_error);
}

TEST(Fasta, LowercaseAccepted) {
  std::istringstream in(">r\nacgt\n");
  const auto records = read_fasta(in);
  EXPECT_EQ(records[0].sequence.to_string(), "ACGT");
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<FastaRecord> records;
  records.push_back({"first", PackedSequence("ACGTACGTACGT"), 0});
  records.push_back({"second", PackedSequence("TT"), 0});
  std::ostringstream out;
  write_fasta(out, records, 5);  // exercise line wrapping
  std::istringstream in(out.str());
  const auto again = read_fasta(in);
  ASSERT_EQ(again.size(), 2U);
  EXPECT_EQ(again[0].name, "first");
  EXPECT_EQ(again[0].sequence.to_string(), "ACGTACGTACGT");
  EXPECT_EQ(again[1].sequence.to_string(), "TT");
}

TEST(Fasta, WriteSingleLineWhenWidthZero) {
  std::vector<FastaRecord> records;
  records.push_back({"r", PackedSequence("ACGTACGT"), 0});
  std::ostringstream out;
  write_fasta(out, records, 0);
  EXPECT_EQ(out.str(), ">r\nACGTACGT\n");
}

}  // namespace
}  // namespace pim::genome
