#include "src/align/sam_writer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/genome/synthetic_genome.h"

namespace pim::align {
namespace {

using genome::Base;
using genome::PackedSequence;

struct Fixture {
  PackedSequence reference;
  index::FmIndex fm;
  Fixture() {
    genome::SyntheticGenomeSpec spec;
    spec.length = 8000;
    spec.seed = 4;
    reference = genome::generate_reference(spec);
    fm = index::FmIndex::build(reference, {.bucket_width = 64});
  }
};

std::vector<std::string> split(const std::string& line, char sep = '\t') {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string field;
  while (std::getline(in, field, sep)) out.push_back(field);
  return out;
}

TEST(SamWriter, HeaderLines) {
  const Fixture f;
  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  writer.write_header("pim-aligner", "9.9");
  const std::string text = out.str();
  EXPECT_NE(text.find("@HD\tVN:1.6"), std::string::npos);
  EXPECT_NE(text.find("@SQ\tSN:chrTest\tLN:8000"), std::string::npos);
  EXPECT_NE(text.find("@PG\tID:pim-aligner"), std::string::npos);
}

TEST(SamWriter, ExactForwardHit) {
  const Fixture f;
  const Aligner aligner(f.fm);
  const auto read = f.reference.slice(1000, 1050);
  const auto result = aligner.align(read);
  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  writer.write_alignment("q1", read, result);
  ASSERT_GE(writer.records_written(), 1U);
  const auto fields = split(split(out.str(), '\n')[0]);
  ASSERT_GE(fields.size(), 11U);
  EXPECT_EQ(fields[0], "q1");
  EXPECT_EQ(fields[1], "0");          // forward, primary, mapped
  EXPECT_EQ(fields[2], "chrTest");
  EXPECT_EQ(fields[3], "1001");       // 1-based
  EXPECT_EQ(fields[5], "50M");
  EXPECT_EQ(fields[9], genome::decode(read));
  EXPECT_NE(out.str().find("NM:i:0"), std::string::npos);
}

TEST(SamWriter, ReverseStrandHitStoresReferenceOrientation) {
  const Fixture f;
  const Aligner aligner(f.fm);
  const auto fwd = f.reference.slice(3000, 3040);
  const auto read = genome::reverse_complement(fwd);
  const auto result = aligner.align(read);
  ASSERT_EQ(result.stage, AlignmentStage::kExact);
  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  const std::string qual(read.size(), 'I');
  writer.write_alignment("q2", read, result, qual);
  const auto fields = split(split(out.str(), '\n')[0]);
  EXPECT_EQ(std::stoi(fields[1]) & SamRecord::kFlagReverse,
            SamRecord::kFlagReverse);
  // SEQ is in reference orientation == the original forward slice.
  EXPECT_EQ(fields[9], genome::decode(fwd));
  EXPECT_EQ(fields[10], qual);  // flat quality is its own reverse
}

TEST(SamWriter, UnalignedRecord) {
  const Fixture f;
  AlignmentResult empty;  // kUnaligned
  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  writer.write_alignment("q3", genome::encode("ACGTACGT"), empty);
  const auto fields = split(split(out.str(), '\n')[0]);
  EXPECT_EQ(std::stoi(fields[1]) & SamRecord::kFlagUnmapped,
            SamRecord::kFlagUnmapped);
  EXPECT_EQ(fields[2], "*");
  EXPECT_EQ(fields[3], "0");
  EXPECT_EQ(fields[5], "*");
  EXPECT_EQ(out.str().find("NM:i:"), std::string::npos);
}

TEST(SamWriter, SecondaryFlagsForMultiHits) {
  // A repetitive reference: the read maps to many places.
  const PackedSequence reference("ACGTACGTACGTACGTACGTACGTACGTACGT");
  const auto fm = index::FmIndex::build(reference, {.bucket_width = 8});
  const Aligner aligner(fm);
  const auto read = genome::encode("ACGTACGT");
  const auto result = aligner.align(read);
  ASSERT_GT(result.hits.size(), 1U);
  std::ostringstream out;
  SamWriter writer(out, "rep", reference);
  writer.write_alignment("q4", read, result);
  const auto lines = split(out.str(), '\n');
  int secondary = 0;
  for (const auto& line : lines) {
    if (line.empty()) continue;
    const auto fields = split(line);
    if (std::stoi(fields[1]) & SamRecord::kFlagSecondary) ++secondary;
  }
  EXPECT_EQ(secondary, static_cast<int>(writer.records_written()) - 1);
  // Multi-mapped primary gets a low MAPQ.
  EXPECT_LE(std::stoi(split(lines[0])[4]), 3);
}

TEST(SamWriter, MismatchHitKeepsFullLengthCigar) {
  const Fixture f;
  AlignerOptions opt;
  opt.inexact.max_diffs = 1;
  const Aligner aligner(f.fm, opt);
  auto read = f.reference.slice(2000, 2040);
  read[20] = static_cast<Base>((static_cast<int>(read[20]) + 1) % 4);
  const auto result = aligner.align(read);
  ASSERT_EQ(result.stage, AlignmentStage::kInexact);
  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  writer.write_alignment("q5", read, result);
  const auto fields = split(split(out.str(), '\n')[0]);
  // A substitution keeps the CIGAR one 40M run; NM carries the distance.
  EXPECT_EQ(fields[5], "40M");
  EXPECT_NE(out.str().find("NM:i:1"), std::string::npos);
}

TEST(SamWriter, IndelHitProducesIndelCigar) {
  const Fixture f;
  AlignerOptions opt;
  opt.inexact.max_diffs = 1;
  opt.inexact.mode = EditMode::kFullEdit;
  const Aligner aligner(f.fm, opt);
  auto bases = f.reference.slice(4000, 4041);
  bases.erase(bases.begin() + 20);  // 1-bp deletion in the read
  const auto result = aligner.align(bases);
  ASSERT_TRUE(result.aligned());
  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  writer.write_alignment("q6", bases, result);
  bool has_indel_cigar = false;
  for (const auto& line : split(out.str(), '\n')) {
    if (line.empty()) continue;
    const auto fields = split(line);
    if (fields[5].find('D') != std::string::npos ||
        fields[5].find('I') != std::string::npos) {
      has_indel_cigar = true;
    }
  }
  EXPECT_TRUE(has_indel_cigar);
}

TEST(SamWriter, QualityLengthMismatchThrows) {
  const Fixture f;
  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  AlignmentResult empty;
  EXPECT_THROW(
      writer.write_alignment("q", genome::encode("ACGT"), empty,
                             std::string("II")),
      std::invalid_argument);
}

TEST(SamWriter, ProperPairRecords) {
  const Fixture f;
  PairedOptions popt;
  popt.single.inexact.max_diffs = 2;
  popt.insert_mean = 300;
  popt.insert_sd = 30;
  const PairedAligner paired(f.fm, popt);
  const auto r1 = f.reference.slice(1000, 1100);
  const auto r2 = genome::reverse_complement(f.reference.slice(1200, 1300));
  const auto result = paired.align_pair(r1, r2);
  ASSERT_EQ(result.cls, PairClass::kProperPair);

  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  writer.write_pair("p1", r1, r2, result);
  const auto lines = split(out.str(), '\n');
  ASSERT_GE(lines.size(), 2U);
  const auto f1 = split(lines[0]);
  const auto f2 = split(lines[1]);
  const int flag1 = std::stoi(f1[1]);
  const int flag2 = std::stoi(f2[1]);
  EXPECT_TRUE(flag1 & SamRecord::kFlagPaired);
  EXPECT_TRUE(flag1 & SamRecord::kFlagProperPair);
  EXPECT_TRUE(flag1 & SamRecord::kFlagFirstInPair);
  EXPECT_TRUE(flag2 & SamRecord::kFlagSecondInPair);
  EXPECT_TRUE(flag1 & SamRecord::kFlagMateReverse);  // mate 2 is reverse
  EXPECT_TRUE(flag2 & SamRecord::kFlagReverse);
  // Cross links: RNEXT "=", PNEXT = mate's POS, TLEN +/- 300.
  EXPECT_EQ(f1[6], "=");
  EXPECT_EQ(f1[7], f2[3]);
  EXPECT_EQ(f2[7], f1[3]);
  EXPECT_EQ(std::stol(f1[8]), 300);
  EXPECT_EQ(std::stol(f2[8]), -300);
}

TEST(SamWriter, OneMateUnmappedPair) {
  const Fixture f;
  PairedOptions popt;
  popt.single.inexact.max_diffs = 0;
  const PairedAligner paired(f.fm, popt);
  const auto r1 = f.reference.slice(2000, 2100);
  std::vector<Base> junk(100, Base::A);
  junk[3] = Base::C;  // poly-A-ish junk: not in this reference
  const auto result = paired.align_pair(r1, junk);
  ASSERT_EQ(result.cls, PairClass::kOneMate);

  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  writer.write_pair("p2", r1, junk, result);
  const auto lines = split(out.str(), '\n');
  const int flag1 = std::stoi(split(lines[0])[1]);
  const int flag2 = std::stoi(split(lines[1])[1]);
  EXPECT_TRUE(flag1 & SamRecord::kFlagMateUnmapped);
  EXPECT_FALSE(flag1 & SamRecord::kFlagProperPair);
  EXPECT_TRUE(flag2 & SamRecord::kFlagUnmapped);
  EXPECT_TRUE(flag2 & SamRecord::kFlagSecondInPair);
}

TEST(SamWriter, SanitizeQname) {
  EXPECT_EQ(sanitize_qname("read1"), "read1");
  EXPECT_EQ(sanitize_qname("read1 ground:truth comment"), "read1");
  EXPECT_EQ(sanitize_qname("read1\tBC:Z:ACGT"), "read1");
  EXPECT_EQ(sanitize_qname(" leading"), "");
  EXPECT_EQ(sanitize_qname(""), "");
}

TEST(SamWriter, EmptyBatchWritesNothing) {
  const Fixture f;
  std::ostringstream out;
  SamWriter writer(out, "chrTest", f.reference);
  const ReadBatch batch;
  const BatchResult results;
  writer.write_batch(batch, results);
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(writer.records_written(), 0U);
}

// Golden-file test over hand-built pair results, covering the pair flag
// bits, TLEN signs (including the r1.pos == r2.pos tie), QNAME comment
// trimming, and the unmapped-mate placement recommended by the SAM spec.
// Every field is deterministic: forced exact hits make CIGAR/NM trivial and
// MAPQ fixed. Regenerate the golden after an intended format change by
// copying /tmp/pim_paired_end_actual.sam (dumped on mismatch) over
// tests/golden/paired_end.sam and reviewing the diff.
TEST(SamWriter, PairedGoldenFile) {
  const std::string ref_str =
      "ACGTAGCTTGCAATCGGATCAAGCTTGACCGTTAGGCCAT"
      "GGATCCAGTACTGGTTACGCGTTAACCGGATATCGGCTAA"
      "CCTAGGTTGCAGATCCGGAACGTTGCCTAGATCGGATTCA"
      "TTGACCGGTAAGCTTGGATCCGTAACGGCTTAGGCATCGA"
      "AGGCTTAACCGGATCGTTGCAGGATCCATAGGCTTAACGG";
  const PackedSequence reference(ref_str);
  ASSERT_EQ(reference.size(), 200U);

  std::ostringstream out;
  SamWriter writer(out, "chrG", reference);
  writer.write_header();

  // Pair A: proper pair, mate 2 reverse, FASTQ comment in the QNAME.
  {
    const AlignmentHit h1{10, 0, Strand::kForward};
    const AlignmentHit h2{110, 0, Strand::kReverseComplement};
    PairedResult res;
    res.cls = PairClass::kProperPair;
    res.pair = ProperPair{h1, h2, 120, 0};
    res.mate1 = {AlignmentStage::kExact, {h1}};
    res.mate2 = {AlignmentStage::kExact, {h2}};
    writer.write_pair("pairA ground:truth comment", reference.slice(10, 30),
                      genome::reverse_complement(reference.slice(110, 130)),
                      res, std::string("AAAABBBBCCCCDDDDEEEE"),
                      std::string("FFFFGGGGHHHHIIIIJJJJ"));
  }
  // Pair B: both mates start at the same coordinate — the TLEN signs must
  // still be one plus and one minus.
  {
    const AlignmentHit h1{50, 0, Strand::kForward};
    const AlignmentHit h2{50, 0, Strand::kReverseComplement};
    PairedResult res;
    res.cls = PairClass::kProperPair;
    res.pair = ProperPair{h1, h2, 20, 0};
    res.mate1 = {AlignmentStage::kExact, {h1}};
    res.mate2 = {AlignmentStage::kExact, {h2}};
    writer.write_pair("pairB", reference.slice(50, 70),
                      genome::reverse_complement(reference.slice(50, 70)),
                      res);
  }
  // Pair C: mate 2 unmapped — per spec it takes its mate's RNAME/POS so the
  // pair survives coordinate sorting, and keeps flag 0x4 with CIGAR "*".
  {
    const AlignmentHit h1{30, 0, Strand::kForward};
    PairedResult res;
    res.cls = PairClass::kOneMate;
    res.mate1 = {AlignmentStage::kExact, {h1}};
    writer.write_pair("pairC", reference.slice(30, 50),
                      genome::encode("ACACACACACACACACACAC"), res);
  }

  const auto lines = split(out.str(), '\n');
  ASSERT_GE(lines.size(), 9U);  // 3 header + 6 records

  // Semantic spot checks, independent of the golden bytes.
  const auto a1 = split(lines[3]), a2 = split(lines[4]);
  EXPECT_EQ(a1[0], "pairA");  // comment trimmed...
  EXPECT_EQ(a2[0], "pairA");  // ...identically on both mates
  EXPECT_EQ(std::stoi(a1[1]), 0x1 | 0x2 | 0x20 | 0x40);  // 99
  EXPECT_EQ(std::stoi(a2[1]), 0x1 | 0x2 | 0x10 | 0x80);  // 147
  EXPECT_EQ(std::stol(a1[8]), 120);
  EXPECT_EQ(std::stol(a2[8]), -120);
  EXPECT_EQ(a2[10], "JJJJIIIIHHHHGGGGFFFF");  // reversed qualities

  const auto b1 = split(lines[5]), b2 = split(lines[6]);
  EXPECT_EQ(b1[3], b2[3]);  // tie: same POS
  EXPECT_EQ(std::stol(b1[8]), 20);
  EXPECT_EQ(std::stol(b2[8]), -20);

  const auto c1 = split(lines[7]), c2 = split(lines[8]);
  EXPECT_TRUE(std::stoi(c1[1]) & SamRecord::kFlagMateUnmapped);
  EXPECT_TRUE(std::stoi(c2[1]) & SamRecord::kFlagUnmapped);
  EXPECT_EQ(c2[2], c1[2]);  // unmapped mate placed at its mate's RNAME...
  EXPECT_EQ(c2[3], c1[3]);  // ...and POS
  EXPECT_EQ(c2[5], "*");    // but stays CIGAR-less
  EXPECT_EQ(c1[6], "=");
  EXPECT_EQ(c1[7], c1[3]);  // PNEXT = co-located mate
  EXPECT_EQ(c2[6], "=");

  // Byte-exact golden comparison.
  std::ifstream golden(std::string(PIMALIGNER_SOURCE_DIR) +
                       "/tests/golden/paired_end.sam");
  ASSERT_TRUE(golden.good()) << "missing tests/golden/paired_end.sam";
  std::stringstream want;
  want << golden.rdbuf();
  if (out.str() != want.str()) {
    std::ofstream dump("/tmp/pim_paired_end_actual.sam");
    dump << out.str();
  }
  EXPECT_EQ(out.str(), want.str())
      << "actual output dumped to /tmp/pim_paired_end_actual.sam";
}

TEST(EstimateMapq, Heuristic) {
  EXPECT_EQ(estimate_mapq(0, 0), 0);
  EXPECT_EQ(estimate_mapq(1, 0), 60);
  EXPECT_EQ(estimate_mapq(1, 1), 50);
  EXPECT_EQ(estimate_mapq(1, 5), 20);  // floor
  EXPECT_EQ(estimate_mapq(2, 0), 3);
  EXPECT_EQ(estimate_mapq(9, 0), 0);
}

}  // namespace
}  // namespace pim::align
