#include "src/varcall/snv_caller.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/align/aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"
#include "src/util/rng.h"

namespace pim::varcall {
namespace {

using genome::Base;
using genome::PackedSequence;

// --- Pileup -------------------------------------------------------------------

TEST(Pileup, AllMatchRead) {
  Pileup pileup(10);
  AlignedRead read;
  read.position = 2;
  read.bases = genome::encode("ACGT");
  pileup.add(read);
  EXPECT_EQ(pileup.reads_added(), 1U);
  EXPECT_EQ(pileup.count(2, Base::A), 1U);
  EXPECT_EQ(pileup.count(3, Base::C), 1U);
  EXPECT_EQ(pileup.count(5, Base::T), 1U);
  EXPECT_EQ(pileup.depth(2), 1U);
  EXPECT_EQ(pileup.depth(0), 0U);
  EXPECT_EQ(pileup.depth(6), 0U);
}

TEST(Pileup, CigarWalking) {
  // 2M 1I 2M 1D 2M over read ACGTAAC... read = A C | G | T A | (del) | A C
  Pileup pileup(10);
  AlignedRead read;
  read.position = 0;
  read.bases = genome::encode("ACGTAAC");
  read.cigar = {{align::CigarOp::kMatch, 2},
                {align::CigarOp::kInsertion, 1},
                {align::CigarOp::kMatch, 2},
                {align::CigarOp::kDeletion, 1},
                {align::CigarOp::kMatch, 2}};
  pileup.add(read);
  EXPECT_EQ(pileup.count(0, Base::A), 1U);
  EXPECT_EQ(pileup.count(1, Base::C), 1U);
  // G was the insertion: attributed to no reference position.
  EXPECT_EQ(pileup.count(2, Base::T), 1U);
  EXPECT_EQ(pileup.count(3, Base::A), 1U);
  EXPECT_EQ(pileup.depth(4), 0U);  // deleted reference base: no observation
  EXPECT_EQ(pileup.count(5, Base::A), 1U);
  EXPECT_EQ(pileup.count(6, Base::C), 1U);
}

TEST(Pileup, ReadPastReferenceEndIgnored) {
  Pileup pileup(4);
  AlignedRead read;
  read.position = 2;
  read.bases = genome::encode("ACGT");
  EXPECT_NO_THROW(pileup.add(read));
  EXPECT_EQ(pileup.depth(2), 1U);
  EXPECT_EQ(pileup.depth(3), 1U);
}

TEST(Pileup, BadCigarThrows) {
  Pileup pileup(10);
  AlignedRead read;
  read.position = 0;
  read.bases = genome::encode("AC");
  read.cigar = {{align::CigarOp::kMatch, 5}};  // consumes past the read
  EXPECT_THROW(pileup.add(read), std::invalid_argument);
}

TEST(Pileup, ConsensusAndMeanDepth) {
  Pileup pileup(3);
  for (int i = 0; i < 3; ++i) {
    AlignedRead read;
    read.position = 0;
    read.bases = genome::encode("AGT");
    pileup.add(read);
  }
  AlignedRead dissent;
  dissent.position = 0;
  dissent.bases = genome::encode("CGT");
  pileup.add(dissent);
  EXPECT_EQ(pileup.consensus(0), Base::A);  // 3 A vs 1 C
  EXPECT_EQ(pileup.consensus(1), Base::G);
  EXPECT_DOUBLE_EQ(pileup.mean_depth(), 4.0);
}

// --- SNV caller ----------------------------------------------------------------

TEST(SnvCaller, LengthMismatchThrows) {
  Pileup pileup(10);
  EXPECT_THROW(call_snvs(pileup, PackedSequence("ACGT")),
               std::invalid_argument);
}

TEST(SnvCaller, CallsPlantedSite) {
  const PackedSequence reference("AAAAAAAAAA");
  Pileup pileup(10);
  for (int i = 0; i < 10; ++i) {
    AlignedRead read;
    read.position = 0;
    read.bases = genome::encode("AAAAGAAAAA");  // G at position 4
    pileup.add(read);
  }
  const auto calls = call_snvs(pileup, reference);
  ASSERT_EQ(calls.size(), 1U);
  EXPECT_EQ(calls[0].position, 4U);
  EXPECT_EQ(calls[0].ref_base, Base::A);
  EXPECT_EQ(calls[0].alt_base, Base::G);
  EXPECT_EQ(calls[0].depth, 10U);
  EXPECT_DOUBLE_EQ(calls[0].alt_fraction, 1.0);
}

TEST(SnvCaller, ThresholdsSuppressNoise) {
  const PackedSequence reference("AAAAAAAAAA");
  Pileup pileup(10);
  // 10 clean reads + 2 reads with an error at position 7.
  for (int i = 0; i < 10; ++i) {
    AlignedRead read;
    read.position = 0;
    read.bases = genome::encode("AAAAAAAAAA");
    pileup.add(read);
  }
  for (int i = 0; i < 2; ++i) {
    AlignedRead read;
    read.position = 0;
    read.bases = genome::encode("AAAAAAATAA");
    pileup.add(read);
  }
  EXPECT_TRUE(call_snvs(pileup, reference).empty());  // 2/12 < 50%
  SnvCallerOptions loose;
  loose.min_alt_fraction = 0.1;
  loose.min_alt_count = 2;
  const auto calls = call_snvs(pileup, reference, loose);
  ASSERT_EQ(calls.size(), 1U);
  EXPECT_EQ(calls[0].position, 7U);
}

TEST(SnvCaller, ScoreCalls) {
  std::vector<SnvCall> calls;
  calls.push_back({100, Base::A, Base::G, 20, 19, 0.95});
  calls.push_back({200, Base::C, Base::T, 20, 18, 0.9});
  calls.push_back({300, Base::G, Base::A, 20, 20, 1.0});  // false positive
  const std::vector<std::pair<std::uint64_t, Base>> truth = {
      {100, Base::G}, {200, Base::T}, {400, Base::C}};  // 400 missed
  const auto accuracy = score_calls(calls, truth);
  EXPECT_EQ(accuracy.true_positives, 2U);
  EXPECT_EQ(accuracy.false_positives, 1U);
  EXPECT_EQ(accuracy.false_negatives, 1U);
  EXPECT_NEAR(accuracy.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(accuracy.recall(), 2.0 / 3.0, 1e-12);
}

// --- End to end: plant SNVs, sequence, align, pile, call ------------------------

TEST(SnvCaller, EndToEndRecoversPlantedVariants) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 30000;
  spec.seed = 51;
  const PackedSequence reference = genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});

  // Haploid donor: 25 planted SNVs.
  PackedSequence donor = reference;
  util::Xoshiro256 rng(52);
  std::vector<std::pair<std::uint64_t, Base>> truth;
  for (int v = 0; v < 25; ++v) {
    const std::uint64_t pos = 200 + rng.bounded(reference.size() - 400);
    const Base ref_base = reference.at(pos);
    const Base alt =
        static_cast<Base>((static_cast<int>(ref_base) + 1 +
                           static_cast<int>(rng.bounded(3))) % 4);
    if (alt == ref_base) continue;
    donor.set(pos, alt);
    truth.emplace_back(pos, alt);
  }

  // ~20x coverage of 100-bp reads from the donor.
  readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 6000;
  rspec.population_variation_rate = 0.0;  // variants are planted, not drawn
  rspec.sequencing_error_rate = 0.002;
  rspec.seed = 53;
  const auto set = readsim::ReadSimulator(rspec).generate(donor);

  // Align to the REFERENCE and pile up.
  align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  options.max_hits = 4;
  const align::Aligner aligner(fm, options);
  Pileup pileup(reference.size());
  for (const auto& read : set.reads) {
    const auto result = aligner.align(read.bases);
    const auto best = result.best();
    if (!best) continue;
    AlignedRead aligned;
    aligned.position = best->position;
    aligned.bases = best->strand == align::Strand::kForward
                        ? read.bases
                        : genome::reverse_complement(read.bases);
    pileup.add(aligned);
  }
  EXPECT_GT(pileup.mean_depth(), 12.0);

  const auto calls = call_snvs(pileup, reference);
  const auto accuracy = score_calls(calls, truth);
  EXPECT_GT(accuracy.recall(), 0.9);
  EXPECT_GT(accuracy.precision(), 0.9);
}

}  // namespace
}  // namespace pim::varcall
