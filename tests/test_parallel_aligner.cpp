#include "src/align/parallel_aligner.h"

#include <gtest/gtest.h>

#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"

namespace pim::align {
namespace {

struct Fixture {
  genome::PackedSequence reference;
  index::FmIndex fm;
  std::vector<std::vector<genome::Base>> reads;

  Fixture() {
    genome::SyntheticGenomeSpec spec;
    spec.length = 50000;
    spec.seed = 8;
    reference = genome::generate_reference(spec);
    fm = index::FmIndex::build(reference, {.bucket_width = 128});
    readsim::ReadSimSpec rspec;
    rspec.read_length = 80;
    rspec.num_reads = 200;
    rspec.seed = 9;
    const auto set = readsim::ReadSimulator(rspec).generate(reference);
    for (const auto& r : set.reads) reads.push_back(r.bases);
  }
};

TEST(ParallelAligner, ResultsIdenticalToSerial) {
  Fixture f;
  AlignerOptions opt;
  opt.inexact.max_diffs = 2;
  const Aligner aligner(f.fm, opt);
  AlignerStats serial_stats, parallel_stats;
  const auto serial = aligner.align_batch(f.reads, &serial_stats);
  const auto parallel =
      align_batch_parallel(aligner, f.reads, 4, &parallel_stats);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].stage, serial[i].stage) << i;
    ASSERT_EQ(parallel[i].hits.size(), serial[i].hits.size()) << i;
    for (std::size_t h = 0; h < serial[i].hits.size(); ++h) {
      EXPECT_EQ(parallel[i].hits[h].position, serial[i].hits[h].position);
      EXPECT_EQ(parallel[i].hits[h].diffs, serial[i].hits[h].diffs);
      EXPECT_EQ(parallel[i].hits[h].strand, serial[i].hits[h].strand);
    }
  }
  EXPECT_EQ(parallel_stats.reads_total, serial_stats.reads_total);
  EXPECT_EQ(parallel_stats.reads_exact, serial_stats.reads_exact);
  EXPECT_EQ(parallel_stats.reads_inexact, serial_stats.reads_inexact);
  EXPECT_EQ(parallel_stats.reads_unaligned, serial_stats.reads_unaligned);
}

TEST(ParallelAligner, SingleThreadWorks) {
  Fixture f;
  const Aligner aligner(f.fm);
  const auto results = align_batch_parallel(aligner, f.reads, 1);
  EXPECT_EQ(results.size(), f.reads.size());
}

TEST(ParallelAligner, MoreThreadsThanReads) {
  Fixture f;
  const Aligner aligner(f.fm);
  std::vector<std::vector<genome::Base>> two(f.reads.begin(),
                                             f.reads.begin() + 2);
  const auto results = align_batch_parallel(aligner, two, 16);
  EXPECT_EQ(results.size(), 2U);
}

TEST(ParallelAligner, EmptyBatch) {
  Fixture f;
  const Aligner aligner(f.fm);
  AlignerStats stats;
  const auto results = align_batch_parallel(aligner, {}, 4, &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.reads_total, 0U);
}

TEST(ParallelAligner, DefaultThreadCount) {
  Fixture f;
  const Aligner aligner(f.fm);
  const auto results = align_batch_parallel(aligner, f.reads, 0);
  EXPECT_EQ(results.size(), f.reads.size());
}

}  // namespace
}  // namespace pim::align
