#include "src/align/smith_waterman.h"

#include <gtest/gtest.h>

#include <string>

#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace pim::align {
namespace {

using genome::encode;

TEST(SmithWaterman, PerfectMatchScoresFullLength) {
  const auto ref = encode("TTTTACGTACGTTTT");
  const auto read = encode("ACGTACGT");
  const SwResult r = smith_waterman(ref, read, {}, /*traceback=*/true);
  EXPECT_EQ(r.score, 16);  // 8 matches x 2
  EXPECT_EQ(r.ref_begin, 4U);
  EXPECT_EQ(r.ref_end, 12U);
  EXPECT_EQ(r.read_begin, 0U);
  EXPECT_EQ(r.read_end, 8U);
  EXPECT_EQ(cigar_to_string(r.cigar), "8M");
}

TEST(SmithWaterman, EmptyInputsScoreZero) {
  EXPECT_EQ(smith_waterman({}, encode("ACGT")).score, 0);
  EXPECT_EQ(smith_waterman(encode("ACGT"), {}).score, 0);
}

TEST(SmithWaterman, MismatchInMiddle) {
  const auto ref = encode("AAAACGTACGTAAAA");
  const auto read = encode("ACGTGCGT");  // one substitution vs ACGTACGT
  const SwResult r = smith_waterman(ref, read, {}, true);
  EXPECT_EQ(r.score, 2 * 7 - 1);  // 7 matches, 1 mismatch
  EXPECT_EQ(cigar_to_string(r.cigar), "4M1X3M");
}

TEST(SmithWaterman, GapInRead) {
  const auto ref = encode("TTACGTACGTTT");
  const auto read = encode("ACGTCGT");  // A deleted relative to ACGTACGT
  const SwResult r = smith_waterman(ref, read, {}, true);
  // 7 matches (14) - one 1-bp deletion (2) = 12.
  EXPECT_EQ(r.score, 12);
  EXPECT_EQ(cigar_to_string(r.cigar), "4M1D3M");
}

TEST(SmithWaterman, GapInReference) {
  const auto ref = encode("TTACGTCGTTT");
  const auto read = encode("ACGTACGT");
  const SwResult r = smith_waterman(ref, read, {}, true);
  EXPECT_EQ(r.score, 12);
  EXPECT_EQ(cigar_to_string(r.cigar), "4M1I3M");
}

TEST(SmithWaterman, LocalAlignmentIgnoresBadFlanks) {
  // Score must never go negative: the local alignment restarts.
  const auto ref = encode("GGGGGGGG");
  const auto read = encode("TTTTGGGG");
  const SwResult r = smith_waterman(ref, read);
  EXPECT_EQ(r.score, 8);  // the GGGG core only
}

TEST(SmithWaterman, CellsComputedIsNm) {
  const auto ref = encode("ACGTACGTAC");
  const auto read = encode("ACGT");
  const SwResult r = smith_waterman(ref, read);
  EXPECT_EQ(r.cells_computed, 40U);
}

TEST(SmithWaterman, CustomScoring) {
  SwScoring scoring;
  scoring.match = 5;
  scoring.mismatch = -4;
  scoring.gap_open = scoring.gap_extend = -10;
  const auto ref = encode("ACGTACGT");
  const auto read = encode("ACGTACGT");
  EXPECT_EQ(smith_waterman(ref, read, scoring).score, 40);
}

TEST(SmithWatermanBanded, WideBandMatchesFull) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 300;
  spec.seed = 8;
  const auto text = genome::generate_reference(spec);
  const auto ref = text.unpack();
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t len = 20 + rng.bounded(20);
    const std::size_t start = rng.bounded(ref.size() - len);
    std::vector<genome::Base> read(ref.begin() + static_cast<long>(start),
                                   ref.begin() + static_cast<long>(start + len));
    const SwResult full = smith_waterman(ref, read);
    // A band as wide as the reference is equivalent to full DP.
    const SwResult banded = smith_waterman_banded(
        ref, read, 0, static_cast<std::uint32_t>(ref.size()));
    EXPECT_EQ(banded.score, full.score) << trial;
  }
}

TEST(SmithWatermanBanded, NarrowBandComputesFewerCells) {
  genome::SyntheticGenomeSpec spec;
  spec.length = 500;
  spec.seed = 10;
  const auto text = genome::generate_reference(spec);
  const auto ref = text.unpack();
  const auto read = text.slice(200, 260);
  const SwResult full = smith_waterman(ref, read);
  const SwResult banded = smith_waterman_banded(ref, read, 200, 8);
  EXPECT_LT(banded.cells_computed, full.cells_computed / 10);
  // Centred on the true diagonal, the banded score finds the same optimum.
  EXPECT_EQ(banded.score, full.score);
}

TEST(SmithWaterman, CigarRoundTripConsistency) {
  // The CIGAR's consumed lengths must equal the aligned span lengths.
  genome::SyntheticGenomeSpec spec;
  spec.length = 200;
  spec.seed = 12;
  const auto text = genome::generate_reference(spec);
  const auto ref = text.unpack();
  util::Xoshiro256 rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t len = 15 + rng.bounded(15);
    const std::size_t start = rng.bounded(ref.size() - len);
    std::vector<genome::Base> read(ref.begin() + static_cast<long>(start),
                                   ref.begin() + static_cast<long>(start + len));
    read[rng.bounded(read.size())] = static_cast<genome::Base>(rng.bounded(4));
    const SwResult r = smith_waterman(ref, read, {}, true);
    std::uint64_t ref_consumed = 0, read_consumed = 0;
    for (const auto& e : r.cigar) {
      if (e.op != CigarOp::kInsertion) ref_consumed += e.length;
      if (e.op != CigarOp::kDeletion) read_consumed += e.length;
    }
    EXPECT_EQ(ref_consumed, r.ref_end - r.ref_begin);
    EXPECT_EQ(read_consumed, r.read_end - r.read_begin);
  }
}

TEST(CigarToString, Empty) { EXPECT_EQ(cigar_to_string({}), ""); }

}  // namespace
}  // namespace pim::align
