#include "src/accel/chip_sim.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "src/accel/contention.h"

namespace pim::accel {
namespace {

TEST(ChipSim, BadConfigThrows) {
  ChipSimConfig cfg;
  cfg.groups = 0;
  EXPECT_THROW(simulate_chip(cfg), std::invalid_argument);
  cfg.groups = 4;
  cfg.service_ns = 0.0;
  EXPECT_THROW(simulate_chip(cfg), std::invalid_argument);
  cfg.service_ns = 16.0;
  cfg.warmup_fraction = 1.0;  // the whole horizon discarded: nothing measured
  EXPECT_THROW(simulate_chip(cfg), std::invalid_argument);
  cfg.warmup_fraction = -0.1;
  EXPECT_THROW(simulate_chip(cfg), std::invalid_argument);
  cfg.warmup_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(simulate_chip(cfg), std::invalid_argument);
}

TEST(ChipSim, DeterministicInSeed) {
  ChipSimConfig cfg;
  cfg.reads_to_complete = 200;
  const auto a = simulate_chip(cfg);
  const auto b = simulate_chip(cfg);
  EXPECT_DOUBLE_EQ(a.wall_ns, b.wall_ns);
  EXPECT_DOUBLE_EQ(a.p95_latency_ns, b.p95_latency_ns);
}

TEST(ChipSim, LittlesLawHolds) {
  ChipSimConfig cfg;
  cfg.groups = 32;
  cfg.concurrent_reads = 64;
  cfg.lfm_per_read = 100;
  cfg.reads_to_complete = 3000;
  const auto r = simulate_chip(cfg);
  // Pre-S43 the cold-start ramp inflated this to ~0.01 and the bound was a
  // loose 0.05; with the warm-up discarded, steady state holds it well
  // under 0.01.
  EXPECT_LT(r.littles_law_residual, 0.01);
}

TEST(ChipSim, WarmupDiscardsColdStartRamp) {
  // All C reads start at t = 0, so the first completions see less queueing
  // than steady state. Discarding the warm-up must (a) report the discard,
  // (b) start the measurement window at the last warm-up completion, and
  // (c) beat the cold-start tallies on the Little's-law residual.
  ChipSimConfig cfg;
  cfg.groups = 32;
  cfg.concurrent_reads = 64;
  cfg.lfm_per_read = 100;
  cfg.reads_to_complete = 3000;
  const auto warm = simulate_chip(cfg);
  EXPECT_EQ(warm.warmup_reads, 300u);  // ceil(0.1 * 3000)
  EXPECT_GT(warm.warmup_ns, 0.0);
  EXPECT_LT(warm.warmup_ns, warm.wall_ns);
  EXPECT_EQ(warm.reads_completed, 3000u);

  cfg.warmup_fraction = 0.0;  // the pre-S43 cold-start tallies
  const auto cold = simulate_chip(cfg);
  EXPECT_EQ(cold.warmup_reads, 0u);
  EXPECT_DOUBLE_EQ(cold.warmup_ns, 0.0);
  EXPECT_LT(warm.littles_law_residual, cold.littles_law_residual);
  // The ramp's under-queued completions biased cold throughput high AND its
  // mean latency low; steady state must sit between the cold extremes.
  EXPECT_GT(warm.mean_read_latency_ns, cold.mean_read_latency_ns);
}

TEST(ChipSim, WarmupKeepsDeterminism) {
  ChipSimConfig cfg;
  cfg.reads_to_complete = 400;
  cfg.warmup_fraction = 0.25;
  const auto a = simulate_chip(cfg);
  const auto b = simulate_chip(cfg);
  EXPECT_DOUBLE_EQ(a.wall_ns, b.wall_ns);
  EXPECT_DOUBLE_EQ(a.warmup_ns, b.warmup_ns);
  EXPECT_DOUBLE_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_DOUBLE_EQ(a.p99_latency_ns, b.p99_latency_ns);
}

TEST(ChipSim, UtilizationTracksOccupancyLaw) {
  // At low load (C << G) the dynamic utilization approaches the static
  // occupancy C/G; the balls-in-bins law is the sparse limit.
  ChipSimConfig cfg;
  cfg.groups = 64;
  cfg.lfm_per_read = 50;
  cfg.reads_to_complete = 4000;
  cfg.concurrent_reads = 16;  // load 0.25
  const auto sparse = simulate_chip(cfg);
  EXPECT_NEAR(sparse.mean_group_utilization, 16.0 / 64.0, 0.03);

  cfg.concurrent_reads = 128;  // load 2
  const auto dense = simulate_chip(cfg);
  // Random routing leaves some groups idle while others queue, so dynamic
  // utilization sits a little below the static occupancy law at load 2
  // (~77% vs 86.5%) and converges toward 100% only at high load.
  EXPECT_GT(dense.mean_group_utilization, 0.70);
  EXPECT_LT(dense.mean_group_utilization,
            expected_occupancy_asymptotic(2.0) + 0.02);
  cfg.concurrent_reads = 512;  // load 8
  EXPECT_GT(simulate_chip(cfg).mean_group_utilization, 0.9);
}

TEST(ChipSim, ThroughputSaturatesWithLoad) {
  ChipSimConfig cfg;
  cfg.groups = 16;
  cfg.lfm_per_read = 50;
  cfg.service_ns = 10.0;
  cfg.reads_to_complete = 2000;
  double prev = 0.0;
  for (const std::uint32_t c : {4U, 16U, 64U, 256U}) {
    cfg.concurrent_reads = c;
    const auto r = simulate_chip(cfg);
    EXPECT_GE(r.throughput_qps, prev * 0.98) << c;
    prev = r.throughput_qps;
  }
  // Structural ceiling: G groups / (lfm * service) reads per second.
  // Random routing keeps the asymptote slightly below it.
  const double ceiling = 16.0 / (50.0 * 10e-9);
  cfg.concurrent_reads = 256;
  EXPECT_LT(simulate_chip(cfg).throughput_qps, ceiling * 1.001);
  EXPECT_GT(simulate_chip(cfg).throughput_qps, ceiling * 0.90);
}

TEST(ChipSim, LatencyGrowsWithContention) {
  ChipSimConfig cfg;
  cfg.groups = 16;
  cfg.lfm_per_read = 50;
  cfg.reads_to_complete = 1500;
  cfg.concurrent_reads = 8;
  const auto light = simulate_chip(cfg);
  cfg.concurrent_reads = 128;
  const auto heavy = simulate_chip(cfg);
  EXPECT_GT(heavy.mean_read_latency_ns, light.mean_read_latency_ns * 2.0);
  EXPECT_GE(heavy.p99_latency_ns, heavy.p50_latency_ns);
  EXPECT_GE(light.p95_latency_ns, light.p50_latency_ns);
}

TEST(ChipSim, ZeroContentionLatencyIsServiceChain) {
  // One read, any number of groups: latency == lfm * service exactly.
  ChipSimConfig cfg;
  cfg.groups = 8;
  cfg.concurrent_reads = 1;
  cfg.lfm_per_read = 40;
  cfg.service_ns = 5.0;
  cfg.reads_to_complete = 50;
  const auto r = simulate_chip(cfg);
  EXPECT_NEAR(r.mean_read_latency_ns, 200.0, 1e-9);
  EXPECT_NEAR(r.p99_latency_ns, 200.0, 1e-9);
}

}  // namespace
}  // namespace pim::accel
