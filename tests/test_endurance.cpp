#include "src/pim/endurance.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/genome/synthetic_genome.h"

namespace pim::hw {
namespace {

struct Fixture {
  genome::PackedSequence text;
  index::FmIndex fm;
  TimingEnergyModel model;
  ZoneLayout layout;

  Fixture() {
    genome::SyntheticGenomeSpec spec;
    spec.length = 20000;
    spec.seed = 6;
    text = genome::generate_reference(spec);
    fm = index::FmIndex::build(text, {.bucket_width = 128});
  }
};

TEST(Endurance, RequiresTracking) {
  Fixture f;
  PimTile tile(f.model, f.layout, f.fm, 0);
  EXPECT_THROW(analyze_endurance(tile.array(), f.layout, 1),
               std::invalid_argument);
}

TEST(SubArray, WriteTrackingCounts) {
  TimingEnergyModel model;
  SubArray array(model);
  array.enable_write_tracking();
  EXPECT_TRUE(array.write_tracking_enabled());
  array.write_row(5, util::BitVector(array.cols()));
  array.write_row(5, util::BitVector(array.cols()));
  array.write_word_vertical(0, 10, 4, 0xF);
  EXPECT_EQ(array.row_write_counts()[5], 2U);
  for (std::uint32_t r = 10; r < 14; ++r) {
    EXPECT_EQ(array.row_write_counts()[r], 1U);
  }
  array.reset_write_counts();
  EXPECT_EQ(array.row_write_counts()[5], 0U);
}

TEST(Endurance, CarryRowIsTheHotSpot) {
  Fixture f;
  PimTile tile(f.model, f.layout, f.fm, 0);
  tile.array().enable_write_tracking();
  std::uint64_t lfm_count = 0;
  for (std::uint64_t id = 1; id < 5000; id += 37) {
    if (id % 128 == 0) continue;
    tile.lfm(genome::Base::C, id);
    ++lfm_count;
  }
  const auto report = analyze_endurance(tile.array(), f.layout, lfm_count);
  EXPECT_GT(report.total_writes, 0U);
  // The carry row takes 33 writes per off-checkpoint LFM — more than any
  // sum/count row (1 each) and the untouched BWT/MT data rows (0).
  EXPECT_EQ(report.hottest_zone, "reserved");
  EXPECT_EQ(report.hottest_row,
            f.layout.reserved_zone_begin() + f.layout.carry_row_offset());
  EXPECT_NEAR(report.hottest_writes_per_lfm(), 33.0, 0.01);
}

TEST(Endurance, ZoneTotalsSumToTotal) {
  Fixture f;
  PimTile tile(f.model, f.layout, f.fm, 0);
  tile.array().enable_write_tracking();
  for (std::uint64_t id = 1; id < 1000; id += 13) {
    if (id % 128 == 0) continue;
    tile.lfm(genome::Base::A, id);
  }
  const auto report = analyze_endurance(tile.array(), f.layout, 1);
  std::uint64_t sum = 0;
  for (const auto& z : report.by_zone) sum += z.writes;
  EXPECT_EQ(sum, report.total_writes);
  // Steady-state LFM traffic never writes the BWT or CRef zones.
  for (const auto& z : report.by_zone) {
    if (z.zone == "BWT" || z.zone == "CRef") EXPECT_EQ(z.writes, 0U);
  }
}

TEST(Endurance, LifetimeProjection) {
  EnduranceReport report;
  report.hottest_row_writes = 33;
  report.lfm_count = 1;
  // Per-tile LFM rate at full chip throughput: ~2e9 LFM/s spread over
  // ~97'657 tiles ~ 2.05e4 LFM/s per tile. Against 1e15 cycles the carry
  // row survives ~47 years — SOT-MRAM endurance absorbs the hot spot.
  const double years = report.projected_lifetime_years(2.05e4, 1e15);
  EXPECT_GT(years, 30.0);
  EXPECT_LT(years, 70.0);
  // A ReRAM-class cell (1e8 cycles) in the same role would die within
  // hours — the endurance advantage the paper's introduction cites.
  EXPECT_LT(report.projected_lifetime_years(2.05e4, 1e8), 1e-2);
  // No writes => effectively unlimited.
  EnduranceReport idle;
  EXPECT_GT(idle.projected_lifetime_years(2.05e4, 1e15), 1e17);
}

}  // namespace
}  // namespace pim::hw
