#!/usr/bin/env python3
"""Gate the S40 JSON-line metrics schema (see src/obs/reporter.h).

Usage: check_metrics_schema.py [--require-prefix=PREFIX ...] FILE [FILE...]

Each FILE holds JSON lines as emitted by obs::write_json_lines (metric and
trace lines; non-JSON lines are rejected). The schema is the interface CI
artifacts and downstream plots parse, so a field rename or type change must
fail here (and in tests/test_obs.cpp) in the PR that makes it.

Checks, per line:
  * the line parses as a JSON object;
  * metric lines carry exactly the fields for their "type":
      counter:   metric, type, value (int)
      gauge:     metric, type, value (number)
      histogram: metric, type, count, sum, min, max, mean, p50, p90, p95,
                 p99
  * trace lines carry exactly: trace, seq, thread, depth, start_ms,
    duration_ms;
  * histogram percentiles are ordered (p50 <= p90 <= p95 <= p99) and
    clamped to [min, max]; counters are non-negative integers.

--require-prefix=PREFIX (repeatable) additionally asserts that at least one
metric whose name starts with PREFIX appears across the given files — CI
uses it to prove whole series exist (e.g. service.index_cache. for the S42
multi-reference serving path), not just that whatever was emitted is
well-formed.

Exits non-zero on the first violating file, printing every violation.
"""

import json
import numbers
import sys

METRIC_FIELDS = {
    "counter": ["metric", "type", "value"],
    "gauge": ["metric", "type", "value"],
    "histogram": [
        "metric", "type", "count", "sum", "min", "max", "mean",
        "p50", "p90", "p95", "p99",
    ],
}
TRACE_FIELDS = ["trace", "seq", "thread", "depth", "start_ms", "duration_ms"]


def check_line(line, lineno, errors, seen_metrics):
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        errors.append(f"line {lineno}: not JSON ({e})")
        return
    if not isinstance(obj, dict):
        errors.append(f"line {lineno}: not a JSON object")
        return

    if "metric" in obj:
        if isinstance(obj["metric"], str):
            seen_metrics.add(obj["metric"])
        mtype = obj.get("type")
        want = METRIC_FIELDS.get(mtype)
        if want is None:
            errors.append(f"line {lineno}: unknown metric type {mtype!r}")
            return
        if sorted(obj) != sorted(want):
            errors.append(
                f"line {lineno}: {obj['metric']}: fields {sorted(obj)} != "
                f"schema {sorted(want)}")
            return
        if mtype == "counter":
            if not isinstance(obj["value"], int) or obj["value"] < 0:
                errors.append(
                    f"line {lineno}: {obj['metric']}: counter value "
                    f"{obj['value']!r} is not a non-negative integer")
        elif mtype == "gauge":
            if not isinstance(obj["value"], numbers.Real):
                errors.append(
                    f"line {lineno}: {obj['metric']}: gauge value "
                    f"{obj['value']!r} is not a number")
        else:  # histogram
            for key in want[2:]:
                if not isinstance(obj[key], numbers.Real):
                    errors.append(
                        f"line {lineno}: {obj['metric']}: {key} "
                        f"{obj[key]!r} is not a number")
                    return
            if obj["count"] > 0:
                if not (obj["min"] <= obj["p50"] <= obj["p90"]
                        <= obj["p95"] <= obj["p99"] <= obj["max"]):
                    errors.append(
                        f"line {lineno}: {obj['metric']}: percentiles not "
                        f"ordered within [min, max]")
    elif "trace" in obj:
        if sorted(obj) != sorted(TRACE_FIELDS):
            errors.append(
                f"line {lineno}: trace fields {sorted(obj)} != "
                f"schema {sorted(TRACE_FIELDS)}")
    else:
        errors.append(f"line {lineno}: neither a metric nor a trace line")


def check_file(path, seen_metrics):
    errors = []
    lines = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            check_line(line, lineno, errors, seen_metrics)
    if lines == 0:
        errors.append("file is empty (expected at least one metric line)")
    return lines, errors


def main(argv):
    prefixes = []
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--require-prefix="):
            prefixes.append(arg[len("--require-prefix="):])
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    seen_metrics = set()
    for path in paths:
        lines, errors = check_file(path, seen_metrics)
        if errors:
            failed = True
            print(f"{path}: SCHEMA VIOLATIONS")
            for error in errors:
                print(f"  {error}")
        else:
            print(f"{path}: {lines} lines OK")
    for prefix in prefixes:
        matches = sorted(m for m in seen_metrics if m.startswith(prefix))
        if matches:
            print(f"prefix {prefix!r}: {len(matches)} metrics present")
        else:
            failed = True
            print(f"prefix {prefix!r}: NO metrics found across "
                  f"{len(paths)} file(s)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
