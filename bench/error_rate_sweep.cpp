// Workload sweep — error-rate sensitivity of the two-stage pipeline.
//
// The paper fixes population variation at 0.1% and sequencing error at
// 0.2% and allows z <= 2 mismatches. This sweep shows how those choices
// interact: the stage mix, the fraction of reads the z-budget can still
// place, and the backtracking cost (explored search states) as error rates
// grow — quantifying "handles mismatches to reduce excessive backtracking".
#include <cstdio>

#include "src/align/aligner.h"
#include "src/align/inexact_search.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 1 << 19;
  spec.seed = 23;
  const auto reference = pim::genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});

  std::printf("=== Error-rate sweep (100-bp reads, z = 2) ===\n\n");
  TextTable out({"error rate", "exact %", "inexact %", "unaligned %",
                 "avg states/inexact read", "avg states (no pruning)"});

  for (const double rate : {0.001, 0.002, 0.005, 0.01, 0.02, 0.04}) {
    pim::readsim::ReadSimSpec rspec;
    rspec.read_length = 100;
    rspec.num_reads = 200;
    rspec.population_variation_rate = 0.0;  // isolate the sequencing knob
    rspec.sequencing_error_rate = rate;
    rspec.seed = static_cast<std::uint64_t>(rate * 1e6) + 7;
    const auto set = pim::readsim::ReadSimulator(rspec).generate(reference);

    pim::align::AlignerOptions options;
    options.inexact.max_diffs = 2;
    const pim::align::Aligner aligner(fm, options);

    std::uint64_t exact = 0, inexact = 0, unaligned = 0;
    std::uint64_t states_pruned = 0, states_raw = 0, inexact_runs = 0;
    for (const auto& read : set.reads) {
      const auto result = aligner.align(read.bases);
      switch (result.stage) {
        case pim::align::AlignmentStage::kExact: ++exact; break;
        case pim::align::AlignmentStage::kInexact: ++inexact; break;
        case pim::align::AlignmentStage::kUnaligned: ++unaligned; break;
      }
      if (result.stage != pim::align::AlignmentStage::kExact &&
          inexact_runs < 40) {
        // Sample the backtracking cost with and without the D-array.
        pim::align::InexactOptions with = options.inexact;
        pim::align::InexactOptions without = options.inexact;
        without.use_lower_bound_pruning = false;
        states_pruned +=
            pim::align::inexact_search(fm, read.bases, with).states_explored;
        states_raw +=
            pim::align::inexact_search(fm, read.bases, without)
                .states_explored;
        ++inexact_runs;
      }
    }
    const double n = static_cast<double>(set.reads.size());
    out.add_row(
        {TextTable::num(rate * 100.0) + " %",
         TextTable::num(100.0 * static_cast<double>(exact) / n),
         TextTable::num(100.0 * static_cast<double>(inexact) / n),
         TextTable::num(100.0 * static_cast<double>(unaligned) / n),
         inexact_runs ? TextTable::num(static_cast<double>(states_pruned) /
                                       static_cast<double>(inexact_runs))
                      : "-",
         inexact_runs ? TextTable::num(static_cast<double>(states_raw) /
                                       static_cast<double>(inexact_runs))
                      : "-"});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\ntakeaways: at the paper's 0.2%% the z=2 budget places nearly"
              " everything; past ~1%% per-base error\nthe unaligned tail "
              "grows (>2 differences per 100 bp becomes common) and the "
              "D-array pruning's\nstate reduction is what keeps stage two "
              "affordable.\n");
  return 0;
}
