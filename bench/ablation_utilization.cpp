// Ablation — the Resource Utilization Ratio model (Fig. 10c).
//
// RUR is modeled as group occupancy under R resident reads over G pipeline
// groups: 1 - (1 - 1/G)^R -> 1 - e^(-R/G). This bench validates the closed
// form against Monte-Carlo and sweeps the load factor, showing where the
// paper's "up to ~86%" (load = 2, i.e. Pd = 2) sits on the curve.
#include <cstdio>

#include "src/accel/contention.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  std::printf("=== RUR occupancy model validation ===\n\n");
  constexpr std::uint64_t kGroups = 32;  // the chip model's pipeline count
  TextTable out({"resident reads", "load R/G", "closed form",
                 "Monte-Carlo (4k trials)", "asymptotic 1-e^-x"});
  for (const std::uint64_t reads :
       {8ULL, 16ULL, 32ULL, 48ULL, 64ULL, 96ULL, 128ULL}) {
    const double load = static_cast<double>(reads) / kGroups;
    const auto mc = pim::accel::simulate_occupancy(kGroups, reads, 4000, 7);
    out.add_row({std::to_string(reads), pim::util::TextTable::num(load),
                 TextTable::num(pim::accel::expected_occupancy(kGroups, reads)),
                 TextTable::num(mc.mean_occupancy) + " +- " +
                     TextTable::num(mc.stddev),
                 TextTable::num(pim::accel::expected_occupancy_asymptotic(load))});
  }
  std::printf("%s", out.render().c_str());

  std::printf("\nanchors used by the chip model:\n");
  std::printf("  Pd=1 (load 1): RUR = %.1f%%   (Fig. 10c: PIM-Aligner-n)\n",
              pim::accel::expected_occupancy_asymptotic(1.0) * 100.0);
  std::printf("  Pd=2 (load 2): RUR = %.1f%%   (paper: 'up to ~86%%')\n",
              pim::accel::expected_occupancy_asymptotic(2.0) * 100.0);
  return 0;
}
