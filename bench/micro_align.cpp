// Micro-benchmarks of the alignment algorithms (google-benchmark):
// O(m) FM-index backward search versus O(nm) Smith-Waterman — the
// complexity contrast of Section II — plus inexact-search cost versus
// mismatch budget and the effect of lower-bound pruning.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/align/backward_search.h"
#include "src/align/engine.h"
#include "src/align/inexact_search.h"
#include "src/align/smith_waterman.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"

namespace {

struct Workload {
  pim::genome::PackedSequence reference;
  std::vector<pim::genome::Base> ref_bases;
  pim::index::FmIndex fm;
  std::vector<std::vector<pim::genome::Base>> reads;

  explicit Workload(std::size_t n = 1 << 18) {
    pim::genome::SyntheticGenomeSpec spec;
    spec.length = n;
    spec.seed = 11;
    reference = pim::genome::generate_reference(spec);
    ref_bases = reference.unpack();
    fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
    pim::util::Xoshiro256 rng(13);
    for (int i = 0; i < 64; ++i) {
      const std::size_t start = rng.bounded(reference.size() - 100);
      auto read = reference.slice(start, start + 100);
      if (i % 3 == 1) read[50] = static_cast<pim::genome::Base>(rng.bounded(4));
      if (i % 3 == 2) {
        read[20] = static_cast<pim::genome::Base>(rng.bounded(4));
        read[80] = static_cast<pim::genome::Base>(rng.bounded(4));
      }
      reads.push_back(std::move(read));
    }
  }
};

Workload& workload() {
  static Workload w;
  return w;
}

void BM_FmExactSearch(benchmark::State& state) {
  auto& w = workload();
  const auto read_len = static_cast<std::size_t>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    auto read = w.reads[i++ % w.reads.size()];
    read.resize(read_len);
    benchmark::DoNotOptimize(pim::align::exact_search(w.fm, read));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FmExactSearch)->Arg(25)->Arg(50)->Arg(100)->Complexity();

void BM_SmithWatermanFull(benchmark::State& state) {
  auto& w = workload();
  // Full O(nm) DP against a reference window (full 262 kbp would dominate
  // the suite's runtime; the point is the per-cell cost).
  const std::vector<pim::genome::Base> window(
      w.ref_bases.begin(), w.ref_bases.begin() + (1 << 14));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& read = w.reads[i++ % w.reads.size()];
    benchmark::DoNotOptimize(pim::align::smith_waterman(window, read));
  }
}
BENCHMARK(BM_SmithWatermanFull);

void BM_SmithWatermanBanded(benchmark::State& state) {
  auto& w = workload();
  const std::vector<pim::genome::Base> window(
      w.ref_bases.begin(), w.ref_bases.begin() + (1 << 14));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& read = w.reads[i++ % w.reads.size()];
    benchmark::DoNotOptimize(pim::align::smith_waterman_banded(
        window, read, 0, static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_SmithWatermanBanded)->Arg(8)->Arg(32)->Arg(128);

void BM_InexactSearch(benchmark::State& state) {
  auto& w = workload();
  pim::align::InexactOptions opt;
  opt.max_diffs = static_cast<std::uint32_t>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pim::align::inexact_search(w.fm, w.reads[i++ % w.reads.size()], opt));
  }
}
BENCHMARK(BM_InexactSearch)->Arg(0)->Arg(1)->Arg(2);

void BM_InexactSearchNoPruning(benchmark::State& state) {
  auto& w = workload();
  pim::align::InexactOptions opt;
  opt.max_diffs = static_cast<std::uint32_t>(state.range(0));
  opt.use_lower_bound_pruning = false;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pim::align::inexact_search(w.fm, w.reads[i++ % w.reads.size()], opt));
  }
}
BENCHMARK(BM_InexactSearchNoPruning)->Arg(1)->Arg(2);

// The two batch dispatch paths over the same reads: legacy vector-of-vectors
// through Aligner::align_batch versus the packed ReadBatch arena through
// SoftwareEngine. Same search work by construction; the delta is the
// per-read allocation/copy overhead the engine layer removes (the dedicated
// engine_throughput bench quantifies it at production batch sizes).
void BM_AlignBatchLegacy(benchmark::State& state) {
  auto& w = workload();
  pim::align::AlignerOptions opt;
  opt.inexact.max_diffs = 2;
  const pim::align::Aligner aligner(w.fm, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aligner.align_batch(w.reads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.reads.size()));
}
BENCHMARK(BM_AlignBatchLegacy);

void BM_AlignBatchEngine(benchmark::State& state) {
  auto& w = workload();
  pim::align::AlignerOptions opt;
  opt.inexact.max_diffs = 2;
  const pim::align::SoftwareEngine engine(w.fm, opt);
  const auto batch = pim::align::ReadBatch::from_reads(w.reads);
  pim::align::BatchResult results;
  for (auto _ : state) {
    engine.align_batch(batch, results);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_AlignBatchEngine);

void BM_IndexBuild(benchmark::State& state) {
  pim::genome::SyntheticGenomeSpec spec;
  spec.length = static_cast<std::size_t>(state.range(0));
  spec.seed = 17;
  const auto text = pim::genome::generate_reference(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pim::index::FmIndex::build(text, {.bucket_width = 128}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(1 << 14)->Arg(1 << 16)->Arg(1 << 18)->Complexity();

void print_complexity_contrast() {
  auto& w = workload();
  const auto& read = w.reads[0];
  const auto exact = pim::align::exact_search(w.fm, read);
  const auto sw =
      pim::align::smith_waterman(w.ref_bases, read);
  std::printf("\n=== O(m) vs O(nm) work contrast (Sec. II) ===\n");
  std::printf("backward search: %u LFM steps for a %zu-bp read\n",
              exact.steps * 2, read.size());
  std::printf("Smith-Waterman:  %llu DP cells for the same read vs %zu bp\n",
              static_cast<unsigned long long>(sw.cells_computed),
              w.ref_bases.size());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_complexity_contrast();
  return 0;
}
