// Figure 8 — (a) power consumption and (b) throughput of the ten platforms
// on the 10M x 100-bp short-read workload against the 3.2 Gbp reference.
//
// Baseline rows are literature constants (see baseline_models.cpp for
// provenance); the two PIM-Aligner rows come from the chip model driven by
// the sub-array timing/energy model. The paper's qualitative findings
// are checked and printed at the end.
//
// S43 appends a host->chip transfer sweep: the paper's throughput figures
// assume reads are already resident; the sweep re-derives PIM-Aligner-p's
// effective throughput when the 10M-read workload must be STAGED over a
// host link of each candidate bandwidth (double-buffered, per the fleet's
// TransferModel/StagingTimeline), emitting one JSON line per operating
// point tagged compute-bound or transfer-bound. Bandwidths bracket the
// critical point bw* = staged bytes / compute time, so both regimes always
// appear.
#include <cstdio>

#include <algorithm>

#include "src/accel/comparison.h"
#include "src/pim/transfer.h"
#include "src/util/config.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;
  const auto table = pim::accel::build_default_comparison();

  std::printf("=== Fig. 8a/8b: power and throughput ===\n");
  std::printf("workload: 10M 100-bp reads vs 3.2 Gbp reference (Sec. VI)\n\n");
  TextTable out({"accelerator", "family", "power (W)", "throughput (q/s)"});
  for (const auto& row : table.rows) {
    out.add_row({row.name,
                 row.family == pim::accel::AlgorithmFamily::kSmithWaterman
                     ? "SW"
                     : "FM-index",
                 TextTable::num(row.power_w),
                 TextTable::num(row.throughput_qps)});
  }
  std::printf("%s", out.render().c_str());

  const auto ratios = pim::accel::compute_headline_ratios(table);
  std::printf("\npipeline gain (Pd=2 vs baseline): %.2fx  (paper: ~1.4x)\n",
              ratios.pipeline_gain);
  std::printf("PIM-Aligner-p at Pd=2: %.1f W / %.2fe6 q/s"
              "  (paper Fig. 9c annotation: 28.4 W / 6.7e6 q/s)\n",
              table.pim_p.power_w, table.pim_p.throughput_qps / 1e6);

  // Qualitative checks from the Fig. 8 discussion.
  bool race_fastest = true;
  for (const auto& row : table.rows) {
    if (row.name != "RaceLogic" &&
        row.throughput_qps > table.row("RaceLogic").throughput_qps) {
      race_fastest = false;
    }
  }
  std::printf("\nchecks:\n");
  std::printf("  [%s] SW platforms (except RaceLogic) draw the most power\n",
              (table.row("Darwin").power_w > 100 &&
               table.row("ReCAM").power_w > 100 &&
               table.row("RaceLogic").power_w <
                   table.row("Darwin").power_w)
                  ? "ok"
                  : "!!");
  std::printf("  [%s] PIM-Aligner-p fastest except RaceLogic (Fig. 8b)\n",
              race_fastest &&
                      table.pim_p.throughput_qps >
                          table.row("AligneR").throughput_qps
                  ? "ok"
                  : "!!");
  std::printf("  [%s] AligneR, ASIC, AlignS consume the least power\n",
              (table.row("AlignS").power_w < 10 &&
               table.row("ASIC").power_w < 1 &&
               table.row("AligneR").power_w < 15)
                  ? "ok"
                  : "!!");

  // --- S43: transfer-aware operating points (JSON lines) ------------------
  // Stage the Fig. 8 workload in 1M-read generations over a host link and
  // let generation N+1's staging overlap generation N's alignment. The
  // compute-only row above is the bw -> infinity asymptote.
  const double device_qps = table.pim_p.throughput_qps;
  const std::uint64_t total_reads = 10'000'000;
  const std::uint64_t gen_reads = 1'000'000;
  const std::uint32_t read_length = 100;
  const pim::hw::TransferModel pricing;  // defaults: packing + descriptor
  const double bytes_per_gen = static_cast<double>(
      gen_reads * pricing.read_bytes(read_length));
  const double compute_ns_per_gen =
      static_cast<double>(gen_reads) / device_qps * 1e9;
  // Critical bandwidth: the link rate where staging a generation takes as
  // long as aligning it (GB/s == bytes/ns).
  const double critical_gbs = bytes_per_gen / compute_ns_per_gen;
  std::printf("\n=== S43: PIM-Aligner-p with host->chip staging "
              "(bw* = %.2f GB/s) ===\n",
              critical_gbs);
  bool saw_transfer = false;
  bool saw_compute = false;
  const double sweep_gbs[] = {critical_gbs * 0.25, critical_gbs * 0.5,
                              critical_gbs, critical_gbs * 2.0,
                              critical_gbs * 4.0, 16.0};
  for (const double gbs : sweep_gbs) {
    pim::util::Config cfg;
    cfg.set_double("HostLinkBandwidthGBs", gbs);
    const pim::hw::TransferModel model(cfg);
    pim::hw::StagingTimeline timeline(/*double_buffer=*/true);
    double stall_ns = 0.0;
    for (std::uint64_t g = 0; g < total_reads / gen_reads; ++g) {
      const auto cost = model.staging_cost(
          static_cast<std::uint64_t>(bytes_per_gen));
      stall_ns += timeline.advance(cost.latency_ns, compute_ns_per_gen)
                      .stall_ns;
    }
    const double effective_qps =
        static_cast<double>(total_reads) / (timeline.makespan_ns() * 1e-9);
    const bool transfer_bound = gbs < critical_gbs;
    saw_transfer = saw_transfer || transfer_bound;
    saw_compute = saw_compute || !transfer_bound;
    std::printf(
        "{\"bench\":\"fig8_transfer_sweep\",\"bandwidth_gbs\":%.3f,"
        "\"reads\":%llu,\"device_qps\":%.0f,\"effective_qps\":%.0f,"
        "\"retained_pct\":%.1f,\"stall_ns\":%.0f,\"overlapped_ns\":%.0f,"
        "\"serial_ns\":%.0f,\"bound\":\"%s\"}\n",
        gbs, static_cast<unsigned long long>(total_reads), device_qps,
        effective_qps, 100.0 * effective_qps / device_qps, stall_ns,
        timeline.makespan_ns(), timeline.serial_sum_ns(),
        transfer_bound ? "transfer" : "compute");
  }
  std::printf("\n  [%s] sweep covers transfer-bound AND compute-bound "
              "operating points\n",
              saw_transfer && saw_compute ? "ok" : "!!");
  return saw_transfer && saw_compute ? 0 : 1;
}
