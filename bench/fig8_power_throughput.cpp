// Figure 8 — (a) power consumption and (b) throughput of the ten platforms
// on the 10M x 100-bp short-read workload against the 3.2 Gbp reference.
//
// Baseline rows are literature constants (see baseline_models.cpp for
// provenance); the two PIM-Aligner rows come from the chip model driven by
// the sub-array timing/energy model. The paper's qualitative findings
// are checked and printed at the end.
#include <cstdio>

#include "src/accel/comparison.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;
  const auto table = pim::accel::build_default_comparison();

  std::printf("=== Fig. 8a/8b: power and throughput ===\n");
  std::printf("workload: 10M 100-bp reads vs 3.2 Gbp reference (Sec. VI)\n\n");
  TextTable out({"accelerator", "family", "power (W)", "throughput (q/s)"});
  for (const auto& row : table.rows) {
    out.add_row({row.name,
                 row.family == pim::accel::AlgorithmFamily::kSmithWaterman
                     ? "SW"
                     : "FM-index",
                 TextTable::num(row.power_w),
                 TextTable::num(row.throughput_qps)});
  }
  std::printf("%s", out.render().c_str());

  const auto ratios = pim::accel::compute_headline_ratios(table);
  std::printf("\npipeline gain (Pd=2 vs baseline): %.2fx  (paper: ~1.4x)\n",
              ratios.pipeline_gain);
  std::printf("PIM-Aligner-p at Pd=2: %.1f W / %.2fe6 q/s"
              "  (paper Fig. 9c annotation: 28.4 W / 6.7e6 q/s)\n",
              table.pim_p.power_w, table.pim_p.throughput_qps / 1e6);

  // Qualitative checks from the Fig. 8 discussion.
  bool race_fastest = true;
  for (const auto& row : table.rows) {
    if (row.name != "RaceLogic" &&
        row.throughput_qps > table.row("RaceLogic").throughput_qps) {
      race_fastest = false;
    }
  }
  std::printf("\nchecks:\n");
  std::printf("  [%s] SW platforms (except RaceLogic) draw the most power\n",
              (table.row("Darwin").power_w > 100 &&
               table.row("ReCAM").power_w > 100 &&
               table.row("RaceLogic").power_w <
                   table.row("Darwin").power_w)
                  ? "ok"
                  : "!!");
  std::printf("  [%s] PIM-Aligner-p fastest except RaceLogic (Fig. 8b)\n",
              race_fastest &&
                      table.pim_p.throughput_qps >
                          table.row("AligneR").throughput_qps
                  ? "ok"
                  : "!!");
  std::printf("  [%s] AligneR, ASIC, AlignS consume the least power\n",
              (table.row("AlignS").power_w < 10 &&
               table.row("ASIC").power_w < 1 &&
               table.row("AligneR").power_w < 15)
                  ? "ok"
                  : "!!");
  return 0;
}
