// Seeding-substrate comparison — FM-index (AligneR/PIM-Aligner family) vs
// k-mer hash table (BLASTN/RADAR family).
//
// The paper's related work splits the non-DP accelerators along exactly
// this line: RADAR maps BLASTN's k-mer seeding onto ReRAM, AligneR and
// PIM-Aligner map FM-index search. Both substrates drive the same
// seed-and-extend core here, so the comparison isolates the data
// structure: memory footprint (the k-mer table's 4^k directory + one entry
// per position vs the 2-bit BWT + markers), query work (one hash probe vs
// k LFM steps), and identical final alignments.
#include <chrono>
#include <cstdio>

#include "src/align/kmer_index.h"
#include "src/align/seed_extend.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using pim::util::TextTable;

  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 1 << 20;
  spec.seed = 71;
  const auto reference = pim::genome::generate_reference(spec);

  auto t0 = std::chrono::steady_clock::now();
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
  const double fm_build_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  const auto kmer = pim::align::KmerIndex::build(reference, 12);
  const double kmer_build_ms = ms_since(t0);

  const auto fp = fm.memory_footprint();

  std::printf("=== Seeding substrates on a %zu bp reference ===\n\n",
              reference.size());
  TextTable idx({"substrate", "build (ms)", "memory (bytes)",
                 "bytes/reference bp", "seed length"});
  idx.add_row({"FM-index (BWT+MT, AligneR-family)",
               TextTable::num(fm_build_ms),
               std::to_string(fp.bwt_bytes + fp.marker_bytes),
               TextTable::num(static_cast<double>(fp.bwt_bytes +
                                                  fp.marker_bytes) /
                              static_cast<double>(reference.size())),
               "any"});
  idx.add_row({"k-mer table (BLASTN/RADAR-family)",
               TextTable::num(kmer_build_ms),
               std::to_string(kmer.memory_bytes()),
               TextTable::num(static_cast<double>(kmer.memory_bytes()) /
                              static_cast<double>(reference.size())),
               "fixed k=12"});
  std::printf("%s", idx.render().c_str());

  // Same reads through both substrates.
  pim::util::Xoshiro256 rng(73);
  pim::align::SeedExtendOptions opt;
  opt.seed_length = 12;
  constexpr int kReads = 60;
  double fm_ms = 0.0, kmer_ms = 0.0;
  std::size_t agree = 0, fm_found = 0;
  for (int r = 0; r < kReads; ++r) {
    const std::size_t start = rng.bounded(reference.size() - 500);
    auto read = reference.slice(start, start + 500);
    for (int m = 0; m < 2; ++m) {
      read[rng.bounded(read.size())] =
          static_cast<pim::genome::Base>(rng.bounded(4));
    }
    t0 = std::chrono::steady_clock::now();
    const auto via_fm = pim::align::seed_extend_align(fm, reference, read, opt);
    fm_ms += ms_since(t0);
    t0 = std::chrono::steady_clock::now();
    const auto via_kmer =
        pim::align::seed_extend_core(kmer, reference, read, opt);
    kmer_ms += ms_since(t0);
    if (via_fm.found()) ++fm_found;
    if (via_fm.found() == via_kmer.found() &&
        (!via_fm.found() ||
         via_fm.hits[0].ref_begin == via_kmer.hits[0].ref_begin)) {
      ++agree;
    }
  }
  std::printf("\nalignment agreement over %d reads: %zu/%d identical "
              "(%zu found)\n", kReads, agree, kReads, fm_found);
  TextTable q({"substrate", "ms/read (host sim)"});
  q.add_row({"FM-index seeding", TextTable::num(fm_ms / kReads)});
  q.add_row({"k-mer seeding", TextTable::num(kmer_ms / kReads)});
  std::printf("%s", q.render().c_str());

  std::printf("\ntakeaways: identical alignments from both substrates; the "
              "k-mer table answers a seed in one probe\nbut costs %.1fx the "
              "FM-index's memory at this scale and fixes k at build time — "
              "on PIM the FM-index\nside additionally keeps all seeding "
              "work inside the 2-bit sub-arrays (the AligneR/PIM-Aligner "
              "bet\nagainst RADAR's).\n",
              static_cast<double>(kmer.memory_bytes()) /
                  static_cast<double>(fp.bwt_bytes + fp.marker_bytes));
  return 0;
}
