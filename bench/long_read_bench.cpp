// Long-read alignment — seed-and-extend vs z-bounded backtracking.
//
// The paper's introduction motivates reads "from 50 to thousands nt"; its
// algorithm evaluates at 100 bp with z <= 2. This bench shows where the
// crossover lies: backtracking recall collapses once the expected
// difference count exceeds z, while seed-and-extend (exact seeds via the
// same LFM machinery + banded SW verification) keeps placing kilobase
// reads at realistic divergence.
#include <chrono>
#include <cstdio>

#include "src/align/inexact_search.h"
#include "src/align/seed_extend.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using pim::util::TextTable;

  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 1 << 20;
  spec.seed = 41;
  const auto reference = pim::genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});

  std::printf("=== Long reads: backtracking (z=2) vs seed-and-extend ===\n");
  std::printf("reference: %zu bp; 0.3%% per-base divergence; 40 reads per "
              "length\n\n",
              reference.size());

  TextTable out({"length", "backtrack recall", "backtrack ms/read",
                 "seed-extend recall", "seed-extend ms/read"});
  pim::util::Xoshiro256 rng(43);

  for (const std::size_t len : {100UL, 250UL, 500UL, 1000UL, 2000UL}) {
    std::size_t bt_hits = 0, se_hits = 0;
    double bt_ms = 0.0, se_ms = 0.0;
    constexpr int kReads = 40;
    for (int r = 0; r < kReads; ++r) {
      const std::size_t start = rng.bounded(reference.size() - len);
      auto read = reference.slice(start, start + len);
      // ~0.3% substitutions.
      const auto subs = std::max<std::size_t>(1, len * 3 / 1000);
      for (std::size_t s = 0; s < subs; ++s) {
        const std::size_t p = rng.bounded(read.size());
        read[p] = static_cast<pim::genome::Base>(
            (static_cast<int>(read[p]) + 1) % 4);
      }

      pim::align::InexactOptions opt;
      opt.max_diffs = 2;
      opt.max_states = 500000;  // cap pathological blowups
      auto t0 = std::chrono::steady_clock::now();
      const auto bt = pim::align::inexact_search(fm, read, opt);
      bt_ms += ms_since(t0);
      if (bt.found()) ++bt_hits;

      t0 = std::chrono::steady_clock::now();
      const auto se = pim::align::seed_extend_align(fm, reference, read);
      se_ms += ms_since(t0);
      if (se.found() &&
          se.hits[0].ref_begin + 64 >= start &&
          se.hits[0].ref_begin <= start + 64) {
        ++se_hits;
      }
    }
    out.add_row({std::to_string(len),
                 TextTable::num(100.0 * bt_hits / kReads) + " %",
                 TextTable::num(bt_ms / kReads),
                 TextTable::num(100.0 * se_hits / kReads) + " %",
                 TextTable::num(se_ms / kReads)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\ntakeaway: past ~500 bp the expected difference count "
              "exceeds z=2 and backtracking recall collapses;\nseed-and-"
              "extend keeps near-perfect recall at bounded cost because "
              "every 20-bp seed is still an O(20)\nexact LFM search — the "
              "same in-memory primitives, recomposed.\n");
  return 0;
}
