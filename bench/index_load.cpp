// index_load (S42): cold-start cost of the three ways to obtain a usable
// FmIndex — rebuild from FASTA, stream-load a v2 artifact, mmap a v2
// artifact — with honest peak-RSS accounting.
//
//   ./index_load [genome_bp] [artifact_path] [--no-assert]
//
// Each mode runs in a forked child so getrusage(RUSAGE_SELF).ru_maxrss is
// that mode's own high-water mark (ru_maxrss never decreases, so in-process
// sequencing would let the first mode poison the rest). Every child runs the
// same probe workload (backward-search + locate over patterns sampled from
// the reference) so demand-paging differences are exercised, not hidden.
// The mmap mode opens with checksum verification off: verification faults
// in every page, which is exactly the full-read cost mmap exists to avoid
// (a separately reported mmap_verified mode shows that variant too).
//
// Output is JSON lines on stdout, one per mode, plus a final verdict line
// asserting the S42 acceptance criteria: mmap cold-start >= 10x faster than
// the FASTA rebuild, with lower peak RSS than the stream load. Exit 1 if
// the verdict fails (CI treats this bench as a regression gate).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define PIM_BENCH_HAVE_FORK 1
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "src/genome/fasta.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/fm_index.h"
#include "src/index/index_io.h"
#include "src/index/mapped_index.h"
#include "src/util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Same probe for every mode: backward-search 16 sampled 40-mers and locate
/// one hit each — one cold batch's working set, touching BWT, markers, and
/// SA pages the way serving does. Kept deliberately small relative to the
/// artifact: the stream loader pays the whole file regardless, demand
/// paging pays only these touches (plus the kernel's folio granularity).
std::uint64_t probe(const pim::index::FmIndex& fm,
                    const pim::genome::PackedSequence& reference) {
  pim::util::Xoshiro256 rng(99);
  std::uint64_t located = 0;
  for (int i = 0; i < 16; ++i) {
    const std::size_t len = 40;
    const std::size_t start = rng.bounded(reference.size() - len);
    auto interval = fm.whole_interval();
    for (std::size_t j = len; j-- > 0;) {
      interval = fm.extend(interval, reference.at(start + j));
      if (!interval.valid()) break;
    }
    if (interval.valid()) located += fm.locate(interval.low) + 1;
  }
  return located;
}

struct ModeResult {
  double wall_ms = 0;
  long peak_rss_kb = 0;
  std::uint64_t checksum = 0;  // probe result; must agree across modes
  bool ok = false;
};

/// Runs `work` fork-isolated (falls back to in-process, peak_rss_kb=0, on
/// platforms without fork). The child reports "wall_ms rss_kb checksum"
/// over a pipe; wall time covers only `work`, not process setup.
ModeResult run_mode(const std::function<std::uint64_t()>& work) {
  ModeResult result;
#if PIM_BENCH_HAVE_FORK
  int fds[2];
  if (pipe(fds) != 0) return result;
  const pid_t pid = fork();
  if (pid == 0) {
    close(fds[0]);
    const auto t0 = Clock::now();
    const std::uint64_t checksum = work();
    const double wall = ms_since(t0);
    struct rusage ru {};
    getrusage(RUSAGE_SELF, &ru);
    char buf[128];
    const int n =
        std::snprintf(buf, sizeof(buf), "%.3f %ld %llu", wall, ru.ru_maxrss,
                      static_cast<unsigned long long>(checksum));
    if (n > 0) {
      (void)!write(fds[1], buf, static_cast<std::size_t>(n));
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  char buf[128] = {};
  std::size_t got = 0;
  for (;;) {
    const ssize_t n = read(fds[0], buf + got, sizeof(buf) - 1 - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || got == 0) {
    return result;
  }
  unsigned long long checksum = 0;
  if (std::sscanf(buf, "%lf %ld %llu", &result.wall_ms, &result.peak_rss_kb,
                  &checksum) == 3) {
    result.checksum = checksum;
    result.ok = true;
  }
#else
  const auto t0 = Clock::now();
  result.checksum = work();
  result.wall_ms = ms_since(t0);
  result.ok = true;
#endif
  return result;
}

void emit(const char* mode, const ModeResult& r, std::uint64_t genome_bp,
          std::uint64_t file_bytes) {
  std::printf("{\"bench\":\"index_load\",\"mode\":\"%s\",\"wall_ms\":%.3f,"
              "\"peak_rss_kb\":%ld,\"genome_bp\":%llu,\"file_bytes\":%llu,"
              "\"probe_checksum\":%llu,\"ok\":%s}\n",
              mode, r.wall_ms, r.peak_rss_kb,
              static_cast<unsigned long long>(genome_bp),
              static_cast<unsigned long long>(file_bytes),
              static_cast<unsigned long long>(r.checksum),
              r.ok ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pim;
  // --no-assert reports the verdict without enforcing it — for sanitizer
  // smoke runs, where ASan's shadow memory distorts the RSS comparison.
  bool enforce_verdict = true;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-assert") {
      enforce_verdict = false;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::uint64_t genome_bp =
      !positional.empty() ? std::strtoull(positional[0].c_str(), nullptr, 10)
                          : 8'000'000ULL;
  const std::string artifact =
      positional.size() > 1 ? positional[1] : "/tmp/pim_index_load_bench.index";
  const std::string fasta_path = artifact + ".fasta";

  // Setup (unmeasured): synthesize the reference, persist FASTA + artifact.
  // Also fork-isolated — building in the parent would leave the mode
  // children a large inherited dirty heap, which the stream mode's
  // allocations silently reuse (underreporting its RSS) while the mmap
  // mode's file-backed pages cannot.
  const ModeResult setup = run_mode([&] {
    genome::SyntheticGenomeSpec spec;
    spec.length = genome_bp;
    spec.seed = 77;
    const auto reference = genome::generate_reference(spec);
    genome::write_fasta_file(fasta_path, {{"bench", reference, 0}});
    const auto fm = index::FmIndex::build(reference, {.bucket_width = 128});
    index::save_index_file(artifact, fm, reference,
                           {{"bench", 0, reference.size()}});
    return std::uint64_t{1};
  });
  if (!setup.ok) {
    std::fprintf(stderr, "index_load: setup failed\n");
    return 1;
  }
  std::uint64_t file_bytes = 0;
  {
    std::ifstream probe_size(artifact, std::ios::binary | std::ios::ate);
    file_bytes = static_cast<std::uint64_t>(probe_size.tellg());
  }

  const ModeResult build = run_mode([&] {
    const auto records = genome::read_fasta_file(fasta_path);
    const auto& ref = records[0].sequence;
    const auto fm = index::FmIndex::build(ref, {.bucket_width = 128});
    return probe(fm, ref);
  });
  const ModeResult stream = run_mode([&] {
    const auto loaded = index::load_index_file(artifact);
    return probe(loaded.index, loaded.reference);
  });
  const ModeResult mmap_cold = run_mode([&] {
    index::MappedIndexOptions options;
    options.verify_checksums = false;  // demand-paged: the point of mmap
    const auto mapped = index::MappedIndex::open(artifact, options);
    return probe(mapped.index(), mapped.reference());
  });
  const ModeResult mmap_verified = run_mode([&] {
    const auto mapped = index::MappedIndex::open(artifact);
    return probe(mapped.index(), mapped.reference());
  });

  emit("build", build, genome_bp, file_bytes);
  emit("stream", stream, genome_bp, file_bytes);
  emit("mmap", mmap_cold, genome_bp, file_bytes);
  emit("mmap_verified", mmap_verified, genome_bp, file_bytes);

  const bool all_ok =
      build.ok && stream.ok && mmap_cold.ok && mmap_verified.ok;
  const bool agree = all_ok && build.checksum == stream.checksum &&
                     build.checksum == mmap_cold.checksum &&
                     build.checksum == mmap_verified.checksum;
  const double speedup =
      mmap_cold.wall_ms > 0 ? build.wall_ms / mmap_cold.wall_ms : 0.0;
  const bool fast_enough = speedup >= 10.0;
  // RSS is only comparable when fork isolation measured it (nonzero).
  const bool rss_measured = mmap_cold.peak_rss_kb > 0;
  const bool rss_lower =
      !rss_measured || mmap_cold.peak_rss_kb < stream.peak_rss_kb;
  std::printf("{\"bench\":\"index_load\",\"mode\":\"verdict\","
              "\"mmap_speedup_vs_build\":%.1f,\"mmap_rss_kb\":%ld,"
              "\"stream_rss_kb\":%ld,\"modes_agree\":%s,"
              "\"mmap_10x_faster\":%s,\"mmap_rss_below_stream\":%s}\n",
              speedup, mmap_cold.peak_rss_kb, stream.peak_rss_kb,
              agree ? "true" : "false", fast_enough ? "true" : "false",
              rss_lower ? "true" : "false");
  if (!enforce_verdict) return agree ? 0 : 1;
  return agree && fast_enough && rss_lower ? 0 : 1;
}
