// Ablation — analytic pipeline model vs discrete-event simulation.
//
// The chip model uses the analytic initiation interval; this bench
// cross-validates it with the event simulator (FCFS resources, dependent
// LFM chains, bounded reads in flight) and explores the regimes where they
// diverge: few read slots (no overlap), short reads (fill/drain overhead),
// and deep Pd.
#include <cstdio>

#include "src/pim/pipeline_sim.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;
  const pim::hw::TimingEnergyModel timing;

  std::printf("=== Pipeline: analytic vs discrete-event ===\n\n");
  TextTable out({"Pd", "slots", "reads x LFMs", "analytic ii (ns)",
                 "simulated ii (ns)", "delta", "add-array busy", "DPU busy"});
  for (const std::uint32_t pd : {1U, 2U, 3U, 4U}) {
    for (const std::uint32_t slots : {0U, 1U}) {  // 0 = default 2*Pd
      pim::hw::PipelineSimConfig cfg;
      cfg.pd = pd;
      cfg.num_reads = 64;
      cfg.lfm_per_read = 50;
      cfg.read_slots = slots;
      const auto r = simulate_pipeline(timing, cfg);
      const double busiest_add =
          pd == 1 ? r.array_busy_fraction[0] : r.array_busy_fraction[1];
      out.add_row(
          {std::to_string(pd), slots == 0 ? "2*Pd" : std::to_string(slots),
           "64 x 50", TextTable::num(r.analytic_ii_ns),
           TextTable::num(r.measured_ii_ns),
           TextTable::num((r.measured_ii_ns - r.analytic_ii_ns) /
                          r.analytic_ii_ns * 100.0) +
               " %",
           TextTable::num(busiest_add * 100.0) + " %",
           TextTable::num(r.dpu_busy_fraction * 100.0) + " %"});
    }
  }
  std::printf("%s", out.render().c_str());

  std::printf("\nfill/drain overhead vs read length (Pd=2):\n");
  TextTable fd({"LFMs per read", "simulated ii (ns)", "vs steady state"});
  double steady = 0.0;
  for (const std::uint32_t lfms : {200U, 50U, 10U, 3U}) {
    pim::hw::PipelineSimConfig cfg;
    cfg.pd = 2;
    cfg.num_reads = 64;
    cfg.lfm_per_read = lfms;
    const auto r = simulate_pipeline(timing, cfg);
    if (lfms == 200U) steady = r.measured_ii_ns;
    fd.add_row({std::to_string(lfms), TextTable::num(r.measured_ii_ns),
                TextTable::num(r.measured_ii_ns / steady)});
  }
  std::printf("%s", fd.render().c_str());
  std::printf("\ntakeaway: with >= 2 reads per group in flight, the analytic"
              " steady-state ii holds within ~15%%;\nwith a single slot the"
              " pipeline degenerates to the serial method-I latency.\n");
  return 0;
}
