// Figure 10 — (a) off-chip memory, (b) Memory Bottleneck Ratio,
// (c) Resource Utilization Ratio for the ten platforms.
//
// PIM-Aligner's MBR comes from the pipeline model's data-movement share of
// the LFM critical path; its RUR from the group-occupancy law (1 - e^-Pd).
// The paper's stated checks: PIM-Aligner < ~18% MBR, all PIMs < 25%,
// AligneR above PIM-Aligner (unbalanced compute/movement), PIM-Aligner-p
// peaking at ~86% RUR, and ASIC needing just 1 GB off-chip after
// compression.
#include <cstdio>

#include "src/accel/comparison.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;
  const auto table = pim::accel::build_default_comparison();

  std::printf("=== Fig. 10a/10b/10c: memory behaviour ===\n\n");
  TextTable out({"accelerator", "off-chip (GB)", "MBR (%)", "RUR (%)"});
  for (const auto& row : table.rows) {
    out.add_row({row.name, TextTable::num(row.offchip_gb),
                 TextTable::num(row.mbr_pct), TextTable::num(row.rur_pct)});
  }
  std::printf("%s", out.render().c_str());

  std::printf("\nresident index footprint (in-memory, not off-chip): %.1f GB"
              "  (paper: ~12 GB for BWT + MT + SA)\n",
              table.pim_p.memory_gb);

  std::printf("\nchecks:\n");
  std::printf("  [%s] PIM-Aligner MBR < 18%% (paper: 'less than ~18%%')\n",
              (table.pim_n.mbr_pct < 18.0 && table.pim_p.mbr_pct < 18.0)
                  ? "ok"
                  : "!!");
  bool pims_under_25 = true;
  for (const auto& name : {"AligneR", "AlignS"}) {
    if (table.row(name).mbr_pct >= 25.0) pims_under_25 = false;
  }
  std::printf("  [%s] all PIM platforms < 25%% MBR\n",
              pims_under_25 ? "ok" : "!!");
  std::printf("  [%s] AligneR MBR above PIM-Aligner's (unbalanced movement)\n",
              table.row("AligneR").mbr_pct > table.pim_p.mbr_pct ? "ok" : "!!");
  std::printf("  [%s] PIM-Aligner-p RUR %.1f%% (paper: up to ~86%%)\n",
              (table.pim_p.rur_pct > 80.0 && table.pim_p.rur_pct < 92.0)
                  ? "ok"
                  : "!!",
              table.pim_p.rur_pct);
  std::printf("  [%s] GPU/FPGA off-chip heavy; ASIC = 1 GB after compression\n",
              (table.row("GPU").offchip_gb > 50 &&
               table.row("FPGA").offchip_gb > 50 &&
               table.row("ASIC").offchip_gb == 1.0)
                  ? "ok"
                  : "!!");
  return 0;
}
