// Technology corner comparison — why SOT-MRAM (Section I's argument).
//
// Runs the full chip model under the shipped NVSim-style configs:
// calibrated SOT-MRAM, a conservative SOT corner, and a ReRAM-like corner
// (AligneR-class write cost). The write-heavy IM_ADD dataflow is what
// separates them: ReRAM's 10x write latency/energy lands directly on the
// adder's 65 write-backs per LFM. This is the quantitative version of the
// paper's "ultra-low switching energy" motivation for MRAM.
//
// Usage: tech_comparison [configs_dir]   (default: ../configs or ./configs)
#include <cstdio>
#include <fstream>
#include <string>

#include "src/accel/pim_aligner_model.h"
#include "src/util/config.h"
#include "src/util/table.h"

namespace {

std::string find_configs_dir(const char* arg) {
  if (arg != nullptr) return arg;
  for (const char* candidate : {"configs", "../configs", "../../configs"}) {
    std::ifstream probe(std::string(candidate) + "/sot_mram_default.cfg");
    if (probe) return candidate;
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using pim::util::TextTable;
  const std::string dir = find_configs_dir(argc > 1 ? argv[1] : nullptr);
  if (dir.empty()) {
    std::fprintf(stderr,
                 "cannot find the configs/ directory; pass it as argv[1]\n");
    return 1;
  }
  std::printf("=== Technology corners (configs from %s/) ===\n\n",
              dir.c_str());

  struct Corner {
    const char* file;
    const char* label;
  };
  const Corner corners[] = {
      {"sot_mram_default.cfg", "SOT-MRAM 3-SA (PIM-Aligner)"},
      {"aligns_like.cfg", "SOT-MRAM 2-SA (AlignS-like)"},
      {"sot_mram_conservative.cfg", "SOT-MRAM (conservative)"},
      {"reram_like.cfg", "ReRAM-like (AligneR-class)"},
  };

  TextTable out({"corner", "LFM serial (ns)", "energy/LFM (pJ)",
                 "chip q/s (Pd=2)", "chip W (Pd=2)", "q/s/W"});
  for (const auto& corner : corners) {
    const auto cfg =
        pim::util::Config::load_file(dir + "/" + std::string(corner.file));
    const pim::hw::TimingEnergyModel timing(cfg);
    const pim::hw::PipelineModel pipeline(timing);
    const pim::accel::PimChipModel chip(timing);
    const auto p = pipeline.evaluate(2);
    const auto c = chip.evaluate(2);
    out.add_row({corner.label, TextTable::num(p.serial_lfm_ns),
                 TextTable::num(p.energy_per_lfm_pj),
                 TextTable::num(c.throughput_qps), TextTable::num(c.power_w),
                 TextTable::num(c.throughput_qps / c.power_w)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\ntakeaways:\n"
              " * the 2-SA AlignS-like corner senses cheaper but its "
              "two-cycle adder costs ~13%% LFM latency —\n   the exact trade "
              "the paper describes (third SA: more power, single-cycle "
              "add, more throughput).\n   At AlignS's own smaller "
              "provisioning/power point it still tops Fig. 9a's "
              "throughput/Watt.\n"
              " * the IM_ADD write-backs (65 per LFM) dominate the dataflow,"
              " so ReRAM-class write latency/energy\n   cuts throughput/Watt"
              " several-fold — on top of the endurance liability shown by "
              "wear_analysis.\n   This is the quantified version of the "
              "paper's MRAM-over-ReRAM argument.\n");
  return 0;
}
