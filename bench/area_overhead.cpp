// Implementation claim — "incurring a low cost on top of original SOT-MRAM
// chips (less than 10% of chip area)".
//
// Breaks down the computational sub-array area versus a memory-only
// sub-array across array organisations, and reports the chip-scale compute
// region for the Hg19 index.
#include <cstdio>

#include "src/accel/pim_aligner_model.h"
#include "src/pim/timing_energy.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  std::printf("=== Area overhead of compute support (<10%% claim) ===\n\n");
  TextTable out({"organisation", "memory-only (mm^2)", "computational (mm^2)",
                 "overhead (%)"});
  for (const int rows : {256, 512, 1024}) {
    for (const int cols : {128, 256, 512}) {
      pim::util::Config over;
      over.set_int("RowsPerSubarray", rows);
      over.set_int("ColsPerSubarray", cols);
      const pim::hw::TimingEnergyModel m(over);
      out.add_row({std::to_string(rows) + "x" + std::to_string(cols),
                   TextTable::num(m.memory_subarray_area_mm2(), 5),
                   TextTable::num(m.subarray_area_mm2(), 5),
                   TextTable::num(m.compute_area_overhead_fraction() * 100.0)});
    }
  }
  std::printf("%s", out.render().c_str());

  const pim::hw::TimingEnergyModel timing;
  const pim::accel::PimChipModel chip(timing);
  std::printf("\nHg19-scale deployment:\n");
  std::printf("  computational sub-arrays: %llu (one per 32'768-bp slice)\n",
              static_cast<unsigned long long>(chip.num_tiles()));
  std::printf("  resident index: %.1f GB (paper: ~12 GB)\n",
              chip.memory_footprint_gb());
  std::printf("  per-sub-array compute overhead: %.1f%% (< 10%% claim: %s)\n",
              timing.compute_area_overhead_fraction() * 100.0,
              timing.compute_area_overhead_fraction() < 0.10 ? "ok" : "!!");
  const auto r = chip.evaluate(2);
  std::printf("  active compute engine (Pd=2): %.2f mm^2 "
              "(%u pipeline groups x %u sub-arrays + DPUs)\n",
              r.engine_area_mm2, chip.config().pipelines, 2U);
  return 0;
}
