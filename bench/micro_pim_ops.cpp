// Micro-benchmarks of the simulated in-memory primitives (google-benchmark)
// plus a printed decomposition of the modeled hardware cost per operation.
//
// The wall-clock numbers measure the *simulator's* speed (useful when
// sizing experiments); the modeled ns/pJ columns are the architectural
// costs the chip model consumes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/genome/synthetic_genome.h"
#include "src/pim/mapping.h"
#include "src/pim/platform.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

const pim::hw::TimingEnergyModel& timing() {
  static pim::hw::TimingEnergyModel model;
  return model;
}

struct TileFixture {
  pim::genome::PackedSequence text;
  pim::index::FmIndex fm;
  std::unique_ptr<pim::hw::PimTile> tile;
  TileFixture() {
    pim::genome::SyntheticGenomeSpec spec;
    spec.length = 30000;
    spec.seed = 3;
    text = pim::genome::generate_reference(spec);
    fm = pim::index::FmIndex::build(text, {.bucket_width = 128});
    tile = std::make_unique<pim::hw::PimTile>(timing(), pim::hw::ZoneLayout{},
                                              fm, 0);
  }
};

TileFixture& tile_fixture() {
  static TileFixture f;
  return f;
}

void BM_SubArrayTripleSense(benchmark::State& state) {
  pim::hw::SubArray array(timing());
  pim::util::Xoshiro256 rng(1);
  pim::util::BitVector row(array.cols());
  for (std::uint32_t i = 0; i < array.cols(); ++i) row.set(i, rng.bernoulli(0.5));
  array.write_row(0, row);
  array.write_row(1, row);
  array.write_row(2, row);
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.triple_sense(0, 1, 2));
  }
}
BENCHMARK(BM_SubArrayTripleSense);

void BM_SubArrayXnor2(benchmark::State& state) {
  pim::hw::SubArray array(timing());
  array.write_row(0, pim::util::BitVector(array.cols(), true));
  array.write_row(1, pim::util::BitVector(array.cols(), false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.xnor2(0, 1));
  }
}
BENCHMARK(BM_SubArrayXnor2);

void BM_SubArrayImAdd32(benchmark::State& state) {
  pim::hw::SubArray array(timing());
  array.write_word_vertical(0, 0, 32, 123456u);
  array.write_word_vertical(0, 32, 32, 654321u);
  for (auto _ : state) {
    array.im_add(0, 32, 64, 96, 32);
  }
}
BENCHMARK(BM_SubArrayImAdd32);

void BM_TileCountMatch(benchmark::State& state) {
  auto& f = tile_fixture();
  std::uint64_t cursor = 5000;
  for (auto _ : state) {
    std::uint64_t id = 1 + (cursor++ % 20000);
    if (id % 128 == 0) ++id;  // count_match needs an off-checkpoint id
    benchmark::DoNotOptimize(f.tile->count_match(pim::genome::Base::C, id));
  }
}
BENCHMARK(BM_TileCountMatch);

void BM_TileLfm(benchmark::State& state) {
  auto& f = tile_fixture();
  std::uint64_t id = 777;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.tile->lfm(pim::genome::Base::G, 1 + (id++ % 20000)));
  }
}
BENCHMARK(BM_TileLfm);

void BM_SoftwareLfm(benchmark::State& state) {
  auto& f = tile_fixture();
  std::uint64_t id = 777;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.fm.lfm(pim::genome::Base::G, 1 + (id++ % 20000)));
  }
}
BENCHMARK(BM_SoftwareLfm);

void print_modeled_costs() {
  using pim::util::TextTable;
  const auto& m = timing();
  std::printf("\n=== Modeled per-operation hardware costs ===\n");
  TextTable out({"operation", "latency (ns)", "energy (pJ)"});
  const auto add = [&](const char* name, pim::hw::OpCost c) {
    out.add_row({name, TextTable::num(c.latency_ns), TextTable::num(c.energy_pj)});
  };
  add("MEM read (row)", m.op_cost(pim::hw::SubArrayOp::kMemRead));
  add("MEM write (row)", m.op_cost(pim::hw::SubArrayOp::kMemWrite));
  add("triple sense (AND3/MAJ/OR3/XOR3)",
      m.op_cost(pim::hw::SubArrayOp::kTripleSense));
  add("DPU word", m.op_cost(pim::hw::SubArrayOp::kDpuWord));
  add("XNOR_Match (triple + DPU)", m.xnor_match_cost());
  add("IM_ADD 32-bit", m.im_add_cost(32));
  add("IM_ADD 16-bit", m.im_add_cost(16));
  std::printf("%s", out.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_modeled_costs();
  return 0;
}
