// Ablation — Occ checkpoint spacing d (bucket width).
//
// The paper fixes d = 128 (one sub-array row). This sweep shows the design
// trade: smaller d shrinks the residual count_match work per LFM but blows
// up the Marker Table; d = 128 makes MT exactly fill its 128-row zone while
// keeping the residual scan within one word-line. Both the software index
// memory and the modeled hardware LFM cost are reported.
#include <cstdio>

#include "src/genome/synthetic_genome.h"
#include "src/index/fm_index.h"
#include "src/pim/timing_energy.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 1 << 20;
  spec.seed = 5;
  const auto reference = pim::genome::generate_reference(spec);

  std::printf("=== Ablation: bucket width d ===\n");
  std::printf("reference: %zu bp; MT entries = 4 x (n/d) x 32 bits\n\n",
              reference.size());

  const pim::hw::TimingEnergyModel timing;
  TextTable out({"d", "MT bytes", "MT vs d=128", "avg residual (bps)",
                 "modeled LFM worst-case (ns)"});
  double mt128 = 0.0;
  for (const std::uint32_t d : {32U, 64U, 128U, 256U}) {
    const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = d});
    const auto fp = fm.memory_footprint();
    if (d == 128) mt128 = static_cast<double>(fp.marker_bytes);
    // Worst-case hardware LFM: the residual scan still costs one XNOR_Match
    // row op regardless of d <= 128; d > 128 spans multiple rows.
    const double rows_scanned = (d + 127) / 128;
    const double lfm_ns =
        timing.xnor_match_cost().latency_ns * rows_scanned +
        32.0 * timing.op_cost(pim::hw::SubArrayOp::kMemWrite).latency_ns +
        timing.im_add_cost(32).latency_ns +
        32.0 * timing.op_cost(pim::hw::SubArrayOp::kMemRead).latency_ns;
    out.add_row({std::to_string(d), std::to_string(fp.marker_bytes),
                 mt128 > 0 ? TextTable::num(
                                 static_cast<double>(fp.marker_bytes) / mt128)
                           : "-",
                 TextTable::num(d / 2.0), TextTable::num(lfm_ns)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\nnote: d = 128 is the sweet spot in the paper's layout — one"
              " checkpoint per BWT row,\nMT exactly fills 4 banks x 32 rows,"
              " and every residual scan is a single XNOR_Match.\n");
  return 0;
}
