// Algorithm-level evaluation — the two-stage pipeline of Section III on an
// ART-like workload at the paper's rates (0.1% population variation, 0.2%
// sequencing error): stage mix (~70% exact), alignment/origin-recovery
// rates, per-read LFM counts, and the hardware op/energy tallies of the
// simulated PIM execution.
#include <cstdio>
#include <memory>

#include "src/align/aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/controller.h"
#include "src/pim/platform.h"
#include "src/readsim/read_simulator.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  constexpr std::size_t kGenome = 1 << 20;  // 1 Mbp scaled stand-in for Hg19
  constexpr std::size_t kReads = 1500;
  constexpr std::uint32_t kReadLen = 100;

  std::printf("=== Alignment pipeline evaluation ===\n");
  std::printf("reference: %zu bp synthetic (Hg19 stand-in, see DESIGN.md), "
              "%zu reads x %u bp\n",
              kGenome, kReads, kReadLen);
  std::printf("rates: population variation 0.1%%, sequencing error 0.2%% "
              "(paper Sec. VI)\n\n");

  pim::genome::SyntheticGenomeSpec gspec;
  gspec.length = kGenome;
  gspec.seed = 2026;
  const auto reference = pim::genome::generate_reference(gspec);
  const auto fm =
      pim::index::FmIndex::build(reference, {.bucket_width = 128});

  pim::readsim::ReadSimSpec rspec;
  rspec.read_length = kReadLen;
  rspec.num_reads = kReads;
  rspec.population_variation_rate = 0.001;
  rspec.sequencing_error_rate = 0.002;
  rspec.seed = 7;
  const auto set = pim::readsim::ReadSimulator(rspec).generate(reference);
  std::printf("generated exact-read fraction: %.1f%% "
              "(paper: 'up to ~70%% ... exactly aligned')\n",
              set.exact_fraction() * 100.0);

  std::vector<std::vector<pim::genome::Base>> reads;
  reads.reserve(set.reads.size());
  for (const auto& r : set.reads) reads.push_back(r.bases);

  pim::hw::TimingEnergyModel timing;
  pim::hw::PimAlignerPlatform platform(fm, timing);
  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 2;  // the paper considers <= 2 mismatches
  pim::hw::PimBatchDriver driver(platform, options);
  const auto report = driver.run(reads);

  TextTable out({"metric", "value"});
  out.add_row({"reads total", std::to_string(report.stats.reads_total)});
  out.add_row({"stage-1 exact", std::to_string(report.stats.reads_exact)});
  out.add_row({"stage-2 inexact", std::to_string(report.stats.reads_inexact)});
  out.add_row({"unaligned", std::to_string(report.stats.reads_unaligned)});
  out.add_row({"exact fraction",
               TextTable::num(report.stats.exact_fraction() * 100.0) + " %"});
  out.add_row({"LFM calls", std::to_string(report.hardware.lfm_calls)});
  out.add_row(
      {"LFM calls / read",
       TextTable::num(static_cast<double>(report.hardware.lfm_calls) /
                      static_cast<double>(report.stats.reads_total))});
  out.add_row({"triple senses",
               std::to_string(report.hardware.ops.triple_senses)});
  out.add_row({"row writes", std::to_string(report.hardware.ops.writes)});
  out.add_row({"row reads", std::to_string(report.hardware.ops.reads)});
  out.add_row({"SA MEM reads", std::to_string(report.hardware.sa_mem_reads)});
  out.add_row({"sub-array energy (uJ)",
               TextTable::num(report.energy_pj * 1e-6)});
  out.add_row({"energy / read (nJ)",
               TextTable::num(report.energy_pj * 1e-3 /
                              static_cast<double>(report.stats.reads_total))});
  std::printf("%s", out.render().c_str());

  // Ground-truth origin recovery.
  std::size_t recovered = 0, aligned = 0;
  pim::align::Aligner software(fm, options);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto result = software.align(reads[i]);
    if (!result.aligned()) continue;
    ++aligned;
    for (const auto& hit : result.hits) {
      if (hit.position == set.reads[i].origin) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("\norigin recovery: %zu/%zu aligned reads report their true "
              "origin (%.1f%%)\n",
              recovered, aligned,
              aligned ? 100.0 * static_cast<double>(recovered) /
                            static_cast<double>(aligned)
                      : 0.0);
  return 0;
}
