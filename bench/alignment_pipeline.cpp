// Algorithm-level evaluation — the two-stage pipeline of Section III on an
// ART-like workload at the paper's rates (0.1% population variation, 0.2%
// sequencing error): stage mix (~70% exact), alignment/origin-recovery
// rates, per-read LFM counts, and the hardware op/energy tallies of the
// simulated PIM execution.
#include <cstdio>
#include <memory>

#include "src/align/engine.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/pim_engine.h"
#include "src/readsim/read_simulator.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  constexpr std::size_t kGenome = 1 << 20;  // 1 Mbp scaled stand-in for Hg19
  constexpr std::size_t kReads = 1500;
  constexpr std::uint32_t kReadLen = 100;

  std::printf("=== Alignment pipeline evaluation ===\n");
  std::printf("reference: %zu bp synthetic (Hg19 stand-in, see DESIGN.md), "
              "%zu reads x %u bp\n",
              kGenome, kReads, kReadLen);
  std::printf("rates: population variation 0.1%%, sequencing error 0.2%% "
              "(paper Sec. VI)\n\n");

  pim::genome::SyntheticGenomeSpec gspec;
  gspec.length = kGenome;
  gspec.seed = 2026;
  const auto reference = pim::genome::generate_reference(gspec);
  const auto fm =
      pim::index::FmIndex::build(reference, {.bucket_width = 128});

  pim::readsim::ReadSimSpec rspec;
  rspec.read_length = kReadLen;
  rspec.num_reads = kReads;
  rspec.population_variation_rate = 0.001;
  rspec.sequencing_error_rate = 0.002;
  rspec.seed = 7;
  const auto set = pim::readsim::ReadSimulator(rspec).generate(reference);
  std::printf("generated exact-read fraction: %.1f%% "
              "(paper: 'up to ~70%% ... exactly aligned')\n",
              set.exact_fraction() * 100.0);

  pim::align::ReadBatchBuilder builder;
  builder.reserve(set.reads.size(), set.reads.size() * kReadLen);
  for (const auto& r : set.reads) builder.add(r.bases);
  const auto batch = builder.build();

  pim::hw::TimingEnergyModel timing;
  pim::hw::PimAlignerPlatform platform(fm, timing);
  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 2;  // the paper considers <= 2 mismatches
  const pim::hw::PimEngine engine(platform, options);
  pim::align::BatchResult hw_results;
  const auto report = engine.run(batch, hw_results);

  TextTable out({"metric", "value"});
  out.add_row({"reads total", std::to_string(report.stats.reads_total)});
  out.add_row({"stage-1 exact", std::to_string(report.stats.reads_exact)});
  out.add_row({"stage-2 inexact", std::to_string(report.stats.reads_inexact)});
  out.add_row({"unaligned", std::to_string(report.stats.reads_unaligned)});
  out.add_row({"exact fraction",
               TextTable::num(report.stats.exact_fraction() * 100.0) + " %"});
  out.add_row({"LFM calls", std::to_string(report.hardware.lfm_calls)});
  out.add_row(
      {"LFM calls / read",
       TextTable::num(static_cast<double>(report.hardware.lfm_calls) /
                      static_cast<double>(report.stats.reads_total))});
  out.add_row({"triple senses",
               std::to_string(report.hardware.ops.triple_senses)});
  out.add_row({"row writes", std::to_string(report.hardware.ops.writes)});
  out.add_row({"row reads", std::to_string(report.hardware.ops.reads)});
  out.add_row({"SA MEM reads", std::to_string(report.hardware.sa_mem_reads)});
  out.add_row({"sub-array energy (uJ)",
               TextTable::num(report.energy_pj * 1e-6)});
  out.add_row({"energy / read (nJ)",
               TextTable::num(report.energy_pj * 1e-3 /
                              static_cast<double>(report.stats.reads_total))});
  std::printf("%s", out.render().c_str());

  // Ground-truth origin recovery, via the software engine over the same
  // batch (bit-identical to the hardware results by construction).
  std::size_t recovered = 0, aligned = 0;
  const pim::align::SoftwareEngine software(fm, options);
  pim::align::BatchResult sw_results;
  software.align_batch(batch, sw_results);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!sw_results.aligned(i)) continue;
    ++aligned;
    for (const auto& hit : sw_results.hits(i)) {
      if (hit.position == set.reads[i].origin) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("\norigin recovery: %zu/%zu aligned reads report their true "
              "origin (%.1f%%)\n",
              recovered, aligned,
              aligned ? 100.0 * static_cast<double>(recovered) /
                            static_cast<double>(aligned)
                      : 0.0);
  return 0;
}
