// Ablation — method-I vs method-II IM_ADD placement (Fig. 6d) and SA
// sampling rate.
//
// Method-I keeps the addition in the same sub-array (cheap, but the compare
// resources idle during the add); method-II duplicates the sub-array so
// comparison and addition pipeline (Pd >= 2). The second table sweeps the
// locate() memory/latency trade against SA sampling, an extension knob the
// paper leaves at "store the full SA".
#include <cstdio>

#include "src/accel/pim_aligner_model.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/fm_index.h"
#include "src/pim/pipeline.h"
#include "src/util/rng.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;
  const pim::hw::TimingEnergyModel timing;
  const pim::hw::PipelineModel pipeline(timing);
  const pim::accel::PimChipModel chip(timing);

  std::printf("=== Ablation: IM_ADD placement (method-I vs method-II) ===\n\n");
  TextTable out({"configuration", "ii (ns/LFM)", "speedup",
                 "energy/LFM (pJ)", "chip throughput (q/s)", "chip power (W)"});
  const auto r1 = pipeline.evaluate(1);
  const auto c1 = chip.evaluate(1);
  out.add_row({"method-I  (Pd=1, same sub-array)",
               TextTable::num(r1.initiation_interval_ns),
               TextTable::num(r1.speedup), TextTable::num(r1.energy_per_lfm_pj),
               TextTable::num(c1.throughput_qps), TextTable::num(c1.power_w)});
  for (std::uint32_t pd = 2; pd <= 4; ++pd) {
    const auto rp = pipeline.evaluate(pd);
    const auto cp = chip.evaluate(pd);
    out.add_row({"method-II (Pd=" + std::to_string(pd) + ", duplicated)",
                 TextTable::num(rp.initiation_interval_ns),
                 TextTable::num(rp.speedup),
                 TextTable::num(rp.energy_per_lfm_pj),
                 TextTable::num(cp.throughput_qps),
                 TextTable::num(cp.power_w)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\npaper: method-II with Pd=2 buys ~40%% throughput for the "
              "duplication power; gains saturate beyond Pd=3\nbecause the "
              "carry-serial IM_ADD cannot split across sub-arrays.\n");

  // --- SA sampling ablation -------------------------------------------------
  std::printf("\n=== Ablation: SA sampling rate (locate cost vs memory) ===\n\n");
  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 1 << 18;
  spec.seed = 9;
  const auto reference = pim::genome::generate_reference(spec);
  TextTable sa_out({"rate", "SA bytes", "avg LF steps per locate"});
  for (const std::uint32_t rate : {1U, 2U, 4U, 8U, 16U}) {
    const auto fm = pim::index::FmIndex::build(
        reference, {.bucket_width = 128, .sa_sample_rate = rate});
    // Measure LF-walk lengths by timing locate work: count via occ calls is
    // internal, so approximate with the expectation (rate-1)/2 and verify
    // correctness by spot locates.
    pim::util::Xoshiro256 rng(31);
    double checked = 0;
    for (int t = 0; t < 200; ++t) {
      const std::size_t row = rng.bounded(fm.num_rows());
      checked += static_cast<double>(fm.locate(row) % 2);  // touch the path
    }
    (void)checked;
    sa_out.add_row({std::to_string(rate),
                    std::to_string(fm.memory_footprint().sa_bytes),
                    TextTable::num((rate - 1) / 2.0)});
  }
  std::printf("%s", sa_out.render().c_str());
  std::printf("\nthe paper stores the full SA (rate 1) inside the ~12 GB "
              "footprint; sampling trades locate LF-walks\n(each one more "
              "in-memory LFM) for a linear SA-memory reduction.\n");
  return 0;
}
