// Workload sweep — read length 50 bp to 1 kbp (the paper's introduction:
// reads "range from 50 to thousands nt in length").
//
// For each length: the exact-alignment fraction at the paper's error rates
// (falls as 0.997^m), the LFM work per read (grows as 2m), the measured
// software alignment behaviour, and the chip model's projected throughput
// (inverse in m). The backward-search O(m) scaling is what keeps long reads
// feasible at all — the DP baselines pay O(nm).
#include <cstdio>

#include "src/accel/pim_aligner_model.h"
#include "src/align/aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/readsim/read_simulator.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 1 << 20;
  spec.seed = 19;
  const auto reference = pim::genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
  const pim::hw::TimingEnergyModel timing;

  std::printf("=== Read-length sweep (50 bp .. 1 kbp) ===\n");
  std::printf("rates: 0.1%% variation + 0.2%% sequencing error; z = 2\n\n");
  TextTable out({"length", "exact frac (sim)", "exact frac (0.997^m)",
                 "aligned frac", "LFM/read (model)",
                 "chip throughput Pd=2 (q/s)"});

  for (const std::uint32_t len : {50U, 100U, 200U, 400U, 1000U}) {
    pim::readsim::ReadSimSpec rspec;
    rspec.read_length = len;
    rspec.num_reads = 300;
    rspec.population_variation_rate = 0.001;
    rspec.sequencing_error_rate = 0.002;
    rspec.seed = 100 + len;
    const auto set = pim::readsim::ReadSimulator(rspec).generate(reference);

    pim::align::AlignerOptions options;
    options.inexact.max_diffs = 2;
    const pim::align::Aligner aligner(fm, options);
    pim::align::AlignerStats stats;
    std::vector<std::vector<pim::genome::Base>> reads;
    for (const auto& r : set.reads) reads.push_back(r.bases);
    aligner.align_batch(reads, &stats);

    pim::accel::ChipModelConfig chip_cfg;
    chip_cfg.read_length = len;
    const pim::accel::PimChipModel chip(timing, {}, chip_cfg);
    const auto chip_report = chip.evaluate(2);

    const double aligned_frac =
        1.0 - static_cast<double>(stats.reads_unaligned) /
                  static_cast<double>(stats.reads_total);
    double predicted = 1.0;
    for (std::uint32_t i = 0; i < len; ++i) predicted *= 0.997;
    out.add_row({std::to_string(len),
                 TextTable::num(set.exact_fraction() * 100.0) + " %",
                 TextTable::num(predicted * 100.0) + " %",
                 TextTable::num(aligned_frac * 100.0) + " %",
                 TextTable::num(chip_report.lfm_per_read),
                 TextTable::num(chip_report.throughput_qps)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\ntakeaways: the ~70%% exact-stage fraction is a 100-bp "
              "artifact — at 400 bp most reads carry a\ndifference and stage "
              "two dominates; chip throughput scales as 1/m (O(m) backward "
              "search), while a\nDP baseline would scale as 1/(nm).\n");
  return 0;
}
