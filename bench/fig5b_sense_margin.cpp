// Figure 5b — Monte-Carlo V_sense distributions and sense margins.
//
// Reproduces: 10'000-trial Monte-Carlo of the sensed voltage for 1/2/3-cell
// parallel sensing under sigma_RA = 2% and sigma_TMR = 5% process variation,
// the per-fan-in worst-case sense margins (paper: 43.31 / 14.62 / 5.82 /
// 4.28 mV), and the tox 1.5 -> 2.0 nm reliability fix (~45 mV margin gain).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/pim/sense_amp.h"
#include "src/pim/sot_mram.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

constexpr std::size_t kTrials = 10000;

void print_fanin(const pim::hw::SotMramModel& model, std::uint32_t fan_in,
                 double paper_margin_mv) {
  const auto report =
      pim::hw::monte_carlo_sense_margin(model, fan_in, kTrials, 100 + fan_in);
  std::printf("\n-- fan-in %u (%zu trials) --\n", fan_in, kTrials);
  pim::util::TextTable table(
      {"AP cells", "mean Vsense (mV)", "sigma (mV)", "min", "max"});
  for (const auto& dist : report.distributions) {
    table.add_row({std::to_string(dist.num_ap),
                   pim::util::TextTable::num(dist.stats.mean()),
                   pim::util::TextTable::num(dist.stats.stddev()),
                   pim::util::TextTable::num(dist.stats.min()),
                   pim::util::TextTable::num(dist.stats.max())});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "worst-case 3-sigma margin: %.2f mV   (paper Fig. 5b: %.2f mV)\n",
      report.worst_margin_mv, paper_margin_mv);

  // Histogram of all distributions overlaid, as the figure plots them.
  double lo = 1e18, hi = -1e18;
  for (const auto& d : report.distributions) {
    lo = std::min(lo, d.stats.min());
    hi = std::max(hi, d.stats.max());
  }
  pim::util::Histogram hist(lo - 1.0, hi + 1.0, 40);
  pim::util::Xoshiro256 rng(500 + fan_in);
  std::vector<pim::hw::CellResistances> cells(fan_in);
  for (std::size_t t = 0; t < 2000; ++t) {
    for (auto& c : cells) c = model.sample_cell(rng);
    for (std::uint32_t ap = 0; ap <= fan_in; ++ap) {
      hist.add(model.v_sense(cells, ap == 0 ? 0 : ((1U << ap) - 1U)) * 1e3);
    }
  }
  std::printf("V_sense histogram (mV):\n%s", hist.render(40).c_str());
}

}  // namespace

int main() {
  std::printf("=== Fig. 5b: Monte-Carlo V_sense distributions ===\n");
  std::printf(
      "Setup: sigma(RA) = 2%%, sigma(TMR) = 5%%, %zu trials (Sec. IV-B).\n",
      kTrials);

  const pim::hw::SotMramModel model;  // tox = 1.5 nm defaults
  std::printf("nominal R_P = %.0f ohm, R_AP = %.0f ohm\n",
              model.nominal().r_p_ohm, model.nominal().r_ap_ohm);

  print_fanin(model, 1, 43.31);
  print_fanin(model, 2, 14.62);
  print_fanin(model, 3, 5.82);  // paper quotes 5.82 and 4.28 for fan-in 3

  // The tox fix: thicker barrier raises all levels, widening mV margins
  // against the fixed SA offset.
  std::printf("\n=== tox study: 1.5 nm -> 2.0 nm (MAJ3 reliability fix) ===\n");
  pim::hw::SotMramParams thick_params;
  thick_params.tox_nm = 2.0;
  const pim::hw::SotMramModel thick(thick_params);
  const auto thin3 = pim::hw::monte_carlo_sense_margin(model, 3, kTrials, 7);
  const auto thick3 = pim::hw::monte_carlo_sense_margin(thick, 3, kTrials, 7);
  std::printf("fan-in-3 margin @1.5nm: %.2f mV, @2.0nm: %.2f mV, gain %.2f mV"
              "  (paper: ~45 mV gain)\n",
              thin3.worst_margin_mv, thick3.worst_margin_mv,
              thick3.worst_margin_mv - thin3.worst_margin_mv);

  const auto rel_thin = pim::hw::monte_carlo_logic_reliability(model, 50000, 11);
  const auto rel_thick =
      pim::hw::monte_carlo_logic_reliability(thick, 50000, 11);
  std::printf("triple-sense logic failure rate: %.4f%% @1.5nm -> %.4f%% @2.0nm"
              "  (paper: tox increase 'considerably enhances reliability')\n",
              rel_thin.failure_rate() * 100.0,
              rel_thick.failure_rate() * 100.0);
  return 0;
}
