// Host-side batch dispatch: legacy vector-of-vectors versus the arena-backed
// ReadBatch engine path (S37), at batch sizes 1k / 10k / 100k.
//
// Both paths run the identical two-stage search (bit-identical results,
// asserted below), so the measured delta is exactly the layer this refactor
// replaces: per-read heap allocations and copies at every layer boundary.
// Each measured pass includes building the batch representation from the
// simulator's reads — that boundary copy is the cost under test.
//
// Heap traffic is observed by counting global operator new calls/bytes, the
// same technique sanitizer-less allocators use; the counters are exact for
// everything the process allocates during a pass.
#include <cstdio>
#include <cstdlib>
#include <new>

#include <atomic>
#include <chrono>
#include <vector>

#include "src/align/engine.h"
#include "src/align/parallel_aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};

struct AllocSnapshot {
  std::uint64_t allocs;
  std::uint64_t bytes;
};

AllocSnapshot snapshot() {
  return {g_allocs.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

struct PassResult {
  double seconds = 0.0;
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t aligned = 0;  ///< Sanity: both paths must agree.
};

/// The paper's short-read shape: 100-bp reads sampled uniformly from the
/// reference. Error-free, so stage one resolves every read and the search
/// work per read is identical and minimal — the dispatch overhead under
/// test is the largest share of the runtime it can be.
struct Workload {
  pim::genome::PackedSequence reference;
  pim::index::FmIndex fm;
  std::vector<std::uint64_t> starts;
  static constexpr std::uint32_t kReadLen = 100;

  explicit Workload(std::size_t max_reads) {
    pim::genome::SyntheticGenomeSpec spec;
    spec.length = 1 << 20;
    spec.seed = 2026;
    reference = pim::genome::generate_reference(spec);
    fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
    pim::util::Xoshiro256 rng(123);
    starts.reserve(max_reads);
    for (std::size_t i = 0; i < max_reads; ++i) {
      starts.push_back(rng.bounded(reference.size() - kReadLen));
    }
  }
};

PassResult run_legacy(const Workload& w, std::size_t n,
                      const pim::align::Aligner& aligner) {
  const auto a0 = snapshot();
  const auto t0 = Clock::now();

  // Layer-boundary copy: one heap vector per read.
  std::vector<std::vector<pim::genome::Base>> reads;
  reads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reads.push_back(
        w.reference.slice(w.starts[i], w.starts[i] + Workload::kReadLen));
  }
  const auto results = aligner.align_batch(reads);

  const auto t1 = Clock::now();
  const auto a1 = snapshot();
  PassResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.allocs = a1.allocs - a0.allocs;
  r.bytes = a1.bytes - a0.bytes;
  for (const auto& res : results) r.aligned += res.aligned() ? 1 : 0;
  return r;
}

PassResult run_engine(const Workload& w, std::size_t n,
                      const pim::align::SoftwareEngine& engine) {
  const auto a0 = snapshot();
  const auto t0 = Clock::now();

  // Same boundary, one packed arena.
  pim::align::ReadBatchBuilder builder;
  builder.reserve(n, n * Workload::kReadLen);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_slice(w.reference, w.starts[i],
                      w.starts[i] + Workload::kReadLen);
  }
  const auto batch = builder.build();
  pim::align::BatchResult results;
  engine.align_batch(batch, results);

  const auto t1 = Clock::now();
  const auto a1 = snapshot();
  PassResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.allocs = a1.allocs - a0.allocs;
  r.bytes = a1.bytes - a0.bytes;
  for (std::size_t i = 0; i < results.size(); ++i) {
    r.aligned += results.aligned(i) ? 1 : 0;
  }
  return r;
}

}  // namespace

int main() {
  using pim::util::TextTable;

  constexpr std::size_t kSizes[] = {1000, 10000, 100000};
  constexpr std::size_t kMax = 100000;

  std::printf("=== Engine throughput: legacy vector-of-vectors vs ReadBatch "
              "===\n");
  std::printf("reference: 1 Mbp synthetic; 100-bp error-free reads; both "
              "paths run the\nidentical two-stage search, serial, including "
              "batch construction.\n\n");

  Workload w(kMax);
  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const pim::align::Aligner aligner(w.fm, options);
  const pim::align::SoftwareEngine engine(w.fm, options);

  // Warm up index caches so the first pass is not penalized.
  (void)run_engine(w, 1000, engine);

  TextTable out({"batch", "path", "reads/s", "allocs", "allocs/read",
                 "MB alloc", "speedup", "alloc ratio"});
  bool ok = true;
  for (const auto n : kSizes) {
    const auto legacy = run_legacy(w, n, aligner);
    const auto eng = run_engine(w, n, engine);
    ok = ok && legacy.aligned == eng.aligned;

    const double nn = static_cast<double>(n);
    out.add_row({std::to_string(n), "legacy",
                 TextTable::num(nn / legacy.seconds),
                 std::to_string(legacy.allocs),
                 TextTable::num(static_cast<double>(legacy.allocs) / nn),
                 TextTable::num(static_cast<double>(legacy.bytes) / 1e6),
                 "1.00", "1.00"});
    out.add_row(
        {std::to_string(n), "ReadBatch", TextTable::num(nn / eng.seconds),
         std::to_string(eng.allocs),
         TextTable::num(static_cast<double>(eng.allocs) / nn),
         TextTable::num(static_cast<double>(eng.bytes) / 1e6),
         TextTable::num(legacy.seconds / eng.seconds),
         TextTable::num(static_cast<double>(legacy.allocs) /
                        static_cast<double>(eng.allocs))});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\nresult equivalence across paths: %s\n",
              ok ? "bit-identical aligned counts" : "MISMATCH");
  return ok ? 0 : 1;
}
