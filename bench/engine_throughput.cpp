// Host-side batch dispatch: first the streaming pipeline (S39) against the
// materialize-everything path — peak RSS (getrusage) and throughput as JSON
// lines — then legacy vector-of-vectors versus the arena-backed ReadBatch
// engine path (S37) at batch sizes 1k / 10k / 100k, then the multi-chip
// shard sweep (S38): the same batch fanned across 1/2/4/8 engine shards
// behind ShardedEngine, with per-shard load emitted as JSON lines
// (grep '^{') so the throughput trajectory is machine-trackable across PRs.
// A small PIM-chip-fleet pass closes the loop: measured per-chip LFM
// tallies feed the closed-loop chip simulator in place of assumed demand.
//
// The streaming section runs FIRST: ru_maxrss is a process-lifetime
// high-water mark, so the bounded-memory pass must finish before anything
// materializes the whole workload.
//
// The S40 sections close the observability loop: a fleet-scaling sweep
// (1/2/4/8 simulated chips over one batch, per-chip cycle/energy/LFM read
// back through the metrics registry — the ROADMAP chips-vs-throughput
// curve, one invocation) and a metrics-overhead pass (instrumented vs bare
// chunked scheduler; the registry must cost < 2%).
//
// The S43 section sweeps the host->chip staging bandwidth around the
// measured critical point, emitting compute-bound AND transfer-bound
// operating points as JSON lines, and asserts (into the exit code) that
// double-buffered staging strictly beats the non-overlapped transfer +
// compute sum at the default bandwidth.
//
// Usage: engine_throughput [max_reads] [metrics.jsonl]  (default 100000;
// CI's sanitizer job passes a small count so the bench smoke-runs under
// ASan). With a second argument, the registry snapshots behind the S40
// sections are also dumped to that path as JSON lines — the CI artifact
// tools/check_metrics_schema.py gates on.
//
// Both paths run the identical two-stage search (bit-identical results,
// asserted below), so the measured delta is exactly the layer this refactor
// replaces: per-read heap allocations and copies at every layer boundary.
// Each measured pass includes building the batch representation from the
// simulator's reads — that boundary copy is the cost under test.
//
// Heap traffic is observed by counting global operator new calls/bytes, the
// same technique sanitizer-less allocators use; the counters are exact for
// everything the process allocates during a pass.
#include <cstdio>
#include <cstdlib>
#include <new>

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "src/accel/measured_load.h"
#include "src/align/engine.h"
#include "src/obs/metrics.h"
#include "src/obs/reporter.h"
#include "src/align/parallel_aligner.h"
#include "src/align/sam_writer.h"
#include "src/align/sharded_engine.h"
#include "src/align/streaming_pipeline.h"
#include "src/genome/fastq.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/pim_fleet.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};

struct AllocSnapshot {
  std::uint64_t allocs;
  std::uint64_t bytes;
};

AllocSnapshot snapshot() {
  return {g_allocs.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

struct PassResult {
  double seconds = 0.0;
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t aligned = 0;  ///< Sanity: both paths must agree.
};

/// The paper's short-read shape: 100-bp reads sampled uniformly from the
/// reference. Error-free, so stage one resolves every read and the search
/// work per read is identical and minimal — the dispatch overhead under
/// test is the largest share of the runtime it can be.
struct Workload {
  pim::genome::PackedSequence reference;
  pim::index::FmIndex fm;
  std::vector<std::uint64_t> starts;
  static constexpr std::uint32_t kReadLen = 100;

  explicit Workload(std::size_t max_reads) {
    pim::genome::SyntheticGenomeSpec spec;
    spec.length = 1 << 20;
    spec.seed = 2026;
    reference = pim::genome::generate_reference(spec);
    fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
    pim::util::Xoshiro256 rng(123);
    starts.reserve(max_reads);
    for (std::size_t i = 0; i < max_reads; ++i) {
      starts.push_back(rng.bounded(reference.size() - kReadLen));
    }
  }
};

PassResult run_legacy(const Workload& w, std::size_t n,
                      const pim::align::Aligner& aligner) {
  const auto a0 = snapshot();
  const auto t0 = Clock::now();

  // Layer-boundary copy: one heap vector per read.
  std::vector<std::vector<pim::genome::Base>> reads;
  reads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reads.push_back(
        w.reference.slice(w.starts[i], w.starts[i] + Workload::kReadLen));
  }
  const auto results = aligner.align_batch(reads);

  const auto t1 = Clock::now();
  const auto a1 = snapshot();
  PassResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.allocs = a1.allocs - a0.allocs;
  r.bytes = a1.bytes - a0.bytes;
  for (const auto& res : results) r.aligned += res.aligned() ? 1 : 0;
  return r;
}

PassResult run_engine(const Workload& w, std::size_t n,
                      const pim::align::SoftwareEngine& engine) {
  const auto a0 = snapshot();
  const auto t0 = Clock::now();

  // Same boundary, one packed arena.
  pim::align::ReadBatchBuilder builder;
  builder.reserve(n, n * Workload::kReadLen);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_slice(w.reference, w.starts[i],
                      w.starts[i] + Workload::kReadLen);
  }
  const auto batch = builder.build();
  pim::align::BatchResult results;
  engine.align_batch(batch, results);

  const auto t1 = Clock::now();
  const auto a1 = snapshot();
  PassResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.allocs = a1.allocs - a0.allocs;
  r.bytes = a1.bytes - a0.bytes;
  for (std::size_t i = 0; i < results.size(); ++i) {
    r.aligned += results.aligned(i) ? 1 : 0;
  }
  return r;
}

/// Resident-set high-water mark so far, in KB (Linux ru_maxrss units).
long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

/// Write the workload's reads as a FASTQ file so both end-to-end paths pay
/// the same parse cost; the file lives on disk, not in either pass's RSS.
void write_workload_fastq(const Workload& w, std::size_t n,
                          const std::string& path) {
  std::ofstream out(path);
  for (std::size_t i = 0; i < n; ++i) {
    out << "@r" << i << '\n'
        << pim::genome::decode(
               w.reference.slice(w.starts[i], w.starts[i] + Workload::kReadLen))
        << "\n+\n" << std::string(Workload::kReadLen, 'I') << '\n';
  }
}

pim::align::ReadBatch build_batch(const Workload& w, std::size_t n) {
  pim::align::ReadBatchBuilder builder;
  builder.reserve(n, n * Workload::kReadLen);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_slice(w.reference, w.starts[i],
                      w.starts[i] + Workload::kReadLen);
  }
  return builder.build();
}

/// One shard-sweep point: the batch fanned across `shards` SoftwareEngine
/// instances (one simulated chip each), emitted as a JSON line with the
/// per-shard breakdown. Returns reads/s.
double run_shard_point(const Workload& w, const pim::align::ReadBatch& batch,
                       const pim::align::AlignerOptions& options,
                       std::size_t shards, std::uint64_t want_hits) {
  namespace align = pim::align;
  std::vector<std::unique_ptr<align::AlignmentEngine>> engines;
  for (std::size_t s = 0; s < shards; ++s) {
    engines.push_back(std::make_unique<align::SoftwareEngine>(w.fm, options));
  }
  const align::ShardedEngine sharded(std::move(engines));

  const auto t0 = Clock::now();
  align::BatchResult results;
  sharded.align_batch(batch, results);
  const auto t1 = Clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double qps = static_cast<double>(batch.size()) / seconds;

  std::string per_shard;
  for (const auto& s : sharded.shard_stats()) {
    if (!per_shard.empty()) per_shard += ",";
    per_shard += "{\"shard\":" + std::to_string(s.shard) +
                 ",\"reads\":" + std::to_string(s.reads) +
                 ",\"hits\":" + std::to_string(s.hits) + ",\"wall_ms\":" +
                 std::to_string(s.wall_ms) + "}";
  }
  std::printf("{\"bench\":\"shard_sweep\",\"shards\":%zu,\"reads\":%zu,"
              "\"reads_per_s\":%.0f,\"hits\":%llu,\"identical\":%s,"
              "\"peak_rss_kb\":%ld,\"per_shard\":[%s]}\n",
              shards, batch.size(), qps,
              static_cast<unsigned long long>(results.stats().hits_total),
              results.stats().hits_total == want_hits ? "true" : "false",
              peak_rss_kb(), per_shard.c_str());
  return qps;
}

}  // namespace

int main(int argc, char** argv) {
  using pim::util::TextTable;

  const std::size_t kMax =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 100000;
  const std::string metrics_path = argc > 2 ? argv[2] : "";
  std::vector<std::size_t> sizes;
  for (const std::size_t n : {std::size_t{1000}, std::size_t{10000},
                              std::size_t{100000}}) {
    if (n < kMax) sizes.push_back(n);
  }
  sizes.push_back(kMax);

  Workload w(kMax);
  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 2;
  const pim::align::Aligner aligner(w.fm, options);
  const pim::align::SoftwareEngine engine(w.fm, options);

  // --- Streaming pipeline (S39): bounded memory vs materialize ------------
  // Runs before every other section (ru_maxrss only grows). Both passes do
  // the full FASTQ -> align -> SAM trip; the streaming one holds two batch
  // generations, the materialize one the whole dataset three times over.
  std::printf("=== Streaming pipeline: FASTQ -> SAM end to end, %zu reads "
              "(JSON lines) ===\n\n",
              kMax);
  const std::string fastq_path = "/tmp/engine_throughput_stream.fastq";
  write_workload_fastq(w, kMax, fastq_path);

  double stream_qps = 0.0;
  long stream_rss_kb = 0;
  std::uint64_t stream_hits = 0;
  {
    std::ifstream fastq_in(fastq_path);
    std::ofstream devnull("/dev/null");
    pim::align::SamWriter writer(devnull, "ref", w.reference);
    writer.write_header();
    pim::genome::FastqStreamReader reader(fastq_in);
    const pim::align::StreamingPipeline pipeline(engine);
    const auto stats = pipeline.run(reader, writer);
    stream_qps = static_cast<double>(stats.reads) / (stats.wall_ms / 1e3);
    stream_rss_kb = peak_rss_kb();
    stream_hits = stats.engine.hits_total;
    std::printf("{\"bench\":\"streaming_rss\",\"path\":\"streaming\","
                "\"reads\":%llu,\"reads_per_s\":%.0f,\"peak_rss_kb\":%ld,"
                "\"peak_batch_mb\":%.2f,\"batches\":%llu,\"chunks\":%llu,"
                "\"ingest_wait_ms\":%.1f,\"sam_records\":%zu}\n",
                static_cast<unsigned long long>(stats.reads), stream_qps,
                stream_rss_kb,
                static_cast<double>(stats.peak_batch_bytes) / 1e6,
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.chunks),
                stats.ingest_wait_ms, writer.records_written());
  }
  double mat_qps = 0.0;
  long mat_rss_kb = 0;
  std::uint64_t mat_hits = 0;
  {
    const auto t0 = Clock::now();
    const auto records = pim::genome::read_fastq_file(fastq_path);
    const auto mat_batch = pim::align::ReadBatch::from_fastq(records);
    pim::align::BatchResult mat_results;
    pim::align::align_batch_parallel(engine, mat_batch, mat_results);
    std::ofstream devnull("/dev/null");
    pim::align::SamWriter writer(devnull, "ref", w.reference);
    writer.write_header();
    writer.write_batch(mat_batch, mat_results);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    mat_qps = static_cast<double>(mat_batch.size()) / secs;
    mat_rss_kb = peak_rss_kb();
    mat_hits = mat_results.stats().hits_total;
    std::printf("{\"bench\":\"streaming_rss\",\"path\":\"materialize\","
                "\"reads\":%zu,\"reads_per_s\":%.0f,\"peak_rss_kb\":%ld,"
                "\"sam_records\":%zu}\n",
                mat_batch.size(), mat_qps, mat_rss_kb,
                writer.records_written());
  }
  std::remove(fastq_path.c_str());
  const bool stream_ok = stream_hits == mat_hits;
  std::printf("{\"bench\":\"streaming_rss\",\"path\":\"ratio\","
              "\"rss_ratio\":%.2f,\"throughput_ratio\":%.2f,"
              "\"identical\":%s}\n",
              static_cast<double>(mat_rss_kb) /
                  static_cast<double>(stream_rss_kb ? stream_rss_kb : 1),
              stream_qps / (mat_qps > 0.0 ? mat_qps : 1.0),
              stream_ok ? "true" : "false");
  std::printf("streaming equivalence vs materialize: %s\n",
              stream_ok ? "bit-identical hit counts" : "MISMATCH");

  std::printf("\n=== Engine throughput: legacy vector-of-vectors vs ReadBatch "
              "===\n");
  std::printf("reference: 1 Mbp synthetic; 100-bp error-free reads; both "
              "paths run the\nidentical two-stage search, serial, including "
              "batch construction.\n\n");

  // Warm up index caches so the first pass is not penalized.
  (void)run_engine(w, std::min<std::size_t>(1000, kMax), engine);

  TextTable out({"batch", "path", "reads/s", "allocs", "allocs/read",
                 "MB alloc", "speedup", "alloc ratio"});
  bool ok = true;
  for (const auto n : sizes) {
    const auto legacy = run_legacy(w, n, aligner);
    const auto eng = run_engine(w, n, engine);
    ok = ok && legacy.aligned == eng.aligned;

    const double nn = static_cast<double>(n);
    out.add_row({std::to_string(n), "legacy",
                 TextTable::num(nn / legacy.seconds),
                 std::to_string(legacy.allocs),
                 TextTable::num(static_cast<double>(legacy.allocs) / nn),
                 TextTable::num(static_cast<double>(legacy.bytes) / 1e6),
                 "1.00", "1.00"});
    out.add_row(
        {std::to_string(n), "ReadBatch", TextTable::num(nn / eng.seconds),
         std::to_string(eng.allocs),
         TextTable::num(static_cast<double>(eng.allocs) / nn),
         TextTable::num(static_cast<double>(eng.bytes) / 1e6),
         TextTable::num(legacy.seconds / eng.seconds),
         TextTable::num(static_cast<double>(legacy.allocs) /
                        static_cast<double>(eng.allocs))});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\nresult equivalence across paths: %s\n",
              ok ? "bit-identical aligned counts" : "MISMATCH");

  // --- Shard sweep (S38): one batch across 1/2/4/8 simulated chips --------
  std::printf("\n=== Shard sweep: ShardedEngine over N software chips, "
              "%zu reads (JSON lines) ===\n",
              kMax);
  const auto batch = build_batch(w, kMax);
  pim::align::BatchResult unsharded;
  engine.align_batch(batch, unsharded);
  const std::uint64_t want_hits = unsharded.stats().hits_total;
  const double base_qps =
      static_cast<double>(batch.size()) / (unsharded.stats().wall_ms / 1e3);

  double qps1 = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const double qps = run_shard_point(w, batch, options, shards, want_hits);
    if (shards == 1) qps1 = qps;
  }
  std::printf("unsharded baseline: %.0f reads/s; sharded(1): %.0f reads/s "
              "(%.2fx)\n",
              base_qps, qps1, qps1 / base_qps);

  // --- Metrics overhead (S40): instrumented vs bare chunked scheduler ----
  // The same parallel chunked pass with and without a registry installed;
  // best-of-3 keeps scheduler noise out of a percent-level comparison. The
  // registry's contract is near-zero cost: handles are a single branch when
  // uninstalled, and lock-free single-writer shard slots when installed.
  pim::obs::MetricsRegistry sched_registry;
  const auto sched_pass = [&](pim::obs::MetricsRegistry* registry) {
    pim::align::ParallelOptions popts;
    popts.metrics = registry;
    // At least two workers, even on a one-core host: the comparison must
    // exercise the instrumented parallel scheduler, not the serial
    // fallback (which bypasses the sched.* series entirely).
    popts.num_threads = std::max<std::size_t>(
        2, std::thread::hardware_concurrency());
    const auto t0 = Clock::now();
    const auto stats = pim::align::align_batch_parallel_chunked(
        engine, batch, [](const pim::align::BatchResultChunk&) {}, popts);
    (void)stats;
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  (void)sched_pass(nullptr);  // warm-up
  double bare_s = 1e300;
  double instrumented_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    bare_s = std::min(bare_s, sched_pass(nullptr));
    instrumented_s = std::min(instrumented_s, sched_pass(&sched_registry));
  }
  const double overhead_pct = (instrumented_s - bare_s) / bare_s * 100.0;
  std::printf("\n=== Metrics overhead: chunked scheduler, %zu reads "
              "(JSON line) ===\n",
              batch.size());
  std::printf("{\"bench\":\"metrics_overhead\",\"reads\":%zu,"
              "\"bare_reads_per_s\":%.0f,\"instrumented_reads_per_s\":%.0f,"
              "\"overhead_pct\":%.2f}\n",
              batch.size(), static_cast<double>(batch.size()) / bare_s,
              static_cast<double>(batch.size()) / instrumented_s,
              overhead_pct);

  // --- Measured per-chip load -> chip simulator ---------------------------
  // A small PIM fleet pass: each chip's hardware LFM tally (not the model's
  // assumed stage mix) becomes the service demand of the closed-loop chip
  // simulator.
  const std::size_t pim_reads = std::min<std::size_t>(512, kMax);
  std::printf("\n=== PIM fleet (2 chips, %zu reads): measured load -> "
              "chip_sim ===\n",
              pim_reads);
  const pim::hw::TimingEnergyModel timing;
  pim::hw::PimChipFleet fleet(w.fm, timing, 2, options);
  const auto pim_batch = build_batch(w, pim_reads);
  pim::align::BatchResult fleet_results;
  fleet.engine().align_batch(pim_batch, fleet_results);
  const bool fleet_ok =
      fleet_results.stats().hits_total ==
      [&] {
        pim::align::BatchResult sw;
        engine.align_batch(pim_batch, sw);
        return sw.stats().hits_total;
      }();
  for (const auto& load : pim::accel::measured_loads(fleet)) {
    const auto sim_cfg = pim::accel::chip_sim_from_measured(load);
    const auto sim = pim::accel::simulate_chip(sim_cfg);
    std::printf("{\"bench\":\"fleet_measured\",\"chip\":%zu,\"reads\":%llu,"
                "\"hits\":%llu,\"lfm_calls\":%llu,\"lfm_per_read\":%.1f,"
                "\"wall_ms\":%.2f,\"sim_throughput_qps\":%.0f,"
                "\"sim_group_util\":%.3f}\n",
                load.chip, static_cast<unsigned long long>(load.reads),
                static_cast<unsigned long long>(load.hits),
                static_cast<unsigned long long>(load.lfm_calls),
                load.lfm_per_read(), load.wall_ms, sim.throughput_qps,
                sim.mean_group_utilization);
  }
  std::printf("fleet equivalence vs software: %s\n",
              fleet_ok ? "bit-identical hit counts" : "MISMATCH");

  // --- Fleet scaling (S40): the chips-vs-throughput curve -----------------
  // One invocation sweeps 1/2/4/8 simulated chips over the same batch. The
  // per-chip cycle/energy/LFM tallies are published into the registry and
  // read back from the scrape — the aggregation path front-ends consume —
  // then emitted as one JSON line per point. host_reads_per_s is simulator
  // wall time (host-CPU-bound, does not scale); model_reads_per_s is the
  // paper-style device throughput — reads over the slowest chip's cycle
  // count at the model clock — which should scale with chips while
  // fleet.cycles (total chip work) and cycles/read stay flat.
  std::printf("\n=== Fleet scaling: 1/2/4/8 chips over %zu reads "
              "(JSON lines) ===\n",
              pim_reads);
  pim::obs::MetricsRegistry fleet_registry;
  const std::uint64_t pim_want_hits = [&] {
    pim::align::BatchResult sw;
    engine.align_batch(pim_batch, sw);
    return sw.stats().hits_total;
  }();
  bool scaling_ok = true;
  for (const std::size_t chips : {1u, 2u, 4u, 8u}) {
    pim::hw::PimChipFleet sweep_fleet(w.fm, timing, chips, options);
    const auto t0 = Clock::now();
    pim::align::BatchResult sweep_results;
    sweep_fleet.engine().align_batch(pim_batch, sweep_results);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    scaling_ok =
        scaling_ok && sweep_results.stats().hits_total == pim_want_hits;
    sweep_fleet.publish_metrics(fleet_registry);
    const auto snap = fleet_registry.scrape();

    std::string per_chip;
    double max_chip_cycles = 0.0;
    for (std::size_t c = 0; c < chips; ++c) {
      const std::string prefix = "chip." + std::to_string(c) + ".";
      const double cycles = snap.gauge_value(prefix + "cycles");
      max_chip_cycles = std::max(max_chip_cycles, cycles);
      if (!per_chip.empty()) per_chip += ",";
      per_chip += "{\"chip\":" + std::to_string(c) + ",\"cycles\":" +
                  std::to_string(static_cast<std::uint64_t>(cycles)) +
                  ",\"energy_pj\":" +
                  std::to_string(static_cast<std::uint64_t>(
                      snap.gauge_value(prefix + "energy_pj"))) +
                  ",\"lfm_calls\":" +
                  std::to_string(static_cast<std::uint64_t>(
                      snap.gauge_value(prefix + "lfm_calls"))) +
                  "}";
    }
    const double fleet_cycles = snap.gauge_value("fleet.cycles");
    // Chips run concurrently: device time = slowest chip's cycles / clock.
    const double model_reads_per_s =
        max_chip_cycles > 0.0
            ? static_cast<double>(pim_batch.size()) * timing.clock_ghz() *
                  1e9 / max_chip_cycles
            : 0.0;
    std::printf(
        "{\"bench\":\"fleet_scaling\",\"chips\":%zu,\"reads\":%zu,"
        "\"model_reads_per_s\":%.0f,\"host_reads_per_s\":%.0f,"
        "\"fleet_cycles\":%.0f,\"cycles_per_read\":%.0f,"
        "\"fleet_energy_pj\":%.0f,\"fleet_lfm_calls\":%llu,"
        "\"identical\":%s,\"per_chip\":[%s]}\n",
        chips, pim_batch.size(), model_reads_per_s,
        static_cast<double>(pim_batch.size()) / secs, fleet_cycles,
        fleet_cycles / static_cast<double>(pim_batch.size()),
        snap.gauge_value("fleet.energy_pj"),
        static_cast<unsigned long long>(
            snap.gauge_value("fleet.lfm_calls")),
        sweep_results.stats().hits_total == pim_want_hits ? "true" : "false",
        per_chip.c_str());
  }

  // --- Transfer-bandwidth sweep (S43) -------------------------------------
  // The fleet now charges host->chip staging (the pre-S43 numbers assumed
  // the batch teleported in for free). Sweep the per-chip link bandwidth
  // around the measured critical point bw* = bytes-per-generation /
  // compute-per-generation of the slowest chip, so the emitted operating
  // points are guaranteed to cover BOTH regimes: transfer-bound below bw*,
  // compute-bound above. Every point runs two generations (two align_batch
  // calls over the same batch) so double buffering has a previous compute
  // to hide under. Asserted into the exit code: at the default bandwidth
  // the double-buffered modeled end-to-end time is strictly below the
  // non-overlapped transfer + compute sum, and the single-buffer
  // counterfactual equals that sum exactly.
  std::printf("\n=== Transfer-bandwidth sweep (S43): %zu reads x 2 "
              "generations, 2 chips (JSON lines) ===\n",
              pim_reads);
  bool transfer_ok = true;
  const auto run_transfer_point = [&](double bandwidth_gbs,
                                      bool double_buffer) {
    pim::util::Config cfg;
    cfg.set_double("HostLinkBandwidthGBs", bandwidth_gbs);
    pim::hw::TransferOptions topts;
    topts.double_buffer = double_buffer;
    topts.config = cfg;
    pim::hw::PimChipFleet tf(w.fm, timing, 2, options, {},
                             pim::hw::AddPlacement::kMethodI, {}, topts);
    pim::align::BatchResult r1;
    tf.engine().align_batch(pim_batch, r1);
    pim::align::BatchResult r2;
    tf.engine().align_batch(pim_batch, r2);
    transfer_ok = transfer_ok && r1.stats().hits_total == pim_want_hits &&
                  r2.stats().hits_total == pim_want_hits;
    return tf.transfer_report();
  };

  // Probe at the default bandwidth to locate the critical point.
  const auto probe = run_transfer_point(16.0, true);
  double probe_bytes_per_gen = 0.0;
  double probe_compute_per_gen = 0.0;
  for (const auto& chip : probe.chips) {
    if (chip.generations == 0) continue;
    const double gens = static_cast<double>(chip.generations);
    // The slowest chip sets the fleet's operating point.
    if (chip.compute_ns / gens > probe_compute_per_gen) {
      probe_compute_per_gen = chip.compute_ns / gens;
      probe_bytes_per_gen = static_cast<double>(chip.staged_bytes) / gens;
    }
  }
  // bw* in bytes/ns == GB/s; guard tiny batches (compute ~ 0).
  const double critical_gbs =
      probe_compute_per_gen > 1.0
          ? probe_bytes_per_gen / probe_compute_per_gen
          : 1.0;
  bool saw_transfer_bound = false;
  bool saw_compute_bound = false;
  const double sweep_points[] = {critical_gbs * 0.25, critical_gbs,
                                 critical_gbs * 4.0, 16.0};
  for (const double gbs : sweep_points) {
    const auto report = run_transfer_point(gbs, true);
    // Steady-state regime of the slowest chip: link-paced when one
    // generation's staging exceeds its compute.
    double t_per_gen = 0.0;
    double c_per_gen = 0.0;
    for (const auto& chip : report.chips) {
      if (chip.generations == 0) continue;
      const double gens = static_cast<double>(chip.generations);
      if (chip.compute_ns / gens >= c_per_gen) {
        c_per_gen = chip.compute_ns / gens;
        t_per_gen = chip.staging_ns / gens;
      }
    }
    const bool transfer_bound = t_per_gen > c_per_gen;
    saw_transfer_bound = saw_transfer_bound || transfer_bound;
    saw_compute_bound = saw_compute_bound || !transfer_bound;
    std::printf(
        "{\"bench\":\"transfer_sweep\",\"bandwidth_gbs\":%.6g,"
        "\"chips\":2,\"reads\":%zu,\"generations\":%llu,"
        "\"staged_bytes\":%llu,\"staging_ns\":%.0f,\"compute_ns\":%.0f,"
        "\"stall_ns\":%.0f,\"overlapped_ns\":%.0f,\"serial_ns\":%.0f,"
        "\"overlap_ratio\":%.3f,\"energy_pj\":%.0f,\"bound\":\"%s\"}\n",
        gbs, pim_batch.size(),
        static_cast<unsigned long long>(report.generations),
        static_cast<unsigned long long>(report.staged_bytes),
        report.staging_ns, report.compute_ns, report.stall_ns,
        report.overlapped_ns, report.serial_ns, report.overlap_ratio,
        report.energy_pj, transfer_bound ? "transfer" : "compute");
  }
  // The S43 acceptance assert: overlap must pay off at the default
  // bandwidth, and turning double buffering off must cost exactly the
  // serial sum.
  const auto overlapped = run_transfer_point(16.0, true);
  const auto serial = run_transfer_point(16.0, false);
  const bool overlap_wins = overlapped.overlapped_ns < overlapped.serial_ns;
  const bool serial_exact = serial.overlapped_ns == serial.serial_ns;
  transfer_ok = transfer_ok && overlap_wins && serial_exact &&
                saw_transfer_bound && saw_compute_bound;
  std::printf("{\"bench\":\"transfer_overlap\",\"bandwidth_gbs\":16.0,"
              "\"double_buffered_ns\":%.0f,\"serial_ns\":%.0f,"
              "\"saved_ns\":%.0f,\"overlap_wins\":%s,"
              "\"single_buffer_matches_serial\":%s,"
              "\"both_regimes_seen\":%s}\n",
              overlapped.overlapped_ns, overlapped.serial_ns,
              overlapped.serial_ns - overlapped.overlapped_ns,
              overlap_wins ? "true" : "false",
              serial_exact ? "true" : "false",
              saw_transfer_bound && saw_compute_bound ? "true" : "false");

  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    pim::obs::write_json_lines(sched_registry.scrape(), metrics_out);
    pim::obs::write_json_lines(fleet_registry.scrape(), metrics_out);
    std::printf("\nregistry snapshots -> %s\n", metrics_path.c_str());
  }
  return (ok && fleet_ok && stream_ok && scaling_ok && transfer_ok) ? 0 : 1;
}
