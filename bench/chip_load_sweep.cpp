// Chip-level load sweep — the dynamic view behind Fig. 9c/10c.
//
// Closed-loop queueing simulation of reads over pipeline groups: sweeps the
// concurrent-read population and prints throughput, group utilization
// (the dynamic RUR), and read-latency percentiles. Shows the classic
// closed-system knee: throughput rises linearly with load until the groups
// saturate, after which only latency grows — choosing the DPU's read-slot
// budget IS choosing a point on this curve.
#include <cstdio>

#include "src/accel/chip_sim.h"
#include "src/accel/contention.h"
#include "src/accel/pim_aligner_model.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  // Service time = the Pd=2 initiation interval from the pipeline model.
  const pim::hw::TimingEnergyModel timing;
  const pim::hw::PipelineModel pipeline(timing);
  const double ii = pipeline.evaluate(2).initiation_interval_ns;

  pim::accel::ChipSimConfig cfg;
  cfg.groups = 32;  // the chip model's pipeline provisioning
  cfg.lfm_per_read = 300;
  cfg.service_ns = ii;
  cfg.reads_to_complete = 3000;

  std::printf("=== Closed-loop load sweep (G=%u groups, ii=%.2f ns) ===\n\n",
              cfg.groups, ii);
  TextTable out({"reads in flight", "load C/G", "throughput (q/s)",
                 "group util (dyn RUR)", "static occupancy",
                 "read latency p50/p95 (us)"});
  for (const std::uint32_t c : {8U, 16U, 32U, 64U, 96U, 128U, 256U}) {
    cfg.concurrent_reads = c;
    const auto r = pim::accel::simulate_chip(cfg);
    const double load = static_cast<double>(c) / cfg.groups;
    out.add_row(
        {std::to_string(c), TextTable::num(load),
         TextTable::num(r.throughput_qps),
         TextTable::num(r.mean_group_utilization * 100.0) + " %",
         TextTable::num(pim::accel::expected_occupancy_asymptotic(load) *
                        100.0) +
             " %",
         TextTable::num(r.p50_latency_ns / 1e3) + " / " +
             TextTable::num(r.p95_latency_ns / 1e3)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\nthe chip model's operating point (Pd=2 ~ load 2, 64 reads "
              "in flight) sits just past the knee:\n~77%% dynamic utilization"
              " (the static occupancy law says 86.5%%; random routing leaves"
              " some groups\nidle while others queue) for ~1.5x the zero-"
              "contention latency. More slots buy little throughput\nand "
              "only inflate latency — why the DPU register budget scales "
              "with Pd and stops there.\n");
  return 0;
}
