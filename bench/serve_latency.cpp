// Serving-layer latency under offered load (S41).
//
// Calibrates the engine's raw per-read service time in-environment (so the
// numbers — and the smoke bound below — scale with sanitizer slowdown and
// machine speed), then sweeps an open-loop client against AlignmentService
// at increasing offered load: a paced fraction of capacity, near-saturation,
// and finally an unpaced burst that offers several times more reads than the
// admission queue can hold. Per point it emits one JSON line (grep '^{'):
//
//   {"bench":"serve_latency","point":"burst","offered_x":...,
//    "requests":N,"admitted":...,"rejected":...,"expired":...,
//    "completed":...,"reads_per_s":...,"p50_ms":..,"p95_ms":..,
//    "p99_ms":..,"bound_ms":..}
//
// Smoke assertions (nonzero exit on violation; run in CI's Release and TSan
// jobs):
//   1. the burst point sheds load (rejected > 0): the admission queue is
//      offered ~4x its read capacity, so a service that never rejects has
//      broken admission control;
//   2. p99 latency of ADMITTED requests stays under a bound derived from
//      the calibrated service rate and the queue depth — the invariant
//      bounded admission exists to provide. The bound is deliberately loose
//      (generous constant factor) so it only trips on unbounded queueing,
//      not scheduling noise.
//
// Usage: serve_latency [requests_per_point] [metrics.jsonl]
// (default 240; CI passes a smaller count for the sanitizer smoke. With a
// second argument the burst point's registry snapshot is appended to that
// path as JSON lines for tools/check_metrics_schema.py.)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/align/engine.h"
#include "src/genome/synthetic_genome.h"
#include "src/index/fm_index.h"
#include "src/obs/metrics.h"
#include "src/obs/reporter.h"
#include "src/serve/service.h"
#include "src/util/rng.h"

namespace {

using namespace std::chrono_literals;
using pim::genome::Base;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadLen = 80;
constexpr std::size_t kReadsPerRequest = 4;
constexpr std::size_t kMaxBatchReads = 128;
constexpr std::size_t kMaxQueuedReads = 512;

std::vector<std::vector<Base>> make_reads(
    const pim::genome::PackedSequence& reference, std::size_t count) {
  pim::util::Xoshiro256 rng(17);
  std::vector<std::vector<Base>> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t start = rng.bounded(reference.size() - kReadLen);
    std::vector<Base> read = reference.slice(start, start + kReadLen);
    if (i % 3 == 1) {
      const std::size_t pos = rng.bounded(read.size());
      read[pos] = pim::genome::complement(read[pos]);
    }
    if (i % 2 == 1) read = pim::genome::reverse_complement(read);
    reads.push_back(std::move(read));
  }
  return reads;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct PointResult {
  std::string name;
  double offered_x = 0.0;  ///< Offered load relative to calibrated capacity.
  std::size_t requests = 0;
  pim::serve::ServiceCounters::Snapshot counters;
  double wall_s = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double reads_per_s = 0.0;
};

/// One sweep point: an open-loop client submits `requests`
/// kReadsPerRequest-read requests, paced at `interval` (zero = burst), then
/// collects every future. Latency percentiles cover admitted+completed
/// requests only — shed requests fail in microseconds by design and would
/// make the percentiles look better, not worse.
PointResult run_point(const pim::align::AlignmentEngine& engine,
                      const std::vector<std::vector<Base>>& pool,
                      std::string name, double offered_x,
                      std::size_t requests, Clock::duration interval,
                      pim::obs::MetricsRegistry* registry) {
  pim::serve::ServiceOptions options;
  options.admission.max_queued_requests = 0;  // reads are the binding bound
  options.admission.max_queued_reads = kMaxQueuedReads;
  options.batching.max_batch_reads = kMaxBatchReads;
  options.batching.max_linger = 500us;
  options.metrics = registry;
  pim::serve::AlignmentService service(engine, options);

  pim::util::Xoshiro256 rng(23);
  std::vector<pim::serve::ResponseFuture> futures;
  futures.reserve(requests);
  const auto t0 = Clock::now();
  auto next = t0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (interval > Clock::duration::zero()) {
      std::this_thread::sleep_until(next);
      next += interval;
    }
    const std::size_t begin = rng.bounded(pool.size() - kReadsPerRequest);
    pim::serve::AlignRequest request;
    request.reads.assign(
        pool.begin() + static_cast<std::ptrdiff_t>(begin),
        pool.begin() + static_cast<std::ptrdiff_t>(begin + kReadsPerRequest));
    futures.push_back(service.submit(std::move(request)));
  }

  std::vector<double> latencies;
  latencies.reserve(requests);
  for (auto& future : futures) {
    auto response = future.get();
    if (response.ok()) latencies.push_back(response.latency_ms);
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  service.shutdown();

  PointResult r;
  r.name = std::move(name);
  r.offered_x = offered_x;
  r.requests = requests;
  r.counters = service.counters();
  r.wall_s = wall_s;
  std::sort(latencies.begin(), latencies.end());
  r.p50_ms = quantile_sorted(latencies, 0.50);
  r.p95_ms = quantile_sorted(latencies, 0.95);
  r.p99_ms = quantile_sorted(latencies, 0.99);
  r.reads_per_s =
      wall_s > 0.0
          ? static_cast<double>(r.counters.batched_reads) / wall_s
          : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t requests_per_point =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 240;
  const std::string metrics_path = argc > 2 ? argv[2] : "";

  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 150000;
  spec.seed = 29;
  const auto reference = pim::genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
  pim::align::AlignerOptions aligner_options;
  aligner_options.inexact.max_diffs = 2;
  pim::align::SoftwareEngine engine(fm, aligner_options);
  const auto pool = make_reads(reference, 4096);

  // --- Calibration: raw serial per-read service time, in-environment -----
  // (so the smoke bound scales with TSan/ASan slowdown automatically).
  const std::size_t calib_reads = std::min<std::size_t>(1024, pool.size());
  pim::align::ReadBatch calib_batch = pim::align::ReadBatch::from_reads(
      {pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(calib_reads)});
  pim::align::BatchResult calib_result;
  engine.align_batch(calib_batch, calib_result);
  const double per_read_ms =
      calib_result.stats().wall_ms / static_cast<double>(calib_reads);
  const double capacity_rps = per_read_ms > 0.0 ? 1000.0 / per_read_ms : 1e9;
  std::printf("{\"bench\":\"serve_latency\",\"point\":\"calibrate\","
              "\"per_read_ms\":%s,\"capacity_reads_per_s\":%s}\n",
              pim::obs::json_number(per_read_ms).c_str(),
              pim::obs::json_number(capacity_rps).c_str());

  // p99 bound for admitted requests: worst case, a request is admitted
  // behind a full queue (kMaxQueuedReads) plus an in-flight batch, waits
  // out the linger, and then needs its own batch served. The x20 factor
  // absorbs batching/demux overhead and scheduler noise; the bound still
  // trips if queueing is unbounded (which is what it guards).
  const double bound_ms =
      20.0 * (static_cast<double>(kMaxQueuedReads + kMaxBatchReads) *
              per_read_ms) +
      20.0 * 0.5 /* linger */ + 250.0;

  // --- Offered-load sweep -------------------------------------------------
  auto paced_interval = [&](double multiplier) {
    const double seconds_per_request =
        static_cast<double>(kReadsPerRequest) / (capacity_rps * multiplier);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds_per_request));
  };

  std::vector<PointResult> points;
  points.push_back(run_point(engine, pool, "light", 0.25, requests_per_point,
                             paced_interval(0.25), nullptr));
  points.push_back(run_point(engine, pool, "saturation", 1.0,
                             requests_per_point, paced_interval(1.0),
                             nullptr));
  // Burst: everything at once. Offered reads >> queue capacity, so
  // admission MUST shed; sized so that holds even for small CI counts.
  const std::size_t burst_requests = std::max(
      requests_per_point, (4 * kMaxQueuedReads) / kReadsPerRequest + 8);
  pim::obs::MetricsRegistry registry;
  points.push_back(run_point(engine, pool, "burst",
                             static_cast<double>(burst_requests), burst_requests,
                             Clock::duration::zero(), &registry));

  for (const auto& p : points) {
    std::printf(
        "{\"bench\":\"serve_latency\",\"point\":\"%s\",\"offered_x\":%s,"
        "\"requests\":%zu,\"admitted\":%llu,\"rejected\":%llu,"
        "\"expired\":%llu,\"completed\":%llu,\"batches\":%llu,"
        "\"reads_per_s\":%s,\"p50_ms\":%s,\"p95_ms\":%s,\"p99_ms\":%s,"
        "\"bound_ms\":%s}\n",
        pim::obs::json_escape(p.name).c_str(),
        pim::obs::json_number(p.offered_x).c_str(), p.requests,
        static_cast<unsigned long long>(p.counters.admitted),
        static_cast<unsigned long long>(p.counters.rejected),
        static_cast<unsigned long long>(p.counters.expired),
        static_cast<unsigned long long>(p.counters.completed),
        static_cast<unsigned long long>(p.counters.batches),
        pim::obs::json_number(p.reads_per_s).c_str(),
        pim::obs::json_number(p.p50_ms).c_str(),
        pim::obs::json_number(p.p95_ms).c_str(),
        pim::obs::json_number(p.p99_ms).c_str(),
        pim::obs::json_number(bound_ms).c_str());
  }

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    pim::obs::write_json_lines(registry.scrape(), out);
    std::printf("wrote serve.* snapshot to %s\n", metrics_path.c_str());
  }

  // --- Smoke assertions ---------------------------------------------------
  const PointResult& burst = points.back();
  int rc = 0;
  if (burst.counters.rejected == 0) {
    std::fprintf(stderr,
                 "SMOKE FAIL: burst offered %zu requests (%zu reads) against "
                 "a %zu-read queue but nothing was shed\n",
                 burst.requests, burst.requests * kReadsPerRequest,
                 kMaxQueuedReads);
    rc = 1;
  }
  if (burst.counters.completed == 0) {
    std::fprintf(stderr, "SMOKE FAIL: burst completed nothing\n");
    rc = 1;
  }
  for (const auto& p : points) {
    if (p.p99_ms > bound_ms) {
      std::fprintf(stderr,
                   "SMOKE FAIL: point %s p99 %.2fms exceeds bound %.2fms "
                   "(admitted-latency must stay bounded by queue depth)\n",
                   p.name.c_str(), p.p99_ms, bound_ms);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("serve_latency smoke: shed %llu at burst, all p99 within "
                "%.1fms bound\n",
                static_cast<unsigned long long>(burst.counters.rejected),
                bound_ms);
  }
  return rc;
}
