// Ablation — the correlated data-partitioning claim (Section V).
//
// The paper's mapping stores each BWT slice *with its own Marker-Table
// region* in the same sub-array, so the whole LFM (XNOR_Match + transpose +
// IM_ADD + readout) is sub-array-local. The counterfactual mapping — MT in
// separate arrays, as a naive port would do — must move the 32-bit marker
// in and the 32-bit result out across the bank interconnect on every LFM.
// This bench quantifies what correlation buys, and also shows the measured
// per-tile LFM load imbalance that repeats induce (the reason the
// occupancy-based RUR model saturates below 100%).
#include <cstdio>

#include "src/genome/synthetic_genome.h"
#include "src/pim/interconnect.h"
#include "src/pim/pipeline.h"
#include "src/pim/platform.h"
#include "src/util/rng.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;
  const pim::hw::TimingEnergyModel timing;
  const pim::hw::PipelineModel pipeline(timing);
  const auto t = pipeline.stage_times();

  std::printf("=== Correlated vs uncorrelated mapping (Sec. V) ===\n\n");

  // Correlated (the paper): everything local.
  const double local_lat = t.serial_ns();
  const auto pd1 = pipeline.evaluate(1);
  const double local_energy = pd1.energy_per_lfm_pj;
  const double local_movement = t.movement_ns();

  // Uncorrelated: 2 inter-bank word transfers per LFM (marker in, result
  // out) on the critical path, priced by the interconnect model.
  const pim::hw::InterconnectModel bus;
  const auto transfer =
      bus.transfer_cost(2, pim::hw::HopLevel::kInterBank);
  const double bus_lat = transfer.latency_ns;
  const double bus_energy = transfer.energy_pj;
  const double remote_lat = local_lat + bus_lat;
  const double remote_energy = local_energy + bus_energy;
  const double remote_movement = local_movement + bus_lat;

  TextTable out({"mapping", "latency/LFM (ns)", "energy/LFM (pJ)",
                 "movement share (MBR-like)"});
  out.add_row({"correlated (paper)", TextTable::num(local_lat),
               TextTable::num(local_energy),
               TextTable::num(local_movement / local_lat * 100.0) + " %"});
  out.add_row({"uncorrelated (MT remote)", TextTable::num(remote_lat),
               TextTable::num(remote_energy),
               TextTable::num(remote_movement / remote_lat * 100.0) + " %"});
  std::printf("%s", out.render().c_str());
  std::printf("\ncorrelation buys %.1f%% latency and %.1f%% energy per LFM, "
              "and keeps the movement share\nat %.1f%% instead of %.1f%% — "
              "the mechanism behind PIM-Aligner's <18%% MBR (Fig. 10b).\n",
              (remote_lat / local_lat - 1.0) * 100.0,
              (remote_energy / local_energy - 1.0) * 100.0,
              local_movement / local_lat * 100.0,
              remote_movement / remote_lat * 100.0);

  // --- Measured per-tile load imbalance --------------------------------------
  std::printf("\n=== Per-tile LFM load under real alignment traffic ===\n\n");
  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 1 << 18;  // 8 tiles
  spec.seed = 13;
  spec.repeat_fraction = 0.5;
  const auto reference = pim::genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
  pim::hw::PimAlignerPlatform platform(fm, timing);

  pim::util::Xoshiro256 rng(17);
  for (int r = 0; r < 400; ++r) {
    const std::size_t start = rng.bounded(reference.size() - 64);
    platform.exact_align(reference.slice(start, start + 64));
  }
  TextTable tiles({"tile", "BWT slice", "triple senses", "share"});
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < platform.num_tiles(); ++i) {
    total += platform.tile(i).stats().triple_senses;
  }
  for (std::size_t i = 0; i < platform.num_tiles(); ++i) {
    const auto& s = platform.tile(i).stats();
    tiles.add_row(
        {std::to_string(i),
         "[" + std::to_string(platform.tile(i).base()) + ", " +
             std::to_string(platform.tile(i).base() + platform.tile(i).size()) +
             ")",
         std::to_string(s.triple_senses),
         TextTable::num(100.0 * static_cast<double>(s.triple_senses) /
                        static_cast<double>(total)) +
             " %"});
  }
  std::printf("%s", tiles.render().c_str());
  std::printf("\nnote the skew: backward search revisits low SA-index tiles "
              "(short suffix intervals concentrate\nthere), so load is not "
              "uniform — the occupancy argument behind the RUR model.\n");
  return 0;
}
