// Figure 9a/9b — throughput per Watt and throughput per Watt per mm^2.
//
// Prints the two efficiency axes for all ten platforms and the headline
// ratios the paper's abstract states: 3.1x over the best SW accelerator
// (RaceLogic), ~2x / 43.8x / 458x over ASIC / FPGA / GPU, and ~9x / 1.9x
// per-mm2 over the FM-index ASIC and the processing-in-ReRAM AligneR.
#include <cstdio>

#include "src/accel/comparison.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;
  const auto table = pim::accel::build_default_comparison();

  std::printf("=== Fig. 9a/9b: efficiency ===\n\n");
  TextTable out({"accelerator", "q/s/W", "area (mm^2)", "q/s/W/mm^2"});
  for (const auto& row : table.rows) {
    out.add_row({row.name, TextTable::num(row.throughput_per_watt()),
                 TextTable::num(row.area_mm2),
                 TextTable::num(row.throughput_per_watt_per_mm2())});
  }
  std::printf("%s", out.render().c_str());

  const auto r = pim::accel::compute_headline_ratios(table);
  std::printf("\nheadline ratios (measured vs paper):\n");
  TextTable ratios({"ratio", "measured", "paper"});
  ratios.add_row({"TPW vs RaceLogic (best SW)", TextTable::num(r.tpw_vs_racelogic),
                  "~3.1x"});
  ratios.add_row({"TPW vs ASIC", TextTable::num(r.tpw_vs_asic), "~2x"});
  ratios.add_row({"TPW vs FPGA", TextTable::num(r.tpw_vs_fpga), "43.8x"});
  ratios.add_row({"TPW vs GPU", TextTable::num(r.tpw_vs_gpu), "458x"});
  ratios.add_row({"TPW/mm^2 vs ASIC", TextTable::num(r.tpwa_vs_asic), "~9x"});
  ratios.add_row(
      {"TPW/mm^2 vs AligneR", TextTable::num(r.tpwa_vs_aligner), "1.9x"});
  std::printf("%s", ratios.render().c_str());

  // Fig. 9a ordering: AlignS first, PIM-Aligner-n second.
  const double best = table.row("AlignS").throughput_per_watt();
  const double second = table.row("PIM-Aligner-n").throughput_per_watt();
  bool ordering = best > second;
  for (const auto& row : table.rows) {
    if (row.name == "AlignS" || row.name == "PIM-Aligner-n") continue;
    if (row.throughput_per_watt() >= second) ordering = false;
  }
  std::printf("\n[%s] AlignS highest TPW, PIM-Aligner-n second (Fig. 9a)\n",
              ordering ? "ok" : "!!");
  return 0;
}
