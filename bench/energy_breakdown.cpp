// Energy breakdown — where PIM-Aligner's joules go.
//
// Decomposes the measured per-read sub-array energy (from real alignment
// traffic on the functional platform) into the XNOR_Match, transpose,
// IM_ADD, readout and DPU components, and contrasts method-I against
// method-II including the compare/add-array split. This is the per-op view
// behind the Fig. 8a power bar.
#include <cstdio>

#include "src/align/aligner.h"
#include "src/genome/synthetic_genome.h"
#include "src/pim/controller.h"
#include "src/pim/platform.h"
#include "src/readsim/read_simulator.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 1 << 18;
  spec.seed = 29;
  const auto reference = pim::genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});
  const pim::hw::TimingEnergyModel timing;

  pim::readsim::ReadSimSpec rspec;
  rspec.read_length = 100;
  rspec.num_reads = 200;
  rspec.population_variation_rate = 0.001;
  rspec.sequencing_error_rate = 0.002;
  rspec.seed = 30;
  const auto set = pim::readsim::ReadSimulator(rspec).generate(reference);
  std::vector<std::vector<pim::genome::Base>> reads;
  for (const auto& r : set.reads) reads.push_back(r.bases);

  pim::align::AlignerOptions options;
  options.inexact.max_diffs = 2;

  const auto run = [&](pim::hw::AddPlacement placement) {
    pim::hw::PimAlignerPlatform platform(fm, timing, pim::hw::ZoneLayout{},
                                         placement);
    pim::hw::PimBatchDriver driver(platform, options);
    const auto report = driver.run(reads);
    return std::make_pair(report, platform.aggregate_duplicate_stats());
  };

  const auto [m1, m1dup] = run(pim::hw::AddPlacement::kMethodI);
  const auto [m2, m2dup] = run(pim::hw::AddPlacement::kMethodII);

  const auto read_c = timing.op_cost(pim::hw::SubArrayOp::kMemRead);
  const auto write_c = timing.op_cost(pim::hw::SubArrayOp::kMemWrite);
  const auto triple_c = timing.op_cost(pim::hw::SubArrayOp::kTripleSense);
  const auto dpu_c = timing.op_cost(pim::hw::SubArrayOp::kDpuWord);

  std::printf("=== Per-read sub-array energy breakdown ===\n");
  std::printf("workload: %zu x 100 bp reads, z = 2, two-stage pipeline\n\n",
              reads.size());

  const double n = static_cast<double>(m1.stats.reads_total);
  const auto& ops = m1.hardware.ops;
  // Attribute energy: XNOR triples = dpu_word_ops (one per XNOR_Match);
  // adder triples = the rest; writes split 32:65 transpose:adder per the
  // 97-writes-per-LFM protocol; reads are result readouts + marker reads.
  const double xnor_triples = static_cast<double>(ops.dpu_word_ops);
  const double add_triples =
      static_cast<double>(ops.triple_senses) - xnor_triples;
  const double transpose_writes =
      static_cast<double>(ops.writes) * 32.0 / 97.0;
  const double adder_writes = static_cast<double>(ops.writes) - transpose_writes;

  TextTable out({"component", "energy/read (pJ)", "share"});
  const double total_pj = ops.energy_pj;
  const auto row = [&](const char* name, double pj) {
    out.add_row({name, TextTable::num(pj / n),
                 TextTable::num(pj / total_pj * 100.0) + " %"});
  };
  row("XNOR_Match (compare)", xnor_triples * triple_c.energy_pj);
  row("IM_ADD senses", add_triples * triple_c.energy_pj);
  row("IM_ADD write-backs", adder_writes * write_c.energy_pj);
  row("count transpose", transpose_writes * write_c.energy_pj);
  row("result/marker readout",
      static_cast<double>(ops.reads) * read_c.energy_pj);
  row("DPU", static_cast<double>(ops.dpu_word_ops) * dpu_c.energy_pj);
  out.add_row({"TOTAL", TextTable::num(total_pj / n), "100 %"});
  std::printf("%s", out.render().c_str());

  std::printf("\nmethod-I vs method-II (same reads):\n");
  TextTable split({"placement", "total energy (uJ)", "compare-side share",
                   "add-side share"});
  split.add_row({"method-I", TextTable::num(m1.energy_pj * 1e-6), "100 %",
                 "(same array)"});
  const double m2_total = m2.hardware.ops.energy_pj;
  split.add_row(
      {"method-II", TextTable::num(m2_total * 1e-6),
       TextTable::num((m2_total - m2dup.energy_pj) / m2_total * 100.0) + " %",
       TextTable::num(m2dup.energy_pj / m2_total * 100.0) + " %"});
  std::printf("%s", split.render().c_str());
  std::printf("\nthe adder (senses + write-backs) dominates per-read energy;"
              " method-II moves ~%.0f%% of it to the\nduplicate array, which"
              " is exactly the work the Pd=2 pipeline overlaps.\n",
              m2dup.energy_pj / m2_total * 100.0);
  return 0;
}
