// Extension — write-endurance analysis of the computational sub-array.
//
// IM_ADD rewrites the carry row every adder cycle, concentrating wear on a
// single reserved-zone row. This bench drives a tile with realistic LFM
// traffic, prints the per-zone write densities, and projects lifetime at
// chip-scale per-tile LFM rates for MRAM vs ReRAM endurance classes —
// quantifying the SOT-MRAM endurance advantage the paper's introduction
// cites against the TCAM/ReRAM approaches.
#include <cstdio>

#include "src/genome/synthetic_genome.h"
#include "src/pim/endurance.h"
#include "src/util/rng.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;

  pim::genome::SyntheticGenomeSpec spec;
  spec.length = 30000;
  spec.seed = 21;
  const auto reference = pim::genome::generate_reference(spec);
  const auto fm = pim::index::FmIndex::build(reference, {.bucket_width = 128});

  pim::hw::TimingEnergyModel timing;
  pim::hw::ZoneLayout layout;
  pim::hw::PimTile tile(timing, layout, fm, 0);
  tile.array().enable_write_tracking();

  // Drive 20k LFMs with random ids and bases — a tile's-eye view of
  // steady-state alignment traffic.
  pim::util::Xoshiro256 rng(5);
  std::uint64_t lfm_count = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t id = 1 + rng.bounded(tile.size() - 1);
    tile.lfm(static_cast<pim::genome::Base>(rng.bounded(4)), id);
    ++lfm_count;
  }

  const auto report =
      pim::hw::analyze_endurance(tile.array(), layout, lfm_count);
  std::printf("=== Sub-array wear after %llu LFMs ===\n\n",
              static_cast<unsigned long long>(lfm_count));
  TextTable zones({"zone", "rows", "writes", "writes/row"});
  for (const auto& z : report.by_zone) {
    zones.add_row({z.zone, std::to_string(z.rows), std::to_string(z.writes),
                   TextTable::num(z.writes_per_row())});
  }
  std::printf("%s", zones.render().c_str());
  std::printf("\nhot spot: row %u (%s zone), %llu writes = %.1f per LFM "
              "(the IM_ADD carry row)\n",
              report.hottest_row, report.hottest_zone.c_str(),
              static_cast<unsigned long long>(report.hottest_row_writes),
              report.hottest_writes_per_lfm());

  // Lifetime projection at the chip model's per-tile LFM rate.
  const double per_tile_lfm_hz = 2.0e9 / 97657.0;  // total LFM rate / tiles
  std::printf("\nlifetime projection at %.1f LFM/s per tile:\n",
              per_tile_lfm_hz);
  TextTable life({"endurance class", "cycles", "hottest-row lifetime"});
  const auto fmt_years = [](double years) {
    if (years > 100.0) return std::string(">100 years");
    if (years >= 1.0) return TextTable::num(years) + " years";
    if (years * 365.25 >= 1.0) return TextTable::num(years * 365.25) + " days";
    return TextTable::num(years * 365.25 * 24.0) + " hours";
  };
  life.add_row({"SOT-MRAM (typical)", "1e15",
                fmt_years(report.projected_lifetime_years(per_tile_lfm_hz, 1e15))});
  life.add_row({"SOT-MRAM (conservative)", "1e12",
                fmt_years(report.projected_lifetime_years(per_tile_lfm_hz, 1e12))});
  life.add_row({"ReRAM (optimistic)", "1e10",
                fmt_years(report.projected_lifetime_years(per_tile_lfm_hz, 1e10))});
  life.add_row({"ReRAM (typical)", "1e8",
                fmt_years(report.projected_lifetime_years(per_tile_lfm_hz, 1e8))});
  std::printf("%s", life.render().c_str());
  std::printf("\ntakeaway: even the carry-row hot spot outlives the system on"
              " MRAM endurance; the same dataflow\non typical ReRAM would "
              "wear out the reserved zone within days — one more reason the"
              " paper's\nSOT-MRAM substrate suits write-heavy in-memory "
              "arithmetic.\n");
  return 0;
}
