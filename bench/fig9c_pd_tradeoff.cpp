// Figure 9c — power/throughput trade-off versus parallelism degree Pd.
//
// Sweeps Pd = 1..8 through the chip model (the paper plots 1..4) and prints
// throughput, power, the pipeline initiation interval, and the per-LFM
// stage decomposition behind it. The paper annotates Pd=2 with 28.4 W and
// 6.7e6 queries/s and reports ~40% gain over the Pd=1 baseline; gains
// saturate beyond Pd=3 because the carry-serial IM_ADD cannot split.
#include <cstdio>

#include "src/accel/pim_aligner_model.h"
#include "src/util/table.h"

int main() {
  using pim::util::TextTable;
  const pim::hw::TimingEnergyModel timing;
  const pim::accel::PimChipModel model(timing);

  std::printf("=== Fig. 9c: power-throughput trade-off vs Pd ===\n\n");
  TextTable out({"Pd", "throughput (q/s)", "power (W)", "speedup", "ii (ns)",
                 "RUR (%)"});
  const double base_tp = model.evaluate(1).throughput_qps;
  for (std::uint32_t pd = 1; pd <= 8; ++pd) {
    const auto r = model.evaluate(pd);
    out.add_row({std::to_string(pd), TextTable::num(r.throughput_qps),
                 TextTable::num(r.power_w),
                 TextTable::num(r.throughput_qps / base_tp),
                 TextTable::num(r.pipeline.initiation_interval_ns),
                 TextTable::num(r.rur_pct)});
  }
  std::printf("%s", out.render().c_str());

  const auto pd2 = model.evaluate(2);
  std::printf("\nPd=2: %.1f W, %.2fe6 q/s  (paper annotation: 28.4 W, 6.7e6)\n",
              pd2.power_w, pd2.throughput_qps / 1e6);

  // Per-LFM stage decomposition driving the trade-off.
  const auto t = pd2.pipeline.stages;
  std::printf("\nper-LFM stage times (Fig. 7 pipeline):\n");
  TextTable stages({"stage", "time (ns)", "resource"});
  stages.add_row({"XNOR_Match", TextTable::num(t.xnor_ns), "compare array"});
  stages.add_row({"DPU popcount+update", TextTable::num(t.dpu_ns), "DPU"});
  stages.add_row(
      {"count transpose", TextTable::num(t.count_write_ns), "add array"});
  stages.add_row({"IM_ADD", TextTable::num(t.im_add_ns), "add array"});
  stages.add_row({"result readout", TextTable::num(t.readout_ns), "add array"});
  std::printf("%s", stages.render().c_str());
  std::printf("serial LFM latency: %.2f ns; Pd=2 initiation interval: %.2f ns\n",
              pd2.pipeline.serial_lfm_ns, pd2.pipeline.initiation_interval_ns);
  return 0;
}
