file(REMOVE_RECURSE
  "CMakeFiles/accelerator_survey.dir/accelerator_survey.cpp.o"
  "CMakeFiles/accelerator_survey.dir/accelerator_survey.cpp.o.d"
  "accelerator_survey"
  "accelerator_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
