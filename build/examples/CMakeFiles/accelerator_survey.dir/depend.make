# Empty dependencies file for accelerator_survey.
# This may be replaced when dependencies are built.
