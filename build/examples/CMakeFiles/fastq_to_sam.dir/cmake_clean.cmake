file(REMOVE_RECURSE
  "CMakeFiles/fastq_to_sam.dir/fastq_to_sam.cpp.o"
  "CMakeFiles/fastq_to_sam.dir/fastq_to_sam.cpp.o.d"
  "fastq_to_sam"
  "fastq_to_sam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastq_to_sam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
