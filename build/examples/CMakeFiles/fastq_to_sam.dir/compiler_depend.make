# Empty compiler generated dependencies file for fastq_to_sam.
# This may be replaced when dependencies are built.
