# Empty dependencies file for pim_simulation.
# This may be replaced when dependencies are built.
