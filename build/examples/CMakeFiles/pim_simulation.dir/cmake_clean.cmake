file(REMOVE_RECURSE
  "CMakeFiles/pim_simulation.dir/pim_simulation.cpp.o"
  "CMakeFiles/pim_simulation.dir/pim_simulation.cpp.o.d"
  "pim_simulation"
  "pim_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
