# Empty compiler generated dependencies file for inexact_alignment.
# This may be replaced when dependencies are built.
