file(REMOVE_RECURSE
  "CMakeFiles/inexact_alignment.dir/inexact_alignment.cpp.o"
  "CMakeFiles/inexact_alignment.dir/inexact_alignment.cpp.o.d"
  "inexact_alignment"
  "inexact_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inexact_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
