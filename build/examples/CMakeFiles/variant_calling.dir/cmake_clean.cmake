file(REMOVE_RECURSE
  "CMakeFiles/variant_calling.dir/variant_calling.cpp.o"
  "CMakeFiles/variant_calling.dir/variant_calling.cpp.o.d"
  "variant_calling"
  "variant_calling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_calling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
