# Empty dependencies file for sam_to_vcf.
# This may be replaced when dependencies are built.
