file(REMOVE_RECURSE
  "CMakeFiles/sam_to_vcf.dir/sam_to_vcf.cpp.o"
  "CMakeFiles/sam_to_vcf.dir/sam_to_vcf.cpp.o.d"
  "sam_to_vcf"
  "sam_to_vcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sam_to_vcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
