file(REMOVE_RECURSE
  "CMakeFiles/index_cli.dir/index_cli.cpp.o"
  "CMakeFiles/index_cli.dir/index_cli.cpp.o.d"
  "index_cli"
  "index_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
