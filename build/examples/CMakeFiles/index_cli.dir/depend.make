# Empty dependencies file for index_cli.
# This may be replaced when dependencies are built.
