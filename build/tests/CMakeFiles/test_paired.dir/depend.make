# Empty dependencies file for test_paired.
# This may be replaced when dependencies are built.
