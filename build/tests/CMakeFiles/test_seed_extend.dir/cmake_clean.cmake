file(REMOVE_RECURSE
  "CMakeFiles/test_seed_extend.dir/test_seed_extend.cpp.o"
  "CMakeFiles/test_seed_extend.dir/test_seed_extend.cpp.o.d"
  "test_seed_extend"
  "test_seed_extend.pdb"
  "test_seed_extend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seed_extend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
