# Empty dependencies file for test_seed_extend.
# This may be replaced when dependencies are built.
