file(REMOVE_RECURSE
  "CMakeFiles/test_varcall.dir/test_varcall.cpp.o"
  "CMakeFiles/test_varcall.dir/test_varcall.cpp.o.d"
  "test_varcall"
  "test_varcall.pdb"
  "test_varcall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_varcall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
