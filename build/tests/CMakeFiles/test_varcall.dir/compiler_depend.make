# Empty compiler generated dependencies file for test_varcall.
# This may be replaced when dependencies are built.
