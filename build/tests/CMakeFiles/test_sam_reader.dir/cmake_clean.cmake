file(REMOVE_RECURSE
  "CMakeFiles/test_sam_reader.dir/test_sam_reader.cpp.o"
  "CMakeFiles/test_sam_reader.dir/test_sam_reader.cpp.o.d"
  "test_sam_reader"
  "test_sam_reader.pdb"
  "test_sam_reader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sam_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
