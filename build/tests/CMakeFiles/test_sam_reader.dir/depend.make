# Empty dependencies file for test_sam_reader.
# This may be replaced when dependencies are built.
