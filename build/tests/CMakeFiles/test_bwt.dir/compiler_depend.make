# Empty compiler generated dependencies file for test_bwt.
# This may be replaced when dependencies are built.
