file(REMOVE_RECURSE
  "CMakeFiles/test_bwt.dir/test_bwt.cpp.o"
  "CMakeFiles/test_bwt.dir/test_bwt.cpp.o.d"
  "test_bwt"
  "test_bwt.pdb"
  "test_bwt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
