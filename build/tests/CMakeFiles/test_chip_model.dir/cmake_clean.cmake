file(REMOVE_RECURSE
  "CMakeFiles/test_chip_model.dir/test_chip_model.cpp.o"
  "CMakeFiles/test_chip_model.dir/test_chip_model.cpp.o.d"
  "test_chip_model"
  "test_chip_model.pdb"
  "test_chip_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chip_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
