# Empty compiler generated dependencies file for test_chip_model.
# This may be replaced when dependencies are built.
