file(REMOVE_RECURSE
  "CMakeFiles/test_packed_sequence.dir/test_packed_sequence.cpp.o"
  "CMakeFiles/test_packed_sequence.dir/test_packed_sequence.cpp.o.d"
  "test_packed_sequence"
  "test_packed_sequence.pdb"
  "test_packed_sequence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packed_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
