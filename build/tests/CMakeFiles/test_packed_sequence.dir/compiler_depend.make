# Empty compiler generated dependencies file for test_packed_sequence.
# This may be replaced when dependencies are built.
