file(REMOVE_RECURSE
  "CMakeFiles/test_sot_mram.dir/test_sot_mram.cpp.o"
  "CMakeFiles/test_sot_mram.dir/test_sot_mram.cpp.o.d"
  "test_sot_mram"
  "test_sot_mram.pdb"
  "test_sot_mram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sot_mram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
