file(REMOVE_RECURSE
  "CMakeFiles/test_marker_table.dir/test_marker_table.cpp.o"
  "CMakeFiles/test_marker_table.dir/test_marker_table.cpp.o.d"
  "test_marker_table"
  "test_marker_table.pdb"
  "test_marker_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marker_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
