# Empty compiler generated dependencies file for test_marker_table.
# This may be replaced when dependencies are built.
