# Empty dependencies file for test_multi_reference.
# This may be replaced when dependencies are built.
