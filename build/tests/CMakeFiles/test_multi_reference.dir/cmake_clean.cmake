file(REMOVE_RECURSE
  "CMakeFiles/test_multi_reference.dir/test_multi_reference.cpp.o"
  "CMakeFiles/test_multi_reference.dir/test_multi_reference.cpp.o.d"
  "test_multi_reference"
  "test_multi_reference.pdb"
  "test_multi_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
