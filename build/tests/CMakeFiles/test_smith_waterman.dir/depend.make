# Empty dependencies file for test_smith_waterman.
# This may be replaced when dependencies are built.
