# Empty dependencies file for test_kmer_index.
# This may be replaced when dependencies are built.
