file(REMOVE_RECURSE
  "CMakeFiles/test_kmer_index.dir/test_kmer_index.cpp.o"
  "CMakeFiles/test_kmer_index.dir/test_kmer_index.cpp.o.d"
  "test_kmer_index"
  "test_kmer_index.pdb"
  "test_kmer_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kmer_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
