file(REMOVE_RECURSE
  "CMakeFiles/test_subarray.dir/test_subarray.cpp.o"
  "CMakeFiles/test_subarray.dir/test_subarray.cpp.o.d"
  "test_subarray"
  "test_subarray.pdb"
  "test_subarray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
