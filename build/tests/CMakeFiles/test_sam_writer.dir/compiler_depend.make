# Empty compiler generated dependencies file for test_sam_writer.
# This may be replaced when dependencies are built.
