file(REMOVE_RECURSE
  "CMakeFiles/test_sam_writer.dir/test_sam_writer.cpp.o"
  "CMakeFiles/test_sam_writer.dir/test_sam_writer.cpp.o.d"
  "test_sam_writer"
  "test_sam_writer.pdb"
  "test_sam_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sam_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
