file(REMOVE_RECURSE
  "CMakeFiles/test_occ_tables.dir/test_occ_tables.cpp.o"
  "CMakeFiles/test_occ_tables.dir/test_occ_tables.cpp.o.d"
  "test_occ_tables"
  "test_occ_tables.pdb"
  "test_occ_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occ_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
