# Empty compiler generated dependencies file for test_occ_tables.
# This may be replaced when dependencies are built.
