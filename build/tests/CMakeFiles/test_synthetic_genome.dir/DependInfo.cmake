
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_synthetic_genome.cpp" "tests/CMakeFiles/test_synthetic_genome.dir/test_synthetic_genome.cpp.o" "gcc" "tests/CMakeFiles/test_synthetic_genome.dir/test_synthetic_genome.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/pim_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/varcall/CMakeFiles/pim_varcall.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/readsim/CMakeFiles/pim_readsim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/pim_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/pim_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
