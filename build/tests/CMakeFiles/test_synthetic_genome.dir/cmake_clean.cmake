file(REMOVE_RECURSE
  "CMakeFiles/test_synthetic_genome.dir/test_synthetic_genome.cpp.o"
  "CMakeFiles/test_synthetic_genome.dir/test_synthetic_genome.cpp.o.d"
  "test_synthetic_genome"
  "test_synthetic_genome.pdb"
  "test_synthetic_genome[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synthetic_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
