# Empty dependencies file for test_synthetic_genome.
# This may be replaced when dependencies are built.
