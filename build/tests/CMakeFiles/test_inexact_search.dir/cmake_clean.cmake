file(REMOVE_RECURSE
  "CMakeFiles/test_inexact_search.dir/test_inexact_search.cpp.o"
  "CMakeFiles/test_inexact_search.dir/test_inexact_search.cpp.o.d"
  "test_inexact_search"
  "test_inexact_search.pdb"
  "test_inexact_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inexact_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
