# Empty compiler generated dependencies file for test_inexact_search.
# This may be replaced when dependencies are built.
