file(REMOVE_RECURSE
  "CMakeFiles/test_global_align.dir/test_global_align.cpp.o"
  "CMakeFiles/test_global_align.dir/test_global_align.cpp.o.d"
  "test_global_align"
  "test_global_align.pdb"
  "test_global_align[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
