# Empty compiler generated dependencies file for test_global_align.
# This may be replaced when dependencies are built.
