file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_aligner.dir/test_parallel_aligner.cpp.o"
  "CMakeFiles/test_parallel_aligner.dir/test_parallel_aligner.cpp.o.d"
  "test_parallel_aligner"
  "test_parallel_aligner.pdb"
  "test_parallel_aligner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_aligner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
