file(REMOVE_RECURSE
  "CMakeFiles/test_exact_search.dir/test_exact_search.cpp.o"
  "CMakeFiles/test_exact_search.dir/test_exact_search.cpp.o.d"
  "test_exact_search"
  "test_exact_search.pdb"
  "test_exact_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
