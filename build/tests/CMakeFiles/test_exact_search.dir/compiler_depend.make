# Empty compiler generated dependencies file for test_exact_search.
# This may be replaced when dependencies are built.
