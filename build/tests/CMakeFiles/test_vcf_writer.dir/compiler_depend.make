# Empty compiler generated dependencies file for test_vcf_writer.
# This may be replaced when dependencies are built.
