file(REMOVE_RECURSE
  "CMakeFiles/test_vcf_writer.dir/test_vcf_writer.cpp.o"
  "CMakeFiles/test_vcf_writer.dir/test_vcf_writer.cpp.o.d"
  "test_vcf_writer"
  "test_vcf_writer.pdb"
  "test_vcf_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcf_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
