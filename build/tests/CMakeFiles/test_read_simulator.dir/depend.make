# Empty dependencies file for test_read_simulator.
# This may be replaced when dependencies are built.
