file(REMOVE_RECURSE
  "CMakeFiles/test_read_simulator.dir/test_read_simulator.cpp.o"
  "CMakeFiles/test_read_simulator.dir/test_read_simulator.cpp.o.d"
  "test_read_simulator"
  "test_read_simulator.pdb"
  "test_read_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_read_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
