file(REMOVE_RECURSE
  "CMakeFiles/test_timing_energy.dir/test_timing_energy.cpp.o"
  "CMakeFiles/test_timing_energy.dir/test_timing_energy.cpp.o.d"
  "test_timing_energy"
  "test_timing_energy.pdb"
  "test_timing_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
