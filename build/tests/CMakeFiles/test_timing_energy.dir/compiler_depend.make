# Empty compiler generated dependencies file for test_timing_energy.
# This may be replaced when dependencies are built.
