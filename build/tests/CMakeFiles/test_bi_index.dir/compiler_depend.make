# Empty compiler generated dependencies file for test_bi_index.
# This may be replaced when dependencies are built.
