file(REMOVE_RECURSE
  "libpim_readsim.a"
)
