file(REMOVE_RECURSE
  "CMakeFiles/pim_readsim.dir/paired_simulator.cpp.o"
  "CMakeFiles/pim_readsim.dir/paired_simulator.cpp.o.d"
  "CMakeFiles/pim_readsim.dir/read_simulator.cpp.o"
  "CMakeFiles/pim_readsim.dir/read_simulator.cpp.o.d"
  "libpim_readsim.a"
  "libpim_readsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_readsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
