# Empty dependencies file for pim_readsim.
# This may be replaced when dependencies are built.
