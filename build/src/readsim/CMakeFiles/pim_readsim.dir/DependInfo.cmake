
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/readsim/paired_simulator.cpp" "src/readsim/CMakeFiles/pim_readsim.dir/paired_simulator.cpp.o" "gcc" "src/readsim/CMakeFiles/pim_readsim.dir/paired_simulator.cpp.o.d"
  "/root/repo/src/readsim/read_simulator.cpp" "src/readsim/CMakeFiles/pim_readsim.dir/read_simulator.cpp.o" "gcc" "src/readsim/CMakeFiles/pim_readsim.dir/read_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genome/CMakeFiles/pim_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
