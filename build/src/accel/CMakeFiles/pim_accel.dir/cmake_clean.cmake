file(REMOVE_RECURSE
  "CMakeFiles/pim_accel.dir/baseline_models.cpp.o"
  "CMakeFiles/pim_accel.dir/baseline_models.cpp.o.d"
  "CMakeFiles/pim_accel.dir/chip_sim.cpp.o"
  "CMakeFiles/pim_accel.dir/chip_sim.cpp.o.d"
  "CMakeFiles/pim_accel.dir/comparison.cpp.o"
  "CMakeFiles/pim_accel.dir/comparison.cpp.o.d"
  "CMakeFiles/pim_accel.dir/contention.cpp.o"
  "CMakeFiles/pim_accel.dir/contention.cpp.o.d"
  "CMakeFiles/pim_accel.dir/pim_aligner_model.cpp.o"
  "CMakeFiles/pim_accel.dir/pim_aligner_model.cpp.o.d"
  "libpim_accel.a"
  "libpim_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
