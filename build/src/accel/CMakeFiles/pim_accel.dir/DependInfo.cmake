
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/baseline_models.cpp" "src/accel/CMakeFiles/pim_accel.dir/baseline_models.cpp.o" "gcc" "src/accel/CMakeFiles/pim_accel.dir/baseline_models.cpp.o.d"
  "/root/repo/src/accel/chip_sim.cpp" "src/accel/CMakeFiles/pim_accel.dir/chip_sim.cpp.o" "gcc" "src/accel/CMakeFiles/pim_accel.dir/chip_sim.cpp.o.d"
  "/root/repo/src/accel/comparison.cpp" "src/accel/CMakeFiles/pim_accel.dir/comparison.cpp.o" "gcc" "src/accel/CMakeFiles/pim_accel.dir/comparison.cpp.o.d"
  "/root/repo/src/accel/contention.cpp" "src/accel/CMakeFiles/pim_accel.dir/contention.cpp.o" "gcc" "src/accel/CMakeFiles/pim_accel.dir/contention.cpp.o.d"
  "/root/repo/src/accel/pim_aligner_model.cpp" "src/accel/CMakeFiles/pim_accel.dir/pim_aligner_model.cpp.o" "gcc" "src/accel/CMakeFiles/pim_accel.dir/pim_aligner_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pim/CMakeFiles/pim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/pim_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/pim_genome.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
