# Empty compiler generated dependencies file for pim_accel.
# This may be replaced when dependencies are built.
