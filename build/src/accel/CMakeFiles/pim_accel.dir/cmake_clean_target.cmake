file(REMOVE_RECURSE
  "libpim_accel.a"
)
