file(REMOVE_RECURSE
  "CMakeFiles/pim_util.dir/bit_vector.cpp.o"
  "CMakeFiles/pim_util.dir/bit_vector.cpp.o.d"
  "CMakeFiles/pim_util.dir/config.cpp.o"
  "CMakeFiles/pim_util.dir/config.cpp.o.d"
  "CMakeFiles/pim_util.dir/stats.cpp.o"
  "CMakeFiles/pim_util.dir/stats.cpp.o.d"
  "CMakeFiles/pim_util.dir/table.cpp.o"
  "CMakeFiles/pim_util.dir/table.cpp.o.d"
  "libpim_util.a"
  "libpim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
