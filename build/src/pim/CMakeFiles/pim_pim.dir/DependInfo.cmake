
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/controller.cpp" "src/pim/CMakeFiles/pim_pim.dir/controller.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/controller.cpp.o.d"
  "/root/repo/src/pim/endurance.cpp" "src/pim/CMakeFiles/pim_pim.dir/endurance.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/endurance.cpp.o.d"
  "/root/repo/src/pim/interconnect.cpp" "src/pim/CMakeFiles/pim_pim.dir/interconnect.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/interconnect.cpp.o.d"
  "/root/repo/src/pim/mapping.cpp" "src/pim/CMakeFiles/pim_pim.dir/mapping.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/mapping.cpp.o.d"
  "/root/repo/src/pim/pipeline.cpp" "src/pim/CMakeFiles/pim_pim.dir/pipeline.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/pipeline.cpp.o.d"
  "/root/repo/src/pim/pipeline_sim.cpp" "src/pim/CMakeFiles/pim_pim.dir/pipeline_sim.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/pipeline_sim.cpp.o.d"
  "/root/repo/src/pim/platform.cpp" "src/pim/CMakeFiles/pim_pim.dir/platform.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/platform.cpp.o.d"
  "/root/repo/src/pim/sense_amp.cpp" "src/pim/CMakeFiles/pim_pim.dir/sense_amp.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/sense_amp.cpp.o.d"
  "/root/repo/src/pim/sot_mram.cpp" "src/pim/CMakeFiles/pim_pim.dir/sot_mram.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/sot_mram.cpp.o.d"
  "/root/repo/src/pim/subarray.cpp" "src/pim/CMakeFiles/pim_pim.dir/subarray.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/subarray.cpp.o.d"
  "/root/repo/src/pim/timing_energy.cpp" "src/pim/CMakeFiles/pim_pim.dir/timing_energy.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/timing_energy.cpp.o.d"
  "/root/repo/src/pim/trace.cpp" "src/pim/CMakeFiles/pim_pim.dir/trace.cpp.o" "gcc" "src/pim/CMakeFiles/pim_pim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/pim_index.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/pim_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
