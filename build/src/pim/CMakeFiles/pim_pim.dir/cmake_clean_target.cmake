file(REMOVE_RECURSE
  "libpim_pim.a"
)
