file(REMOVE_RECURSE
  "CMakeFiles/pim_pim.dir/controller.cpp.o"
  "CMakeFiles/pim_pim.dir/controller.cpp.o.d"
  "CMakeFiles/pim_pim.dir/endurance.cpp.o"
  "CMakeFiles/pim_pim.dir/endurance.cpp.o.d"
  "CMakeFiles/pim_pim.dir/interconnect.cpp.o"
  "CMakeFiles/pim_pim.dir/interconnect.cpp.o.d"
  "CMakeFiles/pim_pim.dir/mapping.cpp.o"
  "CMakeFiles/pim_pim.dir/mapping.cpp.o.d"
  "CMakeFiles/pim_pim.dir/pipeline.cpp.o"
  "CMakeFiles/pim_pim.dir/pipeline.cpp.o.d"
  "CMakeFiles/pim_pim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/pim_pim.dir/pipeline_sim.cpp.o.d"
  "CMakeFiles/pim_pim.dir/platform.cpp.o"
  "CMakeFiles/pim_pim.dir/platform.cpp.o.d"
  "CMakeFiles/pim_pim.dir/sense_amp.cpp.o"
  "CMakeFiles/pim_pim.dir/sense_amp.cpp.o.d"
  "CMakeFiles/pim_pim.dir/sot_mram.cpp.o"
  "CMakeFiles/pim_pim.dir/sot_mram.cpp.o.d"
  "CMakeFiles/pim_pim.dir/subarray.cpp.o"
  "CMakeFiles/pim_pim.dir/subarray.cpp.o.d"
  "CMakeFiles/pim_pim.dir/timing_energy.cpp.o"
  "CMakeFiles/pim_pim.dir/timing_energy.cpp.o.d"
  "CMakeFiles/pim_pim.dir/trace.cpp.o"
  "CMakeFiles/pim_pim.dir/trace.cpp.o.d"
  "libpim_pim.a"
  "libpim_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
