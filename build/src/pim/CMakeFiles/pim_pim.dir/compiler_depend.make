# Empty compiler generated dependencies file for pim_pim.
# This may be replaced when dependencies are built.
