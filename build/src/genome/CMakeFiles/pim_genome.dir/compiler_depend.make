# Empty compiler generated dependencies file for pim_genome.
# This may be replaced when dependencies are built.
