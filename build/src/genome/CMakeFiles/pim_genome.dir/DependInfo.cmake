
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genome/alphabet.cpp" "src/genome/CMakeFiles/pim_genome.dir/alphabet.cpp.o" "gcc" "src/genome/CMakeFiles/pim_genome.dir/alphabet.cpp.o.d"
  "/root/repo/src/genome/fasta.cpp" "src/genome/CMakeFiles/pim_genome.dir/fasta.cpp.o" "gcc" "src/genome/CMakeFiles/pim_genome.dir/fasta.cpp.o.d"
  "/root/repo/src/genome/fastq.cpp" "src/genome/CMakeFiles/pim_genome.dir/fastq.cpp.o" "gcc" "src/genome/CMakeFiles/pim_genome.dir/fastq.cpp.o.d"
  "/root/repo/src/genome/multi_reference.cpp" "src/genome/CMakeFiles/pim_genome.dir/multi_reference.cpp.o" "gcc" "src/genome/CMakeFiles/pim_genome.dir/multi_reference.cpp.o.d"
  "/root/repo/src/genome/packed_sequence.cpp" "src/genome/CMakeFiles/pim_genome.dir/packed_sequence.cpp.o" "gcc" "src/genome/CMakeFiles/pim_genome.dir/packed_sequence.cpp.o.d"
  "/root/repo/src/genome/synthetic_genome.cpp" "src/genome/CMakeFiles/pim_genome.dir/synthetic_genome.cpp.o" "gcc" "src/genome/CMakeFiles/pim_genome.dir/synthetic_genome.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
