file(REMOVE_RECURSE
  "CMakeFiles/pim_genome.dir/alphabet.cpp.o"
  "CMakeFiles/pim_genome.dir/alphabet.cpp.o.d"
  "CMakeFiles/pim_genome.dir/fasta.cpp.o"
  "CMakeFiles/pim_genome.dir/fasta.cpp.o.d"
  "CMakeFiles/pim_genome.dir/fastq.cpp.o"
  "CMakeFiles/pim_genome.dir/fastq.cpp.o.d"
  "CMakeFiles/pim_genome.dir/multi_reference.cpp.o"
  "CMakeFiles/pim_genome.dir/multi_reference.cpp.o.d"
  "CMakeFiles/pim_genome.dir/packed_sequence.cpp.o"
  "CMakeFiles/pim_genome.dir/packed_sequence.cpp.o.d"
  "CMakeFiles/pim_genome.dir/synthetic_genome.cpp.o"
  "CMakeFiles/pim_genome.dir/synthetic_genome.cpp.o.d"
  "libpim_genome.a"
  "libpim_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
