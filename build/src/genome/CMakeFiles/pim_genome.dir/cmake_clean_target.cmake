file(REMOVE_RECURSE
  "libpim_genome.a"
)
