
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/aligner.cpp" "src/align/CMakeFiles/pim_align.dir/aligner.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/aligner.cpp.o.d"
  "/root/repo/src/align/backward_search.cpp" "src/align/CMakeFiles/pim_align.dir/backward_search.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/backward_search.cpp.o.d"
  "/root/repo/src/align/bi_index.cpp" "src/align/CMakeFiles/pim_align.dir/bi_index.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/bi_index.cpp.o.d"
  "/root/repo/src/align/global_align.cpp" "src/align/CMakeFiles/pim_align.dir/global_align.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/global_align.cpp.o.d"
  "/root/repo/src/align/inexact_search.cpp" "src/align/CMakeFiles/pim_align.dir/inexact_search.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/inexact_search.cpp.o.d"
  "/root/repo/src/align/kmer_index.cpp" "src/align/CMakeFiles/pim_align.dir/kmer_index.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/kmer_index.cpp.o.d"
  "/root/repo/src/align/multi_aligner.cpp" "src/align/CMakeFiles/pim_align.dir/multi_aligner.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/multi_aligner.cpp.o.d"
  "/root/repo/src/align/naive_search.cpp" "src/align/CMakeFiles/pim_align.dir/naive_search.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/naive_search.cpp.o.d"
  "/root/repo/src/align/paired.cpp" "src/align/CMakeFiles/pim_align.dir/paired.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/paired.cpp.o.d"
  "/root/repo/src/align/parallel_aligner.cpp" "src/align/CMakeFiles/pim_align.dir/parallel_aligner.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/parallel_aligner.cpp.o.d"
  "/root/repo/src/align/sam_writer.cpp" "src/align/CMakeFiles/pim_align.dir/sam_writer.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/sam_writer.cpp.o.d"
  "/root/repo/src/align/seed_extend.cpp" "src/align/CMakeFiles/pim_align.dir/seed_extend.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/seed_extend.cpp.o.d"
  "/root/repo/src/align/smith_waterman.cpp" "src/align/CMakeFiles/pim_align.dir/smith_waterman.cpp.o" "gcc" "src/align/CMakeFiles/pim_align.dir/smith_waterman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/pim_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/pim_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
