file(REMOVE_RECURSE
  "libpim_align.a"
)
