file(REMOVE_RECURSE
  "CMakeFiles/pim_align.dir/aligner.cpp.o"
  "CMakeFiles/pim_align.dir/aligner.cpp.o.d"
  "CMakeFiles/pim_align.dir/backward_search.cpp.o"
  "CMakeFiles/pim_align.dir/backward_search.cpp.o.d"
  "CMakeFiles/pim_align.dir/bi_index.cpp.o"
  "CMakeFiles/pim_align.dir/bi_index.cpp.o.d"
  "CMakeFiles/pim_align.dir/global_align.cpp.o"
  "CMakeFiles/pim_align.dir/global_align.cpp.o.d"
  "CMakeFiles/pim_align.dir/inexact_search.cpp.o"
  "CMakeFiles/pim_align.dir/inexact_search.cpp.o.d"
  "CMakeFiles/pim_align.dir/kmer_index.cpp.o"
  "CMakeFiles/pim_align.dir/kmer_index.cpp.o.d"
  "CMakeFiles/pim_align.dir/multi_aligner.cpp.o"
  "CMakeFiles/pim_align.dir/multi_aligner.cpp.o.d"
  "CMakeFiles/pim_align.dir/naive_search.cpp.o"
  "CMakeFiles/pim_align.dir/naive_search.cpp.o.d"
  "CMakeFiles/pim_align.dir/paired.cpp.o"
  "CMakeFiles/pim_align.dir/paired.cpp.o.d"
  "CMakeFiles/pim_align.dir/parallel_aligner.cpp.o"
  "CMakeFiles/pim_align.dir/parallel_aligner.cpp.o.d"
  "CMakeFiles/pim_align.dir/sam_writer.cpp.o"
  "CMakeFiles/pim_align.dir/sam_writer.cpp.o.d"
  "CMakeFiles/pim_align.dir/seed_extend.cpp.o"
  "CMakeFiles/pim_align.dir/seed_extend.cpp.o.d"
  "CMakeFiles/pim_align.dir/smith_waterman.cpp.o"
  "CMakeFiles/pim_align.dir/smith_waterman.cpp.o.d"
  "libpim_align.a"
  "libpim_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
