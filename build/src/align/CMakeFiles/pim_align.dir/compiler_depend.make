# Empty compiler generated dependencies file for pim_align.
# This may be replaced when dependencies are built.
