# Empty compiler generated dependencies file for pim_varcall.
# This may be replaced when dependencies are built.
