
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/varcall/pileup.cpp" "src/varcall/CMakeFiles/pim_varcall.dir/pileup.cpp.o" "gcc" "src/varcall/CMakeFiles/pim_varcall.dir/pileup.cpp.o.d"
  "/root/repo/src/varcall/sam_reader.cpp" "src/varcall/CMakeFiles/pim_varcall.dir/sam_reader.cpp.o" "gcc" "src/varcall/CMakeFiles/pim_varcall.dir/sam_reader.cpp.o.d"
  "/root/repo/src/varcall/snv_caller.cpp" "src/varcall/CMakeFiles/pim_varcall.dir/snv_caller.cpp.o" "gcc" "src/varcall/CMakeFiles/pim_varcall.dir/snv_caller.cpp.o.d"
  "/root/repo/src/varcall/vcf_writer.cpp" "src/varcall/CMakeFiles/pim_varcall.dir/vcf_writer.cpp.o" "gcc" "src/varcall/CMakeFiles/pim_varcall.dir/vcf_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/align/CMakeFiles/pim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/pim_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/pim_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
