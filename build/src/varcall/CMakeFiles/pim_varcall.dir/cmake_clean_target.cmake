file(REMOVE_RECURSE
  "libpim_varcall.a"
)
