file(REMOVE_RECURSE
  "CMakeFiles/pim_varcall.dir/pileup.cpp.o"
  "CMakeFiles/pim_varcall.dir/pileup.cpp.o.d"
  "CMakeFiles/pim_varcall.dir/sam_reader.cpp.o"
  "CMakeFiles/pim_varcall.dir/sam_reader.cpp.o.d"
  "CMakeFiles/pim_varcall.dir/snv_caller.cpp.o"
  "CMakeFiles/pim_varcall.dir/snv_caller.cpp.o.d"
  "CMakeFiles/pim_varcall.dir/vcf_writer.cpp.o"
  "CMakeFiles/pim_varcall.dir/vcf_writer.cpp.o.d"
  "libpim_varcall.a"
  "libpim_varcall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_varcall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
