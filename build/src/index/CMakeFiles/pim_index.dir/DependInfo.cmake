
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/bwt.cpp" "src/index/CMakeFiles/pim_index.dir/bwt.cpp.o" "gcc" "src/index/CMakeFiles/pim_index.dir/bwt.cpp.o.d"
  "/root/repo/src/index/fm_index.cpp" "src/index/CMakeFiles/pim_index.dir/fm_index.cpp.o" "gcc" "src/index/CMakeFiles/pim_index.dir/fm_index.cpp.o.d"
  "/root/repo/src/index/index_io.cpp" "src/index/CMakeFiles/pim_index.dir/index_io.cpp.o" "gcc" "src/index/CMakeFiles/pim_index.dir/index_io.cpp.o.d"
  "/root/repo/src/index/marker_table.cpp" "src/index/CMakeFiles/pim_index.dir/marker_table.cpp.o" "gcc" "src/index/CMakeFiles/pim_index.dir/marker_table.cpp.o.d"
  "/root/repo/src/index/occ_table.cpp" "src/index/CMakeFiles/pim_index.dir/occ_table.cpp.o" "gcc" "src/index/CMakeFiles/pim_index.dir/occ_table.cpp.o.d"
  "/root/repo/src/index/sampled_sa.cpp" "src/index/CMakeFiles/pim_index.dir/sampled_sa.cpp.o" "gcc" "src/index/CMakeFiles/pim_index.dir/sampled_sa.cpp.o.d"
  "/root/repo/src/index/suffix_array.cpp" "src/index/CMakeFiles/pim_index.dir/suffix_array.cpp.o" "gcc" "src/index/CMakeFiles/pim_index.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genome/CMakeFiles/pim_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
