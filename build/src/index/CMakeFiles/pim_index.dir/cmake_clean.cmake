file(REMOVE_RECURSE
  "CMakeFiles/pim_index.dir/bwt.cpp.o"
  "CMakeFiles/pim_index.dir/bwt.cpp.o.d"
  "CMakeFiles/pim_index.dir/fm_index.cpp.o"
  "CMakeFiles/pim_index.dir/fm_index.cpp.o.d"
  "CMakeFiles/pim_index.dir/index_io.cpp.o"
  "CMakeFiles/pim_index.dir/index_io.cpp.o.d"
  "CMakeFiles/pim_index.dir/marker_table.cpp.o"
  "CMakeFiles/pim_index.dir/marker_table.cpp.o.d"
  "CMakeFiles/pim_index.dir/occ_table.cpp.o"
  "CMakeFiles/pim_index.dir/occ_table.cpp.o.d"
  "CMakeFiles/pim_index.dir/sampled_sa.cpp.o"
  "CMakeFiles/pim_index.dir/sampled_sa.cpp.o.d"
  "CMakeFiles/pim_index.dir/suffix_array.cpp.o"
  "CMakeFiles/pim_index.dir/suffix_array.cpp.o.d"
  "libpim_index.a"
  "libpim_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
