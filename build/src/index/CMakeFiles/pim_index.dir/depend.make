# Empty dependencies file for pim_index.
# This may be replaced when dependencies are built.
