file(REMOVE_RECURSE
  "libpim_index.a"
)
