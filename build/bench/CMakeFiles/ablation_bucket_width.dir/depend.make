# Empty dependencies file for ablation_bucket_width.
# This may be replaced when dependencies are built.
