file(REMOVE_RECURSE
  "CMakeFiles/ablation_bucket_width.dir/ablation_bucket_width.cpp.o"
  "CMakeFiles/ablation_bucket_width.dir/ablation_bucket_width.cpp.o.d"
  "ablation_bucket_width"
  "ablation_bucket_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bucket_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
