# Empty dependencies file for alignment_pipeline.
# This may be replaced when dependencies are built.
