file(REMOVE_RECURSE
  "CMakeFiles/alignment_pipeline.dir/alignment_pipeline.cpp.o"
  "CMakeFiles/alignment_pipeline.dir/alignment_pipeline.cpp.o.d"
  "alignment_pipeline"
  "alignment_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alignment_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
