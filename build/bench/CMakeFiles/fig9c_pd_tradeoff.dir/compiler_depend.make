# Empty compiler generated dependencies file for fig9c_pd_tradeoff.
# This may be replaced when dependencies are built.
