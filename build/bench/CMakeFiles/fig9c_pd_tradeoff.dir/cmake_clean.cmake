file(REMOVE_RECURSE
  "CMakeFiles/fig9c_pd_tradeoff.dir/fig9c_pd_tradeoff.cpp.o"
  "CMakeFiles/fig9c_pd_tradeoff.dir/fig9c_pd_tradeoff.cpp.o.d"
  "fig9c_pd_tradeoff"
  "fig9c_pd_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9c_pd_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
