# Empty dependencies file for chip_load_sweep.
# This may be replaced when dependencies are built.
