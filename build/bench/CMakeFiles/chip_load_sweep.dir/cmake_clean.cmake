file(REMOVE_RECURSE
  "CMakeFiles/chip_load_sweep.dir/chip_load_sweep.cpp.o"
  "CMakeFiles/chip_load_sweep.dir/chip_load_sweep.cpp.o.d"
  "chip_load_sweep"
  "chip_load_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_load_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
