file(REMOVE_RECURSE
  "CMakeFiles/area_overhead.dir/area_overhead.cpp.o"
  "CMakeFiles/area_overhead.dir/area_overhead.cpp.o.d"
  "area_overhead"
  "area_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
