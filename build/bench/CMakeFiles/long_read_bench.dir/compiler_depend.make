# Empty compiler generated dependencies file for long_read_bench.
# This may be replaced when dependencies are built.
