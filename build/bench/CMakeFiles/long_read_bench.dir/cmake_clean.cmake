file(REMOVE_RECURSE
  "CMakeFiles/long_read_bench.dir/long_read_bench.cpp.o"
  "CMakeFiles/long_read_bench.dir/long_read_bench.cpp.o.d"
  "long_read_bench"
  "long_read_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_read_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
