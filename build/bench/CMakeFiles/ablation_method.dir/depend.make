# Empty dependencies file for ablation_method.
# This may be replaced when dependencies are built.
