file(REMOVE_RECURSE
  "CMakeFiles/ablation_method.dir/ablation_method.cpp.o"
  "CMakeFiles/ablation_method.dir/ablation_method.cpp.o.d"
  "ablation_method"
  "ablation_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
