# Empty dependencies file for fig5b_sense_margin.
# This may be replaced when dependencies are built.
