file(REMOVE_RECURSE
  "CMakeFiles/fig5b_sense_margin.dir/fig5b_sense_margin.cpp.o"
  "CMakeFiles/fig5b_sense_margin.dir/fig5b_sense_margin.cpp.o.d"
  "fig5b_sense_margin"
  "fig5b_sense_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_sense_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
