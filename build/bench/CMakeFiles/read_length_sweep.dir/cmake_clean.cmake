file(REMOVE_RECURSE
  "CMakeFiles/read_length_sweep.dir/read_length_sweep.cpp.o"
  "CMakeFiles/read_length_sweep.dir/read_length_sweep.cpp.o.d"
  "read_length_sweep"
  "read_length_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_length_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
