file(REMOVE_RECURSE
  "CMakeFiles/error_rate_sweep.dir/error_rate_sweep.cpp.o"
  "CMakeFiles/error_rate_sweep.dir/error_rate_sweep.cpp.o.d"
  "error_rate_sweep"
  "error_rate_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_rate_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
