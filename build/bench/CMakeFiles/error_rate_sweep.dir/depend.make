# Empty dependencies file for error_rate_sweep.
# This may be replaced when dependencies are built.
