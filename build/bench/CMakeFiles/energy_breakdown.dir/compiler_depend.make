# Empty compiler generated dependencies file for energy_breakdown.
# This may be replaced when dependencies are built.
