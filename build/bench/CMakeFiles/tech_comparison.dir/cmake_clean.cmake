file(REMOVE_RECURSE
  "CMakeFiles/tech_comparison.dir/tech_comparison.cpp.o"
  "CMakeFiles/tech_comparison.dir/tech_comparison.cpp.o.d"
  "tech_comparison"
  "tech_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
