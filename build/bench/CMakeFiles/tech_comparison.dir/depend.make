# Empty dependencies file for tech_comparison.
# This may be replaced when dependencies are built.
