file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipeline_sim.dir/ablation_pipeline_sim.cpp.o"
  "CMakeFiles/ablation_pipeline_sim.dir/ablation_pipeline_sim.cpp.o.d"
  "ablation_pipeline_sim"
  "ablation_pipeline_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
