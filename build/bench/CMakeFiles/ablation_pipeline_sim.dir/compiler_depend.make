# Empty compiler generated dependencies file for ablation_pipeline_sim.
# This may be replaced when dependencies are built.
