# Empty dependencies file for seeding_comparison.
# This may be replaced when dependencies are built.
