file(REMOVE_RECURSE
  "CMakeFiles/micro_pim_ops.dir/micro_pim_ops.cpp.o"
  "CMakeFiles/micro_pim_ops.dir/micro_pim_ops.cpp.o.d"
  "micro_pim_ops"
  "micro_pim_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pim_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
