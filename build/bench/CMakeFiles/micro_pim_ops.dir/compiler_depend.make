# Empty compiler generated dependencies file for micro_pim_ops.
# This may be replaced when dependencies are built.
