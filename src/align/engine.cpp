#include "src/align/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "src/align/backward_search.h"
#include "src/align/inexact_search.h"

namespace pim::align {

void EngineStats::merge(const EngineStats& other) {
  reads_total += other.reads_total;
  reads_exact += other.reads_exact;
  reads_inexact += other.reads_inexact;
  reads_unaligned += other.reads_unaligned;
  hits_total += other.hits_total;
  exact_searches += other.exact_searches;
  inexact_searches += other.inexact_searches;
  batches += other.batches;
  wall_ms += other.wall_ms;
  result_bytes += other.result_bytes;
  chunks += other.chunks;
  stall_ms += other.stall_ms;
}

AlignerStats EngineStats::to_aligner_stats() const {
  AlignerStats s;
  s.reads_total = reads_total;
  s.reads_exact = reads_exact;
  s.reads_inexact = reads_inexact;
  s.reads_unaligned = reads_unaligned;
  return s;
}

void BatchResult::clear() {
  stages_.clear();
  hit_begin_.assign(1, 0);
  hits_.clear();
  stats_ = EngineStats{};
}

void BatchResult::reserve(std::size_t reads, std::size_t expected_hits) {
  stages_.reserve(reads);
  hit_begin_.reserve(reads + 1);
  hits_.reserve(expected_hits);
}

namespace {

bool better_hit(const AlignmentHit& a, const AlignmentHit& b) {
  if (a.diffs != b.diffs) return a.diffs < b.diffs;
  return a.position < b.position;
}

}  // namespace

void BatchResult::add_read(AlignmentStage stage,
                           std::span<const AlignmentHit> hits) {
  stages_.push_back(stage);
  std::size_t kept = hits.size();
  if (best_hit_only_ && hits.size() > 1) {
    hits_.push_back(*std::min_element(hits.begin(), hits.end(), better_hit));
    kept = 1;
  } else {
    hits_.insert(hits_.end(), hits.begin(), hits.end());
  }
  hit_begin_.push_back(hits_.size());
  ++stats_.reads_total;
  switch (stage) {
    case AlignmentStage::kExact: ++stats_.reads_exact; break;
    case AlignmentStage::kInexact: ++stats_.reads_inexact; break;
    case AlignmentStage::kUnaligned: ++stats_.reads_unaligned; break;
  }
  stats_.hits_total += kept;
}

void BatchResult::append(const BatchResult& chunk) {
  const std::uint64_t base = hits_.size();
  stages_.insert(stages_.end(), chunk.stages_.begin(), chunk.stages_.end());
  hits_.insert(hits_.end(), chunk.hits_.begin(), chunk.hits_.end());
  for (std::size_t i = 1; i < chunk.hit_begin_.size(); ++i) {
    hit_begin_.push_back(base + chunk.hit_begin_[i]);
  }
  stats_.merge(chunk.stats_);
}

std::optional<AlignmentHit> BatchResult::best(std::size_t i) const {
  const auto h = hits(i);
  if (h.empty()) return std::nullopt;
  return *std::min_element(h.begin(), h.end(), better_hit);
}

AlignmentResult BatchResult::result(std::size_t i) const {
  AlignmentResult r;
  r.stage = stages_[i];
  const auto h = hits(i);
  r.hits.assign(h.begin(), h.end());
  return r;
}

std::vector<AlignmentResult> BatchResult::to_results() const {
  std::vector<AlignmentResult> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(result(i));
  return out;
}

std::size_t BatchResult::memory_bytes() const {
  return stages_.capacity() * sizeof(AlignmentStage) +
         hit_begin_.capacity() * sizeof(std::uint64_t) +
         hits_.capacity() * sizeof(AlignmentHit);
}

void AlignmentEngine::align_batch(const ReadBatch& batch,
                                  BatchResult& out) const {
  const auto t0 = std::chrono::steady_clock::now();
  out.clear();
  // Most short reads place with one or two hits; reserving 2/read keeps the
  // hits arena to a couple of growth steps on skewed batches.
  out.reserve(batch.size(), batch.size() * 2);
  align_range(batch, 0, batch.size(), out);
  const auto t1 = std::chrono::steady_clock::now();
  out.stats().batches = 1;
  out.stats().wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.stats().result_bytes = out.memory_bytes();
}

EngineStats AlignmentEngine::align_batch_chunked(const ReadBatch& batch,
                                                 std::size_t chunk_size,
                                                 const ChunkSink& sink,
                                                 bool best_hit_only) const {
  const auto t0 = std::chrono::steady_clock::now();
  if (chunk_size == 0) {
    chunk_size = std::max<std::size_t>(
        1, std::min<std::size_t>(batch.size(), 1024));
  }
  EngineStats total;
  // One chunk result recycled across iterations: clear() keeps the arena
  // capacity, so a steady-state pass allocates nothing per chunk.
  BatchResult chunk;
  chunk.set_best_hit_only(best_hit_only);
  for (std::size_t begin = 0; begin < batch.size(); begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, batch.size());
    chunk.clear();
    chunk.reserve(end - begin, (end - begin) * 2);
    align_range(batch, begin, end, chunk);
    sink(BatchResultChunk{&batch, begin, end, &chunk, begin});
    total.merge(chunk.stats());
    ++total.chunks;
  }
  const auto t1 = std::chrono::steady_clock::now();
  total.batches = 1;
  total.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return total;
}

namespace detail {

namespace {

void collect_exact_hits(const index::FmIndex& index,
                        const AlignerOptions& options,
                        const std::vector<genome::Base>& oriented,
                        Strand strand, TwoStageScratch& scratch) {
  const ExactResult result = exact_search(index, oriented);
  if (!result.found()) return;
  index.locate_all_into(result.interval, scratch.positions);
  for (const auto pos : scratch.positions) {
    scratch.hits.push_back(AlignmentHit{pos, 0, strand});
    if (options.max_hits != 0 && scratch.hits.size() >= options.max_hits) {
      return;
    }
  }
}

void collect_inexact_hits(const index::FmIndex& index,
                          const AlignerOptions& options,
                          const std::vector<genome::Base>& oriented,
                          Strand strand, std::vector<AlignmentHit>& hits) {
  for (const auto& [pos, diffs] :
       inexact_locate(index, oriented, options.inexact)) {
    hits.push_back(AlignmentHit{pos, diffs, strand});
    if (options.max_hits != 0 && hits.size() >= options.max_hits) return;
  }
}

}  // namespace

AlignmentStage align_two_stage(const index::FmIndex& index,
                               const AlignerOptions& options,
                               const std::vector<genome::Base>& read,
                               TwoStageScratch& scratch, EngineStats* stats) {
  auto& hits = scratch.hits;
  hits.clear();
  AlignmentStage stage = AlignmentStage::kUnaligned;
  bool rc_ready = false;

  // Stage one: exact alignment, both strands.
  collect_exact_hits(index, options, read, Strand::kForward, scratch);
  if (stats != nullptr) ++stats->exact_searches;
  if (options.try_reverse_complement &&
      (options.max_hits == 0 || hits.size() < options.max_hits)) {
    genome::reverse_complement_into(read, scratch.rc);
    rc_ready = true;
    collect_exact_hits(index, options, scratch.rc,
                       Strand::kReverseComplement, scratch);
    if (stats != nullptr) ++stats->exact_searches;
  }
  if (!hits.empty()) {
    stage = AlignmentStage::kExact;
  } else if (options.inexact.max_diffs > 0) {
    // Stage two: inexact alignment with the configured difference budget.
    collect_inexact_hits(index, options, read, Strand::kForward, hits);
    if (stats != nullptr) ++stats->inexact_searches;
    if (options.try_reverse_complement &&
        (options.max_hits == 0 || hits.size() < options.max_hits)) {
      if (!rc_ready) genome::reverse_complement_into(read, scratch.rc);
      collect_inexact_hits(index, options, scratch.rc,
                           Strand::kReverseComplement, hits);
      if (stats != nullptr) ++stats->inexact_searches;
    }
    if (!hits.empty()) stage = AlignmentStage::kInexact;
  }

  std::sort(hits.begin(), hits.end(),
            [](const AlignmentHit& a, const AlignmentHit& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.diffs < b.diffs;
            });
  return stage;
}

}  // namespace detail

void SoftwareEngine::align_range(const ReadBatch& batch, std::size_t begin,
                                 std::size_t end, BatchResult& out) const {
  if (options_.best_hit_only) out.set_best_hit_only(true);
  detail::TwoStageScratch scratch;
  for (std::size_t i = begin; i < end; ++i) {
    batch.read(i).unpack_into(scratch.read);
    const AlignmentStage stage = detail::align_two_stage(
        *index_, options_, scratch.read, scratch, &out.stats());
    out.add_read(stage, scratch.hits);
  }
}

SeedExtendEngine::SeedExtendEngine(const index::FmIndex& index,
                                   const genome::PackedSequence& reference,
                                   SeedExtendOptions options)
    : index_(&index), reference_(&reference), options_(options) {
  if (index.reference_size() != reference.size()) {
    throw std::invalid_argument("SeedExtendEngine: index/reference mismatch");
  }
}

void SeedExtendEngine::align_range(const ReadBatch& batch, std::size_t begin,
                                   std::size_t end, BatchResult& out) const {
  detail::TwoStageScratch scratch;
  for (std::size_t i = begin; i < end; ++i) {
    batch.read(i).unpack_into(scratch.read);
    scratch.hits.clear();

    SeedExtendResult se =
        seed_extend_align(*index_, *reference_, scratch.read, options_);
    Strand strand = Strand::kForward;
    ++out.stats().inexact_searches;
    if (!se.found()) {
      genome::reverse_complement_into(scratch.read, scratch.rc);
      se = seed_extend_align(*index_, *reference_, scratch.rc, options_);
      strand = Strand::kReverseComplement;
      ++out.stats().inexact_searches;
    }

    for (const auto& hit : se.hits) {
      scratch.hits.push_back(AlignmentHit{hit.ref_begin, 0, strand});
    }
    std::sort(scratch.hits.begin(), scratch.hits.end(),
              [](const AlignmentHit& a, const AlignmentHit& b) {
                return a.position < b.position;
              });
    out.add_read(se.found() ? AlignmentStage::kInexact
                            : AlignmentStage::kUnaligned,
                 scratch.hits);
  }
}

}  // namespace pim::align
