#include "src/align/sharded_engine.h"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

namespace pim::align {

namespace {

void validate(const std::vector<const AlignmentEngine*>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("ShardedEngine: no shard engines");
  }
  for (const auto* engine : shards) {
    if (engine == nullptr) {
      throw std::invalid_argument("ShardedEngine: null shard engine");
    }
  }
}

}  // namespace

ShardedEngine::ShardedEngine(
    std::vector<std::unique_ptr<AlignmentEngine>> shards,
    ShardedOptions options)
    : owned_(std::move(shards)), options_(options) {
  shards_.reserve(owned_.size());
  for (const auto& engine : owned_) shards_.push_back(engine.get());
  validate(shards_);
}

ShardedEngine::ShardedEngine(std::vector<const AlignmentEngine*> shards,
                             ShardedOptions options)
    : shards_(std::move(shards)), options_(options) {
  validate(shards_);
}

std::pair<std::size_t, std::size_t> ShardedEngine::shard_range(
    std::size_t reads, std::size_t num_shards, std::size_t s) {
  // Balanced contiguous split: the first (reads % num_shards) shards take
  // one extra read, so shard sizes differ by at most one.
  const std::size_t base = reads / num_shards;
  const std::size_t extra = reads % num_shards;
  const std::size_t begin = s * base + std::min(s, extra);
  const std::size_t end = begin + base + (s < extra ? 1 : 0);
  return {begin, end};
}

void ShardedEngine::align_range(const ReadBatch& batch, std::size_t begin,
                                std::size_t end, BatchResult& out) const {
  using Clock = std::chrono::steady_clock;
  const std::size_t reads = end - begin;
  const std::size_t num = shards_.size();

  std::vector<BatchResult> chunks(num);
  shard_stats_.assign(num, ShardStats{});
  std::vector<std::exception_ptr> errors(num);

  auto run_shard = [&](std::size_t s) {
    const auto [lo, hi] = shard_range(reads, num, s);
    const auto t0 = Clock::now();
    if (hi > lo) {
      chunks[s].reserve(hi - lo, (hi - lo) * 2);
      shards_[s]->align_range(batch, begin + lo, begin + hi, chunks[s]);
    }
    const auto t1 = Clock::now();
    ShardStats& stats = shard_stats_[s];
    stats.shard = s;
    stats.reads = chunks[s].stats().reads_total;
    stats.hits = chunks[s].stats().hits_total;
    stats.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats.stats = chunks[s].stats();
    stats.stats.wall_ms = stats.wall_ms;
  };

  if (options_.parallel && num > 1 && reads > 1) {
    std::vector<std::thread> threads;
    threads.reserve(num);
    for (std::size_t s = 0; s < num; ++s) {
      threads.emplace_back([&, s]() {
        try {
          run_shard(s);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  } else {
    for (std::size_t s = 0; s < num; ++s) run_shard(s);
  }

  // Stitch in shard order == read order; BatchResult::append merges the
  // per-shard EngineStats associatively, so the combined counters equal an
  // unsharded run over the same range.
  for (const auto& chunk : chunks) out.append(chunk);
}

}  // namespace pim::align
