#include "src/align/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace pim::align {

namespace {

void validate(const std::vector<const AlignmentEngine*>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("ShardedEngine: no shard engines");
  }
  for (const auto* engine : shards) {
    if (engine == nullptr) {
      throw std::invalid_argument("ShardedEngine: null shard engine");
    }
  }
}

}  // namespace

ShardedEngine::ShardedEngine(
    std::vector<std::unique_ptr<AlignmentEngine>> shards,
    ShardedOptions options)
    : owned_(std::move(shards)), options_(options) {
  shards_.reserve(owned_.size());
  for (const auto& engine : owned_) shards_.push_back(engine.get());
  validate(shards_);
  weights_.assign(shards_.size(), 1.0 / static_cast<double>(shards_.size()));
  init_metrics();
}

ShardedEngine::ShardedEngine(std::vector<const AlignmentEngine*> shards,
                             ShardedOptions options)
    : shards_(std::move(shards)), options_(options) {
  validate(shards_);
  weights_.assign(shards_.size(), 1.0 / static_cast<double>(shards_.size()));
  init_metrics();
}

void ShardedEngine::init_metrics() {
  if (options_.metrics == nullptr) return;
  // Registration up front (construction is single-threaded); the per-run
  // publishes are lock-free counter adds and atomic gauge stores.
  series_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string prefix = "shard." + std::to_string(s) + ".";
    ShardSeries series;
    series.reads = options_.metrics->counter(prefix + "reads");
    series.hits = options_.metrics->counter(prefix + "hits");
    series.wall_ms = options_.metrics->gauge(prefix + "wall_ms");
    series.reads_per_ms = options_.metrics->gauge(prefix + "reads_per_ms");
    series.weight = options_.metrics->gauge(prefix + "weight");
    series_.push_back(series);
  }
  publish_weights();
}

void ShardedEngine::publish_weights() const {
  for (std::size_t s = 0; s < series_.size(); ++s) {
    series_[s].weight.set(weights_[s]);
  }
}

std::pair<std::size_t, std::size_t> ShardedEngine::shard_range(
    std::size_t reads, std::size_t num_shards, std::size_t s) {
  // Balanced contiguous split: the first (reads % num_shards) shards take
  // one extra read, so shard sizes differ by at most one.
  const std::size_t base = reads / num_shards;
  const std::size_t extra = reads % num_shards;
  const std::size_t begin = s * base + std::min(s, extra);
  const std::size_t end = begin + base + (s < extra ? 1 : 0);
  return {begin, end};
}

void ShardedEngine::set_shard_weights(std::vector<double> weights) {
  if (weights.size() != shards_.size()) {
    throw std::invalid_argument("ShardedEngine: weight count != shard count");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("ShardedEngine: weights must be positive");
    }
    total += w;
  }
  for (double& w : weights) w /= total;
  weights_ = std::move(weights);
  publish_weights();
}

std::vector<std::size_t> ShardedEngine::partition(std::size_t reads) const {
  const std::size_t num = shards_.size();
  std::vector<std::size_t> bounds(num + 1, 0);
  double total = 0.0;
  for (const double w : weights_) total += w;
  double cum = 0.0;
  for (std::size_t s = 0; s + 1 < num; ++s) {
    cum += weights_[s];
    const auto b = static_cast<std::size_t>(
        std::llround(static_cast<double>(reads) * (cum / total)));
    bounds[s + 1] = std::clamp(b, bounds[s], reads);
  }
  bounds[num] = reads;
  return bounds;
}

void ShardedEngine::update_weights() const {
  const std::size_t num = shards_.size();
  // Target weight ∝ measured throughput (reads/ms). Shards without a usable
  // measurement (no reads routed, or wall below timer resolution) get the
  // mean measured throughput so they neither starve nor balloon.
  std::vector<double> tput(num, 0.0);
  double sum = 0.0;
  std::size_t measured = 0;
  if (!series_.empty()) {
    // S40: the rebalance math reads the published "shard.<i>.reads_per_ms"
    // series back from the registry — the registry is the one data path
    // for measured load, not a side channel next to it. run_shards wrote
    // these gauges from exactly the tallies shard_stats_ carries, so the
    // two sources are equal by construction.
    for (std::size_t s = 0; s < num; ++s) {
      const double t = series_[s].reads_per_ms.value();
      if (t > 0.0) {
        tput[s] = t;
        sum += t;
        ++measured;
      }
    }
  } else {
    for (const auto& s : shard_stats_) {
      if (s.shard < num && s.reads > 0 && s.wall_ms > 1e-6) {
        tput[s.shard] = static_cast<double>(s.reads) / s.wall_ms;
        sum += tput[s.shard];
        ++measured;
      }
    }
  }
  if (measured == 0) return;
  const double mean = sum / static_cast<double>(measured);
  const double alpha = std::clamp(options_.rebalance_smoothing, 0.0, 1.0);
  const double target_total = sum + mean * static_cast<double>(num - measured);
  // A floor of 10% of a uniform share keeps a transiently slow shard from
  // being starved out of future measurements entirely.
  const double floor_w = 0.1 / static_cast<double>(num);
  double total = 0.0;
  for (std::size_t s = 0; s < num; ++s) {
    const double target = (tput[s] > 0.0 ? tput[s] : mean) / target_total;
    weights_[s] =
        std::max(floor_w, (1.0 - alpha) * weights_[s] + alpha * target);
    total += weights_[s];
  }
  for (double& w : weights_) w /= total;
  publish_weights();
}

double ShardedEngine::run_shards(
    const ReadBatch& batch, std::size_t begin,
    std::vector<std::size_t> const& bounds, std::vector<BatchResult>& chunks,
    const ChunkSink* sink) const {
  using Clock = std::chrono::steady_clock;
  const std::size_t num = shards_.size();
  const std::size_t reads = bounds.back();

  auto run_shard = [&](std::size_t s) {
    const std::size_t lo = bounds[s];
    const std::size_t hi = bounds[s + 1];
    const auto t0 = Clock::now();
    if (hi > lo) {
      chunks[s].reserve(hi - lo, (hi - lo) * 2);
      shards_[s]->align_range(batch, begin + lo, begin + hi, chunks[s]);
    }
    const auto t1 = Clock::now();
    ShardStats& stats = shard_stats_[s];
    stats.shard = s;
    stats.reads = chunks[s].stats().reads_total;
    stats.hits = chunks[s].stats().hits_total;
    stats.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats.stats = chunks[s].stats();
    stats.stats.wall_ms = stats.wall_ms;
    if (!series_.empty()) {
      // Each shard is driven by exactly one thread, so these publishes are
      // the single-writer fast path of the registry.
      const ShardSeries& series = series_[s];
      series.reads.add(stats.reads);
      series.hits.add(stats.hits);
      series.wall_ms.set(stats.wall_ms);
      series.reads_per_ms.set(stats.reads > 0 && stats.wall_ms > 1e-6
                                  ? static_cast<double>(stats.reads) /
                                        stats.wall_ms
                                  : 0.0);
    }
  };

  // Forward shard s to the sink once it and all predecessors are done:
  // shard order == read order, so delivery is globally in index order, and
  // freeing each forwarded chunk keeps resident results bounded by the
  // not-yet-forwarded shards instead of the whole batch.
  auto forward = [&](std::size_t s) {
    if (sink != nullptr && bounds[s + 1] > bounds[s]) {
      (*sink)(BatchResultChunk{&batch, bounds[s], bounds[s + 1], &chunks[s],
                               bounds[s]});
      chunks[s] = BatchResult();  // free the forwarded arena
    }
  };

  double wait_ms = 0.0;
  if (options_.parallel && num > 1 && reads > 1) {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<char> done(num, 0);
    std::vector<std::exception_ptr> errors(num);
    std::vector<std::thread> threads;
    threads.reserve(num);
    for (std::size_t s = 0; s < num; ++s) {
      threads.emplace_back([&, s]() {
        try {
          run_shard(s);
        } catch (...) {
          errors[s] = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lk(mu);
          done[s] = 1;
        }
        cv.notify_all();
      });
    }
    // The calling thread forwards completions in shard order while later
    // shards are still aligning. Time spent blocked on an unfinished
    // predecessor is the fan-out's stall: a straggler shard shows up here.
    std::exception_ptr forward_error;
    for (std::size_t s = 0; s < num; ++s) {
      {
        std::unique_lock<std::mutex> lk(mu);
        if (done[s] == 0) {
          const auto w0 = Clock::now();
          cv.wait(lk, [&] { return done[s] != 0; });
          wait_ms += std::chrono::duration<double, std::milli>(Clock::now() -
                                                               w0)
                         .count();
        }
      }
      if (errors[s]) break;  // join everything, then rethrow in shard order
      try {
        forward(s);
      } catch (...) {
        forward_error = std::current_exception();
        break;
      }
    }
    for (auto& t : threads) t.join();
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    if (forward_error) std::rethrow_exception(forward_error);
  } else {
    // Serial fan-out never blocks on a predecessor.
    for (std::size_t s = 0; s < num; ++s) {
      run_shard(s);
      forward(s);
    }
  }
  return wait_ms;
}

void ShardedEngine::align_range(const ReadBatch& batch, std::size_t begin,
                                std::size_t end, BatchResult& out) const {
  const std::size_t num = shards_.size();
  // Reset the per-shard breakdown at call entry, not mid-fan-out: a reused
  // engine never reports a previous batch's load, even if partitioning or
  // a shard throws before any stats land.
  shard_stats_.assign(num, ShardStats{});
  const auto bounds = partition(end - begin);

  std::vector<BatchResult> chunks(num);
  for (auto& chunk : chunks) chunk.set_best_hit_only(out.best_hit_only());
  const double stall_ms = run_shards(batch, begin, bounds, chunks, nullptr);

  // Stitch in shard order == read order; BatchResult::append merges the
  // per-shard EngineStats associatively, so the combined counters equal an
  // unsharded run over the same range.
  for (const auto& chunk : chunks) out.append(chunk);
  out.stats().stall_ms += stall_ms;
  if (options_.rebalance) update_weights();
}

EngineStats ShardedEngine::align_batch_chunked(const ReadBatch& batch,
                                               std::size_t /*chunk_size*/,
                                               const ChunkSink& sink,
                                               bool best_hit_only) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t num = shards_.size();
  shard_stats_.assign(num, ShardStats{});
  const auto bounds = partition(batch.size());

  std::vector<BatchResult> chunks(num);
  for (auto& chunk : chunks) chunk.set_best_hit_only(best_hit_only);
  EngineStats total;
  const ChunkSink forward = [&](const BatchResultChunk& chunk) {
    sink(chunk);
    total.merge(chunk.result->stats());
    ++total.chunks;
  };
  total.stall_ms += run_shards(batch, 0, bounds, chunks, &forward);
  if (options_.rebalance) update_weights();

  const auto t1 = std::chrono::steady_clock::now();
  total.batches = 1;
  total.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return total;
}

}  // namespace pim::align
