// Bidirectional FM-index support (Section IV-A's "bi-directional
// backtracking" control logic).
//
// Pairing the forward index with an index of the *reversed* reference lets
// the DPU compute the D-array lower bound in O(m) with one forward sweep —
// occurrence of read[j..i] in S equals occurrence of its reverse in
// reverse(S), and extending i by one is a single backward-extension step on
// the reverse index. This replaces the O(m^2)-worst-case restart method of
// compute_lower_bound_d and is the same trick BWA uses.
#pragma once

#include <cstdint>
#include <vector>

#include "src/align/types.h"
#include "src/genome/packed_sequence.h"
#include "src/index/fm_index.h"

namespace pim::align {

class BiFmIndex {
 public:
  BiFmIndex() = default;

  /// Builds both directions. Costs twice the single-index build.
  static BiFmIndex build(const genome::PackedSequence& reference,
                         const index::FmIndexConfig& config = {});

  const index::FmIndex& forward() const { return forward_; }
  const index::FmIndex& reverse() const { return reverse_; }

  /// O(m) D-array: D[i] = lower bound on the differences needed to align
  /// R[0..i]. Identical values to compute_lower_bound_d (tested), one
  /// reverse-index extension per read base.
  std::vector<std::uint32_t> compute_lower_bound_d(
      const std::vector<genome::Base>& read) const;

 private:
  index::FmIndex forward_;
  index::FmIndex reverse_;
};

/// Algorithm 2 with the D-array supplied by the reverse index: same results
/// as inexact_search, but the pruning pre-pass is O(m) instead of O(m^2)
/// worst case — the "reduce excessive backtracking" machinery at full
/// strength.
InexactResult inexact_search_bidirectional(const BiFmIndex& bi,
                                           const std::vector<genome::Base>& read,
                                           const InexactOptions& options = {});

}  // namespace pim::align
