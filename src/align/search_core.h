// Backend-generic search cores.
//
// Algorithm 1 (exact backward search) and Algorithm 2 (inexact search with
// backtracking) are written once here, templated on a Backend that provides
// the LFM-driven interval primitives. Two backends exist:
//   * index::FmIndex              — the pure-software path;
//   * pim::PimSearchBackend       — LFM executed as MEM/XNOR_Match/IM_ADD
//                                   operations on simulated SOT-MRAM
//                                   sub-arrays, with cycle/energy accounting.
// Because both instantiate the same core, the platform's alignment results
// are bit-identical to software by construction — the property the paper's
// "reconstructed algorithm" claims and our integration tests verify.
//
// Backend requirements:
//   index::SaInterval whole_interval() const;
//   index::SaInterval extend(const index::SaInterval&, genome::Base) const;
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/align/types.h"
#include "src/genome/alphabet.h"
#include "src/index/fm_index.h"

namespace pim::align {

template <typename Backend>
ExactResult exact_search_core(const Backend& backend,
                              const std::vector<genome::Base>& read) {
  ExactResult result;
  result.interval = backend.whole_interval();
  if (read.empty()) return result;
  for (auto it = read.rbegin(); it != read.rend(); ++it) {
    result.interval = backend.extend(result.interval, *it);
    ++result.steps;
    if (!result.interval.valid()) break;  // low >= high: no match possible
  }
  return result;
}

template <typename Backend>
std::vector<index::SaInterval> exact_search_trace_core(
    const Backend& backend, const std::vector<genome::Base>& read) {
  std::vector<index::SaInterval> trace;
  trace.reserve(read.size());
  index::SaInterval interval = backend.whole_interval();
  for (auto it = read.rbegin(); it != read.rend(); ++it) {
    interval = backend.extend(interval, *it);
    trace.push_back(interval);
    if (!interval.valid()) break;
  }
  return trace;
}

namespace detail {

/// Does pattern[begin..end] (inclusive) occur exactly?
template <typename Backend>
bool chunk_occurs(const Backend& backend,
                  const std::vector<genome::Base>& pattern, std::size_t begin,
                  std::size_t end) {
  index::SaInterval interval = backend.whole_interval();
  for (std::size_t k = end + 1; k-- > begin;) {
    interval = backend.extend(interval, pattern[k]);
    if (!interval.valid()) return false;
    if (k == begin) break;
  }
  return interval.valid();
}

}  // namespace detail

/// BWA's D array: D[i] = lower bound on differences needed to align R[0..i]
/// (number of disjoint chunks of R[0..i] absent from the reference).
template <typename Backend>
std::vector<std::uint32_t> compute_lower_bound_d_core(
    const Backend& backend, const std::vector<genome::Base>& read) {
  std::vector<std::uint32_t> d(read.size(), 0);
  std::uint32_t z = 0;
  std::size_t chunk_begin = 0;
  for (std::size_t i = 0; i < read.size(); ++i) {
    if (!detail::chunk_occurs(backend, read, chunk_begin, i)) {
      ++z;
      chunk_begin = i + 1;
    }
    d[i] = z;
  }
  return d;
}

/// Algorithm 2's recursive searcher, generic over the LFM backend.
template <typename Backend>
class InexactSearchCore {
 public:
  InexactSearchCore(const Backend& backend,
                    const std::vector<genome::Base>& read,
                    const InexactOptions& options)
      : backend_(backend), read_(read), options_(options) {
    if (options_.use_lower_bound_pruning && !read.empty()) {
      d_ = compute_lower_bound_d_core(backend, read);
    }
  }

  /// Variant with an externally supplied D-array (e.g. from the reverse
  /// index of a BiFmIndex). `precomputed_d` must be a valid lower bound;
  /// it is used regardless of options.use_lower_bound_pruning.
  InexactSearchCore(const Backend& backend,
                    const std::vector<genome::Base>& read,
                    const InexactOptions& options,
                    std::vector<std::uint32_t> precomputed_d)
      : backend_(backend),
        read_(read),
        options_(options),
        d_(std::move(precomputed_d)) {}

  InexactResult run() {
    recur(static_cast<std::int64_t>(read_.size()) - 1, 0,
          backend_.whole_interval());
    InexactResult result;
    result.states_explored = states_;
    result.truncated = truncated_;
    result.hits.reserve(found_.size());
    for (const auto& [bounds, diffs] : found_) {
      result.hits.push_back(
          InexactHit{index::SaInterval{bounds.first, bounds.second}, diffs});
    }
    return result;
  }

 private:
  void record(const index::SaInterval& interval, std::uint32_t diffs) {
    const auto key = std::make_pair(interval.low, interval.high);
    const auto it = found_.find(key);
    if (it == found_.end()) {
      found_.emplace(key, diffs);
    } else {
      it->second = std::min(it->second, diffs);
    }
  }

  bool budget_exhausted() {
    if (options_.max_states != 0 && states_ >= options_.max_states) {
      truncated_ = true;
      return true;
    }
    return false;
  }

  // i = next read character to consume (right-to-left); i < 0 => whole read
  // matched, record the interval.
  void recur(std::int64_t i, std::uint32_t diffs, index::SaInterval interval) {
    ++states_;
    if (budget_exhausted()) return;
    if (i >= 0 && !d_.empty() &&
        diffs + d_[static_cast<std::size_t>(i)] > options_.max_diffs) {
      return;  // cheapest completion already over budget
    }
    if (i < 0) {
      record(interval, diffs);
      return;
    }

    const bool can_spend = diffs < options_.max_diffs;

    if (options_.mode == EditMode::kFullEdit && can_spend) {
      // Insertion in the read: skip R[i] without consuming a reference base.
      recur(i - 1, diffs + 1, interval);
    }

    for (const auto b : genome::kAllBases) {
      const index::SaInterval next = backend_.extend(interval, b);
      if (!next.valid()) continue;
      if (options_.mode == EditMode::kFullEdit && can_spend) {
        // Deletion from the read: consume a reference base, stay at R[i].
        recur(i, diffs + 1, next);
      }
      if (b == read_[static_cast<std::size_t>(i)]) {
        recur(i - 1, diffs, next);  // match continuation (Alg. 2 line 16)
      } else if (can_spend) {
        recur(i - 1, diffs + 1, next);  // mismatch (Alg. 2 line 18)
      }
    }
  }

  const Backend& backend_;
  const std::vector<genome::Base>& read_;
  const InexactOptions& options_;
  std::vector<std::uint32_t> d_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> found_;
  std::uint64_t states_ = 0;
  bool truncated_ = false;
};

template <typename Backend>
InexactResult inexact_search_core(const Backend& backend,
                                  const std::vector<genome::Base>& read,
                                  const InexactOptions& options) {
  if (read.empty()) {
    InexactResult result;
    result.hits.push_back(InexactHit{backend.whole_interval(), 0});
    return result;
  }
  InexactSearchCore<Backend> core(backend, read, options);
  return core.run();
}

}  // namespace pim::align
