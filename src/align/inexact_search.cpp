#include "src/align/inexact_search.h"

#include <algorithm>
#include <limits>
#include <map>

#include "src/align/search_core.h"

namespace pim::align {

std::uint32_t InexactResult::best_diffs() const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (const auto& hit : hits) best = std::min(best, hit.diffs);
  return best;
}

std::uint64_t InexactResult::total_occurrences() const {
  std::uint64_t total = 0;
  for (const auto& hit : hits) total += hit.interval.count();
  return total;
}

std::vector<std::uint32_t> compute_lower_bound_d(
    const index::FmIndex& index, const std::vector<genome::Base>& read) {
  return compute_lower_bound_d_core(index, read);
}

InexactResult inexact_search(const index::FmIndex& index,
                             const std::vector<genome::Base>& read,
                             const InexactOptions& options) {
  return inexact_search_core(index, read, options);
}

std::vector<std::pair<std::uint64_t, std::uint32_t>> inexact_locate(
    const index::FmIndex& index, const std::vector<genome::Base>& read,
    const InexactOptions& options) {
  const InexactResult result = inexact_search(index, read, options);
  std::map<std::uint64_t, std::uint32_t> by_position;
  for (const auto& hit : result.hits) {
    for (std::uint64_t row = hit.interval.low; row < hit.interval.high; ++row) {
      const std::uint64_t pos = index.locate(static_cast<std::size_t>(row));
      const auto it = by_position.find(pos);
      if (it == by_position.end()) {
        by_position.emplace(pos, hit.diffs);
      } else {
        it->second = std::min(it->second, hit.diffs);
      }
    }
  }
  return {by_position.begin(), by_position.end()};
}

}  // namespace pim::align
