#include "src/align/paired.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/align/parallel_aligner.h"

namespace pim::align {

PairedAligner::PairedAligner(const index::FmIndex& index,
                             PairedOptions options)
    : aligner_(index, options.single), options_(options) {}

std::optional<ProperPair> PairedAligner::best_proper_pair(
    const AlignmentResult& r1, const AlignmentResult& r2, std::size_t len1,
    std::size_t len2) const {
  const double lo = static_cast<double>(options_.insert_mean) -
                    options_.max_insert_deviations * options_.insert_sd;
  const double hi = static_cast<double>(options_.insert_mean) +
                    options_.max_insert_deviations * options_.insert_sd;

  std::optional<ProperPair> best;
  double best_insert_error = std::numeric_limits<double>::infinity();
  for (const auto& h1 : r1.hits) {
    for (const auto& h2 : r2.hits) {
      // FR orientation: mates on opposite strands, the forward mate
      // leftmost on the genome.
      if (h1.strand == h2.strand) continue;
      const AlignmentHit& fwd = h1.strand == Strand::kForward ? h1 : h2;
      const AlignmentHit& rev = h1.strand == Strand::kForward ? h2 : h1;
      const std::size_t rev_len = (&rev == &h1) ? len1 : len2;
      if (rev.position + rev_len <= fwd.position) continue;  // wrong order
      const std::uint64_t insert = rev.position + rev_len - fwd.position;
      const double ins = static_cast<double>(insert);
      if (ins < lo || ins > hi) continue;
      const std::uint32_t diffs = h1.diffs + h2.diffs;
      const double insert_error =
          std::fabs(ins - static_cast<double>(options_.insert_mean));
      const bool better =
          !best || diffs < best->total_diffs ||
          (diffs == best->total_diffs && insert_error < best_insert_error);
      if (better) {
        best = ProperPair{h1, h2, insert, diffs};
        best_insert_error = insert_error;
      }
    }
  }
  return best;
}

void PairedAligner::classify(PairedResult& result, std::size_t len1,
                             std::size_t len2) const {
  const bool a1 = result.mate1.aligned();
  const bool a2 = result.mate2.aligned();
  if (a1 && a2) {
    result.pair = best_proper_pair(result.mate1, result.mate2, len1, len2);
    result.cls =
        result.pair ? PairClass::kProperPair : PairClass::kDiscordant;
  } else if (a1 || a2) {
    result.cls = PairClass::kOneMate;
  } else {
    result.cls = PairClass::kNeither;
  }
}

PairedResult PairedAligner::align_pair(
    const std::vector<genome::Base>& read1,
    const std::vector<genome::Base>& read2) const {
  PairedResult result;
  result.mate1 = aligner_.align(read1);
  result.mate2 = aligner_.align(read2);
  classify(result, read1.size(), read2.size());
  return result;
}

std::vector<PairedResult> PairedAligner::align_pairs(
    const ReadBatch& mates1, const ReadBatch& mates2, std::size_t num_threads,
    EngineStats* stats) const {
  if (mates1.size() != mates2.size()) {
    throw std::invalid_argument("align_pairs: mate batches differ in size");
  }
  const SoftwareEngine engine(aligner_.index(), aligner_.options());
  BatchResult b1, b2;
  align_batch_parallel(engine, mates1, b1,
                       ParallelOptions{.num_threads = num_threads});
  align_batch_parallel(engine, mates2, b2,
                       ParallelOptions{.num_threads = num_threads});

  std::vector<PairedResult> results;
  results.reserve(mates1.size());
  for (std::size_t i = 0; i < mates1.size(); ++i) {
    PairedResult result;
    result.mate1 = b1.result(i);
    result.mate2 = b2.result(i);
    classify(result, mates1.read_length(i), mates2.read_length(i));
    results.push_back(std::move(result));
  }
  if (stats != nullptr) {
    stats->merge(b1.stats());
    stats->merge(b2.stats());
  }
  return results;
}

}  // namespace pim::align
