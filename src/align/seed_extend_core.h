// Implementation of the backend-generic seed-and-extend core (see
// seed_extend.h for the interface contract). Kept in its own header so
// seed_extend.h stays readable; include seed_extend.h, not this file.
#pragma once

#include <algorithm>
#include <map>
#include <stdexcept>

#include "src/align/seed_extend.h"

namespace pim::align {

template <typename Searcher>
SeedExtendResult seed_extend_core(Searcher&& searcher,
                                  const genome::PackedSequence& reference,
                                  const std::vector<genome::Base>& read,
                                  const SeedExtendOptions& options) {
  if (options.seed_length == 0) {
    throw std::invalid_argument("seed_extend: seed length must be > 0");
  }
  SeedExtendResult result;
  if (read.size() < options.seed_length) return result;

  // 1-2. Seed and exact-search; each hit votes for the diagonal (the
  // implied reference position of the read's base 0).
  std::map<std::uint64_t, std::uint32_t> votes;
  for (std::uint64_t offset = 0; offset + options.seed_length <= read.size();
       offset += options.seed_length) {
    ++result.seeds_total;
    const std::vector<genome::Base> seed(
        read.begin() + static_cast<long>(offset),
        read.begin() + static_cast<long>(offset + options.seed_length));
    const ExactResult exact = searcher.search(seed);
    if (!exact.found() || exact.occurrence_count() > options.max_seed_hits) {
      continue;  // absent or repeat junk
    }
    ++result.seeds_matched;
    for (const auto pos : searcher.locate(exact.interval)) {
      if (pos < offset) continue;  // read would start before position 0
      votes[pos - offset] += 1;
    }
  }

  // 3. Merge nearby diagonals (small indels shift them) and rank by votes.
  struct Candidate {
    std::uint64_t diagonal = 0;
    std::uint32_t votes = 0;
  };
  std::vector<Candidate> candidates;
  for (const auto& [diagonal, count] : votes) {
    if (!candidates.empty() &&
        diagonal - candidates.back().diagonal <= options.diagonal_slack) {
      candidates.back().votes += count;
    } else {
      candidates.push_back(Candidate{diagonal, count});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.votes > b.votes;
                   });

  // 4. Banded SW verification of the top candidates.
  for (const auto& cand : candidates) {
    if (cand.votes < options.min_votes) break;  // sorted: all below too
    if (result.candidates_tried >= options.max_candidates) break;
    ++result.candidates_tried;

    const std::uint64_t pad = options.band_width;
    const std::uint64_t window_begin =
        cand.diagonal > pad ? cand.diagonal - pad : 0;
    const std::uint64_t window_end = std::min<std::uint64_t>(
        reference.size(), cand.diagonal + read.size() + pad);
    if (window_begin >= window_end) continue;
    const std::vector<genome::Base> window =
        reference.slice(window_begin, window_end);
    const SwResult sw = smith_waterman_banded(
        window, read,
        static_cast<std::int64_t>(cand.diagonal - window_begin),
        options.band_width, options.scoring);
    if (sw.score <= 0) continue;
    result.hits.push_back(SeedChainHit{window_begin, sw.score, cand.votes});
  }
  std::stable_sort(result.hits.begin(), result.hits.end(),
                   [](const SeedChainHit& a, const SeedChainHit& b) {
                     return a.score > b.score;
                   });
  return result;
}

}  // namespace pim::align
