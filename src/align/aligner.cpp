#include "src/align/aligner.h"

#include <algorithm>

namespace pim::align {

std::optional<AlignmentHit> AlignmentResult::best() const {
  if (hits.empty()) return std::nullopt;
  const auto it = std::min_element(
      hits.begin(), hits.end(), [](const AlignmentHit& a, const AlignmentHit& b) {
        if (a.diffs != b.diffs) return a.diffs < b.diffs;
        return a.position < b.position;
      });
  return *it;
}

void Aligner::collect_exact(const std::vector<genome::Base>& read,
                            Strand strand,
                            std::vector<AlignmentHit>& hits) const {
  const ExactResult result = exact_search(index_, read);
  if (!result.found()) return;
  for (const auto pos : index_.locate_all(result.interval)) {
    hits.push_back(AlignmentHit{pos, 0, strand});
    if (options_.max_hits != 0 && hits.size() >= options_.max_hits) return;
  }
}

void Aligner::collect_inexact(const std::vector<genome::Base>& read,
                              Strand strand,
                              std::vector<AlignmentHit>& hits) const {
  for (const auto& [pos, diffs] :
       inexact_locate(index_, read, options_.inexact)) {
    hits.push_back(AlignmentHit{pos, diffs, strand});
    if (options_.max_hits != 0 && hits.size() >= options_.max_hits) return;
  }
}

AlignmentResult Aligner::align(const std::vector<genome::Base>& read) const {
  AlignmentResult result;

  // Stage one: exact alignment, both strands.
  collect_exact(read, Strand::kForward, result.hits);
  if (options_.try_reverse_complement &&
      (options_.max_hits == 0 || result.hits.size() < options_.max_hits)) {
    collect_exact(genome::reverse_complement(read), Strand::kReverseComplement,
                  result.hits);
  }
  if (!result.hits.empty()) {
    result.stage = AlignmentStage::kExact;
  } else if (options_.inexact.max_diffs > 0) {
    // Stage two: inexact alignment with the configured difference budget.
    collect_inexact(read, Strand::kForward, result.hits);
    if (options_.try_reverse_complement &&
        (options_.max_hits == 0 || result.hits.size() < options_.max_hits)) {
      collect_inexact(genome::reverse_complement(read),
                      Strand::kReverseComplement, result.hits);
    }
    if (!result.hits.empty()) result.stage = AlignmentStage::kInexact;
  }

  std::sort(result.hits.begin(), result.hits.end(),
            [](const AlignmentHit& a, const AlignmentHit& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.diffs < b.diffs;
            });
  return result;
}

std::vector<AlignmentResult> Aligner::align_batch(
    const std::vector<std::vector<genome::Base>>& reads,
    AlignerStats* stats) const {
  std::vector<AlignmentResult> results;
  results.reserve(reads.size());
  for (const auto& read : reads) {
    results.push_back(align(read));
    if (stats != nullptr) {
      ++stats->reads_total;
      switch (results.back().stage) {
        case AlignmentStage::kExact: ++stats->reads_exact; break;
        case AlignmentStage::kInexact: ++stats->reads_inexact; break;
        case AlignmentStage::kUnaligned: ++stats->reads_unaligned; break;
      }
    }
  }
  return results;
}

}  // namespace pim::align
