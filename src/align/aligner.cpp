#include "src/align/aligner.h"

#include <algorithm>

#include "src/align/engine.h"

namespace pim::align {

std::optional<AlignmentHit> AlignmentResult::best() const {
  if (hits.empty()) return std::nullopt;
  const auto it = std::min_element(
      hits.begin(), hits.end(), [](const AlignmentHit& a, const AlignmentHit& b) {
        if (a.diffs != b.diffs) return a.diffs < b.diffs;
        return a.position < b.position;
      });
  return *it;
}

AlignmentResult Aligner::align(const std::vector<genome::Base>& read) const {
  detail::TwoStageScratch scratch;
  AlignmentResult result;
  result.stage =
      detail::align_two_stage(index_, options_, read, scratch, nullptr);
  result.hits = std::move(scratch.hits);
  return result;
}

std::vector<AlignmentResult> Aligner::align_batch(
    const std::vector<std::vector<genome::Base>>& reads,
    AlignerStats* stats) const {
  std::vector<AlignmentResult> results;
  results.reserve(reads.size());
  for (const auto& read : reads) {
    results.push_back(align(read));
    if (stats != nullptr) {
      ++stats->reads_total;
      switch (results.back().stage) {
        case AlignmentStage::kExact: ++stats->reads_exact; break;
        case AlignmentStage::kInexact: ++stats->reads_inexact; break;
        case AlignmentStage::kUnaligned: ++stats->reads_unaligned; break;
      }
    }
  }
  return results;
}

}  // namespace pim::align
