// Two-stage alignment pipeline (Section III): stage one attempts exact
// alignment; reads that fail (genome variation and sequencing error carriers)
// go through stage two's inexact search. For typical data ~70% of reads
// finish at stage one — a figure the integration tests and the
// alignment_pipeline bench reproduce from the read simulator's error rates.
//
// Reads may come from either strand, so each stage tries the read and its
// reverse complement, as BWA/Bowtie do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/align/backward_search.h"
#include "src/align/inexact_search.h"
#include "src/genome/alphabet.h"
#include "src/index/fm_index.h"

namespace pim::align {

enum class Strand : std::uint8_t { kForward, kReverseComplement };

struct AlignmentHit {
  std::uint64_t position = 0;  ///< Start in the reference (forward coords).
  std::uint32_t diffs = 0;
  Strand strand = Strand::kForward;
};

enum class AlignmentStage : std::uint8_t {
  kUnaligned,  ///< Neither stage found a hit within the difference budget.
  kExact,      ///< Stage one.
  kInexact,    ///< Stage two.
};

struct AlignmentResult {
  AlignmentStage stage = AlignmentStage::kUnaligned;
  std::vector<AlignmentHit> hits;  ///< Sorted by position.
  bool aligned() const { return stage != AlignmentStage::kUnaligned; }
  /// The best (fewest-diff, leftmost) hit, if any.
  std::optional<AlignmentHit> best() const;
};

struct AlignerOptions {
  InexactOptions inexact;       ///< Stage-two budget (z, edit mode, pruning).
  bool try_reverse_complement = true;
  /// Cap on reported hits per read (a read landing in a huge repeat family
  /// can hit thousands of loci); 0 = unlimited.
  std::size_t max_hits = 64;
  /// Keep only the best (fewest-diff, leftmost) hit per read. Engines honor
  /// this by putting their BatchResult into best-hit-only mode, shrinking
  /// the hit arena for workloads that never inspect secondary hits. The
  /// search itself is unchanged (stage outcomes and the primary hit are
  /// identical to a full run); only secondary hits are dropped.
  bool best_hit_only = false;
};

struct AlignerStats {
  std::uint64_t reads_total = 0;
  std::uint64_t reads_exact = 0;
  std::uint64_t reads_inexact = 0;
  std::uint64_t reads_unaligned = 0;
  double exact_fraction() const {
    return reads_total ? static_cast<double>(reads_exact) /
                             static_cast<double>(reads_total)
                       : 0.0;
  }
};

/// Legacy per-read front-end. Since the batch-engine refactor (S37) this is
/// a thin adapter over the same two-stage core SoftwareEngine runs
/// (detail::align_two_stage in engine.h), so per-read and batch paths are
/// bit-identical by construction. Batch work should prefer
/// SoftwareEngine::align_batch over a ReadBatch — it does O(1) heap
/// allocations per batch instead of O(reads).
class Aligner {
 public:
  explicit Aligner(const index::FmIndex& index, AlignerOptions options = {})
      : index_(index), options_(options) {}

  /// Align one read through the two-stage pipeline.
  AlignmentResult align(const std::vector<genome::Base>& read) const;

  /// Align a batch, accumulating stage statistics.
  std::vector<AlignmentResult> align_batch(
      const std::vector<std::vector<genome::Base>>& reads,
      AlignerStats* stats = nullptr) const;

  const AlignerOptions& options() const { return options_; }
  const index::FmIndex& index() const { return index_; }

 private:
  const index::FmIndex& index_;
  AlignerOptions options_;
};

}  // namespace pim::align
