#include "src/align/chunk_demux.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pim::align {

ChunkDemux::ChunkDemux(std::vector<std::size_t> bounds, SliceFn on_slice,
                       CompleteFn on_complete)
    : bounds_(std::move(bounds)),
      on_slice_(std::move(on_slice)),
      on_complete_(std::move(on_complete)) {
  if (bounds_.empty() || bounds_.front() != 0 ||
      !std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument(
        "ChunkDemux: bounds must be monotone and start at 0");
  }
  // A zero-read partition (or leading empty intervals) completes without
  // ever seeing a chunk.
  while (next_ < num_intervals() && bounds_[next_ + 1] <= cursor_) {
    ++completed_;
    if (on_complete_) on_complete_(next_);
    ++next_;
  }
}

void ChunkDemux::consume(const BatchResultChunk& chunk) {
  if (chunk.begin != cursor_) {
    throw std::logic_error("ChunkDemux: chunk at " +
                           std::to_string(chunk.begin) + " but cursor at " +
                           std::to_string(cursor_) +
                           " (chunks must arrive in order, gap-free)");
  }
  if (chunk.end > bounds_.back()) {
    throw std::logic_error("ChunkDemux: chunk past the partition end");
  }
  cursor_ = chunk.end;
  // Slice the chunk across every interval it overlaps, completing intervals
  // whose tail the cursor has passed (including empty ones in between).
  while (next_ < num_intervals() && bounds_[next_] < cursor_) {
    const std::size_t begin = std::max(bounds_[next_], chunk.begin);
    const std::size_t end = std::min(bounds_[next_ + 1], cursor_);
    if (end > begin && on_slice_) on_slice_(next_, chunk, begin, end);
    if (bounds_[next_ + 1] > cursor_) break;  // interval continues next chunk
    ++completed_;
    if (on_complete_) on_complete_(next_);
    ++next_;
  }
  // Empty intervals sitting exactly at the cursor complete too.
  while (next_ < num_intervals() && bounds_[next_ + 1] <= cursor_) {
    ++completed_;
    if (on_complete_) on_complete_(next_);
    ++next_;
  }
}

}  // namespace pim::align
