#include "src/align/kmer_index.h"

#include <stdexcept>

namespace pim::align {

KmerIndex KmerIndex::build(const genome::PackedSequence& reference,
                           std::uint32_t k) {
  if (k == 0 || k > 13) {
    throw std::invalid_argument("KmerIndex: k must be in [1, 13]");
  }
  if (reference.size() < k) {
    throw std::invalid_argument("KmerIndex: reference shorter than k");
  }
  KmerIndex index;
  index.k_ = k;
  index.reference_size_ = reference.size();
  const std::uint64_t num_buckets = 1ULL << (2 * k);
  const std::uint64_t num_kmers = reference.size() - k + 1;
  const std::uint64_t mask = num_buckets - 1;

  // Counting pass -> CSR offsets -> fill pass (rolling 2-bit key).
  std::vector<std::uint32_t> counts(num_buckets + 1, 0);
  std::uint64_t key = 0;
  for (std::uint64_t i = 0; i < reference.size(); ++i) {
    key = ((key << 2) | static_cast<std::uint64_t>(reference.at(i))) & mask;
    if (i + 1 >= k) ++counts[key + 1];
  }
  index.bucket_offsets_.resize(num_buckets + 1, 0);
  for (std::uint64_t b = 0; b < num_buckets; ++b) {
    index.bucket_offsets_[b + 1] = index.bucket_offsets_[b] + counts[b + 1];
  }
  index.positions_.resize(num_kmers);
  std::vector<std::uint32_t> cursor(index.bucket_offsets_.begin(),
                                    index.bucket_offsets_.end() - 1);
  key = 0;
  for (std::uint64_t i = 0; i < reference.size(); ++i) {
    key = ((key << 2) | static_cast<std::uint64_t>(reference.at(i))) & mask;
    if (i + 1 >= k) {
      index.positions_[cursor[key]++] =
          static_cast<std::uint32_t>(i + 1 - k);
    }
  }
  return index;
}

std::uint64_t KmerIndex::key_of(const std::vector<genome::Base>& seed) const {
  if (seed.size() != k_) {
    throw std::invalid_argument("KmerIndex: seed length != k");
  }
  std::uint64_t key = 0;
  for (const auto b : seed) {
    key = (key << 2) | static_cast<std::uint64_t>(b);
  }
  return key;
}

std::vector<std::uint64_t> KmerIndex::lookup(
    const std::vector<genome::Base>& seed) const {
  const std::uint64_t key = key_of(seed);
  std::vector<std::uint64_t> out(
      positions_.begin() + static_cast<long>(bucket_offsets_[key]),
      positions_.begin() + static_cast<long>(bucket_offsets_[key + 1]));
  return out;
}

std::uint64_t KmerIndex::count(const std::vector<genome::Base>& seed) const {
  const std::uint64_t key = key_of(seed);
  return bucket_offsets_[key + 1] - bucket_offsets_[key];
}

std::size_t KmerIndex::memory_bytes() const {
  return bucket_offsets_.size() * sizeof(std::uint32_t) +
         positions_.size() * sizeof(std::uint32_t);
}

ExactResult KmerIndex::search(const std::vector<genome::Base>& seed) const {
  ExactResult result;
  if (seed.size() != k_) {
    // Seed-and-extend may be configured with a different seed length; a
    // k-mismatch is "not found" rather than an error so the caller can mix
    // substrates.
    last_hits_.clear();
    return result;
  }
  last_hits_ = lookup(seed);
  result.interval = index::SaInterval{0, last_hits_.size()};
  result.steps = 1;  // one hash probe
  return result;
}

std::vector<std::uint64_t> KmerIndex::locate(
    const index::SaInterval& interval) const {
  (void)interval;  // the synthetic interval only carried the count
  return last_hits_;
}

}  // namespace pim::align
