// Brute-force search oracles.
//
// Quadratic-or-worse reference implementations used by the property tests to
// validate the FM-index paths and by micro-benchmarks as the unindexed
// baseline. Never used on large inputs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/genome/alphabet.h"
#include "src/genome/packed_sequence.h"

namespace pim::align {

/// All start positions where `read` occurs exactly in `reference`.
std::vector<std::uint64_t> naive_exact_positions(
    const genome::PackedSequence& reference,
    const std::vector<genome::Base>& read);

/// All (position, mismatches) where `read` aligns with Hamming distance
/// <= max_mismatches (same length, substitutions only).
std::vector<std::pair<std::uint64_t, std::uint32_t>> naive_hamming_positions(
    const genome::PackedSequence& reference,
    const std::vector<genome::Base>& read, std::uint32_t max_mismatches);

/// All (position, edits) where some reference substring starting at
/// `position` matches `read` with edit distance <= max_edits
/// (substitutions + insertions + deletions). `edits` is the minimum over
/// substring lengths. Banded DP per start position: O(n * m * max_edits).
std::vector<std::pair<std::uint64_t, std::uint32_t>> naive_edit_positions(
    const genome::PackedSequence& reference,
    const std::vector<genome::Base>& read, std::uint32_t max_edits);

}  // namespace pim::align
