// Seed-and-extend long-read alignment.
//
// Algorithm 2's z-bounded backtracking is the right tool for 100-bp short
// reads (<= 2 differences covers the paper's error rates) but cannot place
// the "thousands nt" reads the introduction also motivates: a 1-kb read at
// 0.3% divergence expects ~3 differences, and the backtracking cost grows
// exponentially in z. The classical answer — and this module — is
// seed-and-extend:
//   1. split the read into non-overlapping seeds (default 20 bp),
//   2. exact-search every seed with the FM-index (O(seed) each — still the
//      LFM machinery, still PIM-acceleratable),
//   3. vote candidate alignment diagonals from the seed hits,
//   4. verify the best diagonals with banded Smith-Waterman.
// The result is score-ranked candidate placements with full SW scores.
#pragma once

#include <cstdint>
#include <vector>

#include "src/align/smith_waterman.h"
#include "src/align/types.h"
#include "src/genome/packed_sequence.h"
#include "src/index/fm_index.h"

namespace pim::align {

struct SeedExtendOptions {
  std::uint32_t seed_length = 20;
  /// Seeds whose SA interval is wider than this are repeat junk and are
  /// skipped (their locate() cost would explode and their votes are noise).
  std::uint64_t max_seed_hits = 32;
  /// Minimum seed votes for a diagonal to reach SW verification.
  std::uint32_t min_votes = 2;
  /// Diagonals within this distance merge into one candidate (absorbs
  /// small indels between seeds).
  std::uint64_t diagonal_slack = 16;
  /// Candidates verified by banded SW, best-voted first.
  std::uint32_t max_candidates = 8;
  std::uint32_t band_width = 32;
  SwScoring scoring;
};

struct SeedChainHit {
  std::uint64_t ref_begin = 0;  ///< Start of the SW-verified window.
  std::int32_t score = 0;       ///< Banded SW score.
  std::uint32_t votes = 0;      ///< Seeds supporting this diagonal.
};

struct SeedExtendResult {
  std::vector<SeedChainHit> hits;  ///< Descending by score.
  std::uint32_t seeds_total = 0;
  std::uint32_t seeds_matched = 0;   ///< Seeds with usable exact hits.
  std::uint32_t candidates_tried = 0;
  bool found() const { return !hits.empty(); }
};

/// Align a (long) read by seeding + banded extension. `reference` must be
/// the sequence the index was built over (needed for SW verification).
SeedExtendResult seed_extend_align(const index::FmIndex& index,
                                   const genome::PackedSequence& reference,
                                   const std::vector<genome::Base>& read,
                                   const SeedExtendOptions& options = {});

/// Backend-generic core: any Searcher providing
///   ExactResult search(const std::vector<Base>&)
///   std::vector<std::uint64_t> locate(const index::SaInterval&)
/// can drive the seeding stage — the software FM-index or the PIM platform
/// (each seed is still pure LFM machinery, so long reads accelerate on the
/// same sub-arrays). Declared here, defined in seed_extend_core.h.
template <typename Searcher>
SeedExtendResult seed_extend_core(Searcher&& searcher,
                                  const genome::PackedSequence& reference,
                                  const std::vector<genome::Base>& read,
                                  const SeedExtendOptions& options);

}  // namespace pim::align

#include "src/align/seed_extend_core.h"  // IWYU pragma: keep
