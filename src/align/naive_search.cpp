#include "src/align/naive_search.h"

#include <algorithm>
#include <limits>

namespace pim::align {

std::vector<std::uint64_t> naive_exact_positions(
    const genome::PackedSequence& reference,
    const std::vector<genome::Base>& read) {
  std::vector<std::uint64_t> positions;
  if (read.empty() || read.size() > reference.size()) return positions;
  for (std::size_t p = 0; p + read.size() <= reference.size(); ++p) {
    bool match = true;
    for (std::size_t k = 0; k < read.size(); ++k) {
      if (reference.at(p + k) != read[k]) {
        match = false;
        break;
      }
    }
    if (match) positions.push_back(p);
  }
  return positions;
}

std::vector<std::pair<std::uint64_t, std::uint32_t>> naive_hamming_positions(
    const genome::PackedSequence& reference,
    const std::vector<genome::Base>& read, std::uint32_t max_mismatches) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> positions;
  if (read.empty() || read.size() > reference.size()) return positions;
  for (std::size_t p = 0; p + read.size() <= reference.size(); ++p) {
    std::uint32_t mismatches = 0;
    bool within = true;
    for (std::size_t k = 0; k < read.size(); ++k) {
      if (reference.at(p + k) != read[k]) {
        if (++mismatches > max_mismatches) {
          within = false;
          break;
        }
      }
    }
    if (within) positions.emplace_back(p, mismatches);
  }
  return positions;
}

namespace {

/// Minimum edit distance between `read` and any prefix of
/// reference[start, start + limit). Banded Ukkonen DP: only the diagonal
/// band of width 2*max_edits+1 is evaluated.
std::uint32_t min_edits_from(const genome::PackedSequence& reference,
                             std::size_t start,
                             const std::vector<genome::Base>& read,
                             std::uint32_t max_edits) {
  const std::int64_t m = static_cast<std::int64_t>(read.size());
  const std::int64_t avail = static_cast<std::int64_t>(reference.size()) -
                             static_cast<std::int64_t>(start);
  const std::int64_t limit =
      std::min<std::int64_t>(avail, m + static_cast<std::int64_t>(max_edits));
  const std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max() / 2;
  const std::int64_t band = static_cast<std::int64_t>(max_edits);

  // dp[j] = edits of read[0..i) vs reference[start..start+j).
  // Row 0 forbids j > 0: a match reported at `start` must actually consume
  // the reference base at `start` (backward search never emits alignments
  // whose leading reference characters are deleted — those are the same
  // alignment anchored one position to the right).
  std::vector<std::uint32_t> prev(static_cast<std::size_t>(limit) + 1, kInf);
  std::vector<std::uint32_t> curr(static_cast<std::size_t>(limit) + 1, kInf);
  prev[0] = 0;
  for (std::int64_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::int64_t lo = std::max<std::int64_t>(0, i - band);
    const std::int64_t hi = std::min(limit, i + band);
    for (std::int64_t j = lo; j <= hi; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      std::uint32_t best = kInf;
      if (j > 0 && prev[ju - 1] != kInf) {
        const bool match =
            reference.at(start + ju - 1) == read[static_cast<std::size_t>(i - 1)];
        best = std::min(best, prev[ju - 1] + (match ? 0U : 1U));
      }
      if (prev[ju] != kInf) best = std::min(best, prev[ju] + 1);  // read ins
      if (j > 0 && curr[ju - 1] != kInf) {
        best = std::min(best, curr[ju - 1] + 1);  // ref consumed, read gap
      }
      curr[ju] = best;
    }
    std::swap(prev, curr);
  }
  std::uint32_t best = kInf;
  for (std::int64_t j = 0; j <= limit; ++j) {
    best = std::min(best, prev[static_cast<std::size_t>(j)]);
  }
  return best;
}

}  // namespace

std::vector<std::pair<std::uint64_t, std::uint32_t>> naive_edit_positions(
    const genome::PackedSequence& reference,
    const std::vector<genome::Base>& read, std::uint32_t max_edits) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> positions;
  if (read.empty()) return positions;
  for (std::size_t p = 0; p < reference.size(); ++p) {
    const std::uint32_t edits = min_edits_from(reference, p, read, max_edits);
    if (edits <= max_edits) positions.emplace_back(p, edits);
  }
  return positions;
}

}  // namespace pim::align
