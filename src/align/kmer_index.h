// Hash-based k-mer seed index — the BLASTN-family seeding substrate.
//
// The paper situates itself against two algorithm families: FM-index
// backward search (this repo's core) and BLAST-style k-mer seeding (the
// RADAR accelerator "directly maps ... BLASTN"). This module implements the
// latter: an exact k-mer -> positions table over the reference, offering
// the same Searcher interface the seed-and-extend core consumes, so the
// two seeding substrates can be compared head-to-head (bench/seeding
// comparison): the k-mer table answers a seed in O(1) probes but costs
// O(n) words of memory and fixes k at build time; the FM-index answers any
// seed length in O(k) LFM steps from the 2-bit BWT.
#pragma once

#include <cstdint>
#include <vector>

#include "src/align/types.h"
#include "src/genome/packed_sequence.h"

namespace pim::align {

class KmerIndex {
 public:
  KmerIndex() = default;

  /// Build the table. k <= 13 (the 4^k bucket directory is 64 MiB of
  /// offsets at k=13, BLAST-class sizing); throws std::invalid_argument
  /// otherwise or if the reference is shorter than k.
  static KmerIndex build(const genome::PackedSequence& reference,
                         std::uint32_t k);

  std::uint32_t k() const { return k_; }
  std::uint64_t reference_size() const { return reference_size_; }

  /// All start positions of the exact k-mer `seed` (seed.size() must be k),
  /// ascending.
  std::vector<std::uint64_t> lookup(const std::vector<genome::Base>& seed) const;

  /// Number of occurrences without materialising them.
  std::uint64_t count(const std::vector<genome::Base>& seed) const;

  /// Memory footprint of the table (bucket offsets + position lists) — the
  /// number the FM-index comparison cares about.
  std::size_t memory_bytes() const;

  /// Searcher-concept adapter for seed_extend_core: `search` reports the
  /// occurrence count in a synthetic SA-interval-shaped result (the core
  /// only reads count/validity), `locate` returns the positions.
  ExactResult search(const std::vector<genome::Base>& seed) const;
  std::vector<std::uint64_t> locate(const index::SaInterval& interval) const;

 private:
  std::uint64_t key_of(const std::vector<genome::Base>& seed) const;

  std::uint32_t k_ = 0;
  std::uint64_t reference_size_ = 0;
  /// CSR layout: bucket_offsets_[key] .. [key+1] indexes into positions_.
  std::vector<std::uint32_t> bucket_offsets_;
  std::vector<std::uint32_t> positions_;
  /// Scratch for the Searcher adapter: `search` stashes the positions the
  /// subsequent `locate` returns (the synthetic interval carries no key).
  mutable std::vector<std::uint64_t> last_hits_;
};

}  // namespace pim::align
