// Unified batch alignment engine (S37).
//
// One interface — align_batch(const ReadBatch&, BatchResult&) — across every
// backend the repo grew one-off drivers for: the two-stage software FM
// pipeline (SoftwareEngine), the simulated SOT-MRAM platform
// (pim::hw::PimEngine, defined in src/pim to respect library layering), and
// seed-and-extend long-read alignment (SeedExtendEngine). Front-ends
// (parallel scheduler, MultiAligner, PairedAligner, SamWriter, examples,
// benches) program against AlignmentEngine, so swapping the software path
// for the PIM model — or a future sharded/async backend — is a one-line
// change, and the software/PIM bit-identical-results invariant is asserted
// at exactly one seam (tests/test_engine.cpp).
//
// BatchResult is arena-backed like ReadBatch: all hits of a batch live in
// one contiguous vector with per-read extents, so the engine path performs
// O(1) heap allocations per batch where the legacy vector-of-vectors path
// performed O(reads). EngineStats carries the per-stage counters that the
// legacy front-ends (paired, multi) used to silently drop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/align/aligner.h"
#include "src/align/read_batch.h"
#include "src/align/seed_extend.h"
#include "src/genome/packed_sequence.h"
#include "src/index/fm_index.h"

namespace pim::align {

/// Per-stage engine statistics: stage outcomes, search-invocation counters,
/// wall time, and result-arena allocation. Merges associatively, so chunked
/// parallel workers accumulate privately and combine at join.
struct EngineStats {
  std::uint64_t reads_total = 0;
  std::uint64_t reads_exact = 0;
  std::uint64_t reads_inexact = 0;
  std::uint64_t reads_unaligned = 0;
  std::uint64_t hits_total = 0;
  /// Strand searches issued per stage (2 per read with
  /// try_reverse_complement; stage two only runs for stage-one misses).
  std::uint64_t exact_searches = 0;
  std::uint64_t inexact_searches = 0;
  std::uint64_t batches = 0;
  double wall_ms = 0.0;            ///< align_batch / scheduler wall time.
  std::uint64_t result_bytes = 0;  ///< BatchResult arena footprint.
  /// Chunks delivered through the chunk seam (S39): align_batch_chunked,
  /// the chunked parallel scheduler's in-order drain, and ShardedEngine's
  /// per-shard forwarding all count here. 0 on non-chunked paths.
  std::uint64_t chunks = 0;
  /// Scheduler stall time (S39/S40): worker wait on the bounded start
  /// window plus in-order forwarding wait on unfinished predecessors.
  /// Execution-shape dependent (threads/chunking), unlike the workload
  /// counters above — equivalence tests must not compare it.
  double stall_ms = 0.0;

  double exact_fraction() const {
    return reads_total ? static_cast<double>(reads_exact) /
                             static_cast<double>(reads_total)
                       : 0.0;
  }
  void merge(const EngineStats& other);
  /// Bridge to the legacy stats struct front-ends still print.
  AlignerStats to_aligner_stats() const;
};

/// Arena-backed batch results: stages + one contiguous hits vector with
/// per-read extents. Materialize a legacy AlignmentResult with result(i)
/// only at I/O boundaries (SAM writing, tests).
class BatchResult {
 public:
  BatchResult() { hit_begin_.push_back(0); }

  void clear();
  void reserve(std::size_t reads, std::size_t expected_hits);

  /// Best-hit-only mode: add_read keeps only the best (fewest-diff,
  /// leftmost) hit per read, shrinking the hit arena for workloads that
  /// never inspect secondary hits. Configuration, not content: it survives
  /// clear(). append() does NOT re-truncate already-built chunks, so paths
  /// that stitch chunk results (parallel scheduler, ShardedEngine) propagate
  /// the flag to their private chunks.
  void set_best_hit_only(bool enabled) { best_hit_only_ = enabled; }
  bool best_hit_only() const { return best_hit_only_; }

  /// Append the next read's outcome (reads arrive in order). Updates the
  /// stage/hit counters in stats(). In best-hit-only mode only the best hit
  /// of `hits` is stored (and counted in hits_total).
  void add_read(AlignmentStage stage, std::span<const AlignmentHit> hits);
  /// Stitch a chunk produced by a parallel worker onto this result.
  void append(const BatchResult& chunk);

  std::size_t size() const { return stages_.size(); }
  AlignmentStage stage(std::size_t i) const { return stages_[i]; }
  bool aligned(std::size_t i) const {
    return stages_[i] != AlignmentStage::kUnaligned;
  }
  std::span<const AlignmentHit> hits(std::size_t i) const {
    return std::span<const AlignmentHit>(hits_.data() + hit_begin_[i],
                                         hit_begin_[i + 1] - hit_begin_[i]);
  }
  /// Best (fewest-diff, leftmost) hit of read i, like AlignmentResult::best.
  std::optional<AlignmentHit> best(std::size_t i) const;

  /// Materialize read i as the legacy per-read struct (copies the hits).
  AlignmentResult result(std::size_t i) const;
  std::vector<AlignmentResult> to_results() const;

  EngineStats& stats() { return stats_; }
  const EngineStats& stats() const { return stats_; }

  std::size_t memory_bytes() const;

 private:
  std::vector<AlignmentStage> stages_;
  std::vector<std::uint64_t> hit_begin_;  ///< size()+1 extents into hits_.
  std::vector<AlignmentHit> hits_;
  EngineStats stats_;
  bool best_hit_only_ = false;
};

/// A completed slice of a batch's results, handed to a ChunkSink as soon as
/// the chunk (and every chunk before it) finishes. `result` holds exactly
/// the reads [begin, end) of `batch`, so read i of the batch is
/// result->result(i - begin). Valid only for the duration of the sink call —
/// the producer recycles the arena afterwards.
struct BatchResultChunk {
  const ReadBatch* batch = nullptr;
  std::size_t begin = 0;  ///< First read of the chunk (batch index).
  std::size_t end = 0;    ///< One past the last read.
  const BatchResult* result = nullptr;
  /// Global index of read `begin` across a whole stream of batches (equals
  /// `begin` for standalone batches); SamWriter uses it to backfill
  /// "read<i>" names consistently with a non-streaming write_batch.
  std::size_t base_index = 0;

  std::size_t size() const { return end - begin; }
};

/// Called with completed chunks in read-index order. Sinks are invoked from
/// at most one thread at a time (calls are serialized by the producer), but
/// not necessarily from the thread that started the alignment.
using ChunkSink = std::function<void(const BatchResultChunk&)>;

/// The one engine interface. Implementations align half-open read ranges of
/// a batch; align_batch adds timing. align_range must append exactly
/// (end - begin) reads to `out` in read order. Engines whose thread_safe()
/// returns true guarantee align_range is safe to call concurrently from
/// multiple threads (on disjoint output chunks) — the chunked parallel
/// scheduler in parallel_aligner.h checks this before fanning out.
class AlignmentEngine {
 public:
  virtual ~AlignmentEngine() = default;

  virtual std::string_view name() const = 0;
  virtual bool thread_safe() const { return false; }
  virtual void align_range(const ReadBatch& batch, std::size_t begin,
                           std::size_t end, BatchResult& out) const = 0;

  /// Align the whole batch serially into `out` (cleared first), recording
  /// wall time and arena footprint in out.stats().
  void align_batch(const ReadBatch& batch, BatchResult& out) const;

  /// Streaming alternative to align_batch: align the batch in chunks of
  /// `chunk_size` reads (0 picks a default), delivering each completed chunk
  /// to `sink` in index order instead of materializing one whole-batch
  /// BatchResult — memory stays O(chunk) rather than O(batch). The default
  /// implementation runs chunks serially through align_range; ShardedEngine
  /// overrides it to forward per-shard completions, and the chunked parallel
  /// scheduler (align_batch_parallel_chunked) provides the multi-threaded
  /// version for thread-safe engines. Returns the merged stats of the run.
  virtual EngineStats align_batch_chunked(const ReadBatch& batch,
                                          std::size_t chunk_size,
                                          const ChunkSink& sink,
                                          bool best_hit_only = false) const;
};

namespace detail {

/// Reusable per-worker buffers for the two-stage pipeline: the unpacked
/// read, its reverse complement, the read's hit set, and the SA-locate
/// output. One set per worker replaces four heap allocations per read.
struct TwoStageScratch {
  std::vector<genome::Base> read;
  std::vector<genome::Base> rc;
  std::vector<AlignmentHit> hits;
  std::vector<std::uint64_t> positions;
};

/// The canonical two-stage pipeline (stage one exact, stage two inexact,
/// both strands), shared verbatim by Aligner::align and SoftwareEngine so
/// the per-read adapter and the batch engine are bit-identical by
/// construction. On return scratch.hits holds the read's sorted hits.
/// `stats` may be null (the legacy adapter path).
AlignmentStage align_two_stage(const index::FmIndex& index,
                               const AlignerOptions& options,
                               const std::vector<genome::Base>& read,
                               TwoStageScratch& scratch, EngineStats* stats);

}  // namespace detail

/// The two-stage FM pipeline (Algorithms 1 and 2) as an engine. Stateless
/// between calls and const over an immutable index, hence thread-safe.
class SoftwareEngine final : public AlignmentEngine {
 public:
  explicit SoftwareEngine(const index::FmIndex& index,
                          AlignerOptions options = {})
      : index_(&index), options_(options) {}

  std::string_view name() const override { return "software-fm"; }
  bool thread_safe() const override { return true; }
  void align_range(const ReadBatch& batch, std::size_t begin, std::size_t end,
                   BatchResult& out) const override;

  const AlignerOptions& options() const { return options_; }
  const index::FmIndex& index() const { return *index_; }

 private:
  const index::FmIndex* index_;
  AlignerOptions options_;
};

/// Seed-and-extend long-read alignment as an engine. Hits map the
/// best-scoring SW-verified windows to AlignmentHit positions (diffs is not
/// meaningful for SW-scored placements and reports 0); a read whose forward
/// orientation yields nothing is retried as its reverse complement. Found
/// reads count as stage two (approximate placement), mirroring the
/// short-read pipeline's exact/inexact split.
class SeedExtendEngine final : public AlignmentEngine {
 public:
  /// `reference` must be the sequence `index` was built over.
  SeedExtendEngine(const index::FmIndex& index,
                   const genome::PackedSequence& reference,
                   SeedExtendOptions options = {});

  std::string_view name() const override { return "seed-extend"; }
  bool thread_safe() const override { return true; }
  void align_range(const ReadBatch& batch, std::size_t begin, std::size_t end,
                   BatchResult& out) const override;

  const SeedExtendOptions& options() const { return options_; }

 private:
  const index::FmIndex* index_;
  const genome::PackedSequence* reference_;
  SeedExtendOptions options_;
};

}  // namespace pim::align
