// In-order interval demultiplexer over the chunk seam (S41).
//
// The chunk seam (BatchResultChunk / ChunkSink, S39) delivers completed
// slices of a batch in read-index order, but the slice boundaries are the
// *scheduler's* (fixed-size chunks, or one range per shard) — they carry no
// notion of which caller each read belongs to. ChunkDemux restores that
// mapping: it is constructed with a contiguous partition of the batch into
// logical intervals (one per service request, per mate-pair stream, per
// stolen shard range, ...) and, fed chunks through its sink, invokes
//
//   on_slice(interval, chunk, begin, end)   for every chunk/interval overlap
//                                           ([begin, end) in batch indices)
//   on_complete(interval)                   the moment the interval's last
//                                           read has been delivered
//
// so an interval's consumer is signalled as soon as ITS reads are done —
// it never waits for later strangers in the same batch. The serve layer's
// DynamicBatcher demultiplexes coalesced requests back to per-request
// futures through exactly this hook; slice data must be consumed inside
// on_slice because the producer recycles chunk arenas after the sink call.
//
// Single-threaded by design: the chunk seam serializes sink invocations, so
// ChunkDemux keeps a plain cursor and asserts chunks arrive in order and
// contiguously (a violated contract is a logic error, not a data race).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/align/engine.h"

namespace pim::align {

class ChunkDemux {
 public:
  /// Slice callback: reads [begin, end) of `chunk.batch` — a non-empty
  /// subrange of `chunk` — belong to `interval`. Read i of the batch is
  /// chunk.result->result(i - chunk.begin).
  using SliceFn = std::function<void(std::size_t interval,
                                     const BatchResultChunk& chunk,
                                     std::size_t begin, std::size_t end)>;
  /// Completion callback: every read of `interval` has been delivered.
  using CompleteFn = std::function<void(std::size_t interval)>;

  /// `bounds` partitions [0, bounds.back()) into bounds.size()-1 contiguous
  /// intervals: interval k covers [bounds[k], bounds[k+1]). Bounds must be
  /// monotone non-decreasing and start at 0 (empty intervals are legal and
  /// complete as soon as the cursor passes them — immediately for a leading
  /// empty interval). Throws std::invalid_argument on malformed bounds.
  ChunkDemux(std::vector<std::size_t> bounds, SliceFn on_slice,
             CompleteFn on_complete);

  /// Feed the next chunk. Chunks must arrive in index order with no gaps
  /// (chunk.begin == reads delivered so far) — the chunk-seam contract;
  /// throws std::logic_error otherwise.
  void consume(const BatchResultChunk& chunk);

  /// Adapter so a demux can be handed anywhere a ChunkSink is expected.
  /// The demux must outlive the returned sink.
  ChunkSink sink() {
    return [this](const BatchResultChunk& chunk) { consume(chunk); };
  }

  std::size_t num_intervals() const { return bounds_.size() - 1; }
  std::size_t completed() const { return completed_; }
  /// True once every interval (i.e. every read of the partition) completed.
  bool done() const { return completed_ == num_intervals(); }

 private:
  std::vector<std::size_t> bounds_;
  SliceFn on_slice_;
  CompleteFn on_complete_;
  std::size_t cursor_ = 0;     ///< Reads delivered so far.
  std::size_t next_ = 0;       ///< First interval not yet completed.
  std::size_t completed_ = 0;
};

}  // namespace pim::align
