// Shared result/option types for the exact and inexact search cores.
#pragma once

#include <cstdint>
#include <vector>

#include "src/index/fm_index.h"

namespace pim::align {

struct ExactResult {
  index::SaInterval interval;   ///< Final interval; valid() <=> read found.
  std::uint32_t steps = 0;      ///< Backward-extension steps executed.
  bool found() const { return interval.valid(); }
  std::uint64_t occurrence_count() const { return interval.count(); }
};

enum class EditMode {
  kSubstitutionsOnly,  ///< Mismatches only (Algorithm 2's main loop).
  kFullEdit,           ///< Substitutions + insertions + deletions.
};

struct InexactOptions {
  std::uint32_t max_diffs = 2;      ///< z; the paper evaluates reads with <=2.
  EditMode mode = EditMode::kSubstitutionsOnly;
  /// Occurrence lower-bound pruning (BWA's calculate-D). Cuts search paths
  /// that provably cannot finish within z; never changes the result set.
  bool use_lower_bound_pruning = true;
  /// Hard cap on explored search states, a defence against pathological
  /// references; 0 = unlimited. When hit, the result is marked truncated.
  std::uint64_t max_states = 0;
};

struct InexactHit {
  index::SaInterval interval;
  std::uint32_t diffs = 0;  ///< Differences used (minimum over paths).
};

struct InexactResult {
  std::vector<InexactHit> hits;  ///< Distinct intervals, ascending by low.
  std::uint64_t states_explored = 0;
  bool truncated = false;

  bool found() const { return !hits.empty(); }
  std::uint32_t best_diffs() const;
  std::uint64_t total_occurrences() const;
};

}  // namespace pim::align
