// Exact alignment-in-memory algorithm (the paper's Algorithm 1).
//
// Backward search over the FM-index: starting from the rightmost nucleotide
// of the read, each step updates the SA interval with two LFM calls
// (low and high). Complexity O(m) per read, versus O(nm) for dynamic
// programming — the asymmetry the paper's Section II highlights.
//
// These are the FmIndex instantiations of the backend-generic cores in
// search_core.h; the PIM platform instantiates the same cores over its
// in-memory backend.
#pragma once

#include <cstdint>
#include <vector>

#include "src/align/types.h"
#include "src/genome/alphabet.h"
#include "src/index/fm_index.h"

namespace pim::align {

/// Algorithm 1: exact backward search of `read` in the indexed reference.
/// Early-exits (paper line: "if low >= high, it has failed") as soon as the
/// interval collapses.
ExactResult exact_search(const index::FmIndex& index,
                         const std::vector<genome::Base>& read);

/// All start positions of exact occurrences, sorted.
std::vector<std::uint64_t> exact_locate(const index::FmIndex& index,
                                        const std::vector<genome::Base>& read);

/// Per-step interval trace (one entry after each extension), used by tests
/// to check the PIM controller reproduces the software search state exactly.
std::vector<index::SaInterval> exact_search_trace(
    const index::FmIndex& index, const std::vector<genome::Base>& read);

}  // namespace pim::align
