#include "src/align/read_batch.h"

namespace pim::align {

void ReadView::unpack_into(std::vector<genome::Base>& out) const {
  out.clear();
  out.reserve(length_);
  std::uint64_t g = offset_;
  std::size_t remaining = length_;
  while (remaining > 0) {
    // Drain the current word from the read's phase onward.
    const std::uint64_t word = words_[g >> 5];
    std::size_t lane = g & 31;
    const std::size_t take = std::min<std::size_t>(32 - lane, remaining);
    std::uint64_t shifted = word >> (lane * 2);
    for (std::size_t k = 0; k < take; ++k) {
      out.push_back(static_cast<genome::Base>(shifted & 0b11));
      shifted >>= 2;
    }
    g += take;
    remaining -= take;
  }
}

std::vector<genome::Base> ReadView::unpack() const {
  std::vector<genome::Base> out;
  unpack_into(out);
  return out;
}

std::string_view ReadBatch::name(std::size_t i) const {
  if (!has_names()) return {};
  return std::string_view(names_).substr(
      name_offsets_[i], name_offsets_[i + 1] - name_offsets_[i]);
}

std::string_view ReadBatch::qualities(std::size_t i) const {
  if (!has_qualities()) return {};
  return std::string_view(quals_).substr(
      qual_offsets_[i], qual_offsets_[i + 1] - qual_offsets_[i]);
}

std::size_t ReadBatch::memory_bytes() const {
  return words_.capacity() * sizeof(std::uint64_t) +
         read_offsets_.capacity() * sizeof(std::uint64_t) +
         names_.capacity() + name_offsets_.capacity() * sizeof(std::uint64_t) +
         quals_.capacity() + qual_offsets_.capacity() * sizeof(std::uint64_t);
}

ReadBatch ReadBatch::from_reads(
    const std::vector<std::vector<genome::Base>>& reads) {
  ReadBatchBuilder builder;
  std::size_t total = 0;
  for (const auto& r : reads) total += r.size();
  builder.reserve(reads.size(), total);
  for (const auto& r : reads) builder.add(r);
  return builder.build();
}

ReadBatch ReadBatch::from_fastq(
    const std::vector<genome::FastqRecord>& records) {
  ReadBatchBuilder builder;
  std::size_t total = 0;
  for (const auto& r : records) total += r.sequence.size();
  builder.reserve(records.size(), total);
  for (const auto& r : records) builder.add(r);
  return builder.build();
}

ReadBatchBuilder::ReadBatchBuilder() = default;

void ReadBatchBuilder::reserve(std::size_t num_reads,
                               std::size_t expected_total_bases) {
  batch_.words_.reserve((expected_total_bases + 31) / 32 + 1);
  batch_.read_offsets_.reserve(num_reads + 1);
}

void ReadBatchBuilder::push_base(genome::Base b) {
  const std::size_t word = static_cast<std::size_t>(cursor_ >> 5);
  if (word == batch_.words_.size()) batch_.words_.push_back(0);
  batch_.words_[word] |= static_cast<std::uint64_t>(b)
                         << ((cursor_ & 31) * 2);
  ++cursor_;
}

void ReadBatchBuilder::finish_read(std::string_view name,
                                   std::string_view qualities) {
  batch_.read_offsets_.push_back(cursor_);
  const std::size_t n = batch_.read_offsets_.size() - 1;  // reads so far

  if (!name.empty() && !any_names_) {
    // Backfill empty names for earlier reads.
    any_names_ = true;
    batch_.name_offsets_.assign(n, 0);
  }
  if (any_names_) {
    batch_.names_.append(name);
    batch_.name_offsets_.push_back(batch_.names_.size());
  }

  if (!qualities.empty() && !any_quals_) {
    any_quals_ = true;
    batch_.qual_offsets_.assign(n, 0);
  }
  if (any_quals_) {
    batch_.quals_.append(qualities);
    batch_.qual_offsets_.push_back(batch_.quals_.size());
  }
}

void ReadBatchBuilder::add(const std::vector<genome::Base>& read,
                           std::string_view name, std::string_view qualities) {
  for (const auto b : read) push_base(b);
  finish_read(name, qualities);
}

void ReadBatchBuilder::add(const genome::PackedSequence& read,
                           std::string_view name, std::string_view qualities) {
  add_slice(read, 0, read.size(), name, qualities);
}

void ReadBatchBuilder::add_slice(const genome::PackedSequence& reference,
                                 std::size_t begin, std::size_t end,
                                 std::string_view name,
                                 std::string_view qualities) {
  for (std::size_t i = begin; i < end; ++i) push_base(reference.at(i));
  finish_read(name, qualities);
}

void ReadBatchBuilder::add(const genome::FastqRecord& record) {
  add_slice(record.sequence, 0, record.sequence.size(), record.name,
            record.qualities);
}

void ReadBatchBuilder::reset() { reset(std::move(batch_)); }

void ReadBatchBuilder::reset(ReadBatch&& recycled) {
  batch_ = std::move(recycled);
  batch_.words_.clear();
  batch_.read_offsets_.clear();
  batch_.read_offsets_.push_back(0);
  batch_.names_.clear();
  batch_.name_offsets_.clear();
  batch_.quals_.clear();
  batch_.qual_offsets_.clear();
  cursor_ = 0;
  any_names_ = any_quals_ = false;
}

ReadBatch ReadBatchBuilder::build() {
  // name/qual offset vectors must cover every read or be absent entirely.
  if (any_names_) {
    while (batch_.name_offsets_.size() < batch_.read_offsets_.size()) {
      batch_.name_offsets_.push_back(batch_.names_.size());
    }
  }
  if (any_quals_) {
    while (batch_.qual_offsets_.size() < batch_.read_offsets_.size()) {
      batch_.qual_offsets_.push_back(batch_.quals_.size());
    }
  }
  ReadBatch out = std::move(batch_);
  batch_ = ReadBatch();
  cursor_ = 0;
  any_names_ = any_quals_ = false;
  return out;
}

}  // namespace pim::align
