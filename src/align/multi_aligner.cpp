#include "src/align/multi_aligner.h"

#include <algorithm>
#include <stdexcept>

namespace pim::align {

MultiAligner::MultiAligner(const genome::MultiReference& reference,
                           const index::FmIndex& index,
                           AlignerOptions options)
    : reference_(&reference), aligner_(index, options) {
  if (index.reference_size() != reference.total_length()) {
    throw std::invalid_argument(
        "MultiAligner: index not built over this MultiReference");
  }
}

MultiAlignmentResult MultiAligner::align(
    const std::vector<genome::Base>& read) const {
  const AlignmentResult raw = aligner_.align(read);
  MultiAlignmentResult result;

  // The matched reference span can stretch by the difference budget when
  // indels are allowed; be conservative at junctions.
  const std::uint64_t span =
      read.size() + aligner_.options().inexact.max_diffs;

  for (const auto& hit : raw.hits) {
    // Clamp to the concatenation end: a hit whose worst-case span would run
    // off the end is fine as long as it stays within its chromosome.
    const std::uint64_t clamped = std::min<std::uint64_t>(
        span, reference_->total_length() - hit.position);
    if (reference_->spans_boundary(hit.position, clamped)) {
      ++result.boundary_artifacts_dropped;
      continue;
    }
    const auto loc = reference_->locate(hit.position);
    if (!loc) {
      ++result.boundary_artifacts_dropped;
      continue;
    }
    result.hits.push_back(
        ChromosomeHit{loc->chromosome, loc->offset, hit.diffs, hit.strand});
  }
  // The stage only counts if real (non-artefact) hits survive.
  if (!result.hits.empty()) {
    result.stage = raw.stage;
  }
  return result;
}

}  // namespace pim::align
