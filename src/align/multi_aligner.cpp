#include "src/align/multi_aligner.h"

#include <algorithm>
#include <stdexcept>

#include "src/align/parallel_aligner.h"

namespace pim::align {

MultiAligner::MultiAligner(const genome::MultiReference& reference,
                           const index::FmIndex& index,
                           AlignerOptions options)
    : reference_(&reference), aligner_(index, options) {
  if (index.reference_size() != reference.total_length()) {
    throw std::invalid_argument(
        "MultiAligner: index not built over this MultiReference");
  }
}

MultiAlignmentResult MultiAligner::convert(
    std::size_t read_length, AlignmentStage stage,
    std::span<const AlignmentHit> hits) const {
  MultiAlignmentResult result;

  // The matched reference span can stretch by the difference budget when
  // indels are allowed; be conservative at junctions.
  const std::uint64_t span =
      read_length + aligner_.options().inexact.max_diffs;

  for (const auto& hit : hits) {
    // Clamp to the concatenation end: a hit whose worst-case span would run
    // off the end is fine as long as it stays within its chromosome.
    const std::uint64_t clamped = std::min<std::uint64_t>(
        span, reference_->total_length() - hit.position);
    if (reference_->spans_boundary(hit.position, clamped)) {
      ++result.boundary_artifacts_dropped;
      continue;
    }
    const auto loc = reference_->locate(hit.position);
    if (!loc) {
      ++result.boundary_artifacts_dropped;
      continue;
    }
    result.hits.push_back(
        ChromosomeHit{loc->chromosome, loc->offset, hit.diffs, hit.strand});
  }
  // The stage only counts if real (non-artefact) hits survive.
  if (!result.hits.empty()) {
    result.stage = stage;
  }
  return result;
}

MultiAlignmentResult MultiAligner::align(
    const std::vector<genome::Base>& read) const {
  const AlignmentResult raw = aligner_.align(read);
  return convert(read.size(), raw.stage,
                 std::span<const AlignmentHit>(raw.hits));
}

std::vector<MultiAlignmentResult> MultiAligner::align_batch(
    const ReadBatch& batch, std::size_t num_threads,
    EngineStats* stats) const {
  const SoftwareEngine engine(aligner_.index(), aligner_.options());
  BatchResult raw;
  align_batch_parallel(engine, batch, raw,
                       ParallelOptions{.num_threads = num_threads});

  std::vector<MultiAlignmentResult> results;
  results.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    results.push_back(convert(batch.read_length(i), raw.stage(i), raw.hits(i)));
  }
  if (stats != nullptr) stats->merge(raw.stats());
  return results;
}

}  // namespace pim::align
