#include "src/align/global_align.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pim::align {

GlocalResult glocal_align(const std::vector<genome::Base>& window,
                          const std::vector<genome::Base>& read,
                          const SwScoring& scoring) {
  const std::size_t n = window.size();
  const std::size_t m = read.size();
  if (n == 0 || m == 0) {
    throw std::invalid_argument("glocal_align: empty input");
  }

  // dp[i][j]: best score aligning read[0..i) with window ending at j.
  // Row 0 is free (leading reference gap); column 0 charges read gaps
  // (insertions) because every read base must be consumed.
  constexpr std::int32_t kNegInf = -1'000'000;
  std::vector<std::int32_t> dp((m + 1) * (n + 1), kNegInf);
  std::vector<std::uint8_t> dir((m + 1) * (n + 1), 0);  // 1=diag 2=up 3=left
  const auto at = [&](std::size_t i, std::size_t j) -> std::int32_t& {
    return dp[i * (n + 1) + j];
  };
  for (std::size_t j = 0; j <= n; ++j) at(0, j) = 0;  // free start in ref
  for (std::size_t i = 1; i <= m; ++i) {
    at(i, 0) = at(i - 1, 0) + scoring.gap_extend;
    dir[i * (n + 1)] = 2;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const bool match = read[i - 1] == window[j - 1];
      const std::int32_t diag =
          at(i - 1, j - 1) + (match ? scoring.match : scoring.mismatch);
      const std::int32_t up = at(i - 1, j) + scoring.gap_extend;   // read ins
      const std::int32_t left = at(i, j - 1) + scoring.gap_extend;  // ref del
      std::int32_t best = diag;
      std::uint8_t d = 1;
      if (up > best) {
        best = up;
        d = 2;
      }
      if (left > best) {
        best = left;
        d = 3;
      }
      at(i, j) = best;
      dir[i * (n + 1) + j] = d;
    }
  }

  // Free end in the reference: best cell of the last row.
  std::size_t best_j = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    if (at(m, j) > at(m, best_j)) best_j = j;
  }

  GlocalResult result;
  result.score = at(m, best_j);
  result.ref_end = best_j;

  // Traceback to row 0.
  std::vector<CigarEntry> reversed;
  const auto push = [&](CigarOp op) {
    if (!reversed.empty() && reversed.back().op == op) {
      ++reversed.back().length;
    } else {
      reversed.push_back(CigarEntry{op, 1});
    }
  };
  std::size_t i = m, j = best_j;
  while (i > 0) {
    switch (dir[i * (n + 1) + j]) {
      case 1:
        push(read[i - 1] == window[j - 1] ? CigarOp::kMatch
                                          : CigarOp::kMismatch);
        --i;
        --j;
        break;
      case 2:
        push(CigarOp::kInsertion);
        --i;
        break;
      case 3:
        push(CigarOp::kDeletion);
        --j;
        break;
      default:
        throw std::logic_error("glocal_align: broken traceback");
    }
  }
  result.ref_begin = j;
  result.cigar.assign(reversed.rbegin(), reversed.rend());
  for (const auto& entry : result.cigar) {
    if (entry.op != CigarOp::kMatch) result.edits += entry.length;
  }
  return result;
}

std::string glocal_cigar_string(const GlocalResult& result) {
  std::ostringstream out;
  std::uint32_t run = 0;
  char run_op = 0;
  const auto flush = [&]() {
    if (run > 0) out << run << run_op;
    run = 0;
  };
  for (const auto& entry : result.cigar) {
    char op = 0;
    switch (entry.op) {
      case CigarOp::kMatch:
      case CigarOp::kMismatch: op = 'M'; break;
      case CigarOp::kInsertion: op = 'I'; break;
      case CigarOp::kDeletion: op = 'D'; break;
    }
    if (op != run_op) {
      flush();
      run_op = op;
    }
    run += entry.length;
  }
  flush();
  return out.str();
}

}  // namespace pim::align
