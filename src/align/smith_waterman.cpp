#include "src/align/smith_waterman.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pim::align {

namespace {

// Traceback direction per cell, packed 2 bits.
enum class Dir : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

void append_cigar(std::vector<CigarEntry>& cigar, CigarOp op) {
  if (!cigar.empty() && cigar.back().op == op) {
    ++cigar.back().length;
  } else {
    cigar.push_back(CigarEntry{op, 1});
  }
}

}  // namespace

SwResult smith_waterman(const std::vector<genome::Base>& reference,
                        const std::vector<genome::Base>& read,
                        const SwScoring& scoring, bool traceback) {
  const std::size_t n = reference.size();
  const std::size_t m = read.size();
  SwResult result;
  if (n == 0 || m == 0) return result;

  // DP over rows = read, cols = reference, two rolling rows; the traceback
  // matrix is kept only when requested (it is the 75%-of-cells intermediate
  // state the paper's Introduction cites as the TCAM approaches' burden).
  std::vector<std::int32_t> prev(n + 1, 0);
  std::vector<std::int32_t> curr(n + 1, 0);
  std::vector<Dir> dirs;
  if (traceback) dirs.assign((n + 1) * (m + 1), Dir::kStop);

  std::int32_t best = 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    curr[0] = 0;
    for (std::size_t j = 1; j <= n; ++j) {
      const bool is_match = read[i - 1] == reference[j - 1];
      const std::int32_t diag =
          prev[j - 1] + (is_match ? scoring.match : scoring.mismatch);
      const std::int32_t up = prev[j] + scoring.gap_extend;    // gap in ref
      const std::int32_t left = curr[j - 1] + scoring.gap_extend;  // gap in read
      std::int32_t score = std::max({0, diag, up, left});
      curr[j] = score;
      ++result.cells_computed;
      if (traceback) {
        Dir d = Dir::kStop;
        if (score == diag && score > 0) d = Dir::kDiag;
        else if (score == up && score > 0) d = Dir::kUp;
        else if (score == left && score > 0) d = Dir::kLeft;
        dirs[i * (n + 1) + j] = d;
      }
      if (score > best) {
        best = score;
        best_i = i;
        best_j = j;
      }
    }
    std::swap(prev, curr);
  }

  result.score = best;
  result.ref_end = best_j;
  result.read_end = best_i;

  if (traceback && best > 0) {
    std::size_t i = best_i, j = best_j;
    std::vector<CigarEntry> reversed;
    while (i > 0 && j > 0) {
      const Dir d = dirs[i * (n + 1) + j];
      if (d == Dir::kStop) break;
      switch (d) {
        case Dir::kDiag:
          append_cigar(reversed, read[i - 1] == reference[j - 1]
                                     ? CigarOp::kMatch
                                     : CigarOp::kMismatch);
          --i;
          --j;
          break;
        case Dir::kUp:  // consumed a read base, gap in reference
          append_cigar(reversed, CigarOp::kInsertion);
          --i;
          break;
        case Dir::kLeft:  // consumed a reference base, gap in read
          append_cigar(reversed, CigarOp::kDeletion);
          --j;
          break;
        case Dir::kStop:
          break;
      }
    }
    result.ref_begin = j;
    result.read_begin = i;
    result.cigar.assign(reversed.rbegin(), reversed.rend());
  } else {
    result.ref_begin = result.ref_end;
    result.read_begin = result.read_end;
  }
  return result;
}

SwResult smith_waterman_banded(const std::vector<genome::Base>& reference,
                               const std::vector<genome::Base>& read,
                               std::int64_t diagonal_offset,
                               std::uint32_t band_width,
                               const SwScoring& scoring) {
  const std::size_t n = reference.size();
  const std::size_t m = read.size();
  SwResult result;
  if (n == 0 || m == 0) return result;
  const std::int64_t half_band = static_cast<std::int64_t>(band_width);

  constexpr std::int32_t kNegInf = -1'000'000;
  std::vector<std::int32_t> prev(n + 1, 0);
  std::vector<std::int32_t> curr(n + 1, 0);

  std::int32_t best = 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    // Band for row i: j in [i + offset - half, i + offset + half].
    const std::int64_t centre = static_cast<std::int64_t>(i) + diagonal_offset;
    const std::int64_t lo = std::max<std::int64_t>(1, centre - half_band);
    const std::int64_t hi =
        std::min<std::int64_t>(static_cast<std::int64_t>(n), centre + half_band);
    if (lo > hi) continue;
    std::fill(curr.begin(), curr.end(), kNegInf);
    curr[0] = 0;
    for (std::int64_t j = lo; j <= hi; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const bool is_match = read[i - 1] == reference[ju - 1];
      const std::int32_t diag_in =
          (prev[ju - 1] == kNegInf ? kNegInf
                                   : prev[ju - 1] +
                                         (is_match ? scoring.match
                                                   : scoring.mismatch));
      const std::int32_t up =
          (prev[ju] == kNegInf ? kNegInf : prev[ju] + scoring.gap_extend);
      const std::int32_t left =
          (curr[ju - 1] == kNegInf ? kNegInf
                                   : curr[ju - 1] + scoring.gap_extend);
      const std::int32_t score = std::max({0, diag_in, up, left});
      curr[ju] = score;
      ++result.cells_computed;
      if (score > best) {
        best = score;
        best_i = i;
        best_j = ju;
      }
    }
    std::swap(prev, curr);
  }

  result.score = best;
  result.ref_begin = result.ref_end = best_j;
  result.read_begin = result.read_end = best_i;
  return result;
}

std::string cigar_to_string(const std::vector<CigarEntry>& cigar) {
  std::ostringstream out;
  for (const auto& entry : cigar) {
    out << entry.length;
    switch (entry.op) {
      case CigarOp::kMatch: out << 'M'; break;
      case CigarOp::kMismatch: out << 'X'; break;
      case CigarOp::kInsertion: out << 'I'; break;
      case CigarOp::kDeletion: out << 'D'; break;
    }
  }
  return out.str();
}

}  // namespace pim::align
