// Multithreaded batch alignment.
//
// The FM-index is immutable after construction and Aligner::align is const,
// so reads shard trivially across threads: a shared atomic cursor hands out
// read indices, each worker accumulates private stage statistics, and the
// partial stats merge at join. Results land at their read's index, so the
// output order is deterministic regardless of scheduling.
#pragma once

#include <cstddef>
#include <vector>

#include "src/align/aligner.h"

namespace pim::align {

/// Align `reads` using `num_threads` workers (0 = hardware concurrency).
/// Results are positionally identical to Aligner::align_batch.
std::vector<AlignmentResult> align_batch_parallel(
    const Aligner& aligner, const std::vector<std::vector<genome::Base>>& reads,
    std::size_t num_threads = 0, AlignerStats* stats = nullptr);

}  // namespace pim::align
