// Chunked parallel scheduling over any AlignmentEngine.
//
// The FM-index is immutable after construction and engine align_range is
// const, so read ranges shard trivially across threads. A shared atomic
// cursor hands out fixed-size *chunks* of the batch (not single read
// indices): workers amortize dispatch over a whole range, keep the packed
// arena's cache locality, and accumulate results + EngineStats into a
// private per-chunk BatchResult.
//
// Completion is delivered IN INDEX ORDER as chunks finish (S39): the worker
// that completes the lowest outstanding chunk drains every consecutive
// finished chunk to the ChunkSink, then frees the chunk arenas. A bounded
// start window (workers may run at most ~2x threads chunks ahead of the
// next undelivered one) keeps undelivered results O(threads), not O(batch)
// — the backpressure half of the streaming pipeline. align_batch_parallel
// is now a thin sink that appends each delivered chunk onto one BatchResult,
// so the output is positionally identical to a serial align_batch no matter
// the thread count or scheduling.
//
// Engines that are not thread-safe (PimEngine: shared sub-array stats) run
// the whole batch serially through the same entry points — callers don't
// branch on backend. ShardedEngine's own align_batch_chunked override does
// its per-shard fan-out instead.
#pragma once

#include <cstddef>
#include <vector>

#include "src/align/aligner.h"
#include "src/align/engine.h"
#include "src/align/read_batch.h"
#include "src/obs/metrics.h"

namespace pim::align {

struct ParallelOptions {
  std::size_t num_threads = 0;  ///< 0 = hardware concurrency.
  /// Reads per scheduling unit; 0 picks a size that gives each thread ~8
  /// chunks (load balance) without dropping below 16 reads (dispatch
  /// amortization).
  std::size_t chunk_size = 0;
  /// Observability sink (S40). When set, the chunked scheduler publishes
  /// per-chunk align latency ("sched.chunk_align_ms"), start-window
  /// occupancy at chunk grab ("sched.window_occupancy"), per-worker
  /// busy/idle split ("sched.worker_busy_ms"/"sched.worker_idle_ms"), and
  /// delivery/wait counters ("sched.chunks", "sched.window_wait_us").
  /// When null (the default) the scheduler takes no extra clock reads on
  /// the non-blocking path.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Align a batch across threads; results are positionally identical to
/// engine.align_batch. out.stats() carries the merged per-stage counters
/// plus the scheduler's wall time.
void align_batch_parallel(const AlignmentEngine& engine,
                          const ReadBatch& batch, BatchResult& out,
                          ParallelOptions options = {});

/// Streaming form: align chunks across threads and hand each completed
/// chunk — in index order, serialized — to `sink` instead of materializing
/// a whole-batch result. Engines that are not thread-safe route through
/// their (virtual) align_batch_chunked. Sink or engine exceptions abort the
/// run and rethrow here. Returns the merged stats of the run.
EngineStats align_batch_parallel_chunked(const AlignmentEngine& engine,
                                         const ReadBatch& batch,
                                         const ChunkSink& sink,
                                         ParallelOptions options = {},
                                         bool best_hit_only = false);

/// Legacy adapter: vector-of-vectors in, vector of per-read results out.
/// Internally packs a ReadBatch and runs SoftwareEngine through the chunked
/// scheduler; kept for existing call sites and as the bench baseline.
///
/// Stats bridging: `stats` is the legacy AlignerStats, which only carries
/// the four read-outcome counters (reads_total/exact/inexact/unaligned) —
/// hits_total, the per-stage search counts, wall time, and arena footprint
/// do not fit in it and are NOT silently folded elsewhere. Callers that
/// want the full accounting pass `engine_stats`, which accumulates the
/// complete merged EngineStats of the run.
std::vector<AlignmentResult> align_batch_parallel(
    const Aligner& aligner, const std::vector<std::vector<genome::Base>>& reads,
    std::size_t num_threads = 0, AlignerStats* stats = nullptr,
    EngineStats* engine_stats = nullptr);

}  // namespace pim::align
