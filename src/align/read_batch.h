// Arena-backed read batch — the batch-first input representation of the
// alignment engine layer (S37).
//
// Every front-end used to shuttle reads as std::vector<std::vector<Base>>:
// one heap allocation per read and a copy at each layer boundary, which caps
// host-side throughput before the PIM model is even consulted. ReadBatch
// instead stores all reads of a batch 2-bit packed in ONE contiguous buffer
// (the same density as the reference's PackedSequence and the sub-array
// word-lines, Fig. 6a), with optional name/quality slabs for FASTQ input.
// Reads are handed around as ReadView — a span-style non-owning view
// (pointer + base offset + length) that unpacks on demand into a reusable
// scratch buffer, so a 100k-read batch costs O(1) allocations instead of
// O(reads).
//
// ReadBatchBuilder assembles a batch in a single pass over FASTQ records,
// read-simulator output, or raw base vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/genome/alphabet.h"
#include "src/genome/fastq.h"
#include "src/genome/packed_sequence.h"

namespace pim::align {

class ReadBatch;

/// Non-owning view of one read inside a ReadBatch arena. Cheap to copy
/// (16 bytes); valid as long as the owning batch is alive and unmodified.
class ReadView {
 public:
  ReadView() = default;

  std::size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }

  genome::Base operator[](std::size_t i) const {
    const std::uint64_t g = offset_ + i;
    return static_cast<genome::Base>((words_[g >> 5] >> ((g & 31) * 2)) &
                                     0b11);
  }

  /// Unpack into `out`, reusing its capacity (clear + append). The engine
  /// hot path calls this once per read with a per-worker scratch buffer.
  void unpack_into(std::vector<genome::Base>& out) const;

  /// Allocating convenience for tests and one-off call sites.
  std::vector<genome::Base> unpack() const;

 private:
  friend class ReadBatch;
  ReadView(const std::uint64_t* words, std::uint64_t offset,
           std::uint32_t length)
      : words_(words), offset_(offset), length_(length) {}

  const std::uint64_t* words_ = nullptr;
  std::uint64_t offset_ = 0;  ///< Base (not bit) offset into the arena.
  std::uint32_t length_ = 0;
};

/// Immutable batch of reads in one 2-bit-packed arena, plus optional
/// name/quality slabs (single strings with per-read offsets).
class ReadBatch {
 public:
  ReadBatch() = default;

  std::size_t size() const { return read_offsets_.size() - 1; }
  bool empty() const { return size() == 0; }
  std::size_t total_bases() const { return read_offsets_.back(); }

  ReadView read(std::size_t i) const {
    return ReadView(words_.data(), read_offsets_[i],
                    static_cast<std::uint32_t>(read_offsets_[i + 1] -
                                               read_offsets_[i]));
  }
  std::size_t read_length(std::size_t i) const {
    return read_offsets_[i + 1] - read_offsets_[i];
  }

  bool has_names() const { return !name_offsets_.empty(); }
  bool has_qualities() const { return !qual_offsets_.empty(); }
  /// Empty when the batch carries no names/qualities.
  std::string_view name(std::size_t i) const;
  std::string_view qualities(std::size_t i) const;

  /// Heap bytes held by the arena + slabs (for the throughput bench's
  /// memory accounting; compare with size() vectors at ~1 B/base + malloc
  /// headers for the legacy representation).
  std::size_t memory_bytes() const;

  /// Single-pass conveniences over the builder.
  static ReadBatch from_reads(
      const std::vector<std::vector<genome::Base>>& reads);
  static ReadBatch from_fastq(const std::vector<genome::FastqRecord>& records);

 private:
  friend class ReadBatchBuilder;
  std::vector<std::uint64_t> words_;  ///< 32 bases per word, packed.
  /// size()+1 base offsets; the leading 0 keeps empty batches well-formed.
  std::vector<std::uint64_t> read_offsets_{0};
  std::string names_;
  std::vector<std::uint64_t> name_offsets_;  ///< size()+1 when present.
  std::string quals_;
  std::vector<std::uint64_t> qual_offsets_;  ///< size()+1 when present.
};

/// Builds a ReadBatch in one pass. All reads must be added before build();
/// names/qualities are all-or-nothing per batch (a batch mixing named and
/// unnamed reads stores empty strings for the unnamed ones).
class ReadBatchBuilder {
 public:
  ReadBatchBuilder();

  /// Pre-size the arena (counts are hints, not limits).
  void reserve(std::size_t num_reads, std::size_t expected_total_bases);

  void add(const std::vector<genome::Base>& read, std::string_view name = {},
           std::string_view qualities = {});
  void add(const genome::PackedSequence& read, std::string_view name = {},
           std::string_view qualities = {});
  /// Append reference[begin, end) directly — no temporary read vector.
  void add_slice(const genome::PackedSequence& reference, std::size_t begin,
                 std::size_t end, std::string_view name = {},
                 std::string_view qualities = {});
  void add(const genome::FastqRecord& record);

  std::size_t size() const { return batch_.read_offsets_.size() - 1; }

  /// Finalize and move the batch out; the builder resets to empty.
  ReadBatch build();

  /// Drop any in-progress batch and start over, keeping the current arena
  /// capacity. With `recycled`, adopt that batch's arenas instead (contents
  /// cleared, capacity kept) — the double-buffered streaming producer hands
  /// consumed batches back this way so no generation reallocates.
  void reset();
  void reset(ReadBatch&& recycled);

 private:
  void push_base(genome::Base b);
  void finish_read(std::string_view name, std::string_view qualities);

  ReadBatch batch_;
  std::uint64_t cursor_ = 0;  ///< Total bases appended so far.
  bool any_names_ = false;
  bool any_quals_ = false;
};

}  // namespace pim::align
