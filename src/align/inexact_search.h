// Inexact alignment-in-memory algorithm (the paper's Algorithm 2).
//
// Recursive backward search tolerating up to z differences between read and
// reference. At each read position the candidate intervals take the union of
// the match continuation, the three mismatch substitutions, and (in full-edit
// mode) read-insertion / reference-deletion moves — each continuation still
// driven by the same LFM procedure, which is why the PIM platform accelerates
// stage two with the identical in-memory primitives. Lower-bound pruning
// (the D-array of BWA) is available to "reduce excessive backtracking" as the
// abstract promises.
//
// These are the FmIndex instantiations of the backend-generic cores in
// search_core.h.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/align/types.h"
#include "src/genome/alphabet.h"
#include "src/index/fm_index.h"

namespace pim::align {

/// Algorithm 2: all SA intervals matching `read` with <= z differences.
InexactResult inexact_search(const index::FmIndex& index,
                             const std::vector<genome::Base>& read,
                             const InexactOptions& options = {});

/// All start positions over all hit intervals (sorted, deduplicated), paired
/// with the minimum diff count at that position.
std::vector<std::pair<std::uint64_t, std::uint32_t>> inexact_locate(
    const index::FmIndex& index, const std::vector<genome::Base>& read,
    const InexactOptions& options = {});

/// BWA's D array: D[i] = lower bound on the differences needed to align
/// R[0..i]. Exposed for tests and for the DPU model's cycle accounting.
std::vector<std::uint32_t> compute_lower_bound_d(
    const index::FmIndex& index, const std::vector<genome::Base>& read);

}  // namespace pim::align
