#include "src/align/seed_extend.h"

#include <stdexcept>

#include "src/align/backward_search.h"

namespace pim::align {

namespace {

/// Software searcher: the FM-index instantiation of the Searcher concept.
struct FmSearcher {
  const index::FmIndex* index;

  ExactResult search(const std::vector<genome::Base>& seed) const {
    return exact_search(*index, seed);
  }
  std::vector<std::uint64_t> locate(const index::SaInterval& interval) const {
    return index->locate_all(interval);
  }
};

}  // namespace

SeedExtendResult seed_extend_align(const index::FmIndex& index,
                                   const genome::PackedSequence& reference,
                                   const std::vector<genome::Base>& read,
                                   const SeedExtendOptions& options) {
  if (index.reference_size() != reference.size()) {
    throw std::invalid_argument("seed_extend: index/reference mismatch");
  }
  return seed_extend_core(FmSearcher{&index}, reference, read, options);
}

}  // namespace pim::align
