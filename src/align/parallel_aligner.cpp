#include "src/align/parallel_aligner.h"

#include <atomic>
#include <thread>

namespace pim::align {

std::vector<AlignmentResult> align_batch_parallel(
    const Aligner& aligner, const std::vector<std::vector<genome::Base>>& reads,
    std::size_t num_threads, AlignerStats* stats) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, std::max<std::size_t>(1, reads.size()));

  std::vector<AlignmentResult> results(reads.size());
  std::atomic<std::size_t> cursor{0};
  std::vector<AlignerStats> partial(num_threads);

  auto worker = [&](std::size_t worker_id) {
    AlignerStats& local = partial[worker_id];
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= reads.size()) break;
      results[i] = aligner.align(reads[i]);
      ++local.reads_total;
      switch (results[i].stage) {
        case AlignmentStage::kExact: ++local.reads_exact; break;
        case AlignmentStage::kInexact: ++local.reads_inexact; break;
        case AlignmentStage::kUnaligned: ++local.reads_unaligned; break;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker, t);
  }
  for (auto& t : threads) t.join();

  if (stats != nullptr) {
    for (const auto& p : partial) {
      stats->reads_total += p.reads_total;
      stats->reads_exact += p.reads_exact;
      stats->reads_inexact += p.reads_inexact;
      stats->reads_unaligned += p.reads_unaligned;
    }
  }
  return results;
}

}  // namespace pim::align
