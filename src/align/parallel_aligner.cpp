#include "src/align/parallel_aligner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace pim::align {

namespace {

std::size_t pick_chunk_size(std::size_t num_reads, std::size_t num_threads,
                            std::size_t requested) {
  if (requested != 0) return requested;
  // ~8 chunks per thread balances load without losing range amortization.
  const std::size_t target = num_reads / (num_threads * 8) + 1;
  return std::max<std::size_t>(std::min<std::size_t>(target, 1024),
                               std::min<std::size_t>(num_reads, 16));
}

}  // namespace

void align_batch_parallel(const AlignmentEngine& engine,
                          const ReadBatch& batch, BatchResult& out,
                          ParallelOptions options) {
  const auto t0 = std::chrono::steady_clock::now();

  std::size_t num_threads = options.num_threads;
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, std::max<std::size_t>(1, batch.size()));

  if (!engine.thread_safe() || num_threads == 1 || batch.size() == 0) {
    engine.align_batch(batch, out);
    return;
  }

  const std::size_t chunk_size =
      pick_chunk_size(batch.size(), num_threads, options.chunk_size);
  const std::size_t num_chunks = (batch.size() + chunk_size - 1) / chunk_size;

  // Each chunk gets its own BatchResult; workers write disjoint slots, so
  // no locking — and stitching in chunk order keeps the output positionally
  // deterministic across thread counts.
  std::vector<BatchResult> chunks(num_chunks);
  std::atomic<std::size_t> cursor{0};

  auto worker = [&]() {
    while (true) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(begin + chunk_size, batch.size());
      chunks[c].reserve(end - begin, (end - begin) * 2);
      engine.align_range(batch, begin, end, chunks[c]);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  out.clear();
  out.reserve(batch.size(), batch.size() * 2);
  for (const auto& chunk : chunks) out.append(chunk);

  const auto t1 = std::chrono::steady_clock::now();
  out.stats().batches = 1;
  out.stats().wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.stats().result_bytes = out.memory_bytes();
}

std::vector<AlignmentResult> align_batch_parallel(
    const Aligner& aligner, const std::vector<std::vector<genome::Base>>& reads,
    std::size_t num_threads, AlignerStats* stats, EngineStats* engine_stats) {
  const ReadBatch batch = ReadBatch::from_reads(reads);
  const SoftwareEngine engine(aligner.index(), aligner.options());
  BatchResult result;
  align_batch_parallel(engine, batch, result,
                       ParallelOptions{.num_threads = num_threads});
  if (engine_stats != nullptr) {
    // Full accounting: hits, per-stage search counts, wall time, arena
    // bytes — everything the legacy struct below cannot carry.
    engine_stats->merge(result.stats());
  }
  if (stats != nullptr) {
    // The legacy bridge keeps exactly the four read-outcome counters.
    const AlignerStats merged = result.stats().to_aligner_stats();
    stats->reads_total += merged.reads_total;
    stats->reads_exact += merged.reads_exact;
    stats->reads_inexact += merged.reads_inexact;
    stats->reads_unaligned += merged.reads_unaligned;
  }
  return result.to_results();
}

}  // namespace pim::align
