#include "src/align/parallel_aligner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace pim::align {

namespace {

std::size_t pick_chunk_size(std::size_t num_reads, std::size_t num_threads,
                            std::size_t requested) {
  if (requested != 0) return requested;
  // ~8 chunks per thread balances load without losing range amortization.
  const std::size_t target = num_reads / (num_threads * 8) + 1;
  return std::max<std::size_t>(std::min<std::size_t>(target, 1024),
                               std::min<std::size_t>(num_reads, 16));
}

std::size_t resolve_threads(std::size_t requested, std::size_t num_reads) {
  std::size_t num_threads = requested;
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::min(num_threads, std::max<std::size_t>(1, num_reads));
}

/// Scheduler metric handles, registered once per run (inert when no
/// registry is installed — every observe/add is then a single branch).
struct SchedMetrics {
  bool installed = false;
  obs::Histogram chunk_align_ms;
  obs::Histogram window_occupancy;
  obs::Histogram worker_busy_ms;
  obs::Histogram worker_idle_ms;
  obs::Counter chunks;
  obs::Counter window_wait_us;

  explicit SchedMetrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    installed = true;
    chunk_align_ms = registry->histogram("sched.chunk_align_ms");
    window_occupancy = registry->histogram("sched.window_occupancy");
    worker_busy_ms = registry->histogram("sched.worker_busy_ms");
    worker_idle_ms = registry->histogram("sched.worker_idle_ms");
    chunks = registry->counter("sched.chunks");
    window_wait_us = registry->counter("sched.window_wait_us");
  }
};

}  // namespace

EngineStats align_batch_parallel_chunked(const AlignmentEngine& engine,
                                         const ReadBatch& batch,
                                         const ChunkSink& sink,
                                         ParallelOptions options,
                                         bool best_hit_only) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t num_threads =
      resolve_threads(options.num_threads, batch.size());

  if (!engine.thread_safe() || num_threads == 1 || batch.size() == 0) {
    // Serial engines deliver through their own chunked path (ShardedEngine
    // overrides it with per-shard completion forwarding).
    return engine.align_batch_chunked(batch, options.chunk_size, sink,
                                      best_hit_only);
  }

  const std::size_t chunk_size =
      pick_chunk_size(batch.size(), num_threads, options.chunk_size);
  const std::size_t num_chunks = (batch.size() + chunk_size - 1) / chunk_size;
  // Workers may run at most `window` chunks ahead of the next undelivered
  // one, bounding completed-but-undelivered results to O(threads). Must be
  // >= 1 so the worker holding the next chunk in line never waits.
  const std::size_t window = std::max<std::size_t>(2 * num_threads, 2);

  std::vector<BatchResult> chunks(num_chunks);
  std::vector<char> chunk_done(num_chunks, 0);
  std::atomic<std::size_t> cursor{0};

  std::mutex mu;
  std::condition_variable cv;
  std::size_t next_emit = 0;   // first undelivered chunk
  bool emitting = false;       // one drainer at a time
  bool aborted = false;
  std::exception_ptr error;
  EngineStats total;
  SchedMetrics metrics(options.metrics);

  auto worker = [&]() {
    using Clock = std::chrono::steady_clock;
    const auto worker_start = metrics.installed ? Clock::now()
                                                : Clock::time_point{};
    double busy_ms = 0.0;
    double wait_ms = 0.0;
    while (true) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      {
        std::unique_lock<std::mutex> lk(mu);
        // Occupancy of the bounded start window at grab time: how many
        // chunks are running or undelivered ahead of this one.
        if (metrics.installed) {
          metrics.window_occupancy.observe(
              static_cast<double>(c - next_emit));
        }
        if (aborted) break;
        if (c >= next_emit + window) {
          // Only time the blocking case: the fast path stays clock-free.
          const auto w0 = Clock::now();
          cv.wait(lk, [&] { return aborted || c < next_emit + window; });
          wait_ms += std::chrono::duration<double, std::milli>(Clock::now() -
                                                               w0)
                         .count();
        }
        if (aborted) break;
      }
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(begin + chunk_size, batch.size());
      const auto a0 = metrics.installed ? Clock::now() : Clock::time_point{};
      try {
        chunks[c].set_best_hit_only(best_hit_only);
        chunks[c].reserve(end - begin, (end - begin) * 2);
        engine.align_range(batch, begin, end, chunks[c]);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
        aborted = true;
        cv.notify_all();
        break;
      }
      if (metrics.installed) {
        const double d =
            std::chrono::duration<double, std::milli>(Clock::now() - a0)
                .count();
        metrics.chunk_align_ms.observe(d);
        busy_ms += d;
      }

      std::unique_lock<std::mutex> lk(mu);
      chunk_done[c] = 1;
      if (aborted || emitting || c != next_emit) {
        cv.notify_all();
        continue;
      }
      // This worker completed the lowest outstanding chunk: drain every
      // consecutive finished chunk to the sink (unlocked — the `emitting`
      // flag keeps delivery single-threaded and in order) and free its
      // arena. New completions land in chunk_done[] meanwhile and are
      // picked up by the loop condition.
      emitting = true;
      while (!aborted && next_emit < num_chunks && chunk_done[next_emit]) {
        const std::size_t idx = next_emit;
        BatchResult delivered = std::move(chunks[idx]);
        lk.unlock();
        const std::size_t b = idx * chunk_size;
        const std::size_t e = std::min(b + chunk_size, batch.size());
        try {
          sink(BatchResultChunk{&batch, b, e, &delivered, b});
        } catch (...) {
          lk.lock();
          if (!error) error = std::current_exception();
          aborted = true;
          break;
        }
        lk.lock();
        total.merge(delivered.stats());
        ++total.chunks;
        metrics.chunks.add();
        ++next_emit;
        cv.notify_all();
      }
      emitting = false;
      cv.notify_all();
    }
    if (wait_ms > 0.0) {
      std::lock_guard<std::mutex> lk(mu);
      total.stall_ms += wait_ms;
    }
    metrics.window_wait_us.add(static_cast<std::uint64_t>(wait_ms * 1e3));
    if (metrics.installed) {
      const double wall = std::chrono::duration<double, std::milli>(
                              Clock::now() - worker_start)
                              .count();
      metrics.worker_busy_ms.observe(busy_ms);
      metrics.worker_idle_ms.observe(std::max(0.0, wall - busy_ms));
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);

  const auto t1 = std::chrono::steady_clock::now();
  total.batches = 1;
  total.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return total;
}

void align_batch_parallel(const AlignmentEngine& engine,
                          const ReadBatch& batch, BatchResult& out,
                          ParallelOptions options) {
  const std::size_t num_threads =
      resolve_threads(options.num_threads, batch.size());
  if (!engine.thread_safe() || num_threads == 1 || batch.size() == 0) {
    engine.align_batch(batch, out);
    return;
  }

  // The materializing front-end is just a sink over the streaming scheduler:
  // chunks arrive in index order, so appending them reproduces the serial
  // layout bit for bit.
  const bool best_hit_only = out.best_hit_only();
  out.clear();
  out.reserve(batch.size(), batch.size() * 2);
  const EngineStats stats = align_batch_parallel_chunked(
      engine, batch,
      [&out](const BatchResultChunk& chunk) { out.append(*chunk.result); },
      options, best_hit_only);
  out.stats().batches = stats.batches;
  out.stats().wall_ms = stats.wall_ms;
  out.stats().result_bytes = out.memory_bytes();
  // The scheduler-side counters added since S37 used to be dropped here:
  // the per-chunk appends above carry zeros for them, so route the
  // scheduler's own accounting through (see EngineStats field-coverage
  // test in tests/test_engine.cpp).
  out.stats().chunks = stats.chunks;
  out.stats().stall_ms = stats.stall_ms;
}

std::vector<AlignmentResult> align_batch_parallel(
    const Aligner& aligner, const std::vector<std::vector<genome::Base>>& reads,
    std::size_t num_threads, AlignerStats* stats, EngineStats* engine_stats) {
  const ReadBatch batch = ReadBatch::from_reads(reads);
  const SoftwareEngine engine(aligner.index(), aligner.options());
  BatchResult result;
  align_batch_parallel(engine, batch, result,
                       ParallelOptions{.num_threads = num_threads});
  if (engine_stats != nullptr) {
    // Full accounting: hits, per-stage search counts, wall time, arena
    // bytes — everything the legacy struct below cannot carry.
    engine_stats->merge(result.stats());
  }
  if (stats != nullptr) {
    // The legacy bridge keeps exactly the four read-outcome counters.
    const AlignerStats merged = result.stats().to_aligner_stats();
    stats->reads_total += merged.reads_total;
    stats->reads_exact += merged.reads_exact;
    stats->reads_inexact += merged.reads_inexact;
    stats->reads_unaligned += merged.reads_unaligned;
  }
  return result.to_results();
}

}  // namespace pim::align
