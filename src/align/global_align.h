// Semi-global ("glocal") alignment: the whole read against a reference
// window, free leading/trailing gaps on the reference side only.
//
// This is the correct model for anchoring a read at a known hit position:
// unlike local Smith-Waterman it cannot soft-clip away the read's ends
// (every read base is accounted for), so the CIGAR spans the full read and
// the NM tag equals the alignment's true edit count. SamWriter uses it for
// hit CIGARs; the variant-calling pileup depends on the full-read property.
#pragma once

#include <cstdint>
#include <vector>

#include "src/align/smith_waterman.h"
#include "src/genome/alphabet.h"

namespace pim::align {

struct GlocalResult {
  std::int32_t score = 0;
  /// Reference window span actually consumed (half-open).
  std::uint64_t ref_begin = 0, ref_end = 0;
  std::vector<CigarEntry> cigar;  ///< Consumes the entire read.
  std::uint32_t edits = 0;        ///< Mismatches + inserted + deleted bases.
};

/// Align `read` (fully) against `window` (reference side free at both
/// ends). Throws std::invalid_argument on an empty read or empty window.
GlocalResult glocal_align(const std::vector<genome::Base>& window,
                          const std::vector<genome::Base>& read,
                          const SwScoring& scoring = {});

/// Render with mismatches folded into M (SAM convention).
std::string glocal_cigar_string(const GlocalResult& result);

}  // namespace pim::align
