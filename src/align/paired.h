// Paired-end alignment: FR-orientation pairing with an insert-size model.
//
// Both mates run through the two-stage pipeline independently; pairing then
// searches the hit cross-product for a *proper pair* — opposite strands,
// forward mate leftmost, observed insert within mean +- k*sd — and scores
// candidates by total differences (ties: insert closest to the mean). When
// only one mate places uniquely, the pair still reports (the SAM flags say
// which mate is unmapped); this is where the insert constraint rescues
// repeat-ambiguous mates in practice.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/align/aligner.h"
#include "src/align/engine.h"
#include "src/align/read_batch.h"

namespace pim::align {

struct PairedOptions {
  AlignerOptions single;            ///< Per-mate alignment options.
  std::uint32_t insert_mean = 300;
  std::uint32_t insert_sd = 30;
  double max_insert_deviations = 4.0;
};

enum class PairClass : std::uint8_t {
  kProperPair,   ///< Both aligned, FR orientation, insert within bounds.
  kDiscordant,   ///< Both aligned but no orientation/insert-consistent pair.
  kOneMate,      ///< Exactly one mate aligned.
  kNeither,
};

struct ProperPair {
  AlignmentHit first;
  AlignmentHit second;
  std::uint64_t observed_insert = 0;
  std::uint32_t total_diffs = 0;
};

struct PairedResult {
  PairClass cls = PairClass::kNeither;
  std::optional<ProperPair> pair;  ///< Set iff cls == kProperPair.
  AlignmentResult mate1;
  AlignmentResult mate2;
};

class PairedAligner {
 public:
  PairedAligner(const index::FmIndex& index, PairedOptions options = {});

  /// `read_length` of each mate is taken from the vectors themselves.
  PairedResult align_pair(const std::vector<genome::Base>& read1,
                          const std::vector<genome::Base>& read2) const;

  /// Batch front-end: mates1[i] pairs with mates2[i] (the batches must be
  /// the same size). Both mate batches run through the engine scheduler,
  /// then pairing classifies each index. `stats`, when given, accumulates
  /// the per-stage engine counters over BOTH mates — the statistics the
  /// per-pair path used to drop.
  std::vector<PairedResult> align_pairs(const ReadBatch& mates1,
                                        const ReadBatch& mates2,
                                        std::size_t num_threads = 1,
                                        EngineStats* stats = nullptr) const;

  const PairedOptions& options() const { return options_; }

 private:
  std::optional<ProperPair> best_proper_pair(
      const AlignmentResult& r1, const AlignmentResult& r2,
      std::size_t len1, std::size_t len2) const;
  void classify(PairedResult& result, std::size_t len1,
                std::size_t len2) const;

  Aligner aligner_;
  PairedOptions options_;
};

}  // namespace pim::align
