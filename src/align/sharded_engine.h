// Multi-chip sharded execution behind the one engine seam (S38).
//
// The paper's headline numbers (Fig. 8-10) are chip-scale: Pd-way pipelined
// sub-arrays aggregated across a whole SOT-MRAM chip, and chips aggregated
// across the platform. ShardedEngine is that aggregation seam on the host
// side: it implements AlignmentEngine over N backend engine *instances*
// (one simulated chip each — see pim::hw::PimChipFleet — or N software
// engines as the zero-hardware baseline), partitions a ReadBatch into
// contiguous per-shard ranges, fans the ranges out, and stitches the
// per-shard BatchResults back in read order. EngineStats merge
// associatively at the stitch, so the merged counters equal an unsharded
// run by construction — asserted in tests/test_engine.cpp as
// "sharded(N) == unsharded", the multi-chip extension of the software/PIM
// bit-identity invariant.
//
// Because it sits behind AlignmentEngine, every front-end programmed against
// the seam (parallel scheduler, SamWriter::write_batch, examples, benches)
// gets multi-chip execution without code changes.
//
// Thread model: each shard engine instance is driven by exactly ONE thread,
// so backends whose thread_safe() is false (PimEngine: per-chip op/energy
// tallies) shard safely — the contract is that shard instances share no
// mutable state (each PIM chip owns its platform). ShardedEngine itself
// reports thread_safe() == false because it records a per-shard load
// breakdown (shard_stats()) on each run; the chunked scheduler therefore
// runs it through the serial path, and ShardedEngine does its own fan-out.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "src/align/engine.h"
#include "src/align/read_batch.h"
#include "src/obs/metrics.h"

namespace pim::align {

/// Per-chip load observed on the last sharded run — the measured feed for
/// the chip/contention models in src/accel (see accel/measured_load.h),
/// which otherwise assume uniform per-chip load.
struct ShardStats {
  std::size_t shard = 0;        ///< Shard (chip) index.
  std::uint64_t reads = 0;      ///< Reads routed to this shard.
  std::uint64_t hits = 0;       ///< Hits this shard produced.
  double wall_ms = 0.0;         ///< This shard's align wall time.
  EngineStats stats;            ///< Full per-shard engine counters.
};

struct ShardedOptions {
  /// Run shards concurrently, one thread per shard (chips are independent
  /// devices). false runs them sequentially — useful for deterministic
  /// profiling of a single chip's share.
  bool parallel = true;
  /// After each run, reweight the shard boundaries proportionally to each
  /// shard's measured throughput (reads / wall_ms from shard_stats()), so
  /// the next batch equalizes expected wall time instead of read counts —
  /// the load-balanced-sharding loop for streaming runs, where repeat-heavy
  /// reads clustering in one shard would otherwise stall the whole fan-out
  /// every generation. accel::rebalanced_shard_weights applies the same
  /// reweighting to externally measured loads.
  bool rebalance = false;
  /// Blend factor for rebalancing: 0 keeps the old weights, 1 jumps to the
  /// measured throughput. Intermediate values smooth out per-batch noise.
  double rebalance_smoothing = 0.5;
  /// Observability sink (S40). When set, every run publishes per-shard
  /// series — "shard.<i>.reads"/"shard.<i>.hits" counters (cumulative) and
  /// "shard.<i>.wall_ms"/"shard.<i>.reads_per_ms"/"shard.<i>.weight"
  /// gauges (last run) — and the rebalance math consumes the published
  /// reads/ms series from the registry instead of the internal tallies
  /// (identical values; the registry is the data path, shard_stats() the
  /// programmatic view). Null = zero overhead.
  obs::MetricsRegistry* metrics = nullptr;
};

// Not final: pim::hw::PimChipFleet derives a transfer-charging engine (S43)
// that brackets the fan-out with host->chip staging accounting.
class ShardedEngine : public AlignmentEngine {
 public:
  /// Owning: the sharded engine keeps the backend instances alive.
  explicit ShardedEngine(std::vector<std::unique_ptr<AlignmentEngine>> shards,
                         ShardedOptions options = {});
  /// Non-owning: `shards` must outlive the engine (PimChipFleet owns its
  /// chips this way). Instances must be distinct objects sharing no mutable
  /// state.
  explicit ShardedEngine(std::vector<const AlignmentEngine*> shards,
                         ShardedOptions options = {});

  std::string_view name() const override { return "sharded"; }
  /// align_range overwrites the shard_stats() breakdown, so concurrent
  /// calls on one ShardedEngine are not allowed. (The internal per-shard
  /// fan-out is still parallel.)
  bool thread_safe() const override { return false; }
  void align_range(const ReadBatch& batch, std::size_t begin, std::size_t end,
                   BatchResult& out) const override;

  /// Streaming execution (S39): shards run concurrently as usual, but each
  /// shard's completed result is forwarded to `sink` as soon as it AND every
  /// lower-indexed shard finish (shard order == read order), then its arena
  /// is freed — so a multi-chip fleet streams chunks out while later chips
  /// are still aligning, instead of holding all shard results until join.
  /// `chunk_size` is ignored: the shard ranges are the chunks.
  EngineStats align_batch_chunked(const ReadBatch& batch,
                                  std::size_t chunk_size, const ChunkSink& sink,
                                  bool best_hit_only = false) const override;

  std::size_t num_shards() const { return shards_.size(); }
  const AlignmentEngine& shard(std::size_t i) const { return *shards_[i]; }
  const ShardedOptions& options() const { return options_; }

  /// Per-chip breakdown of the last align_range/align_batch call (empty
  /// before the first run). Shards with no reads still appear, with zeroed
  /// counters.
  const std::vector<ShardStats>& shard_stats() const { return shard_stats_; }

  /// Relative shard weights steering the partition (uniform initially;
  /// normalized to sum 1). With options().rebalance they update after every
  /// run; set_shard_weights installs externally computed weights (e.g.
  /// accel::rebalanced_shard_weights over a fleet's measured load). Throws
  /// if the size mismatches or any weight is not positive.
  const std::vector<double>& shard_weights() const { return weights_; }
  void set_shard_weights(std::vector<double> weights);

  /// Weighted contiguous partition of `reads` under the current weights:
  /// num_shards()+1 monotone boundaries with front()==0, back()==reads.
  /// Exposed for tests and front-ends that pre-route per-shard data.
  std::vector<std::size_t> partition(std::size_t reads) const;

  /// Balanced contiguous partition: the half-open read range shard `s` of
  /// `num_shards` covers within [0, reads). Exposed for tests and for
  /// front-ends that pre-route per-shard auxiliary data.
  static std::pair<std::size_t, std::size_t> shard_range(std::size_t reads,
                                                         std::size_t num_shards,
                                                         std::size_t s);

 private:
  /// Per-shard metric handles (empty when no registry is installed).
  struct ShardSeries {
    obs::Counter reads;
    obs::Counter hits;
    obs::Gauge wall_ms;
    obs::Gauge reads_per_ms;
    obs::Gauge weight;
  };

  /// Returns the in-order forward/join wait in ms (time the stitching
  /// thread spent blocked on unfinished predecessor shards).
  double run_shards(const ReadBatch& batch, std::size_t begin,
                    std::vector<std::size_t> const& bounds,
                    std::vector<BatchResult>& chunks,
                    const ChunkSink* sink) const;
  void init_metrics();
  void update_weights() const;
  void publish_weights() const;

  std::vector<std::unique_ptr<AlignmentEngine>> owned_;
  std::vector<const AlignmentEngine*> shards_;
  ShardedOptions options_;
  mutable std::vector<ShardStats> shard_stats_;
  mutable std::vector<double> weights_;
  std::vector<ShardSeries> series_;
};

}  // namespace pim::align
