// Bounded-memory streaming end-to-end pipeline (S39): double-buffered FASTQ
// ingest -> chunked alignment -> per-chunk emission.
//
// The paper's pipeline (Fig. 7) never holds the whole workload in flight:
// reads stream through the 5-stage sub-array pipeline at parallelism Pd.
// The host pipeline used to materialize everything three times — read_fastq
// loaded every record, the engine held the full BatchResult, and
// SamWriter::write_batch ran only after the last read finished.
// StreamingPipeline replaces all three with one seam:
//
//   producer thread --(<=2 ReadBatch generations)--> consumer
//   FastqStreamReader -> ReadBatchBuilder            align_batch_parallel_chunked
//   (arena recycled per generation via                 / engine.align_batch_chunked
//    ReadBatchBuilder::reset)                        -> ChunkSink (in read order)
//
// The producer packs generation g+1 while the engine aligns generation g
// (double buffering: at most two batch arenas exist, recycled through a
// free list, so steady state allocates nothing per generation). Completed
// chunks are delivered to the sink in global read order — within a batch by
// the in-order chunked scheduler (or ShardedEngine's per-shard completion
// forwarding), across batches because generations are consumed
// sequentially — so streaming SAM output is byte-identical to a
// materialize-everything write_batch run. Peak memory is O(2 batches +
// in-flight chunks) instead of O(dataset).
//
// Backpressure: the producer blocks when both batch slots are in use; the
// chunked scheduler bounds completed-but-undelivered chunks to O(threads).
// Errors on either side (malformed FASTQ, engine or sink failure) abort the
// opposite side and rethrow from run(); output emitted before the error
// remains written.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/align/engine.h"
#include "src/align/parallel_aligner.h"
#include "src/genome/fastq.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pim::align {

class SamWriter;

struct StreamingOptions {
  /// Reads per generation batch. Bigger amortizes scheduling; smaller
  /// bounds memory tighter and smooths the ingest/align overlap.
  std::size_t batch_reads = 32768;
  /// Scheduler knobs for thread-safe engines (threads, chunk size); the
  /// chunk size also feeds serial engines' align_batch_chunked.
  ParallelOptions parallel;
  /// Keep only the best hit per read (see AlignerOptions::best_hit_only).
  bool best_hit_only = false;
  /// Observability sink (S40). When set, run() publishes the stage-resolved
  /// series the paper's Fig. 8-10 accounting needs live instead of post
  /// hoc: "stream.reads"/"stream.batches"/"stream.chunks" counters,
  /// producer fill time ("stream.producer_fill_ms") and arena-wait stall
  /// ("stream.producer_wait_us"), consumer align time
  /// ("stream.consumer_align_ms") and ingest-wait stall
  /// ("stream.consumer_wait_us"), and per-chunk delivery latency from
  /// generation align start ("stream.chunk_latency_ms"). Propagated to
  /// ParallelOptions::metrics when that is unset, so the scheduler's
  /// worker-level series land in the same registry. Null = zero overhead.
  obs::MetricsRegistry* metrics = nullptr;
  /// Stage trace sink (S40): generation fill/align spans land here with
  /// nesting intact. Null = no tracing.
  obs::TraceLog* trace = nullptr;
};

/// Aggregate accounting of one streaming run.
struct StreamingStats {
  EngineStats engine;          ///< Merged engine counters across generations.
  std::uint64_t reads = 0;     ///< Reads streamed end to end.
  std::uint64_t batches = 0;   ///< Generations consumed.
  std::uint64_t chunks = 0;    ///< Chunks delivered to the sink.
  double wall_ms = 0.0;        ///< End-to-end run() wall time.
  /// Time the consumer spent stalled waiting for the producer — near zero
  /// when ingest fully overlaps alignment.
  double ingest_wait_ms = 0.0;
  /// High-water mark of live batch-arena bytes (at most two generations).
  std::size_t peak_batch_bytes = 0;
};

class StreamingPipeline {
 public:
  /// `engine` must outlive the pipeline. Thread-safe engines align each
  /// generation through the in-order chunked parallel scheduler; serial
  /// engines (PimEngine, ShardedEngine) stream through their virtual
  /// align_batch_chunked.
  explicit StreamingPipeline(const AlignmentEngine& engine,
                             StreamingOptions options = {});

  /// Drive reader -> double-buffered batches -> engine -> sink until end of
  /// stream. Chunks arrive in global read order with base_index set to the
  /// global index of the chunk's first read. Rethrows producer (FASTQ
  /// parse), engine, and sink errors.
  StreamingStats run(genome::FastqStreamReader& reader,
                     const ChunkSink& sink) const;

  /// Convenience: stream straight into a SamWriter (one write_chunk per
  /// delivered chunk). The caller writes the header first.
  StreamingStats run(genome::FastqStreamReader& reader,
                     SamWriter& writer) const;

  const StreamingOptions& options() const { return options_; }

 private:
  const AlignmentEngine* engine_;
  StreamingOptions options_;
};

}  // namespace pim::align
