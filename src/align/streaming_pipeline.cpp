#include "src/align/streaming_pipeline.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/align/sam_writer.h"

namespace pim::align {

StreamingPipeline::StreamingPipeline(const AlignmentEngine& engine,
                                     StreamingOptions options)
    : engine_(&engine), options_(options) {}

StreamingStats StreamingPipeline::run(genome::FastqStreamReader& reader,
                                      const ChunkSink& sink) const {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  StreamingStats stats;
  const std::size_t batch_reads =
      std::max<std::size_t>(1, options_.batch_reads);

  std::mutex mu;
  std::condition_variable cv;
  // Double buffering: two arena tokens circulate producer -> ready ->
  // consumer -> free list. The producer blocks for a token, so at most two
  // batch generations exist at any instant, and (via
  // ReadBatchBuilder::reset) their arenas are recycled, not reallocated.
  std::vector<ReadBatch> free_arenas(2);
  std::deque<ReadBatch> ready;
  bool producer_done = false;
  std::atomic<bool> abort{false};
  std::exception_ptr producer_error;

  std::thread producer([&]() {
    try {
      ReadBatchBuilder builder;
      genome::FastqRecord record;
      bool more = true;
      while (more && !abort.load(std::memory_order_relaxed)) {
        ReadBatch arena;
        {
          std::unique_lock<std::mutex> lk(mu);
          cv.wait(lk, [&] {
            return abort.load(std::memory_order_relaxed) ||
                   !free_arenas.empty();
          });
          if (abort.load(std::memory_order_relaxed)) break;
          arena = std::move(free_arenas.back());
          free_arenas.pop_back();
        }
        builder.reset(std::move(arena));
        std::size_t n = 0;
        while (n < batch_reads && !abort.load(std::memory_order_relaxed) &&
               (more = reader.next(record))) {
          builder.add(record);
          ++n;
        }
        if (n == 0) break;  // end of stream on a generation boundary
        {
          std::lock_guard<std::mutex> lk(mu);
          ready.push_back(builder.build());
        }
        cv.notify_all();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu);
      producer_error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      producer_done = true;
    }
    cv.notify_all();
  });

  std::exception_ptr consumer_error;
  std::size_t global_base = 0;
  std::size_t prev_batch_bytes = 0;
  try {
    while (true) {
      ReadBatch batch;
      {
        const auto w0 = Clock::now();
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !ready.empty() || producer_done; });
        stats.ingest_wait_ms +=
            std::chrono::duration<double, std::milli>(Clock::now() - w0)
                .count();
        if (ready.empty()) break;  // producer finished and queue drained
        batch = std::move(ready.front());
        ready.pop_front();
      }
      const std::size_t batch_bytes = batch.memory_bytes();
      stats.peak_batch_bytes =
          std::max(stats.peak_batch_bytes, batch_bytes + prev_batch_bytes);
      prev_batch_bytes = batch_bytes;

      // Rebase chunk indices to the whole stream so sinks see one
      // continuous read sequence across generations.
      const ChunkSink rebased = [&](const BatchResultChunk& chunk) {
        BatchResultChunk global = chunk;
        global.base_index = global_base + chunk.begin;
        ++stats.chunks;
        sink(global);
      };
      EngineStats generation;
      if (engine_->thread_safe()) {
        generation = align_batch_parallel_chunked(
            *engine_, batch, rebased, options_.parallel,
            options_.best_hit_only);
      } else {
        generation = engine_->align_batch_chunked(
            batch, options_.parallel.chunk_size, rebased,
            options_.best_hit_only);
      }
      stats.engine.merge(generation);
      ++stats.batches;
      stats.reads += batch.size();
      global_base += batch.size();

      {
        std::lock_guard<std::mutex> lk(mu);
        free_arenas.push_back(std::move(batch));
      }
      cv.notify_all();
    }
  } catch (...) {
    consumer_error = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
    cv.notify_all();
  }
  producer.join();
  if (consumer_error) std::rethrow_exception(consumer_error);
  if (producer_error) std::rethrow_exception(producer_error);

  stats.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return stats;
}

StreamingStats StreamingPipeline::run(genome::FastqStreamReader& reader,
                                      SamWriter& writer) const {
  return run(reader, [&writer](const BatchResultChunk& chunk) {
    writer.write_chunk(chunk);
  });
}

}  // namespace pim::align
