#include "src/align/streaming_pipeline.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/align/sam_writer.h"

namespace pim::align {

StreamingPipeline::StreamingPipeline(const AlignmentEngine& engine,
                                     StreamingOptions options)
    : engine_(&engine), options_(options) {}

namespace {

/// Streaming-stage metric handles, registered once per run. Inert (single
/// branch per call, no clock reads) when no registry is installed.
struct StreamMetrics {
  bool installed = false;
  obs::Counter reads;
  obs::Counter batches;
  obs::Counter chunks;
  obs::Counter producer_wait_us;
  obs::Counter consumer_wait_us;
  obs::Histogram producer_fill_ms;
  obs::Histogram consumer_align_ms;
  obs::Histogram chunk_latency_ms;
  obs::Gauge peak_batch_bytes;

  explicit StreamMetrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    installed = true;
    reads = registry->counter("stream.reads");
    batches = registry->counter("stream.batches");
    chunks = registry->counter("stream.chunks");
    producer_wait_us = registry->counter("stream.producer_wait_us");
    consumer_wait_us = registry->counter("stream.consumer_wait_us");
    producer_fill_ms = registry->histogram("stream.producer_fill_ms");
    consumer_align_ms = registry->histogram("stream.consumer_align_ms");
    chunk_latency_ms = registry->histogram("stream.chunk_latency_ms");
    peak_batch_bytes = registry->gauge("stream.peak_batch_bytes");
  }
};

}  // namespace

StreamingStats StreamingPipeline::run(genome::FastqStreamReader& reader,
                                      const ChunkSink& sink) const {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  StreamingStats stats;
  const std::size_t batch_reads =
      std::max<std::size_t>(1, options_.batch_reads);
  StreamMetrics metrics(options_.metrics);
  obs::TraceLog* const trace = options_.trace;
  ParallelOptions parallel = options_.parallel;
  if (parallel.metrics == nullptr) parallel.metrics = options_.metrics;

  std::mutex mu;
  std::condition_variable cv;
  // Double buffering: two arena tokens circulate producer -> ready ->
  // consumer -> free list. The producer blocks for a token, so at most two
  // batch generations exist at any instant, and (via
  // ReadBatchBuilder::reset) their arenas are recycled, not reallocated.
  std::vector<ReadBatch> free_arenas(2);
  std::deque<ReadBatch> ready;
  bool producer_done = false;
  std::atomic<bool> abort{false};
  std::exception_ptr producer_error;

  std::thread producer([&]() {
    try {
      ReadBatchBuilder builder;
      genome::FastqRecord record;
      bool more = true;
      while (more && !abort.load(std::memory_order_relaxed)) {
        ReadBatch arena;
        {
          std::unique_lock<std::mutex> lk(mu);
          const auto free_ready = [&] {
            return abort.load(std::memory_order_relaxed) ||
                   !free_arenas.empty();
          };
          if (!free_ready()) {
            // Both arena slots in use: the producer is ahead of the
            // consumer (backpressure stall). Only the blocking case reads
            // the clock, and only with a sink installed.
            if (metrics.installed) {
              const auto w0 = Clock::now();
              cv.wait(lk, free_ready);
              metrics.producer_wait_us.add(static_cast<std::uint64_t>(
                  std::chrono::duration<double, std::micro>(Clock::now() -
                                                            w0)
                      .count()));
            } else {
              cv.wait(lk, free_ready);
            }
          }
          if (abort.load(std::memory_order_relaxed)) break;
          arena = std::move(free_arenas.back());
          free_arenas.pop_back();
        }
        const bool timed = metrics.installed || trace != nullptr;
        const auto f0 = timed ? Clock::now() : Clock::time_point{};
        builder.reset(std::move(arena));
        std::size_t n = 0;
        while (n < batch_reads && !abort.load(std::memory_order_relaxed) &&
               (more = reader.next(record))) {
          builder.add(record);
          ++n;
        }
        if (n == 0) break;  // end of stream on a generation boundary
        {
          std::lock_guard<std::mutex> lk(mu);
          ready.push_back(builder.build());
        }
        if (timed) {
          const double fill_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - f0)
                  .count();
          metrics.producer_fill_ms.observe(fill_ms);
          if (trace != nullptr) {
            trace->record("stream.fill", trace->now_ms() - fill_ms, fill_ms,
                          0);
          }
        }
        cv.notify_all();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu);
      producer_error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      producer_done = true;
    }
    cv.notify_all();
  });

  std::exception_ptr consumer_error;
  std::size_t global_base = 0;
  std::size_t prev_batch_bytes = 0;
  try {
    while (true) {
      ReadBatch batch;
      {
        const auto w0 = Clock::now();
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !ready.empty() || producer_done; });
        const double waited_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - w0)
                .count();
        stats.ingest_wait_ms += waited_ms;
        metrics.consumer_wait_us.add(
            static_cast<std::uint64_t>(waited_ms * 1e3));
        if (ready.empty()) break;  // producer finished and queue drained
        batch = std::move(ready.front());
        ready.pop_front();
      }
      const std::size_t batch_bytes = batch.memory_bytes();
      stats.peak_batch_bytes =
          std::max(stats.peak_batch_bytes, batch_bytes + prev_batch_bytes);
      prev_batch_bytes = batch_bytes;
      metrics.peak_batch_bytes.set(
          static_cast<double>(stats.peak_batch_bytes));

      // Chunk latency is measured from the generation's align start: how
      // long a completed slice waited (in-order delivery + scheduling)
      // before reaching the sink.
      const auto gen0 = metrics.installed ? Clock::now() : Clock::time_point{};
      // Rebase chunk indices to the whole stream so sinks see one
      // continuous read sequence across generations.
      const ChunkSink rebased = [&](const BatchResultChunk& chunk) {
        BatchResultChunk global = chunk;
        global.base_index = global_base + chunk.begin;
        ++stats.chunks;
        if (metrics.installed) {
          metrics.chunks.add();
          metrics.chunk_latency_ms.observe(
              std::chrono::duration<double, std::milli>(Clock::now() - gen0)
                  .count());
        }
        sink(global);
      };
      EngineStats generation;
      if (engine_->thread_safe()) {
        generation = align_batch_parallel_chunked(
            *engine_, batch, rebased, parallel, options_.best_hit_only);
      } else {
        generation = engine_->align_batch_chunked(
            batch, parallel.chunk_size, rebased, options_.best_hit_only);
      }
      stats.engine.merge(generation);
      ++stats.batches;
      stats.reads += batch.size();
      global_base += batch.size();
      metrics.consumer_align_ms.observe(generation.wall_ms);
      metrics.reads.add(batch.size());
      metrics.batches.add();
      if (trace != nullptr) {
        trace->record("stream.align", trace->now_ms() - generation.wall_ms,
                      generation.wall_ms, 0);
      }

      {
        std::lock_guard<std::mutex> lk(mu);
        free_arenas.push_back(std::move(batch));
      }
      cv.notify_all();
    }
  } catch (...) {
    consumer_error = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
    cv.notify_all();
  }
  producer.join();
  if (consumer_error) std::rethrow_exception(consumer_error);
  if (producer_error) std::rethrow_exception(producer_error);

  stats.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return stats;
}

StreamingStats StreamingPipeline::run(genome::FastqStreamReader& reader,
                                      SamWriter& writer) const {
  return run(reader, [&writer](const BatchResultChunk& chunk) {
    writer.write_chunk(chunk);
  });
}

}  // namespace pim::align
