#include "src/align/bi_index.h"

#include <algorithm>

#include "src/align/search_core.h"

namespace pim::align {

BiFmIndex BiFmIndex::build(const genome::PackedSequence& reference,
                           const index::FmIndexConfig& config) {
  BiFmIndex bi;
  bi.forward_ = index::FmIndex::build(reference, config);
  genome::PackedSequence reversed;
  for (std::size_t i = reference.size(); i-- > 0;) {
    reversed.push_back(reference.at(i));
  }
  bi.reverse_ = index::FmIndex::build(reversed, config);
  return bi;
}

std::vector<std::uint32_t> BiFmIndex::compute_lower_bound_d(
    const std::vector<genome::Base>& read) const {
  // Growing read[j..i] rightward corresponds to *prepending* read[i] to the
  // reversed chunk, which is exactly one backward-extension step on the
  // reverse index. When the interval collapses the chunk does not occur:
  // bump z, start the next chunk after i.
  std::vector<std::uint32_t> d(read.size(), 0);
  std::uint32_t z = 0;
  index::SaInterval interval = reverse_.whole_interval();
  for (std::size_t i = 0; i < read.size(); ++i) {
    interval = reverse_.extend(interval, read[i]);
    if (!interval.valid()) {
      ++z;
      interval = reverse_.whole_interval();
    }
    d[i] = z;
  }
  return d;
}

InexactResult inexact_search_bidirectional(const BiFmIndex& bi,
                                           const std::vector<genome::Base>& read,
                                           const InexactOptions& options) {
  if (read.empty()) {
    InexactResult result;
    result.hits.push_back(InexactHit{bi.forward().whole_interval(), 0});
    return result;
  }
  InexactSearchCore<index::FmIndex> core(bi.forward(), read, options,
                                         bi.compute_lower_bound_d(read));
  return core.run();
}

}  // namespace pim::align
