// SAM output — the interchange format downstream genomics pipelines expect.
//
// Converts AlignmentResults into SAM 1.6 records: header (@HD/@SQ/@PG),
// flags (reverse-strand 0x10, unmapped 0x4, secondary 0x100), 1-based
// positions, CIGAR strings (recomputed by banded Smith-Waterman traceback
// for hits with differences), MAPQ from hit multiplicity and difference
// count, and NM edit-distance tags.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/align/aligner.h"
#include "src/align/engine.h"
#include "src/align/paired.h"
#include "src/align/read_batch.h"
#include "src/genome/packed_sequence.h"

namespace pim::align {

struct SamRecord {
  std::string qname;
  std::uint16_t flag = 0;
  std::string rname = "*";
  std::uint64_t pos = 0;  ///< 1-based; 0 = unmapped.
  std::uint8_t mapq = 0;
  std::string cigar = "*";
  std::string rnext = "*";
  std::uint64_t pnext = 0;
  std::int64_t tlen = 0;
  std::string seq;
  std::string qual = "*";
  std::uint32_t edit_distance = 0;  ///< Emitted as NM:i: tag when mapped.

  static constexpr std::uint16_t kFlagPaired = 0x1;
  static constexpr std::uint16_t kFlagProperPair = 0x2;
  static constexpr std::uint16_t kFlagUnmapped = 0x4;
  static constexpr std::uint16_t kFlagMateUnmapped = 0x8;
  static constexpr std::uint16_t kFlagReverse = 0x10;
  static constexpr std::uint16_t kFlagMateReverse = 0x20;
  static constexpr std::uint16_t kFlagFirstInPair = 0x40;
  static constexpr std::uint16_t kFlagSecondInPair = 0x80;
  static constexpr std::uint16_t kFlagSecondary = 0x100;

  std::string to_line() const;
};

/// MAPQ heuristic: unique hits score high (decaying with differences),
/// multi-mapped reads score near zero, unmapped reads zero.
std::uint8_t estimate_mapq(std::size_t num_hits, std::uint32_t diffs);

/// QNAME as the SAM grammar allows it: everything from the first whitespace
/// on (FASTQ comments, ground-truth suffixes) is dropped. Every record
/// emission path routes through this, so the two mates of a pair and the
/// batch/single-read paths agree on the name.
std::string sanitize_qname(std::string_view name);

class SamWriter {
 public:
  /// Single-reference writer; `reference` is kept (not copied) for CIGAR
  /// recomputation and must outlive the writer.
  SamWriter(std::ostream& out, std::string reference_name,
            const genome::PackedSequence& reference);

  /// Emit @HD, @SQ and @PG lines. Call once, first.
  void write_header(const std::string& program_name = "pim-aligner",
                    const std::string& version = "1.0.0");

  /// Convert one read's alignment into records: the best hit is primary,
  /// remaining hits are secondary. Unaligned reads get an unmapped record.
  /// `qualities` (Phred+33), if given, must match the read length.
  void write_alignment(const std::string& qname,
                       const std::vector<genome::Base>& read,
                       const AlignmentResult& result,
                       const std::optional<std::string>& qualities = {});

  /// Engine-layer batch output: one write_alignment per read, pulling
  /// QNAMEs and qualities from the batch's slabs (reads without names get
  /// "read<i>"). Reads unpack through one reusable scratch buffer.
  void write_batch(const ReadBatch& batch, const BatchResult& results);

  /// Streaming emission (S39): write the reads of one completed chunk. The
  /// "read<i>" backfill for nameless reads uses chunk.base_index, so a
  /// streamed run over many chunks/batches emits the same QNAMEs as one
  /// write_batch over the whole set.
  void write_chunk(const BatchResultChunk& chunk);

  /// Emit the two primary records of a paired alignment with full pair
  /// flags (0x1/0x2/0x40/0x80, mate strand/unmapped, RNEXT "=", TLEN).
  /// Proper pairs use the ProperPair hits; other classes fall back to each
  /// mate's best hit (or an unmapped record).
  void write_pair(const std::string& qname,
                  const std::vector<genome::Base>& read1,
                  const std::vector<genome::Base>& read2,
                  const PairedResult& result,
                  const std::optional<std::string>& qual1 = {},
                  const std::optional<std::string>& qual2 = {});

  std::size_t records_written() const { return records_; }

  /// Build (without writing) the records for an alignment — exposed for
  /// tests and custom sinks.
  std::vector<SamRecord> make_records(
      const std::string& qname, const std::vector<genome::Base>& read,
      const AlignmentResult& result,
      const std::optional<std::string>& qualities = {}) const;

 private:
  std::string cigar_for_hit(const std::vector<genome::Base>& oriented_read,
                            const AlignmentHit& hit) const;

  std::ostream* out_;
  std::string reference_name_;
  const genome::PackedSequence* reference_;
  std::size_t records_ = 0;
};

}  // namespace pim::align
