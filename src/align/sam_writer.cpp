#include "src/align/sam_writer.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/align/global_align.h"
#include "src/align/smith_waterman.h"

namespace pim::align {

std::string SamRecord::to_line() const {
  std::ostringstream out;
  out << qname << '\t' << flag << '\t' << rname << '\t' << pos << '\t'
      << static_cast<int>(mapq) << '\t' << cigar << '\t' << rnext << '\t'
      << pnext << '\t' << tlen << '\t' << (seq.empty() ? "*" : seq) << '\t'
      << qual;
  if ((flag & kFlagUnmapped) == 0) {
    out << "\tNM:i:" << edit_distance;
  }
  return out.str();
}

std::string sanitize_qname(std::string_view name) {
  const auto cut = name.find_first_of(" \t");
  return std::string(name.substr(0, cut));
}

std::uint8_t estimate_mapq(std::size_t num_hits, std::uint32_t diffs) {
  if (num_hits == 0) return 0;
  if (num_hits == 1) {
    // Unique placement: confidence decays with the differences spent.
    const int q = 60 - static_cast<int>(diffs) * 10;
    return static_cast<std::uint8_t>(std::max(q, 20));
  }
  if (num_hits == 2) return 3;
  return 0;  // repeat region: essentially unplaceable
}

SamWriter::SamWriter(std::ostream& out, std::string reference_name,
                     const genome::PackedSequence& reference)
    : out_(&out),
      reference_name_(std::move(reference_name)),
      reference_(&reference) {}

void SamWriter::write_header(const std::string& program_name,
                             const std::string& version) {
  (*out_) << "@HD\tVN:1.6\tSO:unknown\n";
  (*out_) << "@SQ\tSN:" << reference_name_ << "\tLN:" << reference_->size()
          << "\n";
  (*out_) << "@PG\tID:" << program_name << "\tPN:" << program_name
          << "\tVN:" << version << "\n";
}

std::string SamWriter::cigar_for_hit(
    const std::vector<genome::Base>& oriented_read,
    const AlignmentHit& hit) const {
  const std::size_t m = oriented_read.size();
  if (hit.diffs == 0) {
    return std::to_string(m) + "M";  // exact: one match run
  }
  // Re-align the full read semi-globally against a window around the hit:
  // every read base is consumed (no soft clips), so the CIGAR and NM are
  // the true edit script. The window pads by the difference budget so
  // indel alignments fit.
  const std::uint64_t pad = hit.diffs + 2;
  const std::uint64_t begin = hit.position;
  const std::uint64_t end =
      std::min<std::uint64_t>(reference_->size(), begin + m + pad);
  if (begin >= end) return std::to_string(m) + "M";
  const std::vector<genome::Base> window = reference_->slice(begin, end);
  const GlocalResult glocal = glocal_align(window, oriented_read);
  return glocal_cigar_string(glocal);
}

std::vector<SamRecord> SamWriter::make_records(
    const std::string& qname, const std::vector<genome::Base>& read,
    const AlignmentResult& result,
    const std::optional<std::string>& qualities) const {
  if (qualities && qualities->size() != read.size()) {
    throw std::invalid_argument("SamWriter: quality/read length mismatch");
  }
  const std::string name = sanitize_qname(qname);
  std::vector<SamRecord> records;

  if (!result.aligned()) {
    SamRecord rec;
    rec.qname = name;
    rec.flag = SamRecord::kFlagUnmapped;
    rec.seq = genome::decode(read);
    rec.qual = qualities.value_or("*");
    records.push_back(std::move(rec));
    return records;
  }

  // Order: the best hit first (primary), the rest secondary.
  std::vector<AlignmentHit> ordered = result.hits;
  const auto best = result.best();
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const AlignmentHit& a, const AlignmentHit& b) {
                     if (a.diffs != b.diffs) return a.diffs < b.diffs;
                     return a.position < b.position;
                   });
  (void)best;

  // SEQ is stored in reference orientation: reverse-strand hits emit the
  // reverse complement (and reversed qualities). Both oriented variants are
  // built at most once for the whole hit set — a repeat-heavy read with many
  // secondary hits must not redo the copy per hit.
  const std::string fwd_seq = genome::decode(read);
  const std::string fwd_qual = qualities.value_or("*");
  std::vector<genome::Base> rc;
  std::string rc_seq, rc_qual;
  bool rc_ready = false;

  const std::uint8_t mapq = estimate_mapq(ordered.size(), ordered[0].diffs);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const auto& hit = ordered[i];
    SamRecord rec;
    rec.qname = name;
    rec.rname = reference_name_;
    rec.pos = hit.position + 1;  // SAM is 1-based
    rec.mapq = (i == 0) ? mapq : 0;
    rec.edit_distance = hit.diffs;
    if (i > 0) rec.flag |= SamRecord::kFlagSecondary;

    const std::vector<genome::Base>* oriented = &read;
    if (hit.strand == Strand::kReverseComplement) {
      rec.flag |= SamRecord::kFlagReverse;
      if (!rc_ready) {
        rc = genome::reverse_complement(read);
        rc_seq = genome::decode(rc);
        rc_qual = fwd_qual;
        if (qualities) std::reverse(rc_qual.begin(), rc_qual.end());
        rc_ready = true;
      }
      oriented = &rc;
      rec.seq = rc_seq;
      rec.qual = rc_qual;
    } else {
      rec.seq = fwd_seq;
      rec.qual = fwd_qual;
    }
    rec.cigar = cigar_for_hit(*oriented, hit);
    records.push_back(std::move(rec));
  }
  return records;
}

void SamWriter::write_alignment(const std::string& qname,
                                const std::vector<genome::Base>& read,
                                const AlignmentResult& result,
                                const std::optional<std::string>& qualities) {
  for (const auto& rec : make_records(qname, read, result, qualities)) {
    (*out_) << rec.to_line() << '\n';
    ++records_;
  }
}

void SamWriter::write_chunk(const BatchResultChunk& chunk) {
  const ReadBatch& batch = *chunk.batch;
  std::vector<genome::Base> scratch;
  for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
    // make_records sanitizes names (comments and ground-truth suffixes stay
    // out of QNAME); here only nameless reads need the "read<i>" backfill,
    // numbered by global stream position.
    std::string qname(batch.name(i));
    if (qname.empty()) {
      qname = "read" + std::to_string(chunk.base_index + (i - chunk.begin));
    }
    batch.read(i).unpack_into(scratch);
    std::optional<std::string> qual;
    if (batch.has_qualities() && !batch.qualities(i).empty()) {
      qual = std::string(batch.qualities(i));
    }
    write_alignment(qname, scratch, chunk.result->result(i - chunk.begin),
                    qual);
  }
}

void SamWriter::write_batch(const ReadBatch& batch,
                            const BatchResult& results) {
  write_chunk(BatchResultChunk{&batch, 0, batch.size(), &results, 0});
}

void SamWriter::write_pair(const std::string& qname,
                           const std::vector<genome::Base>& read1,
                           const std::vector<genome::Base>& read2,
                           const PairedResult& result,
                           const std::optional<std::string>& qual1,
                           const std::optional<std::string>& qual2) {
  // Build each mate's primary record: the ProperPair hit when there is
  // one, otherwise the mate's own best hit, otherwise unmapped.
  const auto primary_record =
      [&](const std::vector<genome::Base>& read,
          const std::optional<std::string>& qual,
          const AlignmentResult& mate_result,
          const std::optional<AlignmentHit>& forced) -> SamRecord {
    AlignmentResult narrowed;
    if (forced) {
      narrowed.hits = {*forced};
    } else if (const auto best = mate_result.best()) {
      narrowed.hits = {*best};
    }
    narrowed.stage = narrowed.hits.empty() ? AlignmentStage::kUnaligned
                                           : mate_result.stage;
    auto records = make_records(qname, read, narrowed, qual);
    return records.front();
  };

  std::optional<AlignmentHit> h1, h2;
  if (result.pair) {
    h1 = result.pair->first;
    h2 = result.pair->second;
  }
  SamRecord r1 = primary_record(read1, qual1, result.mate1, h1);
  SamRecord r2 = primary_record(read2, qual2, result.mate2, h2);

  r1.flag |= SamRecord::kFlagPaired | SamRecord::kFlagFirstInPair;
  r2.flag |= SamRecord::kFlagPaired | SamRecord::kFlagSecondInPair;
  if (result.cls == PairClass::kProperPair) {
    r1.flag |= SamRecord::kFlagProperPair;
    r2.flag |= SamRecord::kFlagProperPair;
  }
  // SAM spec recommended practice: an unmapped read with a mapped mate
  // takes its mate's RNAME/POS (it stays flagged 0x4 with CIGAR "*"), so
  // the pair stays adjacent under coordinate sort instead of the unmapped
  // half drifting to the unplaced block.
  const bool mapped1 = (r1.flag & SamRecord::kFlagUnmapped) == 0;
  const bool mapped2 = (r2.flag & SamRecord::kFlagUnmapped) == 0;
  if (!mapped1 && mapped2) {
    r1.rname = r2.rname;
    r1.pos = r2.pos;
  } else if (mapped1 && !mapped2) {
    r2.rname = r1.rname;
    r2.pos = r1.pos;
  }
  const auto cross_link = [&](SamRecord& self, const SamRecord& mate) {
    if (mate.flag & SamRecord::kFlagUnmapped) {
      // 0x20 is undefined for an unmapped mate; the placement above still
      // gives RNEXT/PNEXT a coordinate when the mate was co-located.
      self.flag |= SamRecord::kFlagMateUnmapped;
    } else if (mate.flag & SamRecord::kFlagReverse) {
      self.flag |= SamRecord::kFlagMateReverse;
    }
    if (mate.pos != 0) {
      self.rnext = "=";
      self.pnext = mate.pos;
    }
  };
  cross_link(r1, r2);
  cross_link(r2, r1);
  if (result.pair) {
    const auto tlen = static_cast<std::int64_t>(result.pair->observed_insert);
    // Leftmost mate gets +TLEN, the other -TLEN.
    if (r1.pos <= r2.pos) {
      r1.tlen = tlen;
      r2.tlen = -tlen;
    } else {
      r1.tlen = -tlen;
      r2.tlen = tlen;
    }
  }
  (*out_) << r1.to_line() << '\n' << r2.to_line() << '\n';
  records_ += 2;
}

}  // namespace pim::align
