// Smith–Waterman local alignment — the dynamic-programming baseline family
// (Darwin / ReCAM / RaceLogic in the paper's comparison) and the O(nm)
// complexity contrast of Section II.
//
// Linear gap model by default (RaceLogic's formulation); affine gaps
// available. A banded variant provides the usual seed-and-extend
// acceleration and is used by the micro-benchmarks to show the
// crossover against O(m) backward search.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/genome/alphabet.h"

namespace pim::align {

struct SwScoring {
  std::int32_t match = 2;
  std::int32_t mismatch = -1;
  std::int32_t gap_open = -2;    ///< Charged on the first gap base.
  std::int32_t gap_extend = -2;  ///< Equal to gap_open => linear gaps.
};

enum class CigarOp : std::uint8_t { kMatch, kMismatch, kInsertion, kDeletion };

struct CigarEntry {
  CigarOp op;
  std::uint32_t length;
};

struct SwResult {
  std::int32_t score = 0;
  /// Half-open aligned spans in reference and read.
  std::uint64_t ref_begin = 0, ref_end = 0;
  std::uint64_t read_begin = 0, read_end = 0;
  std::vector<CigarEntry> cigar;  ///< Empty unless traceback requested.
  std::uint64_t cells_computed = 0;  ///< DP work, for the O(nm) comparisons.
};

/// Full O(nm) Smith–Waterman with optional traceback.
SwResult smith_waterman(const std::vector<genome::Base>& reference,
                        const std::vector<genome::Base>& read,
                        const SwScoring& scoring = {},
                        bool traceback = false);

/// Banded Smith–Waterman: cells with |i - j - offset| > band are skipped.
/// `diagonal_offset` centres the band (reference position minus read
/// position of the expected alignment).
SwResult smith_waterman_banded(const std::vector<genome::Base>& reference,
                               const std::vector<genome::Base>& read,
                               std::int64_t diagonal_offset,
                               std::uint32_t band_width,
                               const SwScoring& scoring = {});

/// Render a CIGAR as the usual compact string ("42M1X7M" style; X =
/// mismatch, I/D = read insertion/deletion).
std::string cigar_to_string(const std::vector<CigarEntry>& cigar);

}  // namespace pim::align
