#include "src/align/backward_search.h"

#include "src/align/search_core.h"

namespace pim::align {

ExactResult exact_search(const index::FmIndex& index,
                         const std::vector<genome::Base>& read) {
  return exact_search_core(index, read);
}

std::vector<std::uint64_t> exact_locate(const index::FmIndex& index,
                                        const std::vector<genome::Base>& read) {
  const ExactResult result = exact_search(index, read);
  return index.locate_all(result.interval);
}

std::vector<index::SaInterval> exact_search_trace(
    const index::FmIndex& index, const std::vector<genome::Base>& read) {
  return exact_search_trace_core(index, read);
}

}  // namespace pim::align
