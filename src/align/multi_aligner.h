// Chromosome-aware alignment: Aligner over a MultiReference concatenation,
// with junction-artefact filtering and (chromosome, offset) hit coordinates.
#pragma once

#include <string>
#include <vector>

#include "src/align/aligner.h"
#include "src/align/engine.h"
#include "src/align/read_batch.h"
#include "src/genome/multi_reference.h"
#include "src/index/fm_index.h"

namespace pim::align {

struct ChromosomeHit {
  std::size_t chromosome = 0;
  std::uint64_t offset = 0;   ///< 0-based within the chromosome.
  std::uint32_t diffs = 0;
  Strand strand = Strand::kForward;
};

struct MultiAlignmentResult {
  AlignmentStage stage = AlignmentStage::kUnaligned;
  std::vector<ChromosomeHit> hits;
  std::size_t boundary_artifacts_dropped = 0;
  bool aligned() const { return stage != AlignmentStage::kUnaligned; }
};

class MultiAligner {
 public:
  /// `reference` and `index` must both outlive the aligner; the index must
  /// have been built over reference.concatenated().
  MultiAligner(const genome::MultiReference& reference,
               const index::FmIndex& index, AlignerOptions options = {});

  MultiAlignmentResult align(const std::vector<genome::Base>& read) const;

  /// Batch front-end: runs the engine scheduler over the concatenated-index
  /// pipeline, then converts hits to (chromosome, offset) coordinates with
  /// junction filtering. `stats`, when given, accumulates the per-stage
  /// engine counters (the per-read path has no way to report them).
  /// Note: the stage counters reflect the raw concatenation alignment;
  /// reads whose only hits are junction artefacts still report unaligned
  /// in the returned results.
  std::vector<MultiAlignmentResult> align_batch(
      const ReadBatch& batch, std::size_t num_threads = 1,
      EngineStats* stats = nullptr) const;

  const genome::MultiReference& reference() const { return *reference_; }

 private:
  MultiAlignmentResult convert(std::size_t read_length, AlignmentStage stage,
                               std::span<const AlignmentHit> hits) const;

  const genome::MultiReference* reference_;
  Aligner aligner_;
};

}  // namespace pim::align
