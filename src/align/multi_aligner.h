// Chromosome-aware alignment: Aligner over a MultiReference concatenation,
// with junction-artefact filtering and (chromosome, offset) hit coordinates.
#pragma once

#include <string>
#include <vector>

#include "src/align/aligner.h"
#include "src/genome/multi_reference.h"
#include "src/index/fm_index.h"

namespace pim::align {

struct ChromosomeHit {
  std::size_t chromosome = 0;
  std::uint64_t offset = 0;   ///< 0-based within the chromosome.
  std::uint32_t diffs = 0;
  Strand strand = Strand::kForward;
};

struct MultiAlignmentResult {
  AlignmentStage stage = AlignmentStage::kUnaligned;
  std::vector<ChromosomeHit> hits;
  std::size_t boundary_artifacts_dropped = 0;
  bool aligned() const { return stage != AlignmentStage::kUnaligned; }
};

class MultiAligner {
 public:
  /// `reference` and `index` must both outlive the aligner; the index must
  /// have been built over reference.concatenated().
  MultiAligner(const genome::MultiReference& reference,
               const index::FmIndex& index, AlignerOptions options = {});

  MultiAlignmentResult align(const std::vector<genome::Base>& read) const;

  const genome::MultiReference& reference() const { return *reference_; }

 private:
  const genome::MultiReference* reference_;
  Aligner aligner_;
};

}  // namespace pim::align
