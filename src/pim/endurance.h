// Endurance analysis — a practical concern the paper leaves implicit.
//
// MRAM tolerates ~1e12–1e15 write cycles, far above ReRAM, which is part of
// the SOT-MRAM pitch; but IM_ADD rewrites the carry row every adder cycle
// (33 writes per 32-bit add), concentrating wear on a handful of reserved-
// zone rows. This module classifies a tracked sub-array's write traffic by
// zone, finds the hot rows, and projects array lifetime at a given LFM
// rate — quantifying both that the hot spot exists and that SOT-MRAM
// endurance absorbs it (a ReRAM device at 1e8 cycles would not).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/pim/mapping.h"
#include "src/pim/subarray.h"

namespace pim::hw {

struct ZoneWrites {
  std::string zone;
  std::uint64_t writes = 0;
  std::uint32_t rows = 0;
  double writes_per_row() const {
    return rows ? static_cast<double>(writes) / rows : 0.0;
  }
};

struct EnduranceReport {
  std::uint64_t total_writes = 0;
  std::uint32_t hottest_row = 0;
  std::uint64_t hottest_row_writes = 0;
  std::string hottest_zone;
  std::vector<ZoneWrites> by_zone;  ///< BWT, CRef, MT, reserved.
  std::uint64_t lfm_count = 0;

  /// Writes the hottest row takes per LFM executed on this tile.
  double hottest_writes_per_lfm() const {
    return lfm_count ? static_cast<double>(hottest_row_writes) /
                           static_cast<double>(lfm_count)
                     : 0.0;
  }

  /// Years until the hottest row exhausts `endurance_cycles`, at a
  /// sustained per-tile LFM rate.
  double projected_lifetime_years(double lfm_rate_hz,
                                  double endurance_cycles) const;
};

/// Analyze a tracked sub-array's per-row write counts against the zone
/// layout. `lfm_count` is the number of LFMs that produced the traffic.
/// Throws std::invalid_argument if tracking was not enabled.
EnduranceReport analyze_endurance(const SubArray& array,
                                  const ZoneLayout& layout,
                                  std::uint64_t lfm_count);

}  // namespace pim::hw
