// DPU-driven batch alignment on the PIM platform.
//
// The Digital Processing Unit of Fig. 3 "takes the reference genome-S and
// number of mismatches-z as the inputs and adjusts the controller unit to
// govern timing and data flow of the alignment task". PimBatchDriver is that
// role: it runs the two-stage pipeline (exact, then inexact with
// backtracking) for whole read batches on the in-memory primitives, and
// reports both alignment outcomes and the hardware op/energy tallies.
#pragma once

#include <cstdint>
#include <vector>

#include "src/align/aligner.h"
#include "src/pim/platform.h"

namespace pim::hw {

struct HwBatchReport {
  align::AlignerStats stats;                    ///< Stage outcomes per read.
  PimAlignerPlatform::AggregateStats hardware;  ///< Op tallies over the batch.
  /// Wall-model time: serial sum of sub-array busy time. The chip model
  /// converts this to throughput under the pipeline/parallelism model.
  double busy_ns = 0.0;
  double energy_pj = 0.0;
};

class PimBatchDriver {
 public:
  PimBatchDriver(PimAlignerPlatform& platform,
                 align::AlignerOptions options = {})
      : platform_(&platform), options_(options) {}

  /// Align one read: stage one exact (both strands), stage two inexact.
  align::AlignmentResult align(const std::vector<genome::Base>& read);

  /// Align a batch and report outcomes plus hardware tallies. Resets the
  /// platform's stats at entry so the report covers exactly this batch.
  HwBatchReport run(const std::vector<std::vector<genome::Base>>& reads);

  const align::AlignerOptions& options() const { return options_; }

 private:
  void collect_exact(const std::vector<genome::Base>& read,
                     align::Strand strand,
                     std::vector<align::AlignmentHit>& hits);
  void collect_inexact(const std::vector<genome::Base>& read,
                       align::Strand strand,
                       std::vector<align::AlignmentHit>& hits);

  PimAlignerPlatform* platform_;
  align::AlignerOptions options_;
};

}  // namespace pim::hw
