// NVSim-like timing / energy / area model (substitution for NVSim [17]).
//
// The paper's flow: device+circuit simulation produce per-operation scalars,
// NVSim maps the array organisation to latency/energy/area, and a behavioral
// simulator rolls them up per algorithm. This class is the middle layer: it
// is constructed from an NVSim-flavoured Config (`-Key: value`), exposes the
// per-operation costs the sub-array model charges, and the area roll-up that
// substantiates the "<10% of chip area" compute-support claim.
//
// Default scalars are calibrated for a 45 nm 2T1R SOT-MRAM process (the
// paper's NCSU PDK node) and documented inline; every value can be
// overridden through the Config, which is how the bench sweeps explore the
// design space.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/config.h"

namespace pim::hw {

/// Latency/energy of one sub-array-level operation across a full row
/// (256 bit-lines) unless stated otherwise.
struct OpCost {
  double latency_ns = 0.0;
  double energy_pj = 0.0;

  OpCost operator+(const OpCost& other) const {
    return {latency_ns + other.latency_ns, energy_pj + other.energy_pj};
  }
  OpCost operator*(double k) const { return {latency_ns * k, energy_pj * k}; }
};

enum class SubArrayOp : std::uint8_t {
  kMemRead,      ///< MEM: single-row sense (C_M branch).
  kMemWrite,     ///< Row write through the write drivers.
  kTripleSense,  ///< 3-row parallel sense: AND3/MAJ/OR3/XOR3 (and XNOR2 with
                 ///< an all-ones init row), single memory cycle.
  kDpuWord,      ///< DPU-side processing of one 256-bit row (popcount,
                 ///< compare, pointer update); pipelined CMOS logic.
};

class TimingEnergyModel {
 public:
  /// Builds from the defaults overlaid with `overrides`.
  explicit TimingEnergyModel(const util::Config& overrides = {});

  /// The full default configuration (all keys, default values) — the
  /// starting point for sweeps and the documentation of record.
  static util::Config default_config();

  OpCost op_cost(SubArrayOp op) const;

  /// Bit-serial in-memory add of `bits`-wide operands: per bit
  /// `AddSensesPerBit` triple senses (1 for PIM-Aligner's three-sub-SA
  /// single-cycle Sum+Carry; 2 for the AlignS-style two-sub-SA scheme) plus
  /// write-back of the sum and carry rows.
  OpCost im_add_cost(std::uint32_t bits = 32) const;

  /// Sense cycles per adder bit (see AddSensesPerBit).
  std::uint32_t add_senses_per_bit() const { return add_senses_per_bit_; }

  /// XNOR_Match over one BWT row: one triple sense (XNOR2 via init row)
  /// produces the 256-bit match vector; the DPU consumes it in one word op.
  OpCost xnor_match_cost() const;

  // --- Array organisation -------------------------------------------------
  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  double clock_ghz() const { return clock_ghz_; }

  // --- Area model ---------------------------------------------------------
  /// Area of one computational sub-array including peripherals (mm^2).
  double subarray_area_mm2() const;
  /// Area of a conventional (memory-only) sub-array (mm^2).
  double memory_subarray_area_mm2() const;
  /// Fraction of sub-array area added by compute support (extra reference
  /// branches, third sub-SA, control transistors) — the "<10%" claim.
  double compute_area_overhead_fraction() const;

  // --- Static power -------------------------------------------------------
  double leakage_w_per_subarray() const { return leakage_uw_ * 1e-6; }

  const util::Config& config() const { return config_; }

 private:
  util::Config config_;
  std::uint32_t rows_ = 512;
  std::uint32_t cols_ = 256;
  double clock_ghz_ = 1.0;
  OpCost read_, write_, triple_, dpu_;
  double cell_area_f2_ = 50.0;
  double technology_nm_ = 45.0;
  double peripheral_overhead_ = 0.35;
  double compute_overhead_ = 0.08;
  double leakage_uw_ = 20.0;
  std::uint32_t add_senses_per_bit_ = 1;
};

}  // namespace pim::hw
