// A fleet of simulated SOT-MRAM chips behind one ShardedEngine (S38).
//
// The paper evaluates PIM-Aligner at chip scale; PimChipFleet builds that
// configuration for the simulator: N independent PimAlignerPlatform
// instances over one shared FM-index (each chip owns its tiles, DPU
// registers, and op/energy tallies) wrapped in N PimEngines and exposed as
// a single align::ShardedEngine. A batch fanned through engine() runs one
// contiguous read range per chip — concurrently, since the chips share no
// mutable state — and results stitch back bit-identical to a single-chip
// (or pure software) run.
//
// The fleet streams (S39): engine().align_batch_chunked forwards each chip's
// completed range to a ChunkSink as soon as it and all lower-indexed chips
// finish, so a StreamingPipeline over the fleet emits SAM records while
// later chips are still aligning. Passing ShardedOptions{.rebalance = true}
// at construction reweights the per-chip boundaries between batches from
// the measured wall-time skew (see accel::rebalanced_shard_weights for the
// externally driven form).
//
// Per-chip hardware tallies survive the run: chip_stats(i) reports chip i's
// LFM calls, sub-array ops, and energy for exactly the reads it was routed,
// which accel/measured_load.h converts into measured (rather than assumed)
// chip/contention-model load.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/align/sharded_engine.h"
#include "src/obs/metrics.h"
#include "src/pim/pim_engine.h"
#include "src/pim/platform.h"

namespace pim::hw {

class PimChipFleet {
 public:
  /// Builds `num_chips` platforms over `fm` (all chips hold the full index,
  /// as the paper's chips each hold the full reference slice mapping).
  /// `fm` and `timing` must outlive the fleet.
  PimChipFleet(const index::FmIndex& fm, const TimingEnergyModel& timing,
               std::size_t num_chips, align::AlignerOptions options = {},
               ZoneLayout layout = {},
               AddPlacement placement = AddPlacement::kMethodI,
               align::ShardedOptions sharding = {});

  /// The fleet as one AlignmentEngine: align_batch fans out across chips.
  align::ShardedEngine& engine() { return *sharded_; }
  const align::ShardedEngine& engine() const { return *sharded_; }

  std::size_t num_chips() const { return engines_.size(); }
  PimAlignerPlatform& chip(std::size_t i) { return *platforms_[i]; }
  const PimAlignerPlatform& chip(std::size_t i) const {
    return *platforms_[i];
  }

  /// Chip i's hardware op/energy tallies since the last reset_stats().
  PimAlignerPlatform::AggregateStats chip_stats(std::size_t i) const {
    return platforms_[i]->aggregate_stats();
  }
  /// Clears every chip's hardware tallies (call between measured batches).
  void reset_stats();

  /// Publishes each chip's current hardware tallies into `registry` (S40):
  /// per-chip "chip.<i>.cycles" (busy_ns x model clock), ".energy_pj",
  /// ".lfm_calls", ".sa_reads" gauges plus fleet-level "fleet.chips",
  /// "fleet.cycles", "fleet.energy_pj", "fleet.lfm_calls" roll-ups — the
  /// per-chip feed for the chips-vs-throughput curve (Fig. 8-10 style
  /// fleet-scale reporting). Gauges, not counters: they snapshot the
  /// resettable tallies, so a reset_stats() between measured batches shows
  /// through. Call after a run (tallies are read unsynchronized, and chips
  /// write them while aligning).
  void publish_metrics(obs::MetricsRegistry& registry) const;

 private:
  std::vector<std::unique_ptr<PimAlignerPlatform>> platforms_;
  std::vector<std::unique_ptr<PimEngine>> engines_;
  std::unique_ptr<align::ShardedEngine> sharded_;
  const TimingEnergyModel* timing_ = nullptr;
};

}  // namespace pim::hw
