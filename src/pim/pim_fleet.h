// A fleet of simulated SOT-MRAM chips behind one ShardedEngine (S38).
//
// The paper evaluates PIM-Aligner at chip scale; PimChipFleet builds that
// configuration for the simulator: N independent PimAlignerPlatform
// instances over one shared FM-index (each chip owns its tiles, DPU
// registers, and op/energy tallies) wrapped in N PimEngines and exposed as
// a single align::ShardedEngine. A batch fanned through engine() runs one
// contiguous read range per chip — concurrently, since the chips share no
// mutable state — and results stitch back bit-identical to a single-chip
// (or pure software) run.
//
// The fleet streams (S39): engine().align_batch_chunked forwards each chip's
// completed range to a ChunkSink as soon as it and all lower-indexed chips
// finish, so a StreamingPipeline over the fleet emits SAM records while
// later chips are still aligning. Passing ShardedOptions{.rebalance = true}
// at construction reweights the per-chip boundaries between batches from
// the measured wall-time skew (see accel::rebalanced_shard_weights for the
// externally driven form).
//
// The fleet pays for its data (S43): reads no longer teleport into the
// sub-arrays. Every generation (one align_batch / align_batch_chunked call),
// each chip's shard is charged host->chip staging time by the TransferModel
// — 2-bit-packed payload bytes over the per-chip link, plus the per-batch
// serialization cost, with wire energy priced via the off-chip interconnect
// constants — BEFORE its modeled compute. With TransferOptions::
// double_buffer (the default), generation N+1's staging overlaps generation
// N's compute on a per-chip StagingTimeline, and the residual stall (the
// part of staging compute could not hide, including the generation-0
// pipeline fill) is what transfer_report() and the fleet.transfer.* series
// surface. Both operating points are therefore honest: compute-bound when
// the link keeps up, transfer-bound when it does not.
//
// Per-chip hardware tallies survive the run: chip_stats(i) reports chip i's
// LFM calls, sub-array ops, and energy for exactly the reads it was routed,
// which accel/measured_load.h converts into measured (rather than assumed)
// chip/contention-model load. chip_stats and publish_metrics read the
// chips' seqlock-published snapshots (each chip's driving thread publishes
// at read boundaries), so scraping a LIVE fleet — a PeriodicReporter mid-
// align_batch — is race-free; before S43 the header documented the
// opposite, and TSan agreed.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/align/sharded_engine.h"
#include "src/obs/metrics.h"
#include "src/pim/pim_engine.h"
#include "src/pim/platform.h"
#include "src/pim/transfer.h"
#include "src/util/seqlock.h"

namespace pim::hw {

/// Host->chip staging configuration for the fleet (S43).
struct TransferOptions {
  /// Model staging at all. Off disables the charge (the pre-S43 teleport
  /// fiction) — useful only for isolating the compute model in ablations.
  bool enabled = true;
  /// Stage generation N+1 while generation N computes (two landing buffers
  /// per chip). false = one buffer: every generation pays transfer + compute
  /// serially — the counterfactual the bench sweep compares against.
  bool double_buffer = true;
  /// TransferModel / InterconnectModel overrides (HostLinkBandwidthGBs,
  /// BatchSerializationNs, PerReadHeaderBytes, OffChipWord*).
  util::Config config;
};

/// One chip's accumulated transfer tallies (resettable via reset_stats()).
/// Trivially copyable: published through a seqlock for mid-run scraping.
struct ChipTransferStats {
  std::uint64_t generations = 0;   ///< Staged shards (zero-read shards skip).
  std::uint64_t staged_bytes = 0;
  std::uint64_t staged_words = 0;
  double staging_ns = 0.0;         ///< Serialization + wire time, summed.
  double serialization_ns = 0.0;
  double energy_pj = 0.0;          ///< Off-chip wire energy.
  double compute_ns = 0.0;         ///< Modeled chip busy time (busy_ns delta).
  double stall_ns = 0.0;           ///< Compute idle waiting on staging.
  double makespan_ns = 0.0;        ///< Overlapped end-to-end modeled time.
  double serial_ns = 0.0;          ///< Non-overlapped sum(transfer + compute).
};

/// Fleet-level transfer roll-up. Chips run concurrently, so the fleet's
/// end-to-end figures are the max over chips; byte/energy/stall tallies sum.
struct TransferReport {
  std::vector<ChipTransferStats> chips;
  std::uint64_t generations = 0;   ///< Fleet generations (align_batch calls).
  std::uint64_t staged_bytes = 0;
  double staging_ns = 0.0;
  double energy_pj = 0.0;
  double compute_ns = 0.0;
  double stall_ns = 0.0;
  /// Modeled end-to-end time with the configured buffering: slowest chip's
  /// pipeline makespan.
  double overlapped_ns = 0.0;
  /// The non-overlapped counterfactual: slowest chip's transfer + compute
  /// sum. double_buffer makes overlapped_ns strictly smaller once >= 2
  /// generations overlap (asserted in bench/engine_throughput).
  double serial_ns = 0.0;
  /// Fraction of staging time hidden under compute: 1 - stall/staging
  /// (0 when nothing was staged; the generation-0 fill keeps it < 1).
  double overlap_ratio = 0.0;
};

class PimChipFleet {
 public:
  /// Builds `num_chips` platforms over `fm` (all chips hold the full index,
  /// as the paper's chips each hold the full reference slice mapping).
  /// `fm` and `timing` must outlive the fleet.
  PimChipFleet(const index::FmIndex& fm, const TimingEnergyModel& timing,
               std::size_t num_chips, align::AlignerOptions options = {},
               ZoneLayout layout = {},
               AddPlacement placement = AddPlacement::kMethodI,
               align::ShardedOptions sharding = {},
               TransferOptions transfer = {});
  ~PimChipFleet();

  /// The fleet as one AlignmentEngine: align_batch fans out across chips,
  /// charging each chip's host->chip staging (S43) around the fan-out.
  /// (Out of line: FleetEngine is incomplete here.)
  align::ShardedEngine& engine();
  const align::ShardedEngine& engine() const;

  std::size_t num_chips() const { return engines_.size(); }
  PimAlignerPlatform& chip(std::size_t i) { return *platforms_[i]; }
  const PimAlignerPlatform& chip(std::size_t i) const {
    return *platforms_[i];
  }

  /// Chip i's hardware op/energy tallies since the last reset_stats().
  /// Reads the chip's seqlock-published snapshot, so it is safe while the
  /// fleet is aligning (values are then at most one read stale; exact at
  /// quiescence).
  PimAlignerPlatform::AggregateStats chip_stats(std::size_t i) const {
    return platforms_[i]->stats_snapshot();
  }
  /// Clears every chip's hardware and transfer tallies (call between
  /// measured batches; not concurrently with a running align_batch).
  void reset_stats();

  const TransferOptions& transfer_options() const { return transfer_options_; }
  const TransferModel& transfer_model() const { return transfer_model_; }

  /// Accumulated staging/overlap accounting since the last reset_stats().
  /// Safe to call while the fleet is aligning (seqlock-published, like
  /// chip_stats); deterministic across reruns — it is built from byte
  /// counts and modeled busy_ns, never wall clock.
  TransferReport transfer_report() const;

  /// Publishes each chip's current hardware tallies into `registry` (S40):
  /// per-chip "chip.<i>.cycles" (busy_ns x model clock), ".energy_pj",
  /// ".lfm_calls", ".sa_reads" gauges plus fleet-level "fleet.chips",
  /// "fleet.cycles", "fleet.energy_pj", "fleet.lfm_calls" roll-ups — the
  /// per-chip feed for the chips-vs-throughput curve (Fig. 8-10 style
  /// fleet-scale reporting). S43 adds the transfer series: fleet-level
  /// "fleet.transfer.{generations,staged_bytes,staging_ns,energy_pj,
  /// compute_ns,stall_ns,overlapped_ns,serial_ns,overlap_ratio}" and
  /// per-chip "fleet.transfer.chip.<i>.{staged_bytes,staging_ns,stall_ns}".
  /// Gauges, not counters: they snapshot the resettable tallies, so a
  /// reset_stats() between measured batches shows through. Safe to call
  /// WHILE chips are aligning (S43): every tally crosses threads through a
  /// seqlock, covered under TSan in tests/test_transfer.cpp.
  void publish_metrics(obs::MetricsRegistry& registry) const;

 private:
  class FleetEngine;  // ShardedEngine + per-generation staging charge.

  /// Writer-side per-chip transfer state (touched only by the engine's
  /// driving thread) plus the seqlock the readers scrape.
  struct ChipTransferState {
    StagingTimeline timeline;
    ChipTransferStats tally;
    util::Seqlock<ChipTransferStats> published;

    explicit ChipTransferState(bool double_buffer) : timeline(double_buffer) {}
  };

  /// Called by FleetEngine around each generation (driver thread only).
  void charge_generation(const align::ReadBatch& batch, std::size_t begin,
                         const std::vector<std::size_t>& bounds);

  std::vector<std::unique_ptr<PimAlignerPlatform>> platforms_;
  std::vector<std::unique_ptr<PimEngine>> engines_;
  std::unique_ptr<FleetEngine> sharded_;
  const TimingEnergyModel* timing_ = nullptr;
  TransferOptions transfer_options_;
  TransferModel transfer_model_;
  std::vector<std::unique_ptr<ChipTransferState>> transfer_state_;
  /// busy_ns at the previous generation boundary, per chip — the delta is
  /// the generation's modeled compute time.
  std::vector<double> busy_baseline_ns_;
  std::atomic<std::uint64_t> fleet_generations_{0};
};

}  // namespace pim::hw
