#include "src/pim/transfer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace pim::hw {

namespace {

double checked_double(const util::Config& cfg, const std::string& key,
                      bool strictly_positive) {
  const double value = cfg.get_double(key);
  if (!std::isfinite(value) ||
      (strictly_positive ? value <= 0.0 : value < 0.0)) {
    throw std::invalid_argument(
        "TransferModel: bad constant " + key + " = " + std::to_string(value) +
        (strictly_positive ? " (need finite > 0)" : " (need finite >= 0)"));
  }
  return value;
}

}  // namespace

util::Config TransferModel::default_config() {
  // Per-chip staging link, DDR/PCIe-class:
  //  * HostLinkBandwidthGBs: sustained per-chip host->chip bandwidth. The
  //    UPMEM study measures ~16 GB/s aggregate host->DPU copy bandwidth on
  //    a loaded rank; we give each chip that class of link (1 GB/s ==
  //    1 byte/ns, so the unit doubles as bytes-per-ns).
  //  * BatchSerializationNs: fixed cost per staged shard — driver call,
  //    scatter-gather setup, DMA descriptor ring. ~1.5 us is the floor the
  //    UPMEM host library pays per rank copy.
  //  * PerReadHeaderBytes: the descriptor shipped with each read (length +
  //    slot id), on top of the 2-bit-packed bases.
  // InterconnectModel defaults ride along; its OffChip* keys price the
  // per-word wire energy.
  util::Config cfg = InterconnectModel::default_config();
  cfg.set_double("HostLinkBandwidthGBs", 16.0);
  cfg.set_double("BatchSerializationNs", 1500.0);
  cfg.set_int("PerReadHeaderBytes", 8);
  return cfg;
}

TransferModel::TransferModel(const util::Config& overrides)
    : interconnect_(overrides) {
  const util::Config cfg = default_config().merged_with(overrides);
  bandwidth_gbs_ =
      checked_double(cfg, "HostLinkBandwidthGBs", /*strictly_positive=*/true);
  serialization_ns_ =
      checked_double(cfg, "BatchSerializationNs", /*strictly_positive=*/false);
  const std::int64_t header = cfg.get_int("PerReadHeaderBytes");
  if (header < 0) {
    throw std::invalid_argument("TransferModel: PerReadHeaderBytes < 0");
  }
  per_read_header_bytes_ = static_cast<std::uint64_t>(header);
}

StagingCost TransferModel::staging_cost(std::uint64_t payload_bytes) const {
  StagingCost cost;
  if (payload_bytes == 0) return cost;  // no DMA issued: priced no-op
  cost.bytes = payload_bytes;
  cost.words = (payload_bytes + 3) / 4;
  cost.serialization_ns = serialization_ns_;
  // GB/s == bytes/ns, so wire time is a plain division.
  cost.wire_ns = static_cast<double>(payload_bytes) / bandwidth_gbs_;
  cost.latency_ns = cost.serialization_ns + cost.wire_ns;
  cost.energy_pj =
      interconnect_.transfer_cost(cost.words, HopLevel::kOffChip).energy_pj;
  return cost;
}

StagingTimeline::Generation StagingTimeline::advance(double transfer_ns,
                                                     double compute_ns) {
  Generation gen;
  if (double_buffer_) {
    // The landing buffer alternates; its previous occupant was generation
    // g-2, so staging waits on the link AND that compute finishing.
    gen.transfer_start_ns = std::max(transfer_end_, compute_end_g2_);
  } else {
    // One shared buffer: the chip reads from it while computing, so the
    // next staging cannot start until the previous compute is done.
    gen.transfer_start_ns = std::max(transfer_end_, compute_end_g1_);
  }
  gen.transfer_end_ns = gen.transfer_start_ns + transfer_ns;
  gen.compute_start_ns = std::max(compute_end_g1_, gen.transfer_end_ns);
  gen.stall_ns = gen.compute_start_ns - compute_end_g1_;
  gen.compute_end_ns = gen.compute_start_ns + compute_ns;

  transfer_end_ = gen.transfer_end_ns;
  compute_end_g2_ = compute_end_g1_;
  compute_end_g1_ = gen.compute_end_ns;
  serial_sum_ns_ += transfer_ns + compute_ns;
  ++generations_;
  return gen;
}

}  // namespace pim::hw
