// The PIM platform behind the unified AlignmentEngine interface (S37).
//
// PimEngine runs the same two-stage pipeline as align::SoftwareEngine, but
// every backward-extension step executes as MEM/XNOR_Match/IM_ADD operations
// on the simulated SOT-MRAM sub-arrays via PimBatchDriver — so batch
// front-ends (the chunked scheduler, SAM output, benches) swap backends
// without code changes, and the software/PIM bit-identical-results
// invariant is asserted at the engine seam (tests/test_engine.cpp).
//
// The engine reports thread_safe() == false: sub-array op/energy tallies
// are shared mutable state, so the scheduler runs PIM batches serially —
// which also matches the platform model (one DPU issuing commands).
#pragma once

#include "src/align/engine.h"
#include "src/pim/controller.h"
#include "src/pim/platform.h"

namespace pim::hw {

class PimEngine final : public align::AlignmentEngine {
 public:
  explicit PimEngine(PimAlignerPlatform& platform,
                     align::AlignerOptions options = {})
      : platform_(&platform), driver_(platform, options) {}

  std::string_view name() const override { return "pim-mram"; }
  bool thread_safe() const override { return false; }
  void align_range(const align::ReadBatch& batch, std::size_t begin,
                   std::size_t end, align::BatchResult& out) const override;

  /// Align a whole batch and report alignment outcomes plus the hardware
  /// op/energy tallies (resets the platform's stats at entry so the report
  /// covers exactly this batch) — the engine-layer equivalent of
  /// PimBatchDriver::run.
  HwBatchReport run(const align::ReadBatch& batch,
                    align::BatchResult& out) const;

  PimAlignerPlatform& platform() const { return *platform_; }
  const align::AlignerOptions& options() const { return driver_.options(); }

 private:
  PimAlignerPlatform* platform_;
  /// The DPU role is logically device state; align_range stays const so the
  /// engine satisfies the (thread-compatible) interface contract.
  mutable PimBatchDriver driver_;
};

}  // namespace pim::hw
