// Pipeline / parallelism-degree model (Section V "Pipeline Design", Fig. 7).
//
// One LFM iteration decomposes into the stages of Fig. 7:
//   XNOR_Match -> DPU popcount -> count transpose (MEM writes) -> IM_ADD
//   -> result readout (MEM reads) -> index update (DPU)
// Vertical (bit-line) operations are column-batched: one 32-row vertical
// write/add/read services up to `add_batch_columns` independent LFMs whose
// checkpoints map to different columns, so their per-LFM cost is the row
// cost divided by the batch factor — this is the "massive data-parallel"
// property of the sub-array.
//
// Parallelism degree Pd = sub-arrays per pipeline group (method-II
// duplication):
//   Pd=1  method-I: every stage serialises on the single sub-array.
//   Pd=2  the comparison sub-array is freed while the duplicate runs IM_ADD
//         (exactly Fig. 7): initiation interval = max(stage-resource times).
//   Pd=3  a third duplicate takes the data-movement stages (transpose +
//         readout) off the add array.
//   Pd>3  further duplicates replicate the XNOR resource; the add chain is
//         a carry-serial loop and cannot split further, so gains saturate —
//         the diminishing returns visible in the paper's Fig. 9c.
#pragma once

#include <cstdint>

#include "src/pim/timing_energy.h"

namespace pim::hw {

struct PipelineConfig {
  /// Independent LFMs sharing one vertical (32-row) operation batch.
  std::uint32_t add_batch_columns = 16;
  /// DPU words to absorb a 256-bit match vector into the embedded counter
  /// (streamed 128 bits per word through the paired popcount tree).
  std::uint32_t dpu_words_per_match = 2;
  /// DPU words for the interval compare / pointer update / reissue.
  std::uint32_t dpu_words_per_update = 1;
  std::uint32_t marker_bits = 32;
};

struct StageTimes {
  double xnor_ns = 0.0;         ///< Triple sense of BWT row vs CRef.
  double dpu_ns = 0.0;          ///< Popcount + update (CMOS, off-array).
  double count_write_ns = 0.0;  ///< Transpose count_match (per-LFM share).
  double im_add_ns = 0.0;       ///< Bit-serial add (per-LFM share).
  double readout_ns = 0.0;      ///< Result MEM reads (per-LFM share).

  double array_work_ns() const {
    return xnor_ns + count_write_ns + im_add_ns + readout_ns;
  }
  double movement_ns() const { return count_write_ns + readout_ns; }
  double serial_ns() const { return array_work_ns() + dpu_ns; }
};

struct PipelineReport {
  std::uint32_t pd = 1;
  StageTimes stages;
  double serial_lfm_ns = 0.0;          ///< Method-I full-serial latency.
  double initiation_interval_ns = 0.0; ///< Steady-state time per LFM.
  double speedup = 1.0;                ///< serial / ii.
  double lfm_rate_per_group_hz = 0.0;  ///< 1 / ii.
  /// Data-movement share of the critical path — the platform's contribution
  /// to the Memory Bottleneck Ratio of Fig. 10b.
  double movement_fraction = 0.0;
  /// Group occupancy under Poisson read load with ~Pd reads resident per
  /// group: 1 - exp(-Pd). Feeds the Resource Utilization Ratio of Fig. 10c.
  double utilization = 0.0;
  /// Dynamic energy per LFM (pJ), including the duplication write traffic.
  double energy_per_lfm_pj = 0.0;
};

class PipelineModel {
 public:
  PipelineModel(const TimingEnergyModel& model, const PipelineConfig& config = {});

  StageTimes stage_times() const;
  PipelineReport evaluate(std::uint32_t pd) const;

  const PipelineConfig& config() const { return config_; }

 private:
  const TimingEnergyModel* model_;
  PipelineConfig config_;
};

}  // namespace pim::hw
