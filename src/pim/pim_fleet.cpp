#include "src/pim/pim_fleet.h"

#include <stdexcept>

namespace pim::hw {

PimChipFleet::PimChipFleet(const index::FmIndex& fm,
                           const TimingEnergyModel& timing,
                           std::size_t num_chips,
                           align::AlignerOptions options, ZoneLayout layout,
                           AddPlacement placement,
                           align::ShardedOptions sharding) {
  if (num_chips == 0) {
    throw std::invalid_argument("PimChipFleet: need at least one chip");
  }
  platforms_.reserve(num_chips);
  engines_.reserve(num_chips);
  std::vector<const align::AlignmentEngine*> shards;
  shards.reserve(num_chips);
  for (std::size_t c = 0; c < num_chips; ++c) {
    platforms_.push_back(
        std::make_unique<PimAlignerPlatform>(fm, timing, layout, placement));
    engines_.push_back(std::make_unique<PimEngine>(*platforms_[c], options));
    shards.push_back(engines_[c].get());
  }
  sharded_ = std::make_unique<align::ShardedEngine>(std::move(shards),
                                                    sharding);
}

void PimChipFleet::reset_stats() {
  for (auto& platform : platforms_) platform->reset_stats();
}

}  // namespace pim::hw
