#include "src/pim/pim_fleet.h"

#include <stdexcept>
#include <string>

namespace pim::hw {

PimChipFleet::PimChipFleet(const index::FmIndex& fm,
                           const TimingEnergyModel& timing,
                           std::size_t num_chips,
                           align::AlignerOptions options, ZoneLayout layout,
                           AddPlacement placement,
                           align::ShardedOptions sharding)
    : timing_(&timing) {
  if (num_chips == 0) {
    throw std::invalid_argument("PimChipFleet: need at least one chip");
  }
  platforms_.reserve(num_chips);
  engines_.reserve(num_chips);
  std::vector<const align::AlignmentEngine*> shards;
  shards.reserve(num_chips);
  for (std::size_t c = 0; c < num_chips; ++c) {
    platforms_.push_back(
        std::make_unique<PimAlignerPlatform>(fm, timing, layout, placement));
    engines_.push_back(std::make_unique<PimEngine>(*platforms_[c], options));
    shards.push_back(engines_[c].get());
  }
  sharded_ = std::make_unique<align::ShardedEngine>(std::move(shards),
                                                    sharding);
}

void PimChipFleet::reset_stats() {
  for (auto& platform : platforms_) platform->reset_stats();
}

void PimChipFleet::publish_metrics(obs::MetricsRegistry& registry) const {
  const double clock_ghz = timing_->clock_ghz();
  double fleet_cycles = 0.0;
  double fleet_energy_pj = 0.0;
  std::uint64_t fleet_lfm_calls = 0;
  for (std::size_t c = 0; c < platforms_.size(); ++c) {
    const PimAlignerPlatform::AggregateStats stats =
        platforms_[c]->aggregate_stats();
    // busy_ns is serial sub-array occupancy; at the model clock that is the
    // chip's cycle count for the routed reads.
    const double cycles = stats.ops.busy_ns * clock_ghz;
    const std::string prefix = "chip." + std::to_string(c) + ".";
    registry.gauge(prefix + "cycles").set(cycles);
    registry.gauge(prefix + "energy_pj").set(stats.ops.energy_pj);
    registry.gauge(prefix + "lfm_calls")
        .set(static_cast<double>(stats.lfm_calls));
    registry.gauge(prefix + "sa_reads")
        .set(static_cast<double>(stats.ops.reads));
    fleet_cycles += cycles;
    fleet_energy_pj += stats.ops.energy_pj;
    fleet_lfm_calls += stats.lfm_calls;
  }
  registry.gauge("fleet.chips").set(static_cast<double>(platforms_.size()));
  registry.gauge("fleet.cycles").set(fleet_cycles);
  registry.gauge("fleet.energy_pj").set(fleet_energy_pj);
  registry.gauge("fleet.lfm_calls").set(static_cast<double>(fleet_lfm_calls));
}

}  // namespace pim::hw
