#include "src/pim/pim_fleet.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pim::hw {

// ShardedEngine with the S43 staging charge bracketed around every
// generation. The partition is captured BEFORE the fan-out (rebalance may
// move the boundaries afterwards), the charge is settled after the join —
// on the single driving thread, so the busy_ns reads and seqlock stores
// are race-free by the ShardedEngine thread model.
class PimChipFleet::FleetEngine final : public align::ShardedEngine {
 public:
  FleetEngine(PimChipFleet* fleet,
              std::vector<const align::AlignmentEngine*> shards,
              align::ShardedOptions options)
      : align::ShardedEngine(std::move(shards), options), fleet_(fleet) {}

  std::string_view name() const override { return "pim-fleet"; }

  void align_range(const align::ReadBatch& batch, std::size_t begin,
                   std::size_t end, align::BatchResult& out) const override {
    const auto bounds = partition(end - begin);
    align::ShardedEngine::align_range(batch, begin, end, out);
    fleet_->charge_generation(batch, begin, bounds);
  }

  align::EngineStats align_batch_chunked(
      const align::ReadBatch& batch, std::size_t chunk_size,
      const align::ChunkSink& sink, bool best_hit_only) const override {
    const auto bounds = partition(batch.size());
    align::EngineStats stats = align::ShardedEngine::align_batch_chunked(
        batch, chunk_size, sink, best_hit_only);
    fleet_->charge_generation(batch, 0, bounds);
    return stats;
  }

 private:
  PimChipFleet* fleet_;
};

PimChipFleet::PimChipFleet(const index::FmIndex& fm,
                           const TimingEnergyModel& timing,
                           std::size_t num_chips,
                           align::AlignerOptions options, ZoneLayout layout,
                           AddPlacement placement,
                           align::ShardedOptions sharding,
                           TransferOptions transfer)
    : timing_(&timing),
      transfer_options_(std::move(transfer)),
      transfer_model_(transfer_options_.config) {
  if (num_chips == 0) {
    throw std::invalid_argument("PimChipFleet: need at least one chip");
  }
  platforms_.reserve(num_chips);
  engines_.reserve(num_chips);
  transfer_state_.reserve(num_chips);
  std::vector<const align::AlignmentEngine*> shards;
  shards.reserve(num_chips);
  for (std::size_t c = 0; c < num_chips; ++c) {
    platforms_.push_back(
        std::make_unique<PimAlignerPlatform>(fm, timing, layout, placement));
    engines_.push_back(std::make_unique<PimEngine>(*platforms_[c], options));
    shards.push_back(engines_[c].get());
    transfer_state_.push_back(std::make_unique<ChipTransferState>(
        transfer_options_.double_buffer));
  }
  busy_baseline_ns_.assign(num_chips, 0.0);
  sharded_ = std::make_unique<FleetEngine>(this, std::move(shards), sharding);
}

PimChipFleet::~PimChipFleet() = default;

align::ShardedEngine& PimChipFleet::engine() { return *sharded_; }
const align::ShardedEngine& PimChipFleet::engine() const { return *sharded_; }

void PimChipFleet::reset_stats() {
  for (auto& platform : platforms_) platform->reset_stats();
  for (auto& state : transfer_state_) {
    state->timeline.reset();
    state->tally = ChipTransferStats{};
    state->published.store(state->tally);
  }
  busy_baseline_ns_.assign(platforms_.size(), 0.0);
  fleet_generations_.store(0, std::memory_order_relaxed);
}

void PimChipFleet::charge_generation(const align::ReadBatch& batch,
                                     std::size_t begin,
                                     const std::vector<std::size_t>& bounds) {
  if (!transfer_options_.enabled) return;
  for (std::size_t c = 0; c < platforms_.size(); ++c) {
    // The shard's wire payload: 2-bit-packed bases + per-read descriptor.
    std::uint64_t bytes = 0;
    for (std::size_t i = begin + bounds[c]; i < begin + bounds[c + 1]; ++i) {
      bytes += transfer_model_.read_bytes(batch.read_length(i));
    }
    // The generation's modeled compute: this chip's busy_ns delta. The
    // driving threads have joined, so aggregate_stats() is exact here.
    const double busy_now = platforms_[c]->aggregate_stats().ops.busy_ns;
    const double compute_ns =
        std::max(0.0, busy_now - busy_baseline_ns_[c]);
    busy_baseline_ns_[c] = busy_now;
    if (bytes == 0 && compute_ns <= 0.0) continue;  // nothing staged or run

    const StagingCost cost = transfer_model_.staging_cost(bytes);
    ChipTransferState& state = *transfer_state_[c];
    const StagingTimeline::Generation gen =
        state.timeline.advance(cost.latency_ns, compute_ns);

    ChipTransferStats& tally = state.tally;
    ++tally.generations;
    tally.staged_bytes += cost.bytes;
    tally.staged_words += cost.words;
    tally.staging_ns += cost.latency_ns;
    tally.serialization_ns += cost.serialization_ns;
    tally.energy_pj += cost.energy_pj;
    tally.compute_ns += compute_ns;
    tally.stall_ns += gen.stall_ns;
    tally.makespan_ns = state.timeline.makespan_ns();
    tally.serial_ns = state.timeline.serial_sum_ns();
    state.published.store(tally);
  }
  fleet_generations_.fetch_add(1, std::memory_order_relaxed);
}

TransferReport PimChipFleet::transfer_report() const {
  TransferReport report;
  report.chips.reserve(transfer_state_.size());
  report.generations = fleet_generations_.load(std::memory_order_relaxed);
  for (const auto& state : transfer_state_) {
    const ChipTransferStats chip = state->published.load();
    report.staged_bytes += chip.staged_bytes;
    report.staging_ns += chip.staging_ns;
    report.energy_pj += chip.energy_pj;
    report.compute_ns += chip.compute_ns;
    report.stall_ns += chip.stall_ns;
    report.overlapped_ns = std::max(report.overlapped_ns, chip.makespan_ns);
    report.serial_ns = std::max(report.serial_ns, chip.serial_ns);
    report.chips.push_back(chip);
  }
  report.overlap_ratio =
      report.staging_ns > 0.0
          ? std::max(0.0, 1.0 - report.stall_ns / report.staging_ns)
          : 0.0;
  return report;
}

void PimChipFleet::publish_metrics(obs::MetricsRegistry& registry) const {
  const double clock_ghz = timing_->clock_ghz();
  double fleet_cycles = 0.0;
  double fleet_energy_pj = 0.0;
  std::uint64_t fleet_lfm_calls = 0;
  for (std::size_t c = 0; c < platforms_.size(); ++c) {
    // The seqlock-published snapshot, NOT the raw tallies: chips may be
    // aligning right now (S43).
    const PimAlignerPlatform::AggregateStats stats =
        platforms_[c]->stats_snapshot();
    // busy_ns is serial sub-array occupancy; at the model clock that is the
    // chip's cycle count for the routed reads.
    const double cycles = stats.ops.busy_ns * clock_ghz;
    const std::string prefix = "chip." + std::to_string(c) + ".";
    registry.gauge(prefix + "cycles").set(cycles);
    registry.gauge(prefix + "energy_pj").set(stats.ops.energy_pj);
    registry.gauge(prefix + "lfm_calls")
        .set(static_cast<double>(stats.lfm_calls));
    registry.gauge(prefix + "sa_reads")
        .set(static_cast<double>(stats.ops.reads));
    fleet_cycles += cycles;
    fleet_energy_pj += stats.ops.energy_pj;
    fleet_lfm_calls += stats.lfm_calls;
  }
  registry.gauge("fleet.chips").set(static_cast<double>(platforms_.size()));
  registry.gauge("fleet.cycles").set(fleet_cycles);
  registry.gauge("fleet.energy_pj").set(fleet_energy_pj);
  registry.gauge("fleet.lfm_calls").set(static_cast<double>(fleet_lfm_calls));

  // S43 transfer series (same snapshot discipline).
  const TransferReport transfer = transfer_report();
  for (std::size_t c = 0; c < transfer.chips.size(); ++c) {
    const ChipTransferStats& chip = transfer.chips[c];
    const std::string prefix =
        "fleet.transfer.chip." + std::to_string(c) + ".";
    registry.gauge(prefix + "staged_bytes")
        .set(static_cast<double>(chip.staged_bytes));
    registry.gauge(prefix + "staging_ns").set(chip.staging_ns);
    registry.gauge(prefix + "stall_ns").set(chip.stall_ns);
  }
  registry.gauge("fleet.transfer.generations")
      .set(static_cast<double>(transfer.generations));
  registry.gauge("fleet.transfer.staged_bytes")
      .set(static_cast<double>(transfer.staged_bytes));
  registry.gauge("fleet.transfer.staging_ns").set(transfer.staging_ns);
  registry.gauge("fleet.transfer.energy_pj").set(transfer.energy_pj);
  registry.gauge("fleet.transfer.compute_ns").set(transfer.compute_ns);
  registry.gauge("fleet.transfer.stall_ns").set(transfer.stall_ns);
  registry.gauge("fleet.transfer.overlapped_ns").set(transfer.overlapped_ns);
  registry.gauge("fleet.transfer.serial_ns").set(transfer.serial_ns);
  registry.gauge("fleet.transfer.overlap_ratio").set(transfer.overlap_ratio);
}

}  // namespace pim::hw
