#include "src/pim/timing_energy.h"

#include <stdexcept>

namespace pim::hw {

util::Config TimingEnergyModel::default_config() {
  // Calibration notes (45 nm, 2T1R SOT-MRAM, 512x256 sub-array):
  //  * read: SOT read is a single-reference resistive sense; 1 ns at this
  //    node with short local bit-lines, energy dominated by bit-line
  //    charging across 256 columns.
  //  * write: SOT switching is sub-ns; the driver-limited row write lands
  //    at 1 ns / 60 pJ, in line with published SOT macros.
  //  * triple sense: three cells in parallel shrink the sense margin to a
  //    few mV (Fig. 5b), so the triple-reference compare needs a longer
  //    integration window: 4 ns, with three sub-SAs burning compare energy.
  //  * DPU word op: 256-bit popcount/compare tree in CMOS at 1 GHz.
  util::Config cfg;
  cfg.set_int("RowsPerSubarray", 512);
  cfg.set_int("ColsPerSubarray", 256);
  cfg.set_double("ClockGHz", 1.0);
  cfg.set_double("ReadLatencyNs", 1.0);
  cfg.set_double("ReadEnergyPj", 18.0);
  cfg.set_double("WriteLatencyNs", 1.0);
  cfg.set_double("WriteEnergyPj", 60.0);
  cfg.set_double("TripleSenseLatencyNs", 4.0);
  cfg.set_double("TripleSenseEnergyPj", 30.0);
  // Adder style: PIM-Aligner's third sub-SA produces Sum and Carry in ONE
  // sense ("single-cycle"); the AlignS predecessor has two sub-SAs and
  // needs two sense cycles per bit. 1 = PIM-Aligner, 2 = AlignS-style.
  cfg.set_int("AddSensesPerBit", 1);
  cfg.set_double("DpuWordLatencyNs", 1.0);
  cfg.set_double("DpuWordEnergyPj", 6.0);
  cfg.set_double("CellAreaF2", 50.0);
  cfg.set_double("TechnologyNm", 45.0);
  cfg.set_double("PeripheralAreaOverhead", 0.35);
  cfg.set_double("ComputeAreaOverhead", 0.08);
  cfg.set_double("LeakagePowerUw", 20.0);
  return cfg;
}

TimingEnergyModel::TimingEnergyModel(const util::Config& overrides)
    : config_(default_config().merged_with(overrides)) {
  rows_ = static_cast<std::uint32_t>(config_.get_int("RowsPerSubarray"));
  cols_ = static_cast<std::uint32_t>(config_.get_int("ColsPerSubarray"));
  clock_ghz_ = config_.get_double("ClockGHz");
  read_ = {config_.get_double("ReadLatencyNs"),
           config_.get_double("ReadEnergyPj")};
  write_ = {config_.get_double("WriteLatencyNs"),
            config_.get_double("WriteEnergyPj")};
  triple_ = {config_.get_double("TripleSenseLatencyNs"),
             config_.get_double("TripleSenseEnergyPj")};
  dpu_ = {config_.get_double("DpuWordLatencyNs"),
          config_.get_double("DpuWordEnergyPj")};
  cell_area_f2_ = config_.get_double("CellAreaF2");
  technology_nm_ = config_.get_double("TechnologyNm");
  peripheral_overhead_ = config_.get_double("PeripheralAreaOverhead");
  compute_overhead_ = config_.get_double("ComputeAreaOverhead");
  leakage_uw_ = config_.get_double("LeakagePowerUw");
  add_senses_per_bit_ =
      static_cast<std::uint32_t>(config_.get_int_or("AddSensesPerBit", 1));
  if (add_senses_per_bit_ == 0) {
    throw std::invalid_argument("TimingEnergyModel: AddSensesPerBit must be > 0");
  }
  if (rows_ == 0 || cols_ == 0 || clock_ghz_ <= 0.0) {
    throw std::invalid_argument("TimingEnergyModel: bad array organisation");
  }
}

OpCost TimingEnergyModel::op_cost(SubArrayOp op) const {
  switch (op) {
    case SubArrayOp::kMemRead: return read_;
    case SubArrayOp::kMemWrite: return write_;
    case SubArrayOp::kTripleSense: return triple_;
    case SubArrayOp::kDpuWord: return dpu_;
  }
  throw std::invalid_argument("TimingEnergyModel: unknown op");
}

OpCost TimingEnergyModel::im_add_cost(std::uint32_t bits) const {
  // Per bit: `add_senses_per_bit_` triple senses yield Sum (XOR3) and
  // Carry (MAJ) — one for PIM-Aligner's three-sub-SA design, two for the
  // AlignS-style two-sub-SA scheme — plus write-back of the sum row and
  // the carry row for the next bit. The leading write clears the carry row.
  return (triple_ * static_cast<double>(add_senses_per_bit_) +
          write_ * 2.0) *
             static_cast<double>(bits) +
         write_;
}

OpCost TimingEnergyModel::xnor_match_cost() const {
  return triple_ + dpu_;
}

double TimingEnergyModel::memory_subarray_area_mm2() const {
  const double f_um = technology_nm_ * 1e-3;
  const double cell_um2 = cell_area_f2_ * f_um * f_um;
  const double cells_um2 =
      cell_um2 * static_cast<double>(rows_) * static_cast<double>(cols_);
  return cells_um2 * (1.0 + peripheral_overhead_) * 1e-6;
}

double TimingEnergyModel::subarray_area_mm2() const {
  return memory_subarray_area_mm2() * (1.0 + compute_overhead_);
}

double TimingEnergyModel::compute_area_overhead_fraction() const {
  return compute_overhead_;
}

}  // namespace pim::hw
