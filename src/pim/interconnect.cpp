#include "src/pim/interconnect.h"

#include <stdexcept>

namespace pim::hw {

util::Config InterconnectModel::default_config() {
  // 45 nm, CACTI/NVSim-class wire numbers for a DRAM-style hierarchy:
  //  * intra-bank: short local bus shared by ~16 sub-arrays;
  //  * inter-bank: the chip H-tree, several mm of global wire;
  //  * off-chip: DDR-class I/O energy (~15-20 pJ/bit at this node) — the
  //    cost the PIM premise avoids for everything but query streaming.
  util::Config cfg;
  cfg.set_double("IntraBankWordLatencyNs", 2.0);
  cfg.set_double("IntraBankWordEnergyPj", 8.0);
  cfg.set_double("InterBankWordLatencyNs", 6.0);
  cfg.set_double("InterBankWordEnergyPj", 35.0);
  cfg.set_double("OffChipWordLatencyNs", 12.0);
  cfg.set_double("OffChipWordEnergyPj", 520.0);  // ~16 pJ/bit x 32
  return cfg;
}

InterconnectModel::InterconnectModel(const util::Config& overrides) {
  const util::Config cfg = default_config().merged_with(overrides);
  intra_bank_ = {cfg.get_double("IntraBankWordLatencyNs"),
                 cfg.get_double("IntraBankWordEnergyPj")};
  inter_bank_ = {cfg.get_double("InterBankWordLatencyNs"),
                 cfg.get_double("InterBankWordEnergyPj")};
  off_chip_ = {cfg.get_double("OffChipWordLatencyNs"),
               cfg.get_double("OffChipWordEnergyPj")};
  for (const auto* c : {&intra_bank_, &inter_bank_, &off_chip_}) {
    if (c->latency_ns <= 0.0 || c->energy_pj < 0.0) {
      throw std::invalid_argument("InterconnectModel: bad constants");
    }
  }
}

OpCost InterconnectModel::transfer_cost(std::uint64_t words,
                                        HopLevel level) const {
  const OpCost* per_word = nullptr;
  switch (level) {
    case HopLevel::kIntraBank: per_word = &intra_bank_; break;
    case HopLevel::kInterBank: per_word = &inter_bank_; break;
    case HopLevel::kOffChip: per_word = &off_chip_; break;
  }
  return *per_word * static_cast<double>(words);
}

double InterconnectModel::words_per_ns(HopLevel level) const {
  return 1.0 / transfer_cost(1, level).latency_ns;
}

}  // namespace pim::hw
