#include "src/pim/interconnect.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace pim::hw {

namespace {

/// Per-key validation so a bad override is rejected with the offending key
/// named, whether it arrives through the merged ctor path or any future
/// construction route. Latencies must be finite and strictly positive
/// (words_per_ns divides by them); energies finite and non-negative. Note
/// NaN fails both `<= 0` and `< 0` comparisons, so the pre-S43 checks let
/// a NaN override through — hence std::isfinite here.
double checked(const util::Config& cfg, const std::string& key,
               bool is_latency) {
  const double value = cfg.get_double(key);
  if (!std::isfinite(value) || (is_latency ? value <= 0.0 : value < 0.0)) {
    throw std::invalid_argument(
        "InterconnectModel: bad constant " + key + " = " +
        std::to_string(value) +
        (is_latency ? " (need finite > 0)" : " (need finite >= 0)"));
  }
  return value;
}

OpCost checked_cost(const util::Config& cfg, const std::string& level) {
  return {checked(cfg, level + "WordLatencyNs", /*is_latency=*/true),
          checked(cfg, level + "WordEnergyPj", /*is_latency=*/false)};
}

}  // namespace

util::Config InterconnectModel::default_config() {
  // 45 nm, CACTI/NVSim-class wire numbers for a DRAM-style hierarchy:
  //  * intra-bank: short local bus shared by ~16 sub-arrays;
  //  * inter-bank: the chip H-tree, several mm of global wire;
  //  * off-chip: DDR-class I/O energy (~15-20 pJ/bit at this node) — the
  //    cost the PIM premise avoids for everything but query streaming.
  util::Config cfg;
  cfg.set_double("IntraBankWordLatencyNs", 2.0);
  cfg.set_double("IntraBankWordEnergyPj", 8.0);
  cfg.set_double("InterBankWordLatencyNs", 6.0);
  cfg.set_double("InterBankWordEnergyPj", 35.0);
  cfg.set_double("OffChipWordLatencyNs", 12.0);
  cfg.set_double("OffChipWordEnergyPj", 520.0);  // ~16 pJ/bit x 32
  return cfg;
}

InterconnectModel::InterconnectModel(const util::Config& overrides) {
  const util::Config cfg = default_config().merged_with(overrides);
  intra_bank_ = checked_cost(cfg, "IntraBank");
  inter_bank_ = checked_cost(cfg, "InterBank");
  off_chip_ = checked_cost(cfg, "OffChip");
}

OpCost InterconnectModel::transfer_cost(std::uint64_t words,
                                        HopLevel level) const {
  if (words == 0) return OpCost{};  // priced no-op, exactly zero
  const OpCost* per_word = nullptr;
  switch (level) {
    case HopLevel::kIntraBank: per_word = &intra_bank_; break;
    case HopLevel::kInterBank: per_word = &inter_bank_; break;
    case HopLevel::kOffChip: per_word = &off_chip_; break;
  }
  return *per_word * static_cast<double>(words);
}

double InterconnectModel::words_per_ns(HopLevel level) const {
  return 1.0 / transfer_cost(1, level).latency_ns;
}

}  // namespace pim::hw
