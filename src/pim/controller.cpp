#include "src/pim/controller.h"

#include <algorithm>
#include <map>

namespace pim::hw {

void PimBatchDriver::collect_exact(const std::vector<genome::Base>& read,
                                   align::Strand strand,
                                   std::vector<align::AlignmentHit>& hits) {
  const align::ExactResult result = platform_->exact_align(read);
  if (!result.found()) return;
  for (const auto pos : platform_->locate_all(result.interval)) {
    hits.push_back(align::AlignmentHit{pos, 0, strand});
    if (options_.max_hits != 0 && hits.size() >= options_.max_hits) return;
  }
}

void PimBatchDriver::collect_inexact(const std::vector<genome::Base>& read,
                                     align::Strand strand,
                                     std::vector<align::AlignmentHit>& hits) {
  const align::InexactResult result =
      platform_->inexact_align(read, options_.inexact);
  // Deduplicate positions across intervals, keeping the minimum diff count,
  // mirroring align::inexact_locate.
  std::map<std::uint64_t, std::uint32_t> by_position;
  for (const auto& hit : result.hits) {
    for (const auto pos : platform_->locate_all(hit.interval)) {
      const auto it = by_position.find(pos);
      if (it == by_position.end()) {
        by_position.emplace(pos, hit.diffs);
      } else {
        it->second = std::min(it->second, hit.diffs);
      }
    }
  }
  for (const auto& [pos, diffs] : by_position) {
    hits.push_back(align::AlignmentHit{pos, diffs, strand});
    if (options_.max_hits != 0 && hits.size() >= options_.max_hits) return;
  }
}

align::AlignmentResult PimBatchDriver::align(
    const std::vector<genome::Base>& read) {
  align::AlignmentResult result;
  collect_exact(read, align::Strand::kForward, result.hits);
  if (options_.try_reverse_complement &&
      (options_.max_hits == 0 || result.hits.size() < options_.max_hits)) {
    collect_exact(genome::reverse_complement(read),
                  align::Strand::kReverseComplement, result.hits);
  }
  if (!result.hits.empty()) {
    result.stage = align::AlignmentStage::kExact;
  } else if (options_.inexact.max_diffs > 0) {
    collect_inexact(read, align::Strand::kForward, result.hits);
    if (options_.try_reverse_complement &&
        (options_.max_hits == 0 || result.hits.size() < options_.max_hits)) {
      collect_inexact(genome::reverse_complement(read),
                      align::Strand::kReverseComplement, result.hits);
    }
    if (!result.hits.empty()) {
      result.stage = align::AlignmentStage::kInexact;
    }
  }
  std::sort(result.hits.begin(), result.hits.end(),
            [](const align::AlignmentHit& a, const align::AlignmentHit& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.diffs < b.diffs;
            });
  return result;
}

HwBatchReport PimBatchDriver::run(
    const std::vector<std::vector<genome::Base>>& reads) {
  platform_->reset_stats();
  HwBatchReport report;
  for (const auto& read : reads) {
    const align::AlignmentResult result = align(read);
    ++report.stats.reads_total;
    switch (result.stage) {
      case align::AlignmentStage::kExact: ++report.stats.reads_exact; break;
      case align::AlignmentStage::kInexact:
        ++report.stats.reads_inexact;
        break;
      case align::AlignmentStage::kUnaligned:
        ++report.stats.reads_unaligned;
        break;
    }
  }
  report.hardware = platform_->aggregate_stats();
  report.busy_ns = report.hardware.ops.busy_ns;
  report.energy_pj = report.hardware.ops.energy_pj;
  return report;
}

}  // namespace pim::hw
