// Sub-array command tracing.
//
// The controller (Ctrl) of Fig. 4a drives each sub-array with a command
// stream (row activations, reference-branch selects, write enables). This
// module captures that stream from the functional model: every MEM read/
// write, triple sense and DPU word op is appended to an attachable trace.
// Uses:
//   * golden-trace tests — assert the LFM procedure issues exactly the
//     command sequence of Section V (XNOR_Match, transpose, 32x add cycle,
//     readout), catching protocol regressions the result-level tests miss;
//   * debugging and the trace-dump example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/pim/subarray.h"

namespace pim::hw {

struct TraceEntry {
  SubArrayOp op = SubArrayOp::kMemRead;
  /// Activated rows: 1 for MEM ops, 3 for triple senses, 0 for DPU ops.
  std::uint32_t rows[3] = {0, 0, 0};
  std::uint32_t row_count = 0;

  std::string to_string() const;
  bool operator==(const TraceEntry&) const = default;
};

/// A bounded command trace. When the capacity is reached the trace stops
/// recording and sets `overflowed` (it never drops the head: the prefix is
/// what golden tests compare against).
class CommandTrace {
 public:
  explicit CommandTrace(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  void record(SubArrayOp op, std::initializer_list<std::uint32_t> rows);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  bool overflowed() const { return overflowed_; }
  void clear();

  /// Count of entries with the given op.
  std::size_t count(SubArrayOp op) const;

  /// Render as one line per command.
  std::string to_string() const;

 private:
  std::size_t capacity_;
  std::vector<TraceEntry> entries_;
  bool overflowed_ = false;
};

}  // namespace pim::hw
