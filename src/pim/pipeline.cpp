#include "src/pim/pipeline.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pim::hw {

PipelineModel::PipelineModel(const TimingEnergyModel& model,
                             const PipelineConfig& config)
    : model_(&model), config_(config) {
  if (config_.add_batch_columns == 0) {
    throw std::invalid_argument("PipelineModel: batch factor must be > 0");
  }
}

StageTimes PipelineModel::stage_times() const {
  const double batch = static_cast<double>(config_.add_batch_columns);
  const OpCost read = model_->op_cost(SubArrayOp::kMemRead);
  const OpCost write = model_->op_cost(SubArrayOp::kMemWrite);
  const OpCost triple = model_->op_cost(SubArrayOp::kTripleSense);
  const OpCost dpu = model_->op_cost(SubArrayOp::kDpuWord);
  const double bits = static_cast<double>(config_.marker_bits);

  StageTimes t;
  t.xnor_ns = triple.latency_ns;
  t.dpu_ns = dpu.latency_ns *
             static_cast<double>(config_.dpu_words_per_match +
                                 config_.dpu_words_per_update);
  t.count_write_ns = bits * write.latency_ns / batch;
  t.im_add_ns = model_->im_add_cost(config_.marker_bits).latency_ns / batch;
  t.readout_ns = bits * read.latency_ns / batch;
  return t;
}

PipelineReport PipelineModel::evaluate(std::uint32_t pd) const {
  if (pd == 0) throw std::invalid_argument("PipelineModel: Pd must be >= 1");
  const StageTimes t = stage_times();

  PipelineReport report;
  report.pd = pd;
  report.stages = t;
  report.serial_lfm_ns = t.serial_ns();

  // Resource-constrained initiation interval. The add chain is carry-serial
  // and never splits; movement stages can move to a third array; further
  // duplicates only replicate the XNOR resource.
  double ii = 0.0;
  switch (pd) {
    case 1:
      ii = t.serial_ns();  // method-I: everything serialises on one array
      break;
    case 2:
      ii = std::max({t.xnor_ns + t.dpu_ns,
                     t.count_write_ns + t.im_add_ns + t.readout_ns});
      break;
    default: {  // pd >= 3
      const double xnor_share =
          t.xnor_ns / static_cast<double>(pd - 2);  // replicated XNOR arrays
      ii = std::max({xnor_share + t.dpu_ns, t.im_add_ns, t.movement_ns()});
      break;
    }
  }
  report.initiation_interval_ns = ii;
  report.speedup = t.serial_ns() / ii;
  report.lfm_rate_per_group_hz = 1e9 / ii;
  // Movement share of the total per-LFM work: the fraction of busy time
  // spent on pure data movement (count transpose + result readout) rather
  // than compute — the platform's Memory Bottleneck Ratio contribution.
  report.movement_fraction = t.movement_ns() / t.serial_ns();
  report.utilization = 1.0 - std::exp(-static_cast<double>(pd));

  // Dynamic energy per LFM: every stage's energy is paid once per LFM
  // regardless of pipelining; duplication adds the (amortised-small) copy
  // traffic, charged as one extra row write per LFM per duplicate.
  const OpCost read = model_->op_cost(SubArrayOp::kMemRead);
  const OpCost write = model_->op_cost(SubArrayOp::kMemWrite);
  const OpCost triple = model_->op_cost(SubArrayOp::kTripleSense);
  const OpCost dpu = model_->op_cost(SubArrayOp::kDpuWord);
  const double bits = static_cast<double>(config_.marker_bits);
  const double batch = static_cast<double>(config_.add_batch_columns);
  double energy = triple.energy_pj  // XNOR
                  + dpu.energy_pj * static_cast<double>(
                                        config_.dpu_words_per_match +
                                        config_.dpu_words_per_update)
                  + bits * write.energy_pj / batch          // transpose
                  + model_->im_add_cost(config_.marker_bits).energy_pj / batch
                  + bits * read.energy_pj / batch;          // readout
  if (pd > 1) {
    energy += static_cast<double>(pd - 1) * write.energy_pj;
  }
  report.energy_per_lfm_pj = energy;
  return report;
}

}  // namespace pim::hw
