// Computational SOT-MRAM sub-array (Fig. 4a), functional model.
//
// A rows x cols bit grid supporting the dual-mode operation set of the
// paper's micro-architecture:
//   * memory write / read of full rows (WD / MRD / SA with C_M),
//   * single-cycle triple-row sense producing AND3 / MAJ / OR3 / XOR3 across
//     all bit-lines in parallel (the reconfigurable SA of Fig. 4b),
//   * XNOR2 via XOR3 with an (assumed pre-initialised) all-ones row,
//   * bit-serial in-memory add over vertical operands sharing bit-lines
//     (IM_ADD: Carry = MAJ, Sum = XOR3, single cycle per bit).
//
// Every operation charges the TimingEnergyModel and tallies per-op counts so
// the controller and the chip model can roll up latency / energy / MBR / RUR.
// Logic values are ideal Booleans here; electrical fidelity (does a triple
// sense resolve correctly under process variation?) is the sense-amp model's
// job and is Monte-Carlo-verified separately — the paper's tox fix makes the
// failure rate effectively zero, which is the regime this functional model
// assumes.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "src/pim/timing_energy.h"
#include "src/util/bit_vector.h"

namespace pim::hw {

class CommandTrace;

struct SubArrayStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t triple_senses = 0;
  std::uint64_t dpu_word_ops = 0;
  double energy_pj = 0.0;
  double busy_ns = 0.0;  ///< Serial occupancy (sum of op latencies).

  SubArrayStats& operator+=(const SubArrayStats& other);
};

class SubArray {
 public:
  explicit SubArray(const TimingEnergyModel& model);

  std::uint32_t rows() const { return model_->rows(); }
  std::uint32_t cols() const { return model_->cols(); }

  // --- Memory mode ---------------------------------------------------------
  void write_row(std::uint32_t row, const util::BitVector& bits);
  /// MEM: sense one row. Charged as a read.
  util::BitVector mem_read_row(std::uint32_t row);

  /// Test/debug access without charging the cost model.
  const util::BitVector& peek_row(std::uint32_t row) const;

  // --- Compute mode ----------------------------------------------------------
  struct TripleOutputs {
    util::BitVector and3, maj3, or3, xor3;
  };
  /// Single-cycle parallel sense of three rows with all logic references.
  TripleOutputs triple_sense(std::uint32_t r1, std::uint32_t r2,
                             std::uint32_t r3);

  /// XNOR2 of two rows (XOR3 with the all-ones init row); one triple sense.
  util::BitVector xnor2(std::uint32_t r1, std::uint32_t r2);

  // --- Vertical (bit-line local) word access -------------------------------
  /// Read a `bits`-wide little-endian word stored down one column starting
  /// at `row_begin`. Costs `bits` row senses.
  std::uint64_t read_word_vertical(std::uint32_t col, std::uint32_t row_begin,
                                   std::uint32_t bits);
  /// Write a word vertically; costs `bits` row writes.
  void write_word_vertical(std::uint32_t col, std::uint32_t row_begin,
                           std::uint32_t bits, std::uint64_t value);

  /// IM_ADD: bit-serial add of the vertical words at rows [row_a, row_a+bits)
  /// and [row_b, ...) into [row_sum, ...), using `row_carry` as the carry
  /// row. Operates on ALL bit-lines in parallel (that is the point of the
  /// design); cost: per bit one triple sense + sum/carry write-backs, plus
  /// one carry-row clear.
  void im_add(std::uint32_t row_a, std::uint32_t row_b, std::uint32_t row_sum,
              std::uint32_t row_carry, std::uint32_t bits);

  /// Charge one DPU word operation (popcount / compare / pointer update on a
  /// row-sized value). The DPU itself lives outside the array; the charge is
  /// recorded here so per-tile accounting stays in one place.
  void charge_dpu_word();

  const SubArrayStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SubArrayStats{}; }

  // --- Endurance / wear tracking -------------------------------------------
  // MRAM cells endure ~1e12-1e15 writes; the IM_ADD carry row is written
  // every adder cycle, making it the wear hot spot. Tracking is off by
  // default (zero cost); when enabled, every row write increments a
  // per-row counter so the endurance analysis can find hot rows and
  // project array lifetime.
  void enable_write_tracking();
  bool write_tracking_enabled() const { return !row_writes_.empty(); }
  /// Per-row write counts (empty unless tracking enabled).
  const std::vector<std::uint64_t>& row_write_counts() const {
    return row_writes_;
  }
  void reset_write_counts();

  // --- Command tracing -------------------------------------------------------
  /// Attach (or detach with nullptr) a command trace; every subsequent
  /// operation appends its Ctrl-level command. The trace is not owned and
  /// must outlive the attachment.
  void attach_trace(CommandTrace* trace) { trace_ = trace; }

  const TimingEnergyModel& model() const { return *model_; }

 private:
  void charge(SubArrayOp op);
  void note_write(std::uint32_t row);
  void trace(SubArrayOp op, std::initializer_list<std::uint32_t> rows);
  void check_row(std::uint32_t row) const;

  const TimingEnergyModel* model_;
  std::vector<util::BitVector> grid_;
  SubArrayStats stats_;
  std::vector<std::uint64_t> row_writes_;
  CommandTrace* trace_ = nullptr;
};

}  // namespace pim::hw
