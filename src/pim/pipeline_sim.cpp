#include "src/pim/pipeline_sim.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pim::hw {

namespace {

// A read progresses through lfm_per_read iterations; each iteration is
// three dependent tasks. Task kinds map to resources:
//   0: XNOR_Match      -> xnor array (array 0)
//   1: DPU popcount+upd-> DPU
//   2: transpose+add+readout -> add array (round-robin over the duplicates)
struct ReadState {
  std::uint32_t lfm_done = 0;
  std::uint32_t task = 0;       // 0..2 within the current LFM
  double ready_ns = 0.0;        // earliest start of the next task
  bool admitted = false;
  bool finished = false;
};

}  // namespace

PipelineSimReport simulate_pipeline(const TimingEnergyModel& timing,
                                    const PipelineSimConfig& config) {
  if (config.pd == 0 || config.num_reads == 0 || config.lfm_per_read == 0) {
    throw std::invalid_argument("simulate_pipeline: bad config");
  }
  const PipelineModel model(timing, config.stages);
  const StageTimes t = model.stage_times();
  const double task_durations[3] = {
      t.xnor_ns, t.dpu_ns, t.count_write_ns + t.im_add_ns + t.readout_ns};

  const std::uint32_t slots =
      config.read_slots == 0 ? 2 * config.pd : config.read_slots;

  // Resources: config.pd sub-arrays + 1 DPU. Array 0 hosts XNOR; add tasks
  // round-robin over arrays 1..pd-1 (or array 0 itself when pd == 1).
  std::vector<double> array_free(config.pd, 0.0);
  std::vector<double> array_busy(config.pd, 0.0);
  double dpu_free = 0.0;
  double dpu_busy = 0.0;
  std::uint64_t add_rr = 0;

  std::vector<ReadState> reads(config.num_reads);
  std::uint32_t admitted = 0, finished = 0;
  // Admit the first `slots` reads at time zero.
  for (std::uint32_t r = 0; r < config.num_reads && r < slots; ++r) {
    reads[r].admitted = true;
    ++admitted;
  }

  double wall = 0.0;
  while (finished < config.num_reads) {
    // Pick the admitted, unfinished read whose next task can start earliest.
    double best_start = std::numeric_limits<double>::infinity();
    std::size_t best_read = config.num_reads;
    std::size_t best_resource_array = 0;
    for (std::size_t r = 0; r < reads.size(); ++r) {
      auto& rs = reads[r];
      if (!rs.admitted || rs.finished) continue;
      double resource_free = 0.0;
      std::size_t array_idx = 0;
      switch (rs.task) {
        case 0:
          array_idx = 0;
          resource_free = array_free[0];
          break;
        case 1:
          resource_free = dpu_free;
          break;
        case 2:
          array_idx = config.pd == 1
                          ? 0
                          : 1 + static_cast<std::size_t>(
                                    (add_rr + r) % (config.pd - 1));
          resource_free = array_free[array_idx];
          break;
      }
      const double start = std::max(rs.ready_ns, resource_free);
      if (start < best_start) {
        best_start = start;
        best_read = r;
        best_resource_array = array_idx;
      }
    }
    if (best_read == config.num_reads) {
      throw std::logic_error("simulate_pipeline: deadlock (no runnable task)");
    }

    auto& rs = reads[best_read];
    const double duration = task_durations[rs.task];
    const double end = best_start + duration;
    switch (rs.task) {
      case 0:
      case 2:
        array_free[best_resource_array] = end;
        array_busy[best_resource_array] += duration;
        break;
      case 1:
        dpu_free = end;
        dpu_busy += duration;
        break;
    }
    rs.ready_ns = end;
    wall = std::max(wall, end);

    if (rs.task == 2) {
      ++add_rr;
      rs.task = 0;
      if (++rs.lfm_done == config.lfm_per_read) {
        rs.finished = true;
        ++finished;
        if (admitted < config.num_reads) {
          reads[admitted].admitted = true;
          reads[admitted].ready_ns = end;  // slot frees now
          ++admitted;
        }
      }
    } else {
      ++rs.task;
    }
  }

  PipelineSimReport report;
  report.wall_ns = wall;
  report.total_lfm = static_cast<std::uint64_t>(config.num_reads) *
                     config.lfm_per_read;
  report.measured_ii_ns = wall / static_cast<double>(report.total_lfm);
  report.analytic_ii_ns = model.evaluate(config.pd).initiation_interval_ns;
  report.lfm_rate_hz = 1e9 / report.measured_ii_ns;
  report.array_busy_fraction.resize(config.pd);
  for (std::size_t a = 0; a < config.pd; ++a) {
    report.array_busy_fraction[a] = array_busy[a] / wall;
  }
  report.dpu_busy_fraction = dpu_busy / wall;
  return report;
}

}  // namespace pim::hw
