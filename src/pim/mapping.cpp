#include "src/pim/mapping.h"

#include <algorithm>
#include <stdexcept>

namespace pim::hw {

void ZoneLayout::validate(const TimingEnergyModel& model) const {
  if (total_rows() != model.rows()) {
    throw std::invalid_argument("ZoneLayout: zones do not sum to array rows");
  }
  if (model.cols() % 2 != 0) {
    throw std::invalid_argument("ZoneLayout: odd column count");
  }
  if (cref_rows < genome::kNumBases) {
    throw std::invalid_argument("ZoneLayout: need one CRef row per base");
  }
  if (mt_rows < genome::kNumBases * marker_bits) {
    throw std::invalid_argument("ZoneLayout: MT zone too small for 4 banks");
  }
  if (reserved_rows < 2 * marker_bits + 1) {
    throw std::invalid_argument(
        "ZoneLayout: reserved zone needs count+sum rows and a carry row");
  }
  if (bwt_rows > model.cols()) {
    // One checkpoint per BWT row, stored one-per-column in the MT zone.
    throw std::invalid_argument("ZoneLayout: more checkpoints than columns");
  }
  if (marker_bits > 64 || marker_bits == 0) {
    throw std::invalid_argument("ZoneLayout: marker width out of range");
  }
}

PimTile::PimTile(const TimingEnergyModel& model, const ZoneLayout& layout,
                 const index::FmIndex& fm, std::uint64_t base)
    : layout_(layout), array_(model), base_(base) {
  layout_.validate(model);
  const std::uint32_t d = layout_.bps_per_row(array_.cols());
  if (fm.config().bucket_width != d) {
    throw std::invalid_argument(
        "PimTile: FM-index bucket width must equal bps per row");
  }
  if (base % layout_.bps_per_tile(array_.cols()) != 0) {
    throw std::invalid_argument("PimTile: base not tile-aligned");
  }
  if (base >= fm.num_rows()) {
    throw std::invalid_argument("PimTile: base beyond BWT");
  }
  size_ = std::min<std::uint64_t>(layout_.bps_per_tile(array_.cols()),
                                  fm.num_rows() - base);
  primary_ = fm.bwt().primary;
  tile_holds_primary_ = primary_ >= base_ && primary_ < base_ + size_;

  load_bwt_and_cref(fm);
  load_markers(fm);
  load_stats_ = array_.stats();
  array_.reset_stats();
}

void PimTile::load_bwt_and_cref(const index::FmIndex& fm) {
  const std::uint32_t d = layout_.bps_per_row(array_.cols());
  const auto& symbols = fm.bwt().symbols;

  // BWT zone: 2-bit hardware encoding, d bps per row. The sentinel position
  // keeps its dummy fill; the DPU's primary register corrects for it.
  const std::uint64_t rows_used =
      (size_ + d - 1) / d;
  for (std::uint64_t r = 0; r < rows_used; ++r) {
    util::BitVector row(array_.cols(), false);
    const std::uint64_t row_base = base_ + r * d;
    const std::uint64_t row_len = std::min<std::uint64_t>(d, size_ - r * d);
    for (std::uint64_t j = 0; j < row_len; ++j) {
      const std::uint8_t code =
          genome::hardware_code(symbols.at(row_base + j));
      row.set(static_cast<std::size_t>(2 * j), (code >> 1) & 1U);
      row.set(static_cast<std::size_t>(2 * j + 1), code & 1U);
    }
    array_.write_row(layout_.bwt_zone_begin() + static_cast<std::uint32_t>(r),
                     row);
  }

  // CRef zone: each nucleotide's code repeated across the word-line.
  for (const auto nt : genome::kAllBases) {
    const std::uint8_t code = genome::hardware_code(nt);
    util::BitVector row(array_.cols(), false);
    for (std::uint32_t j = 0; j < layout_.bps_per_row(array_.cols()); ++j) {
      row.set(2 * j, (code >> 1) & 1U);
      row.set(2 * j + 1, code & 1U);
    }
    array_.write_row(
        layout_.cref_zone_begin() + static_cast<std::uint32_t>(nt), row);
  }
}

void PimTile::load_markers(const index::FmIndex& fm) {
  const std::uint32_t d = layout_.bps_per_row(array_.cols());
  const auto& markers = fm.markers();
  const std::uint64_t first_checkpoint = base_ / d;
  // Store every checkpoint this tile can answer, including the boundary
  // checkpoint after a partial tail (needed when id lands exactly on it).
  const std::uint64_t available = markers.num_checkpoints() - first_checkpoint;
  const std::uint32_t to_store = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      {available, layout_.bwt_rows, array_.cols()}));
  for (std::uint32_t k = 0; k < to_store; ++k) {
    for (const auto nt : genome::kAllBases) {
      const std::uint32_t bank_row =
          layout_.mt_zone_begin() +
          static_cast<std::uint32_t>(nt) * layout_.marker_bits;
      array_.write_word_vertical(
          k, bank_row, layout_.marker_bits,
          markers.marker(nt, first_checkpoint + k));
    }
  }
}

std::uint32_t PimTile::checkpoint_column(std::uint64_t id) const {
  return static_cast<std::uint32_t>((id - base_) /
                                    layout_.bps_per_row(array_.cols()));
}

std::uint64_t PimTile::count_match(genome::Base nt, std::uint64_t id) {
  const std::uint32_t d = layout_.bps_per_row(array_.cols());
  const std::uint64_t local = id - base_;
  const std::uint64_t residual = local % d;
  if (id <= base_ || id > base_ + size_ || residual == 0) {
    throw std::invalid_argument("PimTile::count_match: id out of tile range");
  }
  const auto row = static_cast<std::uint32_t>(local / d);

  // XNOR_Match: one triple sense comparing the BWT row with CRef(nt).
  const util::BitVector match = array_.xnor2(
      layout_.bwt_zone_begin() + row,
      layout_.cref_zone_begin() + static_cast<std::uint32_t>(nt));

  // DPU: pair the 2-bit lanes and popcount the [0, residual) prefix.
  array_.charge_dpu_word();
  std::uint64_t count = 0;
  for (std::uint64_t j = 0; j < residual; ++j) {
    if (match.get(static_cast<std::size_t>(2 * j)) &&
        match.get(static_cast<std::size_t>(2 * j + 1))) {
      ++count;
    }
  }

  // Sentinel correction: the dummy base stored at the primary row would
  // otherwise count as a real occurrence of kSentinelFill.
  if (tile_holds_primary_ && nt == index::Bwt::kSentinelFill &&
      primary_ >= id - residual && primary_ < id) {
    --count;
  }
  return count;
}

std::uint64_t PimTile::lfm(genome::Base nt, std::uint64_t id) {
  const std::uint32_t d = layout_.bps_per_row(array_.cols());
  if (id < base_ || id > base_ + size_) {
    throw std::invalid_argument("PimTile::lfm: id out of tile range");
  }
  if ((id - base_) % d == 0) {
    // On a checkpoint: the marker is the answer (MEM only).
    return read_marker(nt, id);
  }
  // 1) XNOR_Match + popcount; 2-4) fold into the marker locally (method-I).
  return marker_add(nt, id, count_match(nt, id));
}

std::uint64_t PimTile::read_marker(genome::Base nt, std::uint64_t id) {
  if (id < base_ || id > base_ + size_) {
    throw std::invalid_argument("PimTile::read_marker: id out of tile range");
  }
  const std::uint32_t marker_row =
      layout_.mt_zone_begin() +
      static_cast<std::uint32_t>(nt) * layout_.marker_bits;
  return array_.read_word_vertical(checkpoint_column(id), marker_row,
                                   layout_.marker_bits);
}

std::uint64_t PimTile::marker_add(genome::Base nt, std::uint64_t id,
                                  std::uint64_t count_match_value) {
  const std::uint32_t d = layout_.bps_per_row(array_.cols());
  if (id <= base_ || id > base_ + size_ || (id - base_) % d == 0) {
    throw std::invalid_argument("PimTile::marker_add: bad id");
  }
  const std::uint32_t k = checkpoint_column(id);
  const std::uint32_t marker_row =
      layout_.mt_zone_begin() +
      static_cast<std::uint32_t>(nt) * layout_.marker_bits;
  const std::uint32_t reserved = layout_.reserved_zone_begin();

  // 2) Transpose the count into the reserved zone (same bit-line as the
  //    marker it will be added to).
  array_.write_word_vertical(k, reserved + layout_.count_rows_offset(),
                             layout_.marker_bits, count_match_value);

  // 3) IM_ADD: marker + count_match, bit-serial MAJ/XOR3 adder.
  array_.im_add(marker_row, reserved + layout_.count_rows_offset(),
                reserved + layout_.sum_rows_offset(),
                reserved + layout_.carry_row_offset(), layout_.marker_bits);

  // 4) MEM: read the updated bound back to the DPU.
  return array_.read_word_vertical(k, reserved + layout_.sum_rows_offset(),
                                   layout_.marker_bits);
}

std::uint64_t PimTile::peek_marker(genome::Base nt,
                                   std::uint32_t checkpoint) const {
  const std::uint32_t bank_row =
      layout_.mt_zone_begin() +
      static_cast<std::uint32_t>(nt) * layout_.marker_bits;
  std::uint64_t value = 0;
  for (std::uint32_t i = 0; i < layout_.marker_bits; ++i) {
    if (array_.peek_row(bank_row + i).get(checkpoint)) value |= (1ULL << i);
  }
  return value;
}

}  // namespace pim::hw
