// Correlated data partitioning and mapping (Section V, Fig. 6).
//
// Each computational sub-array is split into four zones:
//   * BWT zone      — 256 rows x 128 bps (2-bit hardware encoding
//                     T=00, G=01, A=10, C=11), one Occ checkpoint per row;
//   * CRef zone     — 4 rows, one per nucleotide: the 2-bit code repeated
//                     across the word-line, enabling the fully parallel
//                     XNOR_Match against a BWT row;
//   * MT zone       — 128 rows: the marker values for this sub-array's 256
//                     checkpoints, stored *vertically* (32 rows per
//                     nucleotide bank) so they can be IM_ADD operands;
//   * reserved zone — 124 rows: the transposed count_match operand, the sum
//                     rows, and the carry row of IM_ADD.
//
// Storing a BWT slice *with its own markers* in the same sub-array is the
// paper's correlated-partitioning insight: every LFM becomes sub-array-local
// (no inter-bank traffic), which is what drives the MBR below 18%.
#pragma once

#include <cstdint>
#include <memory>

#include "src/genome/alphabet.h"
#include "src/index/fm_index.h"
#include "src/pim/subarray.h"
#include "src/pim/timing_energy.h"

namespace pim::hw {

struct ZoneLayout {
  std::uint32_t bwt_rows = 256;
  std::uint32_t cref_rows = 4;
  std::uint32_t mt_rows = 128;       ///< 4 banks x marker_bits rows.
  std::uint32_t reserved_rows = 124;
  std::uint32_t marker_bits = 32;    ///< Marker word width (4-byte values).

  std::uint32_t total_rows() const {
    return bwt_rows + cref_rows + mt_rows + reserved_rows;
  }
  std::uint32_t bwt_zone_begin() const { return 0; }
  std::uint32_t cref_zone_begin() const { return bwt_rows; }
  std::uint32_t mt_zone_begin() const { return bwt_rows + cref_rows; }
  std::uint32_t reserved_zone_begin() const {
    return bwt_rows + cref_rows + mt_rows;
  }

  /// Rows inside the reserved zone (relative offsets).
  std::uint32_t count_rows_offset() const { return 0; }
  std::uint32_t sum_rows_offset() const { return marker_bits; }
  std::uint32_t carry_row_offset() const { return 2 * marker_bits; }

  std::uint32_t bps_per_row(std::uint32_t cols) const { return cols / 2; }
  /// BWT indices covered by one sub-array (= bucket width d x bwt_rows).
  std::uint64_t bps_per_tile(std::uint32_t cols) const {
    return static_cast<std::uint64_t>(bps_per_row(cols)) * bwt_rows;
  }

  /// Throws std::invalid_argument if the layout does not fit the array
  /// organisation (row budget, MT capacity, reserved capacity).
  void validate(const TimingEnergyModel& model) const;
};

/// One computational sub-array loaded with a correlated BWT/MT slice.
class PimTile {
 public:
  /// Loads the slice starting at BWT index `base` from the software index.
  /// The FM-index bucket width must equal the tile's bps-per-row.
  PimTile(const TimingEnergyModel& model, const ZoneLayout& layout,
          const index::FmIndex& fm, std::uint64_t base);

  std::uint64_t base() const { return base_; }
  /// Number of BWT indices stored in this tile (== capacity except the tail).
  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const {
    return layout_.bps_per_tile(array_.cols());
  }

  /// XNOR_Match + DPU popcount: occurrences of `nt` in
  /// BWT[id - id mod d, id), with the sentinel-row correction applied by the
  /// DPU (it holds the primary index). Requires residual > 0.
  std::uint64_t count_match(genome::Base nt, std::uint64_t id);

  /// Full in-memory LFM (method-I: all steps in this sub-array):
  ///   1. XNOR_Match + popcount,
  ///   2. transpose count_match into the reserved zone (MEM writes),
  ///   3. IM_ADD marker + count (bit-serial MAJ/XOR3 adder),
  ///   4. MEM read of the sum (the updated interval bound).
  /// Returns Count(nt) + Occ(nt, id) — bit-identical to the software LFM.
  std::uint64_t lfm(genome::Base nt, std::uint64_t id);

  /// Steps 2–4 only (the add-array half of method-II, Fig. 6d): fold an
  /// externally computed count_match into the marker held HERE. The tile
  /// must be a duplicate of the slice owning `id`. `id` must be
  /// off-checkpoint (a checkpoint-aligned LFM is a plain marker read).
  std::uint64_t marker_add(genome::Base nt, std::uint64_t id,
                           std::uint64_t count_match);

  /// Marker MEM read for a checkpoint-aligned id (charged).
  std::uint64_t read_marker(genome::Base nt, std::uint64_t id);

  /// Direct (uncharged) marker readback, for tests.
  std::uint64_t peek_marker(genome::Base nt, std::uint32_t checkpoint) const;

  const SubArrayStats& stats() const { return array_.stats(); }
  void reset_stats() { array_.reset_stats(); }
  /// One-time cost of loading BWT/CRef/MT into the tile (setup, reported
  /// separately from steady-state alignment cost).
  const SubArrayStats& load_stats() const { return load_stats_; }

  SubArray& array() { return array_; }

 private:
  std::uint32_t checkpoint_column(std::uint64_t id) const;
  void load_bwt_and_cref(const index::FmIndex& fm);
  void load_markers(const index::FmIndex& fm);

  const ZoneLayout layout_;
  SubArray array_;
  std::uint64_t base_ = 0;
  std::uint64_t size_ = 0;
  std::uint64_t primary_ = 0;        ///< Global sentinel row (DPU register).
  bool tile_holds_primary_ = false;
  SubArrayStats load_stats_;
};

}  // namespace pim::hw
