// SOT-MRAM bit-cell compact model.
//
// Substitution for the paper's NEGF + LLG device simulation (see DESIGN.md):
// the architecture above consumes only the electrical consequences of the
// device — the parallel/anti-parallel resistances, their process spread, and
// the V_sense levels seen when 1, 2 or 3 cells on a bit-line are sensed
// simultaneously (Fig. 5a). We model:
//
//   R_P  = RA / A_mtj * exp((tox - tox0)/tox_lambda)   (tunnel-barrier scaling)
//   R_AP = R_P * (1 + TMR)
//   V_sense = I_sense * R_eq,  R_eq = (sum_i 1/(R_i + R_access))^-1
//
// with Gaussian process variation on the RA product (sigma 2%) and on the
// TMR (sigma 5%) — the exact Monte-Carlo setup of Section IV-B — plus the
// paper's reliability fix: raising tox from 1.5 nm to 2 nm to widen the MAJ3
// sense margin by ~45 mV.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace pim::hw {

struct SotMramParams {
  double ra_product_ohm_um2 = 18.0;  ///< RA at tox0 (Ω·µm²).
  double mtj_area_um2 = 60e-4;       ///< MTJ area (~55 nm nominal CD).
  double tmr = 1.0;                  ///< TMR ratio: R_AP = R_P (1 + TMR).
  double tox_nm = 1.5;               ///< Tunnel barrier thickness.
  double tox0_nm = 1.5;              ///< Reference thickness for RA.
  /// Exponential RA-vs-thickness constant; calibrated so tox 1.5→2.0 nm
  /// yields the paper's ~45 mV MAJ3 margin gain.
  double tox_lambda_nm = 0.205;
  double access_resistance_ohm = 500.0;  ///< Series access transistor.
  double sense_current_ua = 20.0;        ///< Bit-line sense current.
  double sigma_ra_fraction = 0.02;       ///< σ = 2% on RA product.
  double sigma_tmr_fraction = 0.05;      ///< σ = 5% on TMR.
  /// Input-referred sense-amplifier offset (mV, absolute). This is why the
  /// paper's tox increase helps: device levels scale up with resistance
  /// while the SA offset stays fixed, so margins in mV translate directly
  /// into reliability.
  double sa_offset_sigma_mv = 1.0;
};

/// Resolved nominal resistances for a parameter set.
struct CellResistances {
  double r_p_ohm = 0.0;
  double r_ap_ohm = 0.0;
};

class SotMramModel {
 public:
  explicit SotMramModel(const SotMramParams& params = {});

  const SotMramParams& params() const { return params_; }
  CellResistances nominal() const { return nominal_; }

  /// One Monte-Carlo sample of a cell's resistances under process variation.
  CellResistances sample_cell(util::Xoshiro256& rng) const;

  /// Equivalent resistance of `n` parallel (cell + access) paths; `ap_mask`
  /// bit i set means cell i is anti-parallel (data '1').
  double equivalent_resistance(const std::vector<CellResistances>& cells,
                               std::uint32_t ap_mask) const;

  /// V_sense (volts) for the given parallel cell combination.
  double v_sense(const std::vector<CellResistances>& cells,
                 std::uint32_t ap_mask) const;

  /// Nominal V_sense when `num_ap` of `fan_in` sensed cells are AP.
  double nominal_v_sense(std::uint32_t fan_in, std::uint32_t num_ap) const;

 private:
  SotMramParams params_;
  CellResistances nominal_;
};

/// Monte-Carlo study of V_sense distributions (reproduces Fig. 5b).
struct VsenseDistribution {
  std::uint32_t fan_in = 1;       ///< Cells sensed in parallel (1..3).
  std::uint32_t num_ap = 0;       ///< AP cells in the combination.
  util::RunningStats stats;       ///< Over `trials` Monte-Carlo samples.
};

struct SenseMarginReport {
  std::uint32_t fan_in = 1;
  /// Worst-case margin between adjacent combinations:
  /// min over adjacent pairs of (mean_hi - 3σ_hi) - (mean_lo + 3σ_lo).
  double worst_margin_mv = 0.0;
  std::vector<VsenseDistribution> distributions;  ///< num_ap = fan_in..0.
};

/// Run `trials` Monte-Carlo samples for every AP combination at the given
/// fan-in and report distributions plus the worst-case sense margin.
SenseMarginReport monte_carlo_sense_margin(const SotMramModel& model,
                                           std::uint32_t fan_in,
                                           std::size_t trials,
                                           std::uint64_t seed);

}  // namespace pim::hw
