#include "src/pim/subarray.h"

#include <stdexcept>

#include "src/pim/trace.h"

namespace pim::hw {

SubArrayStats& SubArrayStats::operator+=(const SubArrayStats& other) {
  reads += other.reads;
  writes += other.writes;
  triple_senses += other.triple_senses;
  dpu_word_ops += other.dpu_word_ops;
  energy_pj += other.energy_pj;
  busy_ns += other.busy_ns;
  return *this;
}

SubArray::SubArray(const TimingEnergyModel& model)
    : model_(&model),
      grid_(model.rows(), util::BitVector(model.cols(), false)) {}

void SubArray::charge(SubArrayOp op) {
  const OpCost cost = model_->op_cost(op);
  stats_.energy_pj += cost.energy_pj;
  stats_.busy_ns += cost.latency_ns;
  switch (op) {
    case SubArrayOp::kMemRead: ++stats_.reads; break;
    case SubArrayOp::kMemWrite: ++stats_.writes; break;
    case SubArrayOp::kTripleSense: ++stats_.triple_senses; break;
    case SubArrayOp::kDpuWord: ++stats_.dpu_word_ops; break;
  }
}

void SubArray::check_row(std::uint32_t row) const {
  if (row >= grid_.size()) {
    throw std::out_of_range("SubArray: row out of range");
  }
}

void SubArray::write_row(std::uint32_t row, const util::BitVector& bits) {
  check_row(row);
  if (bits.size() != cols()) {
    throw std::invalid_argument("SubArray::write_row: width mismatch");
  }
  grid_[row] = bits;
  charge(SubArrayOp::kMemWrite);
  note_write(row);
  trace(SubArrayOp::kMemWrite, {row});
}

util::BitVector SubArray::mem_read_row(std::uint32_t row) {
  check_row(row);
  charge(SubArrayOp::kMemRead);
  trace(SubArrayOp::kMemRead, {row});
  return grid_[row];
}

const util::BitVector& SubArray::peek_row(std::uint32_t row) const {
  check_row(row);
  return grid_[row];
}

SubArray::TripleOutputs SubArray::triple_sense(std::uint32_t r1,
                                               std::uint32_t r2,
                                               std::uint32_t r3) {
  check_row(r1);
  check_row(r2);
  check_row(r3);
  charge(SubArrayOp::kTripleSense);
  trace(SubArrayOp::kTripleSense, {r1, r2, r3});
  TripleOutputs out;
  out.and3 = util::BitVector::and3(grid_[r1], grid_[r2], grid_[r3]);
  out.maj3 = util::BitVector::majority3(grid_[r1], grid_[r2], grid_[r3]);
  out.or3 = util::BitVector::or3(grid_[r1], grid_[r2], grid_[r3]);
  out.xor3 = util::BitVector::xor3(grid_[r1], grid_[r2], grid_[r3]);
  return out;
}

util::BitVector SubArray::xnor2(std::uint32_t r1, std::uint32_t r2) {
  check_row(r1);
  check_row(r2);
  charge(SubArrayOp::kTripleSense);
  trace(SubArrayOp::kTripleSense, {r1, r2});
  // XOR3(a, b, 1) = NOT (a XOR b): the all-ones init row turns the XOR3
  // circuit into an XNOR2 in the same single cycle.
  return ~(grid_[r1] ^ grid_[r2]);
}

std::uint64_t SubArray::read_word_vertical(std::uint32_t col,
                                           std::uint32_t row_begin,
                                           std::uint32_t bits) {
  if (bits > 64) throw std::invalid_argument("read_word_vertical: bits > 64");
  check_row(row_begin + bits - 1);
  if (col >= cols()) throw std::out_of_range("read_word_vertical: col");
  std::uint64_t value = 0;
  for (std::uint32_t i = 0; i < bits; ++i) {
    charge(SubArrayOp::kMemRead);
    trace(SubArrayOp::kMemRead, {row_begin + i});
    if (grid_[row_begin + i].get(col)) value |= (1ULL << i);
  }
  return value;
}

void SubArray::write_word_vertical(std::uint32_t col, std::uint32_t row_begin,
                                   std::uint32_t bits, std::uint64_t value) {
  if (bits > 64) throw std::invalid_argument("write_word_vertical: bits > 64");
  check_row(row_begin + bits - 1);
  if (col >= cols()) throw std::out_of_range("write_word_vertical: col");
  for (std::uint32_t i = 0; i < bits; ++i) {
    charge(SubArrayOp::kMemWrite);
    note_write(row_begin + i);
    trace(SubArrayOp::kMemWrite, {row_begin + i});
    grid_[row_begin + i].set(col, (value >> i) & 1ULL);
  }
}

void SubArray::im_add(std::uint32_t row_a, std::uint32_t row_b,
                      std::uint32_t row_sum, std::uint32_t row_carry,
                      std::uint32_t bits) {
  check_row(row_a + bits - 1);
  check_row(row_b + bits - 1);
  check_row(row_sum + bits - 1);
  check_row(row_carry);

  // Clear the carry row (one write).
  grid_[row_carry] = util::BitVector(cols(), false);
  charge(SubArrayOp::kMemWrite);
  note_write(row_carry);
  trace(SubArrayOp::kMemWrite, {row_carry});

  for (std::uint32_t i = 0; i < bits; ++i) {
    // Single-cycle full-adder bit: Carry = MAJ3, Sum = XOR3, produced by the
    // same triple sense of (a_i, b_i, carry).
    const TripleOutputs t =
        triple_sense(row_a + i, row_b + i, row_carry);
    grid_[row_sum + i] = t.xor3;
    charge(SubArrayOp::kMemWrite);
    note_write(row_sum + i);
    trace(SubArrayOp::kMemWrite, {row_sum + i});
    grid_[row_carry] = t.maj3;
    charge(SubArrayOp::kMemWrite);
    note_write(row_carry);
    trace(SubArrayOp::kMemWrite, {row_carry});
  }
}

void SubArray::charge_dpu_word() {
  charge(SubArrayOp::kDpuWord);
  trace(SubArrayOp::kDpuWord, {});
}

void SubArray::trace(SubArrayOp op,
                     std::initializer_list<std::uint32_t> rows) {
  if (trace_ != nullptr) trace_->record(op, rows);
}

void SubArray::enable_write_tracking() {
  if (row_writes_.empty()) row_writes_.assign(rows(), 0);
}

void SubArray::reset_write_counts() {
  if (!row_writes_.empty()) row_writes_.assign(rows(), 0);
}

void SubArray::note_write(std::uint32_t row) {
  if (!row_writes_.empty()) ++row_writes_[row];
}

}  // namespace pim::hw
