#include "src/pim/pim_engine.h"

namespace pim::hw {

void PimEngine::align_range(const align::ReadBatch& batch, std::size_t begin,
                            std::size_t end, align::BatchResult& out) const {
  if (driver_.options().best_hit_only) out.set_best_hit_only(true);
  std::vector<genome::Base> scratch;
  for (std::size_t i = begin; i < end; ++i) {
    batch.read(i).unpack_into(scratch);
    const align::AlignmentResult result = driver_.align(scratch);
    // Stage-search accounting mirrors the software engine: two strand
    // searches per attempted stage (stage two only on stage-one misses).
    const bool both =
        driver_.options().try_reverse_complement;
    out.stats().exact_searches += both ? 2 : 1;
    if (result.stage != align::AlignmentStage::kExact &&
        driver_.options().inexact.max_diffs > 0) {
      out.stats().inexact_searches += both ? 2 : 1;
    }
    out.add_read(result.stage, result.hits);
    // Publish the hardware tallies at every read boundary (S43): this
    // thread is the platform's single driver, so the seqlock store is
    // race-free, and a concurrent PimChipFleet::publish_metrics scrape
    // sees tallies at most one read stale instead of racing the raw
    // per-tile counters.
    platform_->publish_stats_snapshot();
  }
}

HwBatchReport PimEngine::run(const align::ReadBatch& batch,
                             align::BatchResult& out) const {
  platform_->reset_stats();
  align_batch(batch, out);
  HwBatchReport report;
  report.stats = out.stats().to_aligner_stats();
  report.hardware = platform_->aggregate_stats();
  report.busy_ns = report.hardware.ops.busy_ns;
  report.energy_pj = report.hardware.ops.energy_pj;
  return report;
}

}  // namespace pim::hw
