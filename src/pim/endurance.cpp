#include "src/pim/endurance.h"

#include <stdexcept>

namespace pim::hw {

double EnduranceReport::projected_lifetime_years(
    double lfm_rate_hz, double endurance_cycles) const {
  const double per_lfm = hottest_writes_per_lfm();
  if (per_lfm <= 0.0 || lfm_rate_hz <= 0.0) return 1e18;  // effectively infinite
  const double seconds = endurance_cycles / (per_lfm * lfm_rate_hz);
  return seconds / (365.25 * 24 * 3600);
}

EnduranceReport analyze_endurance(const SubArray& array,
                                  const ZoneLayout& layout,
                                  std::uint64_t lfm_count) {
  const auto& counts = array.row_write_counts();
  if (counts.empty()) {
    throw std::invalid_argument(
        "analyze_endurance: write tracking not enabled on this sub-array");
  }
  EnduranceReport report;
  report.lfm_count = lfm_count;

  const auto zone_of = [&](std::uint32_t row) -> std::string {
    if (row < layout.cref_zone_begin()) return "BWT";
    if (row < layout.mt_zone_begin()) return "CRef";
    if (row < layout.reserved_zone_begin()) return "MT";
    return "reserved";
  };

  report.by_zone = {
      {"BWT", 0, layout.bwt_rows},
      {"CRef", 0, layout.cref_rows},
      {"MT", 0, layout.mt_rows},
      {"reserved", 0, layout.reserved_rows},
  };
  for (std::uint32_t row = 0; row < counts.size(); ++row) {
    const std::uint64_t w = counts[row];
    report.total_writes += w;
    const std::string zone = zone_of(row);
    for (auto& z : report.by_zone) {
      if (z.zone == zone) z.writes += w;
    }
    if (w > report.hottest_row_writes) {
      report.hottest_row_writes = w;
      report.hottest_row = row;
      report.hottest_zone = zone;
    }
  }
  return report;
}

}  // namespace pim::hw
