#include "src/pim/sense_amp.h"

#include <bit>
#include <cmath>

namespace pim::hw {

namespace {

double geometric_mid(double a, double b) { return std::sqrt(a * b); }

}  // namespace

ReconfigurableSenseAmp::ReconfigurableSenseAmp(const SotMramModel& model)
    : model_(model) {
  const std::vector<CellResistances> one(1, model.nominal());
  const std::vector<CellResistances> three(3, model.nominal());
  // Req is monotone increasing in the number of AP (high-R) cells, so each
  // reference sits between the two combinations it must distinguish.
  const double r1_p = model.equivalent_resistance(one, 0b0);
  const double r1_ap = model.equivalent_resistance(one, 0b1);
  refs_.r_m_ohm = geometric_mid(r1_p, r1_ap);

  const double r3_0 = model.equivalent_resistance(three, 0b000);
  const double r3_1 = model.equivalent_resistance(three, 0b001);
  const double r3_2 = model.equivalent_resistance(three, 0b011);
  const double r3_3 = model.equivalent_resistance(three, 0b111);
  refs_.r_or3_ohm = geometric_mid(r3_0, r3_1);   // >=1 AP
  refs_.r_maj_ohm = geometric_mid(r3_1, r3_2);   // >=2 AP
  refs_.r_and3_ohm = geometric_mid(r3_2, r3_3);  // ==3 AP
}

SenseAmpOutputs ReconfigurableSenseAmp::ideal_outputs(bool a, bool b, bool c) {
  SenseAmpOutputs out;
  out.and3 = ideal_and3(a, b, c);
  out.maj3 = ideal_maj3(a, b, c);
  out.or3 = ideal_or3(a, b, c);
  out.xor3 = ideal_xor3(a, b, c);
  return out;
}

bool ReconfigurableSenseAmp::sense_memory(const CellResistances& cell,
                                          bool stored_ap) const {
  const std::vector<CellResistances> cells(1, cell);
  const double req =
      model_.equivalent_resistance(cells, stored_ap ? 0b1 : 0b0);
  return req > refs_.r_m_ohm;
}

SenseAmpOutputs ReconfigurableSenseAmp::sense_triple(
    const std::vector<CellResistances>& cells, std::uint32_t ap_mask,
    util::Xoshiro256* rng) const {
  // Comparison happens in the voltage domain: V_sense = I * R_eq against
  // V_ref = I * R_ref, each sub-SA adding its own input-referred offset.
  const double i_sense = model_.params().sense_current_ua * 1e-6;
  const double v = i_sense * model_.equivalent_resistance(cells, ap_mask);
  const double offset_sigma_v = model_.params().sa_offset_sigma_mv * 1e-3;
  const auto offset = [&]() {
    return rng != nullptr ? rng->gaussian(0.0, offset_sigma_v) : 0.0;
  };
  SenseAmpOutputs out;
  out.and3 = v > i_sense * refs_.r_and3_ohm + offset();
  out.maj3 = v > i_sense * refs_.r_maj_ohm + offset();
  out.or3 = v > i_sense * refs_.r_or3_ohm + offset();
  // The six control transistors after the sub-SAs (Fig. 4b): parity is
  // "exactly one" (OR3 and not MAJ) or "all three" (AND3).
  out.xor3 = (out.or3 && !out.maj3) || out.and3;
  return out;
}

bool ReconfigurableSenseAmp::triple_sense_correct(
    const std::vector<CellResistances>& cells, std::uint32_t ap_mask,
    util::Xoshiro256* rng) const {
  const SenseAmpOutputs got = sense_triple(cells, ap_mask, rng);
  const SenseAmpOutputs want = ideal_outputs(
      (ap_mask & 1U) != 0, ((ap_mask >> 1) & 1U) != 0,
      ((ap_mask >> 2) & 1U) != 0);
  return got.and3 == want.and3 && got.maj3 == want.maj3 &&
         got.or3 == want.or3 && got.xor3 == want.xor3;
}

ReliabilityReport monte_carlo_logic_reliability(const SotMramModel& model,
                                                std::size_t trials,
                                                std::uint64_t seed) {
  const ReconfigurableSenseAmp sa(model);
  util::Xoshiro256 rng(seed);
  ReliabilityReport report;
  std::vector<CellResistances> cells(3);
  for (std::size_t t = 0; t < trials; ++t) {
    for (auto& c : cells) c = model.sample_cell(rng);
    const auto ap_mask = static_cast<std::uint32_t>(rng.bounded(8));
    ++report.trials;
    if (!sa.triple_sense_correct(cells, ap_mask, &rng)) ++report.failures;
  }
  return report;
}

}  // namespace pim::hw
