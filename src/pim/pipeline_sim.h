// Discrete-event simulation of the Fig. 7 pipeline.
//
// The analytic PipelineModel reasons in steady state; this simulator
// actually schedules a stream of reads — each a dependent chain of LFM
// iterations, each LFM a chain of (XNOR array -> DPU -> add array) tasks —
// over the Pd sub-arrays and the DPU with FCFS resources and a bounded
// number of reads in flight. It measures the achieved initiation interval,
// per-resource busy fractions, and the fill/drain overhead the analytic
// model ignores. Tests check the two models agree in steady state; the
// ablation bench prints where they diverge (short reads, few slots).
#pragma once

#include <cstdint>
#include <vector>

#include "src/pim/pipeline.h"
#include "src/pim/timing_energy.h"

namespace pim::hw {

struct PipelineSimConfig {
  std::uint32_t pd = 2;
  std::uint32_t num_reads = 64;
  std::uint32_t lfm_per_read = 50;
  /// Max reads concurrently in flight; 0 selects 2*Pd (the DPU register
  /// budget scales with the duplicated resources).
  std::uint32_t read_slots = 0;
  PipelineConfig stages;
};

struct PipelineSimReport {
  double wall_ns = 0.0;
  std::uint64_t total_lfm = 0;
  double measured_ii_ns = 0.0;   ///< wall / total LFMs.
  double analytic_ii_ns = 0.0;   ///< PipelineModel's steady-state ii.
  double lfm_rate_hz = 0.0;
  std::vector<double> array_busy_fraction;  ///< One entry per sub-array.
  double dpu_busy_fraction = 0.0;
};

/// Run the event simulation. Deterministic (no randomness: round-robin add
/// array assignment, FCFS resources, fixed task durations).
PipelineSimReport simulate_pipeline(const TimingEnergyModel& timing,
                                    const PipelineSimConfig& config);

}  // namespace pim::hw
