// Bank/chip interconnect cost model.
//
// The correlated mapping makes LFM sub-array-local, but some traffic still
// crosses the hierarchy: the DPU's SA queries at the end of each read (the
// SA region lives in plain memory banks), query/result streaming, and — in
// the uncorrelated counterfactual of bench/ablation_locality — per-LFM
// marker movement. This model prices a 32-bit word transfer at each level
// of a conventional H-tree memory hierarchy (CACTI/NVSim-class constants
// at 45 nm), so every cross-hierarchy byte in the chip model has a
// documented cost.
#pragma once

#include <cstdint>

#include "src/pim/timing_energy.h"
#include "src/util/config.h"

namespace pim::hw {

enum class HopLevel : std::uint8_t {
  kIntraBank,   ///< Between sub-arrays sharing a bank's local bus.
  kInterBank,   ///< Across the chip's H-tree.
  kOffChip,     ///< Through the chip pins (the Fig. 10a axis).
};

class InterconnectModel {
 public:
  explicit InterconnectModel(const util::Config& overrides = {});

  static util::Config default_config();

  /// Cost of moving `words` 32-bit words at the given level. `words == 0`
  /// is a priced no-op: an exact {0 ns, 0 pJ}, never a rounding artifact of
  /// multiplying per-word constants by zero.
  OpCost transfer_cost(std::uint64_t words, HopLevel level) const;

  /// Sustained word rate of the level; always finite and positive (the
  /// constructor rejects any override that zeroes or corrupts a latency,
  /// so the division here cannot produce inf/NaN).
  double words_per_ns(HopLevel level) const;

 private:
  OpCost intra_bank_, inter_bank_, off_chip_;  ///< Per 32-bit word.
};

}  // namespace pim::hw
