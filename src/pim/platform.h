// PIM-Aligner platform (Fig. 3 macro-architecture).
//
// Owns the full set of computational sub-array tiles covering the indexed
// reference (correlated BWT+MT slices, Section V), the DPU-held registers
// (primary index, boundary markers), and the entry points that run
// Algorithm 1/2 *on the in-memory primitives* via the backend-generic search
// cores. Alignment results are bit-identical to the software FM-index path
// by construction; what the platform adds is faithful per-operation
// cycle/energy accounting, which the chip-level model (src/accel) scales to
// the paper's Hg19 workload.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/align/seed_extend.h"
#include "src/align/types.h"
#include "src/genome/alphabet.h"
#include "src/index/fm_index.h"
#include "src/pim/mapping.h"
#include "src/pim/pipeline.h"
#include "src/pim/timing_energy.h"
#include "src/util/seqlock.h"

namespace pim::hw {

/// IM_ADD placement (Fig. 6d): method-I keeps the addition in the slice's
/// own sub-array; method-II duplicates every tile and routes steps 2-4 to
/// the duplicate, freeing the compare resources for pipelining (Pd >= 2).
enum class AddPlacement : std::uint8_t { kMethodI, kMethodII };

class PimAlignerPlatform {
 public:
  /// Builds all tiles for the index (twice under method-II). The FM-index
  /// bucket width must match the layout's bps-per-row (128 for the default
  /// 512x256 organisation).
  PimAlignerPlatform(const index::FmIndex& fm, const TimingEnergyModel& timing,
                     ZoneLayout layout = {},
                     AddPlacement placement = AddPlacement::kMethodI);

  // --- In-memory LFM primitives -------------------------------------------
  /// LFM(MT, nt, id) executed on the owning tile's sub-array.
  std::uint64_t lfm(genome::Base nt, std::uint64_t id);

  index::SaInterval whole_interval() const {
    return {0, fm_->num_rows()};
  }
  /// One backward-extension step: two hardware LFM calls (low and high).
  index::SaInterval extend_hw(const index::SaInterval& interval,
                              genome::Base nt);

  // --- Alignment entry points (Algorithms 1 and 2 on hardware) ------------
  align::ExactResult exact_align(const std::vector<genome::Base>& read);
  align::InexactResult inexact_align(const std::vector<genome::Base>& read,
                                     const align::InexactOptions& options = {});
  /// Locate through the SA region (plain memory sub-arrays); charged as SA
  /// MEM reads.
  std::vector<std::uint64_t> locate_all(const index::SaInterval& interval);

  // --- Accounting ----------------------------------------------------------
  struct AggregateStats {
    SubArrayStats ops;            ///< Summed over all tiles.
    std::uint64_t lfm_calls = 0;
    std::uint64_t boundary_marker_hits = 0;  ///< DPU-register answers.
    std::uint64_t sa_mem_reads = 0;
  };
  AggregateStats aggregate_stats() const;

  /// Mid-run-safe view of aggregate_stats() (S43). The tallies themselves
  /// are plain fields written by the platform's single driving thread —
  /// aggregate_stats() while that thread is aligning is a data race. The
  /// driver instead calls publish_stats_snapshot() at read boundaries
  /// (PimEngine::align_range does, per read), and any OTHER thread — a
  /// PeriodicReporter scraping PimChipFleet::publish_metrics — reads the
  /// seqlock-published copy here. At quiescence (driver joined) the
  /// snapshot equals aggregate_stats() exactly.
  AggregateStats stats_snapshot() const { return snapshot_.load(); }
  /// Publish the current tallies; must be called by the (single) thread
  /// driving this platform. Cost: one tile sweep + a wait-free seqlock
  /// store — per-read, not per-operation.
  void publish_stats_snapshot() { snapshot_.store(aggregate_stats()); }
  SubArrayStats aggregate_load_stats() const;
  /// Method-II only: ops executed on the duplicate (add-side) tiles.
  /// Included in aggregate_stats(); exposed separately so the measured
  /// compare/add resource split can be compared with the pipeline model.
  SubArrayStats aggregate_duplicate_stats() const;
  void reset_stats();

  AddPlacement placement() const { return placement_; }
  std::size_t num_tiles() const { return tiles_.size(); }
  PimTile& tile(std::size_t i) { return *tiles_[i]; }
  const index::FmIndex& fm() const { return *fm_; }
  const TimingEnergyModel& timing() const { return *timing_; }
  const ZoneLayout& layout() const { return layout_; }

 private:
  const index::FmIndex* fm_;
  const TimingEnergyModel* timing_;
  ZoneLayout layout_;
  AddPlacement placement_ = AddPlacement::kMethodI;
  std::vector<std::unique_ptr<PimTile>> tiles_;
  std::vector<std::unique_ptr<PimTile>> duplicates_;  ///< Method-II only.
  /// DPU boundary registers: marker values at the end-of-BWT checkpoint,
  /// needed when `high` == num_rows lands exactly on a tile boundary.
  std::array<std::uint64_t, genome::kNumBases> final_markers_{};
  std::uint64_t lfm_calls_ = 0;
  std::uint64_t boundary_marker_hits_ = 0;
  std::uint64_t sa_mem_reads_ = 0;
  /// Seqlock-published copy of the tallies for cross-thread scraping (S43).
  util::Seqlock<AggregateStats> snapshot_;
};

/// Seed-and-extend long-read alignment driven by the platform's in-memory
/// primitives: each 20-bp seed is an exact backward search on the
/// sub-arrays, SA lookups go through the (charged) SA region, and only the
/// final banded verification runs on the host/DPU. `reference` must be the
/// sequence the platform's index was built over.
align::SeedExtendResult seed_extend_hw(
    PimAlignerPlatform& platform, const genome::PackedSequence& reference,
    const std::vector<genome::Base>& read,
    const align::SeedExtendOptions& options = {});

/// Thin const adapter satisfying the search-core Backend concept while
/// routing every extension through the platform's in-memory LFM.
class PimSearchBackend {
 public:
  explicit PimSearchBackend(PimAlignerPlatform* platform)
      : platform_(platform) {}

  index::SaInterval whole_interval() const {
    return platform_->whole_interval();
  }
  index::SaInterval extend(const index::SaInterval& interval,
                           genome::Base nt) const {
    return platform_->extend_hw(interval, nt);
  }

 private:
  PimAlignerPlatform* platform_;
};

}  // namespace pim::hw
